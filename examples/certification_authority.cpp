// Distributed certification authority (paper §5.1).
//
// A client obtains a certificate from a 4-server CA:
//   * the request is atomically broadcast so all replicas issue the same
//     serial number;
//   * each replica answers with signature *shares* of the CA key;
//   * the client recombines them into ONE ordinary RSA signature under the
//     CA's single public key — the certificate — even though one replica
//     actively lies to it.
//
//   build/examples/certification_authority
#include <cstdio>
#include <map>

#include "app/ca.hpp"
#include "app/client.hpp"
#include "protocols/harness.hpp"

using namespace sintra;

struct Node {
  std::unique_ptr<app::Replica> replica;
};

/// A corrupted replica that tells every client its request was denied.
class LyingReplica final : public net::Process {
 public:
  LyingReplica(net::Simulator& sim, int id) : sim_(sim), id_(id) {}
  void on_message(const net::Message& message) override {
    if (message.tag != "ca") return;
    try {
      Reader r(message.payload);
      app::RequestEnvelope envelope = app::RequestEnvelope::decode(r);
      app::CaResponse forged;
      forged.status = app::CaResponse::Status::kDenied;
      Writer w;
      w.u8(app::kReplyOk);
      w.u64(envelope.request_id);
      w.bytes(forged.encode());
      w.u32(0);
      net::Message reply{id_, envelope.client, "ca/reply", w.take()};
      sim_.submit(std::move(reply));
    } catch (const ProtocolError&) {
    }
  }

 private:
  net::Simulator& sim_;
  int id_;
};

int main() {
  Rng rng(7);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler scheduler(7);
  protocols::Cluster<Node> cluster(
      deployment, scheduler,
      [](net::Party& party, int) {
        auto node = std::make_unique<Node>();
        node->replica = std::make_unique<app::Replica>(
            party, "ca", app::Replica::Mode::kAtomic,
            std::make_unique<app::CertificationAuthority>());
        return node;
      },
      /*corrupted=*/0, /*extra_endpoints=*/1);
  // Replace replica 3 by an active liar.
  cluster.attach_custom(3, std::make_unique<LyingReplica>(cluster.simulator(), 3));

  std::map<std::uint64_t, app::ServiceClient::Receipt> receipts;
  auto client_owner = std::make_unique<app::ServiceClient>(
      cluster.simulator(), 4, deployment, "ca", app::Replica::Mode::kAtomic, 99,
      [&](std::uint64_t id, app::ServiceClient::Receipt receipt) {
        receipts.emplace(id, std::move(receipt));
      });
  app::ServiceClient* client = client_owner.get();
  cluster.attach_client(4, std::move(client_owner));
  cluster.start();

  // Alice requests a certificate for her public key.
  app::CaRequest issue;
  issue.op = app::CaRequest::Op::kIssue;
  issue.subject = "alice@example.com";
  issue.public_key = bytes_of("---alice public key---");
  issue.credentials = "credential:alice@example.com";
  Bytes body = issue.encode();
  std::uint64_t id = client->request(Bytes(body));

  if (!cluster.simulator().run_until([&] { return receipts.contains(id); }, 10000000)) {
    std::printf("FAILED: no certificate\n");
    return 1;
  }
  const auto& receipt = receipts.at(id);
  auto response = app::CaResponse::decode(receipt.reply);
  std::printf("certificate issued: subject=%s serial=%llu policy=%s\n",
              response.subject.c_str(), static_cast<unsigned long long>(response.serial),
              response.policy_at_issue.c_str());
  std::printf("lying replica's forged denial was outvoted: status=%s\n",
              response.status == app::CaResponse::Status::kOk ? "OK" : "DENIED?!");

  // Anyone can verify the certificate with the single CA public key.
  const bool valid = client->verify_receipt(id, body, receipt);
  std::printf("threshold signature verifies under the CA public key: %s\n",
              valid ? "YES" : "NO");
  std::printf("signature (hex, first 32 chars): %.32s...\n",
              receipt.signature.to_hex().c_str());
  return valid && response.status == app::CaResponse::Status::kOk ? 0 : 1;
}
