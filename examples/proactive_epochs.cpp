// Proactive share refresh across epochs (paper §6, "Proactive Protocols").
//
// A mobile adversary compromises a different server every epoch.  Without
// refresh, after compromising servers 0 and 1 (in different epochs) it
// holds t+1 = 2 shares and owns the coin key.  With per-epoch resharing,
// the share stolen in epoch 1 is USELESS in epoch 2 — the adversary never
// holds a qualified set of same-epoch shares.
//
//   build/examples/proactive_epochs
#include <cstdio>

#include "crypto/shamir.hpp"
#include "protocols/harness.hpp"
#include "protocols/refresh.hpp"

using namespace sintra;

struct Node {
  std::unique_ptr<protocols::ShareRefresh> refresh;
  std::optional<protocols::ShareRefresh::Result> result;
};

int main() {
  Rng rng(2026);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  auto group = crypto::Group::test_group();
  crypto::ThresholdScheme scheme(4, 1);

  std::vector<crypto::BigInt> shares;
  auto verification = deployment.keys->public_keys().coin.verification_values();
  for (int id = 0; id < 4; ++id) {
    shares.push_back(deployment.keys->share(id).coin.unit_shares().at(id));
  }

  // The mobile adversary's loot: one share per epoch.
  std::map<int, crypto::BigInt> stolen;  // party -> share (as of theft epoch)
  stolen[0] = shares[0];                 // epoch 1: server 0 compromised
  std::printf("epoch 1: adversary steals server 0's share\n");

  // Epoch boundary: refresh.
  for (int epoch = 1; epoch <= 2; ++epoch) {
    net::RandomScheduler sched(static_cast<std::uint64_t>(epoch) * 11);
    protocols::Cluster<Node> cluster(
        deployment, sched,
        [&](net::Party& party, int id) {
          auto node = std::make_unique<Node>();
          node->refresh = std::make_unique<protocols::ShareRefresh>(
              party, "refresh-e" + std::to_string(epoch),
              shares[static_cast<std::size_t>(id)], verification, /*threshold=*/1,
              [n = node.get()](protocols::ShareRefresh::Result r) {
                n->result = std::move(r);
              });
          return node;
        });
    cluster.start();
    cluster.for_each([](int, Node& n) { n.refresh->start(); });
    if (!cluster.run_until_all([](Node& n) { return n.result.has_value(); }, 10000000)) {
      std::printf("FAILED: refresh epoch %d stalled\n", epoch);
      return 1;
    }
    for (int id = 0; id < 4; ++id) {
      shares[static_cast<std::size_t>(id)] = cluster.protocol(id)->result->new_share;
    }
    verification = cluster.protocol(0)->result->new_verification;
    std::printf("refresh %d complete: %d zero-dealings applied, all shares replaced\n",
                epoch, cluster.protocol(0)->result->dealings_applied);
    if (epoch == 1) {
      stolen[1] = shares[1];  // epoch 2: server 1 compromised
      std::printf("epoch 2: adversary steals server 1's (fresh) share\n");
    }
  }

  // The adversary now holds shares of servers 0 and 1 — but from DIFFERENT
  // epochs.  Interpolating them yields garbage:
  crypto::BigInt loot = scheme.reconstruct(stolen, group->q());
  std::map<int, crypto::BigInt> current{{0, shares[0]}, {1, shares[1]}};
  crypto::BigInt secret = scheme.reconstruct(current, group->q());
  std::printf("\ncross-epoch loot reconstructs the real key: %s\n",
              loot == secret ? "YES (BROKEN!)" : "no — stale shares are useless");

  // And the refreshed key still tosses the same coins (same secret):
  auto low_scheme = std::make_shared<crypto::ThresholdScheme>(4, 1);
  crypto::CoinPublicKey fresh_pk(group, low_scheme, verification);
  Bytes name = bytes_of("post-refresh-coin");
  Rng coin_rng(7);
  std::vector<crypto::CoinShare> coin_shares;
  for (int id = 2; id < 4; ++id) {
    crypto::CoinSecretKey sk(id, {{id, shares[static_cast<std::size_t>(id)]}});
    for (auto& s : sk.share(fresh_pk, name, coin_rng)) coin_shares.push_back(s);
  }
  auto fresh = fresh_pk.combine(name, coin_shares);
  std::vector<crypto::CoinShare> old_shares;
  const auto& old_pk = deployment.keys->public_keys().coin;
  for (int id = 2; id < 4; ++id) {
    for (auto& s : deployment.keys->share(id).coin.share(old_pk, name, coin_rng)) {
      old_shares.push_back(s);
    }
  }
  auto original = old_pk.combine(name, old_shares);
  std::printf("coin value unchanged across two refresh epochs: %s\n",
              (fresh && original && *fresh == *original) ? "YES" : "NO");
  return (loot == secret) ? 1 : 0;
}
