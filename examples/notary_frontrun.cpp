// The notary front-running attack (paper §5.2) — and why secure causal
// atomic broadcast defeats it.
//
// Scenario: an inventor files a patent application with the distributed
// notary.  One notary server is corrupted and colludes with a competitor:
// whenever it sees the content of a pending application, it immediately
// files a copy in the competitor's name, racing to get the earlier
// sequence number.
//
// Run 1 — plain atomic broadcast (requests in the clear): the corrupted
// server reads the pending request and front-runs it; the competitor can
// win the earlier sequence number.
//
// Run 2 — secure causal atomic broadcast (requests TDH2-encrypted until
// ordered): the corrupted server sees only an unmalleable ciphertext; by
// the time anything is readable, the victim's sequence number is fixed.
//
//   build/examples/notary_frontrun
#include <cstdio>
#include <optional>

#include "app/notary.hpp"
#include "protocols/harness.hpp"

using namespace sintra;

namespace {

constexpr int kVictimServer = 0;   // honest server the inventor contacts
constexpr int kCorruptServer = 3;  // colluding server

Bytes victim_request() {
  app::NotaryRequest request;
  request.op = app::NotaryRequest::Op::kRegister;
  request.document = bytes_of("patent claims: warp drive");
  app::RequestEnvelope envelope{/*client=*/100, /*request_id=*/1, request.encode()};
  Writer w;
  envelope.encode(w);
  return w.take();
}

Bytes competitor_request() {
  app::NotaryRequest request;
  request.op = app::NotaryRequest::Op::kRegister;
  request.document = bytes_of("patent claims: warp drive");  // stolen content!
  app::RequestEnvelope envelope{/*client=*/200, /*request_id=*/1, request.encode()};
  Writer w;
  envelope.encode(w);
  return w.take();
}

struct Node {
  std::unique_ptr<protocols::AtomicBroadcast> abc;      // run 1
  std::unique_ptr<protocols::SecureCausalBroadcast> sc; // run 2
  app::Notary notary;
  std::optional<std::uint64_t> victim_seq;
  std::optional<std::uint64_t> competitor_seq;

  void execute(BytesView envelope_bytes) {
    try {
      Reader r(envelope_bytes);
      auto envelope = app::RequestEnvelope::decode(r);
      auto response = app::NotaryResponse::decode(notary.execute(envelope.body));
      if (envelope.client == 100 && !victim_seq) victim_seq = response.sequence;
      if (envelope.client == 200 && !competitor_seq) competitor_seq = response.sequence;
    } catch (const ProtocolError&) {
    }
  }
};

/// Run 1: requests ordered in the clear.  The corrupted server watches the
/// atomic-broadcast traffic; the moment the victim's plaintext request
/// crosses its wire, it submits the competitor's copy and the adversarial
/// scheduler lets the copy overtake the original.
int run_plaintext() {
  Rng rng(1);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  // The adversary controls the network: it starves the victim server so
  // the stolen request gets ahead.
  net::StarvePartyScheduler sched(13, kVictimServer);
  bool stolen = false;
  protocols::Cluster<Node> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto node = std::make_unique<Node>();
        node->abc = std::make_unique<protocols::AtomicBroadcast>(
            party, "notary", [n = node.get()](int, Bytes payload) { n->execute(payload); });
        return node;
      });
  cluster.start();
  // The inventor submits via the victim server...
  cluster.protocol(kVictimServer)->abc->submit(victim_request());
  // ...and the corrupted server, seeing the content in the clear in its
  // inbox (it participates in round 1), immediately submits the copy.
  cluster.protocol(kCorruptServer)->abc->submit(competitor_request());

  cluster.run_until_all(
      [](Node& n) { return n.victim_seq.has_value() && n.competitor_seq.has_value(); },
      10000000);
  Node* node = cluster.protocol(1);
  if (node->victim_seq && node->competitor_seq) {
    stolen = *node->competitor_seq < *node->victim_seq;
    std::printf("  victim seq=%llu competitor seq=%llu -> %s\n",
                static_cast<unsigned long long>(*node->victim_seq),
                static_cast<unsigned long long>(*node->competitor_seq),
                stolen ? "FRONT-RUN SUCCEEDED" : "victim was first this time");
  }
  return stolen ? 1 : 0;
}

/// Run 2: secure causal atomic broadcast.  The corrupted server only ever
/// sees a TDH2 ciphertext; CCA2 security means it cannot craft a related
/// ciphertext, and decryption happens after the order is fixed.
int run_encrypted() {
  Rng rng(2);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::StarvePartyScheduler sched(13, kVictimServer);
  protocols::Cluster<Node> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto node = std::make_unique<Node>();
        node->sc = std::make_unique<protocols::SecureCausalBroadcast>(
            party, "notary",
            [n = node.get()](std::uint64_t, Bytes plaintext, Bytes) { n->execute(plaintext); });
        return node;
      });
  cluster.start();

  // The inventor encrypts the application; only the ciphertext travels.
  Rng client_rng(55);
  const auto& pk = deployment.keys->public_keys().encryption;
  auto ciphertext = pk.encrypt(victim_request(), bytes_of("notary"), client_rng);
  cluster.protocol(kVictimServer)->sc->submit(ciphertext);

  // The corrupted server cannot read or maul the ciphertext (try it):
  auto mauled = ciphertext;
  for (auto& b : mauled.data) b ^= 0xff;
  const bool maul_rejected = !pk.check_ciphertext(mauled);

  // The best the corrupted server can do is submit an INDEPENDENT request
  // (without knowing the content) — which is no front-running at all.  By
  // the time decryption shares flow, the order is already fixed.
  cluster.run_until_all([](Node& n) { return n.victim_seq.has_value(); }, 10000000);
  Node* node = cluster.protocol(1);
  std::printf("  mauled ciphertext rejected: %s; victim registered with seq=%llu\n",
              maul_rejected ? "YES" : "NO",
              static_cast<unsigned long long>(node->victim_seq.value_or(0)));
  return node->victim_seq.has_value() && *node->victim_seq == 1 && maul_rejected ? 0 : 1;
}

}  // namespace

int main() {
  std::printf("Run 1: notary over plain atomic broadcast (requests in the clear)\n");
  int front_run = run_plaintext();
  std::printf("Run 2: notary over secure causal atomic broadcast (TDH2-encrypted)\n");
  int failed = run_encrypted();
  std::printf("\nconclusion: plaintext pipeline %s; encrypted pipeline is immune\n",
              front_run ? "was front-run" : "was lucky this time (attack is possible)");
  return failed;
}
