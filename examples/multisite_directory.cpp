// The paper's Example 2 deployment end-to-end (§4.3): a secure directory
// service for a multi-national company on sixteen servers in New York,
// Tokyo, Zurich and Haifa, running AIX, NT, Linux and Solaris — one server
// per (location, OS) pair.
//
// The generalized Q³ adversary structure tolerates the *simultaneous*
// corruption of all servers at one location AND all servers with one
// operating system: 7 of 16 servers, where the best threshold scheme
// tolerates 5.  This example corrupts exactly such a set (Tokyo down +
// an AIX worm) and still binds and looks up directory entries with
// threshold-signed answers.
//
//   build/examples/multisite_directory
#include <cstdio>
#include <map>

#include "adversary/examples.hpp"
#include "app/client.hpp"
#include "app/directory.hpp"
#include "protocols/harness.hpp"

using namespace sintra;

namespace {
const char* kLocations[4] = {"NewYork", "Tokyo", "Zurich", "Haifa"};
const char* kSystems[4] = {"AIX", "NT", "Linux", "Solaris"};
}  // namespace

struct Node {
  std::unique_ptr<app::Replica> replica;
};

int main() {
  Rng rng(16);
  auto deployment = adversary::example2_deployment(rng);
  std::printf("adversary structure: %zu maximal sets, Q3=%s, max corruptions=%d "
              "(threshold bound would be 5)\n",
              static_cast<const adversary::GeneralQuorum&>(*deployment.quorum)
                  .structure()
                  .maximal_sets()
                  .size(),
              deployment.quorum->describe().empty() ? "?" : "yes",
              static_cast<const adversary::GeneralQuorum&>(*deployment.quorum)
                  .structure()
                  .max_corruptions());

  // Corrupt all of Tokyo (location 1) and every AIX machine (OS 0): 7 servers.
  crypto::PartySet corrupted = 0;
  for (int k = 0; k < 4; ++k) {
    corrupted |= crypto::party_bit(adversary::example2_party(1, k));
    corrupted |= crypto::party_bit(adversary::example2_party(k, 0));
  }
  std::printf("corrupted servers (%d):", crypto::popcount(corrupted));
  for (int p : crypto::set_members(corrupted)) {
    std::printf(" %s/%s", kLocations[p / 4], kSystems[p % 4]);
  }
  std::printf("\n");

  net::RandomScheduler scheduler(16);
  protocols::Cluster<Node> cluster(
      deployment, scheduler,
      [](net::Party& party, int) {
        auto node = std::make_unique<Node>();
        node->replica = std::make_unique<app::Replica>(
            party, "dir", app::Replica::Mode::kAtomic,
            std::make_unique<app::SecureDirectory>());
        return node;
      },
      corrupted, /*extra_endpoints=*/1);

  std::map<std::uint64_t, app::ServiceClient::Receipt> receipts;
  auto client_owner = std::make_unique<app::ServiceClient>(
      cluster.simulator(), 16, deployment, "dir", app::Replica::Mode::kAtomic, 5,
      [&](std::uint64_t id, app::ServiceClient::Receipt receipt) {
        receipts.emplace(id, std::move(receipt));
      });
  app::ServiceClient* client = client_owner.get();
  cluster.attach_client(16, std::move(client_owner));
  cluster.start();

  // Bind a DNS-style record, then look it up.
  app::DirRequest bind;
  bind.op = app::DirRequest::Op::kBind;
  bind.key = "ldap.corp.example";
  bind.value = bytes_of("192.0.2.44");
  std::uint64_t bind_id = client->request(bind.encode());
  if (!cluster.simulator().run_until([&] { return receipts.contains(bind_id); }, 80000000)) {
    std::printf("FAILED: bind did not complete\n");
    return 1;
  }
  std::printf("bind completed: version=%llu\n",
              static_cast<unsigned long long>(
                  app::DirResponse::decode(receipts.at(bind_id).reply).version));

  app::DirRequest lookup;
  lookup.op = app::DirRequest::Op::kLookup;
  lookup.key = "ldap.corp.example";
  Bytes lookup_body = lookup.encode();
  std::uint64_t lookup_id = client->request(Bytes(lookup_body));
  if (!cluster.simulator().run_until([&] { return receipts.contains(lookup_id); },
                                     80000000)) {
    std::printf("FAILED: lookup did not complete\n");
    return 1;
  }
  const auto& receipt = receipts.at(lookup_id);
  auto response = app::DirResponse::decode(receipt.reply);
  const bool valid = client->verify_receipt(lookup_id, lookup_body, receipt);
  std::printf("lookup: %s -> %s (version %llu), signed answer verifies: %s\n",
              response.key.c_str(), printable(response.value).c_str(),
              static_cast<unsigned long long>(response.version), valid ? "YES" : "NO");
  std::printf("the 3x3 honest grid kept the directory live and safe despite 7/16 "
              "corruptions\n");
  return valid && response.value == bytes_of("192.0.2.44") ? 0 : 1;
}
