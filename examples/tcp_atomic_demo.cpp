// Atomic broadcast over real TCP, surviving a SIGKILL.
//
// One binary, five processes.  The parent forks four party processes;
// each runs the unchanged protocol stack (Party + AtomicBroadcast) on a
// NetworkedNode over the authenticated TCP transport, with the Party
// write-ahead log persisted to disk after every pump iteration.  The run:
//
//   1. every party submits one operation ("alpha i"); all four order them
//   2. the parent SIGKILLs party 2 — no shutdown, volatile state gone
//   3. the three survivors order three more operations ("beta i") while
//      party 2 is dead: n = 4, t = 1, the quorum does not need it
//   4. the parent re-forks party 2, which replays its WAL to the
//      pre-crash state, redials, and catches up on everything it missed
//      through the transport's ack-based retransmission
//   5. the parent checks all four parties delivered the identical
//      totally-ordered sequence of 7 operations
//
// Acks are configured timer-only (ack_flush_ms) and slower than the WAL
// persist cadence, so a frame is on disk before its ack reaches the
// sender — SIGKILL cannot lose acknowledged traffic.
//
//   build/examples/tcp_atomic_demo
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "crypto/dealer.hpp"
#include "net/transport/networked_node.hpp"
#include "net/transport/tcp_transport.hpp"
#include "protocols/atomic.hpp"
#include "protocols/harness.hpp"

using namespace sintra;
namespace fs = std::filesystem;

namespace {

constexpr int kN = 4;
constexpr int kVictim = 2;
constexpr std::uint64_t kSeed = 4242;
constexpr int kWave1 = kN;           // one "alpha" op per party
constexpr int kTotal = kWave1 + 3;   // plus one "beta" op per survivor

std::uint16_t pick_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  socklen_t len = sizeof(addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return 0;
  }
  ::close(fd);
  return ntohs(addr.sin_port);
}

void write_file_atomic(const std::string& path, const void* data, std::size_t size) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  }
  fs::rename(tmp, path);
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

std::string joined(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

struct DemoState {
  std::unique_ptr<protocols::AtomicBroadcast> abc;
  std::vector<std::string> log;
};

int run_party(int id, const std::string& dir, const std::vector<std::uint16_t>& ports) {
  // Every process re-runs the trusted dealer from the shared seed — the
  // deterministic stand-in for distributing the dealt keys out of band.
  Rng rng(kSeed);
  auto deployment = adversary::Deployment::threshold(kN, 1, rng);

  net::transport::NetworkedNode::Config nconfig;
  nconfig.node_id = id;
  nconfig.n = kN;
  net::transport::NetworkedNode node(nconfig);

  protocols::HostedParty<DemoState> host(
      node, id, deployment, kSeed * 7919 + static_cast<std::uint64_t>(id),
      [](net::Party& party) {
        party.enable_wal();
        auto state = std::make_unique<DemoState>();
        state->abc = std::make_unique<protocols::AtomicBroadcast>(
            party, "abc", [s = state.get()](int origin, Bytes payload) {
              s->log.push_back("(" + std::to_string(origin) + ") " + printable(payload));
            });
        return state;
      });
  node.attach(host);

  net::transport::TcpTransport::Config tconfig;
  tconfig.node_id = id;
  tconfig.endpoints.resize(kN);
  tconfig.link_keys.resize(kN);
  for (int peer = 0; peer < kN; ++peer) {
    tconfig.endpoints[static_cast<std::size_t>(peer)].port =
        ports[static_cast<std::size_t>(peer)];
    if (peer != id) {
      tconfig.link_keys[static_cast<std::size_t>(peer)] = crypto::derive_link_key(
          deployment.keys->share(id).channel_keys[static_cast<std::size_t>(peer)]);
    }
  }
  tconfig.seed = kSeed + static_cast<std::uint64_t>(id);
  tconfig.heartbeat_interval_ms = 50;
  tconfig.heartbeat_timeout_ms = 1000;
  tconfig.reconnect_min_ms = 25;
  tconfig.reconnect_max_ms = 200;
  // Timer-only acks, slower than the 1 ms WAL persist cadence below: by
  // the time a frame's ack lets the sender prune it, it is on disk here.
  tconfig.link.ack_every = 1u << 20;
  tconfig.ack_flush_ms = 50;
  net::transport::TcpTransport transport(tconfig, [&node](int from, BytesView payload) {
    node.on_transport_receive(from, payload);
  });
  node.bind_transport(
      [&transport](int peer, Bytes payload) { transport.send(peer, std::move(payload)); });
  node.bind_transport_batched([&transport](int peer, std::vector<net::transport::GroupPayload> payloads) {
    transport.send_many(peer, std::move(payloads));
  });
  transport.start();

  const std::string wal_path = dir + "/wal." + std::to_string(id);
  if (fs::exists(wal_path)) {
    const Bytes persisted = read_file(wal_path);
    host.restore(persisted);
    std::printf("[party %d] restarted: replayed %zu-byte WAL, %zu ops recovered\n", id,
                persisted.size(), host.protocol().log.size());
    std::fflush(stdout);
  } else {
    host.protocol().abc->submit(bytes_of("alpha " + std::to_string(id)));
  }

  std::size_t persisted_msgs = host.party().wal().size();
  bool wave2_submitted = false;
  bool wrote_w1 = false;
  bool wrote_w2 = false;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (std::chrono::steady_clock::now() < deadline) {
    node.poll();
    if (host.party().wal().size() != persisted_msgs) {
      const Bytes snapshot = host.snapshot();
      write_file_atomic(wal_path, snapshot.data(), snapshot.size());
      persisted_msgs = host.party().wal().size();
    }
    DemoState& state = host.protocol();
    if (!wrote_w1 && state.log.size() >= kWave1) {
      const std::string text = joined(state.log);
      write_file_atomic(dir + "/w1." + std::to_string(id), text.data(), text.size());
      wrote_w1 = true;
    }
    // Survivors submit the second wave once the parent confirms the
    // victim is dead — these ops are ordered without it.
    if (!wave2_submitted && id != kVictim && wrote_w1 && fs::exists(dir + "/go2")) {
      state.abc->submit(bytes_of("beta " + std::to_string(id)));
      wave2_submitted = true;
    }
    if (!wrote_w2 && state.log.size() >= kTotal) {
      const std::string text = joined(state.log);
      write_file_atomic(dir + "/w2." + std::to_string(id), text.data(), text.size());
      wrote_w2 = true;
    }
    if (fs::exists(dir + "/halt")) break;
    if (const char* dbg = std::getenv("SINTRA_DEMO_DEBUG"); dbg != nullptr) {
      static auto last = std::chrono::steady_clock::now();
      if (std::chrono::steady_clock::now() - last > std::chrono::seconds(1)) {
        last = std::chrono::steady_clock::now();
        const auto st = transport.stats();
        const std::string text =
            "log=" + std::to_string(state.log.size()) + " connects=" + std::to_string(st.connects) +
            " disconnects=" + std::to_string(st.disconnects) +
            " frames_rx=" + std::to_string(st.frames_received) +
            " delivered=" + std::to_string(st.payloads_delivered) +
            " retx=" + std::to_string(st.retransmitted) +
            " dispatched=" + std::to_string(node.stats().dispatched) + "\n";
        write_file_atomic(dir + "/status." + std::to_string(id), text.data(), text.size());
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  transport.stop();
  return fs::exists(dir + "/halt") ? 0 : 1;
}

pid_t spawn_party(int id, const std::string& dir, const std::vector<std::uint16_t>& ports) {
  std::fflush(stdout);  // children would otherwise re-flush inherited output
  const pid_t pid = ::fork();
  if (pid == 0) ::_exit(run_party(id, dir, ports));
  return pid;
}

bool wait_for_files(const std::string& dir, const std::string& prefix,
                    const std::vector<int>& ids, int timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    bool all = true;
    for (int id : ids) all = all && fs::exists(dir + "/" + prefix + "." + std::to_string(id));
    if (all) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  // Child mode: tcp_atomic_demo --party <id> <dir> <p0> <p1> <p2> <p3>
  // (used only for debugging by hand; the normal path forks).
  if (argc == 8 && std::string(argv[1]) == "--party") {
    std::vector<std::uint16_t> ports;
    for (int i = 4; i < 8; ++i) ports.push_back(static_cast<std::uint16_t>(std::atoi(argv[i])));
    return run_party(std::atoi(argv[2]), argv[3], ports);
  }

  char dir_template[] = "/tmp/sintra-tcp-demo-XXXXXX";
  const char* dir_c = ::mkdtemp(dir_template);
  if (dir_c == nullptr) {
    std::printf("FAILED: mkdtemp\n");
    return 1;
  }
  const std::string dir(dir_c);
  std::vector<std::uint16_t> ports(kN);
  for (auto& port : ports) {
    port = pick_port();
    if (port == 0) {
      std::printf("FAILED: no free port\n");
      return 1;
    }
  }
  std::printf("scratch dir %s, ports %u %u %u %u\n", dir.c_str(), ports[0], ports[1], ports[2],
              ports[3]);

  auto fail = [&](const char* what, std::vector<pid_t>& pids) {
    std::printf("FAILED: %s\n", what);
    for (pid_t pid : pids) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    for (pid_t pid : pids) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
    return 1;
  };

  std::vector<pid_t> pids(kN);
  for (int id = 0; id < kN; ++id) pids[static_cast<std::size_t>(id)] = spawn_party(id, dir, ports);
  std::printf("4 parties up over TCP; each submitted one operation\n");

  if (!wait_for_files(dir, "w1", {0, 1, 2, 3}, 60)) return fail("wave 1 never ordered", pids);
  std::printf("wave 1 ordered at all 4 parties\n");

  ::kill(pids[kVictim], SIGKILL);
  ::waitpid(pids[kVictim], nullptr, 0);
  pids[kVictim] = -1;
  std::printf("party %d SIGKILLed\n", kVictim);

  // Survivors order three more operations while the victim is dead.
  write_file_atomic(dir + "/go2", "", 0);
  if (!wait_for_files(dir, "w2", {0, 1, 3}, 60)) return fail("survivors stalled", pids);
  std::printf("wave 2 ordered by the 3 survivors (t = 1 tolerated)\n");

  pids[kVictim] = spawn_party(kVictim, dir, ports);
  if (!wait_for_files(dir, "w2", {kVictim}, 60)) return fail("victim never caught up", pids);
  std::printf("party %d restarted from its WAL and caught up\n", kVictim);

  write_file_atomic(dir + "/halt", "", 0);
  bool children_ok = true;
  for (pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    children_ok = children_ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }

  const Bytes reference = read_file(dir + "/w2.0");
  bool identical = !reference.empty();
  for (int id = 1; id < kN; ++id) {
    identical = identical && read_file(dir + "/w2." + std::to_string(id)) == reference;
  }
  std::printf("delivered sequence (%d ops):\n%s", kTotal,
              std::string(reference.begin(), reference.end()).c_str());
  std::printf("total order identical at all 4 parties after SIGKILL + recovery: %s\n",
              identical && children_ok ? "YES" : "NO");
  fs::remove_all(dir);
  return identical && children_ok ? 0 : 1;
}
