// Quickstart: the smallest complete deployment.
//
// Sets up a 4-server system tolerating 1 Byzantine fault (the trusted
// dealer runs once), starts a simulated asynchronous network, submits a
// few payloads to atomic broadcast from different servers, and shows that
// every server delivers the identical totally-ordered sequence — with one
// server crashed.
//
//   build/examples/quickstart
#include <cstdio>
#include <string>

#include "protocols/atomic.hpp"
#include "protocols/harness.hpp"

using namespace sintra;

struct Node {
  std::unique_ptr<protocols::AtomicBroadcast> abc;
  std::vector<std::string> log;
};

int main() {
  // 1. The trusted dealer: keys for n = 4 servers, t = 1 (n > 3t).
  Rng rng(2001);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  std::printf("deployment: %s\n", deployment.quorum->describe().c_str());

  // 2. The asynchronous network; the scheduler is the adversary.
  net::RandomScheduler scheduler(42);

  // 3. Four servers running atomic broadcast; server 3 has crashed.
  protocols::Cluster<Node> cluster(
      deployment, scheduler,
      [](net::Party& party, int) {
        auto node = std::make_unique<Node>();
        node->abc = std::make_unique<protocols::AtomicBroadcast>(
            party, "abc", [n = node.get()](int origin, Bytes payload) {
              n->log.push_back("(" + std::to_string(origin) + ") " + printable(payload));
            });
        return node;
      },
      /*corrupted=*/crypto::party_bit(3));
  cluster.start();

  // 4. Concurrent submissions from different servers.
  cluster.protocol(0)->abc->submit(bytes_of("transfer 100 from A to B"));
  cluster.protocol(1)->abc->submit(bytes_of("transfer 25 from C to A"));
  cluster.protocol(2)->abc->submit(bytes_of("open account D"));

  // 5. Run to completion.
  if (!cluster.run_until_all([](Node& n) { return n.log.size() >= 3; }, 2000000)) {
    std::printf("FAILED: did not deliver\n");
    return 1;
  }

  std::printf("steps: %llu, messages: %llu\n",
              static_cast<unsigned long long>(cluster.simulator().now()),
              static_cast<unsigned long long>(cluster.simulator().total_messages()));
  bool identical = true;
  cluster.for_each([&](int id, Node& n) {
    std::printf("server %d delivered:\n", id);
    for (const auto& line : n.log) std::printf("   %s\n", line.c_str());
    identical = identical && n.log == cluster.protocol(0)->log;
  });
  std::printf("total order identical at all honest servers: %s\n",
              identical ? "YES" : "NO");
  return identical ? 0 : 1;
}
