// Optimistic mode with failover (paper §6, "Optimistic Protocols").
//
// Phase 1: the system runs the optimistic fast path — a sequencer orders
// requests with hash-chained threshold certificates, costing a fraction of
// the randomized stack.
//
// Phase 2: the network adversary cuts the sequencer off.  The fast path
// stalls (liveness only!), an application timeout fires, and the parties
// switch: they agree on the certified fast prefix and continue over the
// randomized atomic broadcast — no delivery lost, no order disagreement.
//
//   build/examples/optimistic_failover
#include <cstdio>

#include "protocols/harness.hpp"
#include "protocols/optimistic.hpp"

using namespace sintra;

struct Node {
  std::unique_ptr<protocols::OptimisticBroadcast> opt;
  std::vector<std::string> log;
};

int main() {
  Rng rng(6);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);

  // The adversary: initially benign, later blocks the sequencer (party 0).
  bool block_sequencer = false;
  net::RandomScheduler benign(6);
  net::BlockPartyScheduler blocking(6, 0);
  struct PhasedScheduler final : net::Scheduler {
    PhasedScheduler(bool& flag, net::Scheduler& a, net::Scheduler& b)
        : flag_(flag), benign_(a), blocking_(b) {}
    std::optional<std::size_t> pick(const std::vector<net::Message>& pending,
                                    std::uint64_t now) override {
      return flag_ ? blocking_.pick(pending, now) : benign_.pick(pending, now);
    }
    bool& flag_;
    net::Scheduler& benign_;
    net::Scheduler& blocking_;
  } scheduler(block_sequencer, benign, blocking);

  protocols::Cluster<Node> cluster(
      deployment, scheduler,
      [](net::Party& party, int) {
        auto node = std::make_unique<Node>();
        node->opt = std::make_unique<protocols::OptimisticBroadcast>(
            party, "opt", /*sequencer=*/0, [n = node.get()](Bytes payload) {
              n->log.push_back(printable(payload));
            });
        return node;
      });
  cluster.start();

  // Phase 1: fast path.
  for (int k = 0; k < 3; ++k) {
    cluster.protocol(k % 4)->opt->submit(bytes_of("fast-" + std::to_string(k)));
  }
  cluster.run_until_all([](Node& n) { return n.log.size() >= 3; }, 1000000);
  std::printf("phase 1 (fast path): 3 requests in %llu steps, %llu messages\n",
              static_cast<unsigned long long>(cluster.simulator().now()),
              static_cast<unsigned long long>(cluster.simulator().total_messages()));

  // Phase 2: the sequencer goes dark.
  block_sequencer = true;
  cluster.protocol(1)->opt->submit(bytes_of("stalled-1"));
  cluster.protocol(2)->opt->submit(bytes_of("stalled-2"));
  cluster.simulator().run(5000);
  std::printf("sequencer blocked: party 1 has %zu deliveries (fast path stalled)\n",
              cluster.protocol(1)->log.size());

  // Application timeout fires -> switch.
  cluster.protocol(1)->opt->switch_to_pessimistic();
  bool done = cluster.simulator().run_until(
      [&] {
        for (int id = 1; id < 4; ++id) {
          if (cluster.protocol(id)->log.size() < 5) return false;
        }
        return true;
      },
      30000000);
  if (!done) {
    std::printf("FAILED: pessimistic fallback did not deliver\n");
    return 1;
  }

  std::printf("phase 2 (after switch): all requests delivered pessimistically\n");
  bool identical = true;
  for (int id = 1; id < 4; ++id) {
    std::printf("  party %d:", id);
    for (const auto& entry : cluster.protocol(id)->log) std::printf(" %s", entry.c_str());
    std::printf("\n");
    identical = identical && cluster.protocol(id)->log == cluster.protocol(1)->log;
  }
  std::printf("order identical across reachable parties: %s\n", identical ? "YES" : "NO");
  std::printf("safety was never at risk: the switch agreed on the certified fast\n"
              "prefix before continuing (see protocols/optimistic.hpp).\n");
  return identical ? 0 : 1;
}
