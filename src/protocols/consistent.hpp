// Consistent broadcast (echo broadcast with a threshold-signature
// certificate), §3 / Reiter's protocol.
//
// Weaker than reliable broadcast: all honest parties that deliver, deliver
// the same message (uniqueness), but delivery by all is not guaranteed for
// a corrupted sender — a party may instead learn of the message and fetch
// it by the certificate.  In exchange it is cheaper: O(n) messages, and
// with the threshold signature the final message is constant-size
// (the paper's point about decreasing message size, §3).
//
// Flow: sender SENDs m; each party returns one certificate-signature share
// on (tag, digest(m)) to the sender; the sender combines a quorum of
// shares into a single threshold signature and broadcasts FINAL(m, sig).
// Uniqueness holds because two different messages would need two quorums
// of signers, which intersect in an honest party that signs only once.
//
// The (message, certificate) pair is transferable: anyone can verify it
// with the single public key.  VBA uses this to move proposals around.
#pragma once

#include <functional>
#include <optional>

#include "protocols/base.hpp"

namespace sintra::protocols {

/// A transferable certified message.
struct CertifiedMessage {
  Bytes message;
  crypto::BigInt certificate;  ///< threshold signature on (tag, digest)

  void encode(Writer& w) const;
  static CertifiedMessage decode(Reader& r);
};

/// Statement that the certificate signs for instance `tag`.
Bytes consistent_statement(const std::string& tag, BytesView message);

/// Verify a transferable certificate against the deployment's certificate
/// public key.
bool verify_certificate(const crypto::ThresholdSigPublicKey& pk, const std::string& tag,
                        const CertifiedMessage& cm);

class ConsistentBroadcast final : public ProtocolInstance {
 public:
  using DeliverFn = std::function<void(CertifiedMessage)>;

  ConsistentBroadcast(net::Party& host, std::string tag, int sender, DeliverFn deliver);

  /// Start broadcasting (designated sender only).  Re-entry with the same
  /// message re-broadcasts SEND (crash-recovery replay); a conflicting
  /// message throws.
  void start(Bytes message);

  [[nodiscard]] bool delivered() const { return delivered_; }
  /// Parties whose signature shares the combine-then-verify fallback
  /// proved invalid (sender side only).
  [[nodiscard]] crypto::PartySet suspected() const { return suspected_; }

 private:
  enum MsgType : std::uint8_t {
    kSend = 0,
    kShare = 1,
    kFinal = 2,
    kVerdict = 3,  ///< self-message: off-loop combine-then-verify result
  };

  void handle(int from, Reader& reader) override;
  void on_share(int from, Reader& reader);
  void maybe_combine();
  void on_verdict(int from, Reader& reader);

  int sender_;
  DeliverFn deliver_;
  bool started_ = false;
  bool signed_ = false;
  bool delivered_ = false;
  bool finalized_ = false;
  Bytes my_message_;  ///< sender: the message being certified
  crypto::PartySet share_owners_ = 0;
  crypto::PartySet share_rejected_ = 0;  ///< senders with a proven-bad share
  crypto::PartySet suspected_ = 0;
  int combine_attempt_ = 0;
  bool combine_inflight_ = false;
  std::vector<crypto::SigShare> shares_;
};

}  // namespace sintra::protocols
