#include "protocols/causal.hpp"

namespace sintra::protocols {

using crypto::Tdh2Ciphertext;
using crypto::Tdh2DecShare;

SecureCausalBroadcast::SecureCausalBroadcast(net::Party& host, std::string tag,
                                             DeliverFn deliver)
    : ProtocolInstance(host, std::move(tag)), deliver_(std::move(deliver)),
      abc_(host_, tag_ + "/abc",
           [this](int origin, Bytes payload) { on_ordered(origin, std::move(payload)); }) {}

crypto::Tdh2Ciphertext SecureCausalBroadcast::encrypt(const crypto::Tdh2PublicKey& pk,
                                                      BytesView request, BytesView label,
                                                      Rng& rng) {
  return pk.encrypt(request, label, rng);
}

void SecureCausalBroadcast::submit(const Tdh2Ciphertext& ciphertext) {
  const auto& pk = host_.public_keys().encryption;
  SINTRA_REQUIRE(pk.check_ciphertext(ciphertext), "sc-abc: refusing invalid ciphertext");
  Writer w;
  ciphertext.encode(w, pk.group());
  abc_.submit(w.take());
}

void SecureCausalBroadcast::on_ordered(int origin, Bytes ciphertext_bytes) {
  (void)origin;
  const auto& pk = host_.public_keys().encryption;
  Tdh2Ciphertext ciphertext;
  try {
    Reader reader(ciphertext_bytes);
    ciphertext = Tdh2Ciphertext::decode(reader, pk.group());
    reader.expect_done();
  } catch (const ProtocolError&) {
    return;  // corrupted server ordered garbage; skip it deterministically
  }
  if (!pk.check_ciphertext(ciphertext)) return;  // same at every honest party

  const Bytes id = ciphertext.id(pk.group());
  Slot& slot = slots_[id];
  if (slot.sequenced) return;  // ciphertext ordered twice (duplicate submission)
  slot.sequenced = true;
  slot.sequence = next_sequence_++;
  by_sequence_[slot.sequence] = id;
  if (!slot.have_ciphertext) {
    slot.ciphertext = std::move(ciphertext);
    slot.have_ciphertext = true;
  }

  // Only now — after the order is fixed — do honest parties help decrypt.
  auto my_shares = host_.keys().decryption.decrypt_shares(pk, slot.ciphertext, host_.rng());
  Writer w;
  w.bytes(id);
  w.vec(my_shares, [&](Writer& wr, const Tdh2DecShare& s) { s.encode(wr, pk.group()); });
  broadcast(w.take());

  // Early shares can be verified now that the ciphertext is known.
  auto early = std::move(slot.early_shares);
  slot.early_shares.clear();
  for (auto& [from, raw] : early) {
    try {
      Reader reader(raw);
      auto shares = reader.vec<Tdh2DecShare>(
          [&](Reader& r) { return Tdh2DecShare::decode(r, pk.group()); });
      reader.expect_done();
      add_share(slot, from, shares);
    } catch (const ProtocolError&) {
      // Malformed early share: drop.
    }
  }
}

void SecureCausalBroadcast::handle(int from, Reader& reader) {
  const Bytes id = reader.bytes();
  SINTRA_REQUIRE(id.size() == 32, "sc-abc: bad ciphertext id");
  Slot& slot = slots_[id];
  if (slot.done) return;
  if (!slot.have_ciphertext) {
    // Shares cannot be verified before the ciphertext arrives via ABC.
    slot.early_shares.emplace_back(from, reader.raw(reader.remaining()));
    return;
  }
  const auto& pk = host_.public_keys().encryption;
  auto shares =
      reader.vec<Tdh2DecShare>([&](Reader& r) { return Tdh2DecShare::decode(r, pk.group()); });
  reader.expect_done();
  add_share(slot, from, shares);
}

void SecureCausalBroadcast::add_share(Slot& slot, int from,
                                      const std::vector<Tdh2DecShare>& shares) {
  if (slot.done || crypto::contains(slot.share_from, from)) return;
  const auto& pk = host_.public_keys().encryption;
  for (const Tdh2DecShare& share : shares) {
    SINTRA_REQUIRE(pk.scheme().unit_owner(share.unit) == from,
                   "sc-abc: share unit not owned by sender");
    SINTRA_REQUIRE(pk.verify_share(slot.ciphertext, share), "sc-abc: invalid decryption share");
  }
  slot.share_from |= crypto::party_bit(from);
  for (const Tdh2DecShare& share : shares) slot.shares.push_back(share);

  if (!slot.sequenced || !pk.scheme().qualified(slot.share_from)) return;
  auto plaintext = pk.combine(slot.ciphertext, slot.shares);
  SINTRA_INVARIANT(plaintext.has_value(), "sc-abc: combine failed on qualified set");
  slot.done = true;
  ready_[slot.sequence] = {std::move(*plaintext), slot.ciphertext.label};
  maybe_flush();
}

void SecureCausalBroadcast::maybe_flush() {
  while (true) {
    auto it = ready_.find(next_deliver_);
    if (it == ready_.end()) return;
    auto [plaintext, label] = std::move(it->second);
    ready_.erase(it);
    const std::uint64_t sequence = next_deliver_++;
    host_.trace("sc-abc", tag_ + " delivering seq " + std::to_string(sequence));
    deliver_(sequence, std::move(plaintext), std::move(label));
  }
}

}  // namespace sintra::protocols
