#include "protocols/baselines/pbft_like.hpp"

#include "crypto/sha256.hpp"

namespace sintra::protocols {

namespace {
Bytes request_digest(BytesView payload) {
  auto d = crypto::hash_domain("sintra/pbft/req", payload);
  return Bytes(d.begin(), d.end());
}

// Bounds on the future-view buffer: how far ahead of the local view a
// message may be to be worth keeping, and how many messages per view.
// Liveness-only — overflow means the re-driven request path recovers.
constexpr int kFutureViewLookahead = 8;
constexpr std::size_t kFuturePerViewCap = 256;
// Live sequence window: slots are only created within this many sequences
// of the delivery cursor — a flooder spraying far sequence numbers in the
// current view allocates nothing.
constexpr std::uint64_t kSeqWindow = 512;
// Delivered slots kept (payloads included) for view-change re-proposal to
// laggards; older ones are pruned and their budget charge released.
constexpr std::uint64_t kCommittedRetention = 128;
// Leader-side request-dedupe digests kept (FIFO).
constexpr std::size_t kSeenCap = 4096;
}  // namespace

PbftLikeBroadcast::PbftLikeBroadcast(net::Party& host, std::string tag, DeliverFn deliver)
    : ProtocolInstance(host, std::move(tag)), deliver_(std::move(deliver)) {}

bool PbftLikeBroadcast::seq_in_window(std::uint64_t seq) const {
  // The live window reaches BACK over the retention range, not just
  // forward: a party that already delivered a slot must keep taking part
  // in its prepare/commit rounds after a view change, or laggards behind
  // it can never assemble a vote quorum for that slot.
  const std::uint64_t floor =
      next_deliver_ > kCommittedRetention ? next_deliver_ - kCommittedRetention : 0;
  return seq >= floor && seq < next_deliver_ + kSeqWindow;
}

bool PbftLikeBroadcast::charge_slot_payload(SlotState& slot, int from, std::size_t bytes) {
  if (!host_.budget().try_charge(from, tag_, bytes)) return false;
  slot.charged_peer = from;
  slot.charged_bytes = bytes;
  return true;
}

void PbftLikeBroadcast::release_slot(SlotState& slot) {
  if (slot.charged_peer >= 0 && slot.charged_bytes > 0) {
    host_.budget().release(slot.charged_peer, tag_, slot.charged_bytes);
  }
  slot.charged_peer = -1;
  slot.charged_bytes = 0;
}

void PbftLikeBroadcast::note_seen_request(Bytes digest) {
  seen_requests_.insert(digest);
  seen_fifo_.push_back(std::move(digest));
  if (seen_fifo_.size() > kSeenCap) {
    seen_requests_.erase(seen_fifo_.front());
    seen_fifo_.pop_front();
  }
}

PbftLikeBroadcast::~PbftLikeBroadcast() {
  if (fd_timer_ != 0) host_.cancel_timer(fd_timer_);
}

void PbftLikeBroadcast::enable_failure_detector(std::uint64_t timeout) {
  SINTRA_REQUIRE(timeout > 0, "pbft: failure-detector timeout must be positive");
  fd_timeout_ = timeout;
  if (!pending_.empty()) arm_failure_detector();
}

void PbftLikeBroadcast::arm_failure_detector() {
  if (fd_timeout_ == 0 || fd_timer_ != 0) return;
  fd_progress_mark_ = delivered_count_;
  // CL99's timeout growth: each fruitless suspicion doubles the next
  // timeout (capped).  Without this, a base timeout shorter than one
  // three-phase round makes views rotate faster than any slot can commit
  // and the protocol livelocks through correct leaders.
  const std::uint64_t delay = fd_timeout_ << std::min(fd_backoff_, std::uint32_t{6});
  fd_timer_ = host_.schedule_timer(delay, [this] {
    fd_timer_ = 0;
    if (pending_.empty()) return;  // nothing outstanding — the detector idles
    if (delivered_count_ == fd_progress_mark_) {
      ++fd_backoff_;
      on_timeout();
    } else {
      fd_backoff_ = 0;  // progress happened: trust the timeout again
    }
    arm_failure_detector();  // keep suspecting until progress resumes
  });
}

void PbftLikeBroadcast::submit(Bytes payload) {
  pending_.push_back(payload);
  arm_failure_detector();
  if (me() == leader()) {
    leader_propose(std::move(payload));
    return;
  }
  Writer w;
  w.u8(kForward);
  w.bytes(payload);
  send(leader(), w.take());
}

void PbftLikeBroadcast::leader_propose(Bytes payload) {
  Bytes digest = request_digest(payload);
  if (seen_requests_.contains(digest)) return;
  note_seen_request(std::move(digest));
  Writer w;
  w.u8(kPrePrepare);
  w.u32(static_cast<std::uint32_t>(view_));
  w.u64(next_seq_++);
  w.bytes(payload);
  broadcast(w.take());
}

void PbftLikeBroadcast::on_timeout() {
  // Failure detector suspects the leader: vote to move to the next view.
  // The vote carries this party's prepared/committed slots so the new
  // leader can re-propose them (see ViewChangeState in the header).
  Writer w;
  w.u8(kViewChange);
  w.u32(static_cast<std::uint32_t>(view_ + 1));
  std::uint32_t count = 0;
  for (const auto& [seq, slot] : slots_) {
    if (slot.commit_sent || slot.committed) ++count;
  }
  w.u32(count);
  for (const auto& [seq, slot] : slots_) {
    if (!slot.commit_sent && !slot.committed) continue;
    w.u64(seq);
    w.bytes(slot.payload);
  }
  broadcast(w.take());
}

void PbftLikeBroadcast::handle(int from, Reader& reader) {
  const std::uint8_t type = reader.u8();
  switch (type) {
    case kForward: {
      Bytes payload = reader.bytes();
      reader.expect_done();
      if (me() == leader()) leader_propose(std::move(payload));
      return;
    }
    case kPrePrepare: {
      const int view = static_cast<int>(reader.u32());
      const std::uint64_t seq = reader.u64();
      Bytes payload = reader.bytes();
      reader.expect_done();
      SINTRA_REQUIRE(seq < 1 << 24, "pbft: implausible sequence");
      if (view > view_) {
        // Only that view's leader can legitimately pre-prepare in it.
        if (from == view % host_.n()) {
          Writer w;
          w.u8(kPrePrepare);
          w.u32(static_cast<std::uint32_t>(view));
          w.u64(seq);
          w.bytes(payload);
          stash_future(view, from, w.take());
        }
        return;
      }
      if (view < view_ || from != leader()) return;
      // Live sequence window: beyond it a flooding leader would otherwise
      // allocate slots at will.
      if (!seq_in_window(seq)) return;
      auto found = slots_.find(seq);
      if (found == slots_.end()) {
        SlotState fresh;
        if (!charge_slot_payload(fresh, from, payload.size() + 16)) return;
        fresh.payload = std::move(payload);
        fresh.have_payload = true;
        found = slots_.emplace(seq, std::move(fresh)).first;
      } else if (!found->second.have_payload) {
        if (!charge_slot_payload(found->second, from, payload.size() + 16)) return;
        found->second.payload = std::move(payload);
        found->second.have_payload = true;
      }
      SlotState& slot = found->second;
      if (slot.prepared_sent) return;
      slot.prepared_sent = true;
      Writer w;
      w.u8(kPrepare);
      w.u32(static_cast<std::uint32_t>(view));
      w.u64(seq);
      w.bytes(slot.payload);
      broadcast(w.take());
      return;
    }
    case kPrepare: {
      const int view = static_cast<int>(reader.u32());
      const std::uint64_t seq = reader.u64();
      Bytes payload = reader.bytes();
      reader.expect_done();
      SINTRA_REQUIRE(seq < 1 << 24, "pbft: implausible sequence");
      if (view > view_) {
        Writer w;
        w.u8(kPrepare);
        w.u32(static_cast<std::uint32_t>(view));
        w.u64(seq);
        w.bytes(payload);
        stash_future(view, from, w.take());
        return;
      }
      if (view < view_) return;
      if (!seq_in_window(seq)) return;
      auto found = slots_.find(seq);
      if (found == slots_.end()) {
        SlotState fresh;
        // Charge failure degrades gracefully: the prepare vote still
        // counts, only the payload copy is declined (a later message can
        // still supply it).
        if (charge_slot_payload(fresh, from, payload.size() + 16)) {
          fresh.payload = std::move(payload);
          fresh.have_payload = true;
        }
        found = slots_.emplace(seq, std::move(fresh)).first;
      } else if (!found->second.have_payload) {
        if (charge_slot_payload(found->second, from, payload.size() + 16)) {
          found->second.payload = std::move(payload);
          found->second.have_payload = true;
        }
      }
      SlotState& slot = found->second;
      slot.prepares |= crypto::party_bit(from);
      if (!slot.commit_sent && quorum().is_vote_quorum(slot.prepares)) {
        slot.commit_sent = true;
        Writer w;
        w.u8(kCommit);
        w.u32(static_cast<std::uint32_t>(view));
        w.u64(seq);
        broadcast(w.take());
      }
      return;
    }
    case kCommit: {
      const int view = static_cast<int>(reader.u32());
      const std::uint64_t seq = reader.u64();
      reader.expect_done();
      SINTRA_REQUIRE(seq < 1 << 24, "pbft: implausible sequence");
      if (view > view_) {
        Writer w;
        w.u8(kCommit);
        w.u32(static_cast<std::uint32_t>(view));
        w.u64(seq);
        stash_future(view, from, w.take());
        return;
      }
      if (view < view_) return;
      if (!seq_in_window(seq)) return;
      SlotState& slot = slots_[seq];
      slot.commits |= crypto::party_bit(from);
      if (!slot.committed && slot.have_payload && quorum().is_vote_quorum(slot.commits)) {
        slot.committed = true;
        maybe_deliver();
      }
      return;
    }
    case kViewChange: {
      const int view = static_cast<int>(reader.u32());
      const std::uint32_t count = reader.u32();
      SINTRA_REQUIRE(view >= 0 && view < 1 << 20, "pbft: implausible view");
      SINTRA_REQUIRE(count < 1u << 16, "pbft: implausible view-change size");
      std::map<std::uint64_t, Bytes> reported;
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t seq = reader.u64();
        SINTRA_REQUIRE(seq < 1 << 24, "pbft: implausible sequence");
        reported.emplace(seq, reader.bytes());
      }
      reader.expect_done();
      if (view <= view_ || view > view_ + kFutureViewLookahead) return;
      ViewChangeState& vc = view_votes_[view];
      vc.votes |= crypto::party_bit(from);
      for (auto& [seq, payload] : reported) {
        if (vc.prepared.contains(seq)) continue;
        // The vote always counts; only the payload copy is subject to the
        // budget.  Per-peer caps mean an attacker inflating its reported
        // set drops its own payloads while honest (small) sets stick.
        const std::size_t cost = payload.size() + 24;
        if (!host_.budget().try_charge(from, tag_, cost)) continue;
        vc.charges.emplace_back(from, cost);
        vc.prepared.emplace(seq, std::move(payload));
      }
      if (quorum().is_vote_quorum(vc.votes)) enter_view(view, std::move(vc.prepared));
      return;
    }
    default:
      throw ProtocolError("pbft: unknown message type");
  }
}

void PbftLikeBroadcast::stash_future(int view, int from, Bytes raw) {
  // Phase traffic for a view we have not entered yet.  Parties enter a
  // view when *they* observe the vote quorum, so during a view change the
  // new round's messages can race ahead of a party's own transition;
  // dropping them would stall slots forever even with every party honest.
  if (view > view_ + kFutureViewLookahead) return;
  auto& bucket = future_[view];
  if (bucket.size() >= kFuturePerViewCap) return;
  const std::size_t cost = raw.size() + 16;
  while (!host_.budget().try_charge(from, tag_, cost)) {
    // Evict the same peer's most recent stash in the farthest future view
    // (first message per (peer, view) survives longest); if the incoming
    // message is itself the farthest, it is the one dropped.
    bool evicted = false;
    for (auto it = future_.rbegin(); it != future_.rend() && it->first > view; ++it) {
      auto& entries = it->second;
      for (std::size_t i = entries.size(); i-- > 0;) {
        if (entries[i].first != from) continue;
        host_.budget().release(from, tag_, entries[i].second.size() + 16);
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
        host_.budget().note_eviction();
        evicted = true;
        break;
      }
      if (evicted) break;
    }
    if (!evicted) return;
  }
  bucket.emplace_back(from, std::move(raw));
}

void PbftLikeBroadcast::enter_view(int view, std::map<std::uint64_t, Bytes> adopted) {
  view_ = view;
  host_.trace("pbft", tag_ + " entering view " + std::to_string(view));
  for (auto it = view_votes_.begin();
       it != view_votes_.end() && it->first <= view_;) {
    for (const auto& [peer, bytes] : it->second.charges) {
      host_.budget().release(peer, tag_, bytes);
    }
    it = view_votes_.erase(it);
  }
  // Un-committed, un-prepared slots are abandoned (the pending queue
  // re-drives those requests); prepared ones survive inside the
  // view-change votes.  Committed slots are kept — their payload is final
  // — but their round state resets so they can take part when the new
  // leader re-proposes them for parties that missed the commit.
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (!it->second.committed) {
      release_slot(it->second);
      it = slots_.erase(it);
    } else {
      it->second.prepares = 0;
      it->second.commits = 0;
      it->second.prepared_sent = false;
      it->second.commit_sent = false;
      ++it;
    }
  }
  next_seq_ = next_deliver_;
  seen_requests_.clear();
  seen_fifo_.clear();
  if (me() == leader()) {
    // Re-propose, at their original sequence numbers, everything the
    // view-change quorum reported prepared plus everything committed
    // locally: a slot that committed anywhere is guaranteed to be among
    // these, so no party's delivered prefix can be orphaned.
    for (const auto& [seq, slot] : slots_) adopted.emplace(seq, slot.payload);
    for (const auto& [seq, payload] : adopted) {
      note_seen_request(request_digest(payload));
      Writer w;
      w.u8(kPrePrepare);
      w.u32(static_cast<std::uint32_t>(view_));
      w.u64(seq);
      w.bytes(payload);
      broadcast(w.take());
      next_seq_ = std::max(next_seq_, seq + 1);
    }
    for (const Bytes& payload : pending_) leader_propose(payload);
  } else {
    for (const Bytes& payload : pending_) {
      Writer w;
      w.u8(kForward);
      w.bytes(payload);
      send(leader(), w.take());
    }
  }
  // Replay round traffic that arrived before we made the transition;
  // buffers for views we skipped past are stale and dropped.
  while (!future_.empty() && future_.begin()->first <= view_) {
    auto node = future_.extract(future_.begin());
    const bool replay = node.key() == view_;
    for (auto& [sender, raw] : node.mapped()) {
      host_.budget().release(sender, tag_, raw.size() + 16);
      if (!replay) continue;
      Reader r(raw);
      try {
        handle(sender, r);
      } catch (const ProtocolError&) {
        // Stashed raws were never validated; one bad one must not kill
        // the rest of the replay.
      }
    }
  }
}

void PbftLikeBroadcast::maybe_deliver() {
  bool delivered_any = false;
  while (true) {
    auto it = slots_.find(next_deliver_);
    if (it == slots_.end() || !it->second.committed) break;
    ++next_deliver_;
    ++delivered_count_;
    delivered_any = true;
    const Bytes digest = request_digest(it->second.payload);
    std::erase_if(pending_,
                  [&](const Bytes& p) { return request_digest(p) == digest; });
    deliver_(it->second.payload);
  }
  // Delivery is the strongest progress signal there is: snap the CL99
  // timeout growth back to base *now* rather than letting the currently
  // armed (possibly 64x-inflated) timer run out before noticing — one
  // historic stall must not leave the detector desensitised for the rest
  // of the run (issue 8).
  if (delivered_any && fd_backoff_ > 0) {
    fd_backoff_ = 0;
    if (fd_timer_ != 0) {
      host_.cancel_timer(fd_timer_);
      fd_timer_ = 0;
    }
    if (!pending_.empty()) arm_failure_detector();
  }
  // Retention prune: delivered slots far behind the cursor have served
  // their view-change re-proposal purpose; release their payload charges.
  while (!slots_.empty() &&
         slots_.begin()->first + kCommittedRetention < next_deliver_ &&
         slots_.begin()->second.committed) {
    release_slot(slots_.begin()->second);
    slots_.erase(slots_.begin());
  }
}

}  // namespace sintra::protocols
