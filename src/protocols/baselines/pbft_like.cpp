#include "protocols/baselines/pbft_like.hpp"

#include "crypto/sha256.hpp"

namespace sintra::protocols {

namespace {
Bytes request_digest(BytesView payload) {
  auto d = crypto::hash_domain("sintra/pbft/req", payload);
  return Bytes(d.begin(), d.end());
}
}  // namespace

PbftLikeBroadcast::PbftLikeBroadcast(net::Party& host, std::string tag, DeliverFn deliver)
    : ProtocolInstance(host, std::move(tag)), deliver_(std::move(deliver)) {}

void PbftLikeBroadcast::submit(Bytes payload) {
  pending_.push_back(payload);
  if (me() == leader()) {
    leader_propose(std::move(payload));
    return;
  }
  Writer w;
  w.u8(kForward);
  w.bytes(payload);
  send(leader(), w.take());
}

void PbftLikeBroadcast::leader_propose(Bytes payload) {
  const Bytes digest = request_digest(payload);
  if (seen_requests_.contains(digest)) return;
  seen_requests_.insert(digest);
  Writer w;
  w.u8(kPrePrepare);
  w.u32(static_cast<std::uint32_t>(view_));
  w.u64(next_seq_++);
  w.bytes(payload);
  broadcast(w.take());
}

void PbftLikeBroadcast::on_timeout() {
  // Failure detector suspects the leader: vote to move to the next view.
  Writer w;
  w.u8(kViewChange);
  w.u32(static_cast<std::uint32_t>(view_ + 1));
  broadcast(w.take());
}

void PbftLikeBroadcast::handle(int from, Reader& reader) {
  const std::uint8_t type = reader.u8();
  switch (type) {
    case kForward: {
      Bytes payload = reader.bytes();
      reader.expect_done();
      if (me() == leader()) leader_propose(std::move(payload));
      return;
    }
    case kPrePrepare: {
      const int view = static_cast<int>(reader.u32());
      const std::uint64_t seq = reader.u64();
      Bytes payload = reader.bytes();
      reader.expect_done();
      SINTRA_REQUIRE(seq < 1 << 24, "pbft: implausible sequence");
      if (view != view_ || from != leader()) return;
      SlotState& slot = slots_[seq];
      if (slot.prepared_sent) return;
      slot.payload = std::move(payload);
      slot.have_payload = true;
      slot.prepared_sent = true;
      Writer w;
      w.u8(kPrepare);
      w.u32(static_cast<std::uint32_t>(view));
      w.u64(seq);
      w.bytes(slot.payload);
      broadcast(w.take());
      return;
    }
    case kPrepare: {
      const int view = static_cast<int>(reader.u32());
      const std::uint64_t seq = reader.u64();
      Bytes payload = reader.bytes();
      reader.expect_done();
      SINTRA_REQUIRE(seq < 1 << 24, "pbft: implausible sequence");
      if (view != view_) return;
      SlotState& slot = slots_[seq];
      if (!slot.have_payload) {
        slot.payload = std::move(payload);
        slot.have_payload = true;
      }
      slot.prepares |= crypto::party_bit(from);
      if (!slot.commit_sent && quorum().is_vote_quorum(slot.prepares)) {
        slot.commit_sent = true;
        Writer w;
        w.u8(kCommit);
        w.u32(static_cast<std::uint32_t>(view));
        w.u64(seq);
        broadcast(w.take());
      }
      return;
    }
    case kCommit: {
      const int view = static_cast<int>(reader.u32());
      const std::uint64_t seq = reader.u64();
      reader.expect_done();
      SINTRA_REQUIRE(seq < 1 << 24, "pbft: implausible sequence");
      if (view != view_) return;
      SlotState& slot = slots_[seq];
      slot.commits |= crypto::party_bit(from);
      if (!slot.committed && slot.have_payload && quorum().is_vote_quorum(slot.commits)) {
        slot.committed = true;
        maybe_deliver();
      }
      return;
    }
    case kViewChange: {
      const int view = static_cast<int>(reader.u32());
      reader.expect_done();
      SINTRA_REQUIRE(view >= 0 && view < 1 << 20, "pbft: implausible view");
      if (view <= view_) return;
      crypto::PartySet& votes = view_votes_[view];
      votes |= crypto::party_bit(from);
      if (quorum().is_vote_quorum(votes)) enter_view(view);
      return;
    }
    default:
      throw ProtocolError("pbft: unknown message type");
  }
}

void PbftLikeBroadcast::enter_view(int view) {
  view_ = view;
  host_.trace("pbft", tag_ + " entering view " + std::to_string(view));
  // Un-committed slots are abandoned; clients (here: the pending queue)
  // re-drive their requests through the new leader.
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (!it->second.committed) {
      it = slots_.erase(it);
    } else {
      ++it;
    }
  }
  next_seq_ = next_deliver_;
  seen_requests_.clear();
  if (me() == leader()) {
    for (const Bytes& payload : pending_) leader_propose(payload);
  } else {
    for (const Bytes& payload : pending_) {
      Writer w;
      w.u8(kForward);
      w.bytes(payload);
      send(leader(), w.take());
    }
  }
}

void PbftLikeBroadcast::maybe_deliver() {
  while (true) {
    auto it = slots_.find(next_deliver_);
    if (it == slots_.end() || !it->second.committed) return;
    ++next_deliver_;
    ++delivered_count_;
    const Bytes digest = request_digest(it->second.payload);
    std::erase_if(pending_,
                  [&](const Bytes& p) { return request_digest(p) == digest; });
    deliver_(it->second.payload);
  }
}

}  // namespace sintra::protocols
