#include "protocols/baselines/pbft_like.hpp"

#include "crypto/sha256.hpp"

namespace sintra::protocols {

namespace {
Bytes request_digest(BytesView payload) {
  auto d = crypto::hash_domain("sintra/pbft/req", payload);
  return Bytes(d.begin(), d.end());
}

// Bounds on the future-view buffer: how far ahead of the local view a
// message may be to be worth keeping, and how many messages per view.
// Liveness-only — overflow means the re-driven request path recovers.
constexpr int kFutureViewLookahead = 8;
constexpr std::size_t kFuturePerViewCap = 256;
}  // namespace

PbftLikeBroadcast::PbftLikeBroadcast(net::Party& host, std::string tag, DeliverFn deliver)
    : ProtocolInstance(host, std::move(tag)), deliver_(std::move(deliver)) {}

PbftLikeBroadcast::~PbftLikeBroadcast() {
  if (fd_timer_ != 0) host_.cancel_timer(fd_timer_);
}

void PbftLikeBroadcast::enable_failure_detector(std::uint64_t timeout) {
  SINTRA_REQUIRE(timeout > 0, "pbft: failure-detector timeout must be positive");
  fd_timeout_ = timeout;
  if (!pending_.empty()) arm_failure_detector();
}

void PbftLikeBroadcast::arm_failure_detector() {
  if (fd_timeout_ == 0 || fd_timer_ != 0) return;
  fd_progress_mark_ = delivered_count_;
  fd_timer_ = host_.schedule_timer(fd_timeout_, [this] {
    fd_timer_ = 0;
    if (pending_.empty()) return;  // nothing outstanding — the detector idles
    if (delivered_count_ == fd_progress_mark_) on_timeout();
    arm_failure_detector();  // keep suspecting until progress resumes
  });
}

void PbftLikeBroadcast::submit(Bytes payload) {
  pending_.push_back(payload);
  arm_failure_detector();
  if (me() == leader()) {
    leader_propose(std::move(payload));
    return;
  }
  Writer w;
  w.u8(kForward);
  w.bytes(payload);
  send(leader(), w.take());
}

void PbftLikeBroadcast::leader_propose(Bytes payload) {
  const Bytes digest = request_digest(payload);
  if (seen_requests_.contains(digest)) return;
  seen_requests_.insert(digest);
  Writer w;
  w.u8(kPrePrepare);
  w.u32(static_cast<std::uint32_t>(view_));
  w.u64(next_seq_++);
  w.bytes(payload);
  broadcast(w.take());
}

void PbftLikeBroadcast::on_timeout() {
  // Failure detector suspects the leader: vote to move to the next view.
  // The vote carries this party's prepared/committed slots so the new
  // leader can re-propose them (see ViewChangeState in the header).
  Writer w;
  w.u8(kViewChange);
  w.u32(static_cast<std::uint32_t>(view_ + 1));
  std::uint32_t count = 0;
  for (const auto& [seq, slot] : slots_) {
    if (slot.commit_sent || slot.committed) ++count;
  }
  w.u32(count);
  for (const auto& [seq, slot] : slots_) {
    if (!slot.commit_sent && !slot.committed) continue;
    w.u64(seq);
    w.bytes(slot.payload);
  }
  broadcast(w.take());
}

void PbftLikeBroadcast::handle(int from, Reader& reader) {
  const std::uint8_t type = reader.u8();
  switch (type) {
    case kForward: {
      Bytes payload = reader.bytes();
      reader.expect_done();
      if (me() == leader()) leader_propose(std::move(payload));
      return;
    }
    case kPrePrepare: {
      const int view = static_cast<int>(reader.u32());
      const std::uint64_t seq = reader.u64();
      Bytes payload = reader.bytes();
      reader.expect_done();
      SINTRA_REQUIRE(seq < 1 << 24, "pbft: implausible sequence");
      if (view > view_) {
        // Only that view's leader can legitimately pre-prepare in it.
        if (from == view % host_.n()) {
          Writer w;
          w.u8(kPrePrepare);
          w.u32(static_cast<std::uint32_t>(view));
          w.u64(seq);
          w.bytes(payload);
          stash_future(view, from, w.take());
        }
        return;
      }
      if (view < view_ || from != leader()) return;
      SlotState& slot = slots_[seq];
      if (slot.prepared_sent) return;
      slot.payload = std::move(payload);
      slot.have_payload = true;
      slot.prepared_sent = true;
      Writer w;
      w.u8(kPrepare);
      w.u32(static_cast<std::uint32_t>(view));
      w.u64(seq);
      w.bytes(slot.payload);
      broadcast(w.take());
      return;
    }
    case kPrepare: {
      const int view = static_cast<int>(reader.u32());
      const std::uint64_t seq = reader.u64();
      Bytes payload = reader.bytes();
      reader.expect_done();
      SINTRA_REQUIRE(seq < 1 << 24, "pbft: implausible sequence");
      if (view > view_) {
        Writer w;
        w.u8(kPrepare);
        w.u32(static_cast<std::uint32_t>(view));
        w.u64(seq);
        w.bytes(payload);
        stash_future(view, from, w.take());
        return;
      }
      if (view < view_) return;
      SlotState& slot = slots_[seq];
      if (!slot.have_payload) {
        slot.payload = std::move(payload);
        slot.have_payload = true;
      }
      slot.prepares |= crypto::party_bit(from);
      if (!slot.commit_sent && quorum().is_vote_quorum(slot.prepares)) {
        slot.commit_sent = true;
        Writer w;
        w.u8(kCommit);
        w.u32(static_cast<std::uint32_t>(view));
        w.u64(seq);
        broadcast(w.take());
      }
      return;
    }
    case kCommit: {
      const int view = static_cast<int>(reader.u32());
      const std::uint64_t seq = reader.u64();
      reader.expect_done();
      SINTRA_REQUIRE(seq < 1 << 24, "pbft: implausible sequence");
      if (view > view_) {
        Writer w;
        w.u8(kCommit);
        w.u32(static_cast<std::uint32_t>(view));
        w.u64(seq);
        stash_future(view, from, w.take());
        return;
      }
      if (view < view_) return;
      SlotState& slot = slots_[seq];
      slot.commits |= crypto::party_bit(from);
      if (!slot.committed && slot.have_payload && quorum().is_vote_quorum(slot.commits)) {
        slot.committed = true;
        maybe_deliver();
      }
      return;
    }
    case kViewChange: {
      const int view = static_cast<int>(reader.u32());
      const std::uint32_t count = reader.u32();
      SINTRA_REQUIRE(view >= 0 && view < 1 << 20, "pbft: implausible view");
      SINTRA_REQUIRE(count < 1u << 16, "pbft: implausible view-change size");
      std::map<std::uint64_t, Bytes> reported;
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t seq = reader.u64();
        SINTRA_REQUIRE(seq < 1 << 24, "pbft: implausible sequence");
        reported.emplace(seq, reader.bytes());
      }
      reader.expect_done();
      if (view <= view_) return;
      ViewChangeState& vc = view_votes_[view];
      vc.votes |= crypto::party_bit(from);
      for (auto& [seq, payload] : reported) vc.prepared.emplace(seq, std::move(payload));
      if (quorum().is_vote_quorum(vc.votes)) enter_view(view, std::move(vc.prepared));
      return;
    }
    default:
      throw ProtocolError("pbft: unknown message type");
  }
}

void PbftLikeBroadcast::stash_future(int view, int from, Bytes raw) {
  // Phase traffic for a view we have not entered yet.  Parties enter a
  // view when *they* observe the vote quorum, so during a view change the
  // new round's messages can race ahead of a party's own transition;
  // dropping them would stall slots forever even with every party honest.
  if (view > view_ + kFutureViewLookahead) return;
  auto& bucket = future_[view];
  if (bucket.size() >= kFuturePerViewCap) return;
  bucket.emplace_back(from, std::move(raw));
}

void PbftLikeBroadcast::enter_view(int view, std::map<std::uint64_t, Bytes> adopted) {
  view_ = view;
  host_.trace("pbft", tag_ + " entering view " + std::to_string(view));
  view_votes_.erase(view_votes_.begin(), view_votes_.upper_bound(view_));
  // Un-committed, un-prepared slots are abandoned (the pending queue
  // re-drives those requests); prepared ones survive inside the
  // view-change votes.  Committed slots are kept — their payload is final
  // — but their round state resets so they can take part when the new
  // leader re-proposes them for parties that missed the commit.
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (!it->second.committed) {
      it = slots_.erase(it);
    } else {
      it->second.prepares = 0;
      it->second.commits = 0;
      it->second.prepared_sent = false;
      it->second.commit_sent = false;
      ++it;
    }
  }
  next_seq_ = next_deliver_;
  seen_requests_.clear();
  if (me() == leader()) {
    // Re-propose, at their original sequence numbers, everything the
    // view-change quorum reported prepared plus everything committed
    // locally: a slot that committed anywhere is guaranteed to be among
    // these, so no party's delivered prefix can be orphaned.
    for (const auto& [seq, slot] : slots_) adopted.emplace(seq, slot.payload);
    for (const auto& [seq, payload] : adopted) {
      seen_requests_.insert(request_digest(payload));
      Writer w;
      w.u8(kPrePrepare);
      w.u32(static_cast<std::uint32_t>(view_));
      w.u64(seq);
      w.bytes(payload);
      broadcast(w.take());
      next_seq_ = std::max(next_seq_, seq + 1);
    }
    for (const Bytes& payload : pending_) leader_propose(payload);
  } else {
    for (const Bytes& payload : pending_) {
      Writer w;
      w.u8(kForward);
      w.bytes(payload);
      send(leader(), w.take());
    }
  }
  // Replay round traffic that arrived before we made the transition;
  // buffers for views we skipped past are stale and dropped.
  while (!future_.empty() && future_.begin()->first <= view_) {
    auto node = future_.extract(future_.begin());
    if (node.key() != view_) continue;
    for (auto& [sender, raw] : node.mapped()) {
      Reader replay(raw);
      handle(sender, replay);
    }
  }
}

void PbftLikeBroadcast::maybe_deliver() {
  while (true) {
    auto it = slots_.find(next_deliver_);
    if (it == slots_.end() || !it->second.committed) return;
    ++next_deliver_;
    ++delivered_count_;
    const Bytes digest = request_digest(it->second.payload);
    std::erase_if(pending_,
                  [&](const Bytes& p) { return request_digest(p) == digest; });
    deliver_(it->second.payload);
  }
}

}  // namespace sintra::protocols
