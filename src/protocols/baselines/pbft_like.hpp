// Deterministic leader-based ordering baseline in the style of
// Castro–Liskov (CL99) — one of the comparison systems of Figure 1.
//
// Three-phase commit under a leader: PRE-PREPARE(seq, m) from the leader,
// PREPARE from everyone, COMMIT after a vote quorum of PREPAREs, delivery
// after a vote quorum of COMMITs, in sequence order.  View changes rotate
// the leader; because the protocol is deterministic, progress depends on
// a *failure detector*: the harness signals suspected leaders via
// on_timeout(), modelling CL99's timeout mechanism.
//
// This baseline exists to regenerate the paper's central comparison
// (experiment F1): it is fast and lean in failure-free runs — fewer
// messages than the randomized stack — but a network adversary that
// starves whichever party is currently leader stalls it forever (each new
// leader is starved in turn), while the randomized protocols keep
// terminating under the same scheduler.  Safety is maintained throughout
// (no conflicting deliveries), matching the paper's description of CL99:
// "it can be blocked by a Byzantine adversary (violating liveness), but
// will maintain safety under all circumstances."
//
// Scope note: this is a benchmarking baseline, not a full PBFT — view
// changes carry the set of prepared requests rather than full PBFT
// new-view certificates, sufficient for the benign and
// scheduling-adversary scenarios the experiments run.
#pragma once

#include <deque>
#include <map>
#include <set>

#include "protocols/base.hpp"

namespace sintra::protocols {

class PbftLikeBroadcast final : public ProtocolInstance {
 public:
  using DeliverFn = std::function<void(Bytes payload)>;

  PbftLikeBroadcast(net::Party& host, std::string tag, DeliverFn deliver);
  ~PbftLikeBroadcast() override;

  /// Queue a payload; it is forwarded to the current leader.
  void submit(Bytes payload);

  /// Failure-detector signal: suspect the current leader and vote for a
  /// view change.  Called by the harness (the "timeout") or, once
  /// enable_failure_detector() arms it, by a substrate timer.
  void on_timeout();

  /// Arm an automatic failure detector on the host's Network timers:
  /// while local submissions are outstanding and no delivery happens for
  /// `timeout` network time units, on_timeout() fires and the detector
  /// re-arms (suspecting each unresponsive leader in turn).  Opt-in —
  /// without it the protocol stays purely message-driven, which is what
  /// the scheduling-adversary experiments measure.
  void enable_failure_detector(std::uint64_t timeout);

  [[nodiscard]] int view() const { return view_; }
  [[nodiscard]] int leader() const { return view_ % host_.n(); }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_count_; }
  /// Current CL99 timeout-growth exponent (0 = base timeout; test hook).
  [[nodiscard]] std::uint32_t fd_backoff() const { return fd_backoff_; }

 private:
  enum MsgType : std::uint8_t {
    kForward = 0,     ///< request forwarded to the leader
    kPrePrepare = 1,
    kPrepare = 2,
    kCommit = 3,
    kViewChange = 4,
  };

  struct SlotState {
    Bytes payload;
    bool have_payload = false;
    bool prepared_sent = false;
    bool commit_sent = false;
    bool committed = false;
    crypto::PartySet prepares = 0;
    crypto::PartySet commits = 0;
    int charged_peer = -1;        ///< peer billed for the stored payload
    std::size_t charged_bytes = 0;
  };

  void handle(int from, Reader& reader) override;
  void leader_propose(Bytes payload);
  void maybe_deliver();
  void enter_view(int view, std::map<std::uint64_t, Bytes> adopted);
  void arm_failure_detector();
  void stash_future(int view, int from, Bytes raw);
  [[nodiscard]] bool seq_in_window(std::uint64_t seq) const;
  bool charge_slot_payload(SlotState& slot, int from, std::size_t bytes);
  void release_slot(SlotState& slot);
  void note_seen_request(Bytes digest);

  DeliverFn deliver_;
  std::uint64_t fd_timeout_ = 0;        ///< 0 = failure detector disabled
  net::Network::TimerId fd_timer_ = 0;  ///< 0 = not armed
  std::uint64_t fd_progress_mark_ = 0;  ///< delivered_count_ when armed
  std::uint32_t fd_backoff_ = 0;        ///< fruitless suspicions since progress
  int view_ = 0;
  std::uint64_t next_seq_ = 0;       ///< leader: next sequence to assign
  std::uint64_t next_deliver_ = 0;
  std::uint64_t delivered_count_ = 0;
  std::map<std::uint64_t, SlotState> slots_;        ///< keyed by sequence
  std::set<Bytes> seen_requests_;                   ///< leader-side dedupe
  std::deque<Bytes> seen_fifo_;                     ///< dedupe-set eviction order
  std::deque<Bytes> pending_;                       ///< undelivered local submissions
  /// View-change votes carry the voter's prepared/committed slots: any
  /// slot that committed anywhere was prepared at a vote quorum, so the
  /// union over a quorum of votes always contains it and the new leader
  /// re-proposes it at its original sequence number (the lightweight
  /// stand-in for PBFT's new-view certificates — see the scope note).
  struct ViewChangeState {
    crypto::PartySet votes = 0;
    std::map<std::uint64_t, Bytes> prepared;
    std::vector<std::pair<int, std::size_t>> charges;  ///< (peer, bytes) held
  };
  std::map<int, ViewChangeState> view_votes_;
  /// Phase messages for views we have not entered yet, replayed on entry.
  /// Parties enter a view when *they* see the vote quorum, so during a
  /// view change the new leader's PRE-PREPARE can legitimately arrive at a
  /// party still in the old view; dropping it (rather than buffering)
  /// loses liveness even with a perfect failure detector.  Bounded per
  /// view and in lookahead, so Byzantine traffic cannot grow it.
  std::map<int, std::vector<std::pair<int, Bytes>>> future_;
};

}  // namespace sintra::protocols
