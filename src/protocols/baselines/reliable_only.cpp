#include "protocols/baselines/reliable_only.hpp"

namespace sintra::protocols {

ReliableOnlyBroadcast::ReliableOnlyBroadcast(net::Party& host, std::string tag,
                                             DeliverFn deliver)
    : ProtocolInstance(host, std::move(tag)), deliver_(std::move(deliver)),
      opened_(static_cast<std::size_t>(host_.n()), 0) {}

std::string ReliableOnlyBroadcast::instance_tag(int sender, std::uint64_t seq) const {
  return tag_ + "/" + std::to_string(sender) + "/" + std::to_string(seq);
}

void ReliableOnlyBroadcast::open_instance(int sender, std::uint64_t seq) {
  // Sequential per sender; the Party buffers traffic for instances we have
  // not opened yet and replays it on registration.
  auto& opened = opened_[static_cast<std::size_t>(sender)];
  while (opened <= seq) {
    const std::uint64_t s = opened++;
    instances_.push_back(std::make_unique<ReliableBroadcast>(
        host_, instance_tag(sender, s), sender,
        [this, sender](Bytes payload) { deliver_(sender, std::move(payload)); }));
  }
}

void ReliableOnlyBroadcast::submit(Bytes payload) {
  const std::uint64_t seq = my_next_seq_++;
  open_instance(me(), seq);
  // Announce so every party opens the instance (and replays buffered
  // SEND/ECHO/READY traffic for it).
  Writer w;
  w.u64(seq);
  broadcast(w.take());
  // Find our instance and start it.
  const std::string tag = instance_tag(me(), seq);
  for (auto& instance : instances_) {
    if (instance->tag() == tag) {
      instance->start(std::move(payload));
      return;
    }
  }
  SINTRA_INVARIANT(false, "reliable-only: freshly opened instance missing");
}

void ReliableOnlyBroadcast::handle(int from, Reader& reader) {
  const std::uint64_t seq = reader.u64();
  reader.expect_done();
  SINTRA_REQUIRE(seq < 1 << 20, "reliable-only: implausible sequence");
  SINTRA_REQUIRE(seq <= opened_[static_cast<std::size_t>(from)] + 64,
                 "reliable-only: announcement far ahead");
  open_instance(from, seq);
}

}  // namespace sintra::protocols
