// Reliable-broadcast-only baseline in the style of Malkhi–Merritt–Rodeh —
// the Figure 1 row "implements only reliable broadcast and does not
// guarantee a total order, as needed for maintaining consistent state".
//
// Each sender runs a sequence of Bracha reliable-broadcast instances;
// receivers deliver in local arrival order.  Agreement on the *set* of
// messages holds (each instance is a real reliable broadcast) but the
// *order* differs between parties under concurrency — exactly the
// state-machine divergence experiment F1 measures against atomic
// broadcast.
#pragma once

#include <memory>

#include "protocols/broadcast.hpp"

namespace sintra::protocols {

class ReliableOnlyBroadcast final : public ProtocolInstance {
 public:
  /// deliver(origin, payload) in *local* arrival order.
  using DeliverFn = std::function<void(int origin, Bytes payload)>;

  ReliableOnlyBroadcast(net::Party& host, std::string tag, DeliverFn deliver);

  void submit(Bytes payload);

 private:
  void handle(int from, Reader& reader) override;  ///< kOpen announcements
  void open_instance(int sender, std::uint64_t seq);
  [[nodiscard]] std::string instance_tag(int sender, std::uint64_t seq) const;

  DeliverFn deliver_;
  std::uint64_t my_next_seq_ = 0;
  std::vector<std::uint64_t> opened_;  ///< per sender: instances created
  std::vector<std::unique_ptr<ReliableBroadcast>> instances_;
};

}  // namespace sintra::protocols
