#include "protocols/refresh.hpp"

#include "crypto/sha256.hpp"

namespace sintra::protocols {

using crypto::BigInt;
using crypto::FeldmanDealing;

ShareRefresh::ShareRefresh(net::Party& host, std::string tag, BigInt old_share,
                           std::vector<crypto::Element> old_verification, int threshold,
                           DoneFn done)
    : ProtocolInstance(host, std::move(tag)), old_share_(std::move(old_share)),
      old_verification_(std::move(old_verification)), threshold_(threshold),
      done_(std::move(done)),
      abc_(host_, tag_ + "/abc",
           [this](int origin, Bytes payload) { on_ordered(origin, std::move(payload)); }) {
  SINTRA_REQUIRE(static_cast<int>(old_verification_.size()) == host_.n(),
                 "refresh: verification vector size mismatch");
}

BigInt ShareRefresh::mask_for(int dealer, int recipient) const {
  const auto& keys = host_.keys().channel_keys;
  const int peer = dealer == me() ? recipient : dealer;
  const Bytes& pair_key = keys.at(static_cast<std::size_t>(peer));
  Writer w;
  w.str(tag_);
  w.u32(static_cast<std::uint32_t>(dealer));
  w.u32(static_cast<std::uint32_t>(recipient));
  w.bytes(pair_key);
  const auto& group = host_.public_keys().coin.group();
  return group.hash_to_scalar("sintra/refresh/mask", w.data());
}

void ShareRefresh::start() {
  // At-least-once re-entry (crash-recovery replay): our dealing already
  // went through atomic broadcast, which dedupes — nothing to redo.
  if (started_) return;
  started_ = true;
  const auto& group = host_.public_keys().coin.group();
  FeldmanDealing dealing =
      FeldmanDealing::deal(group, BigInt(0), host_.n(), threshold_, host_.rng());
  Writer w;
  w.u8(kDealing);
  // Sender id inside the payload: atomic broadcast dedupes identical
  // payload bytes, and it must be cross-checked against the ABC origin.
  w.u32(static_cast<std::uint32_t>(me()));
  dealing.encode_commitments(w, group);
  std::vector<BigInt> masked;
  masked.reserve(dealing.shares.size());
  for (int j = 0; j < host_.n(); ++j) {
    masked.push_back(group.scalar_add(dealing.shares[static_cast<std::size_t>(j)],
                                      mask_for(me(), j)));
  }
  w.vec(masked, [&](Writer& wr, const BigInt& s) { group.encode_scalar(wr, s); });
  abc_.submit(w.take());
}

void ShareRefresh::on_ordered(int origin, Bytes payload) {
  if (result_.has_value()) return;
  const auto& group = host_.public_keys().coin.group();
  try {
    Reader reader(payload);
    const std::uint8_t type = reader.u8();
    if (type == kDealing) {
      const int embedded = static_cast<int>(reader.u32());
      SINTRA_REQUIRE(embedded == origin, "refresh: dealer id does not match batch origin");
      if (crypto::contains(dealers_seen_, origin)) return;  // one dealing per dealer
      if (quorum().is_quorum(dealers_seen_)) return;        // candidate set already fixed
      auto commitments = FeldmanDealing::decode_commitments(reader, group, threshold_);
      auto masked =
          reader.vec<BigInt>([&](Reader& r) { return group.decode_scalar(r); });
      reader.expect_done();
      SINTRA_REQUIRE(static_cast<int>(masked.size()) == host_.n(),
                     "refresh: wrong sub-share count");

      Candidate candidate;
      candidate.dealer = origin;
      candidate.my_subshare = group.scalar_sub(masked[static_cast<std::size_t>(me())],
                                               mask_for(origin, me()));
      // A refresh dealing must share zero: C_0 = g^0 = identity.
      const bool shares_zero = commitments.at(0) == group.identity();
      candidate.valid = shares_zero && FeldmanDealing::verify_share(group, commitments, me(),
                                                                    candidate.my_subshare);
      candidate.commitments = std::move(commitments);
      dealers_seen_ |= crypto::party_bit(origin);
      candidates_.push_back(std::move(candidate));
      maybe_submit_verdict();
    } else if (type == kVerdict) {
      const int embedded = static_cast<int>(reader.u32());
      SINTRA_REQUIRE(embedded == origin, "refresh: verdict id does not match batch origin");
      const std::uint64_t mask = reader.u64();
      reader.expect_done();
      if (crypto::contains(verdict_from_, origin)) return;
      if (quorum().is_quorum(verdict_from_)) return;  // verdict set already fixed
      // Verdicts ordered before the candidate set was complete at the
      // sender refer to the same deterministic set (ABC total order means
      // every party sees dealings before the verdicts that follow them).
      verdict_from_ |= crypto::party_bit(origin);
      verdicts_.push_back(mask);
      maybe_finish();
    }
  } catch (const ProtocolError& error) {
    // Malformed ordered payload (Byzantine dealer): ignore; its absence
    // from our verdict excludes it.
    host_.trace("refresh", tag_ + " dropped ordered payload from " + std::to_string(origin) +
                               ": " + error.what());
  }
}

void ShareRefresh::maybe_submit_verdict() {
  if (verdict_sent_ || !quorum().is_quorum(dealers_seen_)) return;
  verdict_sent_ = true;
  std::uint64_t mask = 0;
  for (std::size_t k = 0; k < candidates_.size(); ++k) {
    if (candidates_[k].valid) mask |= std::uint64_t{1} << k;
  }
  Writer w;
  w.u8(kVerdict);
  w.u32(static_cast<std::uint32_t>(me()));
  w.u64(mask);
  abc_.submit(w.take());
}

void ShareRefresh::maybe_finish() {
  if (result_.has_value() || !quorum().is_quorum(verdict_from_)) return;
  const auto& group = host_.public_keys().coin.group();

  // Applied = candidates approved by every first-quorum verdict.
  std::uint64_t applied = ~std::uint64_t{0};
  for (std::uint64_t mask : verdicts_) applied &= mask;

  Result result;
  result.new_share = old_share_;
  result.new_verification = old_verification_;
  for (std::size_t k = 0; k < candidates_.size(); ++k) {
    if (((applied >> k) & 1) == 0) continue;
    const Candidate& candidate = candidates_[k];
    ++result.dealings_applied;
    // The quorum approved this dealing but our own sub-share failed local
    // verification: everyone else moves to the new polynomial while our
    // evaluation point is garbage.  Apply it anyway (the group decision
    // stands) but flag the share unusable so the caller quarantines it.
    if (!candidate.valid) result.share_valid = false;
    result.new_share = group.scalar_add(result.new_share, candidate.my_subshare);
    for (int j = 0; j < host_.n(); ++j) {
      result.new_verification[static_cast<std::size_t>(j)] =
          group.mul(result.new_verification[static_cast<std::size_t>(j)],
                    FeldmanDealing::share_image(group, candidate.commitments, j));
    }
  }
  host_.trace("refresh", tag_ + " applied " + std::to_string(result.dealings_applied) +
                             " dealings" + (result.share_valid ? "" : " (own share unusable)"));
  result_ = result;
  // Epoch GC: the result carries everything callers need; the commitment
  // vectors (t+1 group elements per candidate) and verdict masks are dead
  // weight once the epoch concludes.
  candidates_.clear();
  candidates_.shrink_to_fit();
  verdicts_.clear();
  verdicts_.shrink_to_fit();
  if (done_) done_(*result_);
}

}  // namespace sintra::protocols
