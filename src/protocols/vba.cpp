#include "protocols/vba.hpp"

#include <algorithm>

#include "crypto/batch.hpp"
#include "crypto/sha256.hpp"

namespace sintra::protocols {

using crypto::CoinShare;

Vba::Vba(net::Party& host, std::string tag, Predicate predicate, DecideFn decide)
    : ProtocolInstance(host, std::move(tag)), predicate_(std::move(predicate)),
      decide_(std::move(decide)) {
  const int n = host_.n();
  proposals_.resize(static_cast<std::size_t>(n));
  proposals_cb_.reserve(static_cast<std::size_t>(n));
  for (int sender = 0; sender < n; ++sender) {
    proposals_cb_.push_back(std::make_unique<ConsistentBroadcast>(
        host_, tag_ + "/cb/" + std::to_string(sender), sender,
        [this, sender](CertifiedMessage cm) { on_proposal_delivered(sender, std::move(cm)); }));
  }
}

void Vba::propose(Bytes value) {
  SINTRA_REQUIRE(predicate_(value), "vba: proposal violates the validity predicate");
  // Re-entry (crash-recovery replay) is delegated to our consistent
  // broadcast: it re-broadcasts the same proposal and rejects a
  // conflicting one.
  proposed_ = true;
  proposals_cb_[static_cast<std::size_t>(me())]->start(std::move(value));
}

void Vba::on_proposal_delivered(int sender, CertifiedMessage cm) {
  if (!predicate_(cm.message)) {
    // Certified but invalid: only possible for a corrupted sender; ignore.
    host_.trace("vba", tag_ + " proposal from " + std::to_string(sender) + " fails Q");
    return;
  }
  store_proposal(sender, std::move(cm));
  maybe_release_perm_coin();
}

void Vba::store_proposal(int sender, CertifiedMessage cm) {
  auto& slot = proposals_[static_cast<std::size_t>(sender)];
  if (slot.has_value()) return;
  slot = std::move(cm);
  have_ |= crypto::party_bit(sender);
  if (pending_fetch_.has_value() && candidate_at(*pending_fetch_) == sender) {
    pending_fetch_.reset();
    finish(sender);
  }
}

Bytes Vba::perm_coin_name() const {
  Writer w;
  w.str("sintra/vba/perm");
  w.str(tag_);
  return w.take();
}

void Vba::maybe_release_perm_coin() {
  if (perm_released_ || !quorum().is_quorum(have_)) return;
  perm_released_ = true;
  Writer w;
  w.u8(kPermShare);
  auto shares =
      host_.keys().coin.share(host_.public_keys().coin, perm_coin_name(), host_.rng());
  w.vec(shares, [&](Writer& wr, const CoinShare& s) {
    s.encode(wr, host_.public_keys().coin.group());
  });
  broadcast(w.take());
}

void Vba::handle(int from, Reader& reader) {
  const std::uint8_t type = reader.u8();
  switch (type) {
    case kPermShare: return on_perm_share(from, reader);
    case kPermVerdict: return on_perm_verdict(from, reader);
    case kFetch: {
      const int sender = static_cast<int>(reader.u32());
      reader.expect_done();
      SINTRA_REQUIRE(sender >= 0 && sender < host_.n(), "vba: bad fetch index");
      const auto& slot = proposals_[static_cast<std::size_t>(sender)];
      if (!slot.has_value()) return;
      Writer w;
      w.u8(kProposal);
      w.u32(static_cast<std::uint32_t>(sender));
      slot->encode(w);
      send(from, w.take());
      return;
    }
    case kProposal: {
      const int sender = static_cast<int>(reader.u32());
      SINTRA_REQUIRE(sender >= 0 && sender < host_.n(), "vba: bad proposal index");
      CertifiedMessage cm = CertifiedMessage::decode(reader);
      reader.expect_done();
      SINTRA_REQUIRE(verify_certificate(host_.public_keys().cert_sig,
                                        tag_ + "/cb/" + std::to_string(sender), cm),
                     "vba: bad proposal certificate");
      SINTRA_REQUIRE(predicate_(cm.message), "vba: fetched proposal fails Q");
      store_proposal(sender, std::move(cm));
      return;
    }
    default:
      throw ProtocolError("vba: unknown message type");
  }
}

void Vba::on_perm_share(int from, Reader& reader) {
  const auto& coin_pk = host_.public_keys().coin;
  auto shares = reader.vec<CoinShare>(
      [&](Reader& r) { return CoinShare::decode(r, coin_pk.group()); });
  reader.expect_done();
  if (permutation_.has_value() || crypto::contains(perm_support_, from) ||
      crypto::contains(perm_rejected_, from)) {
    return;
  }
  // Structural admission only; the NIZK proofs are batch-verified off the
  // event loop once a qualified set has accumulated.
  for (const CoinShare& share : shares) {
    SINTRA_REQUIRE(coin_pk.scheme().unit_owner(share.unit) == from,
                   "vba: perm share unit not owned by sender");
  }
  perm_support_ |= crypto::party_bit(from);
  for (const CoinShare& share : shares) perm_shares_.push_back(share);
  maybe_combine_perm();
}

void Vba::maybe_combine_perm() {
  if (permutation_.has_value() || perm_inflight_) return;
  const auto& coin_pk = host_.public_keys().coin;
  if (!coin_pk.scheme().qualified(perm_support_)) return;
  perm_inflight_ = true;
  const int attempt = ++perm_attempt_;
  const std::uint64_t seed = host_.rng().next();  // weight seed drawn on the loop thread
  host_.offload(tag_, [&coin_pk, name = perm_coin_name(), shares = perm_shares_, attempt,
                       seed]() -> Bytes {
    Rng rng(seed);
    auto result = crypto::batch::combine_coin_optimistic(coin_pk, name, shares, rng);
    Writer w;
    w.u8(kPermVerdict);
    w.u32(static_cast<std::uint32_t>(attempt));
    w.vec(result.bad, [&](Writer& wr, const std::size_t& i) {
      wr.u32(static_cast<std::uint32_t>(shares[i].unit));
    });
    if (result.value.has_value()) {
      w.u8(1);
      w.bytes(*result.value);
    } else {
      w.u8(0);
    }
    return w.take();
  });
}

void Vba::on_perm_verdict(int from, Reader& reader) {
  SINTRA_REQUIRE(from == me(), "vba: perm verdict from another party");
  const int attempt = static_cast<int>(reader.u32());
  auto bad_units = reader.vec<std::uint32_t>([](Reader& r) { return r.u32(); });
  const bool ok = reader.u8() == 1;
  Bytes value;
  if (ok) value = reader.bytes();
  reader.expect_done();
  // Idempotent against WAL-replayed duplicates: only the verdict for the
  // current in-flight attempt acts.
  if (!perm_inflight_ || attempt != perm_attempt_ || permutation_.has_value()) return;
  perm_inflight_ = false;
  const auto& coin_pk = host_.public_keys().coin;
  crypto::PartySet culprits = 0;
  for (std::uint32_t unit : bad_units) {
    SINTRA_REQUIRE(static_cast<int>(unit) < coin_pk.scheme().num_units(),
                   "vba: verdict unit out of range");
    culprits |= crypto::party_bit(coin_pk.scheme().unit_owner(static_cast<int>(unit)));
  }
  if (culprits != 0) {
    suspected_ |= culprits;
    perm_rejected_ |= culprits;
    perm_support_ &= ~culprits;
    std::erase_if(perm_shares_, [&](const CoinShare& s) {
      return (culprits & crypto::party_bit(coin_pk.scheme().unit_owner(s.unit))) != 0;
    });
    host_.trace("vba", tag_ + " rejected invalid perm coin shares (suspects fingered)");
  }
  if (!ok) {
    SINTRA_INVARIANT(culprits != 0, "vba: perm verdict failed without culprits");
    maybe_combine_perm();
    return;
  }
  adopt_permutation(value);
}

void Vba::adopt_permutation(BytesView coin_value) {
  // Fisher–Yates driven by the coin value: identical at every party.
  Rng perm_rng(crypto::BigInt::from_bytes(coin_value).low_u64());
  std::vector<int> perm(static_cast<std::size_t>(host_.n()));
  for (int i = 0; i < host_.n(); ++i) perm[static_cast<std::size_t>(i)] = i;
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[static_cast<std::size_t>(perm_rng.below(i))]);
  }
  permutation_ = std::move(perm);
  maybe_start_candidate();
}

int Vba::candidate_at(int index) const {
  SINTRA_INVARIANT(permutation_.has_value(), "vba: permutation not ready");
  return (*permutation_)[static_cast<std::size_t>(index % host_.n())];
}

void Vba::maybe_start_candidate() {
  if (decided_ || !permutation_.has_value()) return;
  ++candidate_index_;
  const int index = candidate_index_;
  const int candidate = candidate_at(index);
  auto ba = std::make_unique<Abba>(
      host_, tag_ + "/ba/" + std::to_string(index),
      [this, index](bool value, int) { on_abba_decided(index, value); });
  Abba* ba_ptr = ba.get();
  candidate_ba_.push_back(std::move(ba));
  host_.trace("vba", tag_ + " examining candidate " + std::to_string(candidate) +
                         " (index " + std::to_string(index) + ")");
  ba_ptr->start(proposals_[static_cast<std::size_t>(candidate)].has_value());
}

void Vba::on_abba_decided(int candidate_index, bool value) {
  if (decided_) return;
  if (candidate_index != candidate_index_) return;  // stale callback
  if (!value) {
    maybe_start_candidate();
    return;
  }
  const int candidate = candidate_at(candidate_index);
  if (proposals_[static_cast<std::size_t>(candidate)].has_value()) {
    finish(candidate);
    return;
  }
  // Somebody honest holds it (ABBA anchored validity); ask around.
  pending_fetch_ = candidate_index;
  Writer w;
  w.u8(kFetch);
  w.u32(static_cast<std::uint32_t>(candidate));
  broadcast(w.take());
}

void Vba::finish(int sender) {
  if (decided_) return;
  decided_ = true;
  // Instance GC: the combined permutation subsumes the coin shares.  The
  // proposals stay — we keep answering laggards' kFetch until the parent
  // retires this instance.
  perm_shares_.clear();
  perm_shares_.shrink_to_fit();
  host_.trace("vba", tag_ + " decided on proposal of " + std::to_string(sender));
  decide_(proposals_[static_cast<std::size_t>(sender)]->message);
}

}  // namespace sintra::protocols
