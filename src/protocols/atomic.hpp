// Atomic broadcast (§3): total order on all delivered payloads.
//
// Follows the round structure the paper describes (after Chandra–Toueg):
// the parties proceed in global rounds; in round R every party signs its
// queue of undelivered payloads and sends it to everyone; every party then
// proposes a batch-set containing properly signed batches from a full
// quorum of parties for multi-valued validated agreement; the external
// validity predicate checks exactly that ("the decided list comes with
// valid signatures, so messages from honest parties are included"); the
// decided batch-set is delivered in a deterministic order.
//
// Guarantees: all honest parties deliver the same payloads in the same
// order (agreement + total order, from VBA), every payload submitted by an
// honest party is eventually delivered (its batch is re-proposed each
// round until delivery), and no payload is delivered twice (content
// dedupe).  The "individual digital signature" of the paper is realized by
// a party's certificate-key signature shares, which are verifiable
// per-party against the dealt verification values.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "crypto/checkpoint.hpp"
#include "protocols/vba.hpp"

namespace sintra::protocols {

class AtomicBroadcast final : public ProtocolInstance {
 public:
  /// deliver(origin, payload): origin is the party whose signed batch
  /// carried the payload (for client accounting), payloads arrive in the
  /// agreed total order, duplicates suppressed.
  using DeliverFn = std::function<void(int origin, Bytes payload)>;

  AtomicBroadcast(net::Party& host, std::string tag, DeliverFn deliver);
  ~AtomicBroadcast() override;

  /// Queue a payload for total-order delivery.  The submission rides the
  /// network as a self-message so it lands in the Party write-ahead log:
  /// crash recovery replays it at its original position and the rebuilt
  /// sender state matches the pre-crash run exactly.
  void submit(Bytes payload);

  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_count_; }
  [[nodiscard]] int rounds_completed() const { return last_finished_; }

  /// Introspection for the memory-budget tests.
  [[nodiscard]] std::size_t live_rounds() const { return rounds_.size(); }
  [[nodiscard]] std::size_t queue_size() const { return queue_.size(); }

  /// Turn on certified checkpoints: after every `interval` completed
  /// rounds the parties threshold-sign (round, delivered-count, delivery
  /// chain digest) and gossip the shares; once a qualified set arrives the
  /// combined certificate is held in latest_certificate() and serves as
  /// the anchor for peer state transfer (net/state_transfer.hpp).
  /// interval == 0 (the default) disables the machinery entirely.
  void enable_checkpoints(int interval);

  /// Highest combined checkpoint certificate seen so far, if any.
  [[nodiscard]] const std::optional<crypto::CheckpointCert>& latest_certificate() const {
    return latest_cert_;
  }

  /// Serialized delivered-prefix snapshot matching `cert` (the first
  /// cert.delivered_count entries of the delivery log), or empty if this
  /// party cannot serve it (log compacted differently / WAL off).
  [[nodiscard]] Bytes certified_state(const crypto::CheckpointCert& cert) const;

  /// Install a peer-fetched certified snapshot: verifies the certificate
  /// and that the snapshot re-hashes to the certified chain digest, then
  /// delivers the suffix beyond what this party already delivered and
  /// fast-forwards the round counter.  Returns false (and changes
  /// nothing) on any verification failure.
  bool install_checkpoint(const crypto::CheckpointCert& cert, BytesView state);

  /// Running chain digest over the delivered prefix (tests/diagnostics).
  [[nodiscard]] const Bytes& chain_digest() const { return chain_digest_; }

 private:
  static constexpr std::size_t kMaxBatch = 16;
  /// Batches are accepted at most this many rounds ahead of the last
  /// completed one; honest parties run within a round or two of each
  /// other, so anything farther is adversarial and dropped.
  static constexpr int kRoundLookahead = 32;
  /// Completed rounds (and their VBA instances) linger this many rounds
  /// before being garbage-collected, so laggards can still fetch the
  /// recent decisions.  (A laggard more than kRetention rounds behind
  /// relies on peers' retained instances; carrying explicit VBA decision
  /// certificates would close that corner and is future work.)
  static constexpr int kRetention = 2;
  /// Delivered-payload digests kept for content dedupe (FIFO-bounded so a
  /// long-running service does not grow without bound).
  static constexpr std::size_t kDeliveredCap = 4096;

  enum MsgType : std::uint8_t {
    kSubmit = 0,     ///< local submission looped through self (WAL capture)
    kBatch = 1,      ///< signed round batch
    kCkptShare = 2,  ///< signature shares on a checkpoint statement
  };

  struct RoundData {
    crypto::PartySet batch_from = 0;
    std::vector<Bytes> batches;  ///< encoded (party, payloads, shares) entries
    std::vector<std::pair<int, std::size_t>> charges;  ///< (peer, bytes) held
    bool started = false;
    bool proposed = false;
    std::unique_ptr<Vba> vba;
  };

  /// Per-checkpoint-round share collection.  Until this party itself
  /// completes the round (`reached`), peers' shares are stashed raw — the
  /// statement they sign is only known once the local chain digest catches
  /// up.  Both stashes and verified shares are budget-charged.
  struct CkptPending {
    bool reached = false;
    std::uint64_t delivered = 0;   ///< delivered_count_ at the round boundary
    Bytes chain_digest;            ///< chain digest at the round boundary
    crypto::PartySet from = 0;
    std::vector<crypto::SigShare> shares;
    std::vector<std::pair<int, Bytes>> waiting;  ///< (peer, raw shares) pre-reach
    std::vector<std::pair<int, std::size_t>> charges;
  };

  void handle(int from, Reader& reader) override;
  void maybe_start_round(int round);
  void maybe_propose(int round);
  void on_round_decided(int round, const Bytes& batch_set);
  void release_round_charges(RoundData& rd);
  void note_delivered(Bytes digest);
  void gc_completed_rounds();
  void emit_checkpoint_share(int round);
  void handle_ckpt_share(int from, Reader& reader);
  void process_ckpt_shares(int from, int round, std::vector<crypto::SigShare> shares);
  void gc_checkpoints();
  void release_ckpt_charges(CkptPending& cp);
  [[nodiscard]] Bytes checkpoint_save() const;
  void checkpoint_load(Reader& reader);
  [[nodiscard]] Bytes batch_statement(int round, int party, BytesView payload_block) const;
  [[nodiscard]] bool validate_batch_set(int round, BytesView batch_set) const;

  DeliverFn deliver_;
  std::deque<Bytes> queue_;               ///< undelivered local submissions
  std::set<Bytes> delivered_;             ///< digests of delivered payloads
  std::deque<Bytes> delivered_fifo_;      ///< digest eviction order (kDeliveredCap)
  /// Ordered (origin, payload) delivery log, kept only with the WAL on:
  /// it is the checkpoint that lets completed rounds' WAL entries be
  /// pruned — the loader re-fires deliver_ for each entry so parent state
  /// (replica execution, causal layer) is rebuilt without a full replay.
  std::vector<std::pair<int, Bytes>> delivered_log_;
  std::uint64_t delivered_count_ = 0;
  int last_finished_ = 0;                 ///< highest completed round
  std::map<int, RoundData> rounds_;
  int ckpt_interval_ = 0;                 ///< 0 = certified checkpoints off
  Bytes chain_digest_ = crypto::chain_initial();  ///< chain over delivered prefix
  std::optional<crypto::CheckpointCert> latest_cert_;
  std::map<int, CkptPending> ckpts_;      ///< rounds with shares in flight
  /// VBA instances awaiting destruction: a Vba must never be destroyed
  /// from inside its own callback chain, so GC parks them here and the
  /// next handle() entry (outside any Vba handler) flushes the list.
  std::vector<std::unique_ptr<Vba>> retired_vbas_;
};

}  // namespace sintra::protocols
