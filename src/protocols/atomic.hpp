// Atomic broadcast (§3): total order on all delivered payloads.
//
// Follows the round structure the paper describes (after Chandra–Toueg):
// the parties proceed in global rounds; in round R every party signs its
// queue of undelivered payloads and sends it to everyone; every party then
// proposes a batch-set containing properly signed batches from a full
// quorum of parties for multi-valued validated agreement; the external
// validity predicate checks exactly that ("the decided list comes with
// valid signatures, so messages from honest parties are included"); the
// decided batch-set is delivered in a deterministic order.
//
// Guarantees: all honest parties deliver the same payloads in the same
// order (agreement + total order, from VBA), every payload submitted by an
// honest party is eventually delivered (its batch is re-proposed each
// round until delivery), and no payload is delivered twice (content
// dedupe).  The "individual digital signature" of the paper is realized by
// a party's certificate-key signature shares, which are verifiable
// per-party against the dealt verification values.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>

#include "protocols/vba.hpp"

namespace sintra::protocols {

class AtomicBroadcast final : public ProtocolInstance {
 public:
  /// deliver(origin, payload): origin is the party whose signed batch
  /// carried the payload (for client accounting), payloads arrive in the
  /// agreed total order, duplicates suppressed.
  using DeliverFn = std::function<void(int origin, Bytes payload)>;

  AtomicBroadcast(net::Party& host, std::string tag, DeliverFn deliver);

  /// Queue a payload for total-order delivery.  The submission rides the
  /// network as a self-message so it lands in the Party write-ahead log:
  /// crash recovery replays it at its original position and the rebuilt
  /// sender state matches the pre-crash run exactly.
  void submit(Bytes payload);

  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_count_; }
  [[nodiscard]] int rounds_completed() const { return last_finished_; }

 private:
  static constexpr std::size_t kMaxBatch = 16;

  enum MsgType : std::uint8_t {
    kSubmit = 0,  ///< local submission looped through self (WAL capture)
    kBatch = 1,   ///< signed round batch
  };

  struct RoundData {
    crypto::PartySet batch_from = 0;
    std::vector<Bytes> batches;  ///< encoded (party, payloads, shares) entries
    bool started = false;
    bool proposed = false;
    std::unique_ptr<Vba> vba;
  };

  void handle(int from, Reader& reader) override;
  void maybe_start_round(int round);
  void maybe_propose(int round);
  void on_round_decided(int round, const Bytes& batch_set);
  [[nodiscard]] Bytes batch_statement(int round, int party, BytesView payload_block) const;
  [[nodiscard]] bool validate_batch_set(int round, BytesView batch_set) const;

  DeliverFn deliver_;
  std::deque<Bytes> queue_;               ///< undelivered local submissions
  std::set<Bytes> delivered_;             ///< digests of delivered payloads
  std::uint64_t delivered_count_ = 0;
  int last_finished_ = 0;                 ///< highest completed round
  std::map<int, RoundData> rounds_;
};

}  // namespace sintra::protocols
