#include "protocols/broadcast.hpp"

#include "crypto/sha256.hpp"

namespace sintra::protocols {

namespace {
Bytes digest_of(const std::string& tag, BytesView message) {
  Writer w;
  w.str(tag);
  w.bytes(message);
  auto d = crypto::hash_domain("sintra/rbc/digest", w.data());
  return Bytes(d.begin(), d.end());
}

Bytes make_msg(std::uint8_t type, BytesView message) {
  Writer w;
  w.u8(type);
  w.bytes(message);
  return w.take();
}
}  // namespace

ReliableBroadcast::ReliableBroadcast(net::Party& host, std::string tag, int sender,
                                     DeliverFn deliver)
    : ProtocolInstance(host, std::move(tag)), sender_(sender), deliver_(std::move(deliver)) {}

const Bytes& ReliableBroadcast::digest_for(const Bytes& message) {
  // In a fault-free run every SEND/ECHO/READY carries the same body, so a
  // one-entry memo turns 2n+1 hashes per instance into one.  A Byzantine
  // mix of bodies only evicts the memo — never a wrong digest.
  if (!digest_cache_set_ || digest_cache_key_ != message) {
    digest_cache_val_ = digest_of(tag_, message);
    digest_cache_key_ = message;
    digest_cache_set_ = true;
  }
  return digest_cache_val_;
}

void ReliableBroadcast::start(Bytes message) {
  SINTRA_REQUIRE(me() == sender_, "rbc: only the designated sender may start");
  if (started_) {
    // At-least-once re-entry (crash-recovery replay re-runs application
    // start calls): same message re-broadcasts SEND, which receivers
    // dedup; a different message would equivocate and is rejected.
    SINTRA_REQUIRE(message == sent_message_, "rbc: conflicting re-start");
    broadcast(make_msg(kSend, sent_message_));
    return;
  }
  started_ = true;
  sent_message_ = message;
  broadcast(make_msg(kSend, std::move(message)));
}

std::size_t ReliableBroadcast::retained_bytes() const {
  std::size_t total = sent_message_.size();
  for (const auto& [digest, tally] : tallies_) total += digest.size() + tally.message.size();
  return total;
}

void ReliableBroadcast::enable_watchdog(std::uint64_t timeout) {
  if (!watchdog_) watchdog_ = std::make_unique<StallWatchdog>(host_);
  watchdog_->arm(
      timeout, [this] { return delivered_; }, [this] { return progress_; },
      [this] { resummarize(); });
}

void ReliableBroadcast::resummarize() {
  // Re-send our own (already broadcast, deduped by receivers) messages so
  // a peer that lost them — a restart with a lossy network — can catch up.
  if (started_ && me() == sender_) broadcast(make_msg(kSend, sent_message_));
  if (echoed_ && !echo_raw_.empty()) broadcast(echo_raw_);
  if (readied_ && !ready_raw_.empty()) broadcast(ready_raw_);
  // A party with no state of its own to resend (a crash-restarted party
  // whose whole view of the instance was lost) still needs a way back in:
  // probe the peers, who answer once each with their own SEND/ECHO/READY.
  broadcast(make_msg(kSummary, {}));
}

void ReliableBroadcast::handle(int from, Reader& reader) {
  const std::uint8_t type = reader.u8();
  Bytes message = reader.bytes();
  reader.expect_done();
  if (delivered_) {
    // Instance done, tallies freed.  A peer still talking is a straggler
    // (it missed thresholds we reached); answer once with our READY so it
    // can amplify/deliver, then stay silent toward it.
    if (from != me() && !ready_raw_.empty() && !(helped_ & crypto::party_bit(from))) {
      helped_ |= crypto::party_bit(from);
      send(from, Bytes(ready_raw_));
    }
    return;
  }

  // Memory bound: only the *first* message of each type from each party
  // counts (honest parties send one of each).  This caps live tallies at
  // 2n+1 per instance and makes the handler idempotent under duplicated
  // and replayed traffic — a spammer's follow-up messages are dropped
  // before they can touch, let alone grow, the tally map.
  switch (type) {
    case kSend: {
      SINTRA_REQUIRE(from == sender_, "rbc: SEND from non-sender");
      if (send_seen_) return;
      send_seen_ = true;
      bump_progress();
      Tally& tally = tallies_[digest_for(message)];
      tally.message = std::move(message);
      tally.have_content = true;
      if (!echoed_) {
        echoed_ = true;
        echo_raw_ = make_msg(kEcho, tally.message);
        broadcast(echo_raw_);
      }
      break;
    }
    case kEcho: {
      if (echoed_by_ & crypto::party_bit(from)) return;
      echoed_by_ |= crypto::party_bit(from);
      bump_progress();
      Tally& tally = tallies_[digest_for(message)];
      tally.echoes |= crypto::party_bit(from);
      retain_if_supported(tally, message);
      maybe_progress(tally);
      break;
    }
    case kReady: {
      if (readied_by_ & crypto::party_bit(from)) return;
      readied_by_ |= crypto::party_bit(from);
      bump_progress();
      Tally& tally = tallies_[digest_for(message)];
      tally.readies |= crypto::party_bit(from);
      retain_if_supported(tally, message);
      maybe_progress(tally);
      break;
    }
    case kSummary: {
      // Watchdog probe from a peer that lost state: push it our own
      // messages directly.  Answered once per peer, ever — a Byzantine
      // prober gets one bounded reply, not an amplification lever.
      if (from == me() || (summary_answered_ & crypto::party_bit(from))) return;
      summary_answered_ |= crypto::party_bit(from);
      if (started_ && me() == sender_) send(from, make_msg(kSend, sent_message_));
      if (echoed_ && !echo_raw_.empty()) send(from, Bytes(echo_raw_));
      if (readied_ && !ready_raw_.empty()) send(from, Bytes(ready_raw_));
      break;
    }
    default:
      throw ProtocolError("rbc: unknown message type");
  }
}

void ReliableBroadcast::retain_if_supported(Tally& tally, const Bytes& message) {
  // Anti-DoS: content is retained only once the digest has support beyond
  // a fault set (so at least one honest party vouches for it) — a spammer
  // echoing unique garbage costs us a digest + bitmask per party, never
  // the bodies.  (The designated sender's SEND is the other retention
  // path, handled in `handle`.)  Any quorum exceeds a fault set (Q³), so
  // content is always in hand by the time READY/deliver thresholds hit.
  if (tally.have_content) return;
  if (quorum().exceeds_fault_set(tally.echoes) || quorum().exceeds_fault_set(tally.readies)) {
    tally.message = message;
    tally.have_content = true;
  }
}

void ReliableBroadcast::maybe_progress(Tally& tally) {
  // READY once a quorum echoed, or a fault-set-exceeding set is already
  // ready (amplification — ensures agreement even for a corrupted sender).
  if (!readied_ &&
      (quorum().is_quorum(tally.echoes) || quorum().exceeds_fault_set(tally.readies))) {
    SINTRA_INVARIANT(tally.have_content, "rbc: READY threshold without content");
    readied_ = true;
    ready_raw_ = make_msg(kReady, tally.message);
    broadcast(ready_raw_);
  }
  if (!delivered_ && quorum().is_vote_quorum(tally.readies)) {
    SINTRA_INVARIANT(tally.have_content, "rbc: deliver threshold without content");
    delivered_ = true;
    host_.trace("rbc", tag_ + " delivered");
    if (watchdog_) watchdog_->disarm();
    Bytes message = std::move(tally.message);
    tallies_.clear();  // instance complete — free all tally memory
    deliver_(std::move(message));
  }
}

}  // namespace sintra::protocols
