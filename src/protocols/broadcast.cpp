#include "protocols/broadcast.hpp"

#include "crypto/sha256.hpp"

namespace sintra::protocols {

namespace {
Bytes digest_of(const std::string& tag, BytesView message) {
  Writer w;
  w.str(tag);
  w.bytes(message);
  auto d = crypto::hash_domain("sintra/rbc/digest", w.data());
  return Bytes(d.begin(), d.end());
}

Bytes make_msg(std::uint8_t type, BytesView message) {
  Writer w;
  w.u8(type);
  w.bytes(message);
  return w.take();
}
}  // namespace

ReliableBroadcast::ReliableBroadcast(net::Party& host, std::string tag, int sender,
                                     DeliverFn deliver)
    : ProtocolInstance(host, std::move(tag)), sender_(sender), deliver_(std::move(deliver)) {}

void ReliableBroadcast::start(Bytes message) {
  SINTRA_REQUIRE(me() == sender_, "rbc: only the designated sender may start");
  broadcast(make_msg(kSend, message));
}

void ReliableBroadcast::handle(int from, Reader& reader) {
  const std::uint8_t type = reader.u8();
  Bytes message = reader.bytes();
  reader.expect_done();

  const Bytes digest = digest_of(tag_, message);
  Tally& tally = tallies_[digest];
  if (!tally.have_content) {
    tally.message = message;
    tally.have_content = true;
  }

  switch (type) {
    case kSend: {
      SINTRA_REQUIRE(from == sender_, "rbc: SEND from non-sender");
      if (!echoed_) {
        echoed_ = true;
        broadcast(make_msg(kEcho, message));
      }
      break;
    }
    case kEcho: {
      tally.echoes |= crypto::party_bit(from);
      maybe_progress(digest);
      break;
    }
    case kReady: {
      tally.readies |= crypto::party_bit(from);
      maybe_progress(digest);
      break;
    }
    default:
      throw ProtocolError("rbc: unknown message type");
  }
}

void ReliableBroadcast::maybe_progress(const Bytes& digest) {
  Tally& tally = tallies_[digest];
  // READY once a quorum echoed, or a fault-set-exceeding set is already
  // ready (amplification — ensures agreement even for a corrupted sender).
  if (!readied_ &&
      (quorum().is_quorum(tally.echoes) || quorum().exceeds_fault_set(tally.readies))) {
    readied_ = true;
    broadcast(make_msg(kReady, tally.message));
  }
  if (!delivered_ && quorum().is_vote_quorum(tally.readies)) {
    delivered_ = true;
    host_.trace("rbc", tag_ + " delivered");
    deliver_(tally.message);
  }
}

}  // namespace sintra::protocols
