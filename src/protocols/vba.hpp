// Multi-valued validated Byzantine agreement (§3, following CKPS01).
//
// Agreement on a value from an arbitrary domain with *external validity*:
// the caller supplies a global predicate Q, every honest party proposes a
// value satisfying Q, and the decided value is guaranteed to satisfy Q and
// to have been validated by at least one honest party.  This rules out
// deciding a value nobody proposed — the property the paper highlights as
// the key difficulty of multi-valued agreement.
//
// Structure:
//  1. Every party consistent-broadcasts its proposal (constant-size
//     certificate; uniqueness per sender).
//  2. After proposals from a full quorum have been delivered, parties
//     release shares of a *permutation coin*; the combined coin orders the
//     candidates unpredictably (so the adversary cannot pre-arrange which
//     proposals get examined first).
//  3. Candidates are examined in permuted order, one binary agreement
//     (ABBA) each: party k's input is "do I hold candidate a's certified,
//     Q-valid proposal?".  ABBA's anchored validity gives: decided 1 =>
//     some honest party holds the proposal (so everyone can FETCH it);
//     all honest hold it => decided 1.
//  4. The candidate index wraps around modulo n, which makes termination
//     deterministic once all honest-sender proposals have propagated:
//     at the latest on the second pass every honest party inputs 1 for an
//     honest candidate.  In benign runs the first candidate already hits,
//     giving the expected-constant-round behaviour the paper claims.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "crypto/coin.hpp"
#include "protocols/abba.hpp"
#include "protocols/consistent.hpp"

namespace sintra::protocols {

class Vba final : public ProtocolInstance {
 public:
  /// External validity predicate Q; must be deterministic and evaluable by
  /// every honest party on any candidate value.
  using Predicate = std::function<bool(BytesView value)>;
  using DecideFn = std::function<void(Bytes value)>;

  Vba(net::Party& host, std::string tag, Predicate predicate, DecideFn decide);

  /// Propose a value; Q(value) must hold.
  void propose(Bytes value);

  [[nodiscard]] bool decided() const { return decided_; }
  /// Number of ABBA candidates examined before deciding (1 = first hit);
  /// exposed for the round-complexity experiments.
  [[nodiscard]] int candidates_tried() const { return candidate_index_ + 1; }
  /// Parties caught sending well-formed-but-invalid permutation-coin
  /// shares (fingered by the batch verifier's bisection).
  [[nodiscard]] crypto::PartySet suspected() const { return suspected_; }

 private:
  enum MsgType : std::uint8_t {
    kPermShare = 0,
    kFetch = 1,
    kProposal = 2,
    kPermVerdict = 3,  ///< self-message: off-loop perm-coin batch-verify result
  };

  void handle(int from, Reader& reader) override;
  void on_proposal_delivered(int sender, CertifiedMessage cm);
  void maybe_release_perm_coin();
  void on_perm_share(int from, Reader& reader);
  void maybe_combine_perm();
  void on_perm_verdict(int from, Reader& reader);
  void adopt_permutation(BytesView coin_value);
  void maybe_start_candidate();
  void on_abba_decided(int candidate_index, bool value);
  void store_proposal(int sender, CertifiedMessage cm);
  void finish(int sender);

  [[nodiscard]] Bytes perm_coin_name() const;
  [[nodiscard]] int candidate_at(int index) const;

  Predicate predicate_;
  DecideFn decide_;
  bool proposed_ = false;
  bool decided_ = false;

  std::vector<std::unique_ptr<ConsistentBroadcast>> proposals_cb_;  ///< one per sender
  std::vector<std::optional<CertifiedMessage>> proposals_;          ///< validated proposals
  crypto::PartySet have_ = 0;

  bool perm_released_ = false;
  crypto::PartySet perm_support_ = 0;
  crypto::PartySet perm_rejected_ = 0;  ///< senders with a proven-bad share
  std::vector<crypto::CoinShare> perm_shares_;
  int perm_attempt_ = 0;
  bool perm_inflight_ = false;
  crypto::PartySet suspected_ = 0;
  std::optional<std::vector<int>> permutation_;

  int candidate_index_ = -1;                      ///< current ABBA index (wraps mod n)
  std::vector<std::unique_ptr<Abba>> candidate_ba_;
  std::optional<int> pending_fetch_;              ///< candidate decided 1, proposal missing
};

}  // namespace sintra::protocols
