#include "protocols/reconfig.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"

namespace sintra::protocols {

using crypto::BigInt;
using crypto::Element;
using crypto::FeldmanDealing;
using crypto::RsaReshareDealing;

namespace {

enum KeyIndex : std::uint32_t { kKeyCoin = 0, kKeyTdh2 = 1, kKeyReply = 2, kKeyCert = 3 };

/// Shared derivation input for every sub-share mask: binds the mask to the
/// instance, the epoch, the key, and the (dealer, recipient) pair.
Bytes mask_input(std::string_view tag, std::uint32_t epoch, std::uint32_t key, int dealer,
                 int new_slot, BytesView pair_key) {
  Writer w;
  w.str(tag);
  w.u32(epoch);
  w.u32(key);
  w.u32(static_cast<std::uint32_t>(dealer));
  w.u32(static_cast<std::uint32_t>(new_slot));
  w.bytes(pair_key);
  return w.take();
}

BigInt derive_dl_mask(const crypto::Group& group, std::string_view tag, std::uint32_t epoch,
                      std::uint32_t key, int dealer, int new_slot, BytesView pair_key) {
  return group.hash_to_scalar("sintra/reconfig/mask",
                              mask_input(tag, epoch, key, dealer, new_slot, pair_key));
}

/// Non-negative integer mask of a PUBLIC width (so any holder of the pair
/// key can strip it exactly); width = sub-share bound + 64 slack bits.
BigInt derive_rsa_mask(std::string_view tag, std::uint32_t epoch, std::uint32_t key, int dealer,
                       int new_slot, BytesView pair_key, std::size_t width_bits) {
  const Bytes expanded = crypto::hash_expand(
      "sintra/reconfig/imask", mask_input(tag, epoch, key, dealer, new_slot, pair_key),
      (width_bits + 7) / 8);
  return BigInt::from_bytes(expanded);
}

void encode_elements(Writer& w, const crypto::Group& group, const std::vector<Element>& v) {
  w.vec(v, [&](Writer& wr, const Element& e) { group.encode_element(wr, e); });
}

std::vector<Element> decode_elements(Reader& r, const crypto::Group& group) {
  return r.vec<Element>([&](Reader& rr) { return group.decode_element(rr); });
}

void encode_bigints(Writer& w, const std::vector<BigInt>& v) {
  w.vec(v, [](Writer& wr, const BigInt& x) { x.encode(wr); });
}

std::vector<BigInt> decode_bigints(Reader& r) {
  return r.vec<BigInt>([](Reader& rr) { return BigInt::decode(rr); });
}

}  // namespace

// ---- ReconfigPlan --------------------------------------------------------

int ReconfigPlan::new_slot_of(int old) const {
  for (std::size_t i = 0; i < old_slot.size(); ++i) {
    if (old_slot[i] == old) return static_cast<int>(i);
  }
  return -1;
}

void ReconfigPlan::validate() const {
  SINTRA_REQUIRE(n_old >= 1 && n_old <= 64 && n_new >= 1 && n_new <= 64,
                 "reconfig: committee size out of range");
  SINTRA_REQUIRE(t_old >= 0 && n_old > 3 * t_old, "reconfig: old committee violates n > 3t");
  SINTRA_REQUIRE(t_new >= 0 && n_new > 3 * t_new, "reconfig: new committee violates n > 3t");
  SINTRA_REQUIRE(static_cast<std::int32_t>(old_slot.size()) == n_new,
                 "reconfig: old_slot map size mismatch");
  crypto::PartySet used = 0;
  for (std::int32_t old : old_slot) {
    if (old < 0) continue;  // joining slot
    SINTRA_REQUIRE(old < n_old, "reconfig: old slot out of range");
    SINTRA_REQUIRE(!crypto::contains(used, old), "reconfig: old slot mapped twice");
    used |= crypto::party_bit(old);
  }
  SINTRA_REQUIRE(endpoints.empty() || static_cast<std::int32_t>(endpoints.size()) == n_new,
                 "reconfig: endpoint list size mismatch");
}

void ReconfigPlan::encode(Writer& w) const {
  w.u32(new_epoch);
  w.u32(static_cast<std::uint32_t>(n_old));
  w.u32(static_cast<std::uint32_t>(t_old));
  w.u32(static_cast<std::uint32_t>(n_new));
  w.u32(static_cast<std::uint32_t>(t_new));
  w.vec(old_slot, [](Writer& wr, std::int32_t v) { wr.u32(static_cast<std::uint32_t>(v)); });
  w.vec(endpoints, [](Writer& wr, const std::string& e) { wr.str(e); });
}

ReconfigPlan ReconfigPlan::decode(Reader& r) {
  ReconfigPlan plan;
  plan.new_epoch = r.u32();
  plan.n_old = static_cast<std::int32_t>(r.u32());
  plan.t_old = static_cast<std::int32_t>(r.u32());
  plan.n_new = static_cast<std::int32_t>(r.u32());
  plan.t_new = static_cast<std::int32_t>(r.u32());
  plan.old_slot =
      r.vec<std::int32_t>([](Reader& rr) { return static_cast<std::int32_t>(rr.u32()); });
  plan.endpoints = r.vec<std::string>([](Reader& rr) { return rr.str(); });
  plan.validate();
  return plan;
}

// ---- NewConfig -----------------------------------------------------------

namespace {

void encode_config_body(Writer& w, const NewConfig& config, const crypto::Group& group) {
  config.plan.encode(w);
  config.fence.encode(w);
  encode_elements(w, group, config.coin_verification);
  encode_elements(w, group, config.tdh2_verification);
  encode_bigints(w, config.reply_verification);
  encode_bigints(w, config.cert_verification);
  config.reply_scale.encode(w);
  config.cert_scale.encode(w);
  w.u32(config.reply_share_bits);
  w.u32(config.cert_share_bits);
}

}  // namespace

Bytes NewConfig::statement(std::string_view tag, const crypto::Group& group) const {
  Writer w;
  w.str("sintra/reconfig/newconfig");
  w.str(tag);
  encode_config_body(w, *this, group);
  return w.take();
}

bool NewConfig::verify(const crypto::ThresholdSigPublicKey& old_reply, std::string_view tag,
                       const crypto::Group& group) const {
  return old_reply.verify(statement(tag, group), signature);
}

void NewConfig::encode(Writer& w, const crypto::Group& group) const {
  encode_config_body(w, *this, group);
  signature.encode(w);
}

NewConfig NewConfig::decode(Reader& r, const crypto::Group& group) {
  NewConfig config;
  config.plan = ReconfigPlan::decode(r);
  config.fence = crypto::CheckpointCert::decode(r);
  config.coin_verification = decode_elements(r, group);
  config.tdh2_verification = decode_elements(r, group);
  config.reply_verification = decode_bigints(r);
  config.cert_verification = decode_bigints(r);
  config.reply_scale = BigInt::decode(r);
  config.cert_scale = BigInt::decode(r);
  config.reply_share_bits = r.u32();
  config.cert_share_bits = r.u32();
  config.signature = BigInt::decode(r);
  const std::size_t n = static_cast<std::size_t>(config.plan.n_new);
  SINTRA_REQUIRE(config.coin_verification.size() == n && config.tdh2_verification.size() == n &&
                     config.reply_verification.size() == n &&
                     config.cert_verification.size() == n,
                 "reconfig: verification vector size mismatch");
  return config;
}

// ---- JoinPackage ---------------------------------------------------------

void JoinPackage::encode(Writer& w, const crypto::Group& group) const {
  config.encode(w, group);
  w.vec(applied, [](Writer& wr, std::int32_t v) { wr.u32(static_cast<std::uint32_t>(v)); });
  w.vec(coin_commitments,
        [&](Writer& wr, const std::vector<Element>& c) { encode_elements(wr, group, c); });
  w.vec(tdh2_commitments,
        [&](Writer& wr, const std::vector<Element>& c) { encode_elements(wr, group, c); });
  w.vec(reply_commitments,
        [](Writer& wr, const std::vector<BigInt>& c) { encode_bigints(wr, c); });
  w.vec(cert_commitments,
        [](Writer& wr, const std::vector<BigInt>& c) { encode_bigints(wr, c); });
  encode_bigints(w, coin_subshares);
  encode_bigints(w, tdh2_subshares);
  encode_bigints(w, reply_subshares);
  encode_bigints(w, cert_subshares);
}

JoinPackage JoinPackage::decode(Reader& r, const crypto::Group& group) {
  JoinPackage package;
  package.config = NewConfig::decode(r, group);
  package.applied =
      r.vec<std::int32_t>([](Reader& rr) { return static_cast<std::int32_t>(rr.u32()); });
  package.coin_commitments =
      r.vec<std::vector<Element>>([&](Reader& rr) { return decode_elements(rr, group); });
  package.tdh2_commitments =
      r.vec<std::vector<Element>>([&](Reader& rr) { return decode_elements(rr, group); });
  package.reply_commitments =
      r.vec<std::vector<BigInt>>([](Reader& rr) { return decode_bigints(rr); });
  package.cert_commitments =
      r.vec<std::vector<BigInt>>([](Reader& rr) { return decode_bigints(rr); });
  package.coin_subshares = decode_bigints(r);
  package.tdh2_subshares = decode_bigints(r);
  package.reply_subshares = decode_bigints(r);
  package.cert_subshares = decode_bigints(r);
  return package;
}

// ---- Reconfig ------------------------------------------------------------

Reconfig::Reconfig(net::Party& host, std::string tag, ReconfigPlan plan,
                   std::optional<crypto::CheckpointCert> fence, ReconfigOptions options,
                   DoneFn done)
    : ProtocolInstance(host, std::move(tag)), plan_(std::move(plan)), fence_(std::move(fence)),
      options_(std::move(options)), done_(std::move(done)),
      abc_(host_, tag_ + "/abc",
           [this](int origin, Bytes payload) { on_ordered(origin, std::move(payload)); }) {
  plan_.validate();
  SINTRA_REQUIRE(host_.n() == plan_.n_old, "reconfig: plan does not match committee size");
}

Bytes Reconfig::pair_key(int dealer, int new_slot) const {
  const int old = plan_.old_slot.at(static_cast<std::size_t>(new_slot));
  if (old < 0) {
    // Joining slot: out-of-band provisioned secret (only the dealer itself
    // needs it on the old committee — other members forward the masked
    // value verbatim).
    return options_.join_keys.at(new_slot);
  }
  const int peer = dealer == me() ? old : dealer;
  return host_.keys().channel_keys.at(static_cast<std::size_t>(peer));
}

BigInt Reconfig::dl_mask(int key, int dealer, int new_slot) const {
  return derive_dl_mask(host_.public_keys().coin.group(), tag_, plan_.new_epoch,
                        static_cast<std::uint32_t>(key), dealer, new_slot,
                        pair_key(dealer, new_slot));
}

BigInt Reconfig::rsa_mask(int key, int dealer, int new_slot, std::size_t subshare_bits) const {
  return derive_rsa_mask(tag_, plan_.new_epoch, static_cast<std::uint32_t>(key), dealer,
                         new_slot, pair_key(dealer, new_slot), subshare_bits + 64);
}

std::size_t Reconfig::reply_subshare_width() const {
  const auto& pk = host_.public_keys().reply_sig;
  return crypto::rsa_subshare_bits(crypto::rsa_reshare_coeff_bits(pk.share_bits()), plan_.n_new,
                                   plan_.low_degree());
}

std::size_t Reconfig::cert_subshare_width() const {
  const auto& pk = host_.public_keys().cert_sig;
  return crypto::rsa_subshare_bits(crypto::rsa_reshare_coeff_bits(pk.share_bits()), plan_.n_new,
                                   plan_.high_degree());
}

void Reconfig::start() {
  // Replay-safe: after a crash-restore the WAL re-runs our original
  // submission through the embedded ABC, and started_ is also set when our
  // own dealing comes out of the total order.
  if (started_) return;
  started_ = true;
  const auto& group = host_.public_keys().coin.group();
  const auto& keys = host_.keys();
  const auto& pub = host_.public_keys();

  const BigInt& coin_share = keys.coin.unit_shares().at(me());
  const BigInt& tdh2_share = keys.decryption.unit_shares().at(me());
  const BigInt& reply_share = keys.reply_sig.unit_shares().at(me());
  const BigInt& cert_share = keys.cert_sig.unit_shares().at(me());

  FeldmanDealing coin_dealing =
      crypto::dl_reshare_deal(group, coin_share, plan_.n_new, plan_.low_degree(), host_.rng());
  FeldmanDealing tdh2_dealing =
      crypto::dl_reshare_deal(group, tdh2_share, plan_.n_new, plan_.low_degree(), host_.rng());
  RsaReshareDealing reply_dealing = RsaReshareDealing::deal(
      reply_share, pub.reply_sig.verification(me()),
      crypto::rsa_reshare_coeff_bits(pub.reply_sig.share_bits()), plan_.n_new,
      plan_.low_degree(), pub.reply_sig.v(), pub.reply_sig.mont(), host_.rng());
  RsaReshareDealing cert_dealing = RsaReshareDealing::deal(
      cert_share, pub.cert_sig.verification(me()),
      crypto::rsa_reshare_coeff_bits(pub.cert_sig.share_bits()), plan_.n_new,
      plan_.high_degree(), pub.cert_sig.v(), pub.cert_sig.mont(), host_.rng());

  std::vector<BigInt> coin_masked, tdh2_masked, reply_masked, cert_masked;
  for (int i = 0; i < plan_.n_new; ++i) {
    const std::size_t slot = static_cast<std::size_t>(i);
    coin_masked.push_back(
        group.scalar_add(coin_dealing.shares[slot], dl_mask(kKeyCoin, me(), i)));
    tdh2_masked.push_back(
        group.scalar_add(tdh2_dealing.shares[slot], dl_mask(kKeyTdh2, me(), i)));
    reply_masked.push_back(reply_dealing.subshares[slot] +
                           rsa_mask(kKeyReply, me(), i, reply_subshare_width()));
    cert_masked.push_back(cert_dealing.subshares[slot] +
                          rsa_mask(kKeyCert, me(), i, cert_subshare_width()));
  }
  if (options_.deal_garbage) {
    // Byzantine test hook: commitments bind to the real old shares, but
    // every sub-share is off by one — verification fails at every new slot
    // and honest verdicts exclude (finger) this dealer.
    for (BigInt& s : coin_masked) s = group.scalar_add(s, BigInt(1));
    for (BigInt& s : tdh2_masked) s = group.scalar_add(s, BigInt(1));
    for (BigInt& s : reply_masked) s += BigInt(1);
    for (BigInt& s : cert_masked) s += BigInt(1);
  }

  Writer w;
  w.u8(kDealing);
  // Dealer id inside the payload: ABC dedupes identical payloads and the
  // id must be cross-checked against the batch origin.
  w.u32(static_cast<std::uint32_t>(me()));
  encode_elements(w, group, coin_dealing.commitments);
  encode_bigints(w, coin_masked);
  encode_elements(w, group, tdh2_dealing.commitments);
  encode_bigints(w, tdh2_masked);
  encode_bigints(w, reply_dealing.commitments);
  encode_bigints(w, reply_masked);
  encode_bigints(w, cert_dealing.commitments);
  encode_bigints(w, cert_masked);
  abc_.submit(w.take());
}

void Reconfig::on_ordered(int origin, Bytes payload) {
  if (result_.has_value()) return;
  try {
    Reader reader(payload);
    const std::uint8_t type = reader.u8();
    const int embedded = static_cast<int>(reader.u32());
    SINTRA_REQUIRE(embedded == origin, "reconfig: embedded id does not match batch origin");
    if (type == kDealing) {
      handle_dealing(origin, reader);
    } else if (type == kVerdict) {
      handle_verdict(origin, reader);
    } else if (type == kSig) {
      if (!pending_.has_value()) {
        // Ordered before this member concluded — only a Byzantine early
        // submitter can cause this (honest kSig is ordered after the
        // verdict quorum that concluded its sender).  Stash and replay.
        sig_stash_.emplace(origin, std::move(payload));
        return;
      }
      handle_sig(origin, reader);
    }
  } catch (const ProtocolError& error) {
    host_.trace("reconfig", tag_ + " dropped ordered payload from " + std::to_string(origin) +
                                ": " + error.what());
  }
}

void Reconfig::handle_dealing(int origin, Reader& reader) {
  if (origin == me()) started_ = true;
  if (crypto::contains(dealers_seen_, origin)) return;  // one dealing per dealer
  if (pending_.has_value()) return;                     // applied set already fixed
  const auto& group = host_.public_keys().coin.group();
  const auto& pub = host_.public_keys();
  const std::size_t n_new = static_cast<std::size_t>(plan_.n_new);

  Dealing d;
  d.dealer = origin;
  d.coin_commitments = decode_elements(reader, group);
  d.coin_subshares = decode_bigints(reader);
  d.tdh2_commitments = decode_elements(reader, group);
  d.tdh2_subshares = decode_bigints(reader);
  d.reply_commitments = decode_bigints(reader);
  d.reply_subshares = decode_bigints(reader);
  d.cert_commitments = decode_bigints(reader);
  d.cert_subshares = decode_bigints(reader);
  reader.expect_done();
  const std::size_t low = static_cast<std::size_t>(plan_.low_degree()) + 1;
  const std::size_t high = static_cast<std::size_t>(plan_.high_degree()) + 1;
  SINTRA_REQUIRE(d.coin_commitments.size() == low && d.tdh2_commitments.size() == low &&
                     d.reply_commitments.size() == low && d.cert_commitments.size() == high,
                 "reconfig: wrong commitment count");
  SINTRA_REQUIRE(d.coin_subshares.size() == n_new && d.tdh2_subshares.size() == n_new &&
                     d.reply_subshares.size() == n_new && d.cert_subshares.size() == n_new,
                 "reconfig: wrong sub-share count");

  // Public binding: C_0 must be the dealer's OLD verification value for
  // each key — this is what ties the dealing to the share it really holds.
  bool valid = d.coin_commitments[0] == pub.coin.verification(origin) &&
               d.tdh2_commitments[0] == pub.encryption.verification(origin) &&
               d.reply_commitments[0] == pub.reply_sig.verification(origin) &&
               d.cert_commitments[0] == pub.cert_sig.verification(origin);

  // Private check: my own sub-shares (members retiring this epoch hold no
  // new slot and can only attest the public binding).
  const int my_new = plan_.new_slot_of(me());
  if (valid && my_new >= 0) {
    const BigInt coin_sub = group.scalar_sub(
        d.coin_subshares[static_cast<std::size_t>(my_new)], dl_mask(kKeyCoin, origin, my_new));
    const BigInt tdh2_sub = group.scalar_sub(
        d.tdh2_subshares[static_cast<std::size_t>(my_new)], dl_mask(kKeyTdh2, origin, my_new));
    const BigInt reply_sub = d.reply_subshares[static_cast<std::size_t>(my_new)] -
                             rsa_mask(kKeyReply, origin, my_new, reply_subshare_width());
    const BigInt cert_sub = d.cert_subshares[static_cast<std::size_t>(my_new)] -
                            rsa_mask(kKeyCert, origin, my_new, cert_subshare_width());
    valid = FeldmanDealing::verify_share(group, d.coin_commitments, my_new, coin_sub) &&
            FeldmanDealing::verify_share(group, d.tdh2_commitments, my_new, tdh2_sub) &&
            RsaReshareDealing::verify_subshare(d.reply_commitments, my_new, reply_sub,
                                               pub.reply_sig.v(), pub.reply_sig.mont()) &&
            RsaReshareDealing::verify_subshare(d.cert_commitments, my_new, cert_sub,
                                               pub.cert_sig.v(), pub.cert_sig.mont());
  }
  d.valid = valid;
  dealers_seen_ |= crypto::party_bit(origin);
  if (valid) dealers_valid_ |= crypto::party_bit(origin);
  dealings_.push_back(std::move(d));
  maybe_submit_verdict();
}

void Reconfig::maybe_submit_verdict() {
  if (verdict_sent_) return;
  // Wait until enough VALID dealings are in (a garbage dealing must not
  // consume the quorum slot of an honest one still in flight) — or until
  // every dealer has been heard, whichever comes first.  Honest dealers
  // alone form a quorum, so this always triggers.
  const bool enough_valid = quorum().is_quorum(dealers_valid_);
  const bool all_heard = dealers_seen_ == crypto::full_set(host_.n());
  if (!enough_valid && !all_heard) return;
  verdict_sent_ = true;
  Writer w;
  w.u8(kVerdict);
  w.u32(static_cast<std::uint32_t>(me()));
  w.u64(dealers_seen_);
  w.u64(dealers_valid_);
  abc_.submit(w.take());
}

void Reconfig::handle_verdict(int origin, Reader& reader) {
  const std::uint64_t seen = reader.u64();
  const std::uint64_t valid = reader.u64();
  reader.expect_done();
  if (crypto::contains(verdict_from_, origin)) return;
  if (quorum().is_quorum(verdict_from_)) return;  // verdict set already fixed
  verdict_from_ |= crypto::party_bit(origin);
  verdicts_.push_back(Verdict{seen, valid});
  maybe_conclude();
}

void Reconfig::maybe_conclude() {
  if (pending_.has_value() || result_.has_value() || !quorum().is_quorum(verdict_from_)) return;
  const auto& group = host_.public_keys().coin.group();
  const auto& pub = host_.public_keys();

  // Applied = dealers seen AND approved by EVERY first-quorum verdict
  // (total order makes every verdict's seen-set a subset of the dealings
  // this member has already processed).
  crypto::PartySet applied = dealers_seen_;
  for (const Verdict& v : verdicts_) applied &= v.seen & v.valid;

  // Fingered = seen by some first-quorum verdict and judged INVALID there.
  // A dealing that merely arrived after the verdicts were cast is excluded
  // from this epoch, but lateness is not evidence: its dealer stays clean.
  crypto::PartySet suspected = 0;
  for (const Verdict& v : verdicts_) suspected |= v.seen & ~v.valid;
  applied_order_.clear();
  for (const Dealing& d : dealings_) {
    if (crypto::contains(applied, d.dealer)) applied_order_.push_back(d.dealer);
  }

  // The certificate key has sharing degree n-t-1: its redistribution needs
  // n-t applied sub-sharings, or the epoch cannot complete.
  const std::size_t need_high = static_cast<std::size_t>(plan_.n_old - plan_.t_old);
  if (applied_order_.size() < need_high) {
    finish_abort(suspected);
    return;
  }
  applied_order_.resize(need_high);  // deterministic: first n-t in ABC order
  const std::vector<int> s_high = applied_order_;
  const std::vector<int> s_low(s_high.begin(), s_high.begin() + plan_.t_old + 1);

  // Drop everything but the applied dealings (join packages need those).
  std::vector<Dealing> kept;
  for (Dealing& d : dealings_) {
    if (std::find(s_high.begin(), s_high.end(), d.dealer) != s_high.end()) {
      kept.push_back(std::move(d));
    }
  }
  dealings_ = std::move(kept);

  auto dealing_of = [&](int dealer) -> const Dealing& {
    for (const Dealing& d : dealings_) {
      if (d.dealer == dealer) return d;
    }
    throw ProtocolError("reconfig: applied dealing missing");
  };

  const BigInt delta_base = BigInt::factorial(static_cast<unsigned>(plan_.n_old));

  ReconfigResult result;
  result.completed = true;
  result.new_slot = plan_.new_slot_of(me());
  result.suspected = suspected;
  result.dealings_applied = static_cast<int>(s_high.size());

  if (result.new_slot >= 0) {
    const std::size_t slot = static_cast<std::size_t>(result.new_slot);
    bool all_valid = true;
    std::vector<BigInt> coin_subs, tdh2_subs, reply_subs, cert_subs;
    for (int dealer : s_low) {
      const Dealing& d = dealing_of(dealer);
      coin_subs.push_back(group.scalar_sub(d.coin_subshares[slot],
                                           dl_mask(kKeyCoin, dealer, result.new_slot)));
      tdh2_subs.push_back(group.scalar_sub(d.tdh2_subshares[slot],
                                           dl_mask(kKeyTdh2, dealer, result.new_slot)));
      reply_subs.push_back(d.reply_subshares[slot] - rsa_mask(kKeyReply, dealer, result.new_slot,
                                                              reply_subshare_width()));
    }
    for (int dealer : s_high) {
      const Dealing& d = dealing_of(dealer);
      cert_subs.push_back(d.cert_subshares[slot] - rsa_mask(kKeyCert, dealer, result.new_slot,
                                                            cert_subshare_width()));
      all_valid = all_valid && d.valid;
    }
    result.coin_share = crypto::dl_combine_subshares(group, s_low, coin_subs);
    result.tdh2_share = crypto::dl_combine_subshares(group, s_low, tdh2_subs);
    result.reply_share = crypto::rsa_combine_subshares(s_low, reply_subs, delta_base);
    result.cert_share = crypto::rsa_combine_subshares(s_high, cert_subs, delta_base);
    // A dealing can be applied over this member's objection when its
    // verdict missed the first quorum: the member then KNOWS its new share
    // is unusable and must recover before serving (see header).
    result.share_valid = all_valid;
  } else {
    result.share_valid = true;  // retiring: nothing to hold
  }

  NewConfig config;
  config.plan = plan_;
  if (fence_.has_value()) {
    config.fence = *fence_;
  } else {
    // Unfenced epoch (key rotation without a checkpoint anchor): the
    // placeholder still has to survive the wire, so it carries the initial
    // chain digest at round 0 — no verifier treats that as a real fence.
    config.fence.chain_digest = crypto::chain_initial();
  }
  {
    std::vector<std::vector<Element>> coin_c, tdh2_c;
    std::vector<std::vector<BigInt>> reply_c, cert_c;
    for (int dealer : s_low) {
      const Dealing& d = dealing_of(dealer);
      coin_c.push_back(d.coin_commitments);
      tdh2_c.push_back(d.tdh2_commitments);
      reply_c.push_back(d.reply_commitments);
    }
    for (int dealer : s_high) cert_c.push_back(dealing_of(dealer).cert_commitments);
    config.coin_verification = crypto::dl_new_verification(group, s_low, coin_c, plan_.n_new);
    config.tdh2_verification = crypto::dl_new_verification(group, s_low, tdh2_c, plan_.n_new);
    config.reply_verification = crypto::rsa_new_verification(s_low, reply_c, plan_.n_new,
                                                             delta_base, pub.reply_sig.mont());
    config.cert_verification = crypto::rsa_new_verification(s_high, cert_c, plan_.n_new,
                                                            delta_base, pub.cert_sig.mont());
  }
  // Δ compounding (crypto/reshare.hpp): the new effective clearing
  // constant is Δ(n') x the OLD scheme's effective delta.
  config.reply_scale = pub.reply_sig.scheme().delta();
  config.cert_scale = pub.cert_sig.scheme().delta();
  config.reply_share_bits = static_cast<std::uint32_t>(crypto::rsa_reshare_share_bits(
      crypto::rsa_reshare_coeff_bits(pub.reply_sig.share_bits()), plan_.n_old, plan_.t_old,
      plan_.n_new, plan_.low_degree()));
  config.cert_share_bits = static_cast<std::uint32_t>(crypto::rsa_reshare_share_bits(
      crypto::rsa_reshare_coeff_bits(pub.cert_sig.share_bits()), plan_.n_old,
      plan_.n_old - plan_.t_old - 1, plan_.n_new, plan_.high_degree()));

  result.config = std::move(config);
  pending_ = std::move(result);
  pending_statement_ = pending_->config.statement(tag_, group);
  submit_sig_shares();

  // Replay any kSig payloads a Byzantine member pushed ahead of schedule.
  auto stash = std::move(sig_stash_);
  sig_stash_.clear();
  for (auto& [origin, payload] : stash) {
    try {
      Reader reader(payload);
      reader.u8();
      reader.u32();
      handle_sig(origin, reader);
    } catch (const ProtocolError&) {
    }
  }
}

void Reconfig::finish_abort(crypto::PartySet suspected) {
  ReconfigResult result;
  result.completed = false;
  result.new_slot = plan_.new_slot_of(me());
  result.suspected = suspected;
  result.dealings_applied = static_cast<int>(applied_order_.size());
  host_.trace("reconfig",
              tag_ + " epoch aborted: only " + std::to_string(applied_order_.size()) +
                  " applied dealings");
  result_ = std::move(result);
  dealings_.clear();
  dealings_.shrink_to_fit();
  verdicts_.clear();
  if (done_) done_(*result_);
}

void Reconfig::submit_sig_shares() {
  const auto& pub = host_.public_keys();
  std::vector<crypto::SigShare> shares =
      host_.keys().reply_sig.sign(pub.reply_sig, pending_statement_, host_.rng());
  Writer w;
  w.u8(kSig);
  w.u32(static_cast<std::uint32_t>(me()));
  w.vec(shares, [](Writer& wr, const crypto::SigShare& s) { s.encode(wr); });
  abc_.submit(w.take());
}

void Reconfig::handle_sig(int origin, Reader& reader) {
  if (result_.has_value() || !pending_.has_value()) return;
  if (crypto::contains(sig_from_, origin)) return;
  auto shares =
      reader.vec<crypto::SigShare>([](Reader& rr) { return crypto::SigShare::decode(rr); });
  reader.expect_done();
  const auto& pub = host_.public_keys();
  for (const crypto::SigShare& share : shares) {
    SINTRA_REQUIRE(pub.reply_sig.scheme().unit_owner(share.unit) == origin,
                   "reconfig: signature share for a foreign unit");
    SINTRA_REQUIRE(pub.reply_sig.verify_share(pending_statement_, share),
                   "reconfig: invalid signature share");
  }
  sig_from_ |= crypto::party_bit(origin);
  for (crypto::SigShare& share : shares) sig_shares_.push_back(std::move(share));
  if (!pub.reply_sig.scheme().qualified(sig_from_)) return;
  auto combined = pub.reply_sig.combine(pending_statement_, sig_shares_);
  if (!combined.has_value()) return;
  pending_->config.signature = std::move(*combined);
  result_ = std::move(pending_);
  pending_.reset();
  sig_shares_.clear();
  sig_shares_.shrink_to_fit();
  verdicts_.clear();
  host_.trace("reconfig", tag_ + " epoch " + std::to_string(plan_.new_epoch) + " completed (" +
                              std::to_string(result_->dealings_applied) + " dealings applied)");
  if (done_) done_(*result_);
}

JoinPackage Reconfig::join_package(int joiner_slot) const {
  SINTRA_REQUIRE(result_.has_value() && result_->completed,
                 "reconfig: epoch not completed");
  SINTRA_REQUIRE(plan_.joining(joiner_slot), "reconfig: slot is not a joining slot");
  const std::size_t slot = static_cast<std::size_t>(joiner_slot);
  JoinPackage package;
  package.config = result_->config;
  for (int dealer : applied_order_) {
    package.applied.push_back(dealer);
    for (const Dealing& d : dealings_) {
      if (d.dealer != dealer) continue;
      package.coin_commitments.push_back(d.coin_commitments);
      package.tdh2_commitments.push_back(d.tdh2_commitments);
      package.reply_commitments.push_back(d.reply_commitments);
      package.cert_commitments.push_back(d.cert_commitments);
      package.coin_subshares.push_back(d.coin_subshares[slot]);
      package.tdh2_subshares.push_back(d.tdh2_subshares[slot]);
      package.reply_subshares.push_back(d.reply_subshares[slot]);
      package.cert_subshares.push_back(d.cert_subshares[slot]);
      break;
    }
  }
  SINTRA_REQUIRE(package.applied.size() == applied_order_.size(),
                 "reconfig: applied dealing missing from store");
  return package;
}

// ---- helpers -------------------------------------------------------------

Bytes reconfig_channel_key(std::uint32_t epoch, BytesView pair_key) {
  Writer w;
  w.u32(epoch);
  w.bytes(pair_key);
  return crypto::hash_expand("sintra/reconfig/chan", w.data(), 32);
}

namespace {

/// New-committee public key material, rebuilt from the announcement alone
/// (shared by members and share-less observers like clients).
crypto::PublicKeys rebuild_public_keys(const NewConfig& config, const crypto::GroupPtr& group,
                                       const crypto::PublicKeys& old_public) {
  const ReconfigPlan& plan = config.plan;
  auto low = std::make_shared<const crypto::ThresholdScheme>(plan.n_new, plan.t_new);
  auto high =
      std::make_shared<const crypto::ThresholdScheme>(plan.n_new, plan.high_degree());
  auto reply_scheme = std::make_shared<const crypto::ScaledScheme>(low, config.reply_scale);
  auto cert_scheme = std::make_shared<const crypto::ScaledScheme>(high, config.cert_scale);
  return crypto::PublicKeys{
      crypto::CoinPublicKey(group, low, config.coin_verification),
      crypto::ThresholdSigPublicKey(old_public.cert_sig.modulus(), old_public.cert_sig.exponent(),
                                    old_public.cert_sig.v(), config.cert_verification,
                                    cert_scheme, config.cert_share_bits),
      crypto::ThresholdSigPublicKey(old_public.reply_sig.modulus(),
                                    old_public.reply_sig.exponent(), old_public.reply_sig.v(),
                                    config.reply_verification, reply_scheme,
                                    config.reply_share_bits),
      crypto::Tdh2PublicKey(group, low, old_public.encryption.h(), config.tdh2_verification)};
}

}  // namespace

adversary::Deployment reconfig_deployment(const ReconfigResult& result, crypto::GroupPtr group,
                                          const crypto::PublicKeys& old_public,
                                          std::vector<Bytes> channel_keys) {
  SINTRA_REQUIRE(result.completed && result.new_slot >= 0,
                 "reconfig: no new-committee membership to deploy");
  const NewConfig& config = result.config;
  const ReconfigPlan& plan = config.plan;
  SINTRA_REQUIRE(static_cast<std::int32_t>(channel_keys.size()) == plan.n_new,
                 "reconfig: channel key vector size mismatch");

  crypto::PublicKeys public_keys = rebuild_public_keys(config, group, old_public);

  std::vector<crypto::PartyKeyShare> shares;
  for (int slot = 0; slot < plan.n_new; ++slot) {
    if (slot == result.new_slot) {
      shares.push_back(crypto::PartyKeyShare{
          crypto::CoinSecretKey(slot, {{slot, result.coin_share}}),
          crypto::ThresholdSigSecretKey(slot, {{slot, result.cert_share}}),
          crypto::ThresholdSigSecretKey(slot, {{slot, result.reply_share}}),
          crypto::Tdh2SecretKey(slot, {{slot, result.tdh2_share}}), channel_keys});
    } else {
      // Placeholder: a member only ever reads its own slot's share.
      shares.push_back(crypto::PartyKeyShare{crypto::CoinSecretKey(slot, {}),
                                             crypto::ThresholdSigSecretKey(slot, {}),
                                             crypto::ThresholdSigSecretKey(slot, {}),
                                             crypto::Tdh2SecretKey(slot, {}),
                                             std::vector<Bytes>()});
    }
  }

  adversary::Deployment deployment;
  deployment.quorum = std::make_shared<const adversary::ThresholdQuorum>(plan.n_new, plan.t_new);
  deployment.keys = std::make_shared<const crypto::KeyBundle>(std::move(public_keys),
                                                              std::move(shares));
  return deployment;
}

adversary::Deployment reconfig_public_deployment(const NewConfig& config, crypto::GroupPtr group,
                                                 const crypto::PublicKeys& old_public) {
  const ReconfigPlan& plan = config.plan;
  plan.validate();
  crypto::PublicKeys public_keys = rebuild_public_keys(config, group, old_public);
  std::vector<crypto::PartyKeyShare> shares;
  for (int slot = 0; slot < plan.n_new; ++slot) {
    shares.push_back(crypto::PartyKeyShare{crypto::CoinSecretKey(slot, {}),
                                           crypto::ThresholdSigSecretKey(slot, {}),
                                           crypto::ThresholdSigSecretKey(slot, {}),
                                           crypto::Tdh2SecretKey(slot, {}),
                                           std::vector<Bytes>()});
  }
  adversary::Deployment deployment;
  deployment.quorum = std::make_shared<const adversary::ThresholdQuorum>(plan.n_new, plan.t_new);
  deployment.keys = std::make_shared<const crypto::KeyBundle>(std::move(public_keys),
                                                              std::move(shares));
  return deployment;
}

// ---- JoinListener --------------------------------------------------------

JoinListener::JoinListener(std::string tag, int new_slot, std::map<int, Bytes> join_keys,
                           crypto::GroupPtr group, crypto::PublicKeys old_public)
    : tag_(std::move(tag)), new_slot_(new_slot), join_keys_(std::move(join_keys)),
      group_(std::move(group)), old_public_(std::move(old_public)) {}

bool JoinListener::offer(const JoinPackage& package) {
  if (result_.has_value()) return true;  // first valid package won already
  try {
    const NewConfig& config = package.config;
    const ReconfigPlan& plan = config.plan;
    plan.validate();
    SINTRA_REQUIRE(new_slot_ >= 0 && new_slot_ < plan.n_new && plan.joining(new_slot_),
                   "join: this slot is not joining in the announced plan");
    SINTRA_REQUIRE(config.verify(old_public_.reply_sig, tag_, *group_),
                   "join: announcement signature invalid");

    const std::size_t need_high = static_cast<std::size_t>(plan.n_old - plan.t_old);
    const std::size_t need_low = static_cast<std::size_t>(plan.t_old) + 1;
    SINTRA_REQUIRE(package.applied.size() == need_high, "join: wrong applied-dealer count");
    SINTRA_REQUIRE(package.coin_commitments.size() == need_high &&
                       package.tdh2_commitments.size() == need_high &&
                       package.reply_commitments.size() == need_high &&
                       package.cert_commitments.size() == need_high &&
                       package.coin_subshares.size() == need_high &&
                       package.tdh2_subshares.size() == need_high &&
                       package.reply_subshares.size() == need_high &&
                       package.cert_subshares.size() == need_high,
                   "join: package vector size mismatch");
    crypto::PartySet seen = 0;
    for (std::int32_t dealer : package.applied) {
      SINTRA_REQUIRE(dealer >= 0 && dealer < plan.n_old, "join: applied dealer out of range");
      SINTRA_REQUIRE(!crypto::contains(seen, dealer), "join: duplicate applied dealer");
      seen |= crypto::party_bit(dealer);
    }

    // Scales and widths must be exactly what the public derivation gives.
    SINTRA_REQUIRE(config.reply_scale == old_public_.reply_sig.scheme().delta() &&
                       config.cert_scale == old_public_.cert_sig.scheme().delta(),
                   "join: announced delta scale mismatch");
    const std::size_t reply_coeff_bits =
        crypto::rsa_reshare_coeff_bits(old_public_.reply_sig.share_bits());
    const std::size_t cert_coeff_bits =
        crypto::rsa_reshare_coeff_bits(old_public_.cert_sig.share_bits());
    SINTRA_REQUIRE(
        config.reply_share_bits ==
                crypto::rsa_reshare_share_bits(reply_coeff_bits, plan.n_old, plan.t_old,
                                               plan.n_new, plan.low_degree()) &&
            config.cert_share_bits ==
                crypto::rsa_reshare_share_bits(cert_coeff_bits, plan.n_old,
                                               plan.n_old - plan.t_old - 1, plan.n_new,
                                               plan.high_degree()),
        "join: announced share width mismatch");

    const std::size_t low_count = static_cast<std::size_t>(plan.low_degree()) + 1;
    const std::size_t high_count = static_cast<std::size_t>(plan.high_degree()) + 1;
    std::vector<int> s_high(package.applied.begin(), package.applied.end());
    std::vector<int> s_low(s_high.begin(), s_high.begin() + static_cast<long>(need_low));

    // Per-dealer checks: commitment geometry + C_0 binding to the dealer's
    // OLD public verification value.
    for (std::size_t k = 0; k < need_high; ++k) {
      const int dealer = s_high[k];
      SINTRA_REQUIRE(package.coin_commitments[k].size() == low_count &&
                         package.tdh2_commitments[k].size() == low_count &&
                         package.reply_commitments[k].size() == low_count &&
                         package.cert_commitments[k].size() == high_count,
                     "join: wrong commitment count");
      SINTRA_REQUIRE(
          package.coin_commitments[k][0] == old_public_.coin.verification(dealer) &&
              package.tdh2_commitments[k][0] == old_public_.encryption.verification(dealer) &&
              package.reply_commitments[k][0] == old_public_.reply_sig.verification(dealer) &&
              package.cert_commitments[k][0] == old_public_.cert_sig.verification(dealer),
          "join: dealing not bound to the dealer's old share");
    }

    // The announced verification vectors must be what the commitments give
    // — this binds the package's dealings to the signed announcement.
    const BigInt delta_base = BigInt::factorial(static_cast<unsigned>(plan.n_old));
    {
      std::vector<std::vector<Element>> coin_c, tdh2_c;
      std::vector<std::vector<BigInt>> reply_c, cert_c;
      for (std::size_t k = 0; k < need_low; ++k) {
        coin_c.push_back(package.coin_commitments[k]);
        tdh2_c.push_back(package.tdh2_commitments[k]);
        reply_c.push_back(package.reply_commitments[k]);
      }
      for (std::size_t k = 0; k < need_high; ++k) cert_c.push_back(package.cert_commitments[k]);
      SINTRA_REQUIRE(
          crypto::dl_new_verification(*group_, s_low, coin_c, plan.n_new) ==
                  config.coin_verification &&
              crypto::dl_new_verification(*group_, s_low, tdh2_c, plan.n_new) ==
                  config.tdh2_verification &&
              crypto::rsa_new_verification(s_low, reply_c, plan.n_new, delta_base,
                                           old_public_.reply_sig.mont()) ==
                  config.reply_verification &&
              crypto::rsa_new_verification(s_high, cert_c, plan.n_new, delta_base,
                                           old_public_.cert_sig.mont()) ==
                  config.cert_verification,
          "join: announced verification values do not match the dealings");
    }

    // Unmask and verify my own sub-shares; a failure here inside an
    // APPLIED dealing is provable dealer misbehavior targeting the joiner.
    const std::size_t reply_width =
        crypto::rsa_subshare_bits(reply_coeff_bits, plan.n_new, plan.low_degree()) + 64;
    const std::size_t cert_width =
        crypto::rsa_subshare_bits(cert_coeff_bits, plan.n_new, plan.high_degree()) + 64;
    std::vector<BigInt> coin_subs, tdh2_subs, reply_subs, cert_subs;
    for (std::size_t k = 0; k < need_high; ++k) {
      const int dealer = s_high[k];
      const Bytes& jkey = join_keys_.at(dealer);
      const BigInt cert_sub =
          package.cert_subshares[k] - derive_rsa_mask(tag_, plan.new_epoch, kKeyCert, dealer,
                                                      new_slot_, jkey, cert_width);
      if (!RsaReshareDealing::verify_subshare(package.cert_commitments[k], new_slot_, cert_sub,
                                              old_public_.cert_sig.v(),
                                              old_public_.cert_sig.mont())) {
        suspected_ |= crypto::party_bit(dealer);
        throw ProtocolError("join: cert sub-share fails verification");
      }
      cert_subs.push_back(cert_sub);
      if (k >= need_low) continue;
      const BigInt coin_sub = group_->scalar_sub(
          package.coin_subshares[k],
          derive_dl_mask(*group_, tag_, plan.new_epoch, kKeyCoin, dealer, new_slot_, jkey));
      const BigInt tdh2_sub = group_->scalar_sub(
          package.tdh2_subshares[k],
          derive_dl_mask(*group_, tag_, plan.new_epoch, kKeyTdh2, dealer, new_slot_, jkey));
      const BigInt reply_sub =
          package.reply_subshares[k] - derive_rsa_mask(tag_, plan.new_epoch, kKeyReply, dealer,
                                                       new_slot_, jkey, reply_width);
      if (!FeldmanDealing::verify_share(*group_, package.coin_commitments[k], new_slot_,
                                        coin_sub) ||
          !FeldmanDealing::verify_share(*group_, package.tdh2_commitments[k], new_slot_,
                                        tdh2_sub) ||
          !RsaReshareDealing::verify_subshare(package.reply_commitments[k], new_slot_, reply_sub,
                                              old_public_.reply_sig.v(),
                                              old_public_.reply_sig.mont())) {
        suspected_ |= crypto::party_bit(dealer);
        throw ProtocolError("join: sub-share fails verification");
      }
      coin_subs.push_back(coin_sub);
      tdh2_subs.push_back(tdh2_sub);
      reply_subs.push_back(reply_sub);
    }

    ReconfigResult result;
    result.completed = true;
    result.config = config;
    result.new_slot = new_slot_;
    result.share_valid = true;
    result.coin_share = crypto::dl_combine_subshares(*group_, s_low, coin_subs);
    result.tdh2_share = crypto::dl_combine_subshares(*group_, s_low, tdh2_subs);
    result.reply_share = crypto::rsa_combine_subshares(s_low, reply_subs, delta_base);
    result.cert_share = crypto::rsa_combine_subshares(s_high, cert_subs, delta_base);
    result.dealings_applied = static_cast<int>(need_high);
    result_ = std::move(result);
    return true;
  } catch (const ProtocolError&) {
    return false;
  }
}

}  // namespace sintra::protocols
