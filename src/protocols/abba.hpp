// ABBA — asynchronous binary Byzantine agreement in the style of Cachin,
// Kursawe & Shoup (PODC 2000): randomized, optimal resilience (n > 3t /
// Q³), expected constant rounds, constant-size messages via threshold
// signatures, powered by the Diffie–Hellman threshold coin.
//
// Round structure (r = 1, 2, ...):
//
//  INPUT(v): each party opens by broadcasting signature shares (under the
//  "beyond one fault set" scheme) on its proposal.  A value v is *anchored*
//  once shares from a fault-set-exceeding set combine into sigma_input(v) —
//  proof that at least one honest party proposed v.  Q³ guarantees that
//  among the honest parties at least one value anchors.
//
//  PRE-VOTE(r, v): justified by
//    - sigma_input(v) for r = 1 (so corrupted parties cannot inject a
//      value no honest party proposed — this is what gives validity);
//    - HARD:  sigma_pre(r-1, v), a threshold signature proving a full
//             quorum pre-voted v in round r-1 (obtained from a main-vote);
//    - COIN:  sigma_main(r-1, abstain), a threshold signature proving a
//             full quorum main-voted abstain in r-1, AND v equals the
//             round-(r-1) coin (checked lazily once the coin is known).
//
//  MAIN-VOTE(r): after accepting pre-votes from a full quorum:
//    - v        if all accepted pre-votes were for v; carries
//               sigma_pre(r, v) combined from their signature shares;
//    - abstain  otherwise (no justification needed: an abstain
//               *certificate* requires a quorum of abstain shares, which
//               cannot form unless honest parties genuinely abstained).
//
//  End of round: release the round-r coin share.  After main-votes from a
//  full quorum:
//    - all v        -> DECIDE v, broadcast sigma_main(r, v);
//    - some v       -> pre-vote v in r+1 with HARD justification;
//    - all abstain  -> wait for the coin, pre-vote coin(r) with COIN
//                      justification.
//
//  DECIDE(r, v, sigma_main(r, v)) is transferable: any party accepting it
//  decides, re-broadcasts it once, and halts.
//
// Why validity holds: if every honest party proposes v, then ~v never
// anchors, so every accepted round-1 pre-vote is v, every honest main-vote
// is v, no abstain certificate can form, and neither a ~v hard
// justification nor a ~v coin pre-vote is ever valid; v is decided as soon
// as the honest main-votes accumulate.
// Why agreement holds: two quorums intersect in an honest party, so
// sigma_pre(r, 0) and sigma_pre(r, 1) cannot coexist, and after a decision
// for v neither a ~v hard justification nor an abstain certificate can
// form.  Why termination is expected-constant: each round, either all
// honest parties adopt the coin (unanimous next round), or a unique hard
// value exists and the unpredictable coin matches it with probability 1/2.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "protocols/base.hpp"
#include "protocols/watchdog.hpp"

namespace sintra::protocols {

class Abba final : public ProtocolInstance {
 public:
  /// decide(value, round) — round reported for the round-complexity
  /// experiments (E2).
  using DecideFn = std::function<void(bool value, int round)>;

  Abba(net::Party& host, std::string tag, DecideFn decide);
  ~Abba() override;

  /// Re-entry with the same input re-broadcasts INPUT (crash-recovery
  /// replay); a flipped input throws.
  void start(bool input);

  /// Liveness watchdog: on a stall, re-broadcast our own current-state
  /// messages (input / pre-vote / main-vote / coin share, or the decide
  /// certificate) — idempotent, receivers dedup.
  void enable_watchdog(std::uint64_t timeout);
  [[nodiscard]] std::uint64_t recoveries() const {
    return watchdog_ ? watchdog_->recoveries() : 0;
  }

  /// WAL compaction (opt-in): once decided, this instance's WAL entries
  /// are pruned — the registered checkpoint carries the decision across a
  /// restart instead of a full message replay.  Only sound for instances
  /// that exist when Party::restore runs (factory-built, not lazily
  /// spawned sub-instances — their checkpoint blob would find no loader
  /// and the pruned entries could not be replayed either).
  void enable_compaction() { compaction_ = true; }

  [[nodiscard]] bool decided() const { return decided_; }
  [[nodiscard]] std::optional<bool> decision() const { return decision_; }

  /// Parties caught sending well-formed-but-invalid coin shares (fingered
  /// by the batch verifier's bisection).
  [[nodiscard]] crypto::PartySet suspected() const { return suspected_; }

  /// Introspection for the memory-budget tests.
  [[nodiscard]] std::size_t live_rounds() const { return rounds_.size(); }
  [[nodiscard]] std::size_t deferred_count() const { return deferred_.size(); }

 private:
  enum MsgType : std::uint8_t {
    kInput = 4,
    kPreVote = 0,
    kMainVote = 1,
    kCoinShare = 2,
    kDecide = 3,
    kCoinVerdict = 5,  ///< self-message: off-loop coin batch-verify result
  };
  enum Justification : std::uint8_t { kJustAnchor = 0, kJustHard = 1, kJustCoin = 2 };
  static constexpr std::uint8_t kAbstain = 2;

  struct Round {
    // Pre-votes.
    crypto::PartySet prevoted = 0;
    std::array<crypto::PartySet, 2> prevote_support{};
    std::array<std::vector<crypto::SigShare>, 2> prevote_shares;
    std::array<std::optional<crypto::BigInt>, 2> sigma_pre;  ///< combined cert per value
    bool sent_prevote = false;
    // Main-votes.
    crypto::PartySet mainvoted = 0;
    std::array<crypto::PartySet, 3> mainvote_support{};
    std::array<std::vector<crypto::SigShare>, 3> mainvote_shares;
    std::optional<crypto::BigInt> sigma_main_abstain;
    bool sent_mainvote = false;
    bool round_closed = false;  ///< main-vote quorum processed
    bool waiting_for_coin = false;
    // Coin.  Shares are buffered after structural checks only; the NIZK
    // batch verification + combine runs off-loop (Party::offload) and
    // reports back as a kCoinVerdict self-message.
    bool coin_released = false;
    crypto::PartySet coin_support = 0;
    crypto::PartySet coin_rejected = 0;  ///< senders with a proven-bad share
    std::vector<crypto::CoinShare> coin_shares;
    int coin_attempt = 0;        ///< verdicts are matched to the attempt
    bool coin_inflight = false;  ///< a verification job is outstanding
    std::optional<bool> coin;
    /// COIN-justified pre-votes for round r+1 awaiting this round's coin:
    /// (voter, value, cert-signature shares); evidence already verified.
    std::vector<std::tuple<int, bool, std::vector<crypto::SigShare>>> deferred_coin_prevotes;
  };

  void handle(int from, Reader& reader) override;
  void park_deferred(std::uint8_t type, int round, int from, Reader& reader);
  void resummarize();
  [[nodiscard]] Bytes checkpoint_save() const;
  void checkpoint_load(Reader& reader);
  void broadcast_input();
  void on_input(int from, Reader& reader);
  void try_first_prevote();
  void on_prevote(int from, Reader& reader);
  void on_mainvote(int from, Reader& reader);
  void on_coin_share(int from, Reader& reader);
  void on_coin_verdict(int from, Reader& reader);
  void on_decide(int from, Reader& reader);

  void accept_prevote(int round, int from, bool value,
                      const std::vector<crypto::SigShare>& shares);
  void maybe_mainvote(int round);
  void maybe_close_round(int round);
  void release_coin(int round);
  void maybe_combine_coin(int round);
  void adopt_coin(int round, BytesView value);
  void advance(int round, bool value, Justification justification,
               const crypto::BigInt& evidence);
  void send_prevote(int round, bool value, Justification justification,
                    const crypto::BigInt& evidence);
  void decide(bool value, int round, const crypto::BigInt& sigma_main);

  [[nodiscard]] Bytes statement(std::string_view kind, int round, std::uint8_t value) const;
  [[nodiscard]] Bytes coin_name(int round) const;
  Round& round_state(int round);

  DecideFn decide_;
  bool started_ = false;
  bool decided_ = false;
  bool compaction_ = false;
  std::optional<bool> decision_;
  int decide_round_ = 0;
  std::optional<bool> my_input_;
  // Input anchoring.
  crypto::PartySet input_voted_ = 0;
  std::array<crypto::PartySet, 2> input_support_{};
  std::array<std::vector<crypto::SigShare>, 2> input_shares_;
  std::array<std::optional<crypto::BigInt>, 2> anchor_;
  int current_round_ = 1;
  std::map<int, Round> rounds_;
  std::vector<std::tuple<int, int, Bytes>> deferred_;  ///< (round, from, raw) for far-future rounds
  Bytes decide_raw_;  ///< the kDecide broadcast (responder + checkpoint material)
  Bytes last_prevote_raw_;    ///< watchdog resummary material
  Bytes last_mainvote_raw_;
  Bytes last_coin_raw_;
  crypto::PartySet helped_ = 0;     ///< peers already re-sent the decide cert
  crypto::PartySet suspected_ = 0;  ///< proven bad-share senders
  std::uint64_t progress_ = 0;   ///< counted protocol events (watchdog token)
  /// Count one protocol event and snap the watchdog's grown timeout back
  /// to base (no-op unless an earlier stall inflated it).
  void bump_progress() {
    ++progress_;
    if (watchdog_) watchdog_->note_progress();
  }
  std::unique_ptr<StallWatchdog> watchdog_;
};

}  // namespace sintra::protocols
