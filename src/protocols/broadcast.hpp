// Reliable broadcast — the optimized Bracha–Toueg protocol (§3).
//
// Guarantees with n > 3t (generalized: Q³):
//   * validity     — if the (honest) sender broadcasts m, every honest
//                    party eventually delivers m;
//   * agreement    — if any honest party delivers m, every honest party
//                    eventually delivers m;
//   * integrity    — every honest party delivers at most one message per
//                    instance, and (for an honest sender) only the
//                    sender's message.
// No ordering across instances — that is atomic broadcast's job.
//
// Message flow: SEND(m) from the designated sender; ECHO(m) from everyone
// on first SEND; READY(m) once a quorum of echoes ("n−t" rule) or a
// fault-set-exceeding set of readies ("t+1" rule, amplification) is seen;
// deliver on a vote quorum of readies ("2t+1" rule).
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "protocols/base.hpp"
#include "protocols/watchdog.hpp"

namespace sintra::protocols {

class ReliableBroadcast final : public ProtocolInstance {
 public:
  using DeliverFn = std::function<void(Bytes message)>;

  /// `sender` is the designated broadcaster for this instance.
  ReliableBroadcast(net::Party& host, std::string tag, int sender, DeliverFn deliver);

  /// Start broadcasting (only the designated sender calls this).  Safe to
  /// call again with the same message (re-broadcasts SEND — used by
  /// crash-recovery replay); a conflicting re-start throws.
  void start(Bytes message);

  /// Liveness watchdog: if the instance makes no progress for `timeout`
  /// network time units, rebroadcast our own SEND/ECHO/READY (a state
  /// summary — idempotent, receivers dedup) so a peer that lost them
  /// (lossy restart) can catch up.
  void enable_watchdog(std::uint64_t timeout);
  [[nodiscard]] std::uint64_t recoveries() const {
    return watchdog_ ? watchdog_->recoveries() : 0;
  }

  [[nodiscard]] bool delivered() const { return delivered_; }

  /// Introspection for memory-bound tests: live tally entries and bytes
  /// of retained message content.
  [[nodiscard]] std::size_t tally_count() const { return tallies_.size(); }
  [[nodiscard]] std::size_t retained_bytes() const;

 private:
  enum MsgType : std::uint8_t { kSend = 0, kEcho = 1, kReady = 2, kSummary = 3 };

  void handle(int from, Reader& reader) override;
  struct Tally;
  void retain_if_supported(Tally& tally, const Bytes& message);
  void maybe_progress(Tally& tally);
  [[nodiscard]] const Bytes& digest_for(const Bytes& message);

  struct Tally {
    crypto::PartySet echoes = 0;
    crypto::PartySet readies = 0;
    Bytes message;       ///< content; retained only once supported (see .cpp)
    bool have_content = false;
  };

  void resummarize();

  int sender_;
  DeliverFn deliver_;
  bool started_ = false;
  bool send_seen_ = false;  ///< first SEND from the designated sender counts
  bool echoed_ = false;
  bool readied_ = false;
  bool delivered_ = false;
  Bytes sent_message_;            ///< what we started with (sender only)
  crypto::PartySet echoed_by_ = 0;   ///< parties whose ECHO already counted
  crypto::PartySet readied_by_ = 0;  ///< parties whose READY already counted
  std::map<Bytes, Tally> tallies_;  ///< digest -> tally; bounded (<= 2n+1)
  Bytes echo_raw_;   ///< our ECHO as sent (watchdog resummary material)
  Bytes ready_raw_;  ///< our READY as sent; doubles as the straggler answer
  crypto::PartySet helped_ = 0;  ///< peers already given a post-delivery READY
  crypto::PartySet summary_answered_ = 0;  ///< peers whose SUMMARY probe we answered
  std::uint64_t progress_ = 0;   ///< counted protocol events (watchdog token)
  /// Count one protocol event and snap the watchdog's grown timeout back
  /// to base (no-op unless an earlier stall inflated it).
  void bump_progress() {
    ++progress_;
    if (watchdog_) watchdog_->note_progress();
  }
  Bytes digest_cache_key_;  ///< last hashed body (all-honest runs hash once)
  Bytes digest_cache_val_;
  bool digest_cache_set_ = false;
  std::unique_ptr<StallWatchdog> watchdog_;
};

}  // namespace sintra::protocols
