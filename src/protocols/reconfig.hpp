// Online membership reconfiguration (issue 9).
//
// An epoch-based protocol that swaps, adds, or removes replicas while
// preserving every shared secret: the old committee runs verifiable share
// redistribution (crypto/reshare.hpp) for all four dealt keys — coin,
// TDH2, reply-signature and certificate-signature — totally ordered over
// an embedded atomic broadcast, fenced at a checkpoint certificate of the
// service's delivery log.  The protocol produces
//
//  * a signed NEW-CONFIG announcement (the new committee geometry, the
//    fence, and all new public verification values, threshold-signed under
//    the OLD reply key so clients and joiners can verify it with key
//    material they already hold), and
//  * each surviving member's new secret shares, interpolated from the
//    first qualified set of applied dealings.
//
// Epoch flow (all messages through the embedded ABC, so every honest old
// member sees the identical sequence):
//  1. kDealing — every old member deals a degree-t' redistribution of each
//     of its four shares to the n' new slots, sub-shares masked with
//     pairwise keys (dealer-dealt channel keys between survivors; an
//     out-of-band provisioned join key per joining slot — the paper's
//     dealer model extended to admission, see PROTOCOLS.md).
//  2. kVerdict — once a member holds a quorum of VALID dealings (or has
//     heard every dealer), it broadcasts (seen, valid) bitmasks over old
//     slots.  The applied set = dealers seen AND approved by every verdict
//     of the first verdict quorum — deterministic at every member.
//  3. If fewer than n−t dealers are applied the epoch ABORTS cleanly (the
//     certificate key has sharing degree n−t−1, so n−t sub-sharings are
//     needed; the old committee stays intact, excluded dealers are
//     fingered in `suspected`).  Otherwise every member derives the new
//     shares + verification values and
//  4. kSig — members exchange OLD-reply-key signature shares over the
//     NEW-CONFIG statement; the first qualified set combines into the
//     (unique) announcement signature.
//
// A joining replica holds no old share: it bootstraps its protocol state
// via net/state_transfer (anchored at the fence certificate) and receives
// a JoinPackage — the signed announcement plus the applied dealings'
// commitments and its own masked sub-shares — from any old member, fully
// verifying everything against public values before accepting (first valid
// package wins; a dealing whose sub-share targets the joiner with garbage
// is fingered and the join aborts cleanly).
//
// Model honesty: redistribution interpolates over Lagrange points, so this
// protocol supports the classical threshold model only (like refresh; a
// generalized-LSSS redistribution would need per-gate resharing).  A
// Byzantine old member can at worst force a clean abort (false verdicts)
// or leave one member whose verdict missed the first quorum with an
// unusable share — which that member DETECTS (share_valid == false) and
// recovers from via a subsequent identity reshare.
#pragma once

#include <optional>

#include "crypto/checkpoint.hpp"
#include "crypto/reshare.hpp"
#include "protocols/atomic.hpp"

namespace sintra::protocols {

/// Committee geometry of one epoch change, as carried by the totally
/// ordered RECONFIG command.  Contains no secret material.
struct ReconfigPlan {
  std::uint32_t new_epoch = 1;
  std::int32_t n_old = 0;
  std::int32_t t_old = 0;
  std::int32_t n_new = 0;
  std::int32_t t_new = 0;
  /// new slot -> old slot of the member that keeps it, or -1 for a slot
  /// filled by a joining (blank) replica.
  std::vector<std::int32_t> old_slot;
  /// new slot -> transport endpoint ("host:port"); may be empty under the
  /// simulator, where slots are addresses.
  std::vector<std::string> endpoints;

  /// Old slot -> new slot, or -1 if the member retires this epoch.
  [[nodiscard]] int new_slot_of(int old) const;
  [[nodiscard]] bool joining(int new_slot) const {
    return old_slot.at(static_cast<std::size_t>(new_slot)) < 0;
  }
  /// Sharing degrees of the new committee's low / high access structures.
  [[nodiscard]] int low_degree() const { return t_new; }
  [[nodiscard]] int high_degree() const { return n_new - t_new - 1; }

  /// Structural sanity (throws ProtocolError): n > 3t on both sides,
  /// committee sizes within PartySet range, old_slot injective and in
  /// range, endpoints either empty or one per new slot.
  void validate() const;

  void encode(Writer& w) const;
  static ReconfigPlan decode(Reader& r);
};

/// The signed NEW-CONFIG announcement.  Everything a client or joining
/// replica needs to follow the epoch: the plan, the checkpoint fence, and
/// the new public key material for all four keys, authenticated by a
/// combined threshold signature under the OLD reply key (whose public key
/// every client already holds; combined RSA signatures are unique, so all
/// honest members produce the bit-identical announcement).
struct NewConfig {
  ReconfigPlan plan;
  /// Fence: the epoch cuts the delivery log at this certificate (round 0 =
  /// unfenced, for key-rotation-only uses).
  crypto::CheckpointCert fence;
  std::vector<crypto::Element> coin_verification;   ///< g^{x'_i} per new slot
  std::vector<crypto::Element> tdh2_verification;
  std::vector<crypto::BigInt> reply_verification;   ///< v^{d'_i} per new slot
  std::vector<crypto::BigInt> cert_verification;
  /// Compounded Δ scale of the post-epoch RSA schemes (crypto/reshare.hpp
  /// ScaledScheme): the OLD scheme's effective delta.
  crypto::BigInt reply_scale;
  crypto::BigInt cert_scale;
  /// Public width bounds of the new (signed integer) RSA shares.
  std::uint32_t reply_share_bits = 0;
  std::uint32_t cert_share_bits = 0;
  /// Combined OLD-reply-key threshold signature over statement().
  crypto::BigInt signature;

  /// The signed statement: domain-separated hash input covering every
  /// field above except the signature itself, bound to the instance tag.
  [[nodiscard]] Bytes statement(std::string_view tag, const crypto::Group& group) const;
  [[nodiscard]] bool verify(const crypto::ThresholdSigPublicKey& old_reply, std::string_view tag,
                            const crypto::Group& group) const;

  void encode(Writer& w, const crypto::Group& group) const;
  static NewConfig decode(Reader& r, const crypto::Group& group);
};

/// Everything one old member knows when its epoch concludes.
struct ReconfigResult {
  /// false: clean abort — old committee (and all old shares) stay intact.
  bool completed = false;
  NewConfig config;  ///< signed announcement (only when completed)
  /// This member's slot in the new committee, or -1 if it retires (wipe
  /// shares and stop serving).
  int new_slot = -1;
  /// All own sub-shares of the applied dealings verified; false means this
  /// member holds an unusable share (detectable Byzantine targeting) and
  /// must recover before serving.
  bool share_valid = false;
  crypto::BigInt coin_share;   ///< new Z_q shares (new_slot >= 0)
  crypto::BigInt tdh2_share;
  crypto::BigInt reply_share;  ///< new SIGNED integer RSA shares
  crypto::BigInt cert_share;
  /// Old slots fingered as misbehaving dealers (excluded dealings).
  crypto::PartySet suspected = 0;
  int dealings_applied = 0;
};

/// The package an old member hands a joining replica after the epoch
/// completes: the signed announcement plus the applied dealings — enough
/// for the joiner to verify everything and interpolate its own shares.
/// All vectors are aligned with `applied` (old slots in ABC dealing
/// order; the first t_old+1 feed the low keys, all n_old-t_old the cert
/// key).  The sub-shares are still masked with the joiner's provisioned
/// join keys, so the package transits untrusted members verbatim.
struct JoinPackage {
  NewConfig config;
  std::vector<std::int32_t> applied;
  std::vector<std::vector<crypto::Element>> coin_commitments;
  std::vector<std::vector<crypto::Element>> tdh2_commitments;
  std::vector<std::vector<crypto::BigInt>> reply_commitments;
  std::vector<std::vector<crypto::BigInt>> cert_commitments;
  std::vector<crypto::BigInt> coin_subshares;  ///< masked, joiner slot
  std::vector<crypto::BigInt> tdh2_subshares;
  std::vector<crypto::BigInt> reply_subshares;
  std::vector<crypto::BigInt> cert_subshares;

  void encode(Writer& w, const crypto::Group& group) const;
  static JoinPackage decode(Reader& r, const crypto::Group& group);
};

struct ReconfigOptions {
  /// Out-of-band provisioned pairwise secrets with joining replicas:
  /// new slot -> key this member shares with the joiner filling it.
  std::map<int, Bytes> join_keys;
  /// Test hook: deal syntactically valid dealings whose sub-shares fail
  /// verification everywhere (the Byzantine-dealer chaos scenario).
  bool deal_garbage = false;
};

class Reconfig final : public ProtocolInstance {
 public:
  using DoneFn = std::function<void(const ReconfigResult&)>;

  /// `plan` arrives via the service's totally ordered RECONFIG command, so
  /// every honest old member constructs the identical instance; `fence` is
  /// the checkpoint certificate the epoch cuts at (combined signatures are
  /// unique, so honest fences are bit-identical too).
  Reconfig(net::Party& host, std::string tag, ReconfigPlan plan,
           std::optional<crypto::CheckpointCert> fence, ReconfigOptions options, DoneFn done);

  /// Start the epoch (every honest old member calls this; replay-safe).
  void start();

  [[nodiscard]] bool done() const { return result_.has_value(); }
  [[nodiscard]] const std::optional<ReconfigResult>& result() const { return result_; }
  [[nodiscard]] const ReconfigPlan& plan() const { return plan_; }

  /// Build the join package for `joiner_slot` (completed epochs only).
  [[nodiscard]] JoinPackage join_package(int joiner_slot) const;

 private:
  enum MsgType : std::uint8_t { kDealing = 0, kVerdict = 1, kSig = 2 };

  void on_ordered(int origin, Bytes payload);
  void handle(int from, Reader& reader) override {
    (void)from;
    (void)reader;
    throw ProtocolError("reconfig: direct messages unused");
  }
  [[nodiscard]] Bytes pair_key(int dealer, int new_slot) const;
  [[nodiscard]] crypto::BigInt dl_mask(int key, int dealer, int new_slot) const;
  [[nodiscard]] crypto::BigInt rsa_mask(int key, int dealer, int new_slot,
                                        std::size_t subshare_bits) const;
  [[nodiscard]] std::size_t reply_subshare_width() const;
  [[nodiscard]] std::size_t cert_subshare_width() const;
  void handle_dealing(int origin, Reader& reader);
  void handle_verdict(int origin, Reader& reader);
  void handle_sig(int origin, Reader& reader);
  void maybe_submit_verdict();
  void maybe_conclude();
  void finish_abort(crypto::PartySet suspected);
  void submit_sig_shares();

  ReconfigPlan plan_;
  std::optional<crypto::CheckpointCert> fence_;
  ReconfigOptions options_;
  DoneFn done_;
  AtomicBroadcast abc_;
  bool started_ = false;
  std::optional<ReconfigResult> result_;

  struct Dealing {
    int dealer = -1;
    std::vector<crypto::Element> coin_commitments;
    std::vector<crypto::Element> tdh2_commitments;
    std::vector<crypto::BigInt> reply_commitments;
    std::vector<crypto::BigInt> cert_commitments;
    std::vector<crypto::BigInt> coin_subshares;  ///< masked, all new slots
    std::vector<crypto::BigInt> tdh2_subshares;
    std::vector<crypto::BigInt> reply_subshares;
    std::vector<crypto::BigInt> cert_subshares;
    bool valid = false;  ///< my own sub-shares verify (or I hold no slot)
  };
  std::vector<Dealing> dealings_;  ///< ABC order, one per dealer
  crypto::PartySet dealers_seen_ = 0;
  crypto::PartySet dealers_valid_ = 0;
  bool verdict_sent_ = false;
  struct Verdict {
    crypto::PartySet seen = 0;
    crypto::PartySet valid = 0;
  };
  std::vector<Verdict> verdicts_;
  crypto::PartySet verdict_from_ = 0;
  /// Set once verdicts conclude successfully; kSig shares verify against
  /// pending_statement_.
  std::optional<ReconfigResult> pending_;
  Bytes pending_statement_;
  std::vector<int> applied_order_;  ///< applied old slots, ABC dealing order
  std::vector<crypto::SigShare> sig_shares_;
  crypto::PartySet sig_from_ = 0;
  /// kSig payloads ordered before this member concluded (can only happen
  /// with a Byzantine early submitter); bounded by one per origin.
  std::map<int, Bytes> sig_stash_;
};

/// Post-epoch channel key for a surviving pair: both ends derive it from
/// the old dealer-dealt pair key, domain-separated by epoch.  Joiner pairs
/// run the same derivation over the provisioned join key.
Bytes reconfig_channel_key(std::uint32_t epoch, BytesView pair_key);

/// Assemble the new committee Deployment for one member from its epoch
/// result: quorum ThresholdQuorum(n', t'), rebuilt public keys (DL keys
/// over fresh ThresholdSchemes, RSA keys over ScaledSchemes carrying the
/// compounded Δ and grown share-width bounds), and real secret material
/// only at `result.new_slot`.  `channel_keys` is the member's post-epoch
/// pairwise key vector (reconfig_channel_key per peer).
adversary::Deployment reconfig_deployment(const ReconfigResult& result, crypto::GroupPtr group,
                                          const crypto::PublicKeys& old_public,
                                          std::vector<Bytes> channel_keys);

/// Share-less view of the new committee for observers that only verify:
/// clients following a signed NEW-CONFIG announcement rebuild the quorum
/// system and all public keys from the announcement and the old public
/// keys alone (placeholder secret material at every slot).
adversary::Deployment reconfig_public_deployment(const NewConfig& config, crypto::GroupPtr group,
                                                 const crypto::PublicKeys& old_public);

/// Joining replica's verifier: accepts the first JoinPackage that fully
/// checks out against provisioned public material (old public keys, the
/// instance tag, and the per-dealer join keys) and exposes the same
/// ReconfigResult a surviving member gets.
class JoinListener {
 public:
  JoinListener(std::string tag, int new_slot, std::map<int, Bytes> join_keys,
               crypto::GroupPtr group, crypto::PublicKeys old_public);

  /// Verify a candidate package; true if accepted (first valid wins).
  bool offer(const JoinPackage& package);

  [[nodiscard]] bool ready() const { return result_.has_value(); }
  [[nodiscard]] const std::optional<ReconfigResult>& result() const { return result_; }
  /// Dealers fingered by rejected packages (garbage sub-share targeting
  /// this joiner inside an applied dealing == provable misbehavior).
  [[nodiscard]] crypto::PartySet suspected() const { return suspected_; }

 private:
  std::string tag_;
  int new_slot_;
  std::map<int, Bytes> join_keys_;
  crypto::GroupPtr group_;
  crypto::PublicKeys old_public_;
  std::optional<ReconfigResult> result_;
  crypto::PartySet suspected_ = 0;
};

}  // namespace sintra::protocols
