#include "protocols/abba.hpp"

#include "crypto/batch.hpp"
#include "crypto/sha256.hpp"

namespace sintra::protocols {

using crypto::BigInt;
using crypto::CoinShare;
using crypto::SigShare;

namespace {
void encode_shares(Writer& w, const std::vector<SigShare>& shares) {
  w.vec(shares, [](Writer& wr, const SigShare& s) { s.encode(wr); });
}

std::vector<SigShare> decode_shares(Reader& r) {
  return r.vec<SigShare>([](Reader& rd) { return SigShare::decode(rd); });
}
}  // namespace

Abba::Abba(net::Party& host, std::string tag, DecideFn decide)
    : ProtocolInstance(host, std::move(tag)), decide_(std::move(decide)) {
  host_.register_checkpoint(
      tag_, [this] { return checkpoint_save(); }, [this](Reader& r) { checkpoint_load(r); });
}

Abba::~Abba() { host_.unregister_checkpoint(tag_); }

Bytes Abba::checkpoint_save() const {
  Writer w;
  w.boolean(started_);
  w.u8(my_input_.has_value() ? (*my_input_ ? 1 : 0) : 2);
  w.boolean(decided_);
  if (decided_) {
    w.u8(*decision_ ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(decide_round_));
    w.bytes(decide_raw_);
  }
  return w.take();
}

void Abba::checkpoint_load(Reader& reader) {
  started_ = reader.boolean();
  const std::uint8_t input = reader.u8();
  if (input <= 1) my_input_ = input == 1;
  if (reader.boolean()) {
    decided_ = true;
    decision_ = reader.u8() == 1;
    decide_round_ = static_cast<int>(reader.u32());
    decide_raw_ = reader.bytes();
    // Re-fire the decision into the rebuilt parent/harness — the WAL
    // entries that produced it may have been compacted away, so the
    // callback is the only way that state comes back.
    if (decide_) decide_(*decision_, decide_round_);
  }
}

void Abba::enable_watchdog(std::uint64_t timeout) {
  if (!watchdog_) watchdog_ = std::make_unique<StallWatchdog>(host_);
  watchdog_->arm(
      timeout, [this] { return decided_; }, [this] { return progress_; },
      [this] { resummarize(); });
}

void Abba::resummarize() {
  // Re-send our own (already broadcast, receiver-deduped) current state so
  // a peer that lost it — a restart with a lossy network — can catch up.
  if (decided_) {
    if (!decide_raw_.empty()) broadcast(decide_raw_);
    return;
  }
  if (started_) broadcast_input();
  if (!last_prevote_raw_.empty()) broadcast(last_prevote_raw_);
  if (!last_mainvote_raw_.empty()) broadcast(last_mainvote_raw_);
  if (!last_coin_raw_.empty()) broadcast(last_coin_raw_);
}

Bytes Abba::statement(std::string_view kind, int round, std::uint8_t value) const {
  Writer w;
  w.str("sintra/abba");
  w.str(tag_);
  w.str(kind);
  w.u32(static_cast<std::uint32_t>(round));
  w.u8(value);
  return w.take();
}

Bytes Abba::coin_name(int round) const {
  Writer w;
  w.str("sintra/abba/coin");
  w.str(tag_);
  w.u32(static_cast<std::uint32_t>(round));
  return w.take();
}

Abba::Round& Abba::round_state(int round) {
  return rounds_[round];
}

void Abba::start(bool input) {
  if (started_) {
    // At-least-once re-entry (crash-recovery replay re-runs application
    // start calls): same input re-broadcasts INPUT, which receivers
    // dedup via input_voted_; a flipped input would equivocate — reject.
    SINTRA_REQUIRE(my_input_.has_value() && *my_input_ == input, "abba: conflicting re-start");
    broadcast_input();
    return;
  }
  started_ = true;
  my_input_ = input;
  broadcast_input();
}

void Abba::broadcast_input() {
  const bool input = *my_input_;
  Writer w;
  w.u8(kInput);
  w.u8(input ? 1 : 0);
  auto shares = host_.keys().reply_sig.sign(host_.public_keys().reply_sig,
                                            statement("input", 0, input ? 1 : 0), host_.rng());
  encode_shares(w, shares);
  broadcast(w.take());
}

void Abba::on_input(int from, Reader& reader) {
  const std::uint8_t value = reader.u8();
  SINTRA_REQUIRE(value <= 1, "abba: bad input value");
  auto shares = decode_shares(reader);
  reader.expect_done();
  if (crypto::contains(input_voted_, from)) return;  // one input per party
  const auto& reply_pk = host_.public_keys().reply_sig;
  const Bytes stmt = statement("input", 0, value);
  for (const SigShare& share : shares) {
    SINTRA_REQUIRE(reply_pk.scheme().unit_owner(share.unit) == from,
                   "abba: input share unit not owned by sender");
  }
  SINTRA_REQUIRE(crypto::batch::verify_sig_shares(reply_pk, stmt, shares, host_.rng()),
                 "abba: invalid input share");
  input_voted_ |= crypto::party_bit(from);
  bump_progress();
  input_support_[value] |= crypto::party_bit(from);
  for (const SigShare& share : shares) input_shares_[value].push_back(share);
  if (!anchor_[value].has_value() && reply_pk.scheme().qualified(input_support_[value])) {
    auto sigma = reply_pk.combine(stmt, input_shares_[value]);
    SINTRA_INVARIANT(sigma.has_value(), "abba: anchor combine failed");
    anchor_[value] = std::move(*sigma);
  }
  try_first_prevote();
}

void Abba::try_first_prevote() {
  if (!started_ || round_state(1).sent_prevote) return;
  // Prefer our own input; fall back to the other value if only that one
  // anchors (waiting for our own could deadlock when inputs are split).
  const int mine = *my_input_ ? 1 : 0;
  for (int v : {mine, 1 - mine}) {
    if (anchor_[v].has_value()) {
      send_prevote(1, v == 1, kJustAnchor, *anchor_[v]);
      return;
    }
  }
}

void Abba::send_prevote(int round, bool value, Justification justification,
                        const BigInt& evidence) {
  Round& state = round_state(round);
  if (state.sent_prevote) return;
  state.sent_prevote = true;
  Writer w;
  w.u8(kPreVote);
  w.u32(static_cast<std::uint32_t>(round));
  w.u8(value ? 1 : 0);
  w.u8(justification);
  evidence.encode(w);
  auto shares = host_.keys().cert_sig.sign(host_.public_keys().cert_sig,
                                           statement("pre", round, value ? 1 : 0), host_.rng());
  encode_shares(w, shares);
  last_prevote_raw_ = w.take();
  broadcast(last_prevote_raw_);
}

void Abba::park_deferred(std::uint8_t type, int round, int from, Reader& reader) {
  // Far-future horizon: a message more than kDeferWindow rounds ahead of
  // us can only be adversarial (honest parties run within one round of
  // each other) — drop it outright instead of parking.
  static constexpr int kDeferWindow = 64;
  if (round > current_round_ + kDeferWindow) return;
  for (const auto& [parked_round, parked_from, parked_raw] : deferred_) {
    if (parked_round == round && parked_from == from && !parked_raw.empty() &&
        parked_raw[0] == type) {
      return;  // first-per-(peer, type, round) only
    }
  }
  Writer w;
  w.u8(type);
  w.u32(static_cast<std::uint32_t>(round));
  w.raw(BytesView(reader.raw(reader.remaining())));
  Bytes raw = w.take();
  const std::size_t cost = raw.size() + 16;
  auto& budget = host_.budget();
  while (!budget.try_charge(from, tag_, cost)) {
    // Over budget: evict this peer's farthest-future parked message, but
    // never one nearer than the incoming round — when the incoming message
    // is itself the farthest future, it is the one that goes.
    std::size_t victim = deferred_.size();
    int victim_round = round;
    for (std::size_t i = 0; i < deferred_.size(); ++i) {
      const auto& [parked_round, parked_from, parked_raw] = deferred_[i];
      if (parked_from == from && parked_round > victim_round) {
        victim = i;
        victim_round = parked_round;
      }
    }
    if (victim == deferred_.size()) return;
    budget.release(from, tag_, std::get<2>(deferred_[victim]).size() + 16);
    deferred_.erase(deferred_.begin() + static_cast<std::ptrdiff_t>(victim));
    budget.note_eviction();
  }
  deferred_.emplace_back(round, from, std::move(raw));
}

void Abba::handle(int from, Reader& reader) {
  if (decided_) {
    // Instance done, rounds freed.  A peer still talking missed the
    // decision; answer once with the transferable decide certificate.
    if (from != me() && !decide_raw_.empty() && !(helped_ & crypto::party_bit(from))) {
      helped_ |= crypto::party_bit(from);
      host_.send(from, tag_, Bytes(decide_raw_));
    }
    return;
  }
  const std::uint8_t type = reader.u8();
  switch (type) {
    case kInput: return on_input(from, reader);
    case kPreVote: return on_prevote(from, reader);
    case kMainVote: return on_mainvote(from, reader);
    case kCoinShare: return on_coin_share(from, reader);
    case kCoinVerdict: return on_coin_verdict(from, reader);
    case kDecide: return on_decide(from, reader);
    default: throw ProtocolError("abba: unknown message type");
  }
}

void Abba::on_prevote(int from, Reader& reader) {
  const int round = static_cast<int>(reader.u32());
  SINTRA_REQUIRE(round >= 1 && round < 1 << 20, "abba: implausible round");
  if (round > current_round_ + 1) {
    // Far ahead of us; park the whole message (budget-bounded, farthest-
    // future evicted first) until we catch up.
    return park_deferred(kPreVote, round, from, reader);
  }
  const std::uint8_t value_byte = reader.u8();
  SINTRA_REQUIRE(value_byte <= 1, "abba: bad pre-vote value");
  const bool value = value_byte == 1;
  const auto justification = static_cast<Justification>(reader.u8());
  const BigInt evidence = BigInt::decode(reader);
  auto shares = decode_shares(reader);
  reader.expect_done();

  const auto& cert_pk = host_.public_keys().cert_sig;
  if (round == 1) {
    SINTRA_REQUIRE(justification == kJustAnchor, "abba: round-1 pre-vote must be anchored");
    SINTRA_REQUIRE(
        host_.public_keys().reply_sig.verify(statement("input", 0, value_byte), evidence),
        "abba: bad input anchor");
  } else if (justification == kJustHard) {
    SINTRA_REQUIRE(cert_pk.verify(statement("pre", round - 1, value_byte), evidence),
                   "abba: bad hard justification");
  } else if (justification == kJustCoin) {
    SINTRA_REQUIRE(cert_pk.verify(statement("main", round - 1, kAbstain), evidence),
                   "abba: bad abstain certificate");
    Round& prev = round_state(round - 1);
    if (!prev.coin.has_value()) {
      prev.deferred_coin_prevotes.emplace_back(from, value, std::move(shares));
      return;
    }
    SINTRA_REQUIRE(*prev.coin == value, "abba: coin pre-vote contradicts coin");
  } else {
    throw ProtocolError("abba: bad justification kind");
  }
  accept_prevote(round, from, value, shares);
}

void Abba::accept_prevote(int round, int from, bool value,
                          const std::vector<SigShare>& shares) {
  Round& state = round_state(round);
  if (crypto::contains(state.prevoted, from)) return;  // one pre-vote per party
  const auto& cert_pk = host_.public_keys().cert_sig;
  const Bytes stmt = statement("pre", round, value ? 1 : 0);
  for (const SigShare& share : shares) {
    SINTRA_REQUIRE(cert_pk.scheme().unit_owner(share.unit) == from,
                   "abba: pre-vote share unit not owned by sender");
  }
  SINTRA_REQUIRE(crypto::batch::verify_sig_shares(cert_pk, stmt, shares, host_.rng()),
                 "abba: invalid pre-vote share");
  state.prevoted |= crypto::party_bit(from);
  bump_progress();
  const int v = value ? 1 : 0;
  state.prevote_support[v] |= crypto::party_bit(from);
  for (const SigShare& share : shares) state.prevote_shares[v].push_back(share);

  // Combine sigma_pre(round, v) as soon as a full quorum supports v.
  if (!state.sigma_pre[v].has_value() &&
      cert_pk.scheme().qualified(state.prevote_support[v])) {
    auto sigma = cert_pk.combine(stmt, state.prevote_shares[v]);
    SINTRA_INVARIANT(sigma.has_value(), "abba: sigma_pre combine failed");
    state.sigma_pre[v] = std::move(*sigma);
  }
  maybe_mainvote(round);
}

void Abba::maybe_mainvote(int round) {
  Round& state = round_state(round);
  if (state.sent_mainvote || !quorum().is_quorum(state.prevoted)) return;
  state.sent_mainvote = true;

  std::uint8_t vote = kAbstain;
  std::optional<BigInt> evidence;
  if (state.prevote_support[0] != 0 && state.prevote_support[1] != 0) {
    vote = kAbstain;  // conflicting pre-votes seen
  } else {
    const int v = state.prevote_support[1] != 0 ? 1 : 0;
    SINTRA_INVARIANT(state.sigma_pre[v].has_value(),
                     "abba: unanimous quorum but no combined certificate");
    vote = static_cast<std::uint8_t>(v);
    evidence = state.sigma_pre[v];
  }

  Writer w;
  w.u8(kMainVote);
  w.u32(static_cast<std::uint32_t>(round));
  w.u8(vote);
  if (vote != kAbstain) evidence->encode(w);
  auto shares = host_.keys().cert_sig.sign(host_.public_keys().cert_sig,
                                           statement("main", round, vote), host_.rng());
  encode_shares(w, shares);
  last_mainvote_raw_ = w.take();
  broadcast(last_mainvote_raw_);
}

void Abba::on_mainvote(int from, Reader& reader) {
  const int round = static_cast<int>(reader.u32());
  SINTRA_REQUIRE(round >= 1 && round < 1 << 20, "abba: implausible round");
  if (round > current_round_ + 1) {
    return park_deferred(kMainVote, round, from, reader);
  }
  const std::uint8_t vote = reader.u8();
  SINTRA_REQUIRE(vote <= kAbstain, "abba: bad main-vote value");
  const auto& cert_pk = host_.public_keys().cert_sig;
  Round& state = round_state(round);

  if (vote != kAbstain) {
    BigInt sigma = BigInt::decode(reader);
    SINTRA_REQUIRE(cert_pk.verify(statement("pre", round, vote), sigma),
                   "abba: main-vote without valid pre-vote certificate");
    if (!state.sigma_pre[vote].has_value()) state.sigma_pre[vote] = std::move(sigma);
  }
  auto shares = decode_shares(reader);
  reader.expect_done();
  if (crypto::contains(state.mainvoted, from)) return;
  const Bytes stmt = statement("main", round, vote);
  for (const SigShare& share : shares) {
    SINTRA_REQUIRE(cert_pk.scheme().unit_owner(share.unit) == from,
                   "abba: main-vote share unit not owned by sender");
  }
  SINTRA_REQUIRE(crypto::batch::verify_sig_shares(cert_pk, stmt, shares, host_.rng()),
                 "abba: invalid main-vote share");
  state.mainvoted |= crypto::party_bit(from);
  bump_progress();
  state.mainvote_support[vote] |= crypto::party_bit(from);
  for (const SigShare& share : shares) state.mainvote_shares[vote].push_back(share);

  // Decision check runs on *every* arrival (not only at round close): the
  // first quorum of main-votes may mix corrupted abstains with honest
  // value votes, and the unanimous certificate only completes later.
  if (vote != kAbstain && cert_pk.scheme().qualified(state.mainvote_support[vote])) {
    auto sigma = cert_pk.combine(stmt, state.mainvote_shares[vote]);
    SINTRA_INVARIANT(sigma.has_value(), "abba: sigma_main combine failed");
    decide(vote == 1, round, *sigma);
    return;
  }
  maybe_close_round(round);
}

void Abba::maybe_close_round(int round) {
  Round& state = round_state(round);
  if (state.round_closed || !quorum().is_quorum(state.mainvoted)) return;
  state.round_closed = true;
  release_coin(round);

  const auto& cert_pk = host_.public_keys().cert_sig;
  // Some main-vote carried a value: adopt it with hard justification.
  for (int v = 0; v < 2; ++v) {
    if (state.mainvote_support[v] != 0) {
      SINTRA_INVARIANT(state.sigma_pre[v].has_value(), "abba: value main-vote lost its cert");
      advance(round + 1, v == 1, kJustHard, *state.sigma_pre[v]);
      return;
    }
  }
  // All abstained: combine the abstain certificate and follow the coin.
  if (!state.sigma_main_abstain.has_value()) {
    auto sigma = cert_pk.combine(statement("main", round, kAbstain),
                                 state.mainvote_shares[kAbstain]);
    SINTRA_INVARIANT(sigma.has_value(), "abba: abstain certificate combine failed");
    state.sigma_main_abstain = std::move(*sigma);
  }
  if (state.coin.has_value()) {
    advance(round + 1, *state.coin, kJustCoin, *state.sigma_main_abstain);
  } else {
    state.waiting_for_coin = true;
  }
}

void Abba::release_coin(int round) {
  Round& state = round_state(round);
  if (state.coin_released) return;
  state.coin_released = true;
  Writer w;
  w.u8(kCoinShare);
  w.u32(static_cast<std::uint32_t>(round));
  auto shares = host_.keys().coin.share(host_.public_keys().coin, coin_name(round), host_.rng());
  w.vec(shares, [&](Writer& wr, const CoinShare& s) {
    s.encode(wr, host_.public_keys().coin.group());
  });
  last_coin_raw_ = w.take();
  broadcast(last_coin_raw_);
}

void Abba::on_coin_share(int from, Reader& reader) {
  const int round = static_cast<int>(reader.u32());
  SINTRA_REQUIRE(round >= 1 && round < 1 << 20, "abba: implausible round");
  if (round > current_round_ + 1) {
    return park_deferred(kCoinShare, round, from, reader);
  }
  const auto& coin_pk = host_.public_keys().coin;
  auto shares = reader.vec<CoinShare>(
      [&](Reader& r) { return CoinShare::decode(r, coin_pk.group()); });
  reader.expect_done();
  Round& state = round_state(round);
  if (crypto::contains(state.coin_support, from) || crypto::contains(state.coin_rejected, from) ||
      state.coin.has_value()) {
    return;
  }
  // Structural admission only: unit ownership and decode bounds.  The NIZK
  // proofs are *not* checked here — they are deferred to one batched
  // verification over the whole threshold set, run off the event loop.
  for (const CoinShare& share : shares) {
    SINTRA_REQUIRE(coin_pk.scheme().unit_owner(share.unit) == from,
                   "abba: coin share unit not owned by sender");
  }
  state.coin_support |= crypto::party_bit(from);
  bump_progress();
  for (const CoinShare& share : shares) state.coin_shares.push_back(share);
  maybe_combine_coin(round);
}

void Abba::maybe_combine_coin(int round) {
  Round& state = round_state(round);
  if (state.coin.has_value() || state.coin_inflight) return;
  const auto& coin_pk = host_.public_keys().coin;
  if (!coin_pk.scheme().qualified(state.coin_support)) return;
  state.coin_inflight = true;
  const int attempt = ++state.coin_attempt;
  // The random-linear-combination weights are seeded on the loop thread so
  // sequential (deterministic-mode) runs replay bit-exactly.
  const std::uint64_t seed = host_.rng().next();
  // The job owns copies of everything except coin_pk, which is immutable
  // for the party's lifetime and therefore safe to read from a worker.
  host_.offload(tag_, [&coin_pk, name = coin_name(round), shares = state.coin_shares, round,
                       attempt, seed]() -> Bytes {
    Rng rng(seed);
    auto result = crypto::batch::combine_coin_optimistic(coin_pk, name, shares, rng);
    Writer w;
    w.u8(kCoinVerdict);
    w.u32(static_cast<std::uint32_t>(round));
    w.u32(static_cast<std::uint32_t>(attempt));
    w.vec(result.bad, [&](Writer& wr, const std::size_t& i) {
      wr.u32(static_cast<std::uint32_t>(shares[i].unit));
    });
    if (result.value.has_value()) {
      w.u8(1);
      w.bytes(*result.value);
    } else {
      w.u8(0);
    }
    return w.take();
  });
}

void Abba::on_coin_verdict(int from, Reader& reader) {
  // Verdicts are verification results this party computed for itself; a
  // peer has no business injecting one.
  SINTRA_REQUIRE(from == me(), "abba: coin verdict from another party");
  const int round = static_cast<int>(reader.u32());
  const int attempt = static_cast<int>(reader.u32());
  auto bad_units = reader.vec<std::uint32_t>([](Reader& r) { return r.u32(); });
  const bool ok = reader.u8() == 1;
  Bytes value;
  if (ok) value = reader.bytes();
  reader.expect_done();
  SINTRA_REQUIRE(round >= 1 && round < 1 << 20, "abba: implausible verdict round");
  Round& state = round_state(round);
  // Idempotency: threaded-mode verdicts are WAL-logged *and* regenerated
  // when the triggering shares replay, so a verdict acts only if it is the
  // one the current in-flight attempt is waiting for.
  if (!state.coin_inflight || attempt != state.coin_attempt || state.coin.has_value()) return;
  state.coin_inflight = false;
  const auto& coin_pk = host_.public_keys().coin;
  crypto::PartySet culprits = 0;
  for (std::uint32_t unit : bad_units) {
    SINTRA_REQUIRE(static_cast<int>(unit) < coin_pk.scheme().num_units(),
                   "abba: verdict unit out of range");
    culprits |= crypto::party_bit(coin_pk.scheme().unit_owner(static_cast<int>(unit)));
  }
  if (culprits != 0) {
    // Byzantine sender pays: its shares leave the set for good and the
    // party is fingered for the caller.
    suspected_ |= culprits;
    state.coin_rejected |= culprits;
    state.coin_support &= ~culprits;
    std::erase_if(state.coin_shares, [&](const CoinShare& s) {
      return (culprits & crypto::party_bit(coin_pk.scheme().unit_owner(s.unit))) != 0;
    });
    host_.trace("abba", tag_ + " coin r" + std::to_string(round) +
                            " rejected invalid shares (suspects fingered)");
  }
  if (!ok) {
    SINTRA_INVARIANT(culprits != 0, "abba: coin verdict failed without culprits");
    maybe_combine_coin(round);  // remaining honest shares may still qualify
    return;
  }
  adopt_coin(round, value);
}

void Abba::adopt_coin(int round, BytesView value) {
  Round& state = round_state(round);
  state.coin = crypto::CoinPublicKey::coin_bit(value);
  host_.trace("abba", tag_ + " coin r" + std::to_string(round) + " = " +
                          std::to_string(static_cast<int>(*state.coin)));

  // Validate pre-votes that were waiting on this coin.
  auto deferred = std::move(state.deferred_coin_prevotes);
  state.deferred_coin_prevotes.clear();
  for (auto& [from, value_bit, shares] : deferred) {
    if (value_bit != *state.coin) continue;  // contradiction: drop
    if (!decided_) accept_prevote(round + 1, from, value_bit, shares);
  }
  if (state.waiting_for_coin && !decided_) {
    state.waiting_for_coin = false;
    SINTRA_INVARIANT(state.sigma_main_abstain.has_value(), "abba: coin wait without cert");
    advance(round + 1, *state.coin, kJustCoin, *state.sigma_main_abstain);
  }
}

void Abba::advance(int round, bool value, Justification justification, const BigInt& evidence) {
  if (decided_) return;
  if (round > current_round_) {
    current_round_ = round;
    bump_progress();
    host_.trace("abba", tag_ + " advancing to round " + std::to_string(round));
  }
  send_prevote(round, value, justification, evidence);

  // Replay parked far-future messages that are now in range (their budget
  // charge is released as they leave the buffer; re-parked entries keep
  // theirs).  Parked messages were never validated — a bad one is dropped
  // without disturbing the rest.
  auto parked = std::move(deferred_);
  deferred_.clear();
  for (auto& [msg_round, from, raw] : parked) {
    if (decided_) break;  // decide() already released every charge
    if (msg_round <= current_round_ + 1) {
      host_.budget().release(from, tag_, raw.size() + 16);
      try {
        Reader reader(raw);
        handle(from, reader);
      } catch (const ProtocolError&) {
      }
    } else {
      deferred_.emplace_back(msg_round, from, std::move(raw));
    }
  }
}

void Abba::on_decide(int from, Reader& reader) {
  (void)from;
  const int round = static_cast<int>(reader.u32());
  const std::uint8_t value = reader.u8();
  SINTRA_REQUIRE(value <= 1, "abba: bad decide value");
  BigInt sigma = BigInt::decode(reader);
  reader.expect_done();
  SINTRA_REQUIRE(host_.public_keys().cert_sig.verify(statement("main", round, value), sigma),
                 "abba: bad decide certificate");
  decide(value == 1, round, sigma);
}

void Abba::decide(bool value, int round, const BigInt& sigma_main) {
  if (decided_) return;
  decided_ = true;
  decision_ = value;
  decide_round_ = round;
  Writer w;
  w.u8(kDecide);
  w.u32(static_cast<std::uint32_t>(round));
  w.u8(value ? 1 : 0);
  sigma_main.encode(w);
  decide_raw_ = w.take();
  broadcast(decide_raw_);
  host_.trace("abba", tag_ + " decided " + std::to_string(static_cast<int>(value)) +
                          " in round " + std::to_string(round));
  // Instance GC: the transferable decide certificate (kept in decide_raw_)
  // subsumes every tally, share and parked message — free them now.  Safe
  // inline: no caller touches round state after decide() returns (audited:
  // on_mainvote returns immediately, on_decide holds no Round reference,
  // and maybe_combine_coin's chain cannot reach decide()).
  rounds_.clear();
  deferred_.clear();
  for (auto& shares : input_shares_) {
    shares.clear();
    shares.shrink_to_fit();
  }
  host_.budget().release_instance(tag_);
  if (watchdog_) watchdog_->disarm();
  if (compaction_) {
    // WAL compaction: the checkpoint carries the decision across restarts,
    // so replaying this instance's message history is dead weight.
    host_.prune_wal(tag_, [](const net::Message&) { return true; });
  }
  if (decide_) decide_(value, round);
}

}  // namespace sintra::protocols
