#include "protocols/atomic.hpp"

#include <algorithm>

#include "crypto/batch.hpp"
#include "crypto/sha256.hpp"

namespace sintra::protocols {

using crypto::SigShare;

namespace {
Bytes payload_digest(BytesView payload) {
  auto d = crypto::hash_domain("sintra/abc/payload", payload);
  return Bytes(d.begin(), d.end());
}

struct BatchEntry {
  int party = 0;
  std::vector<Bytes> payloads;
  std::vector<SigShare> shares;

  [[nodiscard]] Bytes payload_block() const {
    Writer w;
    w.vec(payloads, [](Writer& wr, const Bytes& p) { wr.bytes(p); });
    return w.take();
  }

  void encode(Writer& w) const {
    w.u32(static_cast<std::uint32_t>(party));
    w.bytes(payload_block());
    w.vec(shares, [](Writer& wr, const SigShare& s) { s.encode(wr); });
  }

  static BatchEntry decode(Reader& r) {
    BatchEntry entry;
    entry.party = static_cast<int>(r.u32());
    const Bytes block_bytes = r.bytes();  // named: Reader views, must outlive it
    Reader block(block_bytes);
    entry.payloads = block.vec<Bytes>([](Reader& rd) { return rd.bytes(); });
    block.expect_done();
    entry.shares = r.vec<SigShare>([](Reader& rd) { return SigShare::decode(rd); });
    return entry;
  }
};
}  // namespace

AtomicBroadcast::AtomicBroadcast(net::Party& host, std::string tag, DeliverFn deliver)
    : ProtocolInstance(host, std::move(tag)), deliver_(std::move(deliver)) {
  host_.register_checkpoint(
      tag_, [this] { return checkpoint_save(); }, [this](Reader& r) { checkpoint_load(r); });
}

AtomicBroadcast::~AtomicBroadcast() { host_.unregister_checkpoint(tag_); }

Bytes AtomicBroadcast::checkpoint_save() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(last_finished_));
  w.u32(static_cast<std::uint32_t>(delivered_log_.size()));
  for (const auto& [origin, payload] : delivered_log_) {
    w.u32(static_cast<std::uint32_t>(origin));
    w.bytes(payload);
  }
  w.u32(static_cast<std::uint32_t>(queue_.size()));
  for (const Bytes& payload : queue_) w.bytes(payload);
  // The newest combined checkpoint certificate rides the snapshot: this is
  // what lets gc_completed_rounds prune the kCkptShare WAL records that
  // produced it without ever losing the most recent checkpoint.
  w.boolean(latest_cert_.has_value());
  if (latest_cert_) latest_cert_->encode(w);
  return w.take();
}

void AtomicBroadcast::checkpoint_load(Reader& reader) {
  last_finished_ = static_cast<int>(reader.u32());
  const std::uint32_t log_count = reader.u32();
  for (std::uint32_t i = 0; i < log_count; ++i) {
    const int origin = static_cast<int>(reader.u32());
    Bytes payload = reader.bytes();
    note_delivered(payload_digest(payload));
    ++delivered_count_;
    chain_digest_ = crypto::chain_extend(chain_digest_, origin, payload);
    delivered_log_.emplace_back(origin, payload);
    // Re-fire into the rebuilt parent/application — the WAL entries that
    // produced these deliveries were compacted away.
    deliver_(origin, std::move(payload));
  }
  const std::uint32_t queue_count = reader.u32();
  for (std::uint32_t i = 0; i < queue_count; ++i) queue_.push_back(reader.bytes());
  if (reader.boolean()) latest_cert_ = crypto::CheckpointCert::decode(reader);
  // Re-enter the next round (the pre-crash incarnation had broadcast its
  // batch for it; receivers dedup the fresh copy via batch_from).
  maybe_start_round(last_finished_ + 1);
}

void AtomicBroadcast::release_round_charges(RoundData& rd) {
  for (const auto& [peer, bytes] : rd.charges) host_.budget().release(peer, tag_, bytes);
  rd.charges.clear();
}

void AtomicBroadcast::note_delivered(Bytes digest) {
  delivered_.insert(digest);
  delivered_fifo_.push_back(std::move(digest));
  if (delivered_fifo_.size() > kDeliveredCap) {
    delivered_.erase(delivered_fifo_.front());
    delivered_fifo_.pop_front();
  }
}

Bytes AtomicBroadcast::batch_statement(int round, int party, BytesView payload_block) const {
  Writer w;
  w.str("sintra/abc/batch");
  w.str(tag_);
  w.u32(static_cast<std::uint32_t>(round));
  w.u32(static_cast<std::uint32_t>(party));
  auto digest = crypto::hash_domain("sintra/abc/block", payload_block);
  w.raw(BytesView(digest.data(), digest.size()));
  return w.take();
}

void AtomicBroadcast::submit(Bytes payload) {
  Writer w;
  w.u8(kSubmit);
  w.bytes(payload);
  send(me(), w.take());
}

void AtomicBroadcast::handle(int from, Reader& reader) {
  // Flush VBA instances parked by GC — we are at a fresh dispatch, no Vba
  // handler is on the stack.
  retired_vbas_.clear();
  const std::uint8_t type = reader.u8();
  if (type == kCkptShare) {
    handle_ckpt_share(from, reader);
    return;
  }
  if (type == kSubmit) {
    // A local submission looping back through the inbox (and the WAL).
    SINTRA_REQUIRE(from == me(), "abc: submission from another party");
    Bytes payload = reader.bytes();
    reader.expect_done();
    // Content dedupe: a checkpoint-restored queue plus a not-yet-pruned
    // kSubmit WAL entry must not enqueue the same payload twice.
    if (delivered_.contains(payload_digest(payload))) return;
    for (const Bytes& queued : queue_) {
      if (queued == payload) return;
    }
    queue_.push_back(std::move(payload));
    maybe_start_round(last_finished_ + 1);
    return;
  }
  SINTRA_REQUIRE(type == kBatch, "abc: unknown message type");
  const int round = static_cast<int>(reader.u32());
  SINTRA_REQUIRE(round >= 1 && round < 1 << 24, "abc: implausible round");
  Bytes payload_block = reader.bytes();
  auto shares = reader.vec<SigShare>([](Reader& rd) { return SigShare::decode(rd); });
  reader.expect_done();
  SINTRA_REQUIRE(!shares.empty(), "abc: batch without signature shares");
  if (round <= last_finished_) return;  // stale: that round already completed
  if (round > last_finished_ + kRoundLookahead) {
    // Far-future spray: honest parties stay within a round or two of each
    // other, so this cannot matter yet — drop instead of buffering.
    host_.trace("abc", tag_ + " dropped far-future batch r" + std::to_string(round) +
                           " from " + std::to_string(from));
    return;
  }
  auto existing = rounds_.find(round);
  if (existing != rounds_.end() && crypto::contains(existing->second.batch_from, from)) {
    return;  // one batch per party per round
  }

  // Verify before any state is allocated for the round — unverifiable
  // traffic must not create map entries.  The sender's shares all cover
  // one statement, so the whole vector goes through one batched check.
  const auto& cert_pk = host_.public_keys().cert_sig;
  const Bytes stmt = batch_statement(round, from, payload_block);
  for (const SigShare& share : shares) {
    SINTRA_REQUIRE(cert_pk.scheme().unit_owner(share.unit) == from,
                   "abc: batch share unit not owned by sender");
  }
  SINTRA_REQUIRE(crypto::batch::verify_sig_shares(cert_pk, stmt, shares, host_.rng()),
                 "abc: invalid batch signature");

  BatchEntry entry;
  entry.party = from;
  Reader block(payload_block);
  entry.payloads = block.vec<Bytes>([](Reader& rd) { return rd.bytes(); });
  block.expect_done();
  entry.shares = std::move(shares);

  // Even validly signed future batches are budget-metered: a corrupted
  // party *can* sign real batches for rounds far ahead and they sit here
  // until the round arrives.
  const std::size_t cost = payload_block.size() + 64;
  if (!host_.budget().try_charge(from, tag_, cost)) {
    host_.trace("abc", tag_ + " budget-dropped batch r" + std::to_string(round) + " from " +
                           std::to_string(from));
    return;
  }

  RoundData& rd = rounds_[round];
  rd.charges.emplace_back(from, cost);
  rd.batch_from |= crypto::party_bit(from);
  Writer w;
  entry.encode(w);
  rd.batches.push_back(w.take());

  maybe_start_round(last_finished_ + 1);
  maybe_propose(round);
}

void AtomicBroadcast::maybe_start_round(int round) {
  if (round != last_finished_ + 1) return;
  RoundData& rd = rounds_[round];
  if (rd.started) return;
  // A round begins when we have something to order or somebody else does.
  bool others_active = rd.batch_from != 0;
  if (!others_active) {
    // A batch for any later round also implies the system moved on.
    for (const auto& [r, data] : rounds_) {
      if (r >= round && data.batch_from != 0) {
        others_active = true;
        break;
      }
    }
  }
  if (queue_.empty() && !others_active) return;
  rd.started = true;

  // Sign and broadcast our batch (possibly empty).
  std::vector<Bytes> payloads;
  for (std::size_t i = 0; i < queue_.size() && i < kMaxBatch; ++i) payloads.push_back(queue_[i]);
  Writer block;
  block.vec(payloads, [](Writer& wr, const Bytes& p) { wr.bytes(p); });
  Bytes payload_block = block.take();
  auto shares = host_.keys().cert_sig.sign(host_.public_keys().cert_sig,
                                           batch_statement(round, me(), payload_block),
                                           host_.rng());
  Writer w;
  w.u8(kBatch);
  w.u32(static_cast<std::uint32_t>(round));
  w.bytes(payload_block);
  w.vec(shares, [](Writer& wr, const SigShare& s) { s.encode(wr); });
  broadcast(w.take());

  rd.vba = std::make_unique<Vba>(
      host_, tag_ + "/" + std::to_string(round) + "/vba",
      [this, round](BytesView value) { return validate_batch_set(round, value); },
      [this, round](Bytes value) { on_round_decided(round, value); });
  maybe_propose(round);
}

void AtomicBroadcast::maybe_propose(int round) {
  RoundData& rd = rounds_[round];
  if (!rd.started || rd.proposed || rd.vba == nullptr) return;
  if (!quorum().is_quorum(rd.batch_from)) return;
  rd.proposed = true;
  Writer w;
  w.vec(rd.batches, [](Writer& wr, const Bytes& b) { wr.bytes(b); });
  rd.vba->propose(w.take());
}

bool AtomicBroadcast::validate_batch_set(int round, BytesView batch_set) const {
  try {
    Reader reader(batch_set);
    auto raw_entries = reader.vec<Bytes>([](Reader& rd) { return rd.bytes(); });
    reader.expect_done();
    const auto& cert_pk = host_.public_keys().cert_sig;
    crypto::PartySet senders = 0;
    // One multi-statement batch over the whole proposal: each sender's
    // shares group under that sender's batch statement, and all groups
    // collapse into a single pair of multi-exponentiations.
    std::vector<crypto::batch::SigShareGroup> groups;
    groups.reserve(raw_entries.size());
    for (const Bytes& raw : raw_entries) {
      Reader entry_reader(raw);
      BatchEntry entry = BatchEntry::decode(entry_reader);
      entry_reader.expect_done();
      if (entry.party < 0 || entry.party >= host_.n()) return false;
      if (crypto::contains(senders, entry.party)) return false;  // duplicate sender
      for (const SigShare& share : entry.shares) {
        if (cert_pk.scheme().unit_owner(share.unit) != entry.party) return false;
      }
      if (entry.shares.empty()) return false;
      senders |= crypto::party_bit(entry.party);
      groups.push_back({batch_statement(round, entry.party, entry.payload_block()),
                        std::move(entry.shares)});
    }
    if (!crypto::batch::verify_sig_share_groups(cert_pk, groups, host_.rng())) return false;
    // The paper's external validity condition: properly signed batches from
    // a full quorum, so honest parties' payloads are represented.
    return quorum().is_quorum(senders);
  } catch (const ProtocolError&) {
    return false;
  }
}

void AtomicBroadcast::on_round_decided(int round, const Bytes& batch_set) {
  SINTRA_INVARIANT(round == last_finished_ + 1, "abc: rounds decided out of order");

  Reader reader(batch_set);
  auto raw_entries = reader.vec<Bytes>([](Reader& rd) { return rd.bytes(); });
  std::vector<BatchEntry> entries;
  entries.reserve(raw_entries.size());
  for (const Bytes& raw : raw_entries) {
    Reader entry_reader(raw);
    entries.push_back(BatchEntry::decode(entry_reader));
  }
  // Deterministic delivery order: by originating party, then batch order.
  std::sort(entries.begin(), entries.end(),
            [](const BatchEntry& a, const BatchEntry& b) { return a.party < b.party; });

  for (const BatchEntry& entry : entries) {
    for (const Bytes& payload : entry.payloads) {
      Bytes digest = payload_digest(payload);
      if (delivered_.contains(digest)) continue;
      note_delivered(std::move(digest));
      ++delivered_count_;
      chain_digest_ = crypto::chain_extend(chain_digest_, entry.party, payload);
      if (host_.wal_enabled()) delivered_log_.emplace_back(entry.party, payload);
      deliver_(entry.party, payload);
    }
  }
  // Drop our own now-delivered payloads.
  std::erase_if(queue_, [this](const Bytes& p) { return delivered_.contains(payload_digest(p)); });

  last_finished_ = round;
  // The round's buffered batches did their job; only the VBA stays (for
  // kRetention more rounds, answering laggards' fetches).
  auto completed = rounds_.find(round);
  if (completed != rounds_.end()) {
    release_round_charges(completed->second);
    completed->second.batches.clear();
    completed->second.batches.shrink_to_fit();
  }
  if (ckpt_interval_ > 0 && round % ckpt_interval_ == 0) emit_checkpoint_share(round);
  gc_completed_rounds();
  host_.trace("abc", tag_ + " finished round " + std::to_string(round));
  maybe_start_round(round + 1);
}

void AtomicBroadcast::gc_completed_rounds() {
  const int gc_round = last_finished_ - kRetention;
  for (auto it = rounds_.begin(); it != rounds_.end() && it->first <= gc_round;) {
    release_round_charges(it->second);
    if (it->second.vba) {
      // Never destroy a Vba that may be on the call stack (this runs from
      // a *younger* round's decide callback, but defensive deferral is
      // cheap): park it; the next handle() entry flushes.
      retired_vbas_.push_back(std::move(it->second.vba));
    }
    const std::string vba_tag = tag_ + "/" + std::to_string(it->first) + "/vba";
    it = rounds_.erase(it);
    // Tombstone the round's VBA subtree (late traffic dropped, buffered
    // and logged messages for it freed)...
    host_.retire_tag(vba_tag);
  }
  // ...and compact this instance's own log: completed rounds' batches are
  // subsumed by the delivery-log checkpoint, as are all submissions (the
  // checkpoint carries the live queue_).  Checkpoint share records are only
  // prunable once a combined certificate covering their round rides the
  // snapshot — the most recent checkpoint record always survives
  // compaction, however tight the budget (shares for rounds past the
  // certificate still replay to rebuild the in-flight collection).
  const int cert_round = latest_cert_ ? static_cast<int>(latest_cert_->round) : 0;
  if (gc_round >= 1 && host_.wal_enabled()) {
    host_.prune_wal(tag_, [gc_round, cert_round](const net::Message& message) {
      if (message.payload.empty()) return false;
      const std::uint8_t type = message.payload[0];
      if (type == kSubmit) return true;
      if (message.payload.size() < 5) return false;
      if (type == kCkptShare) {
        Reader r(message.payload);
        r.u8();
        return static_cast<int>(r.u32()) <= cert_round;
      }
      if (type != kBatch) return false;
      Reader r(message.payload);
      r.u8();
      return static_cast<int>(r.u32()) <= gc_round;
    });
  }
}

void AtomicBroadcast::enable_checkpoints(int interval) {
  SINTRA_REQUIRE(interval >= 0, "abc: negative checkpoint interval");
  ckpt_interval_ = interval;
}

void AtomicBroadcast::release_ckpt_charges(CkptPending& cp) {
  for (const auto& [peer, bytes] : cp.charges) host_.budget().release(peer, tag_, bytes);
  cp.charges.clear();
}

void AtomicBroadcast::gc_checkpoints() {
  if (!latest_cert_) return;
  const int cert_round = static_cast<int>(latest_cert_->round);
  for (auto it = ckpts_.begin(); it != ckpts_.end() && it->first <= cert_round;) {
    release_ckpt_charges(it->second);
    it = ckpts_.erase(it);
  }
}

void AtomicBroadcast::emit_checkpoint_share(int round) {
  CkptPending& cp = ckpts_[round];
  cp.reached = true;
  cp.delivered = delivered_count_;
  cp.chain_digest = chain_digest_;

  crypto::CheckpointCert draft;
  draft.round = static_cast<std::uint32_t>(round);
  draft.delivered_count = cp.delivered;
  draft.chain_digest = cp.chain_digest;
  auto shares = host_.keys().cert_sig.sign(host_.public_keys().cert_sig, draft.statement(tag_),
                                           host_.rng());
  Writer w;
  w.u8(kCkptShare);
  w.u32(static_cast<std::uint32_t>(round));
  w.vec(shares, [](Writer& wr, const SigShare& s) { s.encode(wr); });
  broadcast(w.take());

  // Peers ahead of us may have sent their shares before we completed the
  // round; now that the local chain digest reached the boundary, the
  // statement they signed is known and the stash can be verified.
  auto waiting = std::move(cp.waiting);
  cp.waiting.clear();
  for (auto& [peer, raw] : waiting) {
    try {
      Reader r(raw);
      auto stashed = r.vec<SigShare>([](Reader& rd) { return SigShare::decode(rd); });
      r.expect_done();
      process_ckpt_shares(peer, round, std::move(stashed));
    } catch (const ProtocolError&) {
      host_.trace("abc", tag_ + " dropped malformed stashed ckpt shares from " +
                             std::to_string(peer));
    }
  }
}

void AtomicBroadcast::handle_ckpt_share(int from, Reader& reader) {
  if (ckpt_interval_ <= 0) return;  // this party is not running checkpoints
  const int round = static_cast<int>(reader.u32());
  SINTRA_REQUIRE(round >= 1 && round < 1 << 24, "abc: implausible checkpoint round");
  if (round % ckpt_interval_ != 0) return;  // not a boundary under our config
  if (latest_cert_ && round <= static_cast<int>(latest_cert_->round)) return;  // superseded
  if (round <= last_finished_ && !ckpts_.contains(round)) return;  // already collected + GCed
  if (round > last_finished_ + kRoundLookahead) {
    host_.trace("abc", tag_ + " dropped far-future ckpt share r" + std::to_string(round) +
                           " from " + std::to_string(from));
    return;
  }

  auto existing = ckpts_.find(round);
  if (existing != ckpts_.end() && crypto::contains(existing->second.from, from)) return;
  if (existing != ckpts_.end() && !existing->second.reached) {
    for (const auto& [peer, raw] : existing->second.waiting) {
      if (peer == from) return;  // one stash per peer per round
    }
  }

  Bytes rest = reader.raw(reader.remaining());
  const std::size_t cost = rest.size() + 32;
  if (!host_.budget().try_charge(from, tag_, cost)) {
    host_.trace("abc", tag_ + " budget-dropped ckpt share r" + std::to_string(round) +
                           " from " + std::to_string(from));
    return;
  }
  CkptPending& cp = ckpts_[round];
  cp.charges.emplace_back(from, cost);

  if (!cp.reached) {
    // We have not completed this round yet, so the statement the shares
    // sign is unknown; stash raw and verify at the boundary.
    cp.waiting.emplace_back(from, std::move(rest));
    return;
  }
  Reader shares_reader(rest);
  auto shares = shares_reader.vec<SigShare>([](Reader& rd) { return SigShare::decode(rd); });
  shares_reader.expect_done();
  process_ckpt_shares(from, round, std::move(shares));
}

void AtomicBroadcast::process_ckpt_shares(int from, int round, std::vector<SigShare> shares) {
  auto it = ckpts_.find(round);
  if (it == ckpts_.end() || !it->second.reached) return;
  CkptPending& cp = it->second;
  if (crypto::contains(cp.from, from)) return;
  SINTRA_REQUIRE(!shares.empty(), "abc: empty checkpoint share vector");
  const auto& cert_pk = host_.public_keys().cert_sig;
  for (const SigShare& share : shares) {
    SINTRA_REQUIRE(cert_pk.scheme().unit_owner(share.unit) == from,
                   "abc: ckpt share unit not owned by sender");
  }
  crypto::CheckpointCert draft;
  draft.round = static_cast<std::uint32_t>(round);
  draft.delivered_count = cp.delivered;
  draft.chain_digest = cp.chain_digest;
  const Bytes stmt = draft.statement(tag_);
  SINTRA_REQUIRE(crypto::batch::verify_sig_shares(cert_pk, stmt, shares, host_.rng()),
                 "abc: invalid checkpoint signature share");
  cp.from |= crypto::party_bit(from);
  for (SigShare& share : shares) cp.shares.push_back(std::move(share));
  if (!cert_pk.scheme().qualified(cp.from)) return;
  auto signature = cert_pk.combine(stmt, cp.shares);
  if (!signature) return;  // cannot happen: every stored share verified
  draft.signature = std::move(*signature);
  latest_cert_ = std::move(draft);
  host_.trace("abc", tag_ + " certified checkpoint r" + std::to_string(round));
  gc_checkpoints();
}

Bytes AtomicBroadcast::certified_state(const crypto::CheckpointCert& cert) const {
  if (cert.delivered_count > delivered_log_.size()) return {};
  Writer w;
  w.u32(static_cast<std::uint32_t>(cert.delivered_count));
  for (std::size_t i = 0; i < cert.delivered_count; ++i) {
    w.u32(static_cast<std::uint32_t>(delivered_log_[i].first));
    w.bytes(delivered_log_[i].second);
  }
  return w.take();
}

bool AtomicBroadcast::install_checkpoint(const crypto::CheckpointCert& cert, BytesView state) {
  // Idempotent under WAL replay and repeated fetches: a certificate at or
  // behind our own progress has nothing to teach us.
  if (static_cast<int>(cert.round) <= last_finished_) return false;
  if (!cert.verify(host_.public_keys().cert_sig, tag_)) return false;

  // Decode the snapshot (same layout as the checkpoint delivery-log
  // section) without touching instance state yet.
  std::vector<std::pair<int, Bytes>> log;
  try {
    Reader r(state);
    const std::uint32_t count = r.u32();
    if (count != cert.delivered_count) return false;
    log.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const int origin = static_cast<int>(r.u32());
      if (origin < 0 || origin >= host_.n()) return false;
      log.emplace_back(origin, r.bytes());
    }
    r.expect_done();
  } catch (const ProtocolError&) {
    return false;
  }
  if (delivered_count_ > log.size()) return false;

  // The snapshot must re-hash to the certified chain digest, and our own
  // delivered prefix must be a prefix of it (same total order).
  Bytes chain = crypto::chain_initial();
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (i == delivered_count_ && chain != chain_digest_) return false;
    chain = crypto::chain_extend(chain, log[i].first, log[i].second);
  }
  if (delivered_count_ == log.size() && chain != chain_digest_) return false;
  if (chain != cert.chain_digest) return false;

  // Commit: deliver the suffix beyond our own progress.
  for (std::size_t i = delivered_count_; i < log.size(); ++i) {
    const auto& [origin, payload] = log[i];
    note_delivered(payload_digest(payload));
    chain_digest_ = crypto::chain_extend(chain_digest_, origin, payload);
    ++delivered_count_;
    if (host_.wal_enabled()) delivered_log_.emplace_back(origin, payload);
    deliver_(origin, payload);
  }
  std::erase_if(queue_, [this](const Bytes& p) { return delivered_.contains(payload_digest(p)); });

  // Fast-forward the round counter past everything the certificate covers
  // and retire the overtaken rounds' VBA subtrees.
  last_finished_ = static_cast<int>(cert.round);
  latest_cert_ = cert;
  for (auto it = rounds_.begin(); it != rounds_.end() && it->first <= last_finished_;) {
    release_round_charges(it->second);
    if (it->second.vba) retired_vbas_.push_back(std::move(it->second.vba));
    const std::string vba_tag = tag_ + "/" + std::to_string(it->first) + "/vba";
    it = rounds_.erase(it);
    host_.retire_tag(vba_tag);
  }
  gc_checkpoints();
  gc_completed_rounds();
  host_.trace("abc", tag_ + " installed certified checkpoint r" +
                         std::to_string(cert.round));
  maybe_start_round(last_finished_ + 1);
  return true;
}

}  // namespace sintra::protocols
