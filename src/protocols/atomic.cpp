#include "protocols/atomic.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"

namespace sintra::protocols {

using crypto::SigShare;

namespace {
Bytes payload_digest(BytesView payload) {
  auto d = crypto::hash_domain("sintra/abc/payload", payload);
  return Bytes(d.begin(), d.end());
}

struct BatchEntry {
  int party = 0;
  std::vector<Bytes> payloads;
  std::vector<SigShare> shares;

  [[nodiscard]] Bytes payload_block() const {
    Writer w;
    w.vec(payloads, [](Writer& wr, const Bytes& p) { wr.bytes(p); });
    return w.take();
  }

  void encode(Writer& w) const {
    w.u32(static_cast<std::uint32_t>(party));
    w.bytes(payload_block());
    w.vec(shares, [](Writer& wr, const SigShare& s) { s.encode(wr); });
  }

  static BatchEntry decode(Reader& r) {
    BatchEntry entry;
    entry.party = static_cast<int>(r.u32());
    const Bytes block_bytes = r.bytes();  // named: Reader views, must outlive it
    Reader block(block_bytes);
    entry.payloads = block.vec<Bytes>([](Reader& rd) { return rd.bytes(); });
    block.expect_done();
    entry.shares = r.vec<SigShare>([](Reader& rd) { return SigShare::decode(rd); });
    return entry;
  }
};
}  // namespace

AtomicBroadcast::AtomicBroadcast(net::Party& host, std::string tag, DeliverFn deliver)
    : ProtocolInstance(host, std::move(tag)), deliver_(std::move(deliver)) {}

Bytes AtomicBroadcast::batch_statement(int round, int party, BytesView payload_block) const {
  Writer w;
  w.str("sintra/abc/batch");
  w.str(tag_);
  w.u32(static_cast<std::uint32_t>(round));
  w.u32(static_cast<std::uint32_t>(party));
  auto digest = crypto::hash_domain("sintra/abc/block", payload_block);
  w.raw(BytesView(digest.data(), digest.size()));
  return w.take();
}

void AtomicBroadcast::submit(Bytes payload) {
  Writer w;
  w.u8(kSubmit);
  w.bytes(payload);
  send(me(), w.take());
}

void AtomicBroadcast::handle(int from, Reader& reader) {
  const std::uint8_t type = reader.u8();
  if (type == kSubmit) {
    // A local submission looping back through the inbox (and the WAL).
    SINTRA_REQUIRE(from == me(), "abc: submission from another party");
    queue_.push_back(reader.bytes());
    reader.expect_done();
    maybe_start_round(last_finished_ + 1);
    return;
  }
  SINTRA_REQUIRE(type == kBatch, "abc: unknown message type");
  const int round = static_cast<int>(reader.u32());
  SINTRA_REQUIRE(round >= 1 && round < 1 << 24, "abc: implausible round");
  Bytes payload_block = reader.bytes();
  auto shares = reader.vec<SigShare>([](Reader& rd) { return SigShare::decode(rd); });
  reader.expect_done();

  RoundData& rd = rounds_[round];
  if (crypto::contains(rd.batch_from, from)) return;  // one batch per party per round

  const auto& cert_pk = host_.public_keys().cert_sig;
  const Bytes stmt = batch_statement(round, from, payload_block);
  for (const SigShare& share : shares) {
    SINTRA_REQUIRE(cert_pk.scheme().unit_owner(share.unit) == from,
                   "abc: batch share unit not owned by sender");
    SINTRA_REQUIRE(cert_pk.verify_share(stmt, share), "abc: invalid batch signature");
  }

  BatchEntry entry;
  entry.party = from;
  Reader block(payload_block);
  entry.payloads = block.vec<Bytes>([](Reader& rd) { return rd.bytes(); });
  block.expect_done();
  entry.shares = std::move(shares);

  rd.batch_from |= crypto::party_bit(from);
  Writer w;
  entry.encode(w);
  rd.batches.push_back(w.take());

  maybe_start_round(last_finished_ + 1);
  maybe_propose(round);
}

void AtomicBroadcast::maybe_start_round(int round) {
  if (round != last_finished_ + 1) return;
  RoundData& rd = rounds_[round];
  if (rd.started) return;
  // A round begins when we have something to order or somebody else does.
  bool others_active = rd.batch_from != 0;
  if (!others_active) {
    // A batch for any later round also implies the system moved on.
    for (const auto& [r, data] : rounds_) {
      if (r >= round && data.batch_from != 0) {
        others_active = true;
        break;
      }
    }
  }
  if (queue_.empty() && !others_active) return;
  rd.started = true;

  // Sign and broadcast our batch (possibly empty).
  std::vector<Bytes> payloads;
  for (std::size_t i = 0; i < queue_.size() && i < kMaxBatch; ++i) payloads.push_back(queue_[i]);
  Writer block;
  block.vec(payloads, [](Writer& wr, const Bytes& p) { wr.bytes(p); });
  Bytes payload_block = block.take();
  auto shares = host_.keys().cert_sig.sign(host_.public_keys().cert_sig,
                                           batch_statement(round, me(), payload_block),
                                           host_.rng());
  Writer w;
  w.u8(kBatch);
  w.u32(static_cast<std::uint32_t>(round));
  w.bytes(payload_block);
  w.vec(shares, [](Writer& wr, const SigShare& s) { s.encode(wr); });
  broadcast(w.take());

  rd.vba = std::make_unique<Vba>(
      host_, tag_ + "/" + std::to_string(round) + "/vba",
      [this, round](BytesView value) { return validate_batch_set(round, value); },
      [this, round](Bytes value) { on_round_decided(round, value); });
  maybe_propose(round);
}

void AtomicBroadcast::maybe_propose(int round) {
  RoundData& rd = rounds_[round];
  if (!rd.started || rd.proposed || rd.vba == nullptr) return;
  if (!quorum().is_quorum(rd.batch_from)) return;
  rd.proposed = true;
  Writer w;
  w.vec(rd.batches, [](Writer& wr, const Bytes& b) { wr.bytes(b); });
  rd.vba->propose(w.take());
}

bool AtomicBroadcast::validate_batch_set(int round, BytesView batch_set) const {
  try {
    Reader reader(batch_set);
    auto raw_entries = reader.vec<Bytes>([](Reader& rd) { return rd.bytes(); });
    reader.expect_done();
    const auto& cert_pk = host_.public_keys().cert_sig;
    crypto::PartySet senders = 0;
    for (const Bytes& raw : raw_entries) {
      Reader entry_reader(raw);
      BatchEntry entry = BatchEntry::decode(entry_reader);
      entry_reader.expect_done();
      if (entry.party < 0 || entry.party >= host_.n()) return false;
      if (crypto::contains(senders, entry.party)) return false;  // duplicate sender
      const Bytes stmt = batch_statement(round, entry.party, entry.payload_block());
      for (const SigShare& share : entry.shares) {
        if (cert_pk.scheme().unit_owner(share.unit) != entry.party) return false;
        if (!cert_pk.verify_share(stmt, share)) return false;
      }
      if (entry.shares.empty()) return false;
      senders |= crypto::party_bit(entry.party);
    }
    // The paper's external validity condition: properly signed batches from
    // a full quorum, so honest parties' payloads are represented.
    return quorum().is_quorum(senders);
  } catch (const ProtocolError&) {
    return false;
  }
}

void AtomicBroadcast::on_round_decided(int round, const Bytes& batch_set) {
  SINTRA_INVARIANT(round == last_finished_ + 1, "abc: rounds decided out of order");

  Reader reader(batch_set);
  auto raw_entries = reader.vec<Bytes>([](Reader& rd) { return rd.bytes(); });
  std::vector<BatchEntry> entries;
  entries.reserve(raw_entries.size());
  for (const Bytes& raw : raw_entries) {
    Reader entry_reader(raw);
    entries.push_back(BatchEntry::decode(entry_reader));
  }
  // Deterministic delivery order: by originating party, then batch order.
  std::sort(entries.begin(), entries.end(),
            [](const BatchEntry& a, const BatchEntry& b) { return a.party < b.party; });

  for (const BatchEntry& entry : entries) {
    for (const Bytes& payload : entry.payloads) {
      Bytes digest = payload_digest(payload);
      if (delivered_.contains(digest)) continue;
      delivered_.insert(std::move(digest));
      ++delivered_count_;
      deliver_(entry.party, payload);
    }
  }
  // Drop our own now-delivered payloads.
  std::erase_if(queue_, [this](const Bytes& p) { return delivered_.contains(payload_digest(p)); });

  last_finished_ = round;
  host_.trace("abc", tag_ + " finished round " + std::to_string(round));
  maybe_start_round(round + 1);
}

}  // namespace sintra::protocols
