// Proactive share refresh (paper §6, "Proactive Protocols").
//
// Refreshes a Shamir-shared discrete-log key (the threshold coin or the
// TDH2 decryption key): after an epoch every party holds a NEW share of
// the SAME secret, on a freshly randomized polynomial, and the old shares
// become useless to a mobile adversary — "all secrets that the adversary
// has seen in the past become useless by resharing".
//
// Mechanism (epoch protocol over atomic broadcast, Herzberg-et-al. style):
//  1. every party deals a Feldman zero-sharing (degree t, secret 0) and
//     atomically broadcasts the commitments together with per-recipient
//     sub-shares masked by dealer-provided pairwise keys;
//  2. the first full quorum of dealings in ABC order forms the candidate
//     set D — identical at every party;
//  3. every party verifies its own sub-share of each candidate against
//     the Feldman commitments (and that C_0 = 1, i.e. the dealing really
//     shares zero) and atomically broadcasts a verdict bitmask;
//  4. the applied set = candidates approved by ALL of the first quorum of
//     verdicts (deterministic); new share = old share + sum of applied
//     sub-shares; new public verification values follow from the
//     commitments alone, so even parties without a share can update the
//     public key material.
//
// Honesty about the model (the paper: "proactively secure protocols for
// our asynchronous system model are currently not known"): this protocol
// is always CORRECT (the secret and its public image are preserved, all
// honest parties move to consistent shares of one polynomial, bad
// dealings detected by any first-quorum verdict are excluded), and it is
// proactively SECURE whenever at least one honest dealing is applied.  A
// Byzantine party can degrade an epoch to a no-op by false complaints,
// and a Byzantine dealer that targets an honest party whose verdict falls
// outside the first quorum can leave that party with an unusable share —
// closing that gap needs publicly verifiable resharing (solved post-paper
// by asynchronous proactive secret sharing, e.g. Cachin et al. 2002) and
// is out of scope here.  Only the classical threshold scheme is
// refreshable; generalized LSSS refresh would need per-gate resharing.
#pragma once

#include <optional>

#include "crypto/vss.hpp"
#include "protocols/atomic.hpp"

namespace sintra::protocols {

class ShareRefresh final : public ProtocolInstance {
 public:
  struct Result {
    crypto::BigInt new_share;
    std::vector<crypto::Element> new_verification;  ///< g^{x'_j} per party
    int dealings_applied = 0;
    /// False when an APPLIED dealing's sub-share for this party failed its
    /// local verification — the documented gap where a Byzantine dealer
    /// targets a party whose verdict missed the first quorum.  The new
    /// share is then unusable; the party must not serve with it and
    /// recovers via a subsequent epoch (reconfiguration identity-reshare),
    /// instead of discovering the corruption the first time a signature
    /// share it emits fails to verify.
    bool share_valid = true;
  };
  using DoneFn = std::function<void(Result)>;

  /// `old_share` is this party's current share (evaluation point id+1) of
  /// a secret x with per-party verification values `old_verification`
  /// (g^{x_j}); `threshold` is the sharing degree t.
  ShareRefresh(net::Party& host, std::string tag, crypto::BigInt old_share,
               std::vector<crypto::Element> old_verification, int threshold, DoneFn done);

  /// Start the epoch (every honest party calls this).
  void start();

  [[nodiscard]] bool done() const { return result_.has_value(); }
  [[nodiscard]] const std::optional<Result>& result() const { return result_; }

 private:
  enum MsgType : std::uint8_t { kDealing = 0, kVerdict = 1 };

  void on_ordered(int origin, Bytes payload);
  void handle(int from, Reader& reader) override {
    (void)from;
    (void)reader;
    throw ProtocolError("refresh: direct messages unused");
  }
  [[nodiscard]] crypto::BigInt mask_for(int dealer, int recipient) const;
  void maybe_submit_verdict();
  void maybe_finish();

  crypto::BigInt old_share_;
  std::vector<crypto::Element> old_verification_;
  int threshold_;
  DoneFn done_;
  AtomicBroadcast abc_;
  bool started_ = false;
  std::optional<Result> result_;

  struct Candidate {
    int dealer;
    std::vector<crypto::Element> commitments;
    crypto::BigInt my_subshare;  ///< decrypted; validity in `valid`
    bool valid = false;
  };
  std::vector<Candidate> candidates_;    ///< in ABC order, capped at quorum
  crypto::PartySet dealers_seen_ = 0;
  bool verdict_sent_ = false;
  std::vector<std::uint64_t> verdicts_;  ///< first-quorum verdict bitmasks
  crypto::PartySet verdict_from_ = 0;
};

}  // namespace sintra::protocols
