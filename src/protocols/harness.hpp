// Simulation harness: wires a Deployment, a Scheduler, n hosted protocol
// stacks and optional corrupted parties / client endpoints into one
// runnable cluster.  Header-only convenience used by the tests, the
// benchmarks and the examples — not by the protocols themselves.
#pragma once

#include <functional>
#include <memory>

#include "net/corruption.hpp"
#include "net/party.hpp"
#include "net/scheduler.hpp"

namespace sintra::protocols {

/// A Process that hosts a Party running one protocol object of type P.
template <typename P>
class HostedParty final : public net::Process {
 public:
  template <typename Factory>
  HostedParty(net::Simulator& simulator, int id, adversary::Deployment deployment,
              std::uint64_t seed, Factory&& factory)
      : party_(simulator, id, std::move(deployment), seed),
        protocol_(std::forward<Factory>(factory)(party_)) {}

  void on_message(const net::Message& message) override { party_.on_message(message); }

  [[nodiscard]] net::Party& party() { return party_; }
  [[nodiscard]] P& protocol() { return *protocol_; }

 private:
  net::Party party_;
  std::unique_ptr<P> protocol_;
};

/// n servers running protocol P; parties in `corrupted` are crashed unless
/// a custom Process is supplied for them before start().
template <typename P>
class Cluster {
 public:
  using Factory = std::function<std::unique_ptr<P>(net::Party& party, int id)>;

  Cluster(adversary::Deployment deployment, net::Scheduler& scheduler, Factory factory,
          crypto::PartySet corrupted = 0, int extra_endpoints = 0, std::uint64_t seed = 1,
          TraceLog* log = nullptr)
      : deployment_(std::move(deployment)),
        simulator_(deployment_.n() + extra_endpoints, scheduler, log),
        hosts_(static_cast<std::size_t>(deployment_.n()), nullptr) {
    for (int id = 0; id < deployment_.n(); ++id) {
      if (crypto::contains(corrupted, id)) {
        simulator_.attach(id, std::make_unique<net::CrashProcess>());
        continue;
      }
      auto host = std::make_unique<HostedParty<P>>(
          simulator_, id, deployment_, seed * 7919 + static_cast<std::uint64_t>(id),
          [&](net::Party& party) { return factory(party, id); });
      hosts_[static_cast<std::size_t>(id)] = host.get();
      simulator_.attach(id, std::move(host));
    }
  }

  /// Replace a party's process (e.g. a scripted Byzantine attacker).
  /// Call before start(); the slot is then no longer an honest host.
  void attach_custom(int id, std::unique_ptr<net::Process> process) {
    hosts_[static_cast<std::size_t>(id)] = nullptr;
    simulator_.attach(id, std::move(process));
  }

  /// Attach a client endpoint (ids deployment.n() .. n+extra-1).
  void attach_client(int id, std::unique_ptr<net::Process> process) {
    simulator_.attach(id, std::move(process));
  }

  void start() { simulator_.start(); }

  [[nodiscard]] net::Simulator& simulator() { return simulator_; }
  [[nodiscard]] const adversary::Deployment& deployment() const { return deployment_; }
  [[nodiscard]] int n() const { return deployment_.n(); }

  /// The protocol at an honest party (nullptr if corrupted/custom).
  [[nodiscard]] P* protocol(int id) {
    auto* host = hosts_[static_cast<std::size_t>(id)];
    return host == nullptr ? nullptr : &host->protocol();
  }
  [[nodiscard]] net::Party* party(int id) {
    auto* host = hosts_[static_cast<std::size_t>(id)];
    return host == nullptr ? nullptr : &host->party();
  }

  /// Run until `done(protocol)` holds at every honest party.
  bool run_until_all(const std::function<bool(P&)>& done, std::uint64_t max_steps) {
    return simulator_.run_until(
        [&] {
          for (int id = 0; id < n(); ++id) {
            P* p = protocol(id);
            if (p != nullptr && !done(*p)) return false;
          }
          return true;
        },
        max_steps);
  }

  /// Apply `fn` to every honest protocol instance.
  void for_each(const std::function<void(int id, P&)>& fn) {
    for (int id = 0; id < n(); ++id) {
      if (P* p = protocol(id)) fn(id, *p);
    }
  }

 private:
  adversary::Deployment deployment_;
  net::Simulator simulator_;
  std::vector<HostedParty<P>*> hosts_;
};

}  // namespace sintra::protocols
