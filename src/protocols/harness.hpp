// Simulation harness: wires a Deployment, a Scheduler, n hosted protocol
// stacks and optional corrupted parties / client endpoints into one
// runnable cluster.  Header-only convenience used by the tests, the
// benchmarks and the examples — not by the protocols themselves.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "net/corruption.hpp"
#include "net/fault.hpp"
#include "net/party.hpp"
#include "net/scheduler.hpp"

namespace sintra::protocols {

/// A Process that hosts a Party running one protocol object of type P.
template <typename P>
class HostedParty final : public net::Process {
 public:
  template <typename Factory>
  HostedParty(net::Network& network, int id, adversary::Deployment deployment,
              std::uint64_t seed, Factory&& factory)
      : party_(network, id, std::move(deployment), seed),
        protocol_(std::forward<Factory>(factory)(party_)) {}

  void on_message(const net::Message& message) override { party_.on_message(message); }

  // Crash recovery: what a hosted party persists is its Party's WAL.
  [[nodiscard]] Bytes snapshot() const override { return party_.snapshot(); }
  void restore(BytesView persisted) override { party_.restore(persisted); }

  [[nodiscard]] net::Party& party() { return party_; }
  [[nodiscard]] P& protocol() { return *protocol_; }

 private:
  net::Party party_;
  std::unique_ptr<P> protocol_;
};

/// n servers running protocol P; parties in `corrupted` are crashed unless
/// a custom Process is supplied for them before start().
template <typename P>
class Cluster {
 public:
  using Factory = std::function<std::unique_ptr<P>(net::Party& party, int id)>;

  Cluster(adversary::Deployment deployment, net::Scheduler& scheduler, Factory factory,
          crypto::PartySet corrupted = 0, int extra_endpoints = 0, std::uint64_t seed = 1,
          TraceLog* log = nullptr)
      : deployment_(std::move(deployment)),
        simulator_(deployment_.n() + extra_endpoints, scheduler, log),
        hosts_(static_cast<std::size_t>(deployment_.n()), nullptr) {
    for (int id = 0; id < deployment_.n(); ++id) {
      if (crypto::contains(corrupted, id)) {
        simulator_.attach(id, std::make_unique<net::CrashProcess>());
        continue;
      }
      auto host = std::make_unique<HostedParty<P>>(
          simulator_, id, deployment_, seed * 7919 + static_cast<std::uint64_t>(id),
          [&](net::Party& party) { return factory(party, id); });
      hosts_[static_cast<std::size_t>(id)] = host.get();
      simulator_.attach(id, std::move(host));
    }
  }

  /// Replace a party's process (e.g. a scripted Byzantine attacker).
  /// Call before start(); the slot is then no longer an honest host.
  void attach_custom(int id, std::unique_ptr<net::Process> process) {
    hosts_[static_cast<std::size_t>(id)] = nullptr;
    simulator_.attach(id, std::move(process));
  }

  /// Attach a client endpoint (ids deployment.n() .. n+extra-1).
  void attach_client(int id, std::unique_ptr<net::Process> process) {
    simulator_.attach(id, std::move(process));
  }

  void start() { simulator_.start(); }

  [[nodiscard]] net::Simulator& simulator() { return simulator_; }
  [[nodiscard]] const adversary::Deployment& deployment() const { return deployment_; }
  [[nodiscard]] int n() const { return deployment_.n(); }

  /// The protocol at an honest party (nullptr if corrupted/custom).
  [[nodiscard]] P* protocol(int id) {
    auto* host = hosts_[static_cast<std::size_t>(id)];
    return host == nullptr ? nullptr : &host->protocol();
  }
  [[nodiscard]] net::Party* party(int id) {
    auto* host = hosts_[static_cast<std::size_t>(id)];
    return host == nullptr ? nullptr : &host->party();
  }

  /// Run until `done(protocol)` holds at every honest party.
  bool run_until_all(const std::function<bool(P&)>& done, std::uint64_t max_steps) {
    return simulator_.run_until(
        [&] {
          for (int id = 0; id < n(); ++id) {
            P* p = protocol(id);
            if (p != nullptr && !done(*p)) return false;
          }
          return true;
        },
        max_steps);
  }

  /// Apply `fn` to every honest protocol instance.
  void for_each(const std::function<void(int id, P&)>& fn) {
    for (int id = 0; id < n(); ++id) {
      if (P* p = protocol(id)) fn(id, *p);
    }
  }

 private:
  adversary::Deployment deployment_;
  net::Simulator simulator_;
  std::vector<HostedParty<P>*> hosts_;
};

/// Cluster variant for fault-injection experiments (see net/fault.hpp and
/// tests/chaos_test.cpp): every party runs with its write-ahead log
/// enabled, any party can be scheduled to crash and restart mid-run, and a
/// FaultInjector can duplicate/replay/drop the cluster's traffic.
///
/// Unlike Cluster, the factory here must *also start* the protocol (feed
/// the input, submit the payload, ...): a crash-restarted party rebuilds
/// its whole stack through the factory, and the application-level start
/// calls are part of what it must redo — which is why the protocols'
/// start() entry points tolerate same-input re-entry.
template <typename P>
class ChaosCluster {
 public:
  /// Build AND start party `id`'s protocol object on `party`.
  using Factory = std::function<std::unique_ptr<P>(net::Party& party, int id)>;

  ChaosCluster(adversary::Deployment deployment, net::Scheduler& scheduler, Factory factory,
               std::uint64_t seed = 1)
      : deployment_(std::move(deployment)),
        simulator_(deployment_.n(), scheduler),
        factory_(std::move(factory)),
        seed_(seed),
        hosts_(static_cast<std::size_t>(deployment_.n()), nullptr),
        restarting_(static_cast<std::size_t>(deployment_.n()), nullptr) {}

  /// Attach an unreliable-delivery policy (call before start()).
  void set_fault_policy(std::uint64_t seed, net::FaultPolicy policy) {
    injector_ = std::make_unique<net::FaultInjector>(seed, policy);
    simulator_.set_fault_injector(injector_.get());
  }

  /// Schedule party `id` to crash after `crash_after` deliveries and come
  /// back after `down_for` stashed messages (call before start()).  With
  /// `lossy`, downtime traffic is dropped instead of stashed: the rejoined
  /// party genuinely missed it and must be recovered by a watchdog.
  void set_restarting(int id, std::uint64_t crash_after, std::uint64_t down_for,
                      int max_restarts = 1, bool lossy = false) {
    restart_plans_[id] = Plan{crash_after, down_for, max_restarts, lossy};
  }

  /// Replace party `id` with a scripted process (e.g. a FlooderProcess);
  /// the slot is then Byzantine, not an honest host.  Call before start().
  void set_custom(int id, std::function<std::unique_ptr<net::Process>()> factory) {
    custom_[id] = std::move(factory);
  }

  /// Resource budget installed on every honest party at (re)build time, so
  /// it also applies to crash-restarted incarnations.  Call before start().
  void set_budget(net::BudgetConfig config) { budget_ = config; }

  void start() {
    for (int id = 0; id < deployment_.n(); ++id) {
      if (auto custom = custom_.find(id); custom != custom_.end()) {
        simulator_.attach(id, custom->second());
        continue;
      }
      auto build = [this, id]() -> std::unique_ptr<net::Process> {
        auto host = std::make_unique<HostedParty<P>>(
            simulator_, id, deployment_, seed_ * 7919 + static_cast<std::uint64_t>(id),
            [this, id](net::Party& party) {
              party.enable_wal();
              if (budget_.has_value()) party.set_budget(*budget_);
              return factory_(party, id);
            });
        hosts_[static_cast<std::size_t>(id)] = host.get();
        return host;
      };
      auto plan = restart_plans_.find(id);
      if (plan != restart_plans_.end()) {
        auto process = std::make_unique<net::RestartingProcess>(
            build, plan->second.crash_after, plan->second.down_for, plan->second.max_restarts);
        process->set_lossy_downtime(plan->second.lossy);
        restarting_[static_cast<std::size_t>(id)] = process.get();
        simulator_.attach(id, std::move(process));
      } else {
        simulator_.attach(id, build());
      }
    }
    simulator_.start();
  }

  [[nodiscard]] net::Simulator& simulator() { return simulator_; }
  [[nodiscard]] const adversary::Deployment& deployment() const { return deployment_; }
  [[nodiscard]] int n() const { return deployment_.n(); }
  [[nodiscard]] const net::FaultInjector* injector() const { return injector_.get(); }
  [[nodiscard]] net::RestartingProcess* restarting(int id) {
    return restarting_[static_cast<std::size_t>(id)];
  }

  /// The current protocol incarnation at `id` (nullptr while crashed).
  [[nodiscard]] P* protocol(int id) {
    auto* process = restarting_[static_cast<std::size_t>(id)];
    if (process != nullptr && process->down()) return nullptr;
    auto* host = hosts_[static_cast<std::size_t>(id)];
    return host == nullptr ? nullptr : &host->protocol();
  }

  /// The current Party incarnation at `id` (nullptr while crashed or for a
  /// custom slot) — budget counters live here.
  [[nodiscard]] net::Party* party(int id) {
    auto* process = restarting_[static_cast<std::size_t>(id)];
    if (process != nullptr && process->down()) return nullptr;
    auto* host = hosts_[static_cast<std::size_t>(id)];
    return host == nullptr ? nullptr : &host->party();
  }

  /// Run until `done(protocol)` holds at every currently-up party.  When
  /// the network quiesces with a party still down (not enough traffic
  /// arrived to trigger its scheduled restart), the restart is forced and
  /// the run continues — a crashed replica that never restarts is outside
  /// the crash-*recovery* model.
  bool run_until_all(const std::function<bool(P&)>& done, std::uint64_t max_steps) {
    const std::uint64_t deadline = simulator_.now() + max_steps;
    auto all_done = [&] {
      for (int id = 0; id < n(); ++id) {
        auto* process = restarting_[static_cast<std::size_t>(id)];
        if (process != nullptr && process->down()) return false;
        P* p = protocol(id);
        if (p != nullptr && !done(*p)) return false;
      }
      return true;
    };
    while (true) {
      if (simulator_.run_until(all_done, deadline - simulator_.now())) return true;
      if (simulator_.now() >= deadline) return false;
      bool kicked = false;
      for (auto* process : restarting_) {
        if (process != nullptr && process->down()) {
          process->force_restart();
          kicked = true;
        }
      }
      if (!kicked) return false;  // quiescent with everyone up: stuck
    }
  }

  /// Apply `fn` to every currently-up protocol instance.
  void for_each(const std::function<void(int id, P&)>& fn) {
    for (int id = 0; id < n(); ++id) {
      if (P* p = protocol(id)) fn(id, *p);
    }
  }

 private:
  struct Plan {
    std::uint64_t crash_after;
    std::uint64_t down_for;
    int max_restarts;
    bool lossy = false;
  };

  adversary::Deployment deployment_;
  net::Simulator simulator_;
  Factory factory_;
  std::uint64_t seed_;
  std::unique_ptr<net::FaultInjector> injector_;
  std::map<int, Plan> restart_plans_;
  std::map<int, std::function<std::unique_ptr<net::Process>()>> custom_;
  std::optional<net::BudgetConfig> budget_;
  std::vector<HostedParty<P>*> hosts_;
  std::vector<net::RestartingProcess*> restarting_;
};

}  // namespace sintra::protocols
