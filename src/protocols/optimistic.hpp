// Optimistic atomic broadcast (paper §6, "Optimistic Protocols", after
// Kursawe–Shoup): "run very fast if no corruptions occur and all messages
// are delivered promptly ... if a problem is detected they switch into a
// more secure mode; safety is never violated".
//
// Fast path (per payload: 4 message delays, O(n) crypto):
//   1. a fixed sequencer assigns sequence numbers and broadcasts
//      ASSIGN(seq, payload);
//   2. every party extends its hash chain over the assigned prefix and
//      returns a certificate-signature share over (seq, chain) to the
//      sequencer — the chain value pins the entire prefix, so ONE
//      certificate is a transferable proof of all deliveries up to seq;
//   3. the sequencer combines a full quorum of shares into a threshold
//      certificate and broadcasts COMMIT(seq, payload, cert);
//   4. parties verify the certificate and broadcast a tiny ACK(seq);
//      a slot is DELIVERED once a vote quorum ("2t+1") has acked — which
//      guarantees that a fault-set-exceeding set of honest parties holds
//      the certificate.  That stability rule is exactly what makes the
//      switch safe.
//
// Switch (liveness only ever depends on it, never safety): any party may
// signal loss of progress; everyone then broadcasts a signed CLAIM of its
// longest certified chain, collects claims from a full quorum, and runs
// one VBA whose external validity accepts "a set of n−t properly signed,
// certificate-valid claims" (the same shape as an atomic-broadcast round).
// The adopted fast prefix is the longest chain in the DECIDED set: if any
// honest party fast-delivered slot k, more than one fault set of honest
// parties hold cert_k (the ACK rule), and any n−t claims include at least
// one of them — so the agreed prefix extends every honest delivery.
// Undelivered payloads are resubmitted to the randomized atomic broadcast
// and the system continues pessimistically.
//
// A single corrupted party can force the switch (a performance, not a
// safety, concern — mitigations are out of scope, as in KS02).
#pragma once

#include <deque>

#include "protocols/atomic.hpp"

namespace sintra::protocols {

class OptimisticBroadcast final : public ProtocolInstance {
 public:
  using DeliverFn = std::function<void(Bytes payload)>;

  /// `sequencer` leads the fast path (conventionally party 0).
  OptimisticBroadcast(net::Party& host, std::string tag, int sequencer, DeliverFn deliver);

  void submit(Bytes payload);

  /// Signal loss of fast-path liveness.  Failure detection is external to
  /// the protocol (an application-level timeout); a false signal costs
  /// speed, never consistency.
  void switch_to_pessimistic();

  [[nodiscard]] bool pessimistic() const { return pessimistic_; }
  [[nodiscard]] bool switching() const { return switching_; }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_count_; }
  /// Parties whose slot-signature shares the sequencer's combine-then-
  /// verify fallback proved invalid.
  [[nodiscard]] crypto::PartySet suspected() const { return suspected_; }

 private:
  enum MsgType : std::uint8_t {
    kAssign = 0,
    kShare = 1,
    kCommit = 2,
    kAck = 3,
    kSwitch = 4,
    kClaim = 5,
    kShareVerdict = 6,  ///< self-message: off-loop slot-combine result
  };

  struct Slot {
    Bytes payload;
    crypto::BigInt certificate;
    bool committed = false;       ///< valid COMMIT received
    crypto::PartySet acks = 0;
    bool acked = false;           ///< we sent our ACK
    bool delivered = false;
    // Sequencer bookkeeping:
    Bytes statement;              ///< canonical signed statement for the slot
    crypto::PartySet share_from = 0;
    crypto::PartySet share_rejected = 0;  ///< senders with a proven-bad share
    std::vector<crypto::SigShare> shares;
    int share_attempt = 0;
    bool share_inflight = false;
    bool commit_sent = false;
  };

  void handle(int from, Reader& reader) override;
  void on_assign(int from, Reader& reader);
  void on_share(int from, Reader& reader);
  void maybe_commit_slot(std::uint64_t seq);
  void on_share_verdict(int from, Reader& reader);
  void on_commit(int from, Reader& reader);
  void on_ack(int from, Reader& reader);
  void on_switch(int from);
  void on_claim(int from, Reader& reader);

  [[nodiscard]] Bytes slot_statement(std::uint64_t seq, BytesView chain) const;
  [[nodiscard]] Bytes chain_after(std::uint64_t seq, BytesView payload,
                                  BytesView prev_chain) const;
  [[nodiscard]] Bytes claim_statement(BytesView claim_body) const;
  void process_assign_queue();
  void maybe_deliver_fast();
  void deliver_payload(Bytes payload);
  void broadcast_claim();
  void maybe_propose_switch_set();
  void on_switch_set_decided(const Bytes& value);
  [[nodiscard]] bool validate_claim(BytesView claim_body, int claimant,
                                    const std::vector<crypto::SigShare>& shares,
                                    std::vector<Bytes>* payloads_out) const;
  [[nodiscard]] bool validate_switch_set(BytesView value) const;
  [[nodiscard]] Bytes my_claim_body() const;

  int sequencer_;
  DeliverFn deliver_;
  bool switching_ = false;
  bool pessimistic_ = false;
  std::uint64_t delivered_count_ = 0;
  crypto::PartySet suspected_ = 0;  ///< proven bad-share senders

  // Fast path.
  std::uint64_t next_assign_ = 0;       ///< sequencer: next seq to assign
  std::uint64_t sign_cursor_ = 0;       ///< next seq we would sign
  Bytes sign_chain_;                    ///< chain value after sign_cursor_-1
  std::uint64_t commit_cursor_ = 0;     ///< next seq to commit-verify
  Bytes commit_chain_;                  ///< chain value after commit_cursor_-1
  std::uint64_t deliver_cursor_ = 0;    ///< next fast slot to deliver
  std::map<std::uint64_t, Slot> slots_;
  std::map<std::uint64_t, Bytes> assign_queue_;  ///< out-of-order assigns
  std::deque<Bytes> pending_;           ///< our submissions not yet delivered
  std::set<Bytes> delivered_digests_;

  // Switch machinery.
  crypto::PartySet claims_from_ = 0;
  std::vector<Bytes> claim_records_;    ///< encoded (claimant, body, shares)
  std::uint64_t best_claim_len_ = 0;
  std::unique_ptr<Vba> switch_vba_;
  bool proposed_switch_set_ = false;
  std::unique_ptr<AtomicBroadcast> fallback_;
};

}  // namespace sintra::protocols
