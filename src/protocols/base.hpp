// Base class for protocol instances hosted by a net::Party.
//
// An instance owns one routing tag.  Construction registers the handler;
// instances must therefore outlive the simulation (own them via unique_ptr
// in the parent protocol or the harness).  Sub-protocols compose by
// extending the tag path ("abc/5" spawns "abc/5/vba", ...).
#pragma once

#include <string>
#include <utility>

#include "net/party.hpp"

namespace sintra::protocols {

class ProtocolInstance {
 public:
  ProtocolInstance(net::Party& host, std::string tag) : host_(host), tag_(std::move(tag)) {
    host_.register_handler(tag_, [this](int from, Reader& reader) { handle(from, reader); });
  }
  virtual ~ProtocolInstance() {
    host_.unregister_handler(tag_);
    // Nothing under this tag subtree can legitimately hold budget once the
    // instance is gone (sub-instances released theirs when they died).
    host_.budget().release_instance(tag_);
  }

  ProtocolInstance(const ProtocolInstance&) = delete;
  ProtocolInstance& operator=(const ProtocolInstance&) = delete;

  [[nodiscard]] const std::string& tag() const { return tag_; }

 protected:
  virtual void handle(int from, Reader& reader) = 0;

  void send(int to, Bytes payload) { host_.send(to, tag_, std::move(payload)); }
  void broadcast(const Bytes& payload) { host_.broadcast(tag_, payload); }

  [[nodiscard]] net::Party& host() { return host_; }
  [[nodiscard]] const adversary::QuorumSystem& quorum() const { return host_.quorum(); }
  [[nodiscard]] int me() const { return host_.id(); }

  net::Party& host_;
  std::string tag_;
};

}  // namespace sintra::protocols
