// Secure causal atomic broadcast (§3, after Reiter–Birman).
//
// Atomic broadcast of TDH2 ciphertexts followed by threshold decryption
// *after* the total order is fixed.  Client requests therefore stay
// confidential until they are scheduled: a corrupted server that sees a
// ciphertext in flight can neither read it nor construct a *related*
// ciphertext (TDH2 is CCA2-secure), so it cannot have a derived request
// ordered before the original — the paper's notary front-running attack
// is exactly what this rules out (experiment E4 demonstrates it).
//
// Flow per payload: client (or server) encrypts under the service
// encryption key; a server submits the ciphertext to atomic broadcast;
// upon ABC delivery every honest server broadcasts its decryption shares;
// once shares from a set exceeding one fault set combine, the plaintext is
// delivered — in ABC order, with completed-out-of-order decryptions held
// back until their turn.
#pragma once

#include <map>

#include "crypto/tdh2.hpp"
#include "protocols/atomic.hpp"

namespace sintra::protocols {

class SecureCausalBroadcast final : public ProtocolInstance {
 public:
  /// deliver(sequence, plaintext, label): strictly increasing sequence,
  /// identical at every honest party.
  using DeliverFn = std::function<void(std::uint64_t sequence, Bytes plaintext, Bytes label)>;

  SecureCausalBroadcast(net::Party& host, std::string tag, DeliverFn deliver);

  /// Submit an already-encrypted request for causal total-order delivery.
  void submit(const crypto::Tdh2Ciphertext& ciphertext);

  /// Client-side helper: encrypt a request for a deployment's service key.
  static crypto::Tdh2Ciphertext encrypt(const crypto::Tdh2PublicKey& pk, BytesView request,
                                        BytesView label, Rng& rng);

  [[nodiscard]] std::uint64_t delivered_count() const { return next_deliver_; }

 private:
  struct Slot {
    crypto::Tdh2Ciphertext ciphertext;
    bool have_ciphertext = false;
    std::uint64_t sequence = 0;
    bool sequenced = false;
    bool done = false;
    crypto::PartySet share_from = 0;
    std::vector<crypto::Tdh2DecShare> shares;
    /// Shares that arrived before we saw the ciphertext (unverifiable yet).
    std::vector<std::pair<int, Bytes>> early_shares;
  };

  void handle(int from, Reader& reader) override;
  void on_ordered(int origin, Bytes ciphertext_bytes);
  void add_share(Slot& slot, int from, const std::vector<crypto::Tdh2DecShare>& shares);
  void maybe_flush();

  DeliverFn deliver_;
  AtomicBroadcast abc_;
  std::map<Bytes, Slot> slots_;                  ///< ciphertext id -> state
  std::map<std::uint64_t, Bytes> by_sequence_;   ///< sequence -> ciphertext id
  std::map<std::uint64_t, std::pair<Bytes, Bytes>> ready_;  ///< seq -> (plaintext, label)
  std::uint64_t next_sequence_ = 0;
  std::uint64_t next_deliver_ = 0;
};

}  // namespace sintra::protocols
