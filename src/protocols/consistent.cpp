#include "protocols/consistent.hpp"

#include "crypto/batch.hpp"
#include "crypto/sha256.hpp"

namespace sintra::protocols {

Bytes consistent_statement(const std::string& tag, BytesView message) {
  Writer w;
  w.str("sintra/cbc");
  w.str(tag);
  auto digest = crypto::hash_domain("sintra/cbc/digest", message);
  w.raw(BytesView(digest.data(), digest.size()));
  return w.take();
}

bool verify_certificate(const crypto::ThresholdSigPublicKey& pk, const std::string& tag,
                        const CertifiedMessage& cm) {
  return pk.verify(consistent_statement(tag, cm.message), cm.certificate);
}

void CertifiedMessage::encode(Writer& w) const {
  w.bytes(message);
  certificate.encode(w);
}

CertifiedMessage CertifiedMessage::decode(Reader& r) {
  CertifiedMessage cm;
  cm.message = r.bytes();
  cm.certificate = crypto::BigInt::decode(r);
  return cm;
}

ConsistentBroadcast::ConsistentBroadcast(net::Party& host, std::string tag, int sender,
                                         DeliverFn deliver)
    : ProtocolInstance(host, std::move(tag)), sender_(sender), deliver_(std::move(deliver)) {}

void ConsistentBroadcast::start(Bytes message) {
  SINTRA_REQUIRE(me() == sender_, "cbc: only the designated sender may start");
  if (started_) {
    // At-least-once re-entry: re-broadcast the same SEND (receivers sign
    // only once); a different message would break uniqueness — reject.
    SINTRA_REQUIRE(message == my_message_, "cbc: conflicting re-start");
  } else {
    started_ = true;
    my_message_ = std::move(message);
  }
  Writer w;
  w.u8(kSend);
  w.bytes(my_message_);
  broadcast(w.take());
}

void ConsistentBroadcast::handle(int from, Reader& reader) {
  const std::uint8_t type = reader.u8();
  switch (type) {
    case kSend: {
      SINTRA_REQUIRE(from == sender_, "cbc: SEND from non-sender");
      Bytes message = reader.bytes();
      reader.expect_done();
      if (signed_) break;  // sign only the first message per instance
      signed_ = true;
      const Bytes statement = consistent_statement(tag_, message);
      Writer w;
      w.u8(kShare);
      auto shares = host_.keys().cert_sig.sign(host_.public_keys().cert_sig, statement,
                                               host_.rng());
      w.vec(shares, [](Writer& wr, const crypto::SigShare& s) { s.encode(wr); });
      send(sender_, w.take());
      break;
    }
    case kShare: {
      on_share(from, reader);
      break;
    }
    case kVerdict: {
      on_verdict(from, reader);
      break;
    }
    case kFinal: {
      CertifiedMessage cm = CertifiedMessage::decode(reader);
      reader.expect_done();
      SINTRA_REQUIRE(verify_certificate(host_.public_keys().cert_sig, tag_, cm),
                     "cbc: bad certificate");
      if (delivered_) break;
      delivered_ = true;
      host_.trace("cbc", tag_ + " delivered");
      deliver_(std::move(cm));
      break;
    }
    default:
      throw ProtocolError("cbc: unknown message type");
  }
}

void ConsistentBroadcast::on_share(int from, Reader& reader) {
  if (me() != sender_ || finalized_) return;
  // One share message per party: a duplicated/replayed copy must not
  // append its shares again (combine expects distinct units).
  if ((share_owners_ | share_rejected_) & crypto::party_bit(from)) return;
  auto incoming = reader.vec<crypto::SigShare>(
      [](Reader& r) { return crypto::SigShare::decode(r); });
  reader.expect_done();
  const auto& pk = host_.public_keys().cert_sig;
  // Structural admission only: the shares are *not* verified here.  The
  // sender combines an unverified quorum optimistically and checks the one
  // combined signature off the event loop — Byzantine signers pay for the
  // bisection fallback, honest executions never verify a single share.
  for (auto& share : incoming) {
    SINTRA_REQUIRE(pk.scheme().unit_owner(share.unit) == from, "cbc: share unit not owned");
    shares_.push_back(std::move(share));
  }
  share_owners_ |= crypto::party_bit(from);
  maybe_combine();
}

void ConsistentBroadcast::maybe_combine() {
  if (finalized_ || combine_inflight_ || !quorum().is_quorum(share_owners_)) return;
  combine_inflight_ = true;
  const int attempt = ++combine_attempt_;
  const std::uint64_t seed = host_.rng().next();  // weight seed drawn on the loop thread
  const auto& pk = host_.public_keys().cert_sig;
  host_.offload(tag_, [&pk, stmt = consistent_statement(tag_, my_message_), shares = shares_,
                       attempt, seed]() -> Bytes {
    Rng rng(seed);
    auto result = crypto::batch::combine_sig_optimistic(pk, stmt, shares, rng);
    Writer w;
    w.u8(kVerdict);
    w.u32(static_cast<std::uint32_t>(attempt));
    w.vec(result.bad, [&](Writer& wr, const std::size_t& i) {
      wr.u32(static_cast<std::uint32_t>(shares[i].unit));
    });
    if (result.signature.has_value()) {
      w.u8(1);
      result.signature->encode(w);
    } else {
      w.u8(0);
    }
    return w.take();
  });
}

void ConsistentBroadcast::on_verdict(int from, Reader& reader) {
  SINTRA_REQUIRE(from == me(), "cbc: verdict from another party");
  const int attempt = static_cast<int>(reader.u32());
  auto bad_units = reader.vec<std::uint32_t>([](Reader& r) { return r.u32(); });
  const bool ok = reader.u8() == 1;
  std::optional<crypto::BigInt> certificate;
  if (ok) certificate = crypto::BigInt::decode(reader);
  reader.expect_done();
  // Idempotent against WAL-replayed duplicates.
  if (!combine_inflight_ || attempt != combine_attempt_ || finalized_) return;
  combine_inflight_ = false;
  const auto& pk = host_.public_keys().cert_sig;
  crypto::PartySet culprits = 0;
  for (std::uint32_t unit : bad_units) {
    SINTRA_REQUIRE(static_cast<int>(unit) < pk.scheme().num_units(),
                   "cbc: verdict unit out of range");
    culprits |= crypto::party_bit(pk.scheme().unit_owner(static_cast<int>(unit)));
  }
  if (culprits != 0) {
    suspected_ |= culprits;
    share_rejected_ |= culprits;
    share_owners_ &= ~culprits;
    std::erase_if(shares_, [&](const crypto::SigShare& s) {
      return (culprits & crypto::party_bit(pk.scheme().unit_owner(s.unit))) != 0;
    });
    host_.trace("cbc", tag_ + " rejected invalid signature shares (suspects fingered)");
  }
  if (!ok) {
    maybe_combine();  // remaining honest shares may still form a quorum
    return;
  }
  finalized_ = true;
  Writer w;
  w.u8(kFinal);
  CertifiedMessage cm{my_message_, *certificate};
  cm.encode(w);
  broadcast(w.take());
}

}  // namespace sintra::protocols
