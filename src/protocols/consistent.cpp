#include "protocols/consistent.hpp"

#include "crypto/sha256.hpp"

namespace sintra::protocols {

Bytes consistent_statement(const std::string& tag, BytesView message) {
  Writer w;
  w.str("sintra/cbc");
  w.str(tag);
  auto digest = crypto::hash_domain("sintra/cbc/digest", message);
  w.raw(BytesView(digest.data(), digest.size()));
  return w.take();
}

bool verify_certificate(const crypto::ThresholdSigPublicKey& pk, const std::string& tag,
                        const CertifiedMessage& cm) {
  return pk.verify(consistent_statement(tag, cm.message), cm.certificate);
}

void CertifiedMessage::encode(Writer& w) const {
  w.bytes(message);
  certificate.encode(w);
}

CertifiedMessage CertifiedMessage::decode(Reader& r) {
  CertifiedMessage cm;
  cm.message = r.bytes();
  cm.certificate = crypto::BigInt::decode(r);
  return cm;
}

ConsistentBroadcast::ConsistentBroadcast(net::Party& host, std::string tag, int sender,
                                         DeliverFn deliver)
    : ProtocolInstance(host, std::move(tag)), sender_(sender), deliver_(std::move(deliver)) {}

void ConsistentBroadcast::start(Bytes message) {
  SINTRA_REQUIRE(me() == sender_, "cbc: only the designated sender may start");
  if (started_) {
    // At-least-once re-entry: re-broadcast the same SEND (receivers sign
    // only once); a different message would break uniqueness — reject.
    SINTRA_REQUIRE(message == my_message_, "cbc: conflicting re-start");
  } else {
    started_ = true;
    my_message_ = std::move(message);
  }
  Writer w;
  w.u8(kSend);
  w.bytes(my_message_);
  broadcast(w.take());
}

void ConsistentBroadcast::handle(int from, Reader& reader) {
  const std::uint8_t type = reader.u8();
  switch (type) {
    case kSend: {
      SINTRA_REQUIRE(from == sender_, "cbc: SEND from non-sender");
      Bytes message = reader.bytes();
      reader.expect_done();
      if (signed_) break;  // sign only the first message per instance
      signed_ = true;
      const Bytes statement = consistent_statement(tag_, message);
      Writer w;
      w.u8(kShare);
      auto shares = host_.keys().cert_sig.sign(host_.public_keys().cert_sig, statement,
                                               host_.rng());
      w.vec(shares, [](Writer& wr, const crypto::SigShare& s) { s.encode(wr); });
      send(sender_, w.take());
      break;
    }
    case kShare: {
      if (me() != sender_ || finalized_) break;
      // One share message per party: a duplicated/replayed copy must not
      // append its shares again (combine expects distinct units).
      if (share_owners_ & crypto::party_bit(from)) break;
      auto incoming = reader.vec<crypto::SigShare>(
          [](Reader& r) { return crypto::SigShare::decode(r); });
      reader.expect_done();
      const Bytes statement = consistent_statement(tag_, my_message_);
      const auto& pk = host_.public_keys().cert_sig;
      for (auto& share : incoming) {
        SINTRA_REQUIRE(pk.scheme().unit_owner(share.unit) == from, "cbc: share unit not owned");
        SINTRA_REQUIRE(pk.verify_share(statement, share), "cbc: invalid signature share");
        shares_.push_back(std::move(share));
      }
      share_owners_ |= crypto::party_bit(from);
      if (quorum().is_quorum(share_owners_)) {
        auto certificate = pk.combine(statement, shares_);
        SINTRA_INVARIANT(certificate.has_value(), "cbc: combine failed on verified quorum");
        finalized_ = true;
        Writer w;
        w.u8(kFinal);
        CertifiedMessage cm{my_message_, *certificate};
        cm.encode(w);
        broadcast(w.take());
      }
      break;
    }
    case kFinal: {
      CertifiedMessage cm = CertifiedMessage::decode(reader);
      reader.expect_done();
      SINTRA_REQUIRE(verify_certificate(host_.public_keys().cert_sig, tag_, cm),
                     "cbc: bad certificate");
      if (delivered_) break;
      delivered_ = true;
      host_.trace("cbc", tag_ + " delivered");
      deliver_(std::move(cm));
      break;
    }
    default:
      throw ProtocolError("cbc: unknown message type");
  }
}

}  // namespace sintra::protocols
