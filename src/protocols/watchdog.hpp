// Per-instance liveness watchdog (issue 4).
//
// Detects a stalled protocol instance — no observable progress for a full
// timeout — and triggers a protocol-specific recovery action (state-summary
// retransmission for RBC/ABBA, a view-change vote for PbftLike).  Time is
// the host Network's notion: delivery steps under the deterministic
// simulator (where timers model a failure detector and only fire once the
// network has quiesced), milliseconds over the real transport's TimerWheel.
//
// The watchdog never decides anything itself; recovery must be a safe,
// idempotent action (rebroadcasting already-sent messages, voting for the
// next view) so that a *false* stall detection costs bandwidth, not
// correctness.  Recoveries are capped: an instance that cannot be revived
// (e.g. too many peers are really gone) stops burning timers instead of
// spinning the scheduler forever.
//
// Timeout growth follows CL99's failure-detector discipline: every
// fruitless recovery doubles the next timeout (capped at 64x base) so a
// genuinely slow configuration stops thrashing, and the growth resets the
// moment progress is observed — either lazily at the next timer fire, or
// eagerly when the instance calls note_progress() — so one historic stall
// does not leave the detector permanently desensitised (issue 8).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "net/party.hpp"

namespace sintra::protocols {

class StallWatchdog {
 public:
  explicit StallWatchdog(net::Party& host) : host_(host) {}
  ~StallWatchdog() { disarm(); }

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Arm (or re-arm with new callbacks).  `done` stops the watchdog for
  /// good; `progress` returns a counter that changes whenever the instance
  /// observably advances (messages absorbed, rounds entered) — a stall is
  /// "the counter did not move for a whole timeout"; `recover` fires on a
  /// stall and must be idempotent.
  void arm(std::uint64_t timeout, std::function<bool()> done,
           std::function<std::uint64_t()> progress, std::function<void()> recover) {
    disarm();
    timeout_ = timeout;
    backoff_ = 0;
    done_ = std::move(done);
    progress_ = std::move(progress);
    recover_ = std::move(recover);
    last_progress_ = progress_();
    schedule();
  }

  void disarm() {
    if (armed_) {
      host_.cancel_timer(timer_);
      armed_ = false;
    }
  }

  /// Eager reset: the instance observed progress right now.  If the
  /// timeout had grown from earlier stalls, snap back to the base timeout
  /// immediately instead of waiting out the inflated timer (a no-op in the
  /// common never-stalled case, so callers may invoke it on every event).
  void note_progress() {
    if (!armed_ || backoff_ == 0) return;
    backoff_ = 0;
    last_progress_ = progress_();
    host_.cancel_timer(timer_);
    schedule();
  }

  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  /// Consecutive fruitless recoveries since progress (test visibility).
  [[nodiscard]] std::uint32_t backoff() const { return backoff_; }
  /// The delay the next (or pending) timer was armed with.
  [[nodiscard]] std::uint64_t current_timeout() const {
    return timeout_ << std::min(backoff_, std::uint32_t{6});
  }

 private:
  static constexpr std::uint64_t kMaxRecoveries = 32;

  void schedule() {
    timer_ = host_.schedule_timer(current_timeout(), [this] {
      armed_ = false;
      if (done_()) return;
      const std::uint64_t now = progress_();
      if (now == last_progress_) {
        if (recoveries_ >= kMaxRecoveries) return;
        ++recoveries_;
        ++backoff_;
        recover_();
      } else {
        backoff_ = 0;  // progress: trust the base timeout again
      }
      last_progress_ = progress_();
      schedule();
    });
    armed_ = true;
  }

  net::Party& host_;
  std::uint64_t timeout_ = 0;
  std::function<bool()> done_;
  std::function<std::uint64_t()> progress_;
  std::function<void()> recover_;
  std::uint64_t last_progress_ = 0;
  bool armed_ = false;
  net::Network::TimerId timer_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint32_t backoff_ = 0;  ///< fruitless recoveries since progress
};

}  // namespace sintra::protocols
