#include "protocols/optimistic.hpp"

#include "crypto/batch.hpp"
#include "crypto/sha256.hpp"

namespace sintra::protocols {

using crypto::BigInt;
using crypto::SigShare;

namespace {
Bytes payload_digest(BytesView payload) {
  auto d = crypto::hash_domain("sintra/opt/payload", payload);
  return Bytes(d.begin(), d.end());
}
}  // namespace

OptimisticBroadcast::OptimisticBroadcast(net::Party& host, std::string tag, int sequencer,
                                         DeliverFn deliver)
    : ProtocolInstance(host, std::move(tag)), sequencer_(sequencer),
      deliver_(std::move(deliver)) {
  auto genesis = crypto::hash_domain("sintra/opt/genesis", bytes_of(tag_));
  sign_chain_ = Bytes(genesis.begin(), genesis.end());
  commit_chain_ = sign_chain_;
}

Bytes OptimisticBroadcast::chain_after(std::uint64_t seq, BytesView payload,
                                       BytesView prev_chain) const {
  Writer w;
  w.raw(prev_chain);
  w.u64(seq);
  w.bytes(payload);
  auto d = crypto::hash_domain("sintra/opt/chain", w.data());
  return Bytes(d.begin(), d.end());
}

Bytes OptimisticBroadcast::slot_statement(std::uint64_t seq, BytesView chain) const {
  Writer w;
  w.str("sintra/opt/slot");
  w.str(tag_);
  w.u64(seq);
  w.raw(chain);
  return w.take();
}

Bytes OptimisticBroadcast::claim_statement(BytesView claim_body) const {
  Writer w;
  w.str("sintra/opt/claim");
  w.str(tag_);
  auto d = crypto::hash_domain("sintra/opt/claimbody", claim_body);
  w.raw(BytesView(d.data(), d.size()));
  return w.take();
}

void OptimisticBroadcast::submit(Bytes payload) {
  pending_.push_back(payload);
  if (pessimistic_) {
    fallback_->submit(std::move(payload));
    return;
  }
  if (switching_) return;  // buffered in pending_, resubmitted after the switch
  if (me() == sequencer_) {
    Writer w;
    w.u8(kAssign);
    w.u64(next_assign_++);
    w.bytes(payload);
    broadcast(w.take());
  } else {
    Writer w;
    w.u8(kAssign);  // forward to the sequencer for assignment
    w.u64(~std::uint64_t{0});
    w.bytes(payload);
    send(sequencer_, w.take());
  }
}

void OptimisticBroadcast::handle(int from, Reader& reader) {
  const std::uint8_t type = reader.u8();
  switch (type) {
    case kAssign: return on_assign(from, reader);
    case kShare: return on_share(from, reader);
    case kShareVerdict: return on_share_verdict(from, reader);
    case kCommit: return on_commit(from, reader);
    case kAck: return on_ack(from, reader);
    case kSwitch: {
      reader.expect_done();
      return on_switch(from);
    }
    case kClaim: return on_claim(from, reader);
    default: throw ProtocolError("opt: unknown message type");
  }
}

void OptimisticBroadcast::on_assign(int from, Reader& reader) {
  const std::uint64_t seq = reader.u64();
  Bytes payload = reader.bytes();
  reader.expect_done();
  if (seq == ~std::uint64_t{0}) {
    // A forwarded client payload; only the sequencer assigns.
    if (me() == sequencer_ && !switching_ && !pessimistic_) {
      Writer w;
      w.u8(kAssign);
      w.u64(next_assign_++);
      w.bytes(payload);
      broadcast(w.take());
    }
    return;
  }
  SINTRA_REQUIRE(from == sequencer_, "opt: ASSIGN from non-sequencer");
  SINTRA_REQUIRE(seq < 1 << 24, "opt: implausible sequence");
  if (switching_ || pessimistic_) return;  // we stopped signing
  if (seq < sign_cursor_ || assign_queue_.contains(seq)) return;
  assign_queue_.emplace(seq, std::move(payload));
  process_assign_queue();
}

void OptimisticBroadcast::process_assign_queue() {
  const auto& cert_pk = host_.public_keys().cert_sig;
  while (true) {
    auto it = assign_queue_.find(sign_cursor_);
    if (it == assign_queue_.end()) return;
    const std::uint64_t seq = sign_cursor_;
    Bytes payload = std::move(it->second);
    assign_queue_.erase(it);
    sign_chain_ = chain_after(seq, payload, sign_chain_);
    ++sign_cursor_;
    const Bytes statement = slot_statement(seq, sign_chain_);
    if (me() == sequencer_) {
      // Record the canonical payload/statement so incoming shares for this
      // slot can be verified and combined.
      Slot& slot = slots_[seq];
      slot.payload = std::move(payload);
      slot.statement = statement;
    }
    auto shares = host_.keys().cert_sig.sign(cert_pk, statement, host_.rng());
    Writer w;
    w.u8(kShare);
    w.u64(seq);
    w.vec(shares, [](Writer& wr, const SigShare& s) { s.encode(wr); });
    send(sequencer_, w.take());
  }
}

void OptimisticBroadcast::on_share(int from, Reader& reader) {
  if (me() != sequencer_) return;
  const std::uint64_t seq = reader.u64();
  auto shares = reader.vec<SigShare>([](Reader& r) { return SigShare::decode(r); });
  reader.expect_done();
  SINTRA_REQUIRE(seq < next_assign_, "opt: share for unassigned slot");
  Slot& slot = slots_[seq];
  if (slot.commit_sent || slot.statement.empty() ||
      crypto::contains(slot.share_from | slot.share_rejected, from)) {
    return;
  }
  // Structural admission only: the sequencer combines an unverified quorum
  // optimistically and checks the one combined certificate off the event
  // loop, so the fast path never verifies an individual share.
  const auto& cert_pk = host_.public_keys().cert_sig;
  for (const SigShare& share : shares) {
    SINTRA_REQUIRE(cert_pk.scheme().unit_owner(share.unit) == from,
                   "opt: share unit not owned by sender");
  }
  slot.share_from |= crypto::party_bit(from);
  for (const SigShare& share : shares) slot.shares.push_back(share);
  maybe_commit_slot(seq);
}

void OptimisticBroadcast::maybe_commit_slot(std::uint64_t seq) {
  Slot& slot = slots_[seq];
  if (slot.commit_sent || slot.share_inflight || slot.statement.empty()) return;
  if (!quorum().is_quorum(slot.share_from)) return;
  slot.share_inflight = true;
  const int attempt = ++slot.share_attempt;
  const std::uint64_t seed = host_.rng().next();  // weight seed drawn on the loop thread
  const auto& cert_pk = host_.public_keys().cert_sig;
  host_.offload(tag_, [&cert_pk, stmt = slot.statement, shares = slot.shares, seq, attempt,
                       seed]() -> Bytes {
    Rng rng(seed);
    auto result = crypto::batch::combine_sig_optimistic(cert_pk, stmt, shares, rng);
    Writer w;
    w.u8(kShareVerdict);
    w.u64(seq);
    w.u32(static_cast<std::uint32_t>(attempt));
    w.vec(result.bad, [&](Writer& wr, const std::size_t& i) {
      wr.u32(static_cast<std::uint32_t>(shares[i].unit));
    });
    if (result.signature.has_value()) {
      w.u8(1);
      result.signature->encode(w);
    } else {
      w.u8(0);
    }
    return w.take();
  });
}

void OptimisticBroadcast::on_share_verdict(int from, Reader& reader) {
  SINTRA_REQUIRE(from == me(), "opt: share verdict from another party");
  const std::uint64_t seq = reader.u64();
  const int attempt = static_cast<int>(reader.u32());
  auto bad_units = reader.vec<std::uint32_t>([](Reader& r) { return r.u32(); });
  const bool ok = reader.u8() == 1;
  std::optional<BigInt> certificate;
  if (ok) certificate = BigInt::decode(reader);
  reader.expect_done();
  SINTRA_REQUIRE(seq < 1 << 24, "opt: implausible verdict sequence");
  Slot& slot = slots_[seq];
  // Idempotent against WAL-replayed duplicates.
  if (!slot.share_inflight || attempt != slot.share_attempt || slot.commit_sent) return;
  slot.share_inflight = false;
  const auto& cert_pk = host_.public_keys().cert_sig;
  crypto::PartySet culprits = 0;
  for (std::uint32_t unit : bad_units) {
    SINTRA_REQUIRE(static_cast<int>(unit) < cert_pk.scheme().num_units(),
                   "opt: verdict unit out of range");
    culprits |= crypto::party_bit(cert_pk.scheme().unit_owner(static_cast<int>(unit)));
  }
  if (culprits != 0) {
    suspected_ |= culprits;
    slot.share_rejected |= culprits;
    slot.share_from &= ~culprits;
    std::erase_if(slot.shares, [&](const SigShare& s) {
      return (culprits & crypto::party_bit(cert_pk.scheme().unit_owner(s.unit))) != 0;
    });
    host_.trace("opt", tag_ + " slot " + std::to_string(seq) +
                           " rejected invalid shares (suspects fingered)");
  }
  if (!ok) {
    maybe_commit_slot(seq);  // remaining honest shares may still form a quorum
    return;
  }
  slot.commit_sent = true;
  Writer w;
  w.u8(kCommit);
  w.u64(seq);
  w.bytes(slot.payload);
  certificate->encode(w);
  broadcast(w.take());
}

void OptimisticBroadcast::on_commit(int from, Reader& reader) {
  SINTRA_REQUIRE(from == sequencer_, "opt: COMMIT from non-sequencer");
  const std::uint64_t seq = reader.u64();
  Bytes payload = reader.bytes();
  BigInt certificate = BigInt::decode(reader);
  reader.expect_done();
  SINTRA_REQUIRE(seq < 1 << 24, "opt: implausible sequence");
  if (seq < commit_cursor_) return;
  Slot& slot = slots_[seq];
  if (slot.committed) return;
  slot.payload = std::move(payload);
  slot.certificate = std::move(certificate);
  slot.committed = true;
  maybe_deliver_fast();
}

void OptimisticBroadcast::on_ack(int from, Reader& reader) {
  const std::uint64_t seq = reader.u64();
  reader.expect_done();
  SINTRA_REQUIRE(seq < 1 << 24, "opt: implausible sequence");
  Slot& slot = slots_[seq];
  slot.acks |= crypto::party_bit(from);
  maybe_deliver_fast();
}

void OptimisticBroadcast::maybe_deliver_fast() {
  const auto& cert_pk = host_.public_keys().cert_sig;
  while (true) {
    auto it = slots_.find(commit_cursor_);
    if (it == slots_.end() || !it->second.committed) break;
    Slot& slot = it->second;
    // Verify the certificate against our committed chain extension.
    Bytes next_chain = chain_after(commit_cursor_, slot.payload, commit_chain_);
    if (!cert_pk.verify(slot_statement(commit_cursor_, next_chain), slot.certificate)) {
      slot.committed = false;  // forged commit; ignore it
      break;
    }
    commit_chain_ = std::move(next_chain);
    ++commit_cursor_;
    if (!slot.acked) {
      slot.acked = true;
      Writer w;
      w.u8(kAck);
      w.u64(commit_cursor_ - 1);
      broadcast(w.take());
    }
  }
  // Deliver stable slots in order: committed locally + acked by a vote
  // quorum (so a fault-set-exceeding set of honest parties can always
  // produce the certificate during a switch).
  while (true) {
    auto it = slots_.find(deliver_cursor_);
    if (it == slots_.end() || deliver_cursor_ >= commit_cursor_) break;
    Slot& slot = it->second;
    if (!quorum().is_vote_quorum(slot.acks)) break;
    slot.delivered = true;
    ++deliver_cursor_;
    deliver_payload(slot.payload);
  }
}

void OptimisticBroadcast::deliver_payload(Bytes payload) {
  Bytes digest = payload_digest(payload);
  if (delivered_digests_.contains(digest)) return;
  delivered_digests_.insert(std::move(digest));
  ++delivered_count_;
  std::erase_if(pending_, [&](const Bytes& p) { return p == payload; });
  deliver_(std::move(payload));
}

// ---- switch -----------------------------------------------------------------

void OptimisticBroadcast::switch_to_pessimistic() {
  if (switching_ || pessimistic_) return;
  Writer w;
  w.u8(kSwitch);
  broadcast(w.take());
}

void OptimisticBroadcast::on_switch(int from) {
  (void)from;
  if (switching_ || pessimistic_) return;
  switching_ = true;
  host_.trace("opt", tag_ + " switching to pessimistic mode");
  // Relay so every honest party joins even if the signal came from one
  // place, then publish our longest certified chain.
  Writer w;
  w.u8(kSwitch);
  broadcast(w.take());
  broadcast_claim();
  switch_vba_ = std::make_unique<Vba>(
      host_, tag_ + "/switch",
      [this](BytesView value) { return validate_switch_set(value); },
      [this](Bytes value) { on_switch_set_decided(value); });
  maybe_propose_switch_set();
}

Bytes OptimisticBroadcast::my_claim_body() const {
  // Claim body: L, payloads[0..L-1], certificate for slot L-1 (absent for
  // L = 0).  Our longest certified chain is commit_cursor_ slots long.
  Writer w;
  w.u64(commit_cursor_);
  for (std::uint64_t s = 0; s < commit_cursor_; ++s) {
    w.bytes(slots_.at(s).payload);
  }
  if (commit_cursor_ > 0) slots_.at(commit_cursor_ - 1).certificate.encode(w);
  return w.take();
}

void OptimisticBroadcast::broadcast_claim() {
  Bytes body = my_claim_body();
  auto shares = host_.keys().cert_sig.sign(host_.public_keys().cert_sig,
                                           claim_statement(body), host_.rng());
  Writer w;
  w.u8(kClaim);
  w.bytes(body);
  w.vec(shares, [](Writer& wr, const SigShare& s) { s.encode(wr); });
  broadcast(w.take());
}

bool OptimisticBroadcast::validate_claim(BytesView claim_body, int claimant,
                                         const std::vector<SigShare>& shares,
                                         std::vector<Bytes>* payloads_out) const {
  const auto& cert_pk = host_.public_keys().cert_sig;
  try {
    // Claimant signature over the body: one batched check for the vector.
    if (shares.empty()) return false;
    const Bytes stmt = claim_statement(claim_body);
    for (const SigShare& share : shares) {
      if (cert_pk.scheme().unit_owner(share.unit) != claimant) return false;
    }
    if (!crypto::batch::verify_sig_shares(cert_pk, stmt, shares, host_.rng())) return false;
    // Chain integrity + certificate.
    Reader r(claim_body);
    const std::uint64_t length = r.u64();
    if (length > 1 << 24) return false;
    auto genesis = crypto::hash_domain("sintra/opt/genesis", bytes_of(tag_));
    Bytes chain(genesis.begin(), genesis.end());
    std::vector<Bytes> payloads;
    for (std::uint64_t s = 0; s < length; ++s) {
      Bytes payload = r.bytes();
      chain = chain_after(s, payload, chain);
      payloads.push_back(std::move(payload));
    }
    if (length > 0) {
      BigInt certificate = BigInt::decode(r);
      if (!cert_pk.verify(slot_statement(length - 1, chain), certificate)) return false;
    }
    r.expect_done();
    if (payloads_out != nullptr) *payloads_out = std::move(payloads);
    return true;
  } catch (const ProtocolError&) {
    return false;
  }
}

void OptimisticBroadcast::on_claim(int from, Reader& reader) {
  Bytes body = reader.bytes();
  auto shares = reader.vec<SigShare>([](Reader& r) { return SigShare::decode(r); });
  reader.expect_done();
  if (!switching_ && !pessimistic_) {
    // A claim implies somebody is switching; join.
    on_switch(from);
  }
  if (crypto::contains(claims_from_, from) || proposed_switch_set_) return;
  if (!validate_claim(body, from, shares, nullptr)) return;
  claims_from_ |= crypto::party_bit(from);
  Writer w;
  w.u32(static_cast<std::uint32_t>(from));
  w.bytes(body);
  w.vec(shares, [](Writer& wr, const SigShare& s) { s.encode(wr); });
  claim_records_.push_back(w.take());
  maybe_propose_switch_set();
}

void OptimisticBroadcast::maybe_propose_switch_set() {
  if (proposed_switch_set_ || switch_vba_ == nullptr) return;
  if (!quorum().is_quorum(claims_from_)) return;
  proposed_switch_set_ = true;
  Writer w;
  w.vec(claim_records_, [](Writer& wr, const Bytes& record) { wr.bytes(record); });
  switch_vba_->propose(w.take());
}

bool OptimisticBroadcast::validate_switch_set(BytesView value) const {
  try {
    Reader reader(value);
    auto records = reader.vec<Bytes>([](Reader& r) { return r.bytes(); });
    reader.expect_done();
    crypto::PartySet claimants = 0;
    for (const Bytes& record : records) {
      Reader rr(record);
      const int claimant = static_cast<int>(rr.u32());
      if (claimant < 0 || claimant >= host_.n()) return false;
      if (crypto::contains(claimants, claimant)) return false;
      Bytes body = rr.bytes();
      auto shares = rr.vec<SigShare>([](Reader& r) { return SigShare::decode(r); });
      rr.expect_done();
      if (!validate_claim(body, claimant, shares, nullptr)) return false;
      claimants |= crypto::party_bit(claimant);
    }
    return quorum().is_quorum(claimants);
  } catch (const ProtocolError&) {
    return false;
  }
}

void OptimisticBroadcast::on_switch_set_decided(const Bytes& value) {
  // Adopt the longest certified chain in the decided claim set.  The ACK
  // delivery rule guarantees it extends every honest fast delivery; chain
  // certificates make all claims mutually prefix-consistent.
  Reader reader(value);
  auto records = reader.vec<Bytes>([](Reader& r) { return r.bytes(); });
  std::vector<Bytes> best_payloads;
  for (const Bytes& record : records) {
    Reader rr(record);
    const int claimant = static_cast<int>(rr.u32());
    Bytes body = rr.bytes();
    auto shares = rr.vec<SigShare>([](Reader& r) { return SigShare::decode(r); });
    std::vector<Bytes> payloads;
    if (!validate_claim(body, claimant, shares, &payloads)) continue;  // cannot happen (Q)
    if (payloads.size() > best_payloads.size()) best_payloads = std::move(payloads);
  }
  host_.trace("opt", tag_ + " adopted fast prefix of " +
                         std::to_string(best_payloads.size()) + " slots");
  for (Bytes& payload : best_payloads) deliver_payload(std::move(payload));

  pessimistic_ = true;
  switching_ = false;
  fallback_ = std::make_unique<AtomicBroadcast>(
      host_, tag_ + "/fallback", [this](int, Bytes payload) {
        deliver_payload(std::move(payload));
      });
  for (const Bytes& payload : pending_) fallback_->submit(payload);
}

}  // namespace sintra::protocols
