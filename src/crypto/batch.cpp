#include "crypto/batch.hpp"

#include "common/assert.hpp"

namespace sintra::crypto::batch {

namespace {

// Weight length of the small-exponent test.  For the prime-order group the
// acceptance probability of a bad batch is 2^-min(ell, |q|).  For Z_Nm* the
// weights must stay below the prime factors of |QR_Nm| = p'q' so that they
// are invertible mod the (secret) group order; p' and q' are at least
// 127 bits for the smallest supported modulus, so 112-bit weights are safe
// and give 2^-112 soundness per batch attempt.
constexpr std::size_t kGroupWeightBits = 128;
constexpr std::size_t kRsaWeightBits = 112;

/// One prepared verification equation over batch-shared bases (g1, g2):
///   g1^z == a1 * h1^c   and   g2^z == a2 * h2^c.
/// `ok` is false when the item failed its structural pre-checks (range,
/// subgroup membership) and can never verify.
struct DleqEquation {
  bool ok = false;
  Element h1;
  Element h2;
  Element a1;
  Element a2;
  BigInt c;
  BigInt z;
};

bool check_dleq_equations(const Group& group, const Element& g1, const Element& g2,
                          const std::vector<const DleqEquation*>& eqs, Rng& rng) {
  for (const DleqEquation* eq : eqs) {
    if (!eq->ok) return false;
  }
  if (eqs.empty()) return true;
  // Random linear combination with independent weights per equation:
  //   g1^{sum z r} * g2^{sum z r'}
  //     == prod a1^{r} * h1^{c r} * a2^{r'} * h2^{c r'}
  BigInt lhs1(0);
  BigInt lhs2(0);
  std::vector<std::pair<Element, BigInt>> rhs;
  rhs.reserve(4 * eqs.size());
  for (const DleqEquation* eq : eqs) {
    const BigInt r = BigInt::random_bits(rng, kGroupWeightBits);
    const BigInt r2 = BigInt::random_bits(rng, kGroupWeightBits);
    lhs1 = group.scalar_add(lhs1, group.scalar_mul(eq->z, r));
    lhs2 = group.scalar_add(lhs2, group.scalar_mul(eq->z, r2));
    rhs.emplace_back(eq->a1, r);
    rhs.emplace_back(eq->h1, group.scalar_mul(eq->c, r));
    rhs.emplace_back(eq->a2, r2);
    rhs.emplace_back(eq->h2, group.scalar_mul(eq->c, r2));
  }
  return group.exp2(g1, lhs1, g2, lhs2) == group.multi_exp(rhs);
}

/// One prepared Schnorr equation over the batch-shared base g:
///   g^z == a * h^c.
struct SchnorrEquation {
  bool ok = false;
  Element h;
  Element a;
  BigInt c;
  BigInt z;
};

bool check_schnorr_equations(const Group& group, const Element& g,
                             const std::vector<const SchnorrEquation*>& eqs, Rng& rng) {
  for (const SchnorrEquation* eq : eqs) {
    if (!eq->ok) return false;
  }
  if (eqs.empty()) return true;
  BigInt lhs(0);
  std::vector<std::pair<Element, BigInt>> rhs;
  rhs.reserve(2 * eqs.size());
  for (const SchnorrEquation* eq : eqs) {
    const BigInt r = BigInt::random_bits(rng, kGroupWeightBits);
    lhs = group.scalar_add(lhs, group.scalar_mul(eq->z, r));
    rhs.emplace_back(eq->a, r);
    rhs.emplace_back(eq->h, group.scalar_mul(eq->c, r));
  }
  return group.exp(g, lhs) == group.multi_exp(rhs);
}

/// Recursive bisection: ranges that batch-verify are clean; single-proof
/// leaves fall back to the strict individual verifier (which also rules on
/// proofs whose commitments sit outside the order-q subgroup — the batch
/// equation tolerates those with probability 1/cofactor, strictness
/// doesn't).
template <typename BatchOk, typename StrictOk>
void bisect(std::size_t lo, std::size_t hi, const BatchOk& batch_ok, const StrictOk& strict_ok,
            std::vector<std::size_t>& out) {
  if (lo >= hi) return;
  if (hi - lo == 1) {
    if (!strict_ok(lo)) out.push_back(lo);
    return;
  }
  if (batch_ok(lo, hi)) return;
  const std::size_t mid = lo + (hi - lo) / 2;
  bisect(lo, mid, batch_ok, strict_ok, out);
  bisect(mid, hi, batch_ok, strict_ok, out);
}

template <typename Equation, typename CheckFn, typename StrictOk>
std::vector<std::size_t> find_invalid_generic(const std::vector<Equation>& eqs,
                                              const CheckFn& check, const StrictOk& strict_ok) {
  std::vector<std::size_t> bad;
  const auto batch_ok = [&](std::size_t lo, std::size_t hi) {
    std::vector<const Equation*> range;
    range.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) range.push_back(&eqs[i]);
    return check(range);
  };
  bisect(0, eqs.size(), batch_ok, strict_ok, bad);
  return bad;
}

std::vector<const DleqEquation*> all_of(const std::vector<DleqEquation>& eqs) {
  std::vector<const DleqEquation*> out;
  out.reserve(eqs.size());
  for (const DleqEquation& eq : eqs) out.push_back(&eq);
  return out;
}

DleqEquation prepare_dleq(const Group& group, std::string_view context, const Element& g1,
                          const Element& h1, const Element& g2, const Element& h2,
                          const DleqProof& proof) {
  DleqEquation eq;
  if (!group.is_scalar(proof.z)) return eq;
  if (!group.is_residue(proof.a1) || !group.is_residue(proof.a2)) return eq;
  if (!group.is_element(h1) || !group.is_element(h2)) return eq;
  eq.ok = true;
  eq.h1 = h1;
  eq.h2 = h2;
  eq.a1 = proof.a1;
  eq.a2 = proof.a2;
  eq.c = dleq_challenge(group, context, g1, h1, g2, h2, proof.a1, proof.a2);
  eq.z = proof.z;
  return eq;
}

std::vector<DleqEquation> prepare_coin(const CoinPublicKey& pk, const Element& base,
                                       const std::vector<CoinShare>& shares) {
  const Group& group = pk.group();
  std::vector<DleqEquation> eqs;
  eqs.reserve(shares.size());
  for (const CoinShare& share : shares) {
    if (share.unit < 0 || share.unit >= pk.scheme().num_units()) {
      eqs.emplace_back();
      continue;
    }
    eqs.push_back(prepare_dleq(group, coin_share_context(share.unit), group.g(),
                               pk.verification(share.unit), base, share.value, share.proof));
  }
  return eqs;
}

std::vector<DleqEquation> prepare_dec(const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct,
                                      const std::vector<Tdh2DecShare>& shares) {
  const Group& group = pk.group();
  const Bytes ct_id = ct.id(group);
  std::vector<DleqEquation> eqs;
  eqs.reserve(shares.size());
  for (const Tdh2DecShare& share : shares) {
    if (share.unit < 0 || share.unit >= pk.scheme().num_units()) {
      eqs.emplace_back();
      continue;
    }
    eqs.push_back(prepare_dleq(group, tdh2_share_context(share.unit, ct_id), group.g(),
                               pk.verification(share.unit), ct.u, share.value, share.proof));
  }
  return eqs;
}

std::vector<DleqEquation> prepare_cts(const Tdh2PublicKey& pk,
                                      const std::vector<Tdh2Ciphertext>& cts) {
  const Group& group = pk.group();
  std::vector<DleqEquation> eqs;
  eqs.reserve(cts.size());
  for (const Tdh2Ciphertext& ct : cts) {
    DleqEquation eq;
    if (group.is_element(ct.u) && group.is_element(ct.u_bar) && group.is_residue(ct.w) &&
        group.is_residue(ct.w_bar) && group.is_scalar(ct.f)) {
      eq.ok = true;
      eq.h1 = ct.u;
      eq.h2 = ct.u_bar;
      eq.a1 = ct.w;
      eq.a2 = ct.w_bar;
      eq.c = tdh2_ciphertext_challenge(group, ct.data, ct.label, ct.u, ct.w, ct.u_bar, ct.w_bar);
      eq.z = ct.f;
    }
    eqs.push_back(std::move(eq));
  }
  return eqs;
}

}  // namespace

bool verify_dleq(const Group& group, const Element& g1, const Element& g2,
                 const std::vector<DleqItem>& items, Rng& rng) {
  if (items.size() == 1) {
    return items[0].proof.verify(group, items[0].context, g1, items[0].h1, g2, items[0].h2);
  }
  std::vector<DleqEquation> eqs;
  eqs.reserve(items.size());
  for (const DleqItem& item : items) {
    eqs.push_back(prepare_dleq(group, item.context, g1, item.h1, g2, item.h2, item.proof));
  }
  return check_dleq_equations(group, g1, g2, all_of(eqs), rng);
}

std::vector<std::size_t> find_invalid_dleq(const Group& group, const Element& g1, const Element& g2,
                                           const std::vector<DleqItem>& items, Rng& rng) {
  std::vector<DleqEquation> eqs;
  eqs.reserve(items.size());
  for (const DleqItem& item : items) {
    eqs.push_back(prepare_dleq(group, item.context, g1, item.h1, g2, item.h2, item.proof));
  }
  return find_invalid_generic(
      eqs,
      [&](const std::vector<const DleqEquation*>& range) {
        return check_dleq_equations(group, g1, g2, range, rng);
      },
      [&](std::size_t i) {
        return items[i].proof.verify(group, items[i].context, g1, items[i].h1, g2, items[i].h2);
      });
}

bool verify_schnorr(const Group& group, const Element& g, const std::vector<SchnorrItem>& items,
                    Rng& rng) {
  if (items.size() == 1) {
    return items[0].proof.verify(group, items[0].context, g, items[0].h);
  }
  std::vector<const SchnorrEquation*> refs;
  std::vector<SchnorrEquation> eqs;
  eqs.reserve(items.size());
  for (const SchnorrItem& item : items) {
    SchnorrEquation eq;
    if (group.is_scalar(item.proof.z) && group.is_residue(item.proof.a) &&
        group.is_element(item.h)) {
      eq.ok = true;
      eq.h = item.h;
      eq.a = item.proof.a;
      eq.c = schnorr_challenge(group, item.context, g, item.h, item.proof.a);
      eq.z = item.proof.z;
    }
    eqs.push_back(std::move(eq));
  }
  refs.reserve(eqs.size());
  for (const SchnorrEquation& eq : eqs) refs.push_back(&eq);
  return check_schnorr_equations(group, g, refs, rng);
}

std::vector<std::size_t> find_invalid_schnorr(const Group& group, const Element& g,
                                              const std::vector<SchnorrItem>& items, Rng& rng) {
  std::vector<SchnorrEquation> eqs;
  eqs.reserve(items.size());
  for (const SchnorrItem& item : items) {
    SchnorrEquation eq;
    if (group.is_scalar(item.proof.z) && group.is_residue(item.proof.a) &&
        group.is_element(item.h)) {
      eq.ok = true;
      eq.h = item.h;
      eq.a = item.proof.a;
      eq.c = schnorr_challenge(group, item.context, g, item.h, item.proof.a);
      eq.z = item.proof.z;
    }
    eqs.push_back(std::move(eq));
  }
  return find_invalid_generic(
      eqs,
      [&](const std::vector<const SchnorrEquation*>& range) {
        return check_schnorr_equations(group, g, range, rng);
      },
      [&](std::size_t i) { return items[i].proof.verify(group, items[i].context, g, items[i].h); });
}

bool verify_coin_shares(const CoinPublicKey& pk, BytesView name,
                        const std::vector<CoinShare>& shares, Rng& rng) {
  if (shares.size() == 1) return pk.verify_share(name, shares[0]);
  if (shares.empty()) return true;
  const Element base = pk.coin_base(name);
  const std::vector<DleqEquation> eqs = prepare_coin(pk, base, shares);
  return check_dleq_equations(pk.group(), pk.group().g(), base, all_of(eqs), rng);
}

std::vector<std::size_t> find_invalid_coin_shares(const CoinPublicKey& pk, BytesView name,
                                                  const std::vector<CoinShare>& shares, Rng& rng) {
  const Element base = pk.coin_base(name);
  const std::vector<DleqEquation> eqs = prepare_coin(pk, base, shares);
  return find_invalid_generic(
      eqs,
      [&](const std::vector<const DleqEquation*>& range) {
        return check_dleq_equations(pk.group(), pk.group().g(), base, range, rng);
      },
      [&](std::size_t i) { return pk.verify_share(name, shares[i]); });
}

CoinCombineResult combine_coin_optimistic(const CoinPublicKey& pk, BytesView name,
                                          const std::vector<CoinShare>& shares, Rng& rng) {
  CoinCombineResult result;
  // No cheap check exists for a combined coin value (it is just a hash of
  // the recombined group element), so the optimistic gate is the batch
  // proof check itself: one batched equation in the happy path, bisection
  // + strict re-verification only when a Byzantine share is present.
  if (verify_coin_shares(pk, name, shares, rng)) {
    result.value = pk.combine(name, shares);
    return result;
  }
  result.bad = find_invalid_coin_shares(pk, name, shares, rng);
  // Drop every share of a party that produced a bad one: the combiner
  // needs complete per-party unit sets, and a sender who faked one share
  // forfeits its others.
  PartySet bad_parties = 0;
  for (std::size_t i : result.bad) {
    const int unit = shares[i].unit;
    if (unit >= 0 && unit < pk.scheme().num_units()) {
      bad_parties |= party_bit(pk.scheme().unit_owner(unit));
    }
  }
  std::vector<CoinShare> good;
  good.reserve(shares.size());
  std::size_t next_bad = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const bool listed = next_bad < result.bad.size() && result.bad[next_bad] == i;
    if (listed) ++next_bad;
    if (listed || (bad_parties & party_bit(pk.scheme().unit_owner(shares[i].unit)))) continue;
    good.push_back(shares[i]);
  }
  if (!good.empty()) result.value = pk.combine(name, good);
  return result;
}

bool verify_dec_shares(const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct,
                       const std::vector<Tdh2DecShare>& shares, Rng& rng) {
  if (shares.size() == 1) return pk.verify_share(ct, shares[0]);
  if (shares.empty()) return true;
  const std::vector<DleqEquation> eqs = prepare_dec(pk, ct, shares);
  return check_dleq_equations(pk.group(), pk.group().g(), ct.u, all_of(eqs), rng);
}

std::vector<std::size_t> find_invalid_dec_shares(const Tdh2PublicKey& pk,
                                                 const Tdh2Ciphertext& ct,
                                                 const std::vector<Tdh2DecShare>& shares,
                                                 Rng& rng) {
  const std::vector<DleqEquation> eqs = prepare_dec(pk, ct, shares);
  return find_invalid_generic(
      eqs,
      [&](const std::vector<const DleqEquation*>& range) {
        return check_dleq_equations(pk.group(), pk.group().g(), ct.u, range, rng);
      },
      [&](std::size_t i) { return pk.verify_share(ct, shares[i]); });
}

bool verify_ciphertexts(const Tdh2PublicKey& pk, const std::vector<Tdh2Ciphertext>& cts,
                        Rng& rng) {
  if (cts.size() == 1) return pk.check_ciphertext(cts[0]);
  if (cts.empty()) return true;
  const std::vector<DleqEquation> eqs = prepare_cts(pk, cts);
  return check_dleq_equations(pk.group(), pk.group().g(), pk.g_bar(), all_of(eqs), rng);
}

std::vector<std::size_t> find_invalid_ciphertexts(const Tdh2PublicKey& pk,
                                                  const std::vector<Tdh2Ciphertext>& cts,
                                                  Rng& rng) {
  const std::vector<DleqEquation> eqs = prepare_cts(pk, cts);
  return find_invalid_generic(
      eqs,
      [&](const std::vector<const DleqEquation*>& range) {
        return check_dleq_equations(pk.group(), pk.group().g(), pk.g_bar(), range, rng);
      },
      [&](std::size_t i) { return pk.check_ciphertext(cts[i]); });
}

namespace {

/// Prepared threshold-RSA share equation:
///   v^z == a1 * v_unit^c   and   x2^z == a2 * value^c   (mod Nm)
/// kept in positive-exponent two-sided form (no inverses exist cheaply in
/// the unknown-order group).
struct SigEquation {
  bool ok = false;
  std::size_t statement = 0;  ///< index of the x^2 this share signs
  BigInt v_unit;
  BigInt value;
  BigInt a1;
  BigInt a2;
  BigInt c;
  BigInt z;
};

SigEquation prepare_sig(const ThresholdSigPublicKey& pk, const BigInt& x_squared,
                        std::size_t statement, const SigShare& share) {
  const BigInt& modulus = pk.modulus();
  SigEquation eq;
  const auto in_range = [&](const BigInt& a) {
    return !a.is_negative() && !a.is_zero() && a < modulus;
  };
  if (share.unit < 0 || share.unit >= pk.scheme().num_units()) return eq;
  if (!in_range(share.value) || !in_range(share.a1) || !in_range(share.a2)) return eq;
  if (share.response.is_negative() || share.response.to_bytes().size() > pk.response_bytes()) {
    return eq;
  }
  eq.ok = true;
  eq.statement = statement;
  eq.v_unit = pk.verification(share.unit);
  eq.value = share.value;
  eq.a1 = share.a1;
  eq.a2 = share.a2;
  eq.c = sig_share_challenge(modulus, share.unit, pk.v(), eq.v_unit, x_squared, share.value,
                             share.a1, share.a2);
  eq.z = share.response;
  return eq;
}

/// `x_squareds[s]` is the statement base of every equation with
/// .statement == s.  One shared squaring chain covers the long accumulated
/// exponents of v and each x^2; a second covers the short per-share terms.
bool check_sig_equations(const ThresholdSigPublicKey& pk, const std::vector<BigInt>& x_squareds,
                         const std::vector<const SigEquation*>& eqs, Rng& rng) {
  for (const SigEquation* eq : eqs) {
    if (!eq->ok) return false;
  }
  if (eqs.empty()) return true;
  const Montgomery& mont = pk.mont();
  BigInt acc_v(0);
  std::vector<BigInt> acc_x(x_squareds.size(), BigInt(0));
  std::vector<std::pair<BigInt, BigInt>> rhs;
  rhs.reserve(4 * eqs.size());
  for (const SigEquation* eq : eqs) {
    const BigInt r = BigInt::random_bits(rng, kRsaWeightBits);
    const BigInt r2 = BigInt::random_bits(rng, kRsaWeightBits);
    acc_v = acc_v + eq->z * r;
    acc_x[eq->statement] = acc_x[eq->statement] + eq->z * r2;
    rhs.emplace_back(eq->a1, r);
    rhs.emplace_back(eq->v_unit, eq->c * r);
    rhs.emplace_back(eq->a2, r2);
    rhs.emplace_back(eq->value, eq->c * r2);
  }
  std::vector<std::pair<BigInt, BigInt>> lhs;
  lhs.reserve(1 + x_squareds.size());
  lhs.emplace_back(pk.v(), std::move(acc_v));
  for (std::size_t s = 0; s < x_squareds.size(); ++s) {
    if (!acc_x[s].is_zero()) lhs.emplace_back(x_squareds[s], std::move(acc_x[s]));
  }
  return mont.multi_pow(lhs) == mont.multi_pow(rhs);
}

BigInt statement_base(const ThresholdSigPublicKey& pk, BytesView message) {
  const BigInt x = pk.hash_to_base(message);
  return BigInt::mul_mod(x, x, pk.modulus());
}

}  // namespace

bool verify_sig_shares(const ThresholdSigPublicKey& pk, BytesView message,
                       const std::vector<SigShare>& shares, Rng& rng) {
  if (shares.size() == 1) return pk.verify_share(message, shares[0]);
  if (shares.empty()) return true;
  const std::vector<BigInt> x_squareds = {statement_base(pk, message)};
  std::vector<SigEquation> eqs;
  eqs.reserve(shares.size());
  for (const SigShare& share : shares) eqs.push_back(prepare_sig(pk, x_squareds[0], 0, share));
  std::vector<const SigEquation*> refs;
  refs.reserve(eqs.size());
  for (const SigEquation& eq : eqs) refs.push_back(&eq);
  return check_sig_equations(pk, x_squareds, refs, rng);
}

std::vector<std::size_t> find_invalid_sig_shares(const ThresholdSigPublicKey& pk,
                                                 BytesView message,
                                                 const std::vector<SigShare>& shares, Rng& rng) {
  const std::vector<BigInt> x_squareds = {statement_base(pk, message)};
  std::vector<SigEquation> eqs;
  eqs.reserve(shares.size());
  for (const SigShare& share : shares) eqs.push_back(prepare_sig(pk, x_squareds[0], 0, share));
  return find_invalid_generic(
      eqs,
      [&](const std::vector<const SigEquation*>& range) {
        return check_sig_equations(pk, x_squareds, range, rng);
      },
      [&](std::size_t i) { return pk.verify_share(message, shares[i]); });
}

bool verify_sig_share_groups(const ThresholdSigPublicKey& pk,
                             const std::vector<SigShareGroup>& groups, Rng& rng) {
  std::vector<BigInt> x_squareds;
  x_squareds.reserve(groups.size());
  std::vector<SigEquation> eqs;
  for (std::size_t s = 0; s < groups.size(); ++s) {
    x_squareds.push_back(statement_base(pk, groups[s].message));
    for (const SigShare& share : groups[s].shares) {
      eqs.push_back(prepare_sig(pk, x_squareds[s], s, share));
    }
  }
  std::vector<const SigEquation*> refs;
  refs.reserve(eqs.size());
  for (const SigEquation& eq : eqs) refs.push_back(&eq);
  return check_sig_equations(pk, x_squareds, refs, rng);
}

SigCombineResult combine_sig_optimistic(const ThresholdSigPublicKey& pk, BytesView message,
                                        const std::vector<SigShare>& shares, Rng& rng) {
  SigCombineResult result;
  // Combining is cheap relative to verifying shares (Lagrange-in-the-
  // exponent plus one e = 65537 check), so try the unverified set first.
  result.signature = pk.combine(message, shares);
  if (result.signature) return result;
  result.bad = find_invalid_sig_shares(pk, message, shares, rng);
  if (result.bad.empty()) return result;  // unqualified set, nothing to blame
  // Drop every share of a party that produced a bad one (the combiner
  // needs complete per-party unit sets).
  PartySet bad_parties = 0;
  for (std::size_t i : result.bad) {
    const int unit = shares[i].unit;
    if (unit >= 0 && unit < pk.scheme().num_units()) {
      bad_parties |= party_bit(pk.scheme().unit_owner(unit));
    }
  }
  std::vector<SigShare> good;
  good.reserve(shares.size());
  std::size_t next_bad = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const bool listed = next_bad < result.bad.size() && result.bad[next_bad] == i;
    if (listed) ++next_bad;
    if (listed || (bad_parties & party_bit(pk.scheme().unit_owner(shares[i].unit)))) continue;
    good.push_back(shares[i]);
  }
  if (!good.empty()) result.signature = pk.combine(message, good);
  return result;
}

}  // namespace sintra::crypto::batch
