// Threshold coin-tossing scheme of Cachin, Kursawe & Shoup (PODC 2000).
//
// The unpredictable common coin is the randomization source of the ABBA
// Byzantine-agreement protocol (protocols/abba.*): one dealt key yields an
// arbitrary number of coins, one per "name" (protocol instance + round).
//
// Construction (Diffie–Hellman based, random-oracle model):
//   dealer:   secret x in Z_q shared linearly; public V_j = g^{x_j} per unit.
//   share:    for coin name N, unit j reveals sigma_j = Htilde(N)^{x_j}
//             plus a Chaum–Pedersen proof that log_g V_j = log_{Htilde(N)} sigma_j.
//   combine:  any qualified set recombines in the exponent to
//             sigma = Htilde(N)^x; the coin value is a hash of sigma.
//
// Unpredictability: before some honest party releases a share, the
// adversary's view is independent of the coin (DDH + ROM); robustness: bad
// shares fail proof verification and are discarded.
#pragma once

#include <optional>

#include "crypto/group.hpp"
#include "crypto/nizk.hpp"
#include "crypto/sharing.hpp"

namespace sintra::crypto {

class CoinPublicKey;

/// DLEQ context string for a coin share (exposed for crypto/batch.hpp).
std::string coin_share_context(int unit);

/// One unit's coin share for a particular name, with its validity proof.
struct CoinShare {
  int unit = 0;
  Element value;     ///< Htilde(N)^{x_unit}
  DleqProof proof;

  void encode(Writer& w, const Group& group) const;
  static CoinShare decode(Reader& r, const Group& group);
};

/// A party's secret key: its units' exponent shares.
class CoinSecretKey {
 public:
  CoinSecretKey(int party, std::map<int, BigInt> unit_shares)
      : party_(party), unit_shares_(std::move(unit_shares)) {}

  [[nodiscard]] int party() const { return party_; }
  /// Exposed for the proactive-refresh extension (protocols/refresh.hpp).
  [[nodiscard]] const std::map<int, BigInt>& unit_shares() const { return unit_shares_; }

  /// Produce shares (one per held unit) for coin `name`.
  [[nodiscard]] std::vector<CoinShare> share(const CoinPublicKey& pk, BytesView name,
                                             Rng& rng) const;

 private:
  int party_;
  std::map<int, BigInt> unit_shares_;  ///< unit -> x_unit
};

/// Public key: per-unit verification values + the sharing scheme.
class CoinPublicKey {
 public:
  CoinPublicKey(GroupPtr group, std::shared_ptr<const LinearScheme> scheme,
                std::vector<Element> verification)
      : group_(std::move(group)), scheme_(std::move(scheme)),
        verification_(std::move(verification)) {
    // Every share verification exponentiates a unit's verification key (the
    // DLEQ equation g^z * vk^{-c}); registering them lets the backend build
    // fixed-base tables for the keys it actually sees repeatedly.
    for (const Element& vk : verification_) group_->precompute_base(vk);
  }

  [[nodiscard]] const Group& group() const { return *group_; }
  /// Shared backend handle (for the reconfiguration extension, which
  /// rebuilds key objects over the same group).
  [[nodiscard]] const GroupPtr& group_ptr() const { return group_; }
  [[nodiscard]] const LinearScheme& scheme() const { return *scheme_; }
  [[nodiscard]] const Element& verification(int unit) const { return verification_.at(unit); }
  /// All per-unit verification values (for the proactive-refresh extension).
  [[nodiscard]] const std::vector<Element>& verification_values() const { return verification_; }

  /// The base element for a coin name: Htilde(N).
  [[nodiscard]] Element coin_base(BytesView name) const;

  /// Check a single share against its proof.
  [[nodiscard]] bool verify_share(BytesView name, const CoinShare& share) const;

  /// Combine verified shares into the coin value; returns nullopt unless the
  /// owners of `shares` form a qualified set.  Shares must be pre-verified.
  [[nodiscard]] std::optional<Bytes> combine(BytesView name,
                                             const std::vector<CoinShare>& shares) const;

  /// Convenience: a single coin bit from a combined coin value.
  static bool coin_bit(BytesView coin_value);

 private:
  GroupPtr group_;
  std::shared_ptr<const LinearScheme> scheme_;
  std::vector<Element> verification_;  ///< unit -> g^{x_unit}
};

/// Dealer output for the coin subsystem.
struct CoinDeal {
  CoinPublicKey public_key;
  std::vector<CoinSecretKey> secret_keys;  ///< one per party

  /// Deal a fresh coin key over `scheme`.
  static CoinDeal deal(GroupPtr group, std::shared_ptr<const LinearScheme> scheme, Rng& rng);
};

}  // namespace sintra::crypto
