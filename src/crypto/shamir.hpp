// Shamir polynomial secret sharing, and the classical t-of-n threshold
// access structure as a LinearScheme.
//
// Sharing: the dealer samples a degree-t polynomial f over Z_modulus with
// f(0) = secret and gives party i the value f(i+1).  Any t+1 shares
// determine the secret by Lagrange interpolation; t shares reveal nothing.
//
// The LinearScheme coefficients are the Δ-cleared integer Lagrange
// coefficients of Shoup (EUROCRYPT 2000): with Δ = n!, the values
// Δ·λ_{0,j}^S are integers for any (t+1)-subset S, which is exactly what
// working in a group of unknown order (threshold RSA) requires.
#pragma once

#include "crypto/sharing.hpp"

namespace sintra::crypto {

/// Evaluate-and-share helper used by both this scheme and the LSSS gates.
struct ShamirPolynomial {
  /// Coefficients c_0..c_t over Z_modulus; c_0 is the secret.
  std::vector<BigInt> coeffs;
  BigInt modulus;

  static ShamirPolynomial random(const BigInt& secret, int degree, const BigInt& modulus,
                                 Rng& rng);
  [[nodiscard]] BigInt eval(const BigInt& x) const;
  [[nodiscard]] BigInt eval_at(int x) const { return eval(BigInt(x)); }
};

/// Lagrange coefficient λ_{target,j} over field Z_q for interpolation points
/// `points` (must contain j, all distinct).
BigInt lagrange_field(const std::vector<int>& points, int j, int target, const BigInt& q);

/// Δ-cleared integer Lagrange coefficient: Δ · λ_{0,j} for points `points`,
/// where Δ = `delta_factorial` (n!).  Exact integer (Shoup's lemma).
BigInt lagrange_integer(const std::vector<int>& points, int j, const BigInt& delta);

/// Classical threshold structure: any t+1 of n parties reconstruct, any t
/// learn nothing; tolerates t corruptions.
class ThresholdScheme final : public LinearScheme {
 public:
  ThresholdScheme(int n, int t);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int t() const { return t_; }

  [[nodiscard]] int num_parties() const override { return n_; }
  [[nodiscard]] int num_units() const override { return n_; }
  [[nodiscard]] int unit_owner(int unit) const override { return unit; }
  [[nodiscard]] std::vector<BigInt> deal(const BigInt& secret, const BigInt& modulus,
                                         Rng& rng) const override;
  [[nodiscard]] bool qualified(PartySet parties) const override;
  [[nodiscard]] std::map<int, BigInt> coefficients(PartySet parties) const override;
  [[nodiscard]] BigInt delta() const override { return delta_; }

 private:
  int n_;
  int t_;
  BigInt delta_;  ///< n!
};

}  // namespace sintra::crypto
