#include "crypto/nizk.hpp"

#include "common/assert.hpp"

namespace sintra::crypto {

BigInt dleq_challenge(const Group& group, std::string_view context, const Element& g1,
                      const Element& h1, const Element& g2, const Element& h2, const Element& a1,
                      const Element& a2) {
  Writer w;
  w.str(context);
  group.encode_element(w, g1);
  group.encode_element(w, h1);
  group.encode_element(w, g2);
  group.encode_element(w, h2);
  group.encode_element(w, a1);
  group.encode_element(w, a2);
  return group.hash_to_scalar("sintra/nizk/dleq", w.data());
}

BigInt schnorr_challenge(const Group& group, std::string_view context, const Element& g,
                         const Element& h, const Element& a) {
  Writer w;
  w.str(context);
  group.encode_element(w, g);
  group.encode_element(w, h);
  group.encode_element(w, a);
  return group.hash_to_scalar("sintra/nizk/schnorr", w.data());
}

DleqProof DleqProof::prove(const Group& group, std::string_view context, const Element& g1,
                           const Element& h1, const Element& g2, const Element& h2, const BigInt& x,
                           Rng& rng) {
  const BigInt s = group.random_scalar(rng);
  DleqProof proof;
  proof.a1 = group.exp(g1, s);
  proof.a2 = group.exp(g2, s);
  const BigInt c = dleq_challenge(group, context, g1, h1, g2, h2, proof.a1, proof.a2);
  proof.z = group.scalar_add(s, group.scalar_mul(c, x));
  return proof;
}

bool DleqProof::verify(const Group& group, std::string_view context, const Element& g1,
                       const Element& h1, const Element& g2, const Element& h2) const {
  if (!group.is_scalar(z)) return false;
  // Commitments only need the cheap residue range check, not the O(|q|)
  // subgroup test: both sides below are compared for *equality* and the
  // left-hand side g^z * h^{-c} always lies in the order-q subgroup, so a
  // commitment outside it simply fails the comparison.
  if (!group.is_residue(a1) || !group.is_residue(a2)) return false;
  if (!group.is_element(g1) || !group.is_element(h1) || !group.is_element(g2) ||
      !group.is_element(h2)) {
    return false;
  }
  const BigInt c = dleq_challenge(group, context, g1, h1, g2, h2, a1, a2);
  // g^z * h^{-c} == a; exp2_equals lets the backend use the simultaneous
  // double-exponentiation fast path and compare without canonicalizing.
  const BigInt neg_c = group.scalar_sub(BigInt(0), c);
  return group.exp2_equals(g1, z, h1, neg_c, a1) && group.exp2_equals(g2, z, h2, neg_c, a2);
}

void DleqProof::encode(Writer& w, const Group& group) const {
  group.encode_element(w, a1);
  group.encode_element(w, a2);
  group.encode_scalar(w, z);
}

DleqProof DleqProof::decode(Reader& r, const Group& group) {
  DleqProof proof;
  proof.a1 = group.decode_residue(r);
  proof.a2 = group.decode_residue(r);
  proof.z = group.decode_scalar(r);
  return proof;
}

SchnorrProof SchnorrProof::prove(const Group& group, std::string_view context, const Element& g,
                                 const Element& h, const BigInt& x, Rng& rng) {
  const BigInt s = group.random_scalar(rng);
  SchnorrProof proof;
  proof.a = group.exp(g, s);
  const BigInt c = schnorr_challenge(group, context, g, h, proof.a);
  proof.z = group.scalar_add(s, group.scalar_mul(c, x));
  return proof;
}

bool SchnorrProof::verify(const Group& group, std::string_view context, const Element& g,
                          const Element& h) const {
  if (!group.is_scalar(z)) return false;
  if (!group.is_residue(a)) return false;
  if (!group.is_element(g) || !group.is_element(h)) return false;
  const BigInt c = schnorr_challenge(group, context, g, h, a);
  const BigInt neg_c = group.scalar_sub(BigInt(0), c);
  return group.exp2_equals(g, z, h, neg_c, a);
}

void SchnorrProof::encode(Writer& w, const Group& group) const {
  group.encode_element(w, a);
  group.encode_scalar(w, z);
}

SchnorrProof SchnorrProof::decode(Reader& r, const Group& group) {
  SchnorrProof proof;
  proof.a = group.decode_residue(r);
  proof.z = group.decode_scalar(r);
  return proof;
}

}  // namespace sintra::crypto
