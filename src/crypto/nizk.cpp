#include "crypto/nizk.hpp"

#include "common/assert.hpp"

namespace sintra::crypto {

namespace {
BigInt dleq_challenge(const Group& group, std::string_view context, const BigInt& g1,
                      const BigInt& h1, const BigInt& g2, const BigInt& h2, const BigInt& a1,
                      const BigInt& a2) {
  Writer w;
  w.str(context);
  group.encode_element(w, g1);
  group.encode_element(w, h1);
  group.encode_element(w, g2);
  group.encode_element(w, h2);
  group.encode_element(w, a1);
  group.encode_element(w, a2);
  return group.hash_to_scalar("sintra/nizk/dleq", w.data());
}

BigInt schnorr_challenge(const Group& group, std::string_view context, const BigInt& g,
                         const BigInt& h, const BigInt& a) {
  Writer w;
  w.str(context);
  group.encode_element(w, g);
  group.encode_element(w, h);
  group.encode_element(w, a);
  return group.hash_to_scalar("sintra/nizk/schnorr", w.data());
}
}  // namespace

DleqProof DleqProof::prove(const Group& group, std::string_view context, const BigInt& g1,
                           const BigInt& h1, const BigInt& g2, const BigInt& h2, const BigInt& x,
                           Rng& rng) {
  const BigInt s = group.random_scalar(rng);
  const BigInt a1 = group.exp(g1, s);
  const BigInt a2 = group.exp(g2, s);
  DleqProof proof;
  proof.challenge = dleq_challenge(group, context, g1, h1, g2, h2, a1, a2);
  proof.response = group.scalar_add(s, group.scalar_mul(proof.challenge, x));
  return proof;
}

bool DleqProof::verify(const Group& group, std::string_view context, const BigInt& g1,
                       const BigInt& h1, const BigInt& g2, const BigInt& h2) const {
  if (!group.is_scalar(challenge) || !group.is_scalar(response)) return false;
  if (!group.is_element(g1) || !group.is_element(h1) || !group.is_element(g2) ||
      !group.is_element(h2)) {
    return false;
  }
  // a = g^z * h^{-c}; recompute the challenge from reconstructed
  // commitments.  Both products use the simultaneous double-exponentiation
  // fast path (one shared squaring chain instead of two).
  const BigInt neg_c = group.scalar_sub(BigInt(0), challenge);
  const BigInt a1 = group.exp2(g1, response, h1, neg_c);
  const BigInt a2 = group.exp2(g2, response, h2, neg_c);
  return dleq_challenge(group, context, g1, h1, g2, h2, a1, a2) == challenge;
}

void DleqProof::encode(Writer& w, const Group& group) const {
  group.encode_scalar(w, challenge);
  group.encode_scalar(w, response);
}

DleqProof DleqProof::decode(Reader& r, const Group& group) {
  DleqProof proof;
  proof.challenge = group.decode_scalar(r);
  proof.response = group.decode_scalar(r);
  return proof;
}

SchnorrProof SchnorrProof::prove(const Group& group, std::string_view context, const BigInt& g,
                                 const BigInt& h, const BigInt& x, Rng& rng) {
  const BigInt s = group.random_scalar(rng);
  const BigInt a = group.exp(g, s);
  SchnorrProof proof;
  proof.challenge = schnorr_challenge(group, context, g, h, a);
  proof.response = group.scalar_add(s, group.scalar_mul(proof.challenge, x));
  return proof;
}

bool SchnorrProof::verify(const Group& group, std::string_view context, const BigInt& g,
                          const BigInt& h) const {
  if (!group.is_scalar(challenge) || !group.is_scalar(response)) return false;
  if (!group.is_element(g) || !group.is_element(h)) return false;
  const BigInt neg_c = group.scalar_sub(BigInt(0), challenge);
  const BigInt a = group.exp2(g, response, h, neg_c);
  return schnorr_challenge(group, context, g, h, a) == challenge;
}

void SchnorrProof::encode(Writer& w, const Group& group) const {
  group.encode_scalar(w, challenge);
  group.encode_scalar(w, response);
}

SchnorrProof SchnorrProof::decode(Reader& r, const Group& group) {
  SchnorrProof proof;
  proof.challenge = group.decode_scalar(r);
  proof.response = group.decode_scalar(r);
  return proof;
}

}  // namespace sintra::crypto
