// Schnorr-group backend: the prime-order-q subgroup of Z_p* for p = qr + 1.
//
// Elements are canonical residues in [0, p), carried inside Element as
// BigInt.  Exponentiation runs through a cached Montgomery/REDC context;
// the generator and registered long-lived bases get 4-bit windowed
// fixed-base tables (one table multiply per scalar nibble, no squarings).
// The three hard-coded parameter sets were generated offline with an
// independent implementation and are re-verified by the test suite.
#pragma once

#include <map>
#include <mutex>
#include <unordered_set>

#include "crypto/group.hpp"

namespace sintra::crypto {

class SchnorrGroup final : public Group {
 public:
  SchnorrGroup(BigInt p, BigInt q, BigInt g, std::string name);

  /// Typed singletons (Group::test_group() etc. return these upcast).
  static std::shared_ptr<const SchnorrGroup> test();        ///< p 256-bit, q 128-bit
  static std::shared_ptr<const SchnorrGroup> production();  ///< p 768-bit, q 256-bit
  static std::shared_ptr<const SchnorrGroup> big();         ///< p 1536-bit, q 256-bit

  /// The field prime — schnorr-specific, used by parameter-validation tests
  /// and the Montgomery differential tests.
  [[nodiscard]] const BigInt& p() const { return p_; }

  [[nodiscard]] Element mul(const Element& a, const Element& b) const override;
  [[nodiscard]] Element exp(const Element& base, const BigInt& scalar) const override;
  [[nodiscard]] Element exp_g(const BigInt& scalar) const override;
  [[nodiscard]] Element exp2(const Element& b1, const BigInt& e1, const Element& b2,
                             const BigInt& e2) const override;
  [[nodiscard]] Element multi_exp(
      const std::vector<std::pair<Element, BigInt>>& pairs) const override;
  [[nodiscard]] Element inv(const Element& a) const override;
  [[nodiscard]] Element identity() const override;
  void precompute_base(const Element& base) const override;
  [[nodiscard]] bool is_element(const Element& a) const override;
  [[nodiscard]] bool is_residue(const Element& a) const override;
  [[nodiscard]] Element hash_to_element(std::string_view domain, BytesView data) const override;
  void encode_element(Writer& w, const Element& a) const override;
  [[nodiscard]] Element decode_element(Reader& r) const override;
  [[nodiscard]] Element decode_residue(Reader& r) const override;

 private:
  /// Windowed fixed-base precomputation: blocks[i][j-1] = base^(j * 16^i)
  /// in Montgomery form, so an exponentiation is one table multiply per
  /// 4-bit digit of the scalar and no squarings at all.
  struct FixedBaseTable {
    std::vector<std::vector<BigInt>> blocks;
  };

  [[nodiscard]] FixedBaseTable build_fixed_base(const BigInt& base) const;
  /// scalar must already be reduced into [0, q).
  [[nodiscard]] BigInt exp_fixed(const FixedBaseTable& table, const BigInt& scalar) const;
  [[nodiscard]] const FixedBaseTable* registered_table(const BigInt& base) const;
  [[nodiscard]] bool residue_is_member(const BigInt& a) const;

  BigInt p_;
  BigInt gen_;       ///< generator residue (g_ holds the Element wrapper)
  BigInt cofactor_;  ///< (p-1)/q
  Montgomery mont_p_;       ///< REDC context for Z_p (declared after p_)
  FixedBaseTable g_table_;  ///< eager fixed-base table for the generator

  // Bounded registry of long-lived bases.  Registration via precompute_base
  // is cheap (a map entry); the table itself is built on the entry's second
  // use so registering many bases that are never exponentiated costs
  // nothing.  Entries are never evicted (registration refuses past the
  // bound), so pointers into the map stay valid for the Group's lifetime.
  struct BaseEntry {
    int uses = 0;
    bool built = false;
    FixedBaseTable table;
  };
  mutable std::mutex base_cache_mutex_;
  mutable std::map<std::string, BaseEntry> base_cache_;

  // Memo of residues that passed the full subgroup-membership check.
  mutable std::mutex memo_mutex_;
  mutable std::unordered_set<std::string> element_memo_;
};

}  // namespace sintra::crypto
