#include "crypto/coin.hpp"

#include "common/assert.hpp"
#include "crypto/sha256.hpp"

namespace sintra::crypto {

namespace {
constexpr std::string_view kCoinBaseDomain = "sintra/coin/base";
constexpr std::string_view kCoinOutDomain = "sintra/coin/out";

}  // namespace

std::string coin_share_context(int unit) {
  return "coin-share/" + std::to_string(unit);
}

void CoinShare::encode(Writer& w, const Group& group) const {
  w.u32(static_cast<std::uint32_t>(unit));
  group.encode_element(w, value);
  proof.encode(w, group);
}

CoinShare CoinShare::decode(Reader& r, const Group& group) {
  CoinShare share;
  share.unit = static_cast<int>(r.u32());
  share.value = group.decode_element(r);
  share.proof = DleqProof::decode(r, group);
  return share;
}

std::vector<CoinShare> CoinSecretKey::share(const CoinPublicKey& pk, BytesView name,
                                            Rng& rng) const {
  const Group& group = pk.group();
  const Element base = pk.coin_base(name);
  std::vector<CoinShare> out;
  out.reserve(unit_shares_.size());
  for (const auto& [unit, x] : unit_shares_) {
    CoinShare share;
    share.unit = unit;
    share.value = group.exp(base, x);
    share.proof = DleqProof::prove(group, coin_share_context(unit), group.g(), pk.verification(unit),
                                   base, share.value, x, rng);
    out.push_back(std::move(share));
  }
  return out;
}

Element CoinPublicKey::coin_base(BytesView name) const {
  return group_->hash_to_element(kCoinBaseDomain, name);
}

bool CoinPublicKey::verify_share(BytesView name, const CoinShare& share) const {
  if (share.unit < 0 || share.unit >= scheme_->num_units()) return false;
  const Element base = coin_base(name);
  return share.proof.verify(*group_, coin_share_context(share.unit), group_->g(),
                            verification_.at(static_cast<std::size_t>(share.unit)), base,
                            share.value);
}

std::optional<Bytes> CoinPublicKey::combine(BytesView name,
                                            const std::vector<CoinShare>& shares) const {
  PartySet parties = 0;
  std::map<int, Element> by_unit;
  for (const CoinShare& share : shares) {
    by_unit.emplace(share.unit, share.value);
    parties |= party_bit(scheme_->unit_owner(share.unit));
  }
  if (!scheme_->qualified(parties)) return std::nullopt;

  // Recombine in the exponent: prod sigma_j^{c_j} = base^{Delta * x}, then
  // clear Delta modulo the group order.  One simultaneous multi-exponent
  // shares the squaring chain across all shares.
  std::vector<std::pair<Element, BigInt>> powers;
  for (const auto& [unit, coeff] : scheme_->coefficients(parties)) {
    auto it = by_unit.find(unit);
    SINTRA_INVARIANT(it != by_unit.end(), "coin: coefficient for missing share");
    powers.emplace_back(it->second, coeff);
  }
  const Element combined = group_->multi_exp(powers);
  const BigInt delta_inv = group_->scalar_inv(scheme_->delta().mod(group_->q()));
  const Element sigma = group_->exp(combined, delta_inv);

  Writer w;
  w.bytes(name);
  group_->encode_element(w, sigma);
  Digest digest = hash_domain(kCoinOutDomain, w.data());
  return Bytes(digest.begin(), digest.end());
}

bool CoinPublicKey::coin_bit(BytesView coin_value) {
  SINTRA_REQUIRE(!coin_value.empty(), "coin: empty value");
  return coin_value[0] & 1;
}

CoinDeal CoinDeal::deal(GroupPtr group, std::shared_ptr<const LinearScheme> scheme, Rng& rng) {
  const BigInt secret = BigInt::random_below(rng, group->q());
  std::vector<BigInt> unit_values = scheme->deal(secret, group->q(), rng);

  std::vector<Element> verification;
  verification.reserve(unit_values.size());
  for (const BigInt& x : unit_values) verification.push_back(group->exp_g(x));

  std::vector<CoinSecretKey> secret_keys;
  secret_keys.reserve(static_cast<std::size_t>(scheme->num_parties()));
  for (int party = 0; party < scheme->num_parties(); ++party) {
    std::map<int, BigInt> held;
    for (int unit : scheme->units_of(party)) {
      held.emplace(unit, unit_values[static_cast<std::size_t>(unit)]);
    }
    secret_keys.emplace_back(party, std::move(held));
  }

  return CoinDeal{CoinPublicKey(std::move(group), std::move(scheme), std::move(verification)),
                  std::move(secret_keys)};
}

}  // namespace sintra::crypto
