// Arbitrary-precision integers, implemented from scratch.
//
// This is the numeric substrate for the whole threshold-cryptography layer:
// Schnorr-group arithmetic (coin, TDH2), RSA (Shoup threshold signatures),
// Shamir sharing over Z_q, and integer-Lagrange interpolation with the
// Δ = n! clearing trick used by the threshold RSA scheme (which requires
// signed arithmetic — hence BigInt carries a sign).
//
// Representation: sign/magnitude, magnitude as little-endian vector of
// 64-bit limbs with no trailing zero limbs (zero is an empty vector,
// sign +1).  Multiplication is schoolbook with 128-bit accumulation;
// division is Knuth Algorithm D; modular exponentiation uses a fixed
// 4-bit window.  Performance targets the parameter sizes used by the
// benchmarks (up to ~2048-bit moduli), not production RSA-4096.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace sintra::crypto {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor) - numeric literal ergonomics
  BigInt(std::uint64_t value, int);  ///< tagged unsigned constructor

  static BigInt from_u64(std::uint64_t value);
  /// Parse decimal (optional leading '-') or, with prefix "0x", hex.
  static BigInt from_string(std::string_view text);
  /// Big-endian unsigned bytes.
  static BigInt from_bytes(BytesView data);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const { return negative_; }
  [[nodiscard]] bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  [[nodiscard]] bool is_one() const { return !negative_ && limbs_.size() == 1 && limbs_[0] == 1; }

  /// Number of significant bits of the magnitude (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;
  /// Bit i of the magnitude (little-endian bit order).
  [[nodiscard]] bool bit(std::size_t i) const;

  [[nodiscard]] std::string to_string() const;       ///< decimal
  [[nodiscard]] std::string to_hex() const;          ///< lowercase hex, no prefix
  /// Big-endian magnitude, minimal length (empty for zero).  Sign dropped.
  [[nodiscard]] Bytes to_bytes() const;
  /// Big-endian magnitude zero-padded/fit to exactly `width` bytes.
  [[nodiscard]] Bytes to_bytes_padded(std::size_t width) const;
  /// Low 64 bits of the magnitude (for small values / tests).
  [[nodiscard]] std::uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  // -- comparison ---------------------------------------------------------
  [[nodiscard]] int compare(const BigInt& other) const;  ///< -1 / 0 / +1
  friend bool operator==(const BigInt& a, const BigInt& b) { return a.compare(b) == 0; }
  friend bool operator!=(const BigInt& a, const BigInt& b) { return a.compare(b) != 0; }
  friend bool operator<(const BigInt& a, const BigInt& b) { return a.compare(b) < 0; }
  friend bool operator<=(const BigInt& a, const BigInt& b) { return a.compare(b) <= 0; }
  friend bool operator>(const BigInt& a, const BigInt& b) { return a.compare(b) > 0; }
  friend bool operator>=(const BigInt& a, const BigInt& b) { return a.compare(b) >= 0; }

  // -- arithmetic ---------------------------------------------------------
  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  /// Truncated division (C semantics: quotient rounds toward zero).
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  /// Remainder with the sign of the dividend (C semantics).
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  BigInt operator-() const;

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }

  [[nodiscard]] BigInt shifted_left(std::size_t bits) const;
  [[nodiscard]] BigInt shifted_right(std::size_t bits) const;

  /// Quotient and remainder in one division.
  static void divmod(const BigInt& a, const BigInt& b, BigInt& quotient, BigInt& remainder);

  // -- modular arithmetic (modulus must be positive) -----------------------
  /// Mathematical mod: result in [0, m).
  [[nodiscard]] BigInt mod(const BigInt& m) const;
  static BigInt add_mod(const BigInt& a, const BigInt& b, const BigInt& m);
  static BigInt sub_mod(const BigInt& a, const BigInt& b, const BigInt& m);
  static BigInt mul_mod(const BigInt& a, const BigInt& b, const BigInt& m);
  /// a^e mod m; e must be non-negative.  Dispatches to Montgomery REDC for
  /// odd multi-limb moduli and falls back to the schoolbook-divmod path
  /// otherwise; both paths return bit-identical results.
  static BigInt pow_mod(const BigInt& base, const BigInt& exponent, const BigInt& m);
  /// The original windowed square-and-multiply with full divmod reduction.
  /// Kept as the differential-testing oracle for the Montgomery fast path
  /// and as the fallback for even moduli.
  static BigInt pow_mod_reference(const BigInt& base, const BigInt& exponent, const BigInt& m);
  /// b1^e1 * b2^e2 mod m (Shamir's trick / interleaved windows when the
  /// Montgomery path applies); e1, e2 must be non-negative.
  static BigInt pow2_mod(const BigInt& b1, const BigInt& e1, const BigInt& b2, const BigInt& e2,
                         const BigInt& m);
  /// Multiplicative inverse mod m; throws ProtocolError if gcd(a, m) != 1.
  static BigInt inverse_mod(const BigInt& a, const BigInt& m);

  static BigInt gcd(const BigInt& a, const BigInt& b);
  /// g = gcd(a,b) and Bézout coefficients: a*x + b*y = g.
  static BigInt extended_gcd(const BigInt& a, const BigInt& b, BigInt& x, BigInt& y);

  /// n! as a BigInt (the Δ of Shoup's threshold RSA scheme).
  static BigInt factorial(unsigned n);

  // -- randomness & primality ---------------------------------------------
  /// Uniform in [0, bound); bound must be positive.
  template <typename RngT>
  static BigInt random_below(RngT& rng, const BigInt& bound);
  /// Uniform with exactly `bits` bits (top bit set).
  template <typename RngT>
  static BigInt random_bits(RngT& rng, std::size_t bits);

  /// Miller–Rabin with `rounds` random bases (plus small-prime sieve).
  template <typename RngT>
  [[nodiscard]] bool is_probable_prime(RngT& rng, int rounds = 32) const;

  /// Random prime with exactly `bits` bits.
  template <typename RngT>
  static BigInt random_prime(RngT& rng, std::size_t bits);
  /// Random safe prime p = 2p' + 1 (p' prime) with exactly `bits` bits.
  template <typename RngT>
  static BigInt random_safe_prime(RngT& rng, std::size_t bits);

  // -- serialization -------------------------------------------------------
  void encode(Writer& w) const;
  static BigInt decode(Reader& r);

 private:
  void trim();
  [[nodiscard]] int compare_magnitude(const BigInt& other) const;
  static std::vector<std::uint64_t> add_magnitudes(const std::vector<std::uint64_t>& a,
                                                   const std::vector<std::uint64_t>& b);
  /// Requires |a| >= |b|.
  static std::vector<std::uint64_t> sub_magnitudes(const std::vector<std::uint64_t>& a,
                                                   const std::vector<std::uint64_t>& b);
  static std::vector<std::uint64_t> mul_magnitudes(const std::vector<std::uint64_t>& a,
                                                   const std::vector<std::uint64_t>& b);
  static void divmod_magnitudes(const std::vector<std::uint64_t>& a,
                                const std::vector<std::uint64_t>& b,
                                std::vector<std::uint64_t>& quotient,
                                std::vector<std::uint64_t>& remainder);
  [[nodiscard]] bool miller_rabin_witness(const BigInt& base) const;
  [[nodiscard]] bool divisible_by_small_prime() const;

  bool negative_ = false;
  std::vector<std::uint64_t> limbs_;  ///< little-endian, trimmed

  friend class Montgomery;
};

/// Montgomery-form modular arithmetic for a fixed odd modulus m.
///
/// Values in "Montgomery domain" represent x as x*R mod m with R = 2^(64*n)
/// for n the limb count of m.  The core operation is the fused CIOS
/// multiply-and-reduce (mont_mul), which replaces the schoolbook
/// multiply + Knuth-D divmod of the reference path with pure carry-save
/// limb work — the inner loop of every exponentiation in the threshold
/// stack.  Construction costs one wide divmod (R^2 mod m); every Group
/// caches one context per modulus so that cost is paid once per deployment.
class Montgomery {
 public:
  /// `modulus` must be positive and odd.
  explicit Montgomery(BigInt modulus);

  [[nodiscard]] const BigInt& modulus() const { return m_big_; }
  [[nodiscard]] std::size_t limb_count() const { return n_; }

  /// a*R mod m (a may be any integer; it is first reduced into [0, m)).
  [[nodiscard]] BigInt to_mont(const BigInt& a) const;
  /// a*R^{-1} mod m for a in [0, m).
  [[nodiscard]] BigInt from_mont(const BigInt& a) const;
  /// Montgomery product of two Montgomery-domain values: a*b*R^{-1} mod m.
  [[nodiscard]] BigInt mul(const BigInt& a_mont, const BigInt& b_mont) const;
  /// Normal-domain modular multiplication via two REDC passes.
  [[nodiscard]] BigInt mul_mod(const BigInt& a, const BigInt& b) const;
  /// Normal-domain base^exponent mod m; exponent must be non-negative.
  [[nodiscard]] BigInt pow(const BigInt& base, const BigInt& exponent) const;
  /// b1^e1 * b2^e2 mod m with interleaved 2-bit windows (one shared
  /// squaring chain); exponents must be non-negative.
  [[nodiscard]] BigInt pow2(const BigInt& b1, const BigInt& e1, const BigInt& b2,
                            const BigInt& e2) const;
  /// prod_i base_i^{exp_i} mod m, all exponents non-negative.  Generalizes
  /// pow2 to k bases with one shared squaring chain.
  [[nodiscard]] BigInt multi_pow(const std::vector<std::pair<BigInt, BigInt>>& pairs) const;

  /// R mod m — the Montgomery-domain representation of 1.
  [[nodiscard]] const BigInt& one_mont() const { return one_mont_; }

 private:
  using Limbs = std::vector<std::uint64_t>;

  /// out[0..n) = a*b*R^{-1} mod m for a, b of exactly n limbs (< m).
  /// `scratch` must have n+1 limbs; out may alias a or b.
  void mont_mul_limbs(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
                      std::uint64_t* scratch) const;
  [[nodiscard]] Limbs load(const BigInt& a) const;  ///< zero-padded to n limbs
  [[nodiscard]] BigInt store(const Limbs& limbs) const;

  BigInt m_big_;
  BigInt r2_;        ///< R^2 mod m
  BigInt one_mont_;  ///< R mod m
  Limbs m_;          ///< modulus, exactly n_ limbs
  std::uint64_t n0_ = 0;  ///< -m^{-1} mod 2^64
  std::size_t n_ = 0;
};

// ---- template definitions -------------------------------------------------

template <typename RngT>
BigInt BigInt::random_below(RngT& rng, const BigInt& bound) {
  const std::size_t bits = bound.bit_length();
  // Rejection sampling: draw `bits` random bits until below bound.
  for (;;) {
    Bytes raw = rng.bytes((bits + 7) / 8);
    // Mask excess top bits.
    const std::size_t excess = raw.size() * 8 - bits;
    if (!raw.empty()) raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
    BigInt candidate = BigInt::from_bytes(raw);
    if (candidate < bound) return candidate;
  }
}

template <typename RngT>
BigInt BigInt::random_bits(RngT& rng, std::size_t bits) {
  Bytes raw = rng.bytes((bits + 7) / 8);
  const std::size_t excess = raw.size() * 8 - bits;
  raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
  raw[0] |= static_cast<std::uint8_t>(0x80 >> excess);  // force exact bit length
  return BigInt::from_bytes(raw);
}

template <typename RngT>
bool BigInt::is_probable_prime(RngT& rng, int rounds) const {
  if (negative_ || is_zero()) return false;
  if (limbs_.size() == 1) {
    std::uint64_t v = limbs_[0];
    if (v < 2) return false;
    if (v == 2 || v == 3) return true;
  }
  if (!is_odd()) return false;
  // The sieve reports false when *this equals the small prime itself.
  if (divisible_by_small_prime()) return false;
  const BigInt two(2);
  const BigInt n_minus_3 = *this - BigInt(3);
  for (int i = 0; i < rounds; ++i) {
    BigInt base = two + random_below(rng, n_minus_3);
    if (!miller_rabin_witness(base)) return false;
  }
  return true;
}

template <typename RngT>
BigInt BigInt::random_prime(RngT& rng, std::size_t bits) {
  for (;;) {
    BigInt candidate = random_bits(rng, bits);
    if (!candidate.is_odd()) candidate += BigInt(1);
    if (candidate.is_probable_prime(rng)) return candidate;
  }
}

template <typename RngT>
BigInt BigInt::random_safe_prime(RngT& rng, std::size_t bits) {
  for (;;) {
    BigInt q = random_prime(rng, bits - 1);
    BigInt p = q.shifted_left(1) + BigInt(1);
    if (p.bit_length() == bits && p.is_probable_prime(rng)) return p;
  }
}

}  // namespace sintra::crypto
