// Backend-opaque group element.
//
// The protocol layer (proofs, coin shares, ciphertexts, VSS commitments)
// holds group elements without knowing how the active Group backend
// represents them: a canonical residue of Z_p* for the Schnorr backend, a
// normalized curve point for the elliptic-curve backend.  All arithmetic,
// validation, and (de)serialization goes through the owning Group — an
// Element by itself supports only equality, copying, and the default
// "empty" state used by not-yet-filled message structs (an empty Element
// never validates and never equals a real one).
#pragma once

#include <variant>

#include "common/assert.hpp"
#include "crypto/bigint.hpp"
#include "crypto/curve256.hpp"

namespace sintra::crypto {

class Element {
 public:
  Element() = default;

  static Element from_residue(BigInt value) {
    Element e;
    e.rep_ = std::move(value);
    return e;
  }

  static Element from_point(const curve256::Point& value) {
    Element e;
    e.rep_ = value;
    return e;
  }

  [[nodiscard]] bool empty() const { return std::holds_alternative<std::monostate>(rep_); }
  [[nodiscard]] bool has_residue() const { return std::holds_alternative<BigInt>(rep_); }
  [[nodiscard]] bool has_point() const { return std::holds_alternative<curve256::Point>(rep_); }

  /// Schnorr-backend payload; callers must have checked has_residue() or
  /// obtained the element from a schnorr Group.
  [[nodiscard]] const BigInt& residue() const {
    SINTRA_INVARIANT(has_residue(), "Element: not a residue representation");
    return std::get<BigInt>(rep_);
  }

  /// Curve-backend payload (normalized point).
  [[nodiscard]] const curve256::Point& point() const {
    SINTRA_INVARIANT(has_point(), "Element: not a point representation");
    return std::get<curve256::Point>(rep_);
  }

  friend bool operator==(const Element& a, const Element& b) {
    if (a.rep_.index() != b.rep_.index()) return false;
    if (a.has_residue()) return a.residue() == b.residue();
    if (a.has_point()) return curve256::eq(a.point(), b.point());
    return true;  // both empty
  }
  friend bool operator!=(const Element& a, const Element& b) { return !(a == b); }

 private:
  std::variant<std::monostate, BigInt, curve256::Point> rep_;
};

}  // namespace sintra::crypto
