#include "crypto/reshare.hpp"

#include "common/assert.hpp"

namespace sintra::crypto {

namespace {

/// ceil(log2(v+1)) for small positive v — bit width of v as an exponent
/// bound contributor.
std::size_t bit_width(int v) {
  std::size_t bits = 0;
  for (unsigned u = static_cast<unsigned>(v); u != 0; u >>= 1) ++bits;
  return bits == 0 ? 1 : bits;
}

std::vector<int> interpolation_points(const std::vector<int>& old_slots) {
  std::vector<int> points;
  points.reserve(old_slots.size());
  for (int slot : old_slots) {
    SINTRA_REQUIRE(slot >= 0 && slot < 64, "reshare: old slot out of range");
    points.push_back(slot + 1);
  }
  return points;
}

}  // namespace

// ---- discrete log --------------------------------------------------------

FeldmanDealing dl_reshare_deal(const Group& group, const BigInt& old_share, int n_new,
                               int t_new, Rng& rng) {
  return FeldmanDealing::deal(group, old_share, n_new, t_new, rng);
}

BigInt dl_combine_subshares(const Group& group, const std::vector<int>& old_slots,
                            const std::vector<BigInt>& subshares) {
  SINTRA_REQUIRE(old_slots.size() == subshares.size() && !old_slots.empty(),
                 "reshare: dealer/sub-share mismatch");
  const std::vector<int> points = interpolation_points(old_slots);
  BigInt share;
  for (std::size_t j = 0; j < points.size(); ++j) {
    const BigInt lambda = lagrange_field(points, points[j], 0, group.q());
    share = group.scalar_add(share, group.scalar_mul(lambda, subshares[j]));
  }
  return share;
}

std::vector<Element> dl_new_verification(const Group& group, const std::vector<int>& old_slots,
                                         const std::vector<std::vector<Element>>& commitments,
                                         int n_new) {
  SINTRA_REQUIRE(old_slots.size() == commitments.size() && !old_slots.empty(),
                 "reshare: dealer/commitment mismatch");
  const std::vector<int> points = interpolation_points(old_slots);
  std::vector<BigInt> lambdas;
  lambdas.reserve(points.size());
  for (std::size_t j = 0; j < points.size(); ++j) {
    lambdas.push_back(lagrange_field(points, points[j], 0, group.q()));
  }
  std::vector<Element> verification;
  verification.reserve(static_cast<std::size_t>(n_new));
  for (int i = 0; i < n_new; ++i) {
    // g^{d'_i} = prod_j (g^{g_j(i+1)})^{lambda_j}, all from commitments.
    std::vector<std::pair<Element, BigInt>> pairs;
    pairs.reserve(commitments.size());
    for (std::size_t j = 0; j < commitments.size(); ++j) {
      pairs.emplace_back(FeldmanDealing::share_image(group, commitments[j], i), lambdas[j]);
    }
    verification.push_back(group.multi_exp(pairs));
  }
  return verification;
}

// ---- threshold RSA -------------------------------------------------------

RsaReshareDealing RsaReshareDealing::deal(const BigInt& old_share,
                                          const BigInt& old_verification,
                                          std::size_t coeff_bits, int n_new, int t_new,
                                          const BigInt& v, const Montgomery& mont, Rng& rng) {
  SINTRA_REQUIRE(n_new >= 1 && t_new >= 0 && t_new < n_new, "reshare: bad new committee");
  SINTRA_REQUIRE(old_share.bit_length() <= coeff_bits,
                 "reshare: share wider than the public coefficient width");
  RsaReshareDealing dealing;
  std::vector<BigInt> coeffs;
  coeffs.reserve(static_cast<std::size_t>(t_new) + 1);
  coeffs.push_back(old_share);
  dealing.commitments.reserve(static_cast<std::size_t>(t_new) + 1);
  dealing.commitments.push_back(old_verification);
  for (int k = 1; k <= t_new; ++k) {
    coeffs.push_back(BigInt::random_bits(rng, coeff_bits));
    dealing.commitments.push_back(mont.pow(v, coeffs.back()));
  }
  dealing.subshares.reserve(static_cast<std::size_t>(n_new));
  for (int i = 0; i < n_new; ++i) {
    // Horner over the signed integers: no modulus exists to reduce by.
    const BigInt x(i + 1);
    BigInt acc;
    for (std::size_t k = coeffs.size(); k-- > 0;) {
      acc = acc * x + coeffs[k];
    }
    dealing.subshares.push_back(std::move(acc));
  }
  return dealing;
}

BigInt RsaReshareDealing::subshare_image(const std::vector<BigInt>& commitments, int slot,
                                         const Montgomery& mont) {
  SINTRA_REQUIRE(!commitments.empty(), "reshare: empty commitment vector");
  // Horner in the exponent: acc = C_t; acc = acc^x * C_{k}; x = slot + 1.
  const BigInt x(slot + 1);
  BigInt acc = commitments.back().mod(mont.modulus());
  for (std::size_t k = commitments.size() - 1; k-- > 0;) {
    acc = mont.mul_mod(mont.pow(acc, x), commitments[k].mod(mont.modulus()));
  }
  return acc;
}

bool RsaReshareDealing::verify_subshare(const std::vector<BigInt>& commitments, int slot,
                                        const BigInt& subshare, const BigInt& v,
                                        const Montgomery& mont) {
  if (commitments.empty()) return false;
  for (const BigInt& c : commitments) {
    if (c.is_negative() || c.is_zero() || c >= mont.modulus()) return false;
  }
  try {
    return pow_signed(v, subshare, mont) == subshare_image(commitments, slot, mont);
  } catch (const ProtocolError&) {
    return false;  // non-invertible base under a negative exponent
  }
}

BigInt rsa_combine_subshares(const std::vector<int>& old_slots,
                             const std::vector<BigInt>& subshares, const BigInt& delta_base) {
  SINTRA_REQUIRE(old_slots.size() == subshares.size() && !old_slots.empty(),
                 "reshare: dealer/sub-share mismatch");
  const std::vector<int> points = interpolation_points(old_slots);
  BigInt share;
  for (std::size_t j = 0; j < points.size(); ++j) {
    share += lagrange_integer(points, points[j], delta_base) * subshares[j];
  }
  return share;
}

std::vector<BigInt> rsa_new_verification(const std::vector<int>& old_slots,
                                         const std::vector<std::vector<BigInt>>& commitments,
                                         int n_new, const BigInt& delta_base,
                                         const Montgomery& mont) {
  SINTRA_REQUIRE(old_slots.size() == commitments.size() && !old_slots.empty(),
                 "reshare: dealer/commitment mismatch");
  const std::vector<int> points = interpolation_points(old_slots);
  std::vector<BigInt> lambdas;
  lambdas.reserve(points.size());
  for (std::size_t j = 0; j < points.size(); ++j) {
    lambdas.push_back(lagrange_integer(points, points[j], delta_base));
  }
  std::vector<BigInt> verification;
  verification.reserve(static_cast<std::size_t>(n_new));
  for (int i = 0; i < n_new; ++i) {
    BigInt value(1);
    for (std::size_t j = 0; j < commitments.size(); ++j) {
      value = mont.mul_mod(
          value, pow_signed(RsaReshareDealing::subshare_image(commitments[j], i, mont),
                            lambdas[j], mont));
    }
    verification.push_back(std::move(value));
  }
  return verification;
}

// ---- width bookkeeping ---------------------------------------------------

std::size_t rsa_reshare_coeff_bits(std::size_t share_bits) { return share_bits + 64; }

std::size_t rsa_subshare_bits(std::size_t coeff_bits, int n_new, int t_new) {
  // |g(i+1)| <= 2^C * (t'+1) * (n')^{t'}.
  return coeff_bits + bit_width(t_new + 1) +
         static_cast<std::size_t>(t_new) * bit_width(n_new);
}

std::size_t rsa_reshare_share_bits(std::size_t coeff_bits, int n_old, int t_old, int n_new,
                                   int t_new) {
  // |d'| <= (t+1) * max|c_j| * max|subshare|; |c_j| <= Δ(n) * n^{t+1}.
  const std::size_t lagrange_bits = BigInt::factorial(static_cast<unsigned>(n_old)).bit_length() +
                                    static_cast<std::size_t>(t_old + 1) * bit_width(n_old);
  return rsa_subshare_bits(coeff_bits, n_new, t_new) + lagrange_bits + bit_width(t_old + 1);
}

}  // namespace sintra::crypto
