#include "crypto/group_schnorr.hpp"

#include "common/assert.hpp"
#include "crypto/sha256.hpp"

namespace sintra::crypto {

namespace {
// Parameters generated offline (seeded independent implementation) and
// re-verified by tests/group_test.cpp: p, q prime; q | p-1; g has order q.
struct Params {
  const char* p;
  const char* q;
  const char* g;
};

constexpr Params kTest = {
    "0x853644a2e8000d92fe74ffc4a0039fb9f6e65328422eeaf1886b9548801b637b",
    "0xdd19fd809eef4855bf656392d80b670b",
    "0x6bb010cf4edc06057727d5c5983b2cbcc740a8dc55689d1ac86cce38a15cf8c8"};

constexpr Params kDefault = {
    "0x8ee5df35cad6cb874432102373cd624eb0e878ae95e61dc98285b8989059a1e2"
    "1809066936dc5fff8d4217673e890b1a822c01f23afb9bc99a537bc6bd7dff44"
    "4ea03ef09a8b5789fadef61ee0aa6b69bc6700e357bbc2d316a52729cdeb927d",
    "0xab6331dfe58be9d74b8adc16b06d1b75f8411fb71e31750c7efe1342c374d853",
    "0x7c5dff998776acb56f59fcd7379742ac41c082971db8dbdd46bff0208af845fa"
    "58a548e4e015699688af98450d6a2ccdce61096cfc6a3434cd21ed222aeb8bff"
    "12499a6e65f85c6d00f715b37ee834da86535b0cf2ecc737db578fbe69423fcf"};

constexpr Params kBig = {
    "0x81af6b2f91f6f628411d396142972a4ec04b56c67c7ef9ca75e2f5aac5e9ed5d"
    "200c169b48eba7daf6a054dbfbbf7cfed41bec877cb746d38dd85885bb9d50d7"
    "2295120f4f61002d0ce7a315dc0742330a0aa4a05c3c0bde37b9b71ee0a089f5"
    "5ea832e606c5ed1d77d7131c6175b5a10aa5934481236227bfd39b1ed8359084"
    "8784fabf496ed586377804bca33f0cd88374bdb68044cba5daa55645d2090ef1"
    "aeb3daad2ab9d8d8507f978aa357dd3f69dc8f688f787aa7b80ae1d1f3be98af",
    "0x993cd8a192ba4eb95a8aa14a7bd1176f816d3b64be3c54697dd712d675d68fad",
    "0x274984bac03ef45ba764dca830084e0e04dcad1b13d0ff644080509da9854013"
    "37a3c45732c5ab14dde1f8341c0d87592e86ed82c0caf123263145942e7b24ac"
    "1955780bb4c38fa12aee6075ddacfb5cb9859747fa5d0cdf87a285fbfc9868a0"
    "2e97afc2b171a1ab1c67d3ceca7fada83d8c5f5e854f28a519c431f65f952bc7"
    "ecd5168a25f6c118c93dcb5b83f4543026e6668d43f98fae9e77ccda0b7fe260"
    "762dd452fd00f8bac618cacb026666520c8af3fec05ecfd447e6e479421794df"};

std::shared_ptr<const SchnorrGroup> make_group(const Params& params, std::string name) {
  return std::make_shared<const SchnorrGroup>(BigInt::from_string(params.p),
                                              BigInt::from_string(params.q),
                                              BigInt::from_string(params.g), std::move(name));
}

std::string element_key(const BigInt& a) {
  Bytes raw = a.to_bytes();
  return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
}

constexpr std::size_t kMaxRegisteredBases = 64;
constexpr std::size_t kMaxElementMemo = 8192;
}  // namespace

SchnorrGroup::SchnorrGroup(BigInt p, BigInt q, BigInt g, std::string name)
    : Group(std::move(q), std::move(name), (p.bit_length() + 7) / 8), p_(std::move(p)),
      gen_(std::move(g)), mont_p_(p_) {
  SINTRA_INVARIANT(((p_ - BigInt(1)) % q_).is_zero(), "Group: q must divide p-1");
  cofactor_ = (p_ - BigInt(1)) / q_;
  SINTRA_INVARIANT(residue_is_member(gen_) && !gen_.is_one(), "Group: bad generator");
  g_table_ = build_fixed_base(gen_);
  g_ = Element::from_residue(gen_);
}

std::shared_ptr<const SchnorrGroup> SchnorrGroup::test() {
  static std::shared_ptr<const SchnorrGroup> group = make_group(kTest, "test-256/128");
  return group;
}

std::shared_ptr<const SchnorrGroup> SchnorrGroup::production() {
  static std::shared_ptr<const SchnorrGroup> group = make_group(kDefault, "default-768/256");
  return group;
}

std::shared_ptr<const SchnorrGroup> SchnorrGroup::big() {
  static std::shared_ptr<const SchnorrGroup> group = make_group(kBig, "big-1536/256");
  return group;
}

SchnorrGroup::FixedBaseTable SchnorrGroup::build_fixed_base(const BigInt& base) const {
  FixedBaseTable table;
  const std::size_t blocks = (q_.bit_length() + 3) / 4;
  table.blocks.resize(blocks);
  BigInt cur = mont_p_.to_mont(base);  // base^(16^i) in Montgomery form
  for (std::size_t i = 0; i < blocks; ++i) {
    auto& block = table.blocks[i];
    block.reserve(15);
    block.push_back(cur);
    for (int j = 2; j <= 15; ++j) block.push_back(mont_p_.mul(block.back(), cur));
    cur = mont_p_.mul(block.back(), cur);
  }
  return table;
}

BigInt SchnorrGroup::exp_fixed(const FixedBaseTable& table, const BigInt& scalar) const {
  BigInt result = mont_p_.one_mont();
  for (std::size_t i = 0; i < table.blocks.size(); ++i) {
    const std::uint32_t digit = (static_cast<std::uint32_t>(scalar.bit(4 * i + 3)) << 3) |
                                (static_cast<std::uint32_t>(scalar.bit(4 * i + 2)) << 2) |
                                (static_cast<std::uint32_t>(scalar.bit(4 * i + 1)) << 1) |
                                static_cast<std::uint32_t>(scalar.bit(4 * i));
    if (digit != 0) result = mont_p_.mul(result, table.blocks[i][digit - 1]);
  }
  return mont_p_.from_mont(result);
}

const SchnorrGroup::FixedBaseTable* SchnorrGroup::registered_table(const BigInt& base) const {
  std::lock_guard<std::mutex> lock(base_cache_mutex_);
  auto it = base_cache_.find(element_key(base));
  if (it == base_cache_.end()) return nullptr;
  BaseEntry& entry = it->second;
  if (!entry.built) {
    // Deferred build: the first use runs the generic path, the second pays
    // the one-time table cost (hundreds of multiplications).  Registering a
    // base that is never exponentiated stays free.
    if (++entry.uses < 2) return nullptr;
    entry.table = build_fixed_base(base);
    entry.built = true;
  }
  return &entry.table;
}

void SchnorrGroup::precompute_base(const Element& base) const {
  std::string key = element_key(base.residue());
  std::lock_guard<std::mutex> lock(base_cache_mutex_);
  if (base_cache_.size() >= kMaxRegisteredBases) return;
  base_cache_.try_emplace(std::move(key));
}

Element SchnorrGroup::mul(const Element& a, const Element& b) const {
  return Element::from_residue(BigInt::mul_mod(a.residue(), b.residue(), p_));
}

Element SchnorrGroup::exp(const Element& base, const BigInt& scalar) const {
  const BigInt e = scalar.mod(q_);
  const BigInt& b = base.residue();
  if (b == gen_) return Element::from_residue(exp_fixed(g_table_, e));
  if (const FixedBaseTable* table = registered_table(b)) {
    return Element::from_residue(exp_fixed(*table, e));
  }
  return Element::from_residue(mont_p_.pow(b, e));
}

Element SchnorrGroup::exp_g(const BigInt& scalar) const {
  return Element::from_residue(exp_fixed(g_table_, scalar.mod(q_)));
}

Element SchnorrGroup::exp2(const Element& b1, const BigInt& e1, const Element& b2,
                           const BigInt& e2) const {
  return Element::from_residue(mont_p_.pow2(b1.residue(), e1.mod(q_), b2.residue(), e2.mod(q_)));
}

Element SchnorrGroup::multi_exp(const std::vector<std::pair<Element, BigInt>>& pairs) const {
  std::vector<std::pair<BigInt, BigInt>> reduced;
  reduced.reserve(pairs.size());
  for (const auto& [base, exp] : pairs) reduced.emplace_back(base.residue(), exp.mod(q_));
  return Element::from_residue(mont_p_.multi_pow(reduced));
}

Element SchnorrGroup::inv(const Element& a) const {
  return Element::from_residue(BigInt::inverse_mod(a.residue(), p_));
}

Element SchnorrGroup::identity() const { return Element::from_residue(BigInt(1)); }

bool SchnorrGroup::residue_is_member(const BigInt& a) const {
  if (a.is_negative() || a.is_zero() || a >= p_) return false;
  std::string key = element_key(a);
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    if (element_memo_.count(key) != 0) return true;
  }
  if (!mont_p_.pow(a, q_).is_one()) return false;
  std::lock_guard<std::mutex> lock(memo_mutex_);
  if (element_memo_.size() >= kMaxElementMemo) element_memo_.clear();
  element_memo_.insert(std::move(key));
  return true;
}

bool SchnorrGroup::is_element(const Element& a) const {
  return a.has_residue() && residue_is_member(a.residue());
}

bool SchnorrGroup::is_residue(const Element& a) const {
  if (!a.has_residue()) return false;
  const BigInt& r = a.residue();
  return !r.is_negative() && !r.is_zero() && r < p_;
}

Element SchnorrGroup::hash_to_element(std::string_view domain, BytesView data) const {
  // Expand past the modulus width to make the pre-cofactor residue
  // statistically close to uniform mod p, then clear the cofactor.
  Bytes wide = hash_expand(domain, data, element_bytes_ + 16);
  BigInt residue = BigInt::from_bytes(wide).mod(p_);
  BigInt element = mont_p_.pow(residue, cofactor_);
  if (element.is_zero() || element.is_one()) {
    // Astronomically unlikely; re-hash deterministically so the oracle
    // stays a function.
    Bytes retry = wide;
    retry.push_back(0x42);
    residue = BigInt::from_bytes(hash_expand(domain, retry, element_bytes_ + 16)).mod(p_);
    element = mont_p_.pow(residue, cofactor_);
  }
  return Element::from_residue(std::move(element));
}

void SchnorrGroup::encode_element(Writer& w, const Element& a) const {
  w.raw(a.residue().to_bytes_padded(element_bytes_));
}

Element SchnorrGroup::decode_element(Reader& r) const {
  BigInt a = BigInt::from_bytes(r.raw(element_bytes_));
  SINTRA_REQUIRE(residue_is_member(a), "Group: not a subgroup element");
  return Element::from_residue(std::move(a));
}

Element SchnorrGroup::decode_residue(Reader& r) const {
  BigInt a = BigInt::from_bytes(r.raw(element_bytes_));
  SINTRA_REQUIRE(!a.is_negative() && !a.is_zero() && a < p_, "Group: residue out of range");
  return Element::from_residue(std::move(a));
}

}  // namespace sintra::crypto
