// Elliptic-curve group backend: secp256k1, prime order, cofactor 1.
//
// Elements are normalized curve points carried inside Element; on the wire
// they are 33-byte compressed SEC1 encodings (infinity encodes as 33 zero
// bytes, kept decodable for identity-element parity with the Schnorr
// backend).  Scalars remain BigInt mod n at the protocol layer and convert
// to fixed 4-limb form once per operation at this boundary.  All point
// arithmetic lives in curve256.{hpp,cpp}; this class only adapts it to the
// Group interface and owns the fixed-base comb tables.
#pragma once

#include <map>
#include <mutex>

#include "crypto/curve256.hpp"
#include "crypto/group.hpp"

namespace sintra::crypto {

class EcGroup final : public Group {
 public:
  EcGroup();

  /// Shared singleton (Group::curve_group() returns this upcast).
  static std::shared_ptr<const EcGroup> instance();

  [[nodiscard]] Element mul(const Element& a, const Element& b) const override;
  [[nodiscard]] Element exp(const Element& base, const BigInt& scalar) const override;
  [[nodiscard]] Element exp_g(const BigInt& scalar) const override;
  [[nodiscard]] Element exp2(const Element& b1, const BigInt& e1, const Element& b2,
                             const BigInt& e2) const override;
  [[nodiscard]] bool exp2_equals(const Element& b1, const BigInt& e1, const Element& b2,
                                 const BigInt& e2, const Element& expected) const override;
  [[nodiscard]] Element multi_exp(
      const std::vector<std::pair<Element, BigInt>>& pairs) const override;
  [[nodiscard]] Element inv(const Element& a) const override;
  [[nodiscard]] Element identity() const override;
  void precompute_base(const Element& base) const override;
  [[nodiscard]] bool is_element(const Element& a) const override;
  [[nodiscard]] bool is_residue(const Element& a) const override;
  [[nodiscard]] Element hash_to_element(std::string_view domain, BytesView data) const override;
  void encode_element(Writer& w, const Element& a) const override;
  [[nodiscard]] Element decode_element(Reader& r) const override;
  [[nodiscard]] Element decode_residue(Reader& r) const override;

 private:
  /// Reduce a protocol-layer exponent into the fixed-limb scalar form.
  [[nodiscard]] curve256::Scalar to_scalar(const BigInt& e) const;
  /// Comb table for `base` if it is the generator or a registered base whose
  /// table has been built (lazily, on its second use); nullptr otherwise.
  [[nodiscard]] const curve256::FixedBaseTable* table_for(const Element& base) const;
  /// base^e as a possibly-unnormalized point (comb table when available,
  /// GLV wNAF otherwise); callers either wrap() or compare projectively.
  [[nodiscard]] curve256::Point exp_unnormalized(const Element& base, const BigInt& e) const;

  curve256::FixedBaseTable g_table_;  ///< eager comb table for the generator

  // Bounded registry of long-lived bases (threshold public keys and
  // per-party verification keys).  Registration via precompute_base is
  // cheap; the comb table itself is built on an entry's second use so
  // one-shot protocol runs never pay the build.  Entries are never evicted,
  // so pointers into the map stay valid for the Group's lifetime.
  struct BaseEntry {
    int uses = 0;
    bool built = false;
    curve256::FixedBaseTable table;
  };
  mutable std::mutex base_cache_mutex_;
  mutable std::map<std::string, BaseEntry> base_cache_;
};

}  // namespace sintra::crypto
