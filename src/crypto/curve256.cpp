#include "crypto/curve256.hpp"

#include <algorithm>
#include <array>
#include <optional>

#include "common/assert.hpp"
#include "crypto/bigint.hpp"
#include "crypto/sha256.hpp"

namespace sintra::crypto::curve256 {

namespace {

using u64 = std::uint64_t;

// The complete formulas consume 3b = 21 for b = 7, passed to
// fe256::mul_small at each use site.

Fe curve_b() { return fe256::from_u64(7); }

// Generator of secp256k1, affine, little-endian limbs.
constexpr u64 kGx[4] = {0x59F2815B16F81798ULL, 0x029BFCDB2DCE28D9ULL, 0x55A06295CE870B07ULL,
                        0x79BE667EF9DCBBACULL};
constexpr u64 kGy[4] = {0x9C47D08FFB10D4B8ULL, 0xFD17B448A6855419ULL, 0x5DA4FBFC0E1108A8ULL,
                        0x483ADA7726A3C465ULL};

/// x^3 + 7 — the curve equation's right-hand side.
Fe rhs_of(const Fe& x) { return fe256::add(fe256::mul(fe256::sqr(x), x), curve_b()); }

/// Negate an affine (z == 1) point without touching z.
Point neg_affine(const Point& p) { return Point{p.x, fe256::neg(p.y), p.z}; }

// -- wNAF ------------------------------------------------------------------

constexpr int kMaxWnaf = 260;

bool limbs_zero(const u64 k[5]) { return (k[0] | k[1] | k[2] | k[3] | k[4]) == 0; }

void limbs_shr1(u64 k[5]) {
  for (int i = 0; i < 4; ++i) k[i] = (k[i] >> 1) | (k[i + 1] << 63);
  k[4] >>= 1;
}

void limbs_add_small(u64 k[5], u64 d) {
  unsigned __int128 cur = static_cast<unsigned __int128>(k[0]) + d;
  k[0] = static_cast<u64>(cur);
  u64 carry = static_cast<u64>(cur >> 64);
  for (int i = 1; i < 5 && carry != 0; ++i) {
    cur = static_cast<unsigned __int128>(k[i]) + carry;
    k[i] = static_cast<u64>(cur);
    carry = static_cast<u64>(cur >> 64);
  }
}

void limbs_sub_small(u64 k[5], u64 d) {
  u64 borrow = d;
  for (int i = 0; i < 5 && borrow != 0; ++i) {
    const u64 old = k[i];
    k[i] -= borrow;
    borrow = old < borrow ? 1 : 0;
  }
}

/// Width-w non-adjacent form: odd digits in (-2^(w-1), 2^(w-1)), at most one
/// nonzero per w consecutive positions.  Returns digit count.
int compute_wnaf(const Scalar& scalar, int width, std::int8_t out[kMaxWnaf]) {
  u64 k[5] = {scalar.v[0], scalar.v[1], scalar.v[2], scalar.v[3], 0};
  const u64 mask = (u64{1} << width) - 1;
  const int bound = 1 << (width - 1);
  int len = 0;
  while (!limbs_zero(k)) {
    int digit = 0;
    if (k[0] & 1) {
      digit = static_cast<int>(k[0] & mask);
      if (digit >= bound) digit -= 1 << width;
      if (digit > 0) {
        limbs_sub_small(k, static_cast<u64>(digit));
      } else {
        limbs_add_small(k, static_cast<u64>(-digit));
      }
    }
    out[len++] = static_cast<std::int8_t>(digit);
    limbs_shr1(k);
  }
  return len;
}

bool scalar_is_zero(const Scalar& k) { return (k.v[0] | k.v[1] | k.v[2] | k.v[3]) == 0; }

// -- GLV endomorphism ------------------------------------------------------
//
// secp256k1 admits the automorphism φ(x, y) = (βx, y) where β is a
// primitive cube root of unity in GF(p); φ acts on the group as
// multiplication by λ, a cube root of unity mod n.  Splitting a scalar k
// as k = k1 + k2·λ (mod n) with |k1|, |k2| ≈ √n turns one 256-bit
// multiplication chain into two interleaved ~128-bit chains sharing half
// as many doublings — the single biggest constant-factor win available on
// this curve.  Everything below is *derived at startup* (cube roots by
// exponentiation, the short lattice basis by the extended Euclid on
// (n, λ), the β↔λ pairing checked against a plain double-and-add), so no
// transcribed magic constants can silently be wrong.

BigInt scalar_to_bigint(const Scalar& k) {
  std::uint8_t be[32];
  for (int limb = 0; limb < 4; ++limb) {
    for (int byte = 0; byte < 8; ++byte) {
      be[(3 - limb) * 8 + byte] = static_cast<std::uint8_t>(k.v[limb] >> (8 * (7 - byte)));
    }
  }
  return BigInt::from_bytes(BytesView(be, sizeof(be)));
}

/// Magnitude of a (signed) BigInt as a Scalar; |value| must fit 256 bits.
Scalar bigint_abs_to_scalar(const BigInt& value) {
  const BigInt mag = value.is_negative() ? -value : value;
  const Bytes be = mag.to_bytes_padded(32);
  Scalar k;
  for (int limb = 0; limb < 4; ++limb) {
    u64 word = 0;
    for (int byte = 0; byte < 8; ++byte) {
      word = (word << 8) | be[static_cast<std::size_t>((3 - limb) * 8 + byte)];
    }
    k.v[limb] = word;
  }
  return k;
}

/// Reference double-and-add, used only to self-check the endomorphism
/// pairing at startup.
Point plain_mul(const Point& p, const BigInt& k) {
  Point acc = infinity();
  for (int bit = static_cast<int>(k.bit_length()) - 1; bit >= 0; --bit) {
    acc = dbl(acc);
    if (k.bit(static_cast<std::size_t>(bit))) acc = add(acc, p);
  }
  return acc;
}

/// Nearest-integer division for signed BigInt (ties away from zero).
BigInt divround(const BigInt& a, const BigInt& b) {
  // b is ±n here; normalize to positive divisor.
  const BigInt bp = b.is_negative() ? -b : b;
  const BigInt ap = b.is_negative() ? -a : a;
  const BigInt two(2);
  if (ap.is_negative()) return -(((-ap) * two + bp) / (bp * two));
  return (ap * two + bp) / (bp * two);
}

struct GlvContext {
  Fe beta;            ///< cube root of 1 in GF(p), paired with lambda
  Scalar lambda;      ///< cube root of 1 mod n (as a scalar)
  BigInt n;           ///< curve order
  BigInt v1x, v1y;    ///< short lattice basis vectors of
  BigInt v2x, v2y;    ///<   {(x, y) : x + y*lambda ≡ 0 mod n}
  BigInt det;         ///< v1x*v2y - v2x*v1y (= ±n)
};

const GlvContext& glv() {
  static const GlvContext ctx = [] {
    GlvContext c;
    // p and n from their limb forms.
    std::uint8_t pb[32];
    for (int limb = 0; limb < 4; ++limb) {
      for (int byte = 0; byte < 8; ++byte) {
        pb[(3 - limb) * 8 + byte] = static_cast<std::uint8_t>(fe256::kP[limb] >> (8 * (7 - byte)));
      }
    }
    const BigInt p = BigInt::from_bytes(BytesView(pb, sizeof(pb)));
    Scalar order_scalar;
    for (int i = 0; i < 4; ++i) order_scalar.v[i] = kOrder[i];
    c.n = scalar_to_bigint(order_scalar);

    // Cube roots of unity: x^((m-1)/3) for a base whose power is != 1.
    // (p ≡ 1 mod 3 and n ≡ 1 mod 3, so primitive cube roots exist.)
    const auto cube_root = [](const BigInt& m) {
      const BigInt exp = (m - BigInt(1)) / BigInt(3);
      for (std::uint64_t base = 2;; ++base) {
        const BigInt root = BigInt::pow_mod(BigInt(base), exp, m);
        if (!root.is_one()) return root;
      }
    };
    const BigInt lambda = cube_root(c.n);
    BigInt beta = cube_root(p);

    // Pair beta with lambda: phi(G) must equal lambda*G; the wrong root of
    // the pair is fixed by squaring (the other primitive root).
    const Point lambda_g = plain_mul(generator(), lambda);
    const auto phi_matches = [&](const BigInt& candidate) {
      Fe bf;
      const Bytes be = candidate.to_bytes_padded(32);
      SINTRA_INVARIANT(fe256::from_bytes(be.data(), bf), "curve256: beta out of range");
      Point image = generator();
      image.x = fe256::mul(image.x, bf);
      return eq(image, lambda_g) ? std::optional<Fe>(bf) : std::nullopt;
    };
    auto matched = phi_matches(beta);
    if (!matched) matched = phi_matches(BigInt::mul_mod(beta, beta, p));
    SINTRA_INVARIANT(matched.has_value(), "curve256: no beta pairs with lambda");
    c.beta = *matched;
    c.lambda = bigint_abs_to_scalar(lambda);

    // Short basis for the GLV lattice via the extended Euclid on (n, λ):
    // every remainder r_i = t_i·λ (mod n), so (r_i, -t_i) is a lattice
    // vector; the first two remainders below √n give a reduced basis.
    BigInt r0 = c.n, r1 = lambda;
    BigInt t0(0), t1(1);
    const BigInt half_bound = BigInt(1).shifted_left(129);  // > √n
    std::vector<std::pair<BigInt, BigInt>> rows;
    while (!r1.is_zero() && rows.size() < 2) {
      const BigInt q = r0 / r1;
      BigInt r2 = r0 - q * r1;
      BigInt t2 = t0 - q * t1;
      r0 = r1; r1 = r2; t0 = t1; t1 = t2;
      if (r0.bit_length() <= 128 || r0 < half_bound) rows.emplace_back(r0, -t0);
    }
    SINTRA_INVARIANT(rows.size() == 2, "curve256: GLV basis reduction failed");
    c.v1x = rows[0].first;  c.v1y = rows[0].second;
    c.v2x = rows[1].first;  c.v2y = rows[1].second;
    c.det = c.v1x * c.v2y - c.v2x * c.v1y;
    SINTRA_INVARIANT((c.det.is_negative() ? -c.det : c.det) == c.n,
                     "curve256: GLV basis determinant is not ±n");
    return c;
  }();
  return ctx;
}

/// k = k1 + k2·λ (mod n) with |k1|, |k2| < 2^129; signs carried separately.
struct Split {
  Scalar k1, k2;
  bool neg1 = false, neg2 = false;
};

Split glv_split(const Scalar& k) {
  const GlvContext& c = glv();
  const BigInt kb = scalar_to_bigint(k);
  // Round (k, 0) to the nearest lattice point c1*v1 + c2*v2 and subtract.
  const BigInt c1 = divround(kb * c.v2y, c.det);
  const BigInt c2 = divround(-(kb * c.v1y), c.det);
  const BigInt k1 = kb - c1 * c.v1x - c2 * c.v2x;
  const BigInt k2 = -(c1 * c.v1y) - c2 * c.v2y;
  SINTRA_INVARIANT(k1.bit_length() <= 130 && k2.bit_length() <= 130,
                   "curve256: GLV split out of range");
  Split s;
  s.k1 = bigint_abs_to_scalar(k1);
  s.neg1 = k1.is_negative();
  s.k2 = bigint_abs_to_scalar(k2);
  s.neg2 = k2.is_negative();
  return s;
}

/// φ applied to an affine point: x scales by β, y and z unchanged.
Point apply_endo(const Point& p_affine) {
  return Point{fe256::mul(p_affine.x, glv().beta), p_affine.y, p_affine.z};
}

/// `count` bits of k starting at bit `pos` (little-endian bit order).
unsigned scalar_bits(const Scalar& k, int pos, int count) {
  const int limb = pos >> 6;
  const int shift = pos & 63;
  u64 v = k.v[limb] >> shift;
  if (shift + count > 64 && limb + 1 < 4) v |= k.v[limb + 1] << (64 - shift);
  return static_cast<unsigned>(v & ((u64{1} << count) - 1));
}

/// Odd multiples {1, 3, ..., 2*`entries`-1} * p, batch-normalized to affine.
/// p must not be infinity.
std::vector<Point> odd_multiples(const Point& p, int entries) {
  std::vector<Point> table;
  table.reserve(static_cast<std::size_t>(entries));
  const Point two_p = dbl(p);
  table.push_back(p);
  for (int i = 1; i < entries; ++i) table.push_back(add(table.back(), two_p));
  batch_normalize(table.data(), table.size());
  return table;
}

/// One interleaved wNAF stream: digits over an affine odd-multiple table,
/// with an optional whole-stream negation (how GLV half-scalar signs are
/// carried without touching the digits).
struct WnafStream {
  const std::int8_t* digits = nullptr;
  int len = 0;
  const Point* table = nullptr;  ///< affine odd multiples 1B, 3B, 5B, ...
  bool negate = false;
};

/// Shared-doubling evaluation of any number of wNAF streams.
Point wnaf_eval(const WnafStream* streams, std::size_t count) {
  int max_len = 0;
  for (std::size_t s = 0; s < count; ++s) max_len = std::max(max_len, streams[s].len);
  Point acc = infinity();
  for (int i = max_len - 1; i >= 0; --i) {
    acc = dbl(acc);
    for (std::size_t s = 0; s < count; ++s) {
      const WnafStream& st = streams[s];
      if (i >= st.len) continue;
      const std::int8_t d = st.digits[i];
      if (d == 0) continue;
      const Point& e = st.table[static_cast<std::size_t>((d > 0 ? d : -d) >> 1)];
      const bool positive = (d > 0) != st.negate;
      acc = add_mixed(acc, positive ? e : neg_affine(e));
    }
  }
  return acc;
}

/// Pippenger bucket method for large batches (the batch verifier's
/// multi-exponentiation): one pass per c-bit window, each point dropped
/// into the bucket of its digit, buckets collapsed by the running-sum
/// trick.  ~(bits/c) * (k + 2^c) additions total.  Callers feed GLV
/// half-scalars, so `scalar_bits_bound` is ~130, not 256.
Point pippenger(const std::vector<std::pair<Point, Scalar>>& terms, int scalar_bits_bound) {
  const std::size_t k = terms.size();
  // Each window pays 2*(2^c - 1) projective adds to collapse its buckets
  // on top of k mixed adds for the drops, so c must stay small until the
  // drops dominate: minimizing (bits/c)*(k*madd + 2^(c+1)*add) over c
  // gives ~7 around a thousand points and grows by one per ~4x more.
  const int c = k < 2048 ? 7 : (k < 8192 ? 8 : 10);
  const int windows = (scalar_bits_bound + c - 1) / c;
  std::vector<Point> buckets(static_cast<std::size_t>((1 << c) - 1));
  Point total = infinity();
  for (int w = windows - 1; w >= 0; --w) {
    for (int i = 0; i < c; ++i) total = dbl(total);
    for (Point& b : buckets) b = infinity();
    const int pos = w * c;
    const int width = std::min(c, 256 - pos);
    for (const auto& [point, scalar] : terms) {
      const unsigned digit = scalar_bits(scalar, pos, width);
      if (digit != 0) {
        Point& b = buckets[digit - 1];
        b = add_mixed(b, point);
      }
    }
    Point running = infinity();
    Point window_sum = infinity();
    for (std::size_t j = buckets.size(); j-- > 0;) {
      running = add(running, buckets[j]);
      window_sum = add(window_sum, running);
    }
    total = add(total, window_sum);
  }
  return total;
}

}  // namespace

Point infinity() {
  Point p;
  p.x = fe256::zero();
  p.y = fe256::one();
  p.z = fe256::zero();
  return p;
}

const Point& generator() {
  static const Point g = [] {
    Point p;
    for (int i = 0; i < 4; ++i) {
      p.x.v[i] = kGx[i];
      p.y.v[i] = kGy[i];
    }
    p.z = fe256::one();
    return p;
  }();
  return g;
}

bool is_infinity(const Point& p) { return fe256::is_zero(p.z); }

// Complete projective addition for a = 0 short-Weierstrass curves
// (Renes–Costello–Batina 2016, algorithm 7): 12M + 2m_b3 + 19a, valid for
// every input pair including doublings and the point at infinity.
Point add(const Point& p, const Point& q) {
  using namespace fe256;
  Fe t0 = mul(p.x, q.x);
  Fe t1 = mul(p.y, q.y);
  Fe t2 = mul(p.z, q.z);
  Fe t3 = mul(add(p.x, p.y), add(q.x, q.y));
  Fe t4 = add(t0, t1);
  t3 = sub(t3, t4);
  t4 = mul(add(p.y, p.z), add(q.y, q.z));
  Fe x3 = add(t1, t2);
  t4 = sub(t4, x3);
  x3 = mul(add(p.x, p.z), add(q.x, q.z));
  Fe y3 = add(t0, t2);
  y3 = sub(x3, y3);
  t0 = fe256::mul_small(t0, 3);
  t2 = fe256::mul_small(t2, 21);
  Fe z3 = add(t1, t2);
  t1 = sub(t1, t2);
  y3 = fe256::mul_small(y3, 21);
  x3 = mul(t4, y3);
  t2 = mul(t3, t1);
  x3 = sub(t2, x3);
  y3 = mul(y3, t0);
  t1 = mul(t1, z3);
  y3 = add(t1, y3);
  t0 = mul(t0, t3);
  z3 = mul(z3, t4);
  z3 = add(z3, t0);
  return Point{x3, y3, z3};
}

// Algorithm 8 (mixed addition, Z2 = 1): 11M + 2m_b3 + 13a; complete for any
// projective p as long as q is a finite affine point.
Point add_mixed(const Point& p, const Point& q_affine) {
  using namespace fe256;
  Fe t0 = mul(p.x, q_affine.x);
  Fe t1 = mul(p.y, q_affine.y);
  Fe t3 = add(q_affine.x, q_affine.y);
  Fe t4 = add(p.x, p.y);
  t3 = mul(t3, t4);
  t4 = add(t0, t1);
  t3 = sub(t3, t4);
  t4 = mul(q_affine.y, p.z);
  t4 = add(t4, p.y);
  Fe y3 = mul(q_affine.x, p.z);
  y3 = add(y3, p.x);
  t0 = fe256::mul_small(t0, 3);
  Fe t2 = fe256::mul_small(p.z, 21);
  Fe z3 = add(t1, t2);
  t1 = sub(t1, t2);
  y3 = fe256::mul_small(y3, 21);
  Fe x3 = mul(t4, y3);
  t2 = mul(t3, t1);
  x3 = sub(t2, x3);
  y3 = mul(y3, t0);
  t1 = mul(t1, z3);
  y3 = add(t1, y3);
  t0 = mul(t0, t3);
  z3 = mul(z3, t4);
  z3 = add(z3, t0);
  return Point{x3, y3, z3};
}

// Algorithm 9 (doubling, a = 0): 6M + 2S + 1m_b3 + 9a.
Point dbl(const Point& p) {
  using namespace fe256;
  Fe t0 = sqr(p.y);
  Fe z3 = fe256::mul_small(t0, 8);
  Fe t1 = mul(p.y, p.z);
  Fe t2 = sqr(p.z);
  t2 = fe256::mul_small(t2, 21);
  Fe x3 = mul(t2, z3);
  Fe y3 = add(t0, t2);
  z3 = mul(t1, z3);
  t0 = sub(t0, fe256::mul_small(t2, 3));
  y3 = mul(t0, y3);
  y3 = add(x3, y3);
  t1 = mul(p.x, p.y);
  x3 = mul(t0, t1);
  x3 = add(x3, x3);
  return Point{x3, y3, z3};
}

Point neg(const Point& p) { return Point{p.x, fe256::neg(p.y), p.z}; }

bool eq(const Point& p, const Point& q) {
  const bool pi = is_infinity(p);
  const bool qi = is_infinity(q);
  if (pi || qi) return pi == qi;
  return fe256::eq(fe256::mul(p.x, q.z), fe256::mul(q.x, p.z)) &&
         fe256::eq(fe256::mul(p.y, q.z), fe256::mul(q.y, p.z));
}

bool on_curve(const Point& p) {
  if (is_infinity(p)) return true;
  if (!fe256::eq(p.z, fe256::one())) return false;
  return fe256::eq(fe256::sqr(p.y), rhs_of(p.x));
}

void normalize(Point& p) {
  if (is_infinity(p)) {
    p = infinity();
    return;
  }
  if (fe256::eq(p.z, fe256::one())) return;
  const Fe zinv = fe256::inv(p.z);
  p.x = fe256::mul(p.x, zinv);
  p.y = fe256::mul(p.y, zinv);
  p.z = fe256::one();
}

void batch_normalize(Point* pts, std::size_t count) {
  // Montgomery's trick: prefix-multiply the z's, invert the total once,
  // then peel per-point inverses off the running product backwards.
  std::vector<Fe> prefix(count);
  Fe acc = fe256::one();
  for (std::size_t i = 0; i < count; ++i) {
    prefix[i] = acc;
    if (!is_infinity(pts[i])) acc = fe256::mul(acc, pts[i].z);
  }
  Fe inv_acc = fe256::inv(acc);
  for (std::size_t i = count; i-- > 0;) {
    if (is_infinity(pts[i])) {
      pts[i] = infinity();
      continue;
    }
    const Fe zinv = fe256::mul(inv_acc, prefix[i]);
    inv_acc = fe256::mul(inv_acc, pts[i].z);
    pts[i].x = fe256::mul(pts[i].x, zinv);
    pts[i].y = fe256::mul(pts[i].y, zinv);
    pts[i].z = fe256::one();
  }
}

Point mul(const Point& p, const Scalar& k) {
  if (is_infinity(p) || scalar_is_zero(k)) return infinity();
  Point base = p;
  normalize(base);
  // GLV: k*P = k1*P + k2*φ(P) with ~129-bit halves, so the shared doubling
  // chain is half as long.  φ's table costs one field multiply per entry.
  const Split s = glv_split(k);
  const std::vector<Point> table = odd_multiples(base, 8);  // 1P..15P
  std::vector<Point> phi_table(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) phi_table[i] = apply_endo(table[i]);
  std::int8_t d1[kMaxWnaf];
  std::int8_t d2[kMaxWnaf];
  const WnafStream streams[2] = {
      {d1, compute_wnaf(s.k1, 5, d1), table.data(), s.neg1},
      {d2, compute_wnaf(s.k2, 5, d2), phi_table.data(), s.neg2},
  };
  return wnaf_eval(streams, 2);
}

Point mul2(const Point& p, const Scalar& k1, const Point& q, const Scalar& k2) {
  const bool skip1 = is_infinity(p) || scalar_is_zero(k1);
  const bool skip2 = is_infinity(q) || scalar_is_zero(k2);
  if (skip1 && skip2) return infinity();
  if (skip1) return mul(q, k2);
  if (skip2) return mul(p, k1);
  // Both odd-multiple tables share one batch normalization (a single field
  // inversion for all 16 entries).
  Point base1 = p;
  Point base2 = q;
  normalize(base1);
  normalize(base2);
  std::vector<Point> tables;
  tables.reserve(16);
  const Point two1 = dbl(base1);
  tables.push_back(base1);
  for (int i = 1; i < 8; ++i) tables.push_back(add(tables.back(), two1));
  const Point two2 = dbl(base2);
  tables.push_back(base2);
  for (int i = 1; i < 8; ++i) tables.push_back(add(tables.back(), two2));
  batch_normalize(tables.data(), tables.size());
  // φ copies of both tables (entries stay affine; x scales by β), then four
  // half-scalar streams over the one shared doubling chain.
  std::vector<Point> phi(tables.size());
  for (std::size_t i = 0; i < tables.size(); ++i) phi[i] = apply_endo(tables[i]);
  const Split s1 = glv_split(k1);
  const Split s2 = glv_split(k2);
  std::int8_t d1a[kMaxWnaf];
  std::int8_t d1b[kMaxWnaf];
  std::int8_t d2a[kMaxWnaf];
  std::int8_t d2b[kMaxWnaf];
  const WnafStream streams[4] = {
      {d1a, compute_wnaf(s1.k1, 5, d1a), tables.data(), s1.neg1},
      {d1b, compute_wnaf(s1.k2, 5, d1b), phi.data(), s1.neg2},
      {d2a, compute_wnaf(s2.k1, 5, d2a), tables.data() + 8, s2.neg1},
      {d2b, compute_wnaf(s2.k2, 5, d2b), phi.data() + 8, s2.neg2},
  };
  return wnaf_eval(streams, 4);
}

Point multi_mul(const std::vector<std::pair<Point, Scalar>>& terms) {
  std::vector<std::pair<Point, Scalar>> live;
  live.reserve(terms.size());
  for (const auto& term : terms) {
    if (!is_infinity(term.first) && !scalar_is_zero(term.second)) live.push_back(term);
  }
  if (live.empty()) return infinity();
  if (live.size() == 1) return mul(live[0].first, live[0].second);
  if (live.size() == 2) return mul2(live[0].first, live[0].second, live[1].first, live[1].second);

  if (live.size() >= 512) {
    // Pippenger's bucket collapse cost per window is independent of k, so
    // it only overtakes Strauss (whose per-term cost is flat at ~22 mixed
    // adds per half-scalar) once the per-window bucket drops dominate the
    // collapse — measured crossover is around a thousand half-terms, not
    // dozens (at k=33 the old >=32 cutoff made it 4x slower than Strauss).
    // Pippenger needs affine inputs for its mixed bucket additions.  Each
    // term splits into two half-scalar terms — twice the bucket drops, but
    // the window count (and thus the doubling/collapse cost) halves.
    std::vector<Point> pts;
    pts.reserve(live.size());
    for (const auto& term : live) pts.push_back(term.first);
    batch_normalize(pts.data(), pts.size());
    std::vector<std::pair<Point, Scalar>> halves;
    halves.reserve(2 * live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      const Split s = glv_split(live[i].second);
      if (!scalar_is_zero(s.k1)) {
        halves.emplace_back(s.neg1 ? neg_affine(pts[i]) : pts[i], s.k1);
      }
      if (!scalar_is_zero(s.k2)) {
        const Point phi = apply_endo(pts[i]);
        halves.emplace_back(s.neg2 ? neg_affine(phi) : phi, s.k2);
      }
    }
    if (halves.empty()) return infinity();
    return pippenger(halves, 132);  // halves are < 2^130
  }

  // Strauss: interleave width-4 wNAFs over one shared doubling chain; all
  // odd-multiple tables ({1,3,5,7} * P_i) normalized by one inversion, with
  // φ copies carrying each term's second half-scalar.
  const std::size_t k = live.size();
  std::vector<Point> flat;
  flat.reserve(4 * k);
  for (const auto& [point, scalar] : live) {
    Point base = point;
    normalize(base);
    const Point two = dbl(base);
    flat.push_back(base);
    for (int i = 1; i < 4; ++i) flat.push_back(add(flat.back(), two));
  }
  batch_normalize(flat.data(), flat.size());
  std::vector<Point> phi_flat(flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) phi_flat[i] = apply_endo(flat[i]);
  std::vector<std::array<std::int8_t, kMaxWnaf>> digits(2 * k);
  std::vector<WnafStream> streams;
  streams.reserve(2 * k);
  for (std::size_t i = 0; i < k; ++i) {
    const Split s = glv_split(live[i].second);
    streams.push_back({digits[2 * i].data(), compute_wnaf(s.k1, 4, digits[2 * i].data()),
                       flat.data() + 4 * i, s.neg1});
    streams.push_back({digits[2 * i + 1].data(), compute_wnaf(s.k2, 4, digits[2 * i + 1].data()),
                       phi_flat.data() + 4 * i, s.neg2});
  }
  return wnaf_eval(streams.data(), streams.size());
}

FixedBaseTable build_fixed_base(const Point& base, int width) {
  SINTRA_INVARIANT(width >= 1 && width <= 10, "curve256: comb width out of range");
  FixedBaseTable table;
  table.width = width;
  if (is_infinity(base)) return table;  // mul_fixed on an empty table is infinity
  Point cur = base;
  normalize(cur);
  const int blocks = (256 + width - 1) / width;
  std::vector<Point> flat;
  std::vector<std::size_t> offsets;
  offsets.reserve(static_cast<std::size_t>(blocks) + 1);
  for (int i = 0; i < blocks; ++i) {
    // The last block covers only the scalar bits that remain, so its digit
    // (and entry count) shrinks accordingly.
    const int bw = std::min(width, 256 - width * i);
    const int entries = (1 << bw) - 1;
    offsets.push_back(flat.size());
    // block entries j * (2^(width*i) * base), j = 1..entries; then advance.
    flat.push_back(cur);
    for (int j = 2; j <= entries; ++j) flat.push_back(add(flat.back(), cur));
    cur = add(flat.back(), cur);
  }
  offsets.push_back(flat.size());
  batch_normalize(flat.data(), flat.size());
  table.blocks.resize(static_cast<std::size_t>(blocks));
  for (int i = 0; i < blocks; ++i) {
    table.blocks[static_cast<std::size_t>(i)].assign(
        flat.begin() + static_cast<std::ptrdiff_t>(offsets[static_cast<std::size_t>(i)]),
        flat.begin() + static_cast<std::ptrdiff_t>(offsets[static_cast<std::size_t>(i) + 1]));
  }
  return table;
}

Point mul_fixed(const FixedBaseTable& table, const Scalar& k) {
  const int width = table.width;
  Point acc = infinity();
  for (std::size_t i = 0; i < table.blocks.size(); ++i) {
    const int pos = width * static_cast<int>(i);
    const int bw = std::min(width, 256 - pos);
    const unsigned digit = scalar_bits(k, pos, bw);
    if (digit != 0) acc = add_mixed(acc, table.blocks[i][digit - 1]);
  }
  return acc;
}

const Fe& endo_beta() { return glv().beta; }

const Scalar& endo_lambda() { return glv().lambda; }

void encode(const Point& p, std::uint8_t out[kEncodedBytes]) {
  if (is_infinity(p)) {
    for (std::size_t i = 0; i < kEncodedBytes; ++i) out[i] = 0;
    return;
  }
  SINTRA_INVARIANT(fe256::eq(p.z, fe256::one()), "curve256: encoding unnormalized point");
  out[0] = fe256::is_odd(p.y) ? 0x03 : 0x02;
  fe256::to_bytes(p.x, out + 1);
}

bool decode(const std::uint8_t in[kEncodedBytes], Point& out) {
  if (in[0] == 0x00) {
    for (std::size_t i = 1; i < kEncodedBytes; ++i) {
      if (in[i] != 0) return false;  // non-canonical infinity
    }
    out = infinity();
    return true;
  }
  if (in[0] != 0x02 && in[0] != 0x03) return false;
  Fe x;
  if (!fe256::from_bytes(in + 1, x)) return false;  // x >= p: non-canonical
  Fe y;
  if (!fe256::sqrt(rhs_of(x), y)) return false;  // x not on the curve
  if (fe256::is_odd(y) != (in[0] == 0x03)) y = fe256::neg(y);
  out = Point{x, y, fe256::one()};
  return true;
}

Point hash_to_curve(std::string_view domain, BytesView data) {
  // Try-and-increment: deterministic, ~2 attempts expected.  The candidate
  // x comes from a domain-separated XOF so no structure of `data` survives,
  // and the parity byte picks the y root.  Cofactor 1 means any finite
  // curve point already has prime order n.
  for (std::uint32_t counter = 0;; ++counter) {
    Bytes attempt(data.begin(), data.end());
    for (int i = 0; i < 4; ++i) {
      attempt.push_back(static_cast<std::uint8_t>(counter >> (8 * i)));
    }
    const Bytes wide = hash_expand(domain, attempt, kEncodedBytes);
    Fe x;
    if (!fe256::from_bytes(wide.data() + 1, x)) continue;
    Fe y;
    if (!fe256::sqrt(rhs_of(x), y)) continue;
    if (fe256::is_odd(y) != ((wide[0] & 1) != 0)) y = fe256::neg(y);
    return Point{x, y, fe256::one()};
  }
}

}  // namespace sintra::crypto::curve256
