// TDH2 threshold cryptosystem of Shoup & Gennaro (EUROCRYPT '98).
//
// This is the cryptosystem the paper requires for *secure causal atomic
// broadcast* (Section 3): client requests are encrypted under the single
// service public key, atomically ordered as ciphertexts, and only then
// threshold-decrypted.  Security against adaptive chosen-ciphertext attack
// is essential — a weaker scheme would let a corrupted server submit a
// *related* request and violate causality (the paper's patent-office
// front-running example).
//
// TDH2 achieves CCA2 security in the random-oracle model by attaching to
// each ElGamal-style ciphertext a simulation-sound NIZK of well-formedness
// (a Chaum–Pedersen-style proof that u = g^r and u_bar = gbar^r for the
// same r), bound to an application-chosen *label*.  Decryption shares carry
// DLEQ validity proofs, so combination is robust.
#pragma once

#include <optional>

#include "crypto/group.hpp"
#include "crypto/nizk.hpp"
#include "crypto/sharing.hpp"

namespace sintra::crypto {

class Tdh2PublicKey;

/// Ciphertext (c, L, u, u_bar, w, w_bar, f): symmetric part c, label L,
/// ElGamal element u, consistency element u_bar, and the Fiat–Shamir
/// well-formedness proof in commitment form (w = g^s, w_bar = gbar^s,
/// response f) — see nizk.hpp for why commitment form enables batching.
struct Tdh2Ciphertext {
  Bytes data;    ///< message XOR mask(h^r)
  Bytes label;
  Element u;      ///< g^r
  Element u_bar;  ///< gbar^r
  Element w;      ///< proof commitment g^s
  Element w_bar;  ///< proof commitment gbar^s
  BigInt f;      ///< response s + e*r

  /// Collision-resistant identifier binding decryption shares to this exact
  /// ciphertext.
  [[nodiscard]] Bytes id(const Group& group) const;

  void encode(Writer& w, const Group& group) const;
  static Tdh2Ciphertext decode(Reader& r, const Group& group);
};

/// Fiat–Shamir challenge of the ciphertext well-formedness proof.  Exposed
/// for the batch verifier in crypto/batch.hpp.
BigInt tdh2_ciphertext_challenge(const Group& group, BytesView data, BytesView label,
                                 const Element& u, const Element& w_elem, const Element& u_bar,
                                 const Element& w_bar);

/// DLEQ context string binding a decryption-share proof to (unit, ct id).
std::string tdh2_share_context(int unit, BytesView ct_id);

/// One unit's decryption share with validity proof.
struct Tdh2DecShare {
  int unit = 0;
  Element value;  ///< u^{x_unit}
  DleqProof proof;

  void encode(Writer& w, const Group& group) const;
  static Tdh2DecShare decode(Reader& r, const Group& group);
};

class Tdh2SecretKey {
 public:
  Tdh2SecretKey(int party, std::map<int, BigInt> unit_shares)
      : party_(party), unit_shares_(std::move(unit_shares)) {}

  [[nodiscard]] int party() const { return party_; }
  /// Exposed for the refresh/reconfiguration extensions.
  [[nodiscard]] const std::map<int, BigInt>& unit_shares() const { return unit_shares_; }

  /// Produce decryption shares for a ciphertext; empty if the ciphertext is
  /// invalid (an honest party refuses to decrypt malformed ciphertexts —
  /// that refusal is what defeats chosen-ciphertext attacks).
  [[nodiscard]] std::vector<Tdh2DecShare> decrypt_shares(const Tdh2PublicKey& pk,
                                                         const Tdh2Ciphertext& ct,
                                                         Rng& rng) const;

 private:
  int party_;
  std::map<int, BigInt> unit_shares_;
};

class Tdh2PublicKey {
 public:
  Tdh2PublicKey(GroupPtr group, std::shared_ptr<const LinearScheme> scheme, Element h,
                std::vector<Element> verification);

  [[nodiscard]] const Group& group() const { return *group_; }
  [[nodiscard]] const LinearScheme& scheme() const { return *scheme_; }
  [[nodiscard]] const Element& h() const { return h_; }
  [[nodiscard]] const Element& g_bar() const { return g_bar_; }
  [[nodiscard]] const Element& verification(int unit) const { return verification_.at(unit); }

  [[nodiscard]] Tdh2Ciphertext encrypt(BytesView message, BytesView label, Rng& rng) const;

  /// Well-formedness check every honest party runs before decrypting.
  [[nodiscard]] bool check_ciphertext(const Tdh2Ciphertext& ct) const;

  [[nodiscard]] bool verify_share(const Tdh2Ciphertext& ct, const Tdh2DecShare& share) const;

  /// Combine verified shares; nullopt if owners are unqualified or the
  /// ciphertext is invalid.
  [[nodiscard]] std::optional<Bytes> combine(const Tdh2Ciphertext& ct,
                                             const std::vector<Tdh2DecShare>& shares) const;

 private:
  GroupPtr group_;
  std::shared_ptr<const LinearScheme> scheme_;
  Element h_;
  Element g_bar_;
  std::vector<Element> verification_;  ///< unit -> g^{x_unit}
};

struct Tdh2Deal {
  Tdh2PublicKey public_key;
  std::vector<Tdh2SecretKey> secret_keys;

  static Tdh2Deal deal(GroupPtr group, std::shared_ptr<const LinearScheme> scheme, Rng& rng);
};

}  // namespace sintra::crypto
