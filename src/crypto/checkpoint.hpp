// Certified checkpoint format (issue 8).
//
// A checkpoint certificate is a threshold signature — under the dealt
// certificate key, so it works identically for classical thresholds and
// generalized Q³/LSSS access structures — over the tuple
// (round, delivered-count, delivered-prefix chain digest).  Because the
// signed digest is a running hash chain over the agreed delivery log, the
// certificate simultaneously covers the total order ("epoch" = the round
// the chain had reached) and the protocol state (for atomic broadcast the
// delivered prefix IS the replicated state: re-firing its deliveries
// rebuilds every deterministic layer above).
//
// Any qualified set of honest parties can mint one, any third party can
// verify it with the single service public key, and a blank replica can
// trust a snapshot fetched from an untrusted peer as long as the snapshot
// re-hashes to the certified chain digest (net/state_transfer.hpp).
#pragma once

#include <string_view>

#include "crypto/threshold_sig.hpp"

namespace sintra::crypto {

/// Length of a delivery-chain digest (SHA-256).
inline constexpr std::size_t kChainDigestBytes = 32;

/// The chain before anything was delivered.
Bytes chain_initial();

/// Extend the running chain digest by one delivered (origin, payload).
Bytes chain_extend(BytesView chain, int origin, BytesView payload);

struct CheckpointCert {
  std::uint32_t round = 0;            ///< atomic-broadcast round certified
  std::uint64_t delivered_count = 0;  ///< deliveries in the certified prefix
  Bytes chain_digest;                 ///< running chain over that prefix
  BigInt signature;                   ///< combined threshold signature

  /// The statement the signature shares sign, domain-separated by the
  /// owning instance's tag so certificates never transfer across groups.
  [[nodiscard]] Bytes statement(std::string_view instance_tag) const;

  /// Verify the combined signature against the service certificate key.
  [[nodiscard]] bool verify(const ThresholdSigPublicKey& pk,
                            std::string_view instance_tag) const;

  void encode(Writer& w) const;
  static CheckpointCert decode(Reader& r);
};

}  // namespace sintra::crypto
