#include "crypto/checkpoint.hpp"

#include "crypto/sha256.hpp"

namespace sintra::crypto {

Bytes chain_initial() { return Bytes(kChainDigestBytes, 0); }

Bytes chain_extend(BytesView chain, int origin, BytesView payload) {
  Writer w;
  w.raw(chain);
  w.u32(static_cast<std::uint32_t>(origin));
  w.bytes(payload);
  auto digest = hash_domain("sintra/ckpt/chain", w.data());
  return Bytes(digest.begin(), digest.end());
}

Bytes CheckpointCert::statement(std::string_view instance_tag) const {
  Writer w;
  w.str("sintra/ckpt/cert");
  w.str(std::string(instance_tag));
  w.u32(round);
  w.u64(delivered_count);
  w.raw(chain_digest);
  return w.take();
}

bool CheckpointCert::verify(const ThresholdSigPublicKey& pk,
                            std::string_view instance_tag) const {
  if (chain_digest.size() != kChainDigestBytes) return false;
  return pk.verify(statement(instance_tag), signature);
}

void CheckpointCert::encode(Writer& w) const {
  w.u32(round);
  w.u64(delivered_count);
  w.bytes(chain_digest);
  signature.encode(w);
}

CheckpointCert CheckpointCert::decode(Reader& r) {
  CheckpointCert cert;
  cert.round = r.u32();
  cert.delivered_count = r.u64();
  cert.chain_digest = r.bytes();
  SINTRA_REQUIRE(cert.chain_digest.size() == kChainDigestBytes,
                 "ckpt: bad chain digest length");
  cert.signature = BigInt::decode(r);
  return cert;
}

}  // namespace sintra::crypto
