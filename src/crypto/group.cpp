#include "crypto/group.hpp"

#include "common/assert.hpp"
#include "crypto/group_curve.hpp"
#include "crypto/group_schnorr.hpp"
#include "crypto/sha256.hpp"

namespace sintra::crypto {

Group::Group(BigInt q, std::string name, std::size_t element_bytes)
    : q_(std::move(q)), name_(std::move(name)), element_bytes_(element_bytes),
      scalar_bytes_((q_.bit_length() + 7) / 8) {}

std::shared_ptr<const Group> Group::test_group() { return SchnorrGroup::test(); }

std::shared_ptr<const Group> Group::default_group() { return SchnorrGroup::production(); }

std::shared_ptr<const Group> Group::big_group() { return SchnorrGroup::big(); }

std::shared_ptr<const Group> Group::curve_group() { return EcGroup::instance(); }

std::shared_ptr<const Group> Group::by_name(std::string_view name) {
  for (const auto& candidate :
       {test_group(), default_group(), big_group(), curve_group()}) {
    if (candidate->name() == name) return candidate;
  }
  throw ProtocolError("Group: unknown group name '" + std::string(name) + "'");
}

bool Group::exp2_equals(const Element& b1, const BigInt& e1, const Element& b2, const BigInt& e2,
                        const Element& expected) const {
  return exp2(b1, e1, b2, e2) == expected;
}

BigInt Group::scalar_add(const BigInt& a, const BigInt& b) const {
  return BigInt::add_mod(a, b, q_);
}

BigInt Group::scalar_sub(const BigInt& a, const BigInt& b) const {
  return BigInt::sub_mod(a, b, q_);
}

BigInt Group::scalar_mul(const BigInt& a, const BigInt& b) const {
  return BigInt::mul_mod(a, b, q_);
}

BigInt Group::scalar_inv(const BigInt& a) const {
  return BigInt::inverse_mod(a, q_);
}

bool Group::is_scalar(const BigInt& a) const {
  return !a.is_negative() && a < q_;
}

BigInt Group::hash_to_scalar(std::string_view domain, BytesView data) const {
  // Expand past the modulus width to make the residue statistically close
  // to uniform mod q.
  Bytes wide = hash_expand(domain, data, scalar_bytes_ + 16);
  return BigInt::from_bytes(wide).mod(q_);
}

void Group::encode_scalar(Writer& w, const BigInt& a) const {
  w.raw(a.to_bytes_padded(scalar_bytes_));
}

BigInt Group::decode_scalar(Reader& r) const {
  BigInt a = BigInt::from_bytes(r.raw(scalar_bytes_));
  SINTRA_REQUIRE(is_scalar(a), "Group: scalar out of range");
  return a;
}

}  // namespace sintra::crypto
