// Linear secret sharing — the abstraction that makes every threshold
// primitive in this architecture (coin, signatures, TDH2) work unchanged
// for both the classical t-of-n model and the paper's generalized Q³
// adversary structures (Section 4).
//
// A LinearScheme assigns each party one or more share *units*.  Dealing maps
// a secret (mod a dealer-chosen modulus) to one value per unit.  For any
// qualified party set, `coefficients` returns integer coefficients c_j over
// a subset of the available units such that
//
//     sum_j c_j * share_j  ==  delta() * secret   (mod dealing modulus).
//
// The Δ-clearing form is what Shoup's threshold RSA needs (shares live in a
// group of secret order, so only *integer* linear combinations make sense);
// schemes over Z_q simply multiply by delta()^{-1} mod q afterwards.
// Plain Shamir sharing (shamir.hpp) and the Benaloh–Leichter construction
// for monotone formulas (adversary/lsss.hpp) both implement this interface.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "crypto/bigint.hpp"

namespace sintra::crypto {

/// Set of parties as a bitmask; the architecture targets n <= 64, far above
/// the paper's examples (n = 9 and n = 16).
using PartySet = std::uint64_t;

constexpr PartySet party_bit(int i) { return PartySet{1} << i; }
constexpr bool contains(PartySet set, int i) { return (set >> i) & 1; }
constexpr PartySet full_set(int n) {
  return n >= 64 ? ~PartySet{0} : (PartySet{1} << n) - 1;
}
inline int popcount(PartySet set) { return __builtin_popcountll(set); }

/// Parties in `set`, ascending.
std::vector<int> set_members(PartySet set);
/// Bitmask from a list of indices.
PartySet set_of(const std::vector<int>& members);

class LinearScheme {
 public:
  virtual ~LinearScheme() = default;

  [[nodiscard]] virtual int num_parties() const = 0;
  /// Total share units dealt (>= num_parties; a party may hold several).
  [[nodiscard]] virtual int num_units() const = 0;
  /// Which party holds unit `unit`.
  [[nodiscard]] virtual int unit_owner(int unit) const = 0;

  /// Deal one value per unit for `secret` in Z_modulus.
  [[nodiscard]] virtual std::vector<BigInt> deal(const BigInt& secret, const BigInt& modulus,
                                                 Rng& rng) const = 0;

  /// True iff `parties` may reconstruct (i.e. is in the access structure).
  [[nodiscard]] virtual bool qualified(PartySet parties) const = 0;

  /// Integer reconstruction coefficients (unit id -> coefficient) over some
  /// subset of the units held by `parties`.  Precondition: qualified(parties).
  [[nodiscard]] virtual std::map<int, BigInt> coefficients(PartySet parties) const = 0;

  /// The clearing constant Δ: sum c_j share_j == Δ * secret (mod modulus).
  [[nodiscard]] virtual BigInt delta() const = 0;

  /// Units held by `party`.
  [[nodiscard]] std::vector<int> units_of(int party) const;
  /// Convenience: reconstruct a secret over Z_modulus from unit values.
  [[nodiscard]] BigInt reconstruct(const std::map<int, BigInt>& unit_values,
                                   const BigInt& modulus) const;
};

}  // namespace sintra::crypto
