// secp256k1 curve arithmetic: y^2 = x^3 + 7 over GF(p), prime order n,
// cofactor 1.  The group engine behind the `secp256k1` Group backend
// (group_curve.hpp); everything here works on fixed-limb field elements
// (fe256.hpp) — no heap BigInt on any hot path.
//
// Internals:
//  * complete projective addition/doubling formulas for a = 0 curves
//    (Renes–Costello–Batina, EUROCRYPT 2016): no exceptional cases, the
//    same code path handles P+P, P+(-P), and the point at infinity
//    (represented (0, 1, 0));
//  * width-5 wNAF for variable-base multiplication, with the odd-multiple
//    table normalized to affine via Montgomery's inversion trick so the
//    main loop runs on cheaper mixed additions;
//  * the GLV endomorphism: secp256k1 has an efficient order-3 automorphism
//    φ(x, y) = (βx, y) = λ·(x, y), so every 256-bit scalar splits into two
//    ~128-bit half-scalars and every multiplication chain runs half the
//    doublings.  β, λ, and the short lattice basis are *computed and
//    self-verified at startup* (cube roots via exponentiation, basis via
//    the extended Euclid on (n, λ)) rather than pasted in as constants;
//  * comb tables for fixed bases (the generator at width 8, registered
//    public keys at width 6): one mixed addition per scalar window, zero
//    doublings;
//  * Shamir/Strauss interleaving for double- and small multi-scalar
//    products, Pippenger buckets for large batches — the shapes used by
//    proof verification and batch verification respectively; both run on
//    GLV half-scalars.
//
// Points handed across this API are *normalized*: z is exactly 0 (infinity)
// or 1 (affine), so equality, hashing, and encoding are plain limb work.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/fe256.hpp"

namespace sintra::crypto::curve256 {

using fe256::Fe;

/// Projective point (X : Y : Z); infinity is Z = 0, canonically (0, 1, 0).
struct Point {
  Fe x;
  Fe y;
  Fe z;
};

/// Group-order scalar, little-endian limbs, value < n.  Conversion from the
/// protocol layer's BigInt exponents happens once per group operation at
/// the Group boundary (group_curve.cpp).
struct Scalar {
  std::uint64_t v[4] = {0, 0, 0, 0};
};

/// Curve order n, little-endian limbs.
inline constexpr std::uint64_t kOrder[4] = {0xBFD25E8CD0364141ULL, 0xBAAEDCE6AF48A03BULL,
                                            0xFFFFFFFFFFFFFFFEULL, 0xFFFFFFFFFFFFFFFFULL};

[[nodiscard]] Point infinity();
[[nodiscard]] const Point& generator();
[[nodiscard]] bool is_infinity(const Point& p);

[[nodiscard]] Point add(const Point& p, const Point& q);
/// q must be normalized affine (z == 1); complete for any p.
[[nodiscard]] Point add_mixed(const Point& p, const Point& q_affine);
[[nodiscard]] Point dbl(const Point& p);
[[nodiscard]] Point neg(const Point& p);

/// Cross-multiplied projective equality (works on unnormalized points).
[[nodiscard]] bool eq(const Point& p, const Point& q);

/// True iff normalized (z in {0,1}) and, when affine, on the curve.
[[nodiscard]] bool on_curve(const Point& p);

/// Scale to z in {0, 1} with one field inversion.
void normalize(Point& p);
/// Montgomery's trick: normalize all points with a single field inversion
/// plus 3(k-1) multiplications.
void batch_normalize(Point* pts, std::size_t count);

/// Variable-base k*P, width-5 wNAF.
[[nodiscard]] Point mul(const Point& p, const Scalar& k);
/// k1*P + k2*Q with one shared doubling chain (Shamir/Strauss).
[[nodiscard]] Point mul2(const Point& p, const Scalar& k1, const Point& q, const Scalar& k2);
/// sum k_i * P_i; Strauss below 32 terms, Pippenger buckets above.
[[nodiscard]] Point multi_mul(const std::vector<std::pair<Point, Scalar>>& terms);

/// Comb table for a long-lived base: blocks[i][j-1] = (j * 2^(w*i)) * B in
/// affine form, mirroring the Schnorr backend's fixed-base layout.  One
/// mixed addition per w-bit scalar window; wider w trades table memory and
/// build time for fewer additions (the generator uses 8, registered public
/// keys 6).
struct FixedBaseTable {
  int width = 4;
  std::vector<std::vector<Point>> blocks;
};
[[nodiscard]] FixedBaseTable build_fixed_base(const Point& base, int width = 4);
[[nodiscard]] Point mul_fixed(const FixedBaseTable& table, const Scalar& k);

/// GLV endomorphism constants: φ(x, y) = (endo_beta()*x, y) equals
/// multiplication by endo_lambda().  Derived and verified at startup;
/// exposed so the tests can check the pairing independently.
[[nodiscard]] const Fe& endo_beta();
[[nodiscard]] const Scalar& endo_lambda();

/// 33-byte compressed SEC1: 0x02/0x03 prefix + big-endian x; infinity is 33
/// zero bytes.  Point must be normalized.
inline constexpr std::size_t kEncodedBytes = 33;
void encode(const Point& p, std::uint8_t out[kEncodedBytes]);
/// Strict decode: rejects bad prefixes, x >= p (non-canonical), off-curve x,
/// and any nonzero tail on the infinity encoding.  Returns false on reject.
[[nodiscard]] bool decode(const std::uint8_t in[kEncodedBytes], Point& out);

/// Deterministic hash-to-curve by try-and-increment over a domain-separated
/// XOF stream; output point is normalized, never infinity.
[[nodiscard]] Point hash_to_curve(std::string_view domain, BytesView data);

}  // namespace sintra::crypto::curve256
