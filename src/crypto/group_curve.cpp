#include "crypto/group_curve.hpp"

#include "common/assert.hpp"

namespace sintra::crypto {

namespace {
constexpr std::size_t kMaxRegisteredBases = 64;

/// Comb widths: the generator's table is built once at startup and sits on
/// every exp_g/proof path, so it gets the wide (~780 KiB) table; registered
/// bases get a narrower one that builds in ~1 ms and still eliminates all
/// doublings.
constexpr int kGeneratorCombWidth = 8;
constexpr int kRegisteredCombWidth = 6;

/// secp256k1 group order n (also the scalar field modulus).
const char* kOrderHex =
    "0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141";

/// Normalize a fresh arithmetic result and wrap it; Elements always carry
/// normalized points so equality/encoding/hashing stay plain limb work.
Element wrap(curve256::Point p) {
  curve256::normalize(p);
  return Element::from_point(p);
}

std::string point_key(const curve256::Point& p) {
  std::uint8_t enc[curve256::kEncodedBytes];
  curve256::encode(p, enc);
  return std::string(reinterpret_cast<const char*>(enc), sizeof(enc));
}
}  // namespace

EcGroup::EcGroup()
    : Group(BigInt::from_string(kOrderHex), "secp256k1", curve256::kEncodedBytes) {
  g_table_ = curve256::build_fixed_base(curve256::generator(), kGeneratorCombWidth);
  g_ = Element::from_point(curve256::generator());
}

std::shared_ptr<const EcGroup> EcGroup::instance() {
  static std::shared_ptr<const EcGroup> group = std::make_shared<const EcGroup>();
  return group;
}

curve256::Scalar EcGroup::to_scalar(const BigInt& e) const {
  Bytes be = e.mod(q_).to_bytes_padded(32);
  curve256::Scalar k;
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t word = 0;
    for (int byte = 0; byte < 8; ++byte) {
      word = (word << 8) | be[static_cast<std::size_t>((3 - limb) * 8 + byte)];
    }
    k.v[limb] = word;
  }
  return k;
}

const curve256::FixedBaseTable* EcGroup::table_for(const Element& base) const {
  if (base == g_) return &g_table_;
  std::lock_guard<std::mutex> lock(base_cache_mutex_);
  auto it = base_cache_.find(point_key(base.point()));
  if (it == base_cache_.end()) return nullptr;
  BaseEntry& entry = it->second;
  if (!entry.built) {
    // Deferred build: the first use runs the generic path, the second pays
    // the one-time table cost.  Dealing ceremonies that register dozens of
    // verification keys and then exit never build anything.
    if (++entry.uses < 2) return nullptr;
    entry.table = curve256::build_fixed_base(base.point(), kRegisteredCombWidth);
    entry.built = true;
  }
  return &entry.table;
}

void EcGroup::precompute_base(const Element& base) const {
  if (base == g_ || !base.has_point() || curve256::is_infinity(base.point())) return;
  std::string key = point_key(base.point());
  std::lock_guard<std::mutex> lock(base_cache_mutex_);
  if (base_cache_.size() >= kMaxRegisteredBases) return;
  base_cache_.try_emplace(std::move(key));
}

Element EcGroup::mul(const Element& a, const Element& b) const {
  return wrap(curve256::add(a.point(), b.point()));
}

curve256::Point EcGroup::exp_unnormalized(const Element& base, const BigInt& e) const {
  const curve256::Scalar k = to_scalar(e);
  if (const curve256::FixedBaseTable* table = table_for(base)) {
    return curve256::mul_fixed(*table, k);
  }
  return curve256::mul(base.point(), k);
}

Element EcGroup::exp(const Element& base, const BigInt& scalar) const {
  return wrap(exp_unnormalized(base, scalar));
}

Element EcGroup::exp_g(const BigInt& scalar) const {
  return wrap(curve256::mul_fixed(g_table_, to_scalar(scalar)));
}

Element EcGroup::exp2(const Element& b1, const BigInt& e1, const Element& b2,
                      const BigInt& e2) const {
  // With a comb table on either base the no-doubling fixed-base walk plus
  // one projective addition beats the shared Strauss chain; without tables
  // the shared chain wins.
  const curve256::FixedBaseTable* t1 = table_for(b1);
  const curve256::FixedBaseTable* t2 = table_for(b2);
  if (t1 == nullptr && t2 == nullptr) {
    return wrap(curve256::mul2(b1.point(), to_scalar(e1), b2.point(), to_scalar(e2)));
  }
  const curve256::Point r1 =
      t1 != nullptr ? curve256::mul_fixed(*t1, to_scalar(e1)) : curve256::mul(b1.point(), to_scalar(e1));
  const curve256::Point r2 =
      t2 != nullptr ? curve256::mul_fixed(*t2, to_scalar(e2)) : curve256::mul(b2.point(), to_scalar(e2));
  return wrap(curve256::add(r1, r2));
}

bool EcGroup::exp2_equals(const Element& b1, const BigInt& e1, const Element& b2,
                          const BigInt& e2, const Element& expected) const {
  if (!expected.has_point()) return false;
  // Projective comparison: curve256::eq cross-multiplies, so the result of
  // the exponentiations never needs the normalizing field inversion that
  // exp2 (which must hand back a canonical Element) pays.  Base selection
  // mirrors exp2: comb tables when available, shared Strauss chain when not.
  const curve256::FixedBaseTable* t1 = table_for(b1);
  const curve256::FixedBaseTable* t2 = table_for(b2);
  curve256::Point sum;
  if (t1 == nullptr && t2 == nullptr) {
    sum = curve256::mul2(b1.point(), to_scalar(e1), b2.point(), to_scalar(e2));
  } else {
    const curve256::Point r1 = t1 != nullptr ? curve256::mul_fixed(*t1, to_scalar(e1))
                                             : curve256::mul(b1.point(), to_scalar(e1));
    const curve256::Point r2 = t2 != nullptr ? curve256::mul_fixed(*t2, to_scalar(e2))
                                             : curve256::mul(b2.point(), to_scalar(e2));
    sum = curve256::add(r1, r2);
  }
  return curve256::eq(sum, expected.point());
}

Element EcGroup::multi_exp(const std::vector<std::pair<Element, BigInt>>& pairs) const {
  std::vector<std::pair<curve256::Point, curve256::Scalar>> terms;
  terms.reserve(pairs.size());
  for (const auto& [base, exp] : pairs) terms.emplace_back(base.point(), to_scalar(exp));
  return wrap(curve256::multi_mul(terms));
}

Element EcGroup::inv(const Element& a) const { return wrap(curve256::neg(a.point())); }

Element EcGroup::identity() const { return Element::from_point(curve256::infinity()); }

bool EcGroup::is_element(const Element& a) const {
  // Cofactor 1: every on-curve point (including infinity, matching the
  // Schnorr backend's acceptance of the identity residue) is a member.
  return a.has_point() && curve256::on_curve(a.point());
}

bool EcGroup::is_residue(const Element& a) const {
  // Membership already is a constant-cost on-curve check; there is no
  // cheaper relaxation worth distinguishing.
  return is_element(a);
}

Element EcGroup::hash_to_element(std::string_view domain, BytesView data) const {
  return Element::from_point(curve256::hash_to_curve(domain, data));
}

void EcGroup::encode_element(Writer& w, const Element& a) const {
  std::uint8_t enc[curve256::kEncodedBytes];
  curve256::encode(a.point(), enc);
  w.raw(BytesView(enc, sizeof(enc)));
}

Element EcGroup::decode_element(Reader& r) const {
  Bytes raw = r.raw(curve256::kEncodedBytes);
  curve256::Point p;
  SINTRA_REQUIRE(curve256::decode(raw.data(), p), "Group: not a curve point");
  return Element::from_point(p);
}

Element EcGroup::decode_residue(Reader& r) const { return decode_element(r); }

}  // namespace sintra::crypto
