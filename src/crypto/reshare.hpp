// Verifiable share redistribution (issue 9) — the cryptographic core of
// online membership reconfiguration.
//
// Redistribution (Desmedt–Jajodia; verifiable per Herzberg et al.) moves a
// shared secret from an old committee (n, t) to a new committee (n', t')
// WITHOUT reconstructing it: each old member j deals a fresh degree-t'
// sharing *of its own share* d_j to the new slots, committing to the
// polynomial so every sub-share is publicly checkable, and binding the
// dealing to the real old share by fixing the constant-term commitment to
// the old public verification value.  Any t+1 verified dealings S let new
// slot i interpolate
//
//     d'_i  =  sum_{j in S} lambda_j * subshare_{j,i}
//
// (lambda_j the Lagrange coefficients of S at 0), which is a degree-t'
// sharing of the ORIGINAL secret; the new per-slot verification values
// follow from the commitments alone, so even parties holding no share —
// clients, a retiring member — can compute the new public key material.
//
// Two instantiations, matching the two share algebras in the deployment:
//
//  * Discrete log (coin, TDH2): a plain Feldman dealing of the old share
//    over Z_q (crypto/vss.hpp); lambda over the field, exact.
//  * Threshold RSA (Shoup): shares live in a group of SECRET order m, so
//    the reshare polynomial is dealt over the integers (coefficients wide
//    enough to statistically hide the share), commitments are v^{a_k} in
//    Z_Nm, and recombination uses the Δ-cleared integer Lagrange
//    coefficients.  The Δ does not cancel: after the epoch the effective
//    clearing constant of the scheme is Δ(n')·Δ(n) — ScaledScheme below
//    carries that compounded factor so ThresholdSigPublicKey::combine
//    works unchanged — and reshared shares are SIGNED integers that grow
//    by a bounded number of bits per epoch (rsa_reshare_share_bits), which
//    the share-width-aware proof bounds in threshold_sig.hpp absorb.
//
// Everything here is committee-geometry only; the epoch protocol that
// orders dealings, fixes the applied set and fingers bad dealers lives in
// protocols/reconfig.hpp.
#pragma once

#include "crypto/threshold_sig.hpp"
#include "crypto/vss.hpp"

namespace sintra::crypto {

// ---- discrete-log redistribution (coin / TDH2 shares over Z_q) -----------

/// Deal old share x_j to a (n_new, t_new) committee: a Feldman dealing with
/// secret x_j, so commitments[0] == g^{x_j} — verifiers MUST check it
/// against the dealer's old public verification value, which is what binds
/// the dealing to the share the dealer really holds.
FeldmanDealing dl_reshare_deal(const Group& group, const BigInt& old_share, int n_new,
                               int t_new, Rng& rng);

/// Interpolate my new share from verified sub-shares of the applied dealers
/// (`old_slots` are the dealers' old committee slots, aligned with
/// `subshares`; exactly t_old+1 of them).
BigInt dl_combine_subshares(const Group& group, const std::vector<int>& old_slots,
                            const std::vector<BigInt>& subshares);

/// New per-slot verification values g^{d'_i} for every new slot, computed
/// from the applied dealers' commitments alone.
std::vector<Element> dl_new_verification(const Group& group, const std::vector<int>& old_slots,
                                         const std::vector<std::vector<Element>>& commitments,
                                         int n_new);

// ---- threshold-RSA redistribution (Shoup shares, unknown group order) ----

/// One old member's verifiable integer resharing of its RSA share.
struct RsaReshareDealing {
  /// C_0 = v^{d_j} (the dealer's OLD verification value — callers must
  /// check the equality), C_k = v^{a_k} for the random coefficients.
  std::vector<BigInt> commitments;
  /// g_j(i+1) for new slot i, over the signed integers (a_0 = d_j may be
  /// negative after a previous reshare; the random a_k are non-negative).
  std::vector<BigInt> subshares;

  /// Deal `old_share` (the dealer's current signed integer share) to the
  /// new committee.  `old_verification` is the dealer's public v^{d_j},
  /// reused verbatim as C_0; `coeff_bits` must be the public per-epoch
  /// width rsa_reshare_coeff_bits(share_bits) so that sub-share bounds are
  /// derivable by every verifier.
  static RsaReshareDealing deal(const BigInt& old_share, const BigInt& old_verification,
                                std::size_t coeff_bits, int n_new, int t_new, const BigInt& v,
                                const Montgomery& mont, Rng& rng);

  /// Expected v^{g_j(i+1)} for new slot i, from commitments alone.
  static BigInt subshare_image(const std::vector<BigInt>& commitments, int slot,
                               const Montgomery& mont);

  /// Publicly verify new slot `slot`'s (signed) sub-share.
  static bool verify_subshare(const std::vector<BigInt>& commitments, int slot,
                              const BigInt& subshare, const BigInt& v, const Montgomery& mont);
};

/// Interpolate my new signed integer share: sum of Δ-cleared Lagrange
/// multiples of the applied dealers' sub-shares.  `delta_base` is the OLD
/// base clearing constant n_old! (NOT the compounded ScaledScheme delta —
/// the old scheme's coefficients are base-cleared and the compounding is
/// applied once, through the new scheme's delta()).
BigInt rsa_combine_subshares(const std::vector<int>& old_slots,
                             const std::vector<BigInt>& subshares, const BigInt& delta_base);

/// New per-slot verification values v^{d'_i}, from commitments alone.
std::vector<BigInt> rsa_new_verification(const std::vector<int>& old_slots,
                                         const std::vector<std::vector<BigInt>>& commitments,
                                         int n_new, const BigInt& delta_base,
                                         const Montgomery& mont);

// ---- public width bookkeeping (agreed by everyone, no secrets) -----------

/// Width of the random reshare-polynomial coefficients for an epoch whose
/// shares are bounded by `share_bits` bits: wide enough that t' sub-shares
/// statistically hide the share (64 bits of slack, matching the proof
/// slack in threshold_sig.cpp).
std::size_t rsa_reshare_coeff_bits(std::size_t share_bits);

/// Bound (in bits) on |g_j(i+1)| for a dealing with `coeff_bits`-bit
/// coefficients to an (n_new, t_new) committee.
std::size_t rsa_subshare_bits(std::size_t coeff_bits, int n_new, int t_new);

/// Bound (in bits) on the recombined new share |d'_i| — the `share_bits`
/// of the NEW epoch's public key, driving its proof-response bounds.
std::size_t rsa_reshare_share_bits(std::size_t coeff_bits, int n_old, int t_old, int n_new,
                                   int t_new);

// ---- compounded-Δ scheme wrapper -----------------------------------------

/// LinearScheme decorator for a post-reshare RSA key: coefficients() stay
/// those of the base (n', t') threshold scheme — they are what combine()
/// exponentiates shares by — while delta() carries the extra factor the
/// integer redistribution introduced (sum c'_i d'_i == Δ(n')·scale·d mod m,
/// scale = the old scheme's effective delta, compounding across epochs).
/// gcd(4·delta(), e) = 1 still holds: every factor is <= 64 < e = 65537.
class ScaledScheme final : public LinearScheme {
 public:
  ScaledScheme(std::shared_ptr<const LinearScheme> base, BigInt scale)
      : base_(std::move(base)), scale_(std::move(scale)) {}

  [[nodiscard]] int num_parties() const override { return base_->num_parties(); }
  [[nodiscard]] int num_units() const override { return base_->num_units(); }
  [[nodiscard]] int unit_owner(int unit) const override { return base_->unit_owner(unit); }
  [[nodiscard]] std::vector<BigInt> deal(const BigInt& secret, const BigInt& modulus,
                                         Rng& rng) const override {
    return base_->deal(secret, modulus, rng);
  }
  [[nodiscard]] bool qualified(PartySet parties) const override {
    return base_->qualified(parties);
  }
  [[nodiscard]] std::map<int, BigInt> coefficients(PartySet parties) const override {
    return base_->coefficients(parties);
  }
  [[nodiscard]] BigInt delta() const override { return base_->delta() * scale_; }

  [[nodiscard]] const BigInt& scale() const { return scale_; }
  [[nodiscard]] const LinearScheme& base() const { return *base_; }

 private:
  std::shared_ptr<const LinearScheme> base_;
  BigInt scale_;
};

}  // namespace sintra::crypto
