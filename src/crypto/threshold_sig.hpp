// Shoup's practical threshold RSA signatures (EUROCRYPT 2000).
//
// Used throughout the architecture wherever the paper needs compact
// certificates: justifying ABBA pre-votes/main-votes with constant-size
// messages, consistent-broadcast certificates, and the threshold-signed
// replies of the replicated services (Section 5) — a client combines t+1
// (generally: a qualified set of) signature shares into one ordinary RSA
// signature verifiable with the single service public key.
//
// Construction summary (with our LinearScheme generalization):
//   dealer:  safe-prime RSA modulus Nm = p*q, p = 2p'+1, q = 2q'+1,
//            secret group order m = p'*q'; d = e^{-1} mod m shared linearly
//            over Z_m.  Public: (Nm, e), a QR generator v and per-unit
//            verification values v_j = v^{d_j}.
//   share:   x = Hash(M) in Z_Nm*; share x_j = x^{2 d_j} plus a DLEQ-style
//            proof over the unknown-order group that
//            log_v v_j = log_{x^2} x_j (Fiat–Shamir, integer response).
//   combine: w = prod x_j^{2 c_j} = x^{4 Delta d} in QR_Nm (the mod-m
//            wraparound vanishes because |QR_Nm| = m); with
//            a*(4 Delta) + b*e = 1 the signature is y = w^a * x^b, an
//            ordinary RSA signature: y^e = Hash(M) (mod Nm).
#pragma once

#include <memory>
#include <optional>

#include "crypto/bigint.hpp"
#include "crypto/sharing.hpp"

namespace sintra::crypto {

/// RSA modulus parameters.  Tests and benchmarks use precomputed safe-prime
/// pairs (generated offline) so dealing is instant; `generate` produces
/// fresh ones.
struct RsaParams {
  BigInt p;  ///< safe prime
  BigInt q;  ///< safe prime
  /// Precomputed pair; prime_bits in {128, 256, 512}.
  static RsaParams precomputed(int prime_bits);
  static RsaParams generate(Rng& rng, int prime_bits);
};

class ThresholdSigPublicKey;

/// Signature share with validity proof, in commitment form (the verifier
/// recomputes the Fiat–Shamir challenge from a1/a2; see nizk.hpp for why
/// commitment form is what makes batch verification possible).
struct SigShare {
  int unit = 0;
  BigInt value;     ///< x^{2 d_unit} mod Nm
  BigInt a1;        ///< commitment v^r mod Nm
  BigInt a2;        ///< commitment (x^2)^r mod Nm
  BigInt response;  ///< integer response z = r + c*d_unit

  void encode(Writer& w) const;
  static SigShare decode(Reader& r);
};

/// Fiat–Shamir challenge for a signature-share proof (128-bit).  Exposed for
/// the batch verifier in crypto/batch.hpp.
BigInt sig_share_challenge(const BigInt& modulus, int unit, const BigInt& v,
                           const BigInt& v_unit, const BigInt& x_squared, const BigInt& share,
                           const BigInt& a1, const BigInt& a2);

class ThresholdSigSecretKey {
 public:
  ThresholdSigSecretKey(int party, std::map<int, BigInt> unit_shares)
      : party_(party), unit_shares_(std::move(unit_shares)) {}

  [[nodiscard]] int party() const { return party_; }
  /// Exposed for the reconfiguration extension (crypto/reshare.hpp).
  [[nodiscard]] const std::map<int, BigInt>& unit_shares() const { return unit_shares_; }

  /// Produce signature shares on `message` for each held unit.
  [[nodiscard]] std::vector<SigShare> sign(const ThresholdSigPublicKey& pk, BytesView message,
                                           Rng& rng) const;

 private:
  int party_;
  std::map<int, BigInt> unit_shares_;  ///< unit -> d_unit
};

/// base^exponent mod the context's modulus for a possibly NEGATIVE
/// exponent (the base is inverted to clear the sign).  Reshared RSA shares
/// are signed integers (crypto/reshare.hpp), so signing and verification-
/// value arithmetic need this; throws ProtocolError if the base is not
/// invertible.
BigInt pow_signed(const BigInt& base, const BigInt& exponent, const Montgomery& mont);

class ThresholdSigPublicKey {
 public:
  /// `share_bits` bounds the bit width of the secret share integers this
  /// key's proofs must cover.  0 (the default, and every dealer-dealt key)
  /// means modulus-width shares; a key rebuilt after share redistribution
  /// passes the grown bound rsa_reshare_share_bits so proof responses and
  /// their verification-side width checks scale with the shares.
  ThresholdSigPublicKey(BigInt modulus, BigInt e, BigInt v, std::vector<BigInt> verification,
                        std::shared_ptr<const LinearScheme> scheme,
                        std::size_t share_bits = 0);

  [[nodiscard]] const BigInt& modulus() const { return modulus_; }
  [[nodiscard]] const BigInt& exponent() const { return e_; }
  [[nodiscard]] const BigInt& v() const { return v_; }
  [[nodiscard]] const LinearScheme& scheme() const { return *scheme_; }
  [[nodiscard]] const BigInt& verification(int unit) const { return verification_.at(unit); }

  /// Full-domain hash of the message into Z_Nm*.  This is RSA-domain FDH
  /// over the signature modulus — unrelated to Group::hash_to_element, and
  /// deliberately untouched by the group-backend choice: threshold RSA
  /// stays in Z_Nm* BigInt arithmetic under every deployment.
  [[nodiscard]] BigInt hash_to_base(BytesView message) const;

  [[nodiscard]] bool verify_share(BytesView message, const SigShare& share) const;

  /// Combine shares from a qualified owner set into a standard RSA
  /// signature; nullopt if the set is unqualified or the result fails
  /// final verification (which cannot happen if all shares verified).
  [[nodiscard]] std::optional<BigInt> combine(BytesView message,
                                              const std::vector<SigShare>& shares) const;

  /// Standard RSA verification of a combined signature.
  [[nodiscard]] bool verify(BytesView message, const BigInt& signature) const;

  /// Shared Montgomery context for Z_Nm, reused by every sign/verify/combine
  /// exponentiation instead of rebuilding R^2 mod Nm per call.
  [[nodiscard]] const Montgomery& mont() const { return *mont_; }

  /// Serialized signature width.
  [[nodiscard]] std::size_t signature_bytes() const { return (modulus_.bit_length() + 7) / 8; }

  /// Width bound for proof responses (batch verifier applies the same
  /// bound per share before accumulating).
  [[nodiscard]] std::size_t response_bytes() const { return response_bytes_; }

  /// Bound on the bit width of this key's secret shares (see constructor).
  [[nodiscard]] std::size_t share_bits() const { return share_bits_; }

 private:
  friend class ThresholdSigSecretKey;
  BigInt modulus_;
  BigInt e_;
  BigInt v_;                           ///< QR generator
  std::vector<BigInt> verification_;   ///< unit -> v^{d_unit}
  std::shared_ptr<const LinearScheme> scheme_;
  std::shared_ptr<const Montgomery> mont_;  ///< REDC context for Z_Nm
  std::size_t share_bits_;             ///< width bound for secret shares
  std::size_t response_bytes_;         ///< width bound for proof responses
};

struct ThresholdSigDeal {
  ThresholdSigPublicKey public_key;
  std::vector<ThresholdSigSecretKey> secret_keys;

  static ThresholdSigDeal deal(const RsaParams& params,
                               std::shared_ptr<const LinearScheme> scheme, Rng& rng);
};

}  // namespace sintra::crypto
