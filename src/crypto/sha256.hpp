// SHA-256 (FIPS 180-4) and HMAC-SHA-256, implemented from scratch.
//
// This is the only hash in the system.  It serves as:
//  * the message digest for threshold RSA signatures,
//  * the Fiat–Shamir challenge oracle for every NIZK,
//  * the random oracle H̃ mapping coin names / messages into the group,
//  * the MAC for authenticated point-to-point channels.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace sintra::crypto {

constexpr std::size_t kSha256DigestSize = 32;
using Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();

  Sha256& update(BytesView data);
  Sha256& update(std::string_view text);

  /// Finalize; the object must not be reused afterwards.
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// One-shot hash.
Digest sha256(BytesView data);

/// Digest as Bytes (convenience for serialization paths).
Bytes sha256_bytes(BytesView data);

/// HMAC-SHA-256 per RFC 2104.
Digest hmac_sha256(BytesView key, BytesView message);

/// Domain-separated hash: H(domain || 0x00 || data).  All random-oracle uses
/// in the codebase go through this so different uses cannot collide.
Digest hash_domain(std::string_view domain, BytesView data);

/// Expand `data` to an arbitrary-length pseudorandom string using
/// counter-mode SHA-256 (an MGF1-style construction).  Used to derive group
/// elements and integers of arbitrary width from oracle outputs.
Bytes hash_expand(std::string_view domain, BytesView data, std::size_t out_len);

}  // namespace sintra::crypto
