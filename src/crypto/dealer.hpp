// The trusted dealer of the paper's model (Section 2): a one-shot setup
// entity that generates and distributes all secret key material, after which
// the system processes an unlimited number of requests with no further
// trusted interaction.
//
// A deployment uses two access structures (both supplied as LinearSchemes):
//
//  * `low` — the "t+1"-style structure (generalized rule: S ∪ {i} for
//    S ∈ A*, §4.2).  Any set *exceeding* a corruptible set qualifies.  The
//    coin, the TDH2 decryption key, and the service-reply signature key are
//    dealt over it: the adversary alone never qualifies, and any set
//    containing one honest party beyond a maximal corruptible set does.
//
//  * `high` — the "n−t"-style structure (generalized rule: P ∖ S for
//    S ∈ A*).  The certificate signature key is dealt over it: protocol
//    certificates (consistent broadcast, ABBA justifications, atomic
//    broadcast) must attest that a full quorum of parties contributed.
//
// In the classical threshold model these are ThresholdScheme(n, t) and
// ThresholdScheme(n, n−t−1); the generalized instantiations come from
// adversary/lsss.hpp.
#pragma once

#include <memory>

#include "crypto/coin.hpp"
#include "crypto/tdh2.hpp"
#include "crypto/threshold_sig.hpp"

namespace sintra::crypto {

/// Everything one party receives from the dealer.
struct PartyKeyShare {
  CoinSecretKey coin;
  ThresholdSigSecretKey cert_sig;
  ThresholdSigSecretKey reply_sig;
  Tdh2SecretKey decryption;
  /// Pairwise symmetric keys: channel_keys[j] is shared with party j
  /// (channel_keys[self] unused).  The paper's dealer bootstraps secure
  /// point-to-point channels; these keys also mask the sub-shares of the
  /// proactive-refresh extension (protocols/refresh.hpp).
  std::vector<Bytes> channel_keys;
};

/// Everything public in a deployment, known to servers and clients alike.
struct PublicKeys {
  CoinPublicKey coin;
  ThresholdSigPublicKey cert_sig;   ///< high (quorum) access structure
  ThresholdSigPublicKey reply_sig;  ///< low (beyond-one-corruptible-set)
  Tdh2PublicKey encryption;         ///< low
};

/// Transport link-MAC key for the channel shared with a peer, derived
/// from the dealer's pairwise channel key.  Domain-separated so the raw
/// channel key can keep masking proactive-refresh sub-shares without the
/// transport MACs leaking anything about those masks.
Bytes derive_link_key(BytesView channel_key);

/// Dealer output: public keys plus one PartyKeyShare per party.
class KeyBundle {
 public:
  KeyBundle(PublicKeys public_keys, std::vector<PartyKeyShare> shares)
      : public_keys_(std::move(public_keys)), shares_(std::move(shares)) {}

  /// Run the dealer.  `low` and `high` must agree on num_parties.
  static KeyBundle deal(GroupPtr group, std::shared_ptr<const LinearScheme> low,
                        std::shared_ptr<const LinearScheme> high, const RsaParams& rsa,
                        Rng& rng);

  /// Convenience: classical threshold deployment with n parties tolerating
  /// t corruptions (n > 3t), test-sized RSA parameters; the discrete-log
  /// subsystems run over `group` (test schnorr set by default).
  static KeyBundle deal_threshold(int n, int t, Rng& rng,
                                  GroupPtr group = Group::test_group());

  [[nodiscard]] const PublicKeys& public_keys() const { return public_keys_; }
  [[nodiscard]] const PartyKeyShare& share(int party) const {
    return shares_.at(static_cast<std::size_t>(party));
  }
  [[nodiscard]] int num_parties() const { return static_cast<int>(shares_.size()); }

 private:
  PublicKeys public_keys_;
  std::vector<PartyKeyShare> shares_;
};

}  // namespace sintra::crypto
