// Non-interactive zero-knowledge proofs (Fiat–Shamir, random-oracle model).
//
// Two workhorses make every threshold primitive in the architecture
// *robust*, i.e. let honest combiners reject bad shares from corrupted
// parties instead of producing garbage:
//
//  * DleqProof — Chaum–Pedersen proof of discrete-log equality:
//    given (g1, h1, g2, h2), proves knowledge of x with h1 = g1^x and
//    h2 = g2^x.  Used for coin-share validity (CKS §4), TDH2 decryption
//    share validity, and TDH2 ciphertext well-formedness.
//
//  * SchnorrProof — proof of knowledge of a discrete log (h = g^x).
//
// Both are bound to a caller-supplied context string so proofs cannot be
// replayed across protocol instances (the Fiat–Shamir hash covers context,
// statement, and commitments).
//
// Proofs are stored in commitment form (a, z) rather than the compact
// (c, z) form: the verifier recomputes c = H(context, statement, a) and
// checks g^z == a * h^c.  Both forms are the same size here (commitments
// cost one group element each where a challenge costs one scalar, and the
// DLEQ commitment pair replaces one challenge), and commitment form is
// what makes *batch* verification possible — a random linear combination
// of the verification equations of many proofs collapses into a couple of
// multi-exponentiations (see crypto/batch.hpp), which the compact form
// forbids because each equation must be solved exactly to recompute its
// own challenge hash.
#pragma once

#include <string_view>

#include "crypto/group.hpp"

namespace sintra::crypto {

/// Fiat–Shamir challenge for a DLEQ statement + commitment pair.  Exposed
/// for the batch verifier, which must recompute per-proof challenges.
BigInt dleq_challenge(const Group& group, std::string_view context, const Element& g1,
                      const Element& h1, const Element& g2, const Element& h2, const Element& a1,
                      const Element& a2);

/// Fiat–Shamir challenge for a Schnorr statement + commitment.
BigInt schnorr_challenge(const Group& group, std::string_view context, const Element& g,
                         const Element& h, const Element& a);

/// Chaum–Pedersen DLEQ proof in commitment form.
struct DleqProof {
  Element a1;  ///< commitment g1^s
  Element a2;  ///< commitment g2^s
  BigInt z;   ///< response s + c*x in Z_q

  /// Prove h1 = g1^x and h2 = g2^x.
  static DleqProof prove(const Group& group, std::string_view context, const Element& g1,
                         const Element& h1, const Element& g2, const Element& h2, const BigInt& x,
                         Rng& rng);

  [[nodiscard]] bool verify(const Group& group, std::string_view context, const Element& g1,
                            const Element& h1, const Element& g2, const Element& h2) const;

  void encode(Writer& w, const Group& group) const;
  static DleqProof decode(Reader& r, const Group& group);
};

/// Schnorr proof of knowledge of x with h = g^x, in commitment form.
struct SchnorrProof {
  Element a;  ///< commitment g^s
  BigInt z;  ///< response s + c*x in Z_q

  static SchnorrProof prove(const Group& group, std::string_view context, const Element& g,
                            const Element& h, const BigInt& x, Rng& rng);

  [[nodiscard]] bool verify(const Group& group, std::string_view context, const Element& g,
                            const Element& h) const;

  void encode(Writer& w, const Group& group) const;
  static SchnorrProof decode(Reader& r, const Group& group);
};

}  // namespace sintra::crypto
