// Non-interactive zero-knowledge proofs (Fiat–Shamir, random-oracle model).
//
// Two workhorses make every threshold primitive in the architecture
// *robust*, i.e. let honest combiners reject bad shares from corrupted
// parties instead of producing garbage:
//
//  * DleqProof — Chaum–Pedersen proof of discrete-log equality:
//    given (g1, h1, g2, h2), proves knowledge of x with h1 = g1^x and
//    h2 = g2^x.  Used for coin-share validity (CKS §4), TDH2 decryption
//    share validity, and TDH2 ciphertext well-formedness.
//
//  * SchnorrProof — proof of knowledge of a discrete log (h = g^x).
//
// Both are bound to a caller-supplied context string so proofs cannot be
// replayed across protocol instances (the Fiat–Shamir hash covers context,
// statement, and commitments).
#pragma once

#include <string_view>

#include "crypto/group.hpp"

namespace sintra::crypto {

/// Chaum–Pedersen DLEQ proof, stored in compact (challenge, response) form.
struct DleqProof {
  BigInt challenge;  ///< c in Z_q
  BigInt response;   ///< z in Z_q

  /// Prove h1 = g1^x and h2 = g2^x.
  static DleqProof prove(const Group& group, std::string_view context, const BigInt& g1,
                         const BigInt& h1, const BigInt& g2, const BigInt& h2, const BigInt& x,
                         Rng& rng);

  [[nodiscard]] bool verify(const Group& group, std::string_view context, const BigInt& g1,
                            const BigInt& h1, const BigInt& g2, const BigInt& h2) const;

  void encode(Writer& w, const Group& group) const;
  static DleqProof decode(Reader& r, const Group& group);
};

/// Schnorr proof of knowledge of x with h = g^x.
struct SchnorrProof {
  BigInt challenge;
  BigInt response;

  static SchnorrProof prove(const Group& group, std::string_view context, const BigInt& g,
                            const BigInt& h, const BigInt& x, Rng& rng);

  [[nodiscard]] bool verify(const Group& group, std::string_view context, const BigInt& g,
                            const BigInt& h) const;

  void encode(Writer& w, const Group& group) const;
  static SchnorrProof decode(Reader& r, const Group& group);
};

}  // namespace sintra::crypto
