// Feldman verifiable secret sharing — the building block for the paper's
// §6 "proactive protocols" extension.
//
// A Feldman dealing is a Shamir sharing of s plus public commitments
// C_j = g^{a_j} to the polynomial coefficients.  Anyone can check that
// party i's share s_i is consistent with the commitments:
//
//     g^{s_i}  ==  prod_j C_j^{(i+1)^j}
//
// and the shared secret's public image g^s = C_0 is fixed by the dealing.
// Secrecy is computational (the commitments reveal g^{a_j}), which is
// exactly right for refreshing discrete-log key shares: the coin and TDH2
// keys already expose g^{x_i} as verification values.
#pragma once

#include "crypto/group.hpp"
#include "crypto/shamir.hpp"

namespace sintra::crypto {

/// A verifiable dealing: per-party shares plus coefficient commitments.
struct FeldmanDealing {
  std::vector<BigInt> shares;       ///< share for party i at point i+1
  std::vector<Element> commitments;  ///< C_j = g^{a_j}, j = 0..t

  /// Deal `secret` with threshold t among n parties.
  static FeldmanDealing deal(const Group& group, const BigInt& secret, int n, int t, Rng& rng);

  /// Publicly verify party `party`'s share against the commitments.
  static bool verify_share(const Group& group, const std::vector<Element>& commitments,
                           int party, const BigInt& share);

  /// The public image g^secret of the dealt secret.
  [[nodiscard]] const Element& public_image() const { return commitments.at(0); }

  /// Expected value of g^{share_i} for any party, from commitments only.
  static Element share_image(const Group& group, const std::vector<Element>& commitments,
                            int party);

  void encode_commitments(Writer& w, const Group& group) const;
  static std::vector<Element> decode_commitments(Reader& r, const Group& group, int t);
};

}  // namespace sintra::crypto
