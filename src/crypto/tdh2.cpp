#include "crypto/tdh2.hpp"

#include "common/assert.hpp"
#include "crypto/sha256.hpp"

namespace sintra::crypto {

namespace {
constexpr std::string_view kMaskDomain = "sintra/tdh2/mask";
constexpr std::string_view kGbarDomain = "sintra/tdh2/gbar";
constexpr std::string_view kChallengeDomain = "sintra/tdh2/challenge";

Bytes mask_bytes(const Group& group, const Element& shared, std::size_t len) {
  Writer w;
  group.encode_element(w, shared);
  return hash_expand(kMaskDomain, w.data(), len);
}

Bytes xor_bytes(BytesView a, BytesView b) {
  SINTRA_INVARIANT(a.size() == b.size(), "tdh2: mask length mismatch");
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

}  // namespace

BigInt tdh2_ciphertext_challenge(const Group& group, BytesView data, BytesView label,
                                 const Element& u, const Element& w_elem, const Element& u_bar,
                                 const Element& w_bar) {
  Writer w;
  w.bytes(data);
  w.bytes(label);
  group.encode_element(w, u);
  group.encode_element(w, w_elem);
  group.encode_element(w, u_bar);
  group.encode_element(w, w_bar);
  return group.hash_to_scalar(kChallengeDomain, w.data());
}

std::string tdh2_share_context(int unit, BytesView ct_id) {
  return "tdh2-share/" + std::to_string(unit) + "/" + to_hex(ct_id);
}

Bytes Tdh2Ciphertext::id(const Group& group) const {
  Writer wr;
  wr.bytes(data);
  wr.bytes(label);
  group.encode_element(wr, u);
  group.encode_element(wr, u_bar);
  group.encode_element(wr, w);
  group.encode_element(wr, w_bar);
  group.encode_scalar(wr, f);
  Digest digest = hash_domain("sintra/tdh2/ctid", wr.data());
  return Bytes(digest.begin(), digest.end());
}

void Tdh2Ciphertext::encode(Writer& wr, const Group& group) const {
  wr.bytes(data);
  wr.bytes(label);
  group.encode_element(wr, u);
  group.encode_element(wr, u_bar);
  group.encode_element(wr, w);
  group.encode_element(wr, w_bar);
  group.encode_scalar(wr, f);
}

Tdh2Ciphertext Tdh2Ciphertext::decode(Reader& r, const Group& group) {
  Tdh2Ciphertext ct;
  ct.data = r.bytes();
  ct.label = r.bytes();
  ct.u = group.decode_element(r);
  ct.u_bar = group.decode_element(r);
  ct.w = group.decode_residue(r);
  ct.w_bar = group.decode_residue(r);
  ct.f = group.decode_scalar(r);
  return ct;
}

void Tdh2DecShare::encode(Writer& w, const Group& group) const {
  w.u32(static_cast<std::uint32_t>(unit));
  group.encode_element(w, value);
  proof.encode(w, group);
}

Tdh2DecShare Tdh2DecShare::decode(Reader& r, const Group& group) {
  Tdh2DecShare share;
  share.unit = static_cast<int>(r.u32());
  share.value = group.decode_element(r);
  share.proof = DleqProof::decode(r, group);
  return share;
}

Tdh2PublicKey::Tdh2PublicKey(GroupPtr group, std::shared_ptr<const LinearScheme> scheme, Element h,
                             std::vector<Element> verification)
    : group_(std::move(group)), scheme_(std::move(scheme)), h_(std::move(h)),
      verification_(std::move(verification)) {
  g_bar_ = group_->hash_to_element(kGbarDomain, bytes_of(group_->name()));
  // h and g_bar are exponentiated on every encrypt, and each unit's
  // verification key on every share verification; registration is cheap
  // (tables build lazily on repeated use).
  group_->precompute_base(h_);
  group_->precompute_base(g_bar_);
  for (const Element& vk : verification_) group_->precompute_base(vk);
}

Tdh2Ciphertext Tdh2PublicKey::encrypt(BytesView message, BytesView label, Rng& rng) const {
  const BigInt r = group_->random_scalar(rng);
  const BigInt s = group_->random_scalar(rng);

  Tdh2Ciphertext ct;
  ct.label = Bytes(label.begin(), label.end());
  ct.u = group_->exp_g(r);
  ct.u_bar = group_->exp(g_bar_, r);
  ct.data = xor_bytes(message, mask_bytes(*group_, group_->exp(h_, r), message.size()));

  ct.w = group_->exp_g(s);
  ct.w_bar = group_->exp(g_bar_, s);
  const BigInt e =
      tdh2_ciphertext_challenge(*group_, ct.data, ct.label, ct.u, ct.w, ct.u_bar, ct.w_bar);
  ct.f = group_->scalar_add(s, group_->scalar_mul(r, e));
  return ct;
}

bool Tdh2PublicKey::check_ciphertext(const Tdh2Ciphertext& ct) const {
  if (!group_->is_element(ct.u) || !group_->is_element(ct.u_bar)) return false;
  if (!group_->is_residue(ct.w) || !group_->is_residue(ct.w_bar)) return false;
  if (!group_->is_scalar(ct.f)) return false;
  const BigInt e =
      tdh2_ciphertext_challenge(*group_, ct.data, ct.label, ct.u, ct.w, ct.u_bar, ct.w_bar);
  const BigInt neg_e = group_->scalar_sub(BigInt(0), e);
  return group_->exp2_equals(group_->g(), ct.f, ct.u, neg_e, ct.w) &&
         group_->exp2_equals(g_bar_, ct.f, ct.u_bar, neg_e, ct.w_bar);
}

std::vector<Tdh2DecShare> Tdh2SecretKey::decrypt_shares(const Tdh2PublicKey& pk,
                                                        const Tdh2Ciphertext& ct,
                                                        Rng& rng) const {
  if (!pk.check_ciphertext(ct)) return {};
  const Group& group = pk.group();
  const Bytes ct_id = ct.id(group);
  std::vector<Tdh2DecShare> out;
  out.reserve(unit_shares_.size());
  for (const auto& [unit, x] : unit_shares_) {
    Tdh2DecShare share;
    share.unit = unit;
    share.value = group.exp(ct.u, x);
    share.proof = DleqProof::prove(group, tdh2_share_context(unit, ct_id), group.g(),
                                   pk.verification(unit), ct.u, share.value, x, rng);
    out.push_back(std::move(share));
  }
  return out;
}

bool Tdh2PublicKey::verify_share(const Tdh2Ciphertext& ct, const Tdh2DecShare& share) const {
  if (share.unit < 0 || share.unit >= scheme_->num_units()) return false;
  const Bytes ct_id = ct.id(*group_);
  return share.proof.verify(*group_, tdh2_share_context(share.unit, ct_id), group_->g(),
                            verification_.at(static_cast<std::size_t>(share.unit)), ct.u,
                            share.value);
}

std::optional<Bytes> Tdh2PublicKey::combine(const Tdh2Ciphertext& ct,
                                            const std::vector<Tdh2DecShare>& shares) const {
  if (!check_ciphertext(ct)) return std::nullopt;
  PartySet parties = 0;
  std::map<int, Element> by_unit;
  for (const Tdh2DecShare& share : shares) {
    by_unit.emplace(share.unit, share.value);
    parties |= party_bit(scheme_->unit_owner(share.unit));
  }
  if (!scheme_->qualified(parties)) return std::nullopt;

  std::vector<std::pair<Element, BigInt>> powers;
  for (const auto& [unit, coeff] : scheme_->coefficients(parties)) {
    auto it = by_unit.find(unit);
    SINTRA_INVARIANT(it != by_unit.end(), "tdh2: coefficient for missing share");
    powers.emplace_back(it->second, coeff);
  }
  const Element combined = group_->multi_exp(powers);
  const BigInt delta_inv = group_->scalar_inv(scheme_->delta().mod(group_->q()));
  const Element shared = group_->exp(combined, delta_inv);
  return xor_bytes(ct.data, mask_bytes(*group_, shared, ct.data.size()));
}

Tdh2Deal Tdh2Deal::deal(GroupPtr group, std::shared_ptr<const LinearScheme> scheme, Rng& rng) {
  const BigInt secret = BigInt::random_below(rng, group->q());
  const Element h = group->exp_g(secret);
  std::vector<BigInt> unit_values = scheme->deal(secret, group->q(), rng);

  std::vector<Element> verification;
  verification.reserve(unit_values.size());
  for (const BigInt& x : unit_values) verification.push_back(group->exp_g(x));

  std::vector<Tdh2SecretKey> secret_keys;
  secret_keys.reserve(static_cast<std::size_t>(scheme->num_parties()));
  for (int party = 0; party < scheme->num_parties(); ++party) {
    std::map<int, BigInt> held;
    for (int unit : scheme->units_of(party)) {
      held.emplace(unit, unit_values[static_cast<std::size_t>(unit)]);
    }
    secret_keys.emplace_back(party, std::move(held));
  }

  return Tdh2Deal{
      Tdh2PublicKey(std::move(group), std::move(scheme), h, std::move(verification)),
      std::move(secret_keys)};
}

}  // namespace sintra::crypto
