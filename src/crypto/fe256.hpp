// Field arithmetic for GF(p), p = 2^256 - 2^32 - 977 (the secp256k1 prime),
// specialized to fixed 4x64-bit limbs: no heap allocation anywhere, and the
// sparse shape of p makes reduction a single fold by 2^256 mod p = 2^32+977
// instead of a division.  This is the substrate of the elliptic-curve group
// backend (curve256.hpp / group_curve.hpp); exponents of the *group* still
// live in Z_n as BigInt, only curve-point coordinates pass through here.
//
// The mul/add/sub/sqr primitives are defined inline here: the point formulas
// (curve256.cpp) issue a dozen field operations per point addition, and at
// these operand sizes the call/copy overhead of an out-of-line 32-byte
// struct return costs as much as the arithmetic itself.
//
// Representation invariant: every Fe returned by these functions is fully
// reduced into [0, p).  Like the rest of the crypto layer, the code is not
// constant-time (the BigInt modexp paths already branch on exponent bits);
// all secret-dependent work happens on the prover's own machine.
#pragma once

#include <cstdint>

namespace sintra::crypto::fe256 {

/// One field element, little-endian 64-bit limbs, always < p.
struct Fe {
  std::uint64_t v[4] = {0, 0, 0, 0};
};

/// p = 2^256 - 2^32 - 977, little-endian limbs.
inline constexpr std::uint64_t kP[4] = {0xFFFFFFFEFFFFFC2FULL, 0xFFFFFFFFFFFFFFFFULL,
                                        0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL};

namespace detail {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/// 2^256 mod p = 2^32 + 977; the whole reduction strategy is that a limb of
/// overflow above 2^256 folds back in as one multiply by this 33-bit value.
inline constexpr u64 kFold = 0x1000003D1ULL;

inline bool geq_p(const u64 a[4]) {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != kP[i]) return a[i] > kP[i];
  }
  return true;
}

inline void sub_p(u64 a[4]) {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(a[i]) - kP[i] - borrow;
    a[i] = static_cast<u64>(cur);
    borrow = (cur >> 64) != 0 ? 1 : 0;
  }
}

/// Fold `overflow * 2^256` back into t[0..3]; loops because the first fold
/// can itself carry (at most twice in total).
inline void fold_overflow(u64 t[4], u64 overflow) {
  while (overflow != 0) {
    u128 cur = static_cast<u128>(overflow) * kFold + t[0];
    t[0] = static_cast<u64>(cur);
    u64 carry = static_cast<u64>(cur >> 64);
    for (int i = 1; i < 4 && carry != 0; ++i) {
      cur = static_cast<u128>(t[i]) + carry;
      t[i] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    overflow = carry;
  }
}

/// Reduce an 8-limb product into [0, p).
inline Fe reduce512(const u64 w[8]) {
  u64 t[4];
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(w[4 + i]) * kFold + w[i] + carry;
    t[i] = static_cast<u64>(cur);
    carry = static_cast<u64>(cur >> 64);
  }
  fold_overflow(t, carry);
  Fe r;
  for (int i = 0; i < 4; ++i) r.v[i] = t[i];
  if (geq_p(r.v)) sub_p(r.v);
  return r;
}

inline void mul_wide(const u64 a[4], const u64 b[4], u64 w[8]) {
  for (int i = 0; i < 8; ++i) w[i] = 0;
  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a[i]) * b[j] + w[i + j] + carry;
      w[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    w[i + 4] = carry;
  }
}

}  // namespace detail

[[nodiscard]] inline Fe zero() { return Fe{}; }

[[nodiscard]] inline Fe from_u64(std::uint64_t value) {
  Fe r;
  r.v[0] = value;
  return r;
}

[[nodiscard]] inline Fe one() { return from_u64(1); }

[[nodiscard]] inline bool is_zero(const Fe& a) {
  return (a.v[0] | a.v[1] | a.v[2] | a.v[3]) == 0;
}

[[nodiscard]] inline bool is_odd(const Fe& a) { return (a.v[0] & 1) != 0; }

[[nodiscard]] inline bool eq(const Fe& a, const Fe& b) {
  return a.v[0] == b.v[0] && a.v[1] == b.v[1] && a.v[2] == b.v[2] && a.v[3] == b.v[3];
}

[[nodiscard]] inline Fe add(const Fe& a, const Fe& b) {
  // Branchless: the carry out of the 256-bit add is a coin flip for random
  // operands, so folding it with an `if` mispredicts every other call.
  // Instead always add carry*kFold back in (a+b >= 2^256 means the mod-p
  // answer is a+b - 2^256 + kFold) and propagate unconditionally.
  using namespace detail;
  u64 t[4];
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(a.v[i]) + b.v[i] + carry;
    t[i] = static_cast<u64>(cur);
    carry = static_cast<u64>(cur >> 64);
  }
  u128 cur = static_cast<u128>(carry) * kFold + t[0];
  t[0] = static_cast<u64>(cur);
  u64 k = static_cast<u64>(cur >> 64);
  for (int i = 1; i < 4; ++i) {
    cur = static_cast<u128>(t[i]) + k;
    t[i] = static_cast<u64>(cur);
    k = static_cast<u64>(cur >> 64);
  }
  // Second wrap (t was within kFold of 2^256) and the final >= p case both
  // have probability ~2^-32 or less: the branches below are never-taken in
  // practice and predict perfectly.
  if (k != 0) fold_overflow(t, k);
  Fe r;
  for (int i = 0; i < 4; ++i) r.v[i] = t[i];
  if (geq_p(r.v)) sub_p(r.v);
  return r;
}

[[nodiscard]] inline Fe sub(const Fe& a, const Fe& b) {
  // Branchless for the same reason as add(): the borrow is a coin flip.
  // On wrap the value is a-b+2^256 and the answer a-b+p is that minus
  // kFold, which cannot re-borrow below the top limb chain.
  using namespace detail;
  Fe r;
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(a.v[i]) - b.v[i] - borrow;
    r.v[i] = static_cast<u64>(cur);
    borrow = (cur >> 64) != 0 ? 1 : 0;
  }
  const u64 fix = kFold & (0 - borrow);  // kFold if wrapped, else 0
  u64 b2 = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(r.v[i]) - (i == 0 ? fix : 0) - b2;
    r.v[i] = static_cast<u64>(cur);
    b2 = (cur >> 64) != 0 ? 1 : 0;
  }
  return r;
}

/// a * c for a small (< 2^32) constant — used for the curve constant b3 in
/// the point formulas, where a full 4x4 multiply would be 4x the work.
[[nodiscard]] inline Fe mul_small(const Fe& a, std::uint32_t c) {
  using namespace detail;
  u64 t[4];
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(a.v[i]) * c + carry;
    t[i] = static_cast<u64>(cur);
    carry = static_cast<u64>(cur >> 64);
  }
  // carry < c; fold it in one pass (the re-carry cases are ~2^-32 rare).
  u128 cur = static_cast<u128>(carry) * kFold + t[0];
  t[0] = static_cast<u64>(cur);
  u64 k = static_cast<u64>(cur >> 64);
  for (int i = 1; i < 4; ++i) {
    cur = static_cast<u128>(t[i]) + k;
    t[i] = static_cast<u64>(cur);
    k = static_cast<u64>(cur >> 64);
  }
  if (k != 0) fold_overflow(t, k);
  Fe r;
  for (int i = 0; i < 4; ++i) r.v[i] = t[i];
  if (geq_p(r.v)) sub_p(r.v);
  return r;
}

[[nodiscard]] inline Fe neg(const Fe& a) {
  using namespace detail;
  if (is_zero(a)) return a;
  Fe r;
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(kP[i]) - a.v[i] - borrow;
    r.v[i] = static_cast<u64>(cur);
    borrow = (cur >> 64) != 0 ? 1 : 0;
  }
  return r;
}

[[nodiscard]] inline Fe mul(const Fe& a, const Fe& b) {
  using namespace detail;
  u64 w[8];
  mul_wide(a.v, b.v, w);
  return reduce512(w);
}

[[nodiscard]] inline Fe sqr(const Fe& a) {
  // Same as mul(a, a).  A dedicated halved-cross-product squaring was
  // measured *slower* here: the double-then-fixup carry chain serializes
  // worse than the plain schoolbook rows, which overlap in the pipeline.
  using namespace detail;
  u64 w[8];
  mul_wide(a.v, a.v, w);
  return reduce512(w);
}

/// a^e for a little-endian 4-limb exponent; plain 256-step square-and-
/// multiply.  The differential-testing oracle for inv() and the engine of
/// sqrt() — not used on any hot path.
[[nodiscard]] Fe pow(const Fe& a, const std::uint64_t e[4]);

/// a^(p-2) via the shortest known addition chain for the secp256k1 prime
/// (blocks of 1-bits: 223, 22, 2, 1 — 255 squarings + 15 multiplies).
/// inv(0) == 0 by convention (never hit: callers guard z != 0).
[[nodiscard]] Fe inv(const Fe& a);

/// Square root via a^((p+1)/4) (p ≡ 3 mod 4).  Returns false iff a is a
/// non-residue; `out` is valid only on success.
[[nodiscard]] bool sqrt(const Fe& a, Fe& out);

/// Big-endian 32-byte decode; rejects (returns false) values >= p, which is
/// what makes wire encodings canonical.
[[nodiscard]] bool from_bytes(const std::uint8_t in[32], Fe& out);
void to_bytes(const Fe& a, std::uint8_t out[32]);

}  // namespace sintra::crypto::fe256
