// Schnorr groups: the prime-order-q subgroup of Z_p* for p = qr + 1.
//
// This is the algebraic setting of both discrete-log-based threshold
// primitives in the architecture:
//  * the Diffie–Hellman threshold coin of Cachin–Kursawe–Shoup (coin.hpp),
//  * the Shoup–Gennaro TDH2 threshold cryptosystem (tdh2.hpp),
// and of the Chaum–Pedersen NIZK proofs that make both robust (nizk.hpp).
//
// Group elements are represented by their canonical residue in [0, p).
// Exponents live in Z_q (see Scalar helpers).  Three vetted parameter sets
// are hard-coded (generated offline with an independent implementation and
// re-verified by the test suite): a small/fast one for unit tests, a default
// one for protocol simulations, and a large one for crypto benchmarks.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "crypto/bigint.hpp"

namespace sintra::crypto {

/// Immutable description of a Schnorr group.  Shared by reference between
/// all keys/ciphertexts/proofs of one deployment.
class Group {
 public:
  Group(BigInt p, BigInt q, BigInt g, std::string name);

  /// Named parameter sets.
  static std::shared_ptr<const Group> test_group();     ///< p 256-bit, q 128-bit
  static std::shared_ptr<const Group> default_group();  ///< p 768-bit, q 256-bit
  static std::shared_ptr<const Group> big_group();      ///< p 1536-bit, q 256-bit

  [[nodiscard]] const BigInt& p() const { return p_; }
  [[nodiscard]] const BigInt& q() const { return q_; }
  [[nodiscard]] const BigInt& g() const { return g_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  // -- element operations ---------------------------------------------------
  [[nodiscard]] BigInt mul(const BigInt& a, const BigInt& b) const;
  /// base^scalar via the cached Montgomery context; uses a windowed
  /// fixed-base table when `base` is g or was registered with
  /// precompute_base (zero squarings on those paths).
  [[nodiscard]] BigInt exp(const BigInt& base, const BigInt& scalar) const;
  /// g^scalar via the eagerly-built fixed-base table.
  [[nodiscard]] BigInt exp_g(const BigInt& scalar) const;
  /// b1^e1 * b2^e2 with one shared squaring chain (Shamir's trick) — the
  /// workhorse of every proof verification (a = g^z * h^{-c}).
  [[nodiscard]] BigInt exp2(const BigInt& b1, const BigInt& e1, const BigInt& b2,
                            const BigInt& e2) const;
  /// prod_i base_i^{exp_i} with one shared squaring chain; used by the
  /// Lagrange-in-the-exponent share combiners.
  [[nodiscard]] BigInt multi_exp(const std::vector<std::pair<BigInt, BigInt>>& pairs) const;
  [[nodiscard]] BigInt inv(const BigInt& a) const;
  [[nodiscard]] BigInt identity() const { return BigInt(1); }

  /// Build and cache a fixed-base table for `base` (a long-lived public
  /// key), accelerating all later exp(base, ·) calls.  No-op once the
  /// bounded cache is full; safe to call from multiple threads.
  void precompute_base(const BigInt& base) const;

  /// True iff `a` is in [1, p) and a^q == 1 (i.e. a member of the order-q
  /// subgroup).  Every deserialized element must pass this before use;
  /// accepting non-subgroup elements from Byzantine peers would leak bits
  /// of exponents (small-subgroup attacks).  Positive results are memoized
  /// (bounded) so repeated decodes/checks of the same wire element skip the
  /// full subgroup exponentiation; strictness is unchanged because the memo
  /// only ever holds elements that passed the full check.
  [[nodiscard]] bool is_element(const BigInt& a) const;

  /// True iff `a` is in [1, p) — a nonzero residue, possibly outside the
  /// order-q subgroup.  Sufficient for *commitment* values in commitment-form
  /// proofs: they only ever appear on one side of an equality whose other
  /// side is a product of subgroup elements, so a non-subgroup commitment
  /// simply fails verification and no secret exponent ever touches it.
  /// Statement elements (public keys, share values) still require the full
  /// is_element check.
  [[nodiscard]] bool is_residue(const BigInt& a) const;

  // -- scalar (exponent) operations ------------------------------------------
  [[nodiscard]] BigInt scalar_add(const BigInt& a, const BigInt& b) const;
  [[nodiscard]] BigInt scalar_sub(const BigInt& a, const BigInt& b) const;
  [[nodiscard]] BigInt scalar_mul(const BigInt& a, const BigInt& b) const;
  [[nodiscard]] BigInt scalar_inv(const BigInt& a) const;
  [[nodiscard]] bool is_scalar(const BigInt& a) const;

  template <typename RngT>
  BigInt random_scalar(RngT& rng) const {
    return BigInt::random_below(rng, q_);
  }

  /// Random oracle into the subgroup: H̃(domain, data) = u^r mod p where the
  /// expanded hash is first reduced mod p and then raised to the cofactor r,
  /// giving an element of order (dividing) q with unknown discrete log.
  [[nodiscard]] BigInt hash_to_element(std::string_view domain, BytesView data) const;

  /// Random oracle into Z_q (Fiat–Shamir challenges).
  [[nodiscard]] BigInt hash_to_scalar(std::string_view domain, BytesView data) const;

  /// Serialize an element padded to the byte width of p (canonical form).
  void encode_element(Writer& w, const BigInt& a) const;
  /// Deserialize and validate subgroup membership; throws ProtocolError.
  [[nodiscard]] BigInt decode_element(Reader& r) const;
  /// Deserialize a proof commitment with only the [1, p) range check (see
  /// is_residue); throws ProtocolError on range violation.
  [[nodiscard]] BigInt decode_residue(Reader& r) const;
  void encode_scalar(Writer& w, const BigInt& a) const;
  [[nodiscard]] BigInt decode_scalar(Reader& r) const;

  [[nodiscard]] std::size_t element_bytes() const { return element_bytes_; }
  [[nodiscard]] std::size_t scalar_bytes() const { return scalar_bytes_; }

 private:
  /// Windowed fixed-base precomputation: blocks[i][j-1] = base^(j * 16^i)
  /// in Montgomery form, so an exponentiation is one table multiply per
  /// 4-bit digit of the scalar and no squarings at all.
  struct FixedBaseTable {
    std::vector<std::vector<BigInt>> blocks;
  };

  [[nodiscard]] FixedBaseTable build_fixed_base(const BigInt& base) const;
  /// scalar must already be reduced into [0, q).
  [[nodiscard]] BigInt exp_fixed(const FixedBaseTable& table, const BigInt& scalar) const;
  [[nodiscard]] const FixedBaseTable* registered_table(const BigInt& base) const;

  BigInt p_;
  BigInt q_;
  BigInt g_;
  BigInt cofactor_;  ///< (p-1)/q
  std::string name_;
  std::size_t element_bytes_;
  std::size_t scalar_bytes_;
  Montgomery mont_p_;       ///< REDC context for Z_p (declared after p_)
  FixedBaseTable g_table_;  ///< eager fixed-base table for the generator

  // Bounded cache of fixed-base tables for registered long-lived bases.
  // Entries are never evicted (registration refuses past the bound), so
  // pointers into the map stay valid for the Group's lifetime.
  mutable std::mutex base_cache_mutex_;
  mutable std::map<std::string, FixedBaseTable> base_cache_;

  // Memo of elements that passed the full subgroup-membership check.
  mutable std::mutex memo_mutex_;
  mutable std::unordered_set<std::string> element_memo_;
};

using GroupPtr = std::shared_ptr<const Group>;

}  // namespace sintra::crypto
