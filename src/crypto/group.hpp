// Prime-order group abstraction behind every discrete-log-based threshold
// primitive in the architecture:
//  * the Diffie–Hellman threshold coin of Cachin–Kursawe–Shoup (coin.hpp),
//  * the Shoup–Gennaro TDH2 threshold cryptosystem (tdh2.hpp),
//  * the Chaum–Pedersen NIZK proofs that make both robust (nizk.hpp),
//  * Feldman VSS and proactive refresh (vss.hpp, protocols/refresh.hpp).
//
// Two interchangeable backends implement the interface:
//  * SchnorrGroup (group_schnorr.hpp) — the prime-order-q subgroup of Z_p*
//    for p = qr + 1, elements as canonical residues in [0, p).  Three vetted
//    parameter sets are hard-coded: test (256/128), default (768/256) and
//    big (1536/256).
//  * EcGroup (group_curve.hpp) — secp256k1, elements as compressed curve
//    points; 1–2 orders of magnitude faster per operation at a higher
//    security margin than even the big Schnorr set.
//
// Element representation is backend-opaque (crypto/element.hpp): consumers
// treat elements as values with equality only and route every operation,
// validity check, and byte encoding through the Group.  Exponents live in
// Z_q for the backend's group order q; the scalar field API is shared by
// both backends, so Shamir sharing and LSSS code is backend-independent.
// A deployment picks its backend at dealing time (the dealer's GroupPtr
// parameter) and peers agree on it by the group's wire `name` (see
// Group::by_name).  Threshold RSA is unaffected — it lives in Z_Nm*, not
// here.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "crypto/bigint.hpp"
#include "crypto/element.hpp"

namespace sintra::crypto {

class Group {
 public:
  virtual ~Group() = default;
  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  /// Named parameter sets (shared singletons).
  static std::shared_ptr<const Group> test_group();     ///< schnorr, p 256-bit, q 128-bit
  static std::shared_ptr<const Group> default_group();  ///< schnorr, p 768-bit, q 256-bit
  static std::shared_ptr<const Group> big_group();      ///< schnorr, p 1536-bit, q 256-bit
  static std::shared_ptr<const Group> curve_group();    ///< secp256k1, 256-bit
  /// Deployment negotiation: resolve a wire name (as carried in handshakes
  /// and config) to its singleton; throws ProtocolError on unknown names.
  static std::shared_ptr<const Group> by_name(std::string_view name);

  [[nodiscard]] const BigInt& q() const { return q_; }
  [[nodiscard]] const Element& g() const { return g_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t element_bytes() const { return element_bytes_; }
  [[nodiscard]] std::size_t scalar_bytes() const { return scalar_bytes_; }

  // -- element operations (backend-dispatched) ------------------------------
  [[nodiscard]] virtual Element mul(const Element& a, const Element& b) const = 0;
  /// base^scalar; uses a windowed fixed-base table when `base` is g or was
  /// registered with precompute_base (no squarings/doublings on those paths).
  [[nodiscard]] virtual Element exp(const Element& base, const BigInt& scalar) const = 0;
  /// g^scalar via the eagerly-built fixed-base table.
  [[nodiscard]] virtual Element exp_g(const BigInt& scalar) const = 0;
  /// b1^e1 * b2^e2 with one shared squaring/doubling chain (Shamir's trick)
  /// — the workhorse of every proof verification (a = g^z * h^{-c}).
  [[nodiscard]] virtual Element exp2(const Element& b1, const BigInt& e1, const Element& b2,
                                     const BigInt& e2) const = 0;
  /// b1^e1 * b2^e2 == expected — the whole of a Chaum–Pedersen equation
  /// check in one call.  Semantically identical to `exp2(...) == expected`
  /// (the default implementation), but a backend may verify without
  /// producing the canonical representation: the curve backend compares
  /// projectively and saves the field inversion that normalizing the exp2
  /// result would cost.
  [[nodiscard]] virtual bool exp2_equals(const Element& b1, const BigInt& e1, const Element& b2,
                                         const BigInt& e2, const Element& expected) const;
  /// prod_i base_i^{exp_i} with one shared chain; used by the Lagrange-in-
  /// the-exponent share combiners and the batch verifier.
  [[nodiscard]] virtual Element multi_exp(
      const std::vector<std::pair<Element, BigInt>>& pairs) const = 0;
  [[nodiscard]] virtual Element inv(const Element& a) const = 0;
  /// The group identity, in the backend's own representation.
  [[nodiscard]] virtual Element identity() const = 0;

  /// Build and cache a fixed-base table for `base` (a long-lived public
  /// key), accelerating all later exp(base, ·) calls.  No-op once the
  /// bounded cache is full; safe to call from multiple threads.
  virtual void precompute_base(const Element& base) const = 0;

  /// Full membership check.  Every deserialized element must pass this
  /// before use; accepting non-group elements from Byzantine peers would
  /// leak bits of exponents (small-subgroup attacks).  Elements carrying
  /// the wrong backend representation are simply not members.
  [[nodiscard]] virtual bool is_element(const Element& a) const = 0;

  /// Relaxed check sufficient for *commitment* values in commitment-form
  /// proofs: they only ever appear on one side of an equality whose other
  /// side is a product of group elements, so a bad commitment simply fails
  /// verification and no secret exponent ever touches it.  For the Schnorr
  /// backend this is the cheap [1, p) range check; for the curve backend
  /// membership is already a constant-cost on-curve check, so the two
  /// coincide.  Statement elements still require the full is_element.
  [[nodiscard]] virtual bool is_residue(const Element& a) const = 0;

  /// Random oracle into the group with unknown discrete log.
  [[nodiscard]] virtual Element hash_to_element(std::string_view domain, BytesView data) const = 0;

  /// Serialize an element in the backend's canonical fixed-width form
  /// (element_bytes() bytes on the wire).
  virtual void encode_element(Writer& w, const Element& a) const = 0;
  /// Deserialize and validate membership; throws ProtocolError.
  [[nodiscard]] virtual Element decode_element(Reader& r) const = 0;
  /// Deserialize a proof commitment with only the is_residue check; throws
  /// ProtocolError on violation.
  [[nodiscard]] virtual Element decode_residue(Reader& r) const = 0;

  // -- scalar (exponent) field, shared across backends ----------------------
  [[nodiscard]] BigInt scalar_add(const BigInt& a, const BigInt& b) const;
  [[nodiscard]] BigInt scalar_sub(const BigInt& a, const BigInt& b) const;
  [[nodiscard]] BigInt scalar_mul(const BigInt& a, const BigInt& b) const;
  [[nodiscard]] BigInt scalar_inv(const BigInt& a) const;
  [[nodiscard]] bool is_scalar(const BigInt& a) const;

  template <typename RngT>
  BigInt random_scalar(RngT& rng) const {
    return BigInt::random_below(rng, q_);
  }

  /// Random oracle into Z_q (Fiat–Shamir challenges).
  [[nodiscard]] BigInt hash_to_scalar(std::string_view domain, BytesView data) const;

  void encode_scalar(Writer& w, const BigInt& a) const;
  [[nodiscard]] BigInt decode_scalar(Reader& r) const;

 protected:
  Group(BigInt q, std::string name, std::size_t element_bytes);

  BigInt q_;
  std::string name_;
  std::size_t element_bytes_;
  std::size_t scalar_bytes_;
  Element g_;  ///< set by the backend constructor
};

using GroupPtr = std::shared_ptr<const Group>;

}  // namespace sintra::crypto
