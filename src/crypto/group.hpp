// Schnorr groups: the prime-order-q subgroup of Z_p* for p = qr + 1.
//
// This is the algebraic setting of both discrete-log-based threshold
// primitives in the architecture:
//  * the Diffie–Hellman threshold coin of Cachin–Kursawe–Shoup (coin.hpp),
//  * the Shoup–Gennaro TDH2 threshold cryptosystem (tdh2.hpp),
// and of the Chaum–Pedersen NIZK proofs that make both robust (nizk.hpp).
//
// Group elements are represented by their canonical residue in [0, p).
// Exponents live in Z_q (see Scalar helpers).  Three vetted parameter sets
// are hard-coded (generated offline with an independent implementation and
// re-verified by the test suite): a small/fast one for unit tests, a default
// one for protocol simulations, and a large one for crypto benchmarks.
#pragma once

#include <memory>
#include <string>

#include "crypto/bigint.hpp"

namespace sintra::crypto {

/// Immutable description of a Schnorr group.  Shared by reference between
/// all keys/ciphertexts/proofs of one deployment.
class Group {
 public:
  Group(BigInt p, BigInt q, BigInt g, std::string name);

  /// Named parameter sets.
  static std::shared_ptr<const Group> test_group();     ///< p 256-bit, q 128-bit
  static std::shared_ptr<const Group> default_group();  ///< p 768-bit, q 256-bit
  static std::shared_ptr<const Group> big_group();      ///< p 1536-bit, q 256-bit

  [[nodiscard]] const BigInt& p() const { return p_; }
  [[nodiscard]] const BigInt& q() const { return q_; }
  [[nodiscard]] const BigInt& g() const { return g_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  // -- element operations ---------------------------------------------------
  [[nodiscard]] BigInt mul(const BigInt& a, const BigInt& b) const;
  [[nodiscard]] BigInt exp(const BigInt& base, const BigInt& scalar) const;
  /// g^scalar.
  [[nodiscard]] BigInt exp_g(const BigInt& scalar) const;
  [[nodiscard]] BigInt inv(const BigInt& a) const;
  [[nodiscard]] BigInt identity() const { return BigInt(1); }

  /// True iff `a` is in [1, p) and a^q == 1 (i.e. a member of the order-q
  /// subgroup).  Every deserialized element must pass this before use;
  /// accepting non-subgroup elements from Byzantine peers would leak bits
  /// of exponents (small-subgroup attacks).
  [[nodiscard]] bool is_element(const BigInt& a) const;

  // -- scalar (exponent) operations ------------------------------------------
  [[nodiscard]] BigInt scalar_add(const BigInt& a, const BigInt& b) const;
  [[nodiscard]] BigInt scalar_sub(const BigInt& a, const BigInt& b) const;
  [[nodiscard]] BigInt scalar_mul(const BigInt& a, const BigInt& b) const;
  [[nodiscard]] BigInt scalar_inv(const BigInt& a) const;
  [[nodiscard]] bool is_scalar(const BigInt& a) const;

  template <typename RngT>
  BigInt random_scalar(RngT& rng) const {
    return BigInt::random_below(rng, q_);
  }

  /// Random oracle into the subgroup: H̃(domain, data) = u^r mod p where the
  /// expanded hash is first reduced mod p and then raised to the cofactor r,
  /// giving an element of order (dividing) q with unknown discrete log.
  [[nodiscard]] BigInt hash_to_element(std::string_view domain, BytesView data) const;

  /// Random oracle into Z_q (Fiat–Shamir challenges).
  [[nodiscard]] BigInt hash_to_scalar(std::string_view domain, BytesView data) const;

  /// Serialize an element padded to the byte width of p (canonical form).
  void encode_element(Writer& w, const BigInt& a) const;
  /// Deserialize and validate subgroup membership; throws ProtocolError.
  [[nodiscard]] BigInt decode_element(Reader& r) const;
  void encode_scalar(Writer& w, const BigInt& a) const;
  [[nodiscard]] BigInt decode_scalar(Reader& r) const;

  [[nodiscard]] std::size_t element_bytes() const { return element_bytes_; }
  [[nodiscard]] std::size_t scalar_bytes() const { return scalar_bytes_; }

 private:
  BigInt p_;
  BigInt q_;
  BigInt g_;
  BigInt cofactor_;  ///< (p-1)/q
  std::string name_;
  std::size_t element_bytes_;
  std::size_t scalar_bytes_;
};

using GroupPtr = std::shared_ptr<const Group>;

}  // namespace sintra::crypto
