#include "crypto/bigint.hpp"

#include <algorithm>
#include <array>

#include "common/assert.hpp"

namespace sintra::crypto {

namespace {
using Limbs = std::vector<std::uint64_t>;

constexpr std::uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,
    59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127,
    131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283,
    293, 307, 311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383,
    389, 397, 401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461, 463, 467,
    479, 487, 491, 499, 503, 509, 521, 523, 541, 547, 557, 563, 569, 571, 577,
    587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659, 661,
    673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769,
    773, 787, 797, 809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877,
    881, 883, 887, 907, 911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983,
    991, 997};
}  // namespace

BigInt::BigInt(std::int64_t value) {
  if (value < 0) {
    negative_ = true;
    // Avoid UB on INT64_MIN.
    limbs_.push_back(static_cast<std::uint64_t>(-(value + 1)) + 1);
  } else if (value > 0) {
    limbs_.push_back(static_cast<std::uint64_t>(value));
  }
}

BigInt::BigInt(std::uint64_t value, int) {
  if (value != 0) limbs_.push_back(value);
}

BigInt BigInt::from_u64(std::uint64_t value) {
  return BigInt(value, 0);
}

BigInt BigInt::from_string(std::string_view text) {
  bool negative = false;
  if (!text.empty() && text[0] == '-') {
    negative = true;
    text.remove_prefix(1);
  }
  SINTRA_REQUIRE(!text.empty(), "BigInt: empty numeric string");
  BigInt result;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    std::string_view hex = text.substr(2);
    std::string padded(hex.size() % 2 == 1 ? "0" : "");
    padded += hex;
    result = from_bytes(from_hex(padded));
  } else {
    const BigInt ten(10);
    for (char c : text) {
      SINTRA_REQUIRE(c >= '0' && c <= '9', "BigInt: invalid decimal digit");
      result = result * ten + BigInt(c - '0');
    }
  }
  result.negative_ = negative && !result.is_zero();
  return result;
}

BigInt BigInt::from_bytes(BytesView data) {
  BigInt result;
  // Big-endian bytes -> little-endian limbs.
  std::size_t n = data.size();
  result.limbs_.resize((n + 7) / 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t byte_index = n - 1 - i;  // position from LSB
    result.limbs_[byte_index / 8] |=
        static_cast<std::uint64_t>(data[i]) << (8 * (byte_index % 8));
  }
  result.trim();
  return result;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint64_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 64;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  std::string digits;
  BigInt value = *this;
  value.negative_ = false;
  const BigInt ten(10);
  BigInt quotient;
  BigInt remainder;
  while (!value.is_zero()) {
    divmod(value, ten, quotient, remainder);
    digits.push_back(static_cast<char>('0' + remainder.low_u64()));
    value = quotient;
  }
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  Bytes raw = to_bytes();
  std::string hex = sintra::to_hex(raw);
  // Strip a single leading zero nibble if present.
  if (hex.size() > 1 && hex[0] == '0') hex.erase(0, 1);
  return negative_ ? "-" + hex : hex;
}

Bytes BigInt::to_bytes() const {
  if (limbs_.empty()) return {};
  std::size_t bytes_needed = (bit_length() + 7) / 8;
  return to_bytes_padded(bytes_needed);
}

Bytes BigInt::to_bytes_padded(std::size_t width) const {
  SINTRA_REQUIRE((bit_length() + 7) / 8 <= width, "BigInt: value too wide for padding");
  Bytes out(width, 0);
  for (std::size_t i = 0; i < width; ++i) {
    std::size_t byte_index = width - 1 - i;  // position from LSB
    std::size_t limb = byte_index / 8;
    if (limb < limbs_.size()) {
      out[i] = static_cast<std::uint8_t>(limbs_[limb] >> (8 * (byte_index % 8)));
    }
  }
  return out;
}

int BigInt::compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = compare_magnitude(other);
  return negative_ ? -mag : mag;
}

int BigInt::compare_magnitude(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

Limbs BigInt::add_magnitudes(const Limbs& a, const Limbs& b) {
  const Limbs& longer = a.size() >= b.size() ? a : b;
  const Limbs& shorter = a.size() >= b.size() ? b : a;
  Limbs out(longer.size() + 1, 0);
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    unsigned __int128 sum = carry + longer[i];
    if (i < shorter.size()) sum += shorter[i];
    out[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  out[longer.size()] = static_cast<std::uint64_t>(carry);
  return out;
}

Limbs BigInt::sub_magnitudes(const Limbs& a, const Limbs& b) {
  Limbs out(a.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    unsigned __int128 lhs = a[i];
    unsigned __int128 rhs = (i < b.size() ? b[i] : 0);
    rhs += static_cast<unsigned __int128>(borrow);
    if (lhs >= rhs) {
      out[i] = static_cast<std::uint64_t>(lhs - rhs);
      borrow = 0;
    } else {
      out[i] = static_cast<std::uint64_t>((static_cast<unsigned __int128>(1) << 64) + lhs - rhs);
      borrow = 1;
    }
  }
  return out;
}

Limbs BigInt::mul_magnitudes(const Limbs& a, const Limbs& b) {
  if (a.empty() || b.empty()) return {};
  Limbs out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    unsigned __int128 carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      unsigned __int128 cur = out[i + j] + carry +
                              static_cast<unsigned __int128>(a[i]) * b[j];
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      unsigned __int128 cur = out[k] + carry;
      out[k] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
      ++k;
    }
  }
  return out;
}

// Knuth Algorithm D, normalized so the divisor's top limb has its high bit set.
void BigInt::divmod_magnitudes(const Limbs& a, const Limbs& b, Limbs& quotient, Limbs& remainder) {
  SINTRA_REQUIRE(!b.empty(), "BigInt: division by zero");
  // Fast paths.
  if (a.size() < b.size() ||
      (a.size() == b.size() &&
       std::lexicographical_compare(a.rbegin(), a.rend(), b.rbegin(), b.rend()))) {
    quotient.clear();
    remainder = a;
    return;
  }
  if (b.size() == 1) {
    quotient.assign(a.size(), 0);
    unsigned __int128 rem = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      unsigned __int128 cur = (rem << 64) | a[i];
      quotient[i] = static_cast<std::uint64_t>(cur / b[0]);
      rem = cur % b[0];
    }
    remainder.clear();
    if (rem != 0) remainder.push_back(static_cast<std::uint64_t>(rem));
    return;
  }

  // Normalize.
  int shift = 0;
  std::uint64_t top = b.back();
  while (!(top & (1ULL << 63))) {
    top <<= 1;
    ++shift;
  }
  auto shl = [&](const Limbs& src, int s) {
    if (s == 0) {
      Limbs out = src;
      out.push_back(0);
      return out;
    }
    Limbs out(src.size() + 1, 0);
    for (std::size_t i = 0; i < src.size(); ++i) {
      out[i] |= src[i] << s;
      out[i + 1] = src[i] >> (64 - s);
    }
    return out;
  };
  Limbs u = shl(a, shift);            // size n + m + 1 (with extra limb)
  Limbs v = shl(b, shift);            // normalized divisor
  while (v.size() > b.size()) v.pop_back();  // drop the zero extension
  const std::size_t n = v.size();
  const std::size_t m = u.size() - n - 1;

  quotient.assign(m + 1, 0);
  const unsigned __int128 base = static_cast<unsigned __int128>(1) << 64;
  for (std::size_t j = m + 1; j-- > 0;) {
    unsigned __int128 numerator = (static_cast<unsigned __int128>(u[j + n]) << 64) | u[j + n - 1];
    unsigned __int128 qhat = numerator / v[n - 1];
    unsigned __int128 rhat = numerator % v[n - 1];
    while (qhat >= base ||
           qhat * v[n - 2] > ((rhat << 64) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= base) break;
    }
    // Multiply-subtract.
    unsigned __int128 borrow = 0;
    unsigned __int128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      unsigned __int128 product = qhat * v[i] + carry;
      carry = product >> 64;
      std::uint64_t product_low = static_cast<std::uint64_t>(product);
      unsigned __int128 diff = static_cast<unsigned __int128>(u[i + j]) - product_low - borrow;
      u[i + j] = static_cast<std::uint64_t>(diff);
      borrow = (diff >> 64) ? 1 : 0;
    }
    unsigned __int128 diff = static_cast<unsigned __int128>(u[j + n]) - carry - borrow;
    u[j + n] = static_cast<std::uint64_t>(diff);
    bool negative = (diff >> 64) != 0;

    if (negative) {
      // qhat was one too large: add back.
      --qhat;
      unsigned __int128 add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        unsigned __int128 sum = static_cast<unsigned __int128>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<std::uint64_t>(sum);
        add_carry = sum >> 64;
      }
      u[j + n] = static_cast<std::uint64_t>(u[j + n] + add_carry);
    }
    quotient[j] = static_cast<std::uint64_t>(qhat);
  }

  // Denormalize the remainder (shift right across limbs).
  remainder.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    remainder[i] = shift == 0 ? u[i] : u[i] >> shift;
    if (shift != 0 && i + 1 < n) remainder[i] |= u[i + 1] << (64 - shift);
  }
  while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();
  while (!remainder.empty() && remainder.back() == 0) remainder.pop_back();
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  BigInt out;
  if (a.negative_ == b.negative_) {
    out.limbs_ = BigInt::add_magnitudes(a.limbs_, b.limbs_);
    out.negative_ = a.negative_;
  } else {
    int mag = a.compare_magnitude(b);
    if (mag == 0) return BigInt();
    if (mag > 0) {
      out.limbs_ = BigInt::sub_magnitudes(a.limbs_, b.limbs_);
      out.negative_ = a.negative_;
    } else {
      out.limbs_ = BigInt::sub_magnitudes(b.limbs_, a.limbs_);
      out.negative_ = b.negative_;
    }
  }
  out.trim();
  return out;
}

BigInt operator-(const BigInt& a, const BigInt& b) {
  return a + (-b);
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  BigInt out;
  out.limbs_ = BigInt::mul_magnitudes(a.limbs_, b.limbs_);
  out.negative_ = a.negative_ != b.negative_;
  out.trim();
  return out;
}

void BigInt::divmod(const BigInt& a, const BigInt& b, BigInt& quotient, BigInt& remainder) {
  Limbs q;
  Limbs r;
  divmod_magnitudes(a.limbs_, b.limbs_, q, r);
  quotient.limbs_ = std::move(q);
  quotient.negative_ = a.negative_ != b.negative_;
  quotient.trim();
  remainder.limbs_ = std::move(r);
  remainder.negative_ = a.negative_;
  remainder.trim();
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  BigInt q;
  BigInt r;
  BigInt::divmod(a, b, q, r);
  return q;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  BigInt q;
  BigInt r;
  BigInt::divmod(a, b, q, r);
  return r;
}

BigInt BigInt::shifted_left(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift == 0 ? limbs_[i] : limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::shifted_right(std::size_t bits) const {
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = bit_shift == 0 ? limbs_[i + limb_shift] : limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::mod(const BigInt& m) const {
  SINTRA_REQUIRE(!m.is_zero() && !m.negative_, "BigInt: modulus must be positive");
  BigInt r = *this % m;
  if (r.negative_) r += m;
  return r;
}

BigInt BigInt::add_mod(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a + b).mod(m);
}

BigInt BigInt::sub_mod(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a - b).mod(m);
}

BigInt BigInt::mul_mod(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a * b).mod(m);
}

BigInt BigInt::pow_mod(const BigInt& base, const BigInt& exponent, const BigInt& m) {
  SINTRA_REQUIRE(!exponent.negative_, "BigInt: negative exponent");
  SINTRA_REQUIRE(!m.is_zero() && !m.negative_, "BigInt: modulus must be positive");
  if (m.is_one()) return BigInt();
  // Montgomery REDC only works for odd moduli, and its per-call setup (one
  // wide divmod for R^2 mod m) only pays off once the exponent drives more
  // than a handful of modular multiplications.
  if (m.is_odd() && m.limbs_.size() >= 2 && exponent.bit_length() > 16) {
    return Montgomery(m).pow(base, exponent);
  }
  return pow_mod_reference(base, exponent, m);
}

BigInt BigInt::pow2_mod(const BigInt& b1, const BigInt& e1, const BigInt& b2, const BigInt& e2,
                        const BigInt& m) {
  SINTRA_REQUIRE(!e1.negative_ && !e2.negative_, "BigInt: negative exponent");
  SINTRA_REQUIRE(!m.is_zero() && !m.negative_, "BigInt: modulus must be positive");
  if (m.is_one()) return BigInt();
  if (m.is_odd() && m.limbs_.size() >= 2) {
    return Montgomery(m).pow2(b1, e1, b2, e2);
  }
  return mul_mod(pow_mod_reference(b1, e1, m), pow_mod_reference(b2, e2, m), m);
}

BigInt BigInt::pow_mod_reference(const BigInt& base, const BigInt& exponent, const BigInt& m) {
  SINTRA_REQUIRE(!exponent.negative_, "BigInt: negative exponent");
  SINTRA_REQUIRE(!m.is_zero() && !m.negative_, "BigInt: modulus must be positive");
  if (m.is_one()) return BigInt();
  BigInt result(1);
  BigInt b = base.mod(m);
  const std::size_t bits = exponent.bit_length();
  // Left-to-right square-and-multiply with a 4-bit fixed window.
  constexpr std::size_t kWindow = 4;
  if (bits <= 16) {
    for (std::size_t i = bits; i-- > 0;) {
      result = mul_mod(result, result, m);
      if (exponent.bit(i)) result = mul_mod(result, b, m);
    }
    return result;
  }
  // Precompute b^0..b^15.
  std::vector<BigInt> table(1ULL << kWindow);
  table[0] = BigInt(1);
  for (std::size_t i = 1; i < table.size(); ++i) table[i] = mul_mod(table[i - 1], b, m);
  std::size_t i = bits;
  while (i > 0) {
    std::size_t take = std::min(kWindow, i);
    std::uint32_t window = 0;
    for (std::size_t k = 0; k < take; ++k) {
      window = window << 1 | static_cast<std::uint32_t>(exponent.bit(i - 1 - k));
    }
    for (std::size_t k = 0; k < take; ++k) result = mul_mod(result, result, m);
    if (window != 0) result = mul_mod(result, table[window], m);
    i -= take;
  }
  return result;
}

BigInt BigInt::inverse_mod(const BigInt& a, const BigInt& m) {
  BigInt x;
  BigInt y;
  BigInt g = extended_gcd(a.mod(m), m, x, y);
  SINTRA_REQUIRE(g.is_one(), "BigInt: not invertible");
  return x.mod(m);
}

BigInt BigInt::gcd(const BigInt& a, const BigInt& b) {
  BigInt u = a;
  BigInt v = b;
  u.negative_ = false;
  v.negative_ = false;
  while (!v.is_zero()) {
    BigInt r = u % v;
    u = v;
    v = r;
  }
  return u;
}

BigInt BigInt::extended_gcd(const BigInt& a, const BigInt& b, BigInt& x, BigInt& y) {
  BigInt old_r = a;
  BigInt r = b;
  BigInt old_s(1);
  BigInt s(0);
  BigInt old_t(0);
  BigInt t(1);
  while (!r.is_zero()) {
    BigInt q;
    BigInt rem;
    divmod(old_r, r, q, rem);
    old_r = r;
    r = rem;
    BigInt tmp_s = old_s - q * s;
    old_s = s;
    s = tmp_s;
    BigInt tmp_t = old_t - q * t;
    old_t = t;
    t = tmp_t;
  }
  x = old_s;
  y = old_t;
  return old_r;
}

BigInt BigInt::factorial(unsigned n) {
  BigInt out(1);
  for (unsigned i = 2; i <= n; ++i) out *= BigInt(static_cast<std::int64_t>(i));
  return out;
}

bool BigInt::divisible_by_small_prime() const {
  for (std::uint32_t p : kSmallPrimes) {
    BigInt rem = *this % BigInt(static_cast<std::int64_t>(p));
    if (rem.is_zero()) return !(limbs_.size() == 1 && limbs_[0] == p);
  }
  return false;
}

bool BigInt::miller_rabin_witness(const BigInt& base) const {
  // Returns true if `base` does NOT witness compositeness.
  const BigInt one(1);
  const BigInt n_minus_1 = *this - one;
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d.shifted_right(1);
    ++r;
  }
  BigInt x = pow_mod(base, d, *this);
  if (x.is_one() || x == n_minus_1) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = mul_mod(x, x, *this);
    if (x == n_minus_1) return true;
  }
  return false;
}

// ---- Montgomery ------------------------------------------------------------

Montgomery::Montgomery(BigInt modulus) : m_big_(std::move(modulus)) {
  SINTRA_REQUIRE(!m_big_.is_zero() && !m_big_.is_negative(),
                 "Montgomery: modulus must be positive");
  SINTRA_REQUIRE(m_big_.is_odd(), "Montgomery: modulus must be odd");
  m_ = m_big_.limbs_;
  n_ = m_.size();
  // n0_ = -m^{-1} mod 2^64 by Newton iteration (doubles correct bits each
  // round; 6 rounds cover 64 bits starting from the 5-bit-correct seed m0).
  const std::uint64_t m0 = m_[0];
  std::uint64_t inv = m0;  // correct mod 2^5 for odd m0
  for (int i = 0; i < 6; ++i) inv *= 2 - m0 * inv;
  n0_ = ~inv + 1;  // -inv mod 2^64
  r2_ = BigInt(1).shifted_left(128 * n_).mod(m_big_);
  one_mont_ = BigInt(1).shifted_left(64 * n_).mod(m_big_);
}

Montgomery::Limbs Montgomery::load(const BigInt& a) const {
  Limbs out(n_, 0);
  std::copy(a.limbs_.begin(), a.limbs_.end(), out.begin());
  return out;
}

BigInt Montgomery::store(const Limbs& limbs) const {
  BigInt out;
  out.limbs_ = limbs;
  out.trim();
  return out;
}

void Montgomery::mont_mul_limbs(const std::uint64_t* a, const std::uint64_t* b,
                                std::uint64_t* out, std::uint64_t* t) const {
  // Fused CIOS: for each limb of a, accumulate a[i]*b into t, then add the
  // multiple u*m that zeroes t[0] and shift right one limb.  The invariant
  // value(t) < 2m holds throughout, so t fits in n_+1 limbs and a single
  // conditional subtraction at the end lands the result in [0, m).
  const std::size_t n = n_;
  std::fill(t, t + n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t ai = a[i];
    unsigned __int128 carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      unsigned __int128 cur = t[j] + static_cast<unsigned __int128>(ai) * b[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    unsigned __int128 top = static_cast<unsigned __int128>(t[n]) + carry;
    t[n] = static_cast<std::uint64_t>(top);
    const std::uint64_t overflow = static_cast<std::uint64_t>(top >> 64);

    const std::uint64_t u = t[0] * n0_;
    unsigned __int128 cur = t[0] + static_cast<unsigned __int128>(u) * m_[0];
    carry = cur >> 64;  // low limb is zero by choice of u
    for (std::size_t j = 1; j < n; ++j) {
      cur = t[j] + static_cast<unsigned __int128>(u) * m_[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    top = static_cast<unsigned __int128>(t[n]) + carry;
    t[n - 1] = static_cast<std::uint64_t>(top);
    t[n] = overflow + static_cast<std::uint64_t>(top >> 64);
  }
  // Conditional subtract: result = t mod m.
  bool geq = t[n] != 0;
  if (!geq) {
    geq = true;
    for (std::size_t i = n; i-- > 0;) {
      if (t[i] != m_[i]) {
        geq = t[i] > m_[i];
        break;
      }
    }
  }
  if (geq) {
    unsigned __int128 borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      unsigned __int128 diff = static_cast<unsigned __int128>(t[i]) - m_[i] - borrow;
      out[i] = static_cast<std::uint64_t>(diff);
      borrow = (diff >> 64) ? 1 : 0;
    }
  } else {
    std::copy(t, t + n, out);
  }
}

BigInt Montgomery::to_mont(const BigInt& a) const {
  Limbs av = load(a.mod(m_big_));
  Limbs r2v = load(r2_);
  Limbs t(n_ + 1);
  mont_mul_limbs(av.data(), r2v.data(), av.data(), t.data());
  return store(av);
}

BigInt Montgomery::from_mont(const BigInt& a) const {
  Limbs av = load(a);
  Limbs one(n_, 0);
  one[0] = 1;
  Limbs t(n_ + 1);
  mont_mul_limbs(av.data(), one.data(), av.data(), t.data());
  return store(av);
}

BigInt Montgomery::mul(const BigInt& a_mont, const BigInt& b_mont) const {
  Limbs av = load(a_mont);
  Limbs bv = load(b_mont);
  Limbs t(n_ + 1);
  mont_mul_limbs(av.data(), bv.data(), av.data(), t.data());
  return store(av);
}

BigInt Montgomery::mul_mod(const BigInt& a, const BigInt& b) const {
  return from_mont(mul(to_mont(a), to_mont(b)));
}

BigInt Montgomery::pow(const BigInt& base, const BigInt& exponent) const {
  SINTRA_REQUIRE(!exponent.is_negative(), "Montgomery: negative exponent");
  const std::size_t bits = exponent.bit_length();
  Limbs b = load(to_mont(base));
  Limbs result = load(one_mont_);
  Limbs t(n_ + 1);
  if (bits <= 16) {
    for (std::size_t i = bits; i-- > 0;) {
      mont_mul_limbs(result.data(), result.data(), result.data(), t.data());
      if (exponent.bit(i)) mont_mul_limbs(result.data(), b.data(), result.data(), t.data());
    }
    return from_mont(store(result));
  }
  // 4-bit fixed window, matching the reference path's schedule.
  constexpr std::size_t kWindow = 4;
  std::vector<Limbs> table(1ULL << kWindow);
  table[0] = load(one_mont_);
  for (std::size_t i = 1; i < table.size(); ++i) {
    table[i] = Limbs(n_);
    mont_mul_limbs(table[i - 1].data(), b.data(), table[i].data(), t.data());
  }
  std::size_t i = bits;
  while (i > 0) {
    std::size_t take = std::min(kWindow, i);
    std::uint32_t window = 0;
    for (std::size_t k = 0; k < take; ++k) {
      window = window << 1 | static_cast<std::uint32_t>(exponent.bit(i - 1 - k));
    }
    for (std::size_t k = 0; k < take; ++k) {
      mont_mul_limbs(result.data(), result.data(), result.data(), t.data());
    }
    if (window != 0) {
      mont_mul_limbs(result.data(), table[window].data(), result.data(), t.data());
    }
    i -= take;
  }
  return from_mont(store(result));
}

BigInt Montgomery::pow2(const BigInt& b1, const BigInt& e1, const BigInt& b2,
                        const BigInt& e2) const {
  return multi_pow({{b1, e1}, {b2, e2}});
}

BigInt Montgomery::multi_pow(const std::vector<std::pair<BigInt, BigInt>>& pairs) const {
  // Interleaved 2-bit windows over one shared squaring chain (Shamir's
  // trick generalized to k bases): squarings = max exponent length instead
  // of the sum over all bases.
  std::size_t bits = 0;
  for (const auto& [base, exp] : pairs) {
    SINTRA_REQUIRE(!exp.is_negative(), "Montgomery: negative exponent");
    bits = std::max(bits, exp.bit_length());
  }
  Limbs result = load(one_mont_);
  Limbs t(n_ + 1);
  if (bits == 0) return from_mont(store(result));
  // Per-base table of base^1..base^3 in Montgomery form.
  std::vector<std::array<Limbs, 3>> tables;
  tables.reserve(pairs.size());
  for (const auto& [base, exp] : pairs) {
    std::array<Limbs, 3> tab;
    tab[0] = load(to_mont(base));
    tab[1] = Limbs(n_);
    tab[2] = Limbs(n_);
    mont_mul_limbs(tab[0].data(), tab[0].data(), tab[1].data(), t.data());
    mont_mul_limbs(tab[1].data(), tab[0].data(), tab[2].data(), t.data());
    tables.push_back(std::move(tab));
  }
  std::size_t top = (bits + 1) & ~std::size_t{1};  // round up to a 2-bit boundary
  for (std::size_t i = top; i > 0; i -= 2) {
    mont_mul_limbs(result.data(), result.data(), result.data(), t.data());
    mont_mul_limbs(result.data(), result.data(), result.data(), t.data());
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      const BigInt& exp = pairs[k].second;
      const std::uint32_t window =
          (static_cast<std::uint32_t>(exp.bit(i - 1)) << 1) |
          static_cast<std::uint32_t>(exp.bit(i - 2));
      if (window != 0) {
        mont_mul_limbs(result.data(), tables[k][window - 1].data(), result.data(), t.data());
      }
    }
  }
  return from_mont(store(result));
}

void BigInt::encode(Writer& w) const {
  w.boolean(negative_);
  w.bytes(to_bytes());
}

BigInt BigInt::decode(Reader& r) {
  bool negative = r.boolean();
  BigInt value = from_bytes(r.bytes());
  SINTRA_REQUIRE(!(negative && value.is_zero()), "BigInt: negative zero");
  value.negative_ = negative;
  return value;
}

}  // namespace sintra::crypto
