#include "crypto/dealer.hpp"

#include "common/assert.hpp"
#include "crypto/sha256.hpp"
#include "crypto/shamir.hpp"

namespace sintra::crypto {

KeyBundle KeyBundle::deal(GroupPtr group, std::shared_ptr<const LinearScheme> low,
                          std::shared_ptr<const LinearScheme> high, const RsaParams& rsa,
                          Rng& rng) {
  SINTRA_REQUIRE(low->num_parties() == high->num_parties(),
                 "dealer: access structures disagree on party count");
  const int n = low->num_parties();

  CoinDeal coin = CoinDeal::deal(group, low, rng);
  ThresholdSigDeal cert_sig = ThresholdSigDeal::deal(rsa, high, rng);
  ThresholdSigDeal reply_sig = ThresholdSigDeal::deal(rsa, low, rng);
  Tdh2Deal encryption = Tdh2Deal::deal(group, low, rng);

  // Pairwise channel keys (symmetric: pair_keys[i][j] == pair_keys[j][i]).
  std::vector<std::vector<Bytes>> pair_keys(static_cast<std::size_t>(n),
                                            std::vector<Bytes>(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      Bytes key = rng.bytes(32);
      pair_keys[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = key;
      pair_keys[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = std::move(key);
    }
  }

  std::vector<PartyKeyShare> shares;
  shares.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    shares.push_back(PartyKeyShare{
        std::move(coin.secret_keys[static_cast<std::size_t>(i)]),
        std::move(cert_sig.secret_keys[static_cast<std::size_t>(i)]),
        std::move(reply_sig.secret_keys[static_cast<std::size_t>(i)]),
        std::move(encryption.secret_keys[static_cast<std::size_t>(i)]),
        std::move(pair_keys[static_cast<std::size_t>(i)])});
  }

  PublicKeys public_keys{std::move(coin.public_key), std::move(cert_sig.public_key),
                         std::move(reply_sig.public_key), std::move(encryption.public_key)};
  return KeyBundle(std::move(public_keys), std::move(shares));
}

Bytes derive_link_key(BytesView channel_key) {
  return hash_expand("sintra/transport/link-key", channel_key, 32);
}

KeyBundle KeyBundle::deal_threshold(int n, int t, Rng& rng, GroupPtr group) {
  SINTRA_REQUIRE(n > 3 * t, "dealer: resilience requires n > 3t");
  auto low = std::make_shared<const ThresholdScheme>(n, t);
  auto high = std::make_shared<const ThresholdScheme>(n, n - t - 1);
  return deal(std::move(group), std::move(low), std::move(high), RsaParams::precomputed(128),
              rng);
}

}  // namespace sintra::crypto
