#include "crypto/shamir.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sintra::crypto {

std::vector<int> set_members(PartySet set) {
  std::vector<int> out;
  for (int i = 0; i < 64; ++i) {
    if (contains(set, i)) out.push_back(i);
  }
  return out;
}

PartySet set_of(const std::vector<int>& members) {
  PartySet set = 0;
  for (int i : members) set |= party_bit(i);
  return set;
}

std::vector<int> LinearScheme::units_of(int party) const {
  std::vector<int> out;
  for (int u = 0; u < num_units(); ++u) {
    if (unit_owner(u) == party) out.push_back(u);
  }
  return out;
}

BigInt LinearScheme::reconstruct(const std::map<int, BigInt>& unit_values,
                                 const BigInt& modulus) const {
  PartySet parties = 0;
  for (const auto& [unit, value] : unit_values) parties |= party_bit(unit_owner(unit));
  SINTRA_REQUIRE(qualified(parties), "LinearScheme: unqualified set");
  BigInt sum;
  for (const auto& [unit, coeff] : coefficients(parties)) {
    auto it = unit_values.find(unit);
    SINTRA_INVARIANT(it != unit_values.end(), "LinearScheme: coefficient for missing unit");
    sum += coeff * it->second;
  }
  BigInt delta_inv = BigInt::inverse_mod(delta(), modulus);
  return BigInt::mul_mod(sum.mod(modulus), delta_inv, modulus);
}

ShamirPolynomial ShamirPolynomial::random(const BigInt& secret, int degree,
                                          const BigInt& modulus, Rng& rng) {
  ShamirPolynomial poly;
  poly.modulus = modulus;
  poly.coeffs.reserve(static_cast<std::size_t>(degree) + 1);
  poly.coeffs.push_back(secret.mod(modulus));
  for (int i = 0; i < degree; ++i) {
    poly.coeffs.push_back(BigInt::random_below(rng, modulus));
  }
  return poly;
}

BigInt ShamirPolynomial::eval(const BigInt& x) const {
  // Horner's rule.
  BigInt acc;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = BigInt::add_mod(BigInt::mul_mod(acc, x, modulus), coeffs[i], modulus);
  }
  return acc;
}

BigInt lagrange_field(const std::vector<int>& points, int j, int target, const BigInt& q) {
  BigInt numerator(1);
  BigInt denominator(1);
  for (int k : points) {
    if (k == j) continue;
    numerator = BigInt::mul_mod(numerator, BigInt(target - k).mod(q), q);
    denominator = BigInt::mul_mod(denominator, BigInt(j - k).mod(q), q);
  }
  return BigInt::mul_mod(numerator, BigInt::inverse_mod(denominator, q), q);
}

BigInt lagrange_integer(const std::vector<int>& points, int j, const BigInt& delta) {
  BigInt numerator = delta;
  BigInt denominator(1);
  for (int k : points) {
    if (k == j) continue;
    numerator *= BigInt(-k);
    denominator *= BigInt(j - k);
  }
  BigInt quotient;
  BigInt remainder;
  BigInt::divmod(numerator, denominator, quotient, remainder);
  SINTRA_INVARIANT(remainder.is_zero(), "lagrange_integer: Δ did not clear denominator");
  return quotient;
}

ThresholdScheme::ThresholdScheme(int n, int t) : n_(n), t_(t) {
  SINTRA_REQUIRE(n >= 1 && n <= 64, "ThresholdScheme: n out of range");
  SINTRA_REQUIRE(t >= 0 && t < n, "ThresholdScheme: t out of range");
  delta_ = BigInt::factorial(static_cast<unsigned>(n));
}

std::vector<BigInt> ThresholdScheme::deal(const BigInt& secret, const BigInt& modulus,
                                          Rng& rng) const {
  ShamirPolynomial poly = ShamirPolynomial::random(secret, t_, modulus, rng);
  std::vector<BigInt> shares;
  shares.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) shares.push_back(poly.eval_at(i + 1));
  return shares;
}

bool ThresholdScheme::qualified(PartySet parties) const {
  return popcount(parties & full_set(n_)) >= t_ + 1;
}

std::map<int, BigInt> ThresholdScheme::coefficients(PartySet parties) const {
  SINTRA_REQUIRE(qualified(parties), "ThresholdScheme: unqualified set");
  std::vector<int> members = set_members(parties & full_set(n_));
  members.resize(static_cast<std::size_t>(t_) + 1);  // first t+1 suffice
  // Interpolation points are party index + 1.
  std::vector<int> points;
  points.reserve(members.size());
  for (int i : members) points.push_back(i + 1);
  std::map<int, BigInt> out;
  for (std::size_t idx = 0; idx < members.size(); ++idx) {
    out[members[idx]] = lagrange_integer(points, points[idx], delta_);
  }
  return out;
}

}  // namespace sintra::crypto
