#include "crypto/vss.hpp"

#include "common/assert.hpp"

namespace sintra::crypto {

FeldmanDealing FeldmanDealing::deal(const Group& group, const BigInt& secret, int n, int t,
                                    Rng& rng) {
  SINTRA_REQUIRE(n >= 1 && t >= 0 && t < n, "FeldmanDealing: bad parameters");
  ShamirPolynomial poly = ShamirPolynomial::random(secret, t, group.q(), rng);
  FeldmanDealing dealing;
  dealing.shares.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) dealing.shares.push_back(poly.eval_at(i + 1));
  dealing.commitments.reserve(poly.coeffs.size());
  for (const BigInt& coeff : poly.coeffs) dealing.commitments.push_back(group.exp_g(coeff));
  return dealing;
}

Element FeldmanDealing::share_image(const Group& group, const std::vector<Element>& commitments,
                                   int party) {
  // prod_j C_j^{x^j} with x = party + 1, via Horner in the exponent:
  // acc = C_t; acc = acc^x * C_{t-1}; ...
  const BigInt x(party + 1);
  Element acc = commitments.back();
  for (std::size_t j = commitments.size() - 1; j-- > 0;) {
    acc = group.mul(group.exp(acc, x), commitments[j]);
  }
  return acc;
}

bool FeldmanDealing::verify_share(const Group& group, const std::vector<Element>& commitments,
                                  int party, const BigInt& share) {
  if (commitments.empty() || !group.is_scalar(share)) return false;
  for (const Element& c : commitments) {
    if (!group.is_element(c)) return false;
  }
  return group.exp_g(share) == share_image(group, commitments, party);
}

void FeldmanDealing::encode_commitments(Writer& w, const Group& group) const {
  w.vec(commitments, [&](Writer& wr, const Element& c) { group.encode_element(wr, c); });
}

std::vector<Element> FeldmanDealing::decode_commitments(Reader& r, const Group& group, int t) {
  auto commitments =
      r.vec<Element>([&](Reader& rd) { return group.decode_element(rd); });
  SINTRA_REQUIRE(static_cast<int>(commitments.size()) == t + 1,
                 "FeldmanDealing: wrong commitment count");
  return commitments;
}

}  // namespace sintra::crypto
