#include "crypto/threshold_sig.hpp"

#include "common/assert.hpp"
#include "crypto/sha256.hpp"

namespace sintra::crypto {

namespace {
constexpr int kChallengeBytes = 16;  // 128-bit Fiat–Shamir challenges
constexpr int kSlackBits = 64;       // statistical hiding slack for responses
const BigInt kPublicExponent(65537);

// Precomputed safe-prime pairs (generated offline, re-verified in tests).
struct PrimePair {
  const char* p;
  const char* q;
};
constexpr PrimePair kRsa128 = {"0xcbb238ed0b80bcc05d1272bcb195c2ab",
                               "0xfc6a87312a8cde7b80fe720bb65521df"};
constexpr PrimePair kRsa256 = {
    "0x8ae6dc1067c0315a91688ea460719bfafa2669cd902a61f828219164074770c7",
    "0xfde5b03a851b5a2ca1b5bb9b3824fd64c3d288751749d2a3ce96d0d82777a933"};
constexpr PrimePair kRsa512 = {
    "0xd8f3d88e06db1b9b3590bdcb235b56c40b0ed3c027ecc49c08eea134ff6ad2e7"
    "4a26d556dace4306555f4415d5e542e15d1e705210b84886d7249e509b7c810b",
    "0xee9844956870c9fb5890681b7adb224748fe51c2715fd187c6b2e350f6b61b1f"
    "4ad2244739279d34d54c38e9b69cfc42b4303571c02b4b2fae67dadf0ac64cc7"};

}  // namespace

BigInt pow_signed(const BigInt& base, const BigInt& exponent, const Montgomery& mont) {
  if (exponent.is_negative()) {
    return mont.pow(BigInt::inverse_mod(base, mont.modulus()), -exponent);
  }
  return mont.pow(base, exponent);
}

BigInt sig_share_challenge(const BigInt& modulus, int unit, const BigInt& v,
                           const BigInt& v_unit, const BigInt& x_squared, const BigInt& share,
                           const BigInt& a1, const BigInt& a2) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(unit));
  w.bytes(modulus.to_bytes());
  w.bytes(v.to_bytes());
  w.bytes(v_unit.to_bytes());
  w.bytes(x_squared.to_bytes());
  w.bytes(share.to_bytes());
  w.bytes(a1.to_bytes());
  w.bytes(a2.to_bytes());
  return BigInt::from_bytes(hash_expand("sintra/tsig/challenge", w.data(), kChallengeBytes));
}

RsaParams RsaParams::precomputed(int prime_bits) {
  const PrimePair* pair = nullptr;
  switch (prime_bits) {
    case 128: pair = &kRsa128; break;
    case 256: pair = &kRsa256; break;
    case 512: pair = &kRsa512; break;
    default: break;
  }
  SINTRA_REQUIRE(pair != nullptr, "RsaParams: no precomputed pair of that size");
  return RsaParams{BigInt::from_string(pair->p), BigInt::from_string(pair->q)};
}

RsaParams RsaParams::generate(Rng& rng, int prime_bits) {
  BigInt p = BigInt::random_safe_prime(rng, static_cast<std::size_t>(prime_bits));
  BigInt q = BigInt::random_safe_prime(rng, static_cast<std::size_t>(prime_bits));
  while (q == p) q = BigInt::random_safe_prime(rng, static_cast<std::size_t>(prime_bits));
  return RsaParams{std::move(p), std::move(q)};
}

void SigShare::encode(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(unit));
  value.encode(w);
  a1.encode(w);
  a2.encode(w);
  response.encode(w);
}

SigShare SigShare::decode(Reader& r) {
  SigShare share;
  share.unit = static_cast<int>(r.u32());
  share.value = BigInt::decode(r);
  share.a1 = BigInt::decode(r);
  share.a2 = BigInt::decode(r);
  share.response = BigInt::decode(r);
  return share;
}

ThresholdSigPublicKey::ThresholdSigPublicKey(BigInt modulus, BigInt e, BigInt v,
                                             std::vector<BigInt> verification,
                                             std::shared_ptr<const LinearScheme> scheme,
                                             std::size_t share_bits)
    : modulus_(std::move(modulus)), e_(std::move(e)), v_(std::move(v)),
      verification_(std::move(verification)), scheme_(std::move(scheme)),
      mont_(std::make_shared<const Montgomery>(modulus_)),
      share_bits_(share_bits == 0 ? modulus_.bit_length() : share_bits) {
  // Responses are bounded by r_max + c_max * d_max; see sign().
  response_bytes_ = (share_bits_ + 8 * kChallengeBytes + kSlackBits) / 8 + 2;
}

BigInt ThresholdSigPublicKey::hash_to_base(BytesView message) const {
  const std::size_t width = (modulus_.bit_length() + 7) / 8 + 16;
  BigInt x = BigInt::from_bytes(hash_expand("sintra/tsig/base", message, width)).mod(modulus_);
  // gcd(x, Nm) != 1 would factor the modulus; probability is negligible but
  // keep the oracle a total function.
  if (x.is_zero() || !BigInt::gcd(x, modulus_).is_one()) x = BigInt(2);
  return x;
}

std::vector<SigShare> ThresholdSigSecretKey::sign(const ThresholdSigPublicKey& pk,
                                                  BytesView message, Rng& rng) const {
  const BigInt& modulus = pk.modulus();
  const BigInt x = pk.hash_to_base(message);
  const BigInt x_squared = BigInt::mul_mod(x, x, modulus);
  const std::size_t r_bits = pk.share_bits() + 8 * kChallengeBytes + kSlackBits;

  std::vector<SigShare> out;
  out.reserve(unit_shares_.size());
  const Montgomery& mont = pk.mont();
  for (const auto& [unit, d] : unit_shares_) {
    SigShare share;
    share.unit = unit;
    // Reshared shares are signed integers (crypto/reshare.hpp); x² is a
    // unit, so the negative branch inverts cleanly.
    share.value = pow_signed(x_squared, d, mont);

    // z = r + c*d must come out non-negative (verifiers reject negative
    // responses); for a negative d that fails with probability ~2^-64 —
    // redraw r rather than leak the sign through a rejected share.
    for (;;) {
      const BigInt r = BigInt::random_bits(rng, r_bits);
      share.a1 = mont.pow(pk.v(), r);
      share.a2 = mont.pow(x_squared, r);
      const BigInt c = sig_share_challenge(modulus, unit, pk.v(), pk.verification(unit),
                                           x_squared, share.value, share.a1, share.a2);
      share.response = r + c * d;
      if (!share.response.is_negative()) break;
    }
    out.push_back(std::move(share));
  }
  return out;
}

bool ThresholdSigPublicKey::verify_share(BytesView message, const SigShare& share) const {
  if (share.unit < 0 || share.unit >= scheme_->num_units()) return false;
  if (share.value.is_negative() || share.value.is_zero() || share.value >= modulus_) return false;
  if (share.a1.is_negative() || share.a1.is_zero() || share.a1 >= modulus_) return false;
  if (share.a2.is_negative() || share.a2.is_zero() || share.a2 >= modulus_) return false;
  if (share.response.is_negative() ||
      share.response.to_bytes().size() > response_bytes_) {
    return false;
  }

  const BigInt x = hash_to_base(message);
  const BigInt x_squared = BigInt::mul_mod(x, x, modulus_);
  const BigInt& v_unit = verification_.at(static_cast<std::size_t>(share.unit));
  const BigInt c = sig_share_challenge(modulus_, share.unit, v_, v_unit, x_squared, share.value,
                                       share.a1, share.a2);
  // Batch-invert v_unit and share.value (Montgomery's trick): one extended
  // Euclid pass instead of two, and its failure doubles as the
  // gcd(share.value, Nm) != 1 rejection (v_unit is a unit by construction,
  // so a shared factor can only come from the adversarial share value).
  BigInt inv_prod;
  try {
    inv_prod = BigInt::inverse_mod(BigInt::mul_mod(v_unit, share.value, modulus_), modulus_);
  } catch (const ProtocolError&) {
    return false;
  }
  const BigInt v_unit_inv = BigInt::mul_mod(inv_prod, share.value, modulus_);
  const BigInt value_inv = BigInt::mul_mod(inv_prod, v_unit, modulus_);
  // Check base^z * target^{-c} == a.  The negative exponent becomes a
  // positive one on the inverse, so both factors fold into one simultaneous
  // double exponentiation over the shared squaring chain of the (much
  // longer) response exponent.
  return mont_->pow2(v_, share.response, v_unit_inv, c) == share.a1 &&
         mont_->pow2(x_squared, share.response, value_inv, c) == share.a2;
}

std::optional<BigInt> ThresholdSigPublicKey::combine(BytesView message,
                                                     const std::vector<SigShare>& shares) const {
  PartySet parties = 0;
  std::map<int, BigInt> by_unit;
  for (const SigShare& share : shares) {
    by_unit.emplace(share.unit, share.value);
    parties |= party_bit(scheme_->unit_owner(share.unit));
  }
  if (!scheme_->qualified(parties)) return std::nullopt;

  // w = prod x_j^{2 c_j} = x^{4 Delta d} in QR_Nm.
  BigInt w(1);
  for (const auto& [unit, coeff] : scheme_->coefficients(parties)) {
    auto it = by_unit.find(unit);
    SINTRA_INVARIANT(it != by_unit.end(), "tsig: coefficient for missing share");
    w = BigInt::mul_mod(w, pow_signed(it->second, coeff * BigInt(2), *mont_), modulus_);
  }

  // a * (4 Delta) + b * e = 1; requires gcd(4 Delta, e) = 1, which holds for
  // the prime e = 65537 > any factor of Delta.
  const BigInt four_delta = scheme_->delta() * BigInt(4);
  BigInt a;
  BigInt b;
  const BigInt g = BigInt::extended_gcd(four_delta, e_, a, b);
  SINTRA_INVARIANT(g.is_one(), "tsig: e not coprime to 4*Delta");

  const BigInt x = hash_to_base(message);
  const BigInt y =
      BigInt::mul_mod(pow_signed(w, a, *mont_), pow_signed(x, b, *mont_), modulus_);
  if (!verify(message, y)) return std::nullopt;
  return y;
}

bool ThresholdSigPublicKey::verify(BytesView message, const BigInt& signature) const {
  if (signature.is_negative() || signature.is_zero() || signature >= modulus_) return false;
  return mont_->pow(signature, e_) == hash_to_base(message);
}

ThresholdSigDeal ThresholdSigDeal::deal(const RsaParams& params,
                                        std::shared_ptr<const LinearScheme> scheme, Rng& rng) {
  const BigInt modulus = params.p * params.q;
  const BigInt p_prime = (params.p - BigInt(1)).shifted_right(1);
  const BigInt q_prime = (params.q - BigInt(1)).shifted_right(1);
  const BigInt m = p_prime * q_prime;

  const BigInt e = kPublicExponent;
  const BigInt d = BigInt::inverse_mod(e, m);
  std::vector<BigInt> unit_values = scheme->deal(d, m, rng);

  // QR generator: v = r^2 for random r in Z_Nm*.
  BigInt r = BigInt::random_below(rng, modulus);
  while (r.is_zero() || !BigInt::gcd(r, modulus).is_one()) {
    r = BigInt::random_below(rng, modulus);
  }
  const BigInt v = BigInt::mul_mod(r, r, modulus);

  std::vector<BigInt> verification;
  verification.reserve(unit_values.size());
  for (const BigInt& d_unit : unit_values) {
    verification.push_back(BigInt::pow_mod(v, d_unit, modulus));
  }

  std::vector<ThresholdSigSecretKey> secret_keys;
  secret_keys.reserve(static_cast<std::size_t>(scheme->num_parties()));
  for (int party = 0; party < scheme->num_parties(); ++party) {
    std::map<int, BigInt> held;
    for (int unit : scheme->units_of(party)) {
      held.emplace(unit, unit_values[static_cast<std::size_t>(unit)]);
    }
    secret_keys.emplace_back(party, std::move(held));
  }

  return ThresholdSigDeal{
      ThresholdSigPublicKey(modulus, e, v, std::move(verification), std::move(scheme)),
      std::move(secret_keys)};
}

}  // namespace sintra::crypto
