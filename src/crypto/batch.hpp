// Batch verification of share-validity proofs (small-exponent test of
// Bellare–Garay–Rabin, EUROCRYPT '98).
//
// The paper is explicit that SINTRA's throughput is bounded by threshold
// cryptography, not the network: every coin share, signature share, and
// decryption share carries a NIZK proof whose verification costs two
// double-exponentiations.  A protocol instance, however, never needs one
// share — it needs a *threshold set*, and all shares of one set verify
// against the same pair of bases.  Taking a random linear combination of
// the k verification equations collapses the whole set into roughly two
// multi-exponentiations:
//
//   per proof i:   g1^{z_i} == a1_i * h1_i^{c_i}
//                  g2^{z_i} == a2_i * h2_i^{c_i}
//   batched:       g1^{sum z_i r_i} * g2^{sum z_i r'_i}
//                    == prod a1_i^{r_i} h1_i^{c_i r_i} a2_i^{r'_i} h2_i^{c_i r'_i}
//
// with fresh random weights r_i, r'_i per equation.  If any single
// equation is violated, the batch equation holds with probability at most
// 2^-ell for ell-bit weights (the violating factor would have to land
// exactly on one weight value); *independent* weights for the two
// equations of a DLEQ proof are essential — a shared weight would let an
// adversary cancel an error in one equation against an inverse error in
// the other.  The weights stay short on the a-commitment terms, which is
// where the speedup over one-at-a-time verification comes from.
//
// The same test applies in the unknown-order group Z_Nm* of the threshold
// RSA scheme (|QR_Nm| = p'q' has no small prime factors, so short nonzero
// weights are invertible mod the group order); there no inverses exist
// cheaply, so the equations are kept in two-sided positive-exponent form.
//
// On failure the batch is bisected: halves that batch-verify are clean,
// and single-proof leaves fall back to the strict individual verifier —
// identifying exactly the corrupted shares in O(bad * log k) batch calls.
// A Byzantine sender pays the extra work; honest executions never do.
//
// Combine-then-verify goes one step further for threshold RSA: combining
// is cheap relative to share verification and the *combined* signature is
// checked with a single e = 65537 exponentiation, so the optimistic path
// combines an unverified threshold set and only falls back to batch
// verification + bisection when that final check fails.
#pragma once

#include <optional>

#include "crypto/coin.hpp"
#include "crypto/nizk.hpp"
#include "crypto/tdh2.hpp"
#include "crypto/threshold_sig.hpp"

namespace sintra::crypto::batch {

/// One DLEQ proof over the batch-shared bases (g1, g2): statement
/// h1 = g1^x, h2 = g2^x, proof bound to `context`.
struct DleqItem {
  std::string context;
  Element h1;
  Element h2;
  DleqProof proof;
};

/// True iff every item's proof verifies (accepts a violating set with
/// probability <= 2^-127).  Empty batches verify trivially.
[[nodiscard]] bool verify_dleq(const Group& group, const Element& g1, const Element& g2,
                               const std::vector<DleqItem>& items, Rng& rng);

/// Exact set of invalid item indices (ascending), via bisection with
/// strict individual verification at the leaves.
[[nodiscard]] std::vector<std::size_t> find_invalid_dleq(const Group& group, const Element& g1,
                                                         const Element& g2,
                                                         const std::vector<DleqItem>& items,
                                                         Rng& rng);

/// One Schnorr proof over the batch-shared base g: statement h = g^x.
struct SchnorrItem {
  std::string context;
  Element h;
  SchnorrProof proof;
};

[[nodiscard]] bool verify_schnorr(const Group& group, const Element& g,
                                  const std::vector<SchnorrItem>& items, Rng& rng);

[[nodiscard]] std::vector<std::size_t> find_invalid_schnorr(const Group& group, const Element& g,
                                                            const std::vector<SchnorrItem>& items,
                                                            Rng& rng);

// -- coin shares (coin.hpp) --------------------------------------------------

[[nodiscard]] bool verify_coin_shares(const CoinPublicKey& pk, BytesView name,
                                      const std::vector<CoinShare>& shares, Rng& rng);

[[nodiscard]] std::vector<std::size_t> find_invalid_coin_shares(
    const CoinPublicKey& pk, BytesView name, const std::vector<CoinShare>& shares, Rng& rng);

/// Batch-verify then combine.  On success `value` is the coin output and
/// `bad` is empty; on failure `value` is nullopt and `bad` lists the
/// corrupted share indices (empty `bad` with empty `value` means the
/// honest shares do not form a qualified set).
struct CoinCombineResult {
  std::optional<Bytes> value;
  std::vector<std::size_t> bad;
};
[[nodiscard]] CoinCombineResult combine_coin_optimistic(const CoinPublicKey& pk, BytesView name,
                                                        const std::vector<CoinShare>& shares,
                                                        Rng& rng);

// -- TDH2 (tdh2.hpp) ---------------------------------------------------------

/// Decryption shares for one fixed ciphertext (bases g, ct.u are shared).
[[nodiscard]] bool verify_dec_shares(const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct,
                                     const std::vector<Tdh2DecShare>& shares, Rng& rng);

[[nodiscard]] std::vector<std::size_t> find_invalid_dec_shares(
    const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct, const std::vector<Tdh2DecShare>& shares,
    Rng& rng);

/// Well-formedness proofs of many ciphertexts (bases g, g_bar are shared).
[[nodiscard]] bool verify_ciphertexts(const Tdh2PublicKey& pk,
                                      const std::vector<Tdh2Ciphertext>& cts, Rng& rng);

[[nodiscard]] std::vector<std::size_t> find_invalid_ciphertexts(
    const Tdh2PublicKey& pk, const std::vector<Tdh2Ciphertext>& cts, Rng& rng);

// -- threshold RSA signature shares (threshold_sig.hpp) ----------------------

/// All shares over one message.
[[nodiscard]] bool verify_sig_shares(const ThresholdSigPublicKey& pk, BytesView message,
                                     const std::vector<SigShare>& shares, Rng& rng);

[[nodiscard]] std::vector<std::size_t> find_invalid_sig_shares(const ThresholdSigPublicKey& pk,
                                                               BytesView message,
                                                               const std::vector<SigShare>& shares,
                                                               Rng& rng);

/// Shares over several distinct messages verified as ONE batch (one
/// multi-exponentiation side per distinct message plus one shared
/// commitment-side multi-exponentiation).  The shape of an atomic
/// broadcast proposal: per-sender batches, each signed by its sender.
struct SigShareGroup {
  Bytes message;
  std::vector<SigShare> shares;
};
[[nodiscard]] bool verify_sig_share_groups(const ThresholdSigPublicKey& pk,
                                           const std::vector<SigShareGroup>& groups, Rng& rng);

/// Combine-then-verify fast path: combine the (unverified) set and check
/// the single resulting RSA signature.  On success `signature` is set and
/// `bad` is empty; on failure `bad` lists the corrupted share indices
/// (empty `bad` with nullopt `signature` means the set was unqualified).
struct SigCombineResult {
  std::optional<BigInt> signature;
  std::vector<std::size_t> bad;
};
[[nodiscard]] SigCombineResult combine_sig_optimistic(const ThresholdSigPublicKey& pk,
                                                      BytesView message,
                                                      const std::vector<SigShare>& shares,
                                                      Rng& rng);

}  // namespace sintra::crypto::batch
