#include "crypto/fe256.hpp"

// Only the cold paths live out of line: exponentiation (pow/inv/sqrt) and
// the byte codecs.  The per-operation primitives (add/sub/mul/sqr) are
// inline in fe256.hpp — see the header comment for why.

namespace sintra::crypto::fe256 {

namespace {

using u64 = std::uint64_t;

/// n squarings in place.
inline void sqr_n(Fe& a, int n) {
  for (int i = 0; i < n; ++i) a = sqr(a);
}

}  // namespace

Fe pow(const Fe& a, const std::uint64_t e[4]) {
  Fe result = one();
  bool any = false;
  for (int limb = 3; limb >= 0; --limb) {
    for (int bit = 63; bit >= 0; --bit) {
      if (any) result = sqr(result);
      if ((e[limb] >> bit) & 1) {
        result = mul(result, a);
        any = true;
      }
    }
  }
  return result;
}

Fe inv(const Fe& a) {
  // p - 2 in binary is 1-blocks of lengths 223, 22, 2, 1 separated by
  // single zeros; build x^(2^k - 1) for k in {2,3,6,9,11,22,44,88,176,
  // 220,223} and stitch.  Verified against pow(a, p-2) in fe256_test.
  Fe x2 = mul(sqr(a), a);
  Fe x3 = mul(sqr(x2), a);
  Fe x6 = x3;
  sqr_n(x6, 3);
  x6 = mul(x6, x3);
  Fe x9 = x6;
  sqr_n(x9, 3);
  x9 = mul(x9, x3);
  Fe x11 = x9;
  sqr_n(x11, 2);
  x11 = mul(x11, x2);
  Fe x22 = x11;
  sqr_n(x22, 11);
  x22 = mul(x22, x11);
  Fe x44 = x22;
  sqr_n(x44, 22);
  x44 = mul(x44, x22);
  Fe x88 = x44;
  sqr_n(x88, 44);
  x88 = mul(x88, x44);
  Fe x176 = x88;
  sqr_n(x176, 88);
  x176 = mul(x176, x88);
  Fe x220 = x176;
  sqr_n(x220, 44);
  x220 = mul(x220, x44);
  Fe x223 = x220;
  sqr_n(x223, 3);
  x223 = mul(x223, x3);

  Fe t = x223;
  sqr_n(t, 23);
  t = mul(t, x22);
  sqr_n(t, 5);
  t = mul(t, a);
  sqr_n(t, 3);
  t = mul(t, x2);
  sqr_n(t, 2);
  return mul(t, a);
}

bool sqrt(const Fe& a, Fe& out) {
  // (p+1)/4 = 2^254 - 2^30 - 244, little-endian limbs.
  static constexpr u64 kExp[4] = {0xFFFFFFFFBFFFFF0CULL, 0xFFFFFFFFFFFFFFFFULL,
                                  0xFFFFFFFFFFFFFFFFULL, 0x3FFFFFFFFFFFFFFFULL};
  const Fe candidate = pow(a, kExp);
  if (!eq(sqr(candidate), a)) return false;
  out = candidate;
  return true;
}

bool from_bytes(const std::uint8_t in[32], Fe& out) {
  Fe r;
  for (int limb = 0; limb < 4; ++limb) {
    u64 v = 0;
    for (int byte = 0; byte < 8; ++byte) {
      v = (v << 8) | in[(3 - limb) * 8 + byte];
    }
    r.v[limb] = v;
  }
  if (detail::geq_p(r.v)) return false;
  out = r;
  return true;
}

void to_bytes(const Fe& a, std::uint8_t out[32]) {
  for (int limb = 0; limb < 4; ++limb) {
    const u64 v = a.v[limb];
    for (int byte = 0; byte < 8; ++byte) {
      out[(3 - limb) * 8 + byte] = static_cast<std::uint8_t>(v >> (8 * (7 - byte)));
    }
  }
}

}  // namespace sintra::crypto::fe256
