// The substrate interface a Party (and through it the whole protocol
// stack) runs against.
//
// Two implementations exist: the deterministic single-threaded Simulator
// (net/simulator.hpp), where "time" is the delivery-step counter, and the
// NetworkedNode adapter (net/transport/networked_node.hpp), where messages
// travel over a real transport and time is the monotonic clock in
// milliseconds.  Protocol code never depends on which one it is on: it
// sends messages and schedules timers in abstract network time units.
//
// Timers exist on this interface (rather than in the protocols) because
// the two substrates disagree fundamentally about what time is — the
// simulator fires timers only when the network stalls, which is what keeps
// timeout-driven code (failure detectors, client retries) deterministic
// under test while behaving like wall-clock timeouts in deployment.
#pragma once

#include <cstdint>
#include <functional>

#include "common/logging.hpp"
#include "net/message.hpp"

namespace sintra::net {

class Network {
 public:
  using TimerId = std::uint64_t;
  using TimerFn = std::function<void()>;

  virtual ~Network() = default;

  /// Submit a message for asynchronous delivery.  `from` must be the
  /// submitting party (authenticated-links assumption; enforced
  /// structurally by the simulator, cryptographically by the transport).
  virtual void submit(Message message) = 0;

  /// Number of network endpoints (servers first, then client endpoints).
  [[nodiscard]] virtual int n() const = 0;

  /// Current network time (steps in simulation, milliseconds on a real
  /// transport).
  [[nodiscard]] virtual std::uint64_t now() const = 0;

  /// Run `fn` in `owner`'s execution context after `delay` time units
  /// (owner -1 = the harness/environment).  The returned id stays valid
  /// until the timer fires or is cancelled.
  virtual TimerId schedule_timer(int owner, std::uint64_t delay, TimerFn fn) = 0;
  virtual void cancel_timer(TimerId id) = 0;

  /// Structured trace sink (nullptr when tracing is off).
  [[nodiscard]] virtual TraceLog* log() { return nullptr; }
};

}  // namespace sintra::net
