#include "net/scheduler.hpp"

namespace sintra::net {

namespace {
bool touches(const Message& message, int party) {
  return message.from == party || message.to == party;
}

bool touches_set(const Message& message, std::uint64_t mask) {
  return ((mask >> message.from) & 1) != 0 || ((mask >> message.to) & 1) != 0;
}
}  // namespace

std::optional<std::size_t> RandomScheduler::pick(const std::vector<Message>& pending,
                                                 std::uint64_t) {
  return static_cast<std::size_t>(rng_.below(pending.size()));
}

std::optional<std::size_t> FifoScheduler::pick(const std::vector<Message>& pending,
                                               std::uint64_t) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < pending.size(); ++i) {
    if (pending[i].id < pending[best].id) best = i;
  }
  return best;
}

std::optional<std::size_t> StarvePartyScheduler::pick(const std::vector<Message>& pending,
                                                      std::uint64_t now) {
  const int victim = victim_at_(now);
  std::vector<std::size_t> preferred;
  preferred.reserve(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!touches(pending[i], victim)) preferred.push_back(i);
  }
  if (preferred.empty()) return static_cast<std::size_t>(rng_.below(pending.size()));
  return preferred[static_cast<std::size_t>(rng_.below(preferred.size()))];
}

std::optional<std::size_t> StarveSetScheduler::pick(const std::vector<Message>& pending,
                                                    std::uint64_t) {
  std::vector<std::size_t> preferred;
  preferred.reserve(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!touches_set(pending[i], victims_)) preferred.push_back(i);
  }
  if (preferred.empty()) return static_cast<std::size_t>(rng_.below(pending.size()));
  return preferred[static_cast<std::size_t>(rng_.below(preferred.size()))];
}

std::optional<std::size_t> BlockPartyScheduler::pick(const std::vector<Message>& pending,
                                                     std::uint64_t now) {
  const int victim = victim_at_(now);
  std::vector<std::size_t> allowed;
  allowed.reserve(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!touches(pending[i], victim)) allowed.push_back(i);
  }
  if (allowed.empty()) return std::nullopt;  // withhold everything remaining
  return allowed[static_cast<std::size_t>(rng_.below(allowed.size()))];
}

std::optional<std::size_t> BlockSetScheduler::pick(const std::vector<Message>& pending,
                                                   std::uint64_t) {
  std::vector<std::size_t> allowed;
  allowed.reserve(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!touches_set(pending[i], victims_)) allowed.push_back(i);
  }
  if (allowed.empty()) return std::nullopt;
  return allowed[static_cast<std::size_t>(rng_.below(allowed.size()))];
}

std::optional<std::size_t> LifoScheduler::pick(const std::vector<Message>& pending,
                                               std::uint64_t) {
  // 1-in-16 random pick keeps the schedule fair-in-the-limit.
  if (rng_.below(16) == 0) return static_cast<std::size_t>(rng_.below(pending.size()));
  std::size_t best = 0;
  for (std::size_t i = 1; i < pending.size(); ++i) {
    if (pending[i].id > pending[best].id) best = i;
  }
  return best;
}

}  // namespace sintra::net
