#include "net/simulator.hpp"

#include "common/assert.hpp"
#include "net/fault.hpp"

namespace sintra::net {

Simulator::Simulator(int n, Scheduler& scheduler, TraceLog* log)
    : n_(n), scheduler_(scheduler), log_(log) {
  SINTRA_REQUIRE(n >= 1 && n <= 64, "Simulator: party count out of range");
  processes_.resize(static_cast<std::size_t>(n));
  if (log_ != nullptr) {
    log_->set_time_source([this] { return steps_; });
  }
}

void Simulator::attach(int id, std::unique_ptr<Process> process) {
  SINTRA_REQUIRE(id >= 0 && id < n_, "Simulator: bad party id");
  processes_.at(static_cast<std::size_t>(id)) = std::move(process);
}

void Simulator::start() {
  for (int id = 0; id < n_; ++id) {
    SINTRA_INVARIANT(processes_[static_cast<std::size_t>(id)] != nullptr,
                     "Simulator: party not attached");
  }
  for (int id = 0; id < n_; ++id) {
    active_process_ = id;
    processes_[static_cast<std::size_t>(id)]->on_start();
    active_process_ = -1;
  }
}

void Simulator::submit(Message message) {
  SINTRA_REQUIRE(message.from >= 0 && message.from < n_ && message.to >= 0 && message.to < n_,
                 "Simulator: endpoint out of range");
  // Authenticated channels (a model assumption of the paper, §2): while a
  // process runs, it can only send under its own identity — even Byzantine
  // processes cannot spoof another sender.  Submissions from the harness
  // (outside any process activation) are unrestricted.
  SINTRA_REQUIRE(active_process_ < 0 || message.from == active_process_,
                 "Simulator: sender spoofing rejected");
  message.id = next_id_++;
  message.sent_at = steps_;
  // Heterogeneous lookup: tag_prefix is a view into the tag, so the hot
  // path allocates a key string only the first time a prefix is seen.
  const std::string_view prefix = tag_prefix(message.tag);
  auto it = traffic_.find(prefix);
  if (it == traffic_.end()) it = traffic_.emplace(std::string(prefix), TrafficStats{}).first;
  it->second.messages += 1;
  it->second.bytes += message.wire_size();
  pending_.push_back(std::move(message));
}

Network::TimerId Simulator::schedule_timer(int owner, std::uint64_t delay, TimerFn fn) {
  SINTRA_REQUIRE(owner >= -1 && owner < n_, "Simulator: timer owner out of range");
  // The wrapper re-enters the owner's execution context so that messages
  // sent from a timer callback pass the sender-spoofing check.
  return wheel_.schedule_after(delay, [this, owner, fn = std::move(fn)] {
    const int previous = active_process_;
    active_process_ = owner;
    fn();
    active_process_ = previous;
  });
}

void Simulator::cancel_timer(TimerId id) { wheel_.cancel(id); }

bool Simulator::fire_next_timer() {
  const std::optional<std::uint64_t> next = wheel_.next_deadline();
  if (!next.has_value()) return false;
  steps_ = std::max(steps_, *next);
  wheel_.advance_to(steps_);
  return true;
}

bool Simulator::step() {
  if (injector_ != nullptr) {
    // Replayed traffic re-enters the in-flight set and competes for
    // scheduling like any other message (same id as the original).
    if (std::optional<Message> replayed = injector_->maybe_replay(steps_)) {
      pending_.push_back(std::move(*replayed));
    }
  }
  // No deliverable traffic (empty network or a withholding scheduler)
  // means time passes: pending timeouts fire.
  if (pending_.empty()) return fire_next_timer();
  const std::optional<std::size_t> choice = scheduler_.pick(pending_, steps_);
  if (!choice.has_value()) return fire_next_timer();
  const std::size_t index = *choice;
  SINTRA_INVARIANT(index < pending_.size(), "Simulator: scheduler returned bad index");
  Message message = std::move(pending_[index]);
  pending_[index] = std::move(pending_.back());
  pending_.pop_back();
  ++steps_;
  // One scheduling decision = one tick of network time (dropped picks
  // included — a retrying link burns time too).
  wheel_.advance_to(steps_);
  if (injector_ != nullptr && injector_->should_drop(message)) {
    // Retrying link: the pick is consumed but the message goes back in
    // flight, to be retransmitted at a later (scheduler-chosen) step.
    pending_.push_back(std::move(message));
    return true;
  }
  if (injector_ != nullptr) {
    if (injector_->should_duplicate(message)) pending_.push_back(message);
    injector_->record_delivered(message);
  }
  active_process_ = message.to;
  processes_[static_cast<std::size_t>(message.to)]->on_message(message);
  active_process_ = -1;
  return true;
}

std::uint64_t Simulator::run(std::uint64_t max_steps) {
  std::uint64_t taken = 0;
  while (taken < max_steps && step()) ++taken;
  return taken;
}

bool Simulator::run_until(const std::function<bool()>& done, std::uint64_t max_steps) {
  std::uint64_t taken = 0;
  while (!done()) {
    if (taken >= max_steps || !step()) return false;
    ++taken;
  }
  return true;
}

}  // namespace sintra::net
