#include "net/simulator.hpp"

#include "common/assert.hpp"

namespace sintra::net {

Simulator::Simulator(int n, Scheduler& scheduler, TraceLog* log)
    : n_(n), scheduler_(scheduler), log_(log) {
  SINTRA_REQUIRE(n >= 1 && n <= 64, "Simulator: party count out of range");
  processes_.resize(static_cast<std::size_t>(n));
  if (log_ != nullptr) {
    log_->set_time_source([this] { return steps_; });
  }
}

void Simulator::attach(int id, std::unique_ptr<Process> process) {
  SINTRA_REQUIRE(id >= 0 && id < n_, "Simulator: bad party id");
  processes_.at(static_cast<std::size_t>(id)) = std::move(process);
}

void Simulator::start() {
  for (int id = 0; id < n_; ++id) {
    SINTRA_INVARIANT(processes_[static_cast<std::size_t>(id)] != nullptr,
                     "Simulator: party not attached");
  }
  for (int id = 0; id < n_; ++id) {
    active_process_ = id;
    processes_[static_cast<std::size_t>(id)]->on_start();
    active_process_ = -1;
  }
}

void Simulator::submit(Message message) {
  SINTRA_REQUIRE(message.from >= 0 && message.from < n_ && message.to >= 0 && message.to < n_,
                 "Simulator: endpoint out of range");
  // Authenticated channels (a model assumption of the paper, §2): while a
  // process runs, it can only send under its own identity — even Byzantine
  // processes cannot spoof another sender.  Submissions from the harness
  // (outside any process activation) are unrestricted.
  SINTRA_REQUIRE(active_process_ < 0 || message.from == active_process_,
                 "Simulator: sender spoofing rejected");
  message.id = next_id_++;
  message.sent_at = steps_;
  TrafficStats& stats = traffic_[tag_prefix(message.tag)];
  stats.messages += 1;
  stats.bytes += message.wire_size();
  pending_.push_back(std::move(message));
}

bool Simulator::step() {
  if (pending_.empty()) return false;
  const std::optional<std::size_t> choice = scheduler_.pick(pending_, steps_);
  if (!choice.has_value()) return false;  // scheduler withholds all remaining traffic
  const std::size_t index = *choice;
  SINTRA_INVARIANT(index < pending_.size(), "Simulator: scheduler returned bad index");
  Message message = std::move(pending_[index]);
  pending_[index] = std::move(pending_.back());
  pending_.pop_back();
  ++steps_;
  active_process_ = message.to;
  processes_[static_cast<std::size_t>(message.to)]->on_message(message);
  active_process_ = -1;
  return true;
}

std::uint64_t Simulator::run(std::uint64_t max_steps) {
  std::uint64_t taken = 0;
  while (taken < max_steps && step()) ++taken;
  return taken;
}

bool Simulator::run_until(const std::function<bool()>& done, std::uint64_t max_steps) {
  std::uint64_t taken = 0;
  while (!done()) {
    if (taken >= max_steps || !step()) return false;
    ++taken;
  }
  return true;
}

}  // namespace sintra::net
