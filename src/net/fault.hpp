// Unreliable-delivery fault injection — at-least-once semantics and
// crash-recovering processes on top of the asynchronous simulator.
//
// The base simulator delivers every submitted message exactly once to a
// process that never restarts.  Real deployments face *at-least-once*
// delivery: retrying links duplicate traffic, an adversary (or a buggy
// middlebox) replays captured messages arbitrarily later, links drop a
// packet and retransmit it after a delay, and replicas crash and rejoin
// from persisted state.  The paper's safety claims must survive all of
// this; the classes here inject exactly those faults so the test tree can
// check that they do.
//
//  * FaultPolicy / FaultInjector — a seeded, policy-driven wrapper hooked
//    into Simulator::step(): duplicates in-flight messages (bounded copy
//    count), replays previously delivered messages at arbitrary later
//    steps (bounded history and per-message replay count), and
//    drops-then-retransmits picked messages (a retrying link; bounded
//    drops per message, so the link stays fair-in-the-limit).
//  * RestartingProcess — crash-recovery harness for any Process: tears
//    the inner process down mid-run (destroying all volatile state),
//    swallows traffic while down into a reliable-link stash, and
//    reattaches a fresh instance from the Process::snapshot() taken at
//    crash time, then feeds it the stash.  With Party's write-ahead log
//    (Party::enable_wal) the rebuilt protocol stack deterministically
//    replays to its pre-crash state and rejoins the run.
//
// Every fault is bounded, so a run under fault injection still quiesces:
// the extra deliveries per message are at most max_copies + max_replays,
// and a message is dropped at most max_drops times before it must be
// delivered.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "net/simulator.hpp"

namespace sintra::net {

/// Knobs for FaultInjector.  Chances are "x in 1024" per opportunity;
/// 0 disables that fault.  All bounds are per message id.
struct FaultPolicy {
  std::uint32_t duplicate_chance = 0;  ///< on delivery: re-enqueue a copy
  int max_copies = 2;                  ///< extra copies per message
  std::uint32_t replay_chance = 0;     ///< per step: re-inject a past delivery
  std::size_t history_window = 128;    ///< bounded memory of past deliveries
  int max_replays = 3;                 ///< replays per message
  std::uint32_t drop_chance = 0;       ///< on pick: drop now, retransmit later
  int max_drops = 3;                   ///< drops before the link must deliver

  static FaultPolicy none() { return {}; }
  /// Retrying link that over-delivers: every message may arrive several times.
  static FaultPolicy duplicates() {
    FaultPolicy p;
    p.duplicate_chance = 256;  // ~1 in 4 deliveries gets an extra copy
    p.max_copies = 2;
    return p;
  }
  /// Network adversary replaying captured traffic much later.
  static FaultPolicy replays() {
    FaultPolicy p;
    p.replay_chance = 256;
    p.history_window = 128;
    p.max_replays = 2;
    return p;
  }
  /// Lossy link with retransmission: delivery delayed, never lost.
  static FaultPolicy retrying_link() {
    FaultPolicy p;
    p.drop_chance = 256;
    p.max_drops = 3;
    return p;
  }
  /// Everything at once.
  static FaultPolicy chaos() {
    FaultPolicy p;
    p.duplicate_chance = 128;
    p.max_copies = 2;
    p.replay_chance = 128;
    p.history_window = 64;
    p.max_replays = 2;
    p.drop_chance = 128;
    p.max_drops = 2;
    return p;
  }
};

/// Seeded partition and gray-failure schedule (issue 8), consumed by
/// LoopbackHub (set_partition_profile) and the transport soak harness.
///
/// Three orthogonal fault families, all deterministic under one seed:
///  * split/heal schedule — a sequence of phases, each assigning every
///    node to a group; pairs in different groups are fully severed for
///    the phase's duration, then the hub heals them (cursor-exchange
///    reconnect, retransmission drains the backlog).  Past the end of the
///    schedule the network is healed, so runs still quiesce.
///  * asymmetric one-way loss — listed directed (from, to) links drop
///    frames with `oneway_loss_chance` while the reverse direction works;
///    the classic half-open failure heartbeat protocols flap on.
///  * gray peers — slow-but-alive nodes whose outbound frames are
///    deprioritized with `gray_delay_chance` whenever anything else is
///    ready: traffic arrives, eventually, much later than everyone
///    else's.
struct PartitionProfile {
  struct Phase {
    std::uint64_t steps = 0;    ///< phase duration in hub steps
    std::vector<int> group_of;  ///< node -> group id; empty = fully healed
  };
  std::vector<Phase> phases;

  std::uint32_t oneway_loss_chance = 0;            ///< x in 1024, per frame
  std::vector<std::pair<int, int>> oneway_pairs;   ///< directed lossy links

  std::uint32_t gray_delay_chance = 0;  ///< x in 1024, per scheduling pick
  std::vector<int> gray_peers;

  /// Alternating split/heal schedule: `splits` random two-group splits of
  /// `period` steps each, a healed period between them, ending healed.
  static PartitionProfile split_heal(int n, std::uint64_t seed, std::uint64_t period,
                                     int splits);

  [[nodiscard]] bool active() const {
    return !phases.empty() || oneway_loss_chance > 0 || gray_delay_chance > 0;
  }
  /// Total scheduled steps; past this everything is healed.
  [[nodiscard]] std::uint64_t schedule_steps() const;
  /// Are a and b in different groups at `step`?
  [[nodiscard]] bool severed(int a, int b, std::uint64_t step) const;
  [[nodiscard]] bool one_way(int from, int to) const;
  [[nodiscard]] bool gray(int node) const;
};

/// Seeded fault source consulted by Simulator::step().  Attach with
/// Simulator::set_fault_injector(); must outlive the simulator's run.
class FaultInjector {
 public:
  struct Stats {
    std::uint64_t duplicated = 0;
    std::uint64_t replayed = 0;
    std::uint64_t dropped = 0;
  };

  FaultInjector(std::uint64_t seed, FaultPolicy policy) : rng_(seed), policy_(policy) {}

  /// A previously delivered message to re-inject at this step, if any.
  std::optional<Message> maybe_replay(std::uint64_t now);
  /// True if the picked message should be dropped now and retransmitted
  /// later (the simulator re-enqueues it).
  bool should_drop(const Message& message);
  /// True if a copy of the message should stay in flight after delivery.
  bool should_duplicate(const Message& message);
  /// Record a delivery into the bounded replay history.
  void record_delivered(const Message& message);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  Rng rng_;
  FaultPolicy policy_;
  std::deque<Message> history_;           ///< bounded window of past deliveries
  std::map<std::uint64_t, int> copies_;   ///< id -> duplicates injected
  std::map<std::uint64_t, int> replays_;  ///< id -> replays injected
  std::map<std::uint64_t, int> drops_;    ///< id -> drops so far
  Stats stats_;
};

/// Crash-recovery harness around any Process.
///
/// The inner process is built by `factory` (which must also perform the
/// application-level start calls — a rebuilt party has to restart its own
/// protocols).  After `crash_after` deliveries the inner process is
/// destroyed together with all its volatile state; only the bytes from
/// Process::snapshot() survive, modeling state persisted before the crash.
/// While down, incoming messages are stashed (the paper's model gives
/// reliable authenticated links: traffic to a crashed replica is held and
/// redelivered, not lost).  After `down_for` stashed messages — or an
/// explicit force_restart() from the harness — the factory rebuilds the
/// process, restore() replays the persisted state, and the stash is fed in
/// arrival order.  At most `max_restarts` crash/restart cycles happen per
/// run so fault-injected runs still terminate.
class RestartingProcess final : public Process {
 public:
  using Factory = std::function<std::unique_ptr<Process>()>;

  RestartingProcess(Factory factory, std::uint64_t crash_after, std::uint64_t down_for,
                    int max_restarts = 1)
      : factory_(std::move(factory)), crash_after_(crash_after), down_for_(down_for),
        max_restarts_(max_restarts) {}

  /// Drop traffic received while down instead of stashing it, modeling a
  /// crash that also loses the link buffers.  The rejoined process misses
  /// those messages entirely — exactly the stall the liveness watchdogs
  /// (StallWatchdog, PbftLike's failure detector) exist to recover from,
  /// so the watchdog tests arm this to produce genuine stalls.
  void set_lossy_downtime(bool lossy) { lossy_ = lossy; }

  void on_start() override {
    inner_ = factory_();
    inner_->on_start();
  }

  void on_message(const Message& message) override {
    if (down_) {
      if (lossy_) {
        if (++lost_ >= down_for_) restart();
        return;
      }
      stash_.push_back(message);
      if (stash_.size() >= down_for_) restart();
      return;
    }
    inner_->on_message(message);
    if (restarts_ < max_restarts_ && ++delivered_ >= crash_after_) crash();
  }

  /// Restart now (harness context) if the process is down — used when the
  /// network quiesces before `down_for` messages have arrived.
  void force_restart() {
    if (down_) restart();
  }

  [[nodiscard]] bool down() const { return down_; }
  [[nodiscard]] int restarts() const { return restarts_; }
  [[nodiscard]] Process* inner() { return inner_.get(); }

 private:
  void crash() {
    snapshot_ = inner_->snapshot();
    inner_.reset();  // all volatile state gone
    down_ = true;
    delivered_ = 0;
  }

  void restart() {
    down_ = false;
    lost_ = 0;
    ++restarts_;
    inner_ = factory_();            // re-registers handlers, restarts protocols
    inner_->restore(snapshot_);     // deterministic replay of persisted state
    snapshot_.clear();
    std::vector<Message> stash = std::move(stash_);
    stash_.clear();
    for (const Message& message : stash) inner_->on_message(message);
  }

  Factory factory_;
  std::uint64_t crash_after_;
  std::uint64_t down_for_;
  int max_restarts_;
  std::unique_ptr<Process> inner_;
  Bytes snapshot_;
  std::vector<Message> stash_;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;  ///< messages dropped while down (lossy mode)
  bool down_ = false;
  bool lossy_ = false;
  int restarts_ = 0;
};

}  // namespace sintra::net
