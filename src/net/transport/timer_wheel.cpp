#include "net/transport/timer_wheel.hpp"

#include <algorithm>

namespace sintra::net::transport {

TimerWheel::TimerId TimerWheel::schedule_at(std::uint64_t deadline, Callback fn) {
  deadline = std::max(deadline, now_ + 1);
  const TimerId id = next_id_++;
  buckets_[deadline % kSlots].push_back(Entry{id, deadline, std::move(fn)});
  ++pending_;
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  for (auto& bucket : buckets_) {
    for (auto it = bucket.begin(); it != bucket.end(); ++it) {
      if (it->id == id) {
        bucket.erase(it);
        --pending_;
        return true;
      }
    }
  }
  return false;
}

void TimerWheel::advance_to(std::uint64_t t) {
  if (t <= now_ || pending_ == 0) {
    now_ = std::max(now_, t);
    return;
  }
  // Collect everything due.  A jump of >= kSlots ticks passes every bucket
  // at least once, so scan each bucket exactly once instead of tick by
  // tick; otherwise walk only the slots the clock actually crosses.
  // Callbacks may schedule new timers; anything they put at or before `t`
  // must fire within this same advance (a periodic timer rescheduling
  // itself), so harvest-and-execute repeats until a pass finds nothing.
  // Termination: schedule_at clamps deadlines past the current now_, so
  // every round's due set starts strictly later than the previous one.
  while (pending_ > 0) {
    std::vector<Entry> due;
    auto harvest = [&](std::vector<Entry>& bucket) {
      for (auto it = bucket.begin(); it != bucket.end();) {
        if (it->deadline <= t) {
          due.push_back(std::move(*it));
          it = bucket.erase(it);
          --pending_;
        } else {
          ++it;
        }
      }
    };
    if (t - now_ >= kSlots) {
      for (auto& bucket : buckets_) harvest(bucket);
    } else {
      for (std::uint64_t tick = now_ + 1; tick <= t; ++tick) harvest(buckets_[tick % kSlots]);
    }
    if (due.empty()) break;
    std::sort(due.begin(), due.end(), [](const Entry& a, const Entry& b) {
      return a.deadline != b.deadline ? a.deadline < b.deadline : a.id < b.id;
    });
    for (Entry& entry : due) {
      now_ = std::max(now_, entry.deadline);
      entry.fn();
    }
  }
  now_ = std::max(now_, t);
}

std::optional<std::uint64_t> TimerWheel::next_deadline() const {
  std::optional<std::uint64_t> best;
  for (const auto& bucket : buckets_) {
    for (const Entry& entry : bucket) {
      if (!best.has_value() || entry.deadline < *best) best = entry.deadline;
    }
  }
  return best;
}

}  // namespace sintra::net::transport
