#include "net/transport/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>

#include "common/assert.hpp"

namespace sintra::net::transport {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr std::size_t kMaxPreHelloBytes = 64 * 1024;
constexpr std::size_t kMaxPendingAccepts = 128;
constexpr std::size_t kMaxConnOutbuf = 64u << 20;
constexpr std::size_t kMaxIov = 64;  ///< scatter-gather entries per sendmsg
constexpr int kMaxBackoffShift = 16;

int make_socket() {
  return ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in make_addr(const TcpTransport::Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  SINTRA_REQUIRE(::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) == 1,
                 "tcp: bad endpoint host " + endpoint.host);
  return addr;
}

}  // namespace

/// One TCP connection (at most one per peer; newest wins on the accept
/// side).  Owned by the reactor thread.
struct TcpTransport::Conn {
  int fd = -1;
  bool connecting = false;   ///< dialer: nonblocking connect() in flight
  bool established = false;  ///< HELLO exchange complete
  bool want_write = false;   ///< EPOLLOUT armed
  FrameDecoder decoder;
  Bytes pending_buf;  ///< accept side: raw bytes until the HELLO verifies
  /// Outbound queue of encoded frames, drained by scatter-gather
  /// sendmsg() — frames stay discrete so try_write never re-copies them
  /// into a flat buffer.
  std::deque<Bytes> outq;
  std::size_t outpos = 0;    ///< bytes of outq.front() already written
  std::size_t outbytes = 0;  ///< total bytes across outq
  std::uint64_t last_recv_ms = 0;
  std::uint64_t my_nonce = 0;
  Bytes session_key;
};

struct TcpTransport::Peer {
  Peer(const LinkConfig& config, const AccrualHealth::Config& health_config)
      : link(config), health(health_config) {}
  ReliableLink link;
  AccrualHealth health;  ///< arrival-cadence estimate; reset per connection
  std::shared_ptr<Conn> conn;
  int backoff_attempt = 0;
  bool flush_posted = false;  ///< a deferred flush_link task is queued
  EventLoop::TimerId redial_timer = 0;
  EventLoop::TimerId ack_timer = 0;
  std::uint64_t link_retransmitted_seen = 0;  ///< for the stats delta
};

TcpTransport::TcpTransport(Config config, ReceiveFn receive)
    : config_(std::move(config)), receive_(std::move(receive)),
      rng_(config_.seed ^ (0x7c0ffee5ULL * static_cast<std::uint64_t>(config_.node_id + 1))),
      epoch_(config_.epoch) {
  const int n = static_cast<int>(config_.endpoints.size());
  SINTRA_REQUIRE(n >= 1 && config_.node_id >= 0 && config_.node_id < n,
                 "tcp: node_id out of range");
  SINTRA_REQUIRE(config_.link_keys.size() == config_.endpoints.size(),
                 "tcp: one link key per endpoint required");
  peers_.resize(static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) {
    if (id != config_.node_id) {
      peers_[static_cast<std::size_t>(id)] =
          std::make_unique<Peer>(config_.link, config_.health);
    }
  }
}

TcpTransport::TcpTransport(Config config, LegacyReceiveFn receive)
    : TcpTransport(std::move(config),
                   receive ? ReceiveFn([receive = std::move(receive)](
                                           int from, std::uint32_t /*group*/, BytesView payload) {
                       receive(from, payload);
                     })
                           : ReceiveFn()) {}

TcpTransport::~TcpTransport() { stop(); }

const Bytes& TcpTransport::link_key(int peer) const {
  return config_.link_keys[static_cast<std::size_t>(peer)];
}

void TcpTransport::setup_listener() {
  listen_fd_ = make_socket();
  SINTRA_INVARIANT(listen_fd_ >= 0, "tcp: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(config_.endpoints[static_cast<std::size_t>(config_.node_id)]);
  SINTRA_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                 "tcp: bind failed (port in use?)");
  SINTRA_INVARIANT(::listen(listen_fd_, 64) == 0, "tcp: listen failed");
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_port_ = ntohs(addr.sin_port);
}

void TcpTransport::start() {
  if (started_) return;
  setup_listener();
  started_ = true;
  thread_ = std::thread([this] { loop_.run(); });
  loop_.post([this] {
    loop_.add_fd(listen_fd_, EPOLLIN, [this](std::uint32_t) { on_accept_ready(); });
    for (int peer = 0; peer < static_cast<int>(peers_.size()); ++peer) {
      if (peers_[static_cast<std::size_t>(peer)] != nullptr && i_dial(peer)) dial(peer);
    }
    loop_.schedule_after(config_.heartbeat_interval_ms, [this] { heartbeat_sweep(); });
  });
}

void TcpTransport::stop() {
  if (!started_) return;
  loop_.post([this] {
    for (int peer = 0; peer < static_cast<int>(peers_.size()); ++peer) {
      Peer* p = peers_[static_cast<std::size_t>(peer)].get();
      if (p == nullptr) continue;
      if (p->redial_timer != 0) loop_.cancel_timer(p->redial_timer);
      if (p->ack_timer != 0) loop_.cancel_timer(p->ack_timer);
      if (p->conn != nullptr) {
        close_conn(*p->conn);
        p->conn.reset();
      }
    }
    for (auto& [fd, conn] : pending_accepts_) {
      loop_.remove_fd(fd);
      ::close(fd);
      conn->fd = -1;
    }
    pending_accepts_.clear();
    if (listen_fd_ >= 0) {
      loop_.remove_fd(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    loop_.stop();
  });
  thread_.join();
  started_ = false;
}

void TcpTransport::send(int peer, Bytes payload, std::uint32_t group) {
  SINTRA_REQUIRE(peer >= 0 && peer < static_cast<int>(peers_.size()) && peer != config_.node_id,
                 "tcp: send to bad peer");
  loop_.post([this, peer, group, payload = std::move(payload)]() mutable {
    Peer& p = *peers_[static_cast<std::size_t>(peer)];
    p.link.enqueue(std::move(payload), group);
    // Defer the flush: every send() posted in the same reactor batch
    // enqueues first, then one flush task coalesces them into one BATCH
    // frame (the loop drains posted tasks in whole batches, and a task
    // posted mid-drain runs after the current batch).
    schedule_flush(peer);
  });
}

void TcpTransport::send_many(int peer, std::vector<GroupPayload> payloads) {
  SINTRA_REQUIRE(peer >= 0 && peer < static_cast<int>(peers_.size()) && peer != config_.node_id,
                 "tcp: send to bad peer");
  if (payloads.empty()) return;
  loop_.post([this, peer, payloads = std::move(payloads)]() mutable {
    Peer& p = *peers_[static_cast<std::size_t>(peer)];
    for (GroupPayload& payload : payloads) {
      p.link.enqueue(std::move(payload.payload), payload.group);
    }
    if (p.conn != nullptr && p.conn->established) flush_link(peer);
  });
}

void TcpTransport::send_many(int peer, std::vector<Bytes> payloads) {
  std::vector<GroupPayload> stamped;
  stamped.reserve(payloads.size());
  for (Bytes& payload : payloads) stamped.push_back(GroupPayload{0, std::move(payload)});
  send_many(peer, std::move(stamped));
}

void TcpTransport::schedule_flush(int peer) {
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  if (p.flush_posted) return;
  p.flush_posted = true;
  loop_.post([this, peer] {
    Peer& owner = *peers_[static_cast<std::size_t>(peer)];
    owner.flush_posted = false;
    if (owner.conn != nullptr && owner.conn->established) flush_link(peer);
  });
}

void TcpTransport::set_epoch(std::uint32_t epoch) {
  loop_.post([this, epoch] { epoch_ = epoch; });
}

TcpTransport::Stats TcpTransport::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

// --- dialing ----------------------------------------------------------

void TcpTransport::dial(int peer) {
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  p.redial_timer = 0;
  if (p.conn != nullptr) return;
  const int fd = make_socket();
  if (fd < 0) {
    schedule_redial(peer);
    return;
  }
  set_nodelay(fd);
  sockaddr_in addr = make_addr(config_.endpoints[static_cast<std::size_t>(peer)]);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  // EINTR on a nonblocking connect means the attempt proceeds
  // asynchronously (POSIX) — treat it exactly like EINPROGRESS.
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    ::close(fd);
    schedule_redial(peer);
    return;
  }
  auto conn = std::make_shared<Conn>();
  conn->fd = fd;
  conn->connecting = true;
  conn->last_recv_ms = loop_.now_ms();
  p.conn = conn;
  loop_.add_fd(fd, EPOLLOUT, [this, peer, wp = std::weak_ptr<Conn>(conn)](std::uint32_t events) {
    auto locked = wp.lock();
    Peer& owner = *peers_[static_cast<std::size_t>(peer)];
    if (locked == nullptr || owner.conn != locked) return;  // stale fd event
    if (locked->connecting) {
      on_dial_writable(peer);
    } else {
      on_conn_event(peer, events);
    }
  });
}

void TcpTransport::schedule_redial(int peer) {
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  if (!i_dial(peer) || p.redial_timer != 0) return;
  const int shift = std::min(p.backoff_attempt, kMaxBackoffShift);
  p.backoff_attempt += 1;
  std::uint64_t delay = std::min(config_.reconnect_max_ms, config_.reconnect_min_ms << shift);
  delay += rng_.below(delay / 2 + 1);  // seeded jitter against reconnect stampedes
  p.redial_timer = loop_.schedule_after(delay, [this, peer] { dial(peer); });
}

void TcpTransport::on_dial_writable(int peer) {
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  Conn& conn = *p.conn;
  int err = 0;
  socklen_t len = sizeof(err);
  ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
  if (err != 0) {
    drop_connection(peer, /*redial=*/true);
    return;
  }
  conn.connecting = false;
  loop_.modify_fd(conn.fd, EPOLLIN);
  send_hello(conn, peer);
  try_write(peer);
}

// --- accepting --------------------------------------------------------

void TcpTransport::on_accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;  // interrupted, not out of connections
      return;
    }
    if (pending_accepts_.size() >= kMaxPendingAccepts) {
      ::close(fd);  // accept-flood guard
      continue;
    }
    set_nodelay(fd);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->last_recv_ms = loop_.now_ms();
    pending_accepts_.emplace(fd, conn);
    loop_.add_fd(fd, EPOLLIN, [this, fd](std::uint32_t) { on_pending_readable(fd); });
  }
}

void TcpTransport::on_pending_readable(int fd) {
  auto it = pending_accepts_.find(fd);
  if (it == pending_accepts_.end()) return;
  std::shared_ptr<Conn> conn = it->second;
  auto reject = [&] {
    pending_accepts_.erase(fd);
    loop_.remove_fd(fd);
    ::close(fd);
  };
  std::uint8_t buf[kReadChunk];
  while (true) {
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got > 0) {
      append(conn->pending_buf, BytesView(buf, static_cast<std::size_t>(got)));
      if (conn->pending_buf.size() > kMaxPreHelloBytes) {
        reject();
        return;
      }
      continue;
    }
    if (got < 0 && errno == EINTR) continue;  // interrupted read: retry
    if (got == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
      reject();
      return;
    }
    break;  // EAGAIN: no more data now
  }
  bool corrupt = false;
  std::optional<Frame> frame = peek_frame_unauthenticated(conn->pending_buf, &corrupt);
  if (corrupt) {
    reject();
    return;
  }
  if (!frame.has_value()) return;  // HELLO still incomplete
  HelloBody hello;
  try {
    SINTRA_REQUIRE(frame->type == FrameType::kHello, "tcp: first frame must be HELLO");
    Reader reader(frame->body);
    hello = HelloBody::decode(reader);
    SINTRA_REQUIRE(hello.version == kProtocolVersion, "tcp: version mismatch");
    const int claimed = static_cast<int>(hello.node_id);
    SINTRA_REQUIRE(claimed >= 0 && claimed < static_cast<int>(peers_.size()) &&
                       claimed != config_.node_id && !i_dial(claimed),
                   "tcp: HELLO claims an id that would not dial us");
  } catch (const ProtocolError&) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.auth_failures;
    }
    reject();
    return;
  }
  if (!epoch_compatible(hello.epoch)) {
    // A peer fenced out by reconfiguration (or far behind one): refuse the
    // handshake — its traffic belongs to another committee.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.epoch_rejects;
    }
    reject();
    return;
  }
  // Authenticate the stream under the claimed peer's link key: the MAC is
  // what proves the claim (only the dealer-keyed peer can produce it).
  FrameDecoder decoder;
  decoder.feed(conn->pending_buf);
  Frame authed;
  if (decoder.next(link_key(static_cast<int>(hello.node_id)), authed) !=
      FrameDecoder::Status::kFrame) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.auth_failures;
    }
    reject();
    return;
  }
  conn->decoder = std::move(decoder);  // keeps any bytes after the HELLO
  conn->pending_buf.clear();
  pending_accepts_.erase(fd);
  loop_.remove_fd(fd);
  adopt_connection(static_cast<int>(hello.node_id), conn, hello);
}

void TcpTransport::adopt_connection(int peer, std::shared_ptr<Conn> conn,
                                    const HelloBody& hello) {
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  if (p.conn != nullptr) {
    // The peer restarted (or redialed) while the old connection lingered:
    // the newest connection wins.
    drop_connection(peer, /*redial=*/false);
  }
  p.conn = conn;
  loop_.add_fd(conn->fd, EPOLLIN,
               [this, peer, wp = std::weak_ptr<Conn>(conn)](std::uint32_t events) {
                 auto locked = wp.lock();
                 Peer& owner = *peers_[static_cast<std::size_t>(peer)];
                 if (locked == nullptr || owner.conn != locked) return;
                 on_conn_event(peer, events);
               });
  send_hello(*conn, peer);
  const std::uint64_t low = config_.node_id < peer ? conn->my_nonce : hello.nonce;
  const std::uint64_t high = config_.node_id < peer ? hello.nonce : conn->my_nonce;
  conn->session_key = derive_session_key(link_key(peer), low, high);
  conn->established = true;
  conn->last_recv_ms = loop_.now_ms();
  p.health.reset(conn->last_recv_ms);  // old cadence died with the old socket
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.connects;
  }
  p.link.on_connected(hello.recv_cursor);
  flush_link(peer);
  try_write(peer);
}

// --- established-connection I/O ---------------------------------------

void TcpTransport::send_hello(Conn& conn, int peer) {
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  conn.my_nonce = rng_.next();
  HelloBody hello;
  hello.node_id = static_cast<std::uint32_t>(config_.node_id);
  hello.nonce = conn.my_nonce;
  hello.recv_cursor = p.link.recv_cursor();
  hello.epoch = epoch_;
  // A fresh connection's outq cannot be over quota; the check is vacuous.
  (void)queue_bytes(conn, encode_frame(FrameType::kHello, hello.encode(), link_key(peer)));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.frames_sent;
    ++stats_.hmacs_computed;
  }
}

void TcpTransport::close_conn(Conn& conn) {
  if (conn.fd >= 0) {
    loop_.remove_fd(conn.fd);
    ::close(conn.fd);
    conn.fd = -1;
  }
}

void TcpTransport::drop_connection(int peer, bool redial) {
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  if (p.conn == nullptr) return;
  const bool was_established = p.conn->established;
  close_conn(*p.conn);
  p.conn.reset();
  p.link.on_disconnected();
  if (p.ack_timer != 0) {
    loop_.cancel_timer(p.ack_timer);
    p.ack_timer = 0;
  }
  if (was_established) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.disconnects;
  }
  if (redial) schedule_redial(peer);
}

void TcpTransport::on_conn_event(int peer, std::uint32_t events) {
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  std::shared_ptr<Conn> conn = p.conn;
  if (conn == nullptr) return;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    drop_connection(peer, /*redial=*/true);
    return;
  }
  if ((events & EPOLLOUT) != 0) try_write(peer);
  if ((events & EPOLLIN) == 0) return;
  std::uint8_t buf[kReadChunk];
  while (p.conn == conn) {
    const ssize_t got = ::read(conn->fd, buf, sizeof(buf));
    if (got > 0) {
      conn->last_recv_ms = loop_.now_ms();
      p.health.record_arrival(conn->last_recv_ms);
      conn->decoder.feed(BytesView(buf, static_cast<std::size_t>(got)));
      while (p.conn == conn) {
        const BytesView key = conn->established ? BytesView(conn->session_key)
                                                : BytesView(link_key(peer));
        FrameType type = FrameType::kPing;
        BytesView body;
        const FrameDecoder::Status status = conn->decoder.next_view(key, type, body);
        if (status == FrameDecoder::Status::kNeedMore) break;
        if (status == FrameDecoder::Status::kCorrupt) {
          {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.auth_failures;
          }
          drop_connection(peer, /*redial=*/true);
          return;
        }
        handle_frame(peer, type, body);
      }
      continue;
    }
    if (got < 0 && errno == EINTR) continue;  // interrupted read: retry, not a dead peer
    if (got == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
      drop_connection(peer, /*redial=*/true);
      return;
    }
    break;  // EAGAIN
  }
}

void TcpTransport::handle_frame(int peer, FrameType type, BytesView body) {
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  Conn& conn = *p.conn;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.frames_received;
  }
  // Shared ack policy for DATA/BATCH: explicit ack now when the link asks,
  // else arm the delayed-ack timer so acks still flow under one-way load.
  const auto after_deliveries = [this, peer, &p](bool ack_now) {
    if (ack_now) {
      send_ack(peer);
    } else if (p.link.ack_pending() && p.ack_timer == 0) {
      p.ack_timer = loop_.schedule_after(config_.ack_flush_ms, [this, peer] {
        Peer& owner = *peers_[static_cast<std::size_t>(peer)];
        owner.ack_timer = 0;
        if (owner.conn != nullptr && owner.conn->established && owner.link.ack_pending()) {
          send_ack(peer);
        }
      });
    }
  };
  try {
    if (!conn.established) {
      // Dialer side: the peer's HELLO completes the handshake.
      SINTRA_REQUIRE(type == FrameType::kHello, "tcp: expected HELLO");
      Reader reader(body);
      const HelloBody hello = HelloBody::decode(reader);
      SINTRA_REQUIRE(hello.version == kProtocolVersion, "tcp: version mismatch");
      SINTRA_REQUIRE(static_cast<int>(hello.node_id) == peer, "tcp: HELLO claims wrong id");
      if (!epoch_compatible(hello.epoch)) {
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.epoch_rejects;
        }
        drop_connection(peer, /*redial=*/true);
        return;
      }
      const std::uint64_t low = config_.node_id < peer ? conn.my_nonce : hello.nonce;
      const std::uint64_t high = config_.node_id < peer ? hello.nonce : conn.my_nonce;
      conn.session_key = derive_session_key(link_key(peer), low, high);
      conn.established = true;
      p.backoff_attempt = 0;
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.connects;
      }
      p.link.on_connected(hello.recv_cursor);
      flush_link(peer);
      try_write(peer);
      return;
    }
    switch (type) {
      case FrameType::kDataBatch: {
        // Coalesced super-frame: one ack/base for the whole batch, then
        // per-record delivery.  In-order records take the zero-copy fast
        // path — the payload view (a slice of the decoder buffer) goes
        // straight to the receiver, never becoming an owned Bytes here.
        const DataBatchView batch = DataBatchView::decode(body);
        p.link.on_ack(batch.ack);
        // Epoch fence: wrong-epoch payloads never reach the protocol
        // layer, but the link still consumes their sequence numbers (and
        // acks them) so the sender releases them instead of retransmitting
        // a frame we will never accept.
        const bool fenced = !epoch_compatible(batch.epoch);
        bool ack_now = false;
        std::uint64_t delivered = 0;
        std::uint64_t filtered = 0;
        for (const DataBatchView::Record& record : batch.records) {
          const ReliableLink::FastPath fast = p.link.accept_inorder(record.seq, batch.base);
          if (fast.taken) {
            if (fenced) {
              ++filtered;
            } else {
              ++delivered;
              receive_(peer, record.group, record.payload);
            }
            ack_now = ack_now || fast.ack_now;
            continue;
          }
          ReliableLink::Incoming incoming =
              p.link.on_data(record.seq, batch.base,
                             Bytes(record.payload.begin(), record.payload.end()), record.group);
          if (fenced) {
            filtered += incoming.deliver.size();
          } else {
            delivered += incoming.deliver.size();
            for (const GroupPayload& delivery : incoming.deliver) {
              receive_(peer, delivery.group, delivery.payload);
            }
          }
          ack_now = ack_now || incoming.ack_now;
        }
        if (delivered > 0 || filtered > 0) {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          stats_.payloads_delivered += delivered;
          stats_.epoch_filtered += filtered;
        }
        after_deliveries(ack_now);
        return;
      }
      case FrameType::kData: {
        Reader reader(body);
        DataBody data = DataBody::decode(reader);
        p.link.on_ack(data.ack);
        const bool fenced = !epoch_compatible(data.epoch);
        ReliableLink::Incoming incoming =
            p.link.on_data(data.seq, data.base, std::move(data.payload), data.group);
        if (!incoming.deliver.empty()) {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          if (fenced) {
            stats_.epoch_filtered += incoming.deliver.size();
          } else {
            stats_.payloads_delivered += incoming.deliver.size();
          }
        }
        if (!fenced) {
          for (const GroupPayload& delivery : incoming.deliver) {
            receive_(peer, delivery.group, delivery.payload);
          }
        }
        after_deliveries(incoming.ack_now);
        return;
      }
      case FrameType::kAck: {
        Reader reader(body);
        const std::uint64_t ack = reader.u64();
        reader.expect_done();
        p.link.on_ack(ack);
        return;
      }
      case FrameType::kPing:
        send_frame(peer, FrameType::kPong, {});
        try_write(peer);
        return;
      case FrameType::kPong:
        return;  // liveness already noted via last_recv_ms
      case FrameType::kHello:
        return;  // redundant HELLO: ignore
    }
  } catch (const ProtocolError&) {
    // Authenticated but malformed — still a misbehaving peer.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.auth_failures;
    }
    drop_connection(peer, /*redial=*/true);
  }
}

void TcpTransport::flush_link(int peer) {
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  if (p.conn == nullptr || !p.conn->established) return;
  std::vector<ReliableLink::OutFrame> frames = p.link.take_sendable();
  if (!frames.empty()) {
    // Coalesce the whole flush into BATCH super-frames: one length
    // prefix and one HMAC per kMaxBatchBytes of payload instead of one
    // per message.  ack/base are link-level cursors valid for the whole
    // flush (take_sendable never moves base mid-take), so they ride once
    // per batch.
    const BytesView key(p.conn->session_key);
    DataBatchBody batch;
    batch.ack = p.link.recv_cursor();
    batch.base = frames.front().base;
    batch.epoch = epoch_;
    std::size_t batch_bytes = 0;
    bool ok = true;
    const auto emit = [&]() {
      if (batch.records.empty()) return true;
      const std::uint64_t count = batch.records.size();
      Bytes encoded = encode_frame(FrameType::kDataBatch, batch.encode(), key);
      batch.records.clear();
      batch_bytes = 0;
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.frames_sent;
        ++stats_.batches_sent;
        ++stats_.hmacs_computed;
        stats_.frames_coalesced += count;
      }
      return queue_bytes(*p.conn, std::move(encoded));
    };
    for (ReliableLink::OutFrame& out : frames) {
      if (batch_bytes > 0 && batch_bytes + out.payload.size() > kMaxBatchBytes) {
        if (!(ok = emit())) break;
      }
      batch_bytes += out.payload.size();
      batch.records.push_back({out.seq, out.group, std::move(out.payload)});
    }
    if (ok) ok = emit();
    if (!ok) {
      // Outbuf quota blown: the peer stopped reading long ago.  Drop the
      // connection so the link rewinds and retransmits after reconnect —
      // never silently discard frames the link already counted as sent.
      drop_connection(peer, /*redial=*/true);
      return;
    }
    p.link.mark_ack_sent();  // acks piggybacked on the batch
  }
  const std::uint64_t resent = p.link.stats().retransmitted;
  if (resent != p.link_retransmitted_seen) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.retransmitted += resent - p.link_retransmitted_seen;
    p.link_retransmitted_seen = resent;
  }
  try_write(peer);
}

void TcpTransport::send_ack(int peer) {
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  if (p.conn == nullptr || !p.conn->established) return;
  Writer w;
  w.u64(p.link.recv_cursor());
  send_frame(peer, FrameType::kAck, w.data());
  p.link.mark_ack_sent();
  try_write(peer);
}

void TcpTransport::send_frame(int peer, FrameType type, BytesView body) {
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  if (p.conn == nullptr) return;
  const BytesView key =
      p.conn->established ? BytesView(p.conn->session_key) : BytesView(link_key(peer));
  const bool ok = queue_bytes(*p.conn, encode_frame(type, body, key));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.frames_sent;
    ++stats_.hmacs_computed;
  }
  if (!ok) drop_connection(peer, /*redial=*/true);
}

bool TcpTransport::queue_bytes(Conn& conn, Bytes bytes) {
  if (conn.outbytes - conn.outpos + bytes.size() > kMaxConnOutbuf) {
    // The peer stopped reading long ago; the connection is dead.  Report
    // the overflow so the caller tears it down — dropping the connection
    // rewinds the link and retransmits on reconnect, whereas silently
    // discarding the frame here would desync link accounting from the
    // wire (frames counted sent but never transmitted).
    return false;
  }
  conn.outbytes += bytes.size();
  conn.outq.push_back(std::move(bytes));
  return true;
}

void TcpTransport::try_write(int peer) {
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  std::shared_ptr<Conn> conn = p.conn;
  if (conn == nullptr || conn->connecting || conn->fd < 0) return;
  while (!conn->outq.empty()) {
    // Scatter-gather: hand the kernel up to kMaxIov queued frames in one
    // sendmsg — one syscall per flush, no flattening copy.  MSG_NOSIGNAL
    // turns a peer that closed mid-send into an EPIPE errno handled
    // below instead of a process-killing SIGPIPE.
    iovec iov[kMaxIov];
    std::size_t iovcnt = 0;
    std::size_t skip = conn->outpos;
    for (const Bytes& chunk : conn->outq) {
      if (iovcnt == kMaxIov) break;
      iov[iovcnt].iov_base = const_cast<std::uint8_t*>(chunk.data() + skip);
      iov[iovcnt].iov_len = chunk.size() - skip;
      ++iovcnt;
      skip = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iovcnt;
    const ssize_t wrote = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (wrote > 0) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.writev_calls;
      }
      std::size_t remaining = static_cast<std::size_t>(wrote);
      while (remaining > 0) {
        Bytes& front = conn->outq.front();
        const std::size_t avail = front.size() - conn->outpos;
        if (remaining >= avail) {
          remaining -= avail;
          conn->outbytes -= front.size();
          conn->outq.pop_front();
          conn->outpos = 0;
        } else {
          conn->outpos += remaining;
          remaining = 0;
        }
      }
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;  // interrupted send: retry
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        loop_.modify_fd(conn->fd, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    drop_connection(peer, /*redial=*/true);
    return;
  }
  if (conn->want_write) {
    conn->want_write = false;
    loop_.modify_fd(conn->fd, EPOLLIN);
  }
}

void TcpTransport::heartbeat_sweep() {
  const std::uint64_t now = loop_.now_ms();
  for (int peer = 0; peer < static_cast<int>(peers_.size()); ++peer) {
    Peer* p = peers_[static_cast<std::size_t>(peer)].get();
    if (p == nullptr || p->conn == nullptr) continue;
    const std::uint64_t silence = now - p->conn->last_recv_ms;
    // Accrual health: the deadline adapts to this peer's observed arrival
    // cadence — a gray (slow but alive) peer earns a longer leash instead
    // of flapping, a dead one is still cut within max_factor * base.
    const std::uint64_t deadline = p->health.suspect_timeout_ms(config_.heartbeat_timeout_ms);
    if (silence > deadline) {
      // Dead link (stalled handshake or silent peer): tear down; the
      // dialing side backs off and redials.
      drop_connection(peer, /*redial=*/true);
      continue;
    }
    if (silence > config_.heartbeat_timeout_ms) {
      // Survived only thanks to the adaptive extension.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.health_extensions;
    }
    if (p->conn->established) {
      send_frame(peer, FrameType::kPing, {});
      try_write(peer);
    }
  }
  loop_.schedule_after(config_.heartbeat_interval_ms, [this] { heartbeat_sweep(); });
}

}  // namespace sintra::net::transport
