#include "net/transport/framing.hpp"

#include <cstring>

namespace sintra::net::transport {

namespace {

crypto::Digest frame_mac(FrameType type, BytesView body, BytesView mac_key) {
  Bytes covered;
  covered.reserve(1 + body.size());
  covered.push_back(static_cast<std::uint8_t>(type));
  append(covered, body);
  return crypto::hmac_sha256(mac_key, covered);
}

bool known_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kHello) &&
         type <= static_cast<std::uint8_t>(FrameType::kDataBatch);
}

}  // namespace

Bytes HelloBody::encode() const {
  Writer w;
  w.u16(version);
  w.u32(node_id);
  w.u64(nonce);
  w.u64(recv_cursor);
  w.u32(epoch);
  return w.take();
}

HelloBody HelloBody::decode(Reader& reader) {
  HelloBody hello;
  hello.version = reader.u16();
  hello.node_id = reader.u32();
  hello.nonce = reader.u64();
  hello.recv_cursor = reader.u64();
  hello.epoch = reader.u32();
  reader.expect_done();
  return hello;
}

Bytes DataBody::encode() const {
  Writer w;
  w.u64(seq);
  w.u64(ack);
  w.u64(base);
  w.u32(epoch);
  w.u32(group);
  w.bytes(payload);
  return w.take();
}

DataBody DataBody::decode(Reader& reader) {
  DataBody data;
  data.seq = reader.u64();
  data.ack = reader.u64();
  data.base = reader.u64();
  data.epoch = reader.u32();
  data.group = reader.u32();
  data.payload = reader.bytes();
  reader.expect_done();
  return data;
}

Bytes DataBatchBody::encode() const {
  Writer w;
  w.u64(ack);
  w.u64(base);
  w.u32(epoch);
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const Record& record : records) {
    w.u64(record.seq);
    w.u32(record.group);
    w.bytes(record.payload);
  }
  return w.take();
}

DataBatchBody DataBatchBody::decode(Reader& reader) {
  DataBatchBody batch;
  batch.ack = reader.u64();
  batch.base = reader.u64();
  batch.epoch = reader.u32();
  const std::uint32_t count = reader.u32();
  SINTRA_REQUIRE(count <= reader.remaining(), "framing: implausible batch count");
  batch.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Record record;
    record.seq = reader.u64();
    record.group = reader.u32();
    record.payload = reader.bytes();
    batch.records.push_back(std::move(record));
  }
  reader.expect_done();
  return batch;
}

DataBatchView DataBatchView::decode(BytesView body) {
  Reader reader(body);
  DataBatchView batch;
  batch.ack = reader.u64();
  batch.base = reader.u64();
  batch.epoch = reader.u32();
  const std::uint32_t count = reader.u32();
  SINTRA_REQUIRE(count <= reader.remaining(), "framing: implausible batch count");
  batch.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Record record;
    record.seq = reader.u64();
    record.group = reader.u32();
    record.payload = reader.bytes_view();  // slice, not copy
    batch.records.push_back(record);
  }
  reader.expect_done();
  return batch;
}

Bytes encode_frame(FrameType type, BytesView body, BytesView mac_key) {
  SINTRA_INVARIANT(body.size() <= kMaxFrameBody, "framing: oversized frame body");
  const crypto::Digest mac = frame_mac(type, body, mac_key);
  Writer w;
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.u8(static_cast<std::uint8_t>(type));
  w.raw(body);
  w.raw(BytesView(mac.data(), mac.size()));
  return w.take();
}

Bytes derive_session_key(BytesView link_key, std::uint64_t nonce_low, std::uint64_t nonce_high) {
  Writer w;
  w.u64(nonce_low);
  w.u64(nonce_high);
  const crypto::Digest mac = crypto::hmac_sha256(link_key, w.data());
  return Bytes(mac.begin(), mac.end());
}

std::optional<Frame> peek_frame_unauthenticated(BytesView stream, bool* corrupt) {
  *corrupt = false;
  if (stream.size() < 4) return std::nullopt;
  std::uint32_t body_len = 0;
  std::memcpy(&body_len, stream.data(), 4);
  if (body_len > kMaxFrameBody) {
    *corrupt = true;
    return std::nullopt;
  }
  const std::size_t total = 4 + 1 + static_cast<std::size_t>(body_len) + kMacSize;
  if (stream.size() < total) return std::nullopt;
  if (!known_type(stream[4])) {
    *corrupt = true;
    return std::nullopt;
  }
  Frame frame;
  frame.type = static_cast<FrameType>(stream[4]);
  frame.body.assign(stream.begin() + 5, stream.begin() + 5 + body_len);
  return frame;
}

void FrameDecoder::feed(BytesView data) {
  if (corrupt_) return;
  // Compact before growing: everything before pos_ has been consumed.
  if (pos_ > 0 && pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ > (1u << 16)) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  append(buffer_, data);
}

FrameDecoder::Status FrameDecoder::next(BytesView mac_key, Frame& out) {
  FrameType type = FrameType::kPing;
  BytesView body;
  const Status status = next_view(mac_key, type, body);
  if (status == Status::kFrame) {
    out.type = type;
    out.body.assign(body.begin(), body.end());
  }
  return status;
}

FrameDecoder::Status FrameDecoder::next_view(BytesView mac_key, FrameType& out_type,
                                             BytesView& out_body) {
  if (corrupt_) return Status::kCorrupt;
  const std::size_t available = buffer_.size() - pos_;
  if (available < 4) return Status::kNeedMore;
  std::uint32_t body_len = 0;
  std::memcpy(&body_len, buffer_.data() + pos_, 4);  // LE, matching Writer::u32
  if (body_len > kMaxFrameBody) {
    corrupt_ = true;
    return Status::kCorrupt;
  }
  const std::size_t total = 4 + 1 + static_cast<std::size_t>(body_len) + kMacSize;
  if (available < total) return Status::kNeedMore;
  const std::uint8_t* frame = buffer_.data() + pos_;
  const std::uint8_t raw_type = frame[4];
  const BytesView body(frame + 5, body_len);
  const BytesView mac(frame + 5 + body_len, kMacSize);
  if (!known_type(raw_type)) {
    corrupt_ = true;
    return Status::kCorrupt;
  }
  const FrameType type = static_cast<FrameType>(raw_type);
  const crypto::Digest expected = frame_mac(type, body, mac_key);
  if (!constant_time_equal(BytesView(expected.data(), expected.size()), mac)) {
    corrupt_ = true;
    return Status::kCorrupt;
  }
  out_type = type;
  out_body = body;
  pos_ += total;
  return Status::kFrame;
}

}  // namespace sintra::net::transport
