// Wire framing for authenticated point-to-point links.
//
// A TCP byte stream (or a loopback "segment") carries frames:
//
//   [u32 body_len (LE)] [u8 type] [body ...] [32-byte HMAC-SHA256]
//
// The MAC covers type || body and is keyed per link (HELLO frames: the
// static pairwise key dealt by the trusted dealer, crypto/dealer.hpp) or
// per session (everything after the handshake: a key bound to both sides'
// fresh nonces, so frames captured on one connection cannot be replayed
// into a later one).  This realizes the paper's authenticated-links
// assumption with the dealer as the root of trust, replacing the
// simulator's structural `from` enforcement.
//
// The decoder is incremental (a TCP read boundary can fall anywhere) and
// fails closed: a bad MAC, an unknown type or an oversized length poisons
// the stream — the connection is torn down rather than resynchronized,
// because resynchronizing against an adversarial byte stream is hopeless.
//
// Frame bodies are typed and serialized with the deterministic
// Writer/Reader encoding used by every protocol message:
//   HELLO: u16 version, u32 node_id, u64 nonce, u64 recv_cursor, u32 epoch
//   DATA:  u64 seq, u64 ack, u64 base, u32 epoch, u32 group, bytes payload
//   BATCH: u64 ack, u64 base, u32 epoch, u32 count,
//          count x { u64 seq, u32 group, bytes payload }
//   ACK:   u64 ack
//   PING/PONG: empty
// `ack` is cumulative ("I delivered every seq < ack"); `base` is the
// sender's lowest retained seq (the quota gap floor, see link.hpp).
// `epoch` is the sender's membership epoch (protocols/reconfig.hpp): a
// HELLO from an epoch more than one away from ours is rejected at the
// handshake, and data frames from outside the one-epoch transition window
// are filtered before delivery — wrong-epoch traffic dies at the
// transport instead of reaching protocol instances keyed for another
// committee.
//
// `group` (wire v4) is the multi-tenant shard stamp: one host process can
// run several independent SINTRA groups over a single transport, and each
// payload names the group (tenant) it belongs to.  The stamp rides per
// *record*, not per frame, so one coalesced BATCH super-frame carries
// traffic for many shards under a single HMAC and a single syscall —
// sharding multiplies the message rate but not the per-link
// authentication cost.  ack/base/epoch remain link-level (per frame):
// reliability and membership fencing are properties of the machine pair,
// not of any one tenant.  Single-tenant deployments stamp group 0
// everywhere, which is also what a decoder reports for pre-v4 semantics.
//
// BATCH is the coalesced super-frame (issue 7): every DATA payload bound
// for a peer in one event-loop flush rides one frame — one length prefix,
// one HMAC over the whole batch, one syscall — amortizing per-message
// authentication the way TNIC amortizes attestation.  The cursors
// (ack/base) are link-level state valid for the entire flush, so they
// appear once per batch rather than once per message.  Receivers slice
// payload views straight out of the decoder's buffer (DataBatchView) —
// the zero-copy receive path.
#pragma once

#include <cstdint>
#include <optional>

#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

namespace sintra::net::transport {

constexpr std::uint16_t kProtocolVersion = 4;  // v4: group-stamped frames
constexpr std::size_t kMacSize = crypto::kSha256DigestSize;
/// Upper bound on a frame body; larger lengths are treated as an attack on
/// the receiver's memory and poison the stream.
constexpr std::size_t kMaxFrameBody = 1u << 22;  // 4 MiB
constexpr std::size_t kFrameOverhead = 4 + 1 + kMacSize;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kData = 2,
  kAck = 3,
  kPing = 4,
  kPong = 5,
  kDataBatch = 6,
};

/// Soft budget for one BATCH super-frame's payload bytes; a flush larger
/// than this splits into several batches so no frame approaches
/// kMaxFrameBody (a single over-budget payload still gets its own batch).
constexpr std::size_t kMaxBatchBytes = 1u << 20;  // 1 MiB

struct Frame {
  FrameType type = FrameType::kPing;
  Bytes body;
};

struct HelloBody {
  std::uint16_t version = kProtocolVersion;
  std::uint32_t node_id = 0;
  std::uint64_t nonce = 0;        ///< fresh per connection attempt
  std::uint64_t recv_cursor = 0;  ///< cumulative receive progress (link.hpp)
  std::uint32_t epoch = 0;        ///< sender's membership epoch

  [[nodiscard]] Bytes encode() const;
  static HelloBody decode(Reader& reader);  ///< throws ProtocolError
};

struct DataBody {
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint64_t base = 0;
  std::uint32_t epoch = 0;
  std::uint32_t group = 0;  ///< multi-tenant shard stamp (wire v4)
  Bytes payload;

  [[nodiscard]] Bytes encode() const;
  static DataBody decode(Reader& reader);  ///< throws ProtocolError
};

struct DataBatchBody {
  std::uint64_t ack = 0;
  std::uint64_t base = 0;
  std::uint32_t epoch = 0;
  struct Record {
    std::uint64_t seq = 0;
    std::uint32_t group = 0;  ///< per-record shard stamp (wire v4)
    Bytes payload;
  };
  std::vector<Record> records;

  [[nodiscard]] Bytes encode() const;
  static DataBatchBody decode(Reader& reader);  ///< throws ProtocolError
};

/// Zero-copy decode of a BATCH body: payloads are slices of the frame
/// body, valid only while the underlying buffer lives (for a decoder
/// view, until the next feed()).
struct DataBatchView {
  std::uint64_t ack = 0;
  std::uint64_t base = 0;
  std::uint32_t epoch = 0;
  struct Record {
    std::uint64_t seq = 0;
    std::uint32_t group = 0;  ///< per-record shard stamp (wire v4)
    BytesView payload;
  };
  std::vector<Record> records;

  static DataBatchView decode(BytesView body);  ///< throws ProtocolError
};

/// Encode one frame, MAC'd under `mac_key`.
Bytes encode_frame(FrameType type, BytesView body, BytesView mac_key);

/// Session key bound to a link key and both connection nonces (the lower
/// party id's nonce first, so both ends derive the same key).
Bytes derive_session_key(BytesView link_key, std::uint64_t nonce_low, std::uint64_t nonce_high);

/// Accept-path helper: structurally parse the first complete frame of
/// `stream` WITHOUT authenticating, so the receiver can learn the claimed
/// node id of a HELLO and pick the right link key (the frame must then be
/// re-extracted through an authenticating FrameDecoder).  Returns nullopt
/// when the frame is still incomplete; sets `*corrupt` on a structurally
/// invalid prefix.
std::optional<Frame> peek_frame_unauthenticated(BytesView stream, bool* corrupt);

/// Incremental frame parser over a byte stream.
class FrameDecoder {
 public:
  enum class Status {
    kNeedMore,  ///< no complete frame buffered
    kFrame,     ///< `out` holds the next authenticated frame
    kCorrupt,   ///< stream poisoned (bad MAC / length / type) — terminal
  };

  /// Append raw stream bytes.
  void feed(BytesView data);

  /// Extract the next frame, authenticating with `mac_key`.  After
  /// kCorrupt every further call returns kCorrupt.
  Status next(BytesView mac_key, Frame& out);

  /// Like next(), but the body comes back as a view into the decoder's
  /// internal buffer — no copy.  The view (and any sub-slices taken from
  /// it, e.g. DataBatchView payloads) stays valid until the next feed().
  Status next_view(BytesView mac_key, FrameType& out_type, BytesView& out_body);

  [[nodiscard]] bool corrupt() const { return corrupt_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - pos_; }

 private:
  Bytes buffer_;
  std::size_t pos_ = 0;
  bool corrupt_ = false;
};

}  // namespace sintra::net::transport
