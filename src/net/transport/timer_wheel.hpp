// Hashed timer wheel — the single timeout facility of the stack.
//
// Three drivers share this structure:
//  * the Simulator advances it by one tick per delivery step (and jumps to
//    the next deadline when the network quiesces), giving the deterministic
//    "time" that failure detectors and client retries are tested against;
//  * the epoll EventLoop advances it to the monotonic clock, driving
//    heartbeats, reconnect backoff and delayed acks of the TCP transport;
//  * the NetworkedNode advances it inside its dispatch loop for
//    application-level timers over a real transport.
//
// Classic O(1) hashed wheel: a power-of-two array of buckets indexed by
// deadline & mask; an entry parks in the bucket of its deadline and is
// skipped (not cascaded) when the wheel passes the slot early.  Firing
// order is deterministic: by (deadline, id), ids in schedule order.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace sintra::net::transport {

class TimerWheel {
 public:
  using TimerId = std::uint64_t;
  using Callback = std::function<void()>;

  explicit TimerWheel(std::uint64_t start = 0) : now_(start) {}

  /// Schedule `fn` at absolute tick `deadline` (clamped to now+1: a timer
  /// never fires inside the call that schedules it).
  TimerId schedule_at(std::uint64_t deadline, Callback fn);

  /// Schedule `fn` after `delay` ticks (delay 0 behaves as 1).
  TimerId schedule_after(std::uint64_t delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending timer; false if it already fired or never existed.
  bool cancel(TimerId id);

  /// Advance the clock to `t`, firing every timer with deadline <= t in
  /// (deadline, schedule-order) order.  Callbacks may schedule and cancel
  /// timers; newly scheduled timers fire only on a later advance.
  void advance_to(std::uint64_t t);

  [[nodiscard]] std::uint64_t now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return pending_; }
  /// Earliest deadline among pending timers (nullopt when idle).
  [[nodiscard]] std::optional<std::uint64_t> next_deadline() const;

 private:
  static constexpr std::size_t kSlots = 256;  // power of two

  struct Entry {
    TimerId id;
    std::uint64_t deadline;
    Callback fn;
  };

  std::array<std::vector<Entry>, kSlots> buckets_;
  std::uint64_t now_;
  TimerId next_id_ = 1;
  std::size_t pending_ = 0;
};

}  // namespace sintra::net::transport
