#include "net/transport/networked_node.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/serialize.hpp"

namespace sintra::net::transport {

namespace {
/// Budget instance tag for buffered next-epoch traffic: one tag so
/// advance_epoch can release the whole class at once via accounting.
const char* const kFutureEpochTag = "reconfig/future-epoch";
}  // namespace

NetworkedNode::NetworkedNode(Config config)
    : config_(config), start_(std::chrono::steady_clock::now()) {
  SINTRA_REQUIRE(config_.n >= 1 && config_.node_id >= 0 && config_.node_id < config_.n,
                 "networked_node: node_id out of range");
  SINTRA_REQUIRE(config_.max_inbox >= 1, "networked_node: inbox must hold something");
  outbox_.resize(static_cast<std::size_t>(config_.n));
  add_group(0, config_.epoch);
}

NetworkedNode::GroupEndpoint& NetworkedNode::add_group(std::uint32_t gid, std::uint32_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(gid);
  if (it == tenants_.end()) {
    auto slot = std::make_unique<Tenant>();
    slot->gid = gid;
    slot->epoch = epoch;
    slot->endpoint.reset(new GroupEndpoint(this, gid));
    it = tenants_.emplace(gid, std::move(slot)).first;
  }
  return *it->second->endpoint;
}

NetworkedNode::GroupEndpoint& NetworkedNode::group(std::uint32_t gid) {
  return *tenant(gid).endpoint;
}

NetworkedNode::Tenant& NetworkedNode::tenant(std::uint32_t gid) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(gid);
  SINTRA_REQUIRE(it != tenants_.end(), "networked_node: unknown group");
  return *it->second;
}

const NetworkedNode::Tenant& NetworkedNode::tenant(std::uint32_t gid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(gid);
  SINTRA_REQUIRE(it != tenants_.end(), "networked_node: unknown group");
  return *it->second;
}

void NetworkedNode::tenant_attach(std::uint32_t gid, Process& process) {
  tenant(gid).process = &process;
}

void NetworkedNode::tenant_set_persist(std::uint32_t gid, PersistFn persist) {
  tenant(gid).persist = std::move(persist);
}

void NetworkedNode::tenant_set_budget(std::uint32_t gid, ResourceBudget* budget) {
  tenant(gid).budget = budget;
}

std::uint64_t NetworkedNode::now() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now() - start_)
                                        .count());
}

Bytes NetworkedNode::encode_payload(const Message& message, std::uint32_t epoch) {
  Writer w;
  w.u32(epoch);
  w.str(message.tag);
  w.bytes(message.payload);
  return w.take();
}

Message NetworkedNode::decode_payload(int from, int to, BytesView payload,
                                      std::uint32_t* epoch_out) {
  Reader reader(payload);
  Message message;
  message.from = from;
  message.to = to;
  const std::uint32_t epoch = reader.u32();
  if (epoch_out != nullptr) *epoch_out = epoch;
  message.tag = reader.str();
  message.payload = reader.bytes();
  reader.expect_done();
  return message;
}

void NetworkedNode::submit_group(std::uint32_t gid, Message message) {
  // Authenticated links: this node can only originate traffic as itself.
  // (The transport MAC enforces the same on the receiving side.)
  SINTRA_REQUIRE(message.from == config_.node_id, "networked_node: forged from");
  SINTRA_REQUIRE(message.to >= 0 && message.to < config_.n, "networked_node: bad to");
  message.sent_at = now();
  if (message.to == config_.node_id) {
    // Self-send loops back through the inbox, like the simulator.
    Tenant* owner = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = tenants_.find(gid);
      SINTRA_REQUIRE(it != tenants_.end(), "networked_node: unknown group");
      owner = it->second.get();
      message.id = next_id_++;
      ++stats_.self_messages;
    }
    enqueue_inbound(*owner, std::move(message));
    return;
  }
  // Remote sends park in the per-peer outbox, stamped with the tenant's
  // group id; only the pump thread talks to the transport
  // (single-threaded transports stay safe under executor threads) and it
  // hands over whole per-peer batches — all tenants interleaved — for
  // coalescing into one super-frame.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(gid);
    SINTRA_REQUIRE(it != tenants_.end(), "networked_node: unknown group");
    message.id = next_id_++;
    outbox_[static_cast<std::size_t>(message.to)].push_back(
        GroupPayload{gid, encode_payload(message, it->second->epoch)});
  }
  inbox_cv_.notify_one();  // wake the pump to flush
}

void NetworkedNode::on_transport_receive(int from, std::uint32_t group, BytesView payload) {
  if (from < 0 || from >= config_.n || from == config_.node_id) return;
  Message message;
  std::uint32_t msg_epoch = 0;
  try {
    message = decode_payload(from, config_.node_id, payload, &msg_epoch);
  } catch (const ProtocolError&) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.malformed;
    return;
  }
  message.sent_at = now();
  Tenant* owner = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(group);
    if (it == tenants_.end()) {
      // A group this host does not run: a misrouted (or adversarially
      // stamped) record.  Count and drop — never crash, never bill an
      // actual tenant for it.
      ++stats_.unknown_group;
      return;
    }
    owner = it->second.get();
    if (msg_epoch != owner->epoch) {
      if (msg_epoch == owner->epoch + 1) {
        // One epoch ahead: the sender finished a reconfiguration this
        // tenant has not applied yet.  Park the message — bounded per
        // tenant by count and by the tenant's own ResourceBudget, so one
        // group's flood cannot evict another group's buffers — and
        // replay it at advance_epoch().
        const std::size_t cost = message.tag.size() + message.payload.size() + 16;
        if (owner->future.size() >= config_.max_future ||
            (owner->budget != nullptr &&
             !owner->budget->try_charge(from, kFutureEpochTag, cost))) {
          ++stats_.epoch_dropped;
          return;
        }
        owner->future.push_back({std::move(message), msg_epoch, cost});
        ++stats_.epoch_buffered;
      } else {
        // Stale (or absurdly future) epoch: fenced-out traffic.
        ++stats_.epoch_stale;
      }
      return;
    }
  }
  enqueue_inbound(*owner, std::move(message));
}

std::uint32_t NetworkedNode::tenant_epoch(std::uint32_t gid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(gid);
  SINTRA_REQUIRE(it != tenants_.end(), "networked_node: unknown group");
  return it->second->epoch;
}

void NetworkedNode::tenant_advance_epoch(std::uint32_t gid, std::uint32_t epoch) {
  Tenant* owner = nullptr;
  std::deque<FutureMessage> parked;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(gid);
    SINTRA_REQUIRE(it != tenants_.end(), "networked_node: unknown group");
    owner = it->second.get();
    if (epoch <= owner->epoch) return;  // monotonic; repeated applies are no-ops
    owner->epoch = epoch;
    parked.swap(owner->future);
  }
  for (FutureMessage& entry : parked) {
    if (owner->budget != nullptr) {
      owner->budget->release(entry.message.from, kFutureEpochTag, entry.cost);
    }
    if (entry.epoch == epoch) {
      enqueue_inbound(*owner, std::move(entry.message));
    } else {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.epoch_stale;  // skipped an epoch: the parked traffic died with it
    }
  }
}

void NetworkedNode::enqueue_inbound(Tenant& owner, Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (inbox_.size() >= config_.max_inbox) {
      // Backpressure: drop the oldest queued message.  The transport's
      // link layer already delivered it, so this is the node's explicit
      // overload shedding — counted, bounded, never fatal.
      inbox_.pop_front();
      ++stats_.dropped_inbox;
    }
    inbox_.push_back(InboxEntry{&owner, std::move(message)});
  }
  inbox_cv_.notify_one();
}

void NetworkedNode::set_work_pool(common::WorkPool* pool) {
  work_pool_ = pool;
  if (work_pool_ != nullptr) {
    work_pool_->set_notify([this] { inbox_cv_.notify_one(); });
  }
}

void NetworkedNode::set_executors(common::ExecutorPool* pool) {
  executors_ = pool;
  if (executors_ != nullptr) {
    executors_->set_notify([this] { inbox_cv_.notify_one(); });
  }
}

void NetworkedNode::flush_outbound() {
  for (int peer = 0; peer < config_.n; ++peer) {
    std::deque<GroupPayload> pending;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (outbox_[static_cast<std::size_t>(peer)].empty()) continue;
      pending.swap(outbox_[static_cast<std::size_t>(peer)]);
    }
    // Only a node that actually has remote traffic needs a transport;
    // standalone nodes (self-sends, timers) never reach this point.
    SINTRA_REQUIRE(static_cast<bool>(send_) || static_cast<bool>(send_many_),
                   "networked_node: no transport bound");
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.outbound_flushes;
      stats_.outbound_payloads += pending.size();
    }
    if (send_many_) {
      std::vector<GroupPayload> batch;
      batch.reserve(pending.size());
      for (GroupPayload& payload : pending) batch.push_back(std::move(payload));
      send_many_(peer, std::move(batch));
    } else {
      // The per-payload SendFn has no group parameter, so it can only
      // carry single-tenant (group 0) traffic; multi-group hosts must
      // bind the batched entry.
      for (GroupPayload& payload : pending) {
        SINTRA_REQUIRE(payload.group == 0,
                       "networked_node: multi-group traffic needs bind_transport_batched");
        send_(peer, std::move(payload.payload));
      }
    }
  }
}

std::size_t NetworkedNode::poll() {
  {
    std::lock_guard<std::recursive_mutex> timer_lock(timer_mutex_);
    wheel_.advance_to(now());
  }
  if (work_pool_ != nullptr) work_pool_->drain();
  std::deque<InboxEntry> batch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch.swap(inbox_);
  }
  std::size_t dispatched = 0;
  for (InboxEntry& entry : batch) {
    if (entry.tenant->persist) entry.tenant->persist(entry.message);  // write-ahead
    if (entry.tenant->process != nullptr) {
      entry.tenant->process->on_message(entry.message);
      ++dispatched;
    }
  }
  if (dispatched > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.dispatched += dispatched;
  }
  {
    std::lock_guard<std::recursive_mutex> timer_lock(timer_mutex_);
    wheel_.advance_to(now());
  }
  // Everything the dispatch batch (or executor handlers meanwhile)
  // buffered for a peer leaves as one batch — the coalescing unit.
  flush_outbound();
  return dispatched;
}

bool NetworkedNode::run_until(const std::function<bool()>& done, std::uint64_t timeout_ms) {
  const std::uint64_t deadline = now() + timeout_ms;
  while (true) {
    poll();
    if (done()) return true;
    const std::uint64_t current = now();
    if (current >= deadline) return done();
    std::uint64_t wait = std::min<std::uint64_t>(deadline - current, 50);
    {
      std::lock_guard<std::recursive_mutex> timer_lock(timer_mutex_);
      if (const auto next = wheel_.next_deadline()) {
        wait = std::min(wait, *next > current ? *next - current : 1);
      }
    }
    std::unique_lock<std::mutex> lock(mutex_);
    inbox_cv_.wait_for(lock, std::chrono::milliseconds(wait), [this] {
      if (!inbox_.empty()) return true;
      if (work_pool_ != nullptr && work_pool_->has_completions()) return true;
      for (const auto& pending : outbox_) {
        if (!pending.empty()) return true;
      }
      return false;
    });
  }
}

Network::TimerId NetworkedNode::schedule_timer(int owner, std::uint64_t delay_ms, TimerFn fn) {
  (void)owner;  // single-process substrate: everything runs as this node
  std::lock_guard<std::recursive_mutex> lock(timer_mutex_);
  return wheel_.schedule_at(std::max(now() + delay_ms, wheel_.now() + 1), std::move(fn));
}

void NetworkedNode::cancel_timer(TimerId id) {
  std::lock_guard<std::recursive_mutex> lock(timer_mutex_);
  wheel_.cancel(id);
}

NetworkedNode::Stats NetworkedNode::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace sintra::net::transport
