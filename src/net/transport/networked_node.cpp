#include "net/transport/networked_node.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/serialize.hpp"

namespace sintra::net::transport {

NetworkedNode::NetworkedNode(Config config)
    : config_(config), start_(std::chrono::steady_clock::now()) {
  SINTRA_REQUIRE(config_.n >= 1 && config_.node_id >= 0 && config_.node_id < config_.n,
                 "networked_node: node_id out of range");
  SINTRA_REQUIRE(config_.max_inbox >= 1, "networked_node: inbox must hold something");
}

std::uint64_t NetworkedNode::now() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now() - start_)
                                        .count());
}

Bytes NetworkedNode::encode_payload(const Message& message) {
  Writer w;
  w.str(message.tag);
  w.bytes(message.payload);
  return w.take();
}

Message NetworkedNode::decode_payload(int from, int to, BytesView payload) {
  Reader reader(payload);
  Message message;
  message.from = from;
  message.to = to;
  message.tag = reader.str();
  message.payload = reader.bytes();
  reader.expect_done();
  return message;
}

void NetworkedNode::submit(Message message) {
  // Authenticated links: this node can only originate traffic as itself.
  // (The transport MAC enforces the same on the receiving side.)
  SINTRA_REQUIRE(message.from == config_.node_id, "networked_node: forged from");
  SINTRA_REQUIRE(message.to >= 0 && message.to < config_.n, "networked_node: bad to");
  message.id = next_id_++;
  message.sent_at = now();
  if (message.to == config_.node_id) {
    // Self-send loops back through the inbox, like the simulator.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.self_messages;
    }
    enqueue_inbound(std::move(message));
    return;
  }
  SINTRA_REQUIRE(static_cast<bool>(send_), "networked_node: no transport bound");
  send_(message.to, encode_payload(message));
}

void NetworkedNode::on_transport_receive(int from, Bytes payload) {
  if (from < 0 || from >= config_.n || from == config_.node_id) return;
  Message message;
  try {
    message = decode_payload(from, config_.node_id, payload);
  } catch (const ProtocolError&) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.malformed;
    return;
  }
  message.sent_at = now();
  enqueue_inbound(std::move(message));
}

void NetworkedNode::enqueue_inbound(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (inbox_.size() >= config_.max_inbox) {
      // Backpressure: drop the oldest queued message.  The transport's
      // link layer already delivered it, so this is the node's explicit
      // overload shedding — counted, bounded, never fatal.
      inbox_.pop_front();
      ++stats_.dropped_inbox;
    }
    inbox_.push_back(std::move(message));
  }
  inbox_cv_.notify_one();
}

void NetworkedNode::set_work_pool(common::WorkPool* pool) {
  work_pool_ = pool;
  if (work_pool_ != nullptr) {
    work_pool_->set_notify([this] { inbox_cv_.notify_one(); });
  }
}

std::size_t NetworkedNode::poll() {
  wheel_.advance_to(now());
  if (work_pool_ != nullptr) work_pool_->drain();
  std::deque<Message> batch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch.swap(inbox_);
  }
  std::size_t dispatched = 0;
  for (Message& message : batch) {
    if (persist_) persist_(message);  // write-ahead: log before acting
    if (process_ != nullptr) {
      process_->on_message(message);
      ++dispatched;
    }
  }
  if (dispatched > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.dispatched += dispatched;
  }
  wheel_.advance_to(now());
  return dispatched;
}

bool NetworkedNode::run_until(const std::function<bool()>& done, std::uint64_t timeout_ms) {
  const std::uint64_t deadline = now() + timeout_ms;
  while (true) {
    poll();
    if (done()) return true;
    const std::uint64_t current = now();
    if (current >= deadline) return done();
    std::uint64_t wait = std::min<std::uint64_t>(deadline - current, 50);
    if (const auto next = wheel_.next_deadline()) {
      wait = std::min(wait, *next > current ? *next - current : 1);
    }
    std::unique_lock<std::mutex> lock(mutex_);
    inbox_cv_.wait_for(lock, std::chrono::milliseconds(wait), [this] {
      return !inbox_.empty() || (work_pool_ != nullptr && work_pool_->has_completions());
    });
  }
}

Network::TimerId NetworkedNode::schedule_timer(int owner, std::uint64_t delay_ms, TimerFn fn) {
  (void)owner;  // single-process substrate: everything runs as this node
  return wheel_.schedule_at(std::max(now() + delay_ms, wheel_.now() + 1), std::move(fn));
}

void NetworkedNode::cancel_timer(TimerId id) { wheel_.cancel(id); }

NetworkedNode::Stats NetworkedNode::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace sintra::net::transport
