#include "net/transport/link.hpp"

#include <algorithm>

namespace sintra::net::transport {

std::uint64_t ReliableLink::enqueue(Bytes payload, std::uint32_t group) {
  const std::uint64_t seq = next_seq_++;
  outbound_.push_back(GroupPayload{group, std::move(payload)});
  ++stats_.enqueued;
  while (outbound_.size() > config_.max_outbound) {
    // Quota overflow: evict the oldest retained frame and advance the
    // base floor.  The receiver sees the gap via the `base` field and
    // skips explicitly — bounded memory beats silent unbounded growth
    // when a peer is down for long or never acks.
    outbound_.pop_front();
    ++base_seq_;
    ++stats_.dropped_outbound;
  }
  send_from_ = std::max(send_from_, base_seq_);
  return seq;
}

std::vector<ReliableLink::OutFrame> ReliableLink::take_sendable() {
  std::vector<OutFrame> frames;
  if (!connected_) return frames;
  send_from_ = std::max(send_from_, base_seq_);
  frames.reserve(static_cast<std::size_t>(next_seq_ - send_from_));
  for (std::uint64_t seq = send_from_; seq < next_seq_; ++seq) {
    OutFrame frame;
    frame.seq = seq;
    frame.base = base_seq_;
    const GroupPayload& retained = outbound_[static_cast<std::size_t>(seq - base_seq_)];
    frame.group = retained.group;
    frame.payload = retained.payload;
    frames.push_back(std::move(frame));
    ++stats_.sent;
    // Per-frame accounting, exact by construction: a frame is a resend iff
    // its seq was ever on a wire before.  The old range arithmetic
    // (`min(high, next) - front`) assumed the sendable range's low end is
    // where resends start, which entangles the stat with how quota
    // eviction moves base_seq_/send_from_; counting each frame against the
    // high-water mark cannot miscount no matter how the cursors moved.
    if (seq < send_cursor_high_) {
      ++stats_.retransmitted;
    } else {
      ++stats_.first_transmissions;
    }
  }
  send_cursor_high_ = std::max(send_cursor_high_, next_seq_);
  send_from_ = next_seq_;
  return frames;
}

void ReliableLink::on_ack(std::uint64_t cumulative) {
  // Ignore acks beyond what was ever sent (Byzantine peer): acking the
  // future would truncate frames still awaiting first transmission.
  cumulative = std::min(cumulative, next_seq_);
  while (base_seq_ < cumulative && !outbound_.empty()) {
    outbound_.pop_front();
    ++base_seq_;
  }
  send_from_ = std::max(send_from_, base_seq_);
}

void ReliableLink::mark_all_for_retransmit() { send_from_ = base_seq_; }

void ReliableLink::on_connected(std::uint64_t peer_recv_cursor) {
  connected_ = true;
  on_ack(peer_recv_cursor);
  mark_all_for_retransmit();
}

ReliableLink::FastPath ReliableLink::accept_inorder(std::uint64_t seq, std::uint64_t base) {
  FastPath fast;
  if (base > recv_next_ || seq != recv_next_ || !reorder_.empty()) return fast;
  fast.taken = true;
  ++recv_next_;
  ++stats_.delivered;
  ++unacked_deliveries_;
  if (unacked_deliveries_ >= config_.ack_every) fast.ack_now = true;
  return fast;
}

ReliableLink::Incoming ReliableLink::on_data(std::uint64_t seq, std::uint64_t base,
                                             Bytes payload, std::uint32_t group) {
  Incoming incoming;
  // The peer's quota floor moved past us: the skipped seqs will never be
  // retransmitted.  Deliver what the reorder window already holds below
  // the floor (those frames arrived), count the rest as skipped, advance.
  if (base > recv_next_) {
    for (std::uint64_t s = recv_next_; s < base; ++s) {
      auto buffered = reorder_.find(s);
      if (buffered != reorder_.end()) {
        incoming.deliver.push_back(std::move(buffered->second));
        reorder_.erase(buffered);
        ++stats_.delivered;
        ++unacked_deliveries_;
      } else {
        ++stats_.skipped_inbound;
      }
    }
    recv_next_ = base;
    incoming.ack_now = true;
  }
  if (seq < recv_next_) {
    // Duplicate (a retransmission that crossed our ack): re-acking
    // promptly lets the sender release its queue.
    ++stats_.duplicates;
    incoming.ack_now = true;
    return incoming;
  }
  if (seq == recv_next_) {
    incoming.deliver.push_back(GroupPayload{group, std::move(payload)});
    ++recv_next_;
    ++stats_.delivered;
    ++unacked_deliveries_;
    // Drain the reorder window while it is consecutive.
    for (auto it = reorder_.begin(); it != reorder_.end() && it->first == recv_next_;
         it = reorder_.begin()) {
      incoming.deliver.push_back(std::move(it->second));
      reorder_.erase(it);
      ++recv_next_;
      ++stats_.delivered;
      ++unacked_deliveries_;
    }
  } else if (seq - recv_next_ > config_.reorder_window) {
    // Too far ahead to buffer; the sender retransmits after our acks (or
    // the reconnect handshake) catch it up.
    ++stats_.out_of_window;
  } else if (reorder_.emplace(seq, GroupPayload{group, std::move(payload)}).second) {
    ++stats_.reordered;
  } else {
    ++stats_.duplicates;
  }
  if (unacked_deliveries_ >= config_.ack_every) incoming.ack_now = true;
  return incoming;
}

}  // namespace sintra::net::transport
