// Single-threaded epoll event loop with a timer wheel — the reactor under
// the TCP transport.
//
// From-scratch POSIX (epoll + eventfd), no libraries.  One thread calls
// run(); every fd handler and timer callback executes on that thread, so
// the transport's connection state needs no locks.  Other threads interact
// only through post() (and stop()), which enqueue under a mutex and wake
// the loop via an eventfd.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "net/transport/timer_wheel.hpp"

namespace sintra::net::transport {

class EventLoop {
 public:
  /// Bitmask of EPOLLIN/EPOLLOUT/... the fd became ready for.
  using FdHandler = std::function<void(std::uint32_t events)>;
  using TimerId = TimerWheel::TimerId;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // --- loop-thread API (also safe before run() starts) ---------------
  void add_fd(int fd, std::uint32_t events, FdHandler handler);
  void modify_fd(int fd, std::uint32_t events);
  /// Stop watching `fd`.  The loop never closes fds; the caller owns them.
  void remove_fd(int fd);

  /// Millisecond timers on the loop thread.
  TimerId schedule_after(std::uint64_t delay_ms, std::function<void()> fn);
  void cancel_timer(TimerId id);

  /// Monotonic milliseconds since loop construction.
  [[nodiscard]] std::uint64_t now_ms() const;

  // --- any-thread API -------------------------------------------------
  /// Run `fn` on the loop thread as soon as possible.
  void post(std::function<void()> fn);
  /// Make run() return after the current iteration.
  void stop();

  /// Block processing events until stop().
  void run();

 private:
  void drain_posted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::chrono::steady_clock::time_point start_;
  // shared_ptr so a handler that removes itself (or another fd) mid-batch
  // cannot free a handler the dispatch loop is still holding.
  std::map<int, std::shared_ptr<FdHandler>> handlers_;
  TimerWheel wheel_;
  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace sintra::net::transport
