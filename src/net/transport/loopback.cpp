#include "net/transport/loopback.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sintra::net::transport {

namespace {
constexpr std::size_t kHistoryCap = 256;
}

LoopbackHub::LoopbackHub(int n, std::uint64_t seed)
    : LoopbackHub(n, seed, FaultProfile{}, LinkConfig{}) {}

LoopbackHub::LoopbackHub(int n, std::uint64_t seed, FaultProfile profile, LinkConfig link)
    : n_(n), rng_(seed), profile_(profile) {
  SINTRA_REQUIRE(n >= 2, "loopback: need at least two nodes");
  const std::size_t nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  receivers_.resize(static_cast<std::size_t>(n));
  links_.assign(nn, ReliableLink(link));
  wires_.resize(nn);
  decoders_.resize(nn);
  pairs_.resize(nn / 2 + static_cast<std::size_t>(n));  // upper bound on pair count
  pair_keys_.resize(pairs_.size());
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      Writer w;
      w.u64(seed);
      w.u32(static_cast<std::uint32_t>(a));
      w.u32(static_cast<std::uint32_t>(b));
      pair_keys_[pair_index(a, b)] =
          crypto::hash_expand("sintra/loopback/link-key", w.data(), 32);
    }
  }
  // Every link starts connected with aligned (zero) cursors.
  for (auto& l : links_) l.on_connected(0);
}

std::size_t LoopbackHub::wire_index(int from, int to) const {
  SINTRA_REQUIRE(from >= 0 && from < n_ && to >= 0 && to < n_ && from != to,
                 "loopback: bad endpoint");
  return static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
         static_cast<std::size_t>(to);
}

std::size_t LoopbackHub::pair_index(int a, int b) const {
  const int low = std::min(a, b);
  const int high = std::max(a, b);
  // Triangular index over unordered pairs.
  return static_cast<std::size_t>(low) * static_cast<std::size_t>(n_) -
         static_cast<std::size_t>(low) * static_cast<std::size_t>(low + 1) / 2 +
         static_cast<std::size_t>(high - low - 1);
}

ReliableLink& LoopbackHub::link_mut(int node, int peer) { return links_[wire_index(node, peer)]; }

const ReliableLink& LoopbackHub::link(int node, int peer) const {
  return links_[wire_index(node, peer)];
}

void LoopbackHub::set_receiver(int node, ReceiveFn receive) {
  receivers_[static_cast<std::size_t>(node)] = std::move(receive);
}

void LoopbackHub::set_receiver(int node, LegacyReceiveFn receive) {
  if (!receive) {
    receivers_[static_cast<std::size_t>(node)] = nullptr;
    return;
  }
  receivers_[static_cast<std::size_t>(node)] =
      [receive = std::move(receive)](int from, std::uint32_t /*group*/, BytesView payload) {
        receive(from, payload);
      };
}

bool LoopbackHub::pair_connected(int a, int b) const { return pairs_[pair_index(a, b)].connected; }

void LoopbackHub::set_partition_profile(PartitionProfile profile) {
  partition_ = std::move(profile);
  partition_step_ = 0;
  partition_severed_.assign(pairs_.size(), false);
}

void LoopbackHub::send(int from, int to, Bytes payload, std::uint32_t group) {
  link_mut(from, to).enqueue(std::move(payload), group);
  flush(from, to);
}

void LoopbackHub::send_many(int from, int to, std::vector<GroupPayload> payloads) {
  ReliableLink& l = link_mut(from, to);
  for (GroupPayload& payload : payloads) l.enqueue(std::move(payload.payload), payload.group);
  flush(from, to);
}

void LoopbackHub::send_many(int from, int to, std::vector<Bytes> payloads) {
  ReliableLink& l = link_mut(from, to);
  for (Bytes& payload : payloads) l.enqueue(std::move(payload));
  flush(from, to);
}

void LoopbackHub::flush(int from, int to) {
  if (!pairs_[pair_index(from, to)].connected) return;
  ReliableLink& l = link_mut(from, to);
  const BytesView key = pair_keys_[pair_index(from, to)];
  std::vector<ReliableLink::OutFrame> frames = l.take_sendable();
  if (frames.empty()) return;
  // Coalesce the whole flush into BATCH super-frames: one frame — one
  // HMAC — per kMaxBatchBytes of payload, not per message.  Identical
  // framing to the TCP path so tests can assert the amortization
  // deterministically here.
  DataBatchBody batch;
  batch.ack = l.recv_cursor();
  std::size_t batch_bytes = 0;
  const auto emit = [&] {
    if (batch.records.empty()) return;
    wires_[wire_index(from, to)].push_back(
        encode_frame(FrameType::kDataBatch, batch.encode(), key));
    ++stats_.batches_sent;
    ++stats_.hmacs_computed;
    stats_.coalesced_payloads += batch.records.size();
    batch.records.clear();
    batch_bytes = 0;
  };
  for (ReliableLink::OutFrame& out : frames) {
    if (batch_bytes > 0 && batch_bytes + out.payload.size() > kMaxBatchBytes) emit();
    // `base` can only advance within one take_sendable (quota eviction
    // between frames never happens mid-take), so the last frame's base is
    // valid for the whole batch.
    batch.base = out.base;
    batch_bytes += out.payload.size();
    batch.records.push_back(DataBatchBody::Record{out.seq, out.group, std::move(out.payload)});
  }
  emit();
  l.mark_ack_sent();
}

void LoopbackHub::send_explicit_ack(int from, int to) {
  if (!pairs_[pair_index(from, to)].connected) return;
  ReliableLink& l = link_mut(from, to);
  Writer w;
  w.u64(l.recv_cursor());
  wires_[wire_index(from, to)].push_back(
      encode_frame(FrameType::kAck, w.data(), pair_keys_[pair_index(from, to)]));
  ++stats_.hmacs_computed;
  l.mark_ack_sent();
}

void LoopbackHub::inject_raw(int from, int to, Bytes bytes) {
  wires_[wire_index(from, to)].push_back(std::move(bytes));
}

void LoopbackHub::tear_down(int a, int b, std::uint64_t reconnect_in) {
  PairState& pair = pairs_[pair_index(a, b)];
  if (!pair.connected) return;
  pair.connected = false;
  pair.reconnect_in = reconnect_in;
  wires_[wire_index(a, b)].clear();  // in-flight frames are lost with the connection
  wires_[wire_index(b, a)].clear();
  decoders_[wire_index(a, b)] = FrameDecoder();
  decoders_[wire_index(b, a)] = FrameDecoder();
  link_mut(a, b).on_disconnected();
  link_mut(b, a).on_disconnected();
  ++stats_.disconnects;
}

void LoopbackHub::disconnect(int a, int b) { tear_down(a, b, 0); }

void LoopbackHub::connect(int a, int b) {
  PairState& pair = pairs_[pair_index(a, b)];
  if (pair.connected) return;
  pair.connected = true;
  pair.reconnect_in = 0;
  // Cursor-exchange handshake (the HELLO recv_cursor of the TCP path):
  // each side releases what the other delivered and rewinds the rest.
  const std::uint64_t cursor_ab = link_mut(b, a).recv_cursor();
  const std::uint64_t cursor_ba = link_mut(a, b).recv_cursor();
  link_mut(a, b).on_connected(cursor_ab);
  link_mut(b, a).on_connected(cursor_ba);
  flush(a, b);
  flush(b, a);
}

void LoopbackHub::deliver_wire_front(int from, int to) {
  const std::size_t wi = wire_index(from, to);
  Bytes frame_bytes = std::move(wires_[wi].front());
  wires_[wi].pop_front();

  // Asymmetric one-way loss: frames on a listed directed link vanish while
  // the reverse direction works — the half-open failure mode heartbeat
  // protocols flap on.  Retransmission eventually gets a frame through.
  if (partition_ && partition_->oneway_loss_chance > 0 && partition_->one_way(from, to) &&
      rng_.below(1024) < partition_->oneway_loss_chance) {
    ++stats_.oneway_dropped;
    return;
  }

  // In-flight faults, FaultInjector-style.
  if (profile_.drop_chance > 0 && rng_.below(1024) < profile_.drop_chance) {
    ++stats_.dropped_frames;
    return;  // lost; the link's retransmission recovers it
  }
  if (profile_.duplicate_chance > 0 && rng_.below(1024) < profile_.duplicate_chance) {
    wires_[wi].push_back(frame_bytes);
    ++stats_.duplicated_frames;
  }

  FrameDecoder& decoder = decoders_[wi];
  decoder.feed(frame_bytes);
  const BytesView key = pair_keys_[pair_index(from, to)];
  while (true) {
    FrameType type = FrameType::kPing;
    BytesView body;
    const FrameDecoder::Status status = decoder.next_view(key, type, body);
    if (status == FrameDecoder::Status::kNeedMore) break;
    if (status == FrameDecoder::Status::kCorrupt) {
      // Unauthenticated or garbled stream: fail closed, tear the pair
      // down (mirrors the TCP transport's poisoned-stream teardown).
      ++stats_.auth_failures;
      tear_down(from, to, profile_.reconnect_after > 0 ? profile_.reconnect_after : 1);
      return;
    }
    ++stats_.delivered_frames;
    ReliableLink& recv_link = link_mut(to, from);
    ReceiveFn& receive = receivers_[static_cast<std::size_t>(to)];
    bool ack_now = false;
    try {
      if (type == FrameType::kDataBatch) {
        // Zero-copy path: payload views are slices of the decoder buffer;
        // in-order records go straight up without ever becoming a Bytes.
        const DataBatchView batch = DataBatchView::decode(body);
        recv_link.on_ack(batch.ack);
        for (const DataBatchView::Record& record : batch.records) {
          const ReliableLink::FastPath fast =
              recv_link.accept_inorder(record.seq, batch.base);
          if (fast.taken) {
            if (receive) receive(from, record.group, record.payload);
            ack_now = ack_now || fast.ack_now;
            continue;
          }
          ReliableLink::Incoming incoming =
              recv_link.on_data(record.seq, batch.base,
                                Bytes(record.payload.begin(), record.payload.end()),
                                record.group);
          for (const GroupPayload& delivery : incoming.deliver) {
            if (receive) receive(from, delivery.group, delivery.payload);
          }
          ack_now = ack_now || incoming.ack_now;
        }
      } else if (type == FrameType::kData) {
        Reader reader(body);
        DataBody data = DataBody::decode(reader);
        recv_link.on_ack(data.ack);
        ReliableLink::Incoming incoming =
            recv_link.on_data(data.seq, data.base, std::move(data.payload), data.group);
        for (const GroupPayload& delivery : incoming.deliver) {
          if (receive) receive(from, delivery.group, delivery.payload);
        }
        ack_now = incoming.ack_now;
      } else if (type == FrameType::kAck) {
        Reader reader(body);
        const std::uint64_t ack = reader.u64();
        reader.expect_done();
        recv_link.on_ack(ack);
      }
      // kHello/kPing/kPong have no loopback meaning; authenticated → ignore.
    } catch (const ProtocolError&) {
      // Authenticated but structurally malformed body (a buggy or
      // Byzantine peer behind a valid MAC): poisoned stream, fail closed.
      ++stats_.auth_failures;
      tear_down(from, to, profile_.reconnect_after > 0 ? profile_.reconnect_after : 1);
      return;
    }
    if (ack_now) send_explicit_ack(to, from);
  }

  // Capture for replay faults and possibly re-inject an old frame.  A
  // replayed frame is a real adversary move: it carries a valid MAC, so
  // only the link-layer duplicate suppression can reject it.
  if (profile_.replay_chance > 0) {
    history_.push_back(frame_bytes);
    history_wire_.push_back(wi);
    if (history_.size() > kHistoryCap) {
      history_.pop_front();
      history_wire_.pop_front();
    }
    if (replays_injected_ < profile_.replay_budget && !history_.empty() &&
        rng_.below(1024) < profile_.replay_chance) {
      const std::size_t pick = static_cast<std::size_t>(rng_.below(history_.size()));
      wires_[history_wire_[pick]].push_back(history_[pick]);
      ++replays_injected_;
      ++stats_.replayed_frames;
    }
  }

  if (profile_.disconnect_chance > 0 && disconnects_injected_ < profile_.max_disconnects &&
      rng_.below(1024) < profile_.disconnect_chance) {
    ++disconnects_injected_;
    tear_down(from, to, std::max<std::uint64_t>(profile_.reconnect_after, 1));
  }
}

bool LoopbackHub::step() {
  bool progressed = false;

  // Advance the partition schedule one tick: sever pairs entering a split
  // phase, heal pairs leaving one.  A live schedule counts as progress —
  // it guarantees future healing, so run_until_quiescent() must not
  // declare quiescence while a split still blocks the backlog.
  if (partition_) {
    const std::uint64_t now = partition_step_;
    if (now < partition_->schedule_steps()) {
      progressed = true;
      ++partition_step_;
    }
    for (int a = 0; a < n_; ++a) {
      for (int b = a + 1; b < n_; ++b) {
        const std::size_t pi = pair_index(a, b);
        const bool sever = partition_->severed(a, b, now);
        if (sever && !partition_severed_[pi]) {
          partition_severed_[pi] = true;
          if (pairs_[pi].connected) {
            tear_down(a, b, 0);
            ++stats_.partition_splits;
          }
          pairs_[pi].reconnect_in = 0;  // held down until the schedule heals
        } else if (!sever && partition_severed_[pi]) {
          partition_severed_[pi] = false;
          if (!pairs_[pi].connected) {
            connect(a, b);
            ++stats_.partition_heals;
          }
        }
      }
    }
  }

  // Progress pending auto-reconnects: a fully severed network must still
  // heal without any wire traffic, so a ticking countdown counts as
  // progress even before it reaches zero.  Pairs held down by the
  // partition schedule have no countdown — only the schedule heals them.
  for (int a = 0; a < n_; ++a) {
    for (int b = a + 1; b < n_; ++b) {
      PairState& pair = pairs_[pair_index(a, b)];
      if (!pair.connected && pair.reconnect_in > 0) {
        progressed = true;
        if (--pair.reconnect_in == 0) connect(a, b);
      }
    }
  }

  std::vector<std::size_t> ready;
  for (int from = 0; from < n_; ++from) {
    for (int to = 0; to < n_; ++to) {
      if (from != to && !wires_[wire_index(from, to)].empty() &&
          pairs_[pair_index(from, to)].connected) {
        ready.push_back(wire_index(from, to));
      }
    }
  }
  // Gray-failure injection: with the configured chance, a scheduling pick
  // skips every wire sourced at a gray peer as long as anyone else has
  // traffic — the gray peer's frames are not lost, just always last.
  if (partition_ && partition_->gray_delay_chance > 0 && !ready.empty() &&
      rng_.below(1024) < partition_->gray_delay_chance) {
    std::vector<std::size_t> non_gray;
    for (const std::size_t wi : ready) {
      if (!partition_->gray(static_cast<int>(wi) / n_)) non_gray.push_back(wi);
    }
    if (!non_gray.empty() && non_gray.size() < ready.size()) {
      ready = std::move(non_gray);
      ++stats_.gray_deferred;
    }
  }
  if (ready.empty()) return progressed;
  const std::size_t wi = ready[static_cast<std::size_t>(rng_.below(ready.size()))];
  const int from = static_cast<int>(wi) / n_;
  const int to = static_cast<int>(wi) % n_;
  deliver_wire_front(from, to);
  return true;
}

void LoopbackHub::tick() {
  for (int from = 0; from < n_; ++from) {
    for (int to = 0; to < n_; ++to) {
      if (from == to) continue;
      if (!pairs_[pair_index(from, to)].connected) continue;
      // Rewind-and-resend: anything retained but unacked goes out again.
      link_mut(from, to).mark_all_for_retransmit();
      flush(from, to);
      if (link_mut(from, to).ack_pending()) send_explicit_ack(from, to);
    }
  }
}

std::size_t LoopbackHub::run_until_quiescent(std::size_t max_steps) {
  std::size_t steps = 0;
  bool ticked = false;
  while (steps < max_steps) {
    if (step()) {
      ++steps;
      ticked = false;
      continue;
    }
    if (ticked) break;  // a tick produced no new traffic: quiescent
    tick();
    ticked = true;
  }
  return steps;
}

}  // namespace sintra::net::transport
