// Accrual-style per-peer liveness score (issue 8), after the phi-accrual
// failure detector (Hayashibara et al., SRDS 2004) in a deterministic,
// integer-friendly form.
//
// A fixed heartbeat timeout flaps during partial partitions and gray
// failures: a slow-but-alive peer whose frames arrive every few hundred
// milliseconds gets torn down by a 2 s cutoff tuned for LAN latencies, the
// redial succeeds, and the cycle repeats — each flap rewinding the
// ReliableLink and re-transmitting the backlog.  Instead of asking "has it
// been longer than T?", the accrual detector asks "how unusual is this
// silence for *this* peer?": it tracks an exponentially weighted mean and
// mean absolute deviation of the observed inter-arrival times and suspects
// the peer only once the current silence exceeds
//     threshold * (mean + 2 * deviation),
// clamped to [base, max_factor * base] so a chatty peer never gets *less*
// than the configured timeout (existing deployments keep their semantics)
// and a dead-silent peer is still declared dead within a bounded window.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace sintra::net::transport {

class AccrualHealth {
 public:
  struct Config {
    double threshold = 3.0;   ///< multiples of the typical arrival gap
    double max_factor = 4.0;  ///< adaptive timeout cap, in base timeouts
    /// EWMA weight denominator: new samples count 1/smoothing.
    double smoothing = 8.0;
    /// Arrivals needed before the estimate is trusted at all.
    std::size_t min_samples = 4;
  };

  AccrualHealth() = default;
  explicit AccrualHealth(Config config) : config_(config) {}

  /// Forget everything (fresh connection: old cadence is meaningless).
  void reset(std::uint64_t now_ms) {
    last_arrival_ms_ = now_ms;
    mean_ms_ = 0.0;
    deviation_ms_ = 0.0;
    samples_ = 0;
  }

  /// Note one frame arrival from the peer.
  void record_arrival(std::uint64_t now_ms) {
    const std::uint64_t gap = now_ms >= last_arrival_ms_ ? now_ms - last_arrival_ms_ : 0;
    last_arrival_ms_ = now_ms;
    if (samples_ == 0) {
      mean_ms_ = static_cast<double>(gap);
      deviation_ms_ = 0.0;
    } else {
      const double err = static_cast<double>(gap) - mean_ms_;
      mean_ms_ += err / config_.smoothing;
      deviation_ms_ += (std::abs(err) - deviation_ms_) / config_.smoothing;
    }
    ++samples_;
  }

  /// The silence (ms) after which this peer should be suspected, given the
  /// configured base timeout.  Never below base, never above
  /// max_factor * base; with too few samples it is exactly base.
  [[nodiscard]] std::uint64_t suspect_timeout_ms(std::uint64_t base_ms) const {
    if (samples_ < config_.min_samples) return base_ms;
    const double adaptive = config_.threshold * (mean_ms_ + 2.0 * deviation_ms_);
    const double ceiling = config_.max_factor * static_cast<double>(base_ms);
    const double clamped = std::clamp(adaptive, static_cast<double>(base_ms), ceiling);
    return static_cast<std::uint64_t>(clamped);
  }

  /// Should the peer be suspected after `silence_ms` of no traffic?
  [[nodiscard]] bool suspect(std::uint64_t silence_ms, std::uint64_t base_ms) const {
    return silence_ms > suspect_timeout_ms(base_ms);
  }

  [[nodiscard]] std::size_t samples() const { return samples_; }
  [[nodiscard]] double mean_interval_ms() const { return mean_ms_; }
  [[nodiscard]] double deviation_ms() const { return deviation_ms_; }

 private:
  Config config_;
  std::uint64_t last_arrival_ms_ = 0;
  double mean_ms_ = 0.0;
  double deviation_ms_ = 0.0;
  std::size_t samples_ = 0;
};

}  // namespace sintra::net::transport
