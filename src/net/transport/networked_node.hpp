// NetworkedNode — the Network implementation that runs one Process (a
// Party and its whole protocol stack, unchanged) over a real transport.
//
// The adapter owns the boundary between the transport's reactor thread
// and the protocol thread.  The transport delivers authenticated payloads
// on its own thread; on_transport_receive() decodes them into Messages
// and pushes them into a bounded inbox (drop-oldest beyond the quota, so
// a flooding peer costs memory-bounded buffering, never the process).
// The protocol thread drains the inbox with poll()/run_until(); every
// message is handed to the optional persist hook (the write-ahead log)
// *before* dispatch, which is what makes crash recovery replayable.
//
// Time here is the monotonic clock in milliseconds: Network::now() and
// schedule_timer() delays are wall-clock, unlike the simulator's delivery
// steps — protocol code sees the same interface either way (see
// net/network.hpp for why timers live on the substrate).
//
// Threading contract: submit(), schedule_timer(), cancel_timer(), poll()
// and run_until() belong to the protocol thread.  on_transport_receive()
// may be called from any thread.  stats() is thread-safe.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

#include "common/work_pool.hpp"
#include "net/network.hpp"
#include "net/simulator.hpp"
#include "net/transport/timer_wheel.hpp"

namespace sintra::net::transport {

class NetworkedNode final : public Network {
 public:
  struct Config {
    int node_id = 0;
    int n = 0;                      ///< network endpoints (servers + clients)
    std::size_t max_inbox = 8192;   ///< bounded inbox; beyond: drop-oldest
  };

  /// Hands an encoded payload to the transport for reliable delivery.
  using SendFn = std::function<void(int peer, Bytes payload)>;
  /// Write-ahead hook, called for every inbound message before dispatch.
  using PersistFn = std::function<void(const Message& message)>;

  explicit NetworkedNode(Config config);

  // --- Network (protocol thread) --------------------------------------
  void submit(Message message) override;
  [[nodiscard]] int n() const override { return config_.n; }
  /// Monotonic milliseconds since construction.
  [[nodiscard]] std::uint64_t now() const override;
  TimerId schedule_timer(int owner, std::uint64_t delay_ms, TimerFn fn) override;
  void cancel_timer(TimerId id) override;
  [[nodiscard]] TraceLog* log() override { return log_; }
  void set_log(TraceLog* log) { log_ = log; }

  // --- wiring ----------------------------------------------------------
  /// The process receiving deliveries (caller owns it and calls on_start).
  void attach(Process& process) { process_ = &process; }
  void bind_transport(SendFn send) { send_ = std::move(send); }
  void set_persist(PersistFn persist) { persist_ = std::move(persist); }

  /// Attach the crypto work pool (not owned).  poll() drains finished
  /// verification jobs on the protocol thread — completions re-enter the
  /// protocol as ordinary self-messages — and the pool's notify hook is
  /// pointed at the inbox condition variable so run_until() wakes for
  /// verdicts as promptly as for network traffic.
  void set_work_pool(common::WorkPool* pool);

  /// Transport-side entry (any thread): decode and enqueue one payload.
  /// Malformed payloads from an authenticated peer are counted and
  /// dropped — Byzantine input must not crash the node.
  void on_transport_receive(int from, Bytes payload);

  // --- protocol-thread pump --------------------------------------------
  /// Fire due timers, then dispatch every queued message.  Returns the
  /// number of messages dispatched.
  std::size_t poll();

  /// Pump until `done()` or `timeout_ms` elapses; sleeps on the inbox
  /// condition variable between batches.  Returns done()'s final value.
  bool run_until(const std::function<bool()>& done, std::uint64_t timeout_ms);

  struct Stats {
    std::uint64_t dispatched = 0;     ///< messages handed to the process
    std::uint64_t self_messages = 0;  ///< local submits looped back
    std::uint64_t dropped_inbox = 0;  ///< inbox quota overflow (oldest dropped)
    std::uint64_t malformed = 0;      ///< undecodable transport payloads
  };
  [[nodiscard]] Stats stats() const;

  // --- wire form of a Message over the transport -----------------------
  static Bytes encode_payload(const Message& message);
  /// Throws ProtocolError on malformed input.
  static Message decode_payload(int from, int to, BytesView payload);

 private:
  void enqueue_inbound(Message message);

  Config config_;
  Process* process_ = nullptr;
  SendFn send_;
  PersistFn persist_;
  common::WorkPool* work_pool_ = nullptr;
  TraceLog* log_ = nullptr;
  std::chrono::steady_clock::time_point start_;

  TimerWheel wheel_;  ///< protocol-thread only
  std::uint64_t next_id_ = 1;

  mutable std::mutex mutex_;
  std::condition_variable inbox_cv_;
  std::deque<Message> inbox_;
  Stats stats_;
};

}  // namespace sintra::net::transport
