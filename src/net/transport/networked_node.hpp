// NetworkedNode — the multi-tenant host that runs one or more Processes
// (each a Party and its whole protocol stack, unchanged) over a single
// real transport.
//
// One NetworkedNode is one machine endpoint.  It can host S independent
// SINTRA groups ("tenants"): each group has its own Process, its own
// write-ahead persist hook, its own ResourceBudget and its own membership
// epoch, while all of them share this node's transport link, event loop,
// timer wheel, inbox pump and (machine-wide) executor/work pools.  A
// tenant sees the substrate through a GroupEndpoint — a Network facade
// that stamps every outbound payload with the tenant's group id (the wire
// v4 record stamp, framing.hpp) and delegates time/timers to the host.
// Group 0 is created in the constructor, and every pre-sharding API on
// the node itself (attach, set_persist, epoch, …) delegates to it, so
// single-tenant callers are untouched.
//
// The adapter owns the boundary between the transport's reactor thread
// and the protocol thread.  The transport delivers authenticated payloads
// on its own thread; on_transport_receive() routes them by group id to
// the owning tenant, decodes them into Messages and pushes them into a
// bounded inbox shared by all tenants (drop-oldest beyond the quota, so a
// flooding peer costs memory-bounded buffering, never the process).
// Per-tenant state that is *not* shared: the future-epoch parking buffer
// is bounded per tenant and metered against that tenant's own budget, so
// a flooder targeting group A exhausts A's allowance without evicting
// group B's buffers.  The protocol thread drains the inbox with
// poll()/run_until(); every message is handed to its tenant's persist
// hook (the write-ahead log) *before* dispatch, which is what makes crash
// recovery replayable per group.
//
// Outbound traffic is buffered per peer — tenants interleaved, in submit
// order — and flushed by the pump thread at the tail of every poll():
// only the pump thread ever calls into the transport, and it hands over
// the whole per-peer batch of a pump cycle at once.  Because group ids
// ride per *record* inside the coalesced BATCH super-frame, a multi-shard
// flush still costs exactly one HMAC and one syscall per link.
//
// Time here is the monotonic clock in milliseconds: Network::now() and
// schedule_timer() delays are wall-clock, unlike the simulator's delivery
// steps — protocol code sees the same interface either way (see
// net/network.hpp for why timers live on the substrate).
//
// Threading contract: poll() and run_until() belong to the pump
// (protocol) thread.  submit(), schedule_timer(), cancel_timer() may be
// called from the pump thread or from executor threads;
// on_transport_receive() from any thread.  add_group() belongs to the
// wiring phase (before traffic flows).  stats() is thread-safe.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/executor.hpp"
#include "common/work_pool.hpp"
#include "net/budget.hpp"
#include "net/network.hpp"
#include "net/simulator.hpp"
#include "net/transport/link.hpp"
#include "net/transport/timer_wheel.hpp"

namespace sintra::net::transport {

class NetworkedNode final : public Network {
 public:
  struct Config {
    int node_id = 0;
    int n = 0;                      ///< network endpoints (servers + clients)
    std::size_t max_inbox = 8192;   ///< bounded inbox; beyond: drop-oldest
    std::uint32_t epoch = 0;        ///< initial membership epoch (group 0)
    /// Messages stamped one epoch ahead buffered until advance_epoch();
    /// beyond this many *per tenant*: drop-oldest (on top of any
    /// ResourceBudget cap).
    std::size_t max_future = 1024;
  };

  /// Hands an encoded payload to the transport for reliable delivery.
  /// Single-tenant only: flushing multi-group traffic requires the
  /// batched form below (this one has nowhere to put the group stamp).
  using SendFn = std::function<void(int peer, Bytes payload)>;
  /// Batched form: every payload buffered for `peer` during one pump
  /// cycle, in order, each stamped with its tenant's group id — the
  /// transport turns the whole vector into one coalesced super-frame.
  using SendManyFn = std::function<void(int peer, std::vector<GroupPayload> payloads)>;
  /// Write-ahead hook, called for every inbound message before dispatch.
  using PersistFn = std::function<void(const Message& message)>;

  explicit NetworkedNode(Config config);

  // --- multi-tenant hosting --------------------------------------------
  /// A tenant's view of the substrate: a Network whose submit() stamps
  /// the tenant's group id on every payload, plus the tenant-scoped
  /// wiring (process, persist hook, budget, membership epoch).  Obtained
  /// from add_group()/group(); owned by the host, valid for its lifetime.
  class GroupEndpoint final : public Network {
   public:
    void submit(Message message) override { host_->submit_group(gid_, std::move(message)); }
    [[nodiscard]] int n() const override { return host_->n(); }
    [[nodiscard]] std::uint64_t now() const override { return host_->now(); }
    TimerId schedule_timer(int owner, std::uint64_t delay_ms, TimerFn fn) override {
      return host_->schedule_timer(owner, delay_ms, std::move(fn));
    }
    void cancel_timer(TimerId id) override { host_->cancel_timer(id); }
    [[nodiscard]] TraceLog* log() override { return host_->log(); }

    /// The process receiving this group's deliveries (caller owns it).
    void attach(Process& process) { host_->tenant_attach(gid_, process); }
    void set_persist(PersistFn persist) { host_->tenant_set_persist(gid_, std::move(persist)); }
    /// Meter this group's future-epoch buffer through its own
    /// ResourceBudget (not owned) — tenant isolation under flooding.
    void set_budget(ResourceBudget* budget) { host_->tenant_set_budget(gid_, budget); }
    [[nodiscard]] std::uint32_t epoch() const { return host_->tenant_epoch(gid_); }
    void advance_epoch(std::uint32_t epoch) { host_->tenant_advance_epoch(gid_, epoch); }
    [[nodiscard]] std::uint32_t group_id() const { return gid_; }

   private:
    friend class NetworkedNode;
    GroupEndpoint(NetworkedNode* host, std::uint32_t gid) : host_(host), gid_(gid) {}
    NetworkedNode* host_;
    std::uint32_t gid_;
  };

  /// Create (or fetch) the tenant slot for `gid` with initial membership
  /// epoch `epoch` (ignored when the group already exists).  Wiring
  /// phase: call before traffic flows for the group.
  GroupEndpoint& add_group(std::uint32_t gid, std::uint32_t epoch = 0);
  /// The endpoint of an existing group (group 0 always exists).
  [[nodiscard]] GroupEndpoint& group(std::uint32_t gid);

  // --- Network (pump or executor threads); delegates to group 0 --------
  void submit(Message message) override { submit_group(0, std::move(message)); }
  [[nodiscard]] int n() const override { return config_.n; }
  /// Monotonic milliseconds since construction.
  [[nodiscard]] std::uint64_t now() const override;
  TimerId schedule_timer(int owner, std::uint64_t delay_ms, TimerFn fn) override;
  void cancel_timer(TimerId id) override;
  [[nodiscard]] TraceLog* log() override { return log_; }
  void set_log(TraceLog* log) { log_ = log; }

  // --- wiring (single-tenant legacy surface; delegates to group 0) -----
  /// The process receiving deliveries (caller owns it and calls on_start).
  void attach(Process& process) { tenant_attach(0, process); }
  void bind_transport(SendFn send) { send_ = std::move(send); }
  /// Meter the future-epoch buffer through the party's ResourceBudget
  /// (not owned).  Without one, only the max_future count bound applies.
  void set_budget(ResourceBudget* budget) { tenant_set_budget(0, budget); }
  /// Batched transport entry; preferred over the per-payload SendFn when
  /// bound (the per-payload form remains the single-tenant fallback).
  void bind_transport_batched(SendManyFn send_many) { send_many_ = std::move(send_many); }
  void set_persist(PersistFn persist) { tenant_set_persist(0, std::move(persist)); }

  /// Attach the crypto work pool (not owned; may be shared machine-wide
  /// by several hosts — notify hooks are multicast).  poll() drains
  /// finished verification jobs on the protocol thread — completions
  /// re-enter the protocol as ordinary self-messages — and the pool's
  /// notify hook is pointed at the inbox condition variable so
  /// run_until() wakes for verdicts as promptly as for network traffic.
  void set_work_pool(common::WorkPool* pool);

  /// Attach the protocol executor pool (not owned; may be shared
  /// machine-wide — notify hooks are multicast; also hand it to each
  /// Party via Party::set_executors).  The node only wires the pool's
  /// notify hook to the inbox condition variable, so run_until() wakes
  /// when executor-side work changes the done() condition or buffers
  /// outbound sends for the pump to flush.
  void set_executors(common::ExecutorPool* pool);

  /// Transport-side entry (any thread): route by group id, decode and
  /// enqueue one payload.  The view is only read during the call (the
  /// decoded Message owns its bytes), so transports can pass slices of
  /// their receive buffers — the zero-copy path from a BATCH super-frame
  /// to the inbox.  Malformed payloads from an authenticated peer, and
  /// payloads stamped with a group this host does not run, are counted
  /// and dropped — Byzantine input must not crash the node.
  void on_transport_receive(int from, std::uint32_t group, BytesView payload);
  /// Pre-v4 entry: group 0.
  void on_transport_receive(int from, BytesView payload) {
    on_transport_receive(from, 0, payload);
  }

  // --- membership epochs (group 0; per-group via GroupEndpoint) ---------
  /// Current epoch; payloads stamped below it are rejected, payloads one
  /// ahead are buffered (bounded), anything further is dropped.
  [[nodiscard]] std::uint32_t epoch() const { return tenant_epoch(0); }
  /// Move to `epoch` (monotonic; any thread).  Buffered future-epoch
  /// messages that now match are replayed into the inbox in arrival
  /// order; anything older is discarded.
  void advance_epoch(std::uint32_t epoch) { tenant_advance_epoch(0, epoch); }

  // --- protocol-thread pump --------------------------------------------
  /// Fire due timers, dispatch every queued message to its tenant, then
  /// flush buffered outbound payloads to the transport (batched per
  /// peer, all tenants coalesced).  Returns messages dispatched.
  std::size_t poll();

  /// Pump until `done()` or `timeout_ms` elapses; sleeps on the inbox
  /// condition variable between batches.  Returns done()'s final value.
  /// With executors attached, done() runs on the pump thread while
  /// handlers run on executor threads — it must read atomics (or
  /// otherwise synchronized state), not raw protocol fields.
  bool run_until(const std::function<bool()>& done, std::uint64_t timeout_ms);

  struct Stats {
    std::uint64_t dispatched = 0;      ///< messages handed to a process
    std::uint64_t self_messages = 0;   ///< local submits looped back
    std::uint64_t dropped_inbox = 0;   ///< inbox quota overflow (oldest dropped)
    std::uint64_t malformed = 0;       ///< undecodable transport payloads
    std::uint64_t unknown_group = 0;   ///< payloads for a group not hosted here
    std::uint64_t outbound_flushes = 0;  ///< per-peer batches handed to the transport
    std::uint64_t outbound_payloads = 0; ///< payloads inside those batches
    std::uint64_t epoch_stale = 0;     ///< payloads from a past (or far-future) epoch
    std::uint64_t epoch_buffered = 0;  ///< next-epoch payloads parked for advance_epoch
    std::uint64_t epoch_dropped = 0;   ///< future buffer overflow / budget rejections
  };
  [[nodiscard]] Stats stats() const;

  // --- wire form of a Message over the transport -----------------------
  /// [u32 epoch][str tag][bytes payload] — the epoch is the payload-level
  /// membership fence; the group id is NOT in here — it rides the frame
  /// record (framing.hpp), where the transport can route without
  /// decoding protocol payloads.
  static Bytes encode_payload(const Message& message, std::uint32_t epoch = 0);
  /// Throws ProtocolError on malformed input.  `epoch_out`, when non-null,
  /// receives the sender's stamped epoch.
  static Message decode_payload(int from, int to, BytesView payload,
                                std::uint32_t* epoch_out = nullptr);

 private:
  struct FutureMessage {
    Message message;
    std::uint32_t epoch = 0;
    std::size_t cost = 0;  ///< bytes charged against the tenant's budget
  };

  /// One hosted group.  Pointer-stable (owned via unique_ptr in a map, no
  /// erase), so inbox entries can carry a raw Tenant*.  epoch/future are
  /// guarded by the host's mutex_; process/persist/budget are wiring-phase
  /// fields read without the lock on the pump path.
  struct Tenant {
    std::uint32_t gid = 0;
    Process* process = nullptr;
    PersistFn persist;
    ResourceBudget* budget = nullptr;
    std::uint32_t epoch = 0;
    std::deque<FutureMessage> future;  ///< next-epoch traffic, arrival order
    std::unique_ptr<GroupEndpoint> endpoint;
  };

  struct InboxEntry {
    Tenant* tenant = nullptr;
    Message message;
  };

  // GroupEndpoint back-ends.
  void submit_group(std::uint32_t gid, Message message);
  void tenant_attach(std::uint32_t gid, Process& process);
  void tenant_set_persist(std::uint32_t gid, PersistFn persist);
  void tenant_set_budget(std::uint32_t gid, ResourceBudget* budget);
  [[nodiscard]] std::uint32_t tenant_epoch(std::uint32_t gid) const;
  void tenant_advance_epoch(std::uint32_t gid, std::uint32_t epoch);

  [[nodiscard]] Tenant& tenant(std::uint32_t gid);        ///< must exist
  [[nodiscard]] const Tenant& tenant(std::uint32_t gid) const;
  void enqueue_inbound(Tenant& owner, Message message);
  void flush_outbound();

  Config config_;
  SendFn send_;
  SendManyFn send_many_;
  common::WorkPool* work_pool_ = nullptr;
  common::ExecutorPool* executors_ = nullptr;
  TraceLog* log_ = nullptr;
  std::chrono::steady_clock::time_point start_;

  /// Guards wheel_: timers are scheduled from executor threads while the
  /// pump advances the wheel.  Recursive because firing callbacks (held
  /// lock) may re-schedule from the same thread in sequential mode.
  mutable std::recursive_mutex timer_mutex_;
  TimerWheel wheel_;
  std::uint64_t next_id_ = 1;  ///< guarded by mutex_

  mutable std::mutex mutex_;
  std::condition_variable inbox_cv_;
  std::deque<InboxEntry> inbox_;
  std::vector<std::deque<GroupPayload>> outbox_;  ///< per peer, flushed by the pump
  Stats stats_;

  /// Hosted groups; group 0 created in the constructor.  Guarded by
  /// mutex_ for lookup; entries are never erased, so Tenant* stays valid.
  std::map<std::uint32_t, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace sintra::net::transport
