// NetworkedNode — the Network implementation that runs one Process (a
// Party and its whole protocol stack, unchanged) over a real transport.
//
// The adapter owns the boundary between the transport's reactor thread
// and the protocol thread.  The transport delivers authenticated payloads
// on its own thread; on_transport_receive() decodes them into Messages
// and pushes them into a bounded inbox (drop-oldest beyond the quota, so
// a flooding peer costs memory-bounded buffering, never the process).
// The protocol thread drains the inbox with poll()/run_until(); every
// message is handed to the optional persist hook (the write-ahead log)
// *before* dispatch, which is what makes crash recovery replayable.
//
// Outbound traffic is buffered per peer and flushed by the pump thread at
// the tail of every poll(): that is what lets protocol handlers running
// on executor threads (Party::set_executors) send without touching the
// transport — only the pump thread ever calls into it, which both keeps
// single-threaded transports (LoopbackHub) safe and hands the transport
// every payload of a pump cycle at once, the unit the coalesced BATCH
// super-frame amortizes one HMAC and one syscall over.
//
// Time here is the monotonic clock in milliseconds: Network::now() and
// schedule_timer() delays are wall-clock, unlike the simulator's delivery
// steps — protocol code sees the same interface either way (see
// net/network.hpp for why timers live on the substrate).
//
// Threading contract: poll() and run_until() belong to the pump
// (protocol) thread.  submit(), schedule_timer(), cancel_timer() may be
// called from the pump thread or from executor threads;
// on_transport_receive() from any thread.  stats() is thread-safe.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "common/executor.hpp"
#include "common/work_pool.hpp"
#include "net/budget.hpp"
#include "net/network.hpp"
#include "net/simulator.hpp"
#include "net/transport/timer_wheel.hpp"

namespace sintra::net::transport {

class NetworkedNode final : public Network {
 public:
  struct Config {
    int node_id = 0;
    int n = 0;                      ///< network endpoints (servers + clients)
    std::size_t max_inbox = 8192;   ///< bounded inbox; beyond: drop-oldest
    std::uint32_t epoch = 0;        ///< initial membership epoch
    /// Messages stamped one epoch ahead buffered until advance_epoch();
    /// beyond this many: drop-oldest (on top of any ResourceBudget cap).
    std::size_t max_future = 1024;
  };

  /// Hands an encoded payload to the transport for reliable delivery.
  using SendFn = std::function<void(int peer, Bytes payload)>;
  /// Batched form: every payload buffered for `peer` during one pump
  /// cycle, in order — the transport turns the whole vector into one
  /// coalesced super-frame.
  using SendManyFn = std::function<void(int peer, std::vector<Bytes> payloads)>;
  /// Write-ahead hook, called for every inbound message before dispatch.
  using PersistFn = std::function<void(const Message& message)>;

  explicit NetworkedNode(Config config);

  // --- Network (pump or executor threads) ------------------------------
  void submit(Message message) override;
  [[nodiscard]] int n() const override { return config_.n; }
  /// Monotonic milliseconds since construction.
  [[nodiscard]] std::uint64_t now() const override;
  TimerId schedule_timer(int owner, std::uint64_t delay_ms, TimerFn fn) override;
  void cancel_timer(TimerId id) override;
  [[nodiscard]] TraceLog* log() override { return log_; }
  void set_log(TraceLog* log) { log_ = log; }

  // --- wiring ----------------------------------------------------------
  /// The process receiving deliveries (caller owns it and calls on_start).
  void attach(Process& process) { process_ = &process; }
  void bind_transport(SendFn send) { send_ = std::move(send); }
  /// Meter the future-epoch buffer through the party's ResourceBudget
  /// (not owned).  Without one, only the max_future count bound applies.
  void set_budget(ResourceBudget* budget) { budget_ = budget; }
  /// Optional batched transport entry; preferred over the per-payload
  /// SendFn when bound (the per-payload form remains the fallback).
  void bind_transport_batched(SendManyFn send_many) { send_many_ = std::move(send_many); }
  void set_persist(PersistFn persist) { persist_ = std::move(persist); }

  /// Attach the crypto work pool (not owned).  poll() drains finished
  /// verification jobs on the protocol thread — completions re-enter the
  /// protocol as ordinary self-messages — and the pool's notify hook is
  /// pointed at the inbox condition variable so run_until() wakes for
  /// verdicts as promptly as for network traffic.
  void set_work_pool(common::WorkPool* pool);

  /// Attach the protocol executor pool (not owned; also hand it to the
  /// Party via Party::set_executors).  The node only wires the pool's
  /// notify hook to the inbox condition variable, so run_until() wakes
  /// when executor-side work changes the done() condition or buffers
  /// outbound sends for the pump to flush.
  void set_executors(common::ExecutorPool* pool);

  /// Transport-side entry (any thread): decode and enqueue one payload.
  /// The view is only read during the call (the decoded Message owns its
  /// bytes), so transports can pass slices of their receive buffers —
  /// the zero-copy path from a BATCH super-frame to the inbox.
  /// Malformed payloads from an authenticated peer are counted and
  /// dropped — Byzantine input must not crash the node.
  void on_transport_receive(int from, BytesView payload);

  // --- membership epochs ------------------------------------------------
  /// Current epoch; payloads stamped below it are rejected, payloads one
  /// ahead are buffered (bounded), anything further is dropped.
  [[nodiscard]] std::uint32_t epoch() const;
  /// Move to `epoch` (monotonic; any thread).  Buffered future-epoch
  /// messages that now match are replayed into the inbox in arrival
  /// order; anything older is discarded.
  void advance_epoch(std::uint32_t epoch);

  // --- protocol-thread pump --------------------------------------------
  /// Fire due timers, dispatch every queued message, then flush buffered
  /// outbound payloads to the transport (batched per peer).  Returns the
  /// number of messages dispatched.
  std::size_t poll();

  /// Pump until `done()` or `timeout_ms` elapses; sleeps on the inbox
  /// condition variable between batches.  Returns done()'s final value.
  /// With executors attached, done() runs on the pump thread while
  /// handlers run on executor threads — it must read atomics (or
  /// otherwise synchronized state), not raw protocol fields.
  bool run_until(const std::function<bool()>& done, std::uint64_t timeout_ms);

  struct Stats {
    std::uint64_t dispatched = 0;      ///< messages handed to the process
    std::uint64_t self_messages = 0;   ///< local submits looped back
    std::uint64_t dropped_inbox = 0;   ///< inbox quota overflow (oldest dropped)
    std::uint64_t malformed = 0;       ///< undecodable transport payloads
    std::uint64_t outbound_flushes = 0;  ///< per-peer batches handed to the transport
    std::uint64_t outbound_payloads = 0; ///< payloads inside those batches
    std::uint64_t epoch_stale = 0;     ///< payloads from a past (or far-future) epoch
    std::uint64_t epoch_buffered = 0;  ///< next-epoch payloads parked for advance_epoch
    std::uint64_t epoch_dropped = 0;   ///< future buffer overflow / budget rejections
  };
  [[nodiscard]] Stats stats() const;

  // --- wire form of a Message over the transport -----------------------
  /// [u32 epoch][str tag][bytes payload] — the epoch is the payload-level
  /// membership fence (the frame-level stamp lives in framing.hpp).
  static Bytes encode_payload(const Message& message, std::uint32_t epoch = 0);
  /// Throws ProtocolError on malformed input.  `epoch_out`, when non-null,
  /// receives the sender's stamped epoch.
  static Message decode_payload(int from, int to, BytesView payload,
                                std::uint32_t* epoch_out = nullptr);

 private:
  void enqueue_inbound(Message message);
  void flush_outbound();

  Config config_;
  Process* process_ = nullptr;
  SendFn send_;
  SendManyFn send_many_;
  PersistFn persist_;
  common::WorkPool* work_pool_ = nullptr;
  common::ExecutorPool* executors_ = nullptr;
  TraceLog* log_ = nullptr;
  std::chrono::steady_clock::time_point start_;

  /// Guards wheel_: timers are scheduled from executor threads while the
  /// pump advances the wheel.  Recursive because firing callbacks (held
  /// lock) may re-schedule from the same thread in sequential mode.
  mutable std::recursive_mutex timer_mutex_;
  TimerWheel wheel_;
  std::uint64_t next_id_ = 1;  ///< guarded by mutex_

  mutable std::mutex mutex_;
  std::condition_variable inbox_cv_;
  std::deque<Message> inbox_;
  std::vector<std::deque<Bytes>> outbox_;  ///< per peer, flushed by the pump
  Stats stats_;

  // Membership epoch state (guarded by mutex_).
  std::uint32_t epoch_ = 0;
  struct FutureMessage {
    Message message;
    std::uint32_t epoch = 0;
    std::size_t cost = 0;  ///< bytes charged against the budget
  };
  std::deque<FutureMessage> future_;  ///< next-epoch traffic, arrival order
  ResourceBudget* budget_ = nullptr;
};

}  // namespace sintra::net::transport
