// Per-peer reliable delivery state machine: sequence numbers, cumulative
// acks, retransmission across reconnects, bounded queues.
//
// One ReliableLink instance lives at each end of a directed payload flow
// (node i keeps one per peer j, handling both i→j sending and j→i
// receiving).  It is pure state — no sockets, no clock — so the same
// machine runs under the real TCP transport, the deterministic loopback
// transport, and the unit tests.
//
// Sender side: enqueue() assigns consecutive sequence numbers; frames are
// retained until cumulatively acked.  On reconnect the peer's HELLO
// carries its receive cursor and everything at or above it is retransmitted
// — at-least-once delivery across connection loss.  The outbound queue is
// bounded: past `max_outbound` retained frames the oldest is dropped and
// the "base" floor advances (graceful degradation when a peer is
// unreachable for long or a Byzantine peer refuses to ack; the receiver
// observes the gap explicitly instead of the process exhausting memory).
//
// Receiver side: in-order delivery with a bounded reorder window and
// duplicate suppression by sequence number.  Within one process lifetime
// this gives the protocol layer exactly-once per link; after a crash the
// cursor resets and redelivery is the at-least-once the PR-2 idempotent
// protocol layer dedups — that composition, not the link alone, is the
// end-to-end exactly-once story.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/bytes.hpp"

namespace sintra::net::transport {

/// A payload stamped with the shard (tenant group) it belongs to.  Group
/// ids ride the wire per record (framing wire v4) so one host can carry
/// many independent SINTRA groups over one reliable link; single-tenant
/// callers use group 0 throughout.
struct GroupPayload {
  std::uint32_t group = 0;
  Bytes payload;
};

struct LinkConfig {
  std::size_t max_outbound = 4096;   ///< retained unacked frames; beyond: drop-oldest
  std::size_t reorder_window = 512;  ///< out-of-order frames buffered at the receiver
  std::size_t ack_every = 16;        ///< request an explicit ack after this many deliveries
};

class ReliableLink {
 public:
  /// A DATA frame to put on the wire (ack is piggybacked by the caller
  /// from recv_cursor()).
  struct OutFrame {
    std::uint64_t seq = 0;
    std::uint64_t base = 0;  ///< lowest retained seq (quota gap floor)
    std::uint32_t group = 0; ///< shard stamp carried per record on the wire
    Bytes payload;
  };

  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t sent = 0;             ///< frames handed to the wire (incl. resends)
    std::uint64_t retransmitted = 0;    ///< of `sent`, how many were resends
    std::uint64_t first_transmissions = 0;  ///< of `sent`, how many were first sends
    std::uint64_t delivered = 0;        ///< payloads handed up, exactly once, in order
    std::uint64_t duplicates = 0;       ///< already-delivered seqs discarded
    std::uint64_t reordered = 0;        ///< frames parked in the reorder window
    std::uint64_t out_of_window = 0;    ///< frames beyond the window, discarded
    std::uint64_t dropped_outbound = 0; ///< quota overflow: oldest frames dropped
    std::uint64_t skipped_inbound = 0;  ///< seqs lost to the peer's quota floor
  };

  explicit ReliableLink(LinkConfig config = {}) : config_(config) {}

  // --- sender side ---------------------------------------------------

  /// Queue a payload for shard `group`; returns its sequence number.  May
  /// evict the oldest retained frame when the quota is exceeded.  Sequence
  /// numbers are link-level (shared by all groups on the link): the link
  /// is a property of the machine pair, not of any one tenant.
  std::uint64_t enqueue(Bytes payload, std::uint32_t group = 0);

  /// Frames to transmit now (new traffic plus anything rewound for
  /// retransmission).  Empty while disconnected.
  [[nodiscard]] std::vector<OutFrame> take_sendable();

  /// Cumulative ack from the peer: every seq < `cumulative` is delivered;
  /// the retained prefix is released.
  void on_ack(std::uint64_t cumulative);

  /// Rewind the send cursor so every retained frame goes out again (used
  /// after a reconnect handshake and by retransmit timers on lossy
  /// substrates).
  void mark_all_for_retransmit();

  // --- connection lifecycle ------------------------------------------

  /// Handshake complete; `peer_recv_cursor` is the peer's receive
  /// progress from its HELLO.  Releases acked frames, rewinds the rest.
  void on_connected(std::uint64_t peer_recv_cursor);
  void on_disconnected() { connected_ = false; }
  [[nodiscard]] bool connected() const { return connected_; }

  // --- receiver side -------------------------------------------------

  struct Incoming {
    std::vector<GroupPayload> deliver;  ///< in-order payloads for the protocol layer
    bool ack_now = false;               ///< send an explicit ack immediately
  };

  /// Process a received DATA frame (already authenticated).
  Incoming on_data(std::uint64_t seq, std::uint64_t base, Bytes payload,
                   std::uint32_t group = 0);

  struct FastPath {
    bool taken = false;    ///< state advanced; caller delivers its own view
    bool ack_now = false;  ///< send an explicit ack immediately
  };

  /// Zero-copy receive fast path for the common case: strictly in-order
  /// arrival (seq == recv_cursor), no quota gap, empty reorder window.
  /// On taken=true the cursor and stats have advanced and the caller
  /// hands its (unowned) payload view straight up — no Bytes copy is ever
  /// made.  On taken=false no state changed; run on_data() with an owning
  /// copy instead.
  FastPath accept_inorder(std::uint64_t seq, std::uint64_t base);

  /// Cumulative receive progress: every seq < cursor was delivered (or
  /// explicitly skipped past a quota gap).  This is the ack value and the
  /// HELLO recv_cursor.
  [[nodiscard]] std::uint64_t recv_cursor() const { return recv_next_; }

  /// True when deliveries since the last mark_ack_sent() await an ack.
  [[nodiscard]] bool ack_pending() const { return unacked_deliveries_ > 0; }
  void mark_ack_sent() { unacked_deliveries_ = 0; }

  [[nodiscard]] std::size_t retained() const { return outbound_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  LinkConfig config_;
  Stats stats_;
  bool connected_ = false;

  // Sender: outbound_[k] carries seq base_seq_ + k.
  std::deque<GroupPayload> outbound_;
  std::uint64_t base_seq_ = 0;  ///< seq of outbound_.front()
  std::uint64_t next_seq_ = 0;  ///< seq the next enqueue gets
  std::uint64_t send_from_ = 0; ///< next seq to hand to the wire
  std::uint64_t send_cursor_high_ = 0;  ///< highest seq ever put on a wire

  // Receiver.
  std::uint64_t recv_next_ = 0;
  std::map<std::uint64_t, GroupPayload> reorder_;
  std::size_t unacked_deliveries_ = 0;
};

}  // namespace sintra::net::transport
