// Asynchronous TCP transport with authenticated links, heartbeats,
// reconnection with capped exponential backoff, and ack-based
// retransmission (one ReliableLink per peer).
//
// Topology: every node listens; for each pair {i, j} the higher id dials
// the lower (deterministic, so exactly one connection per pair and a
// restarted node knows which direction to re-establish).  A connection
// starts with a HELLO exchange: each side's HELLO carries its node id, a
// fresh nonce and its cumulative receive cursor, MAC'd under the pairwise
// link key dealt by the trusted dealer (crypto::derive_link_key) — this is
// the paper's authenticated-links assumption made concrete.  All later
// frames are MAC'd under a session key bound to both nonces, so captured
// traffic cannot be replayed into another connection.
//
// Liveness: PING frames flow on idle links; a link silent for longer than
// `heartbeat_timeout_ms` is declared dead and torn down.  The dialing side
// then reconnects with exponential backoff (capped, with seeded jitter so
// a restarted cluster does not thundering-herd); the listening side simply
// accepts the redial.  On reconnect the HELLO cursors drive
// retransmission of everything unacked — at-least-once delivery that the
// idempotent protocol layer above dedups to exactly-once.
//
// Threading: one background reactor thread owns every socket and all link
// state.  send() and stats() are the only cross-thread entry points; both
// go through the loop's posted queue / a mutex.  The receive callback runs
// on the reactor thread — the NetworkedNode adapter hands it off to the
// protocol thread through its bounded inbox.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/transport/event_loop.hpp"
#include "net/transport/framing.hpp"
#include "net/transport/health.hpp"
#include "net/transport/link.hpp"

namespace sintra::net::transport {

class TcpTransport {
 public:
  struct Endpoint {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral (own slot only)
  };

  struct Config {
    int node_id = 0;
    std::vector<Endpoint> endpoints;  ///< one per node; [node_id] is the listen address
    std::vector<Bytes> link_keys;     ///< [peer] -> MAC key (self slot unused)
    std::uint64_t seed = 1;           ///< backoff jitter
    LinkConfig link;
    std::uint64_t heartbeat_interval_ms = 250;
    std::uint64_t heartbeat_timeout_ms = 2000;
    /// Accrual-style per-peer health (net/transport/health.hpp): the
    /// effective timeout adapts to each peer's observed arrival cadence,
    /// clamped to [heartbeat_timeout_ms, max_factor * heartbeat_timeout_ms]
    /// — it only ever *extends* the base timeout, so gray/slow peers stop
    /// flapping while dead peers are still torn down within the cap.
    AccrualHealth::Config health;
    std::uint64_t reconnect_min_ms = 25;
    std::uint64_t reconnect_max_ms = 1600;
    std::uint64_t ack_flush_ms = 20;  ///< delayed-ack latency bound
    /// Membership epoch stamped into HELLO and data frames.  A HELLO more
    /// than one epoch away is rejected at the handshake; data frames
    /// outside the one-epoch transition window are filtered (the link
    /// cursor still advances so retransmission never livelocks on them).
    std::uint32_t epoch = 0;
  };

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t payloads_delivered = 0;
    std::uint64_t connects = 0;       ///< successful handshakes (both sides)
    std::uint64_t disconnects = 0;    ///< torn-down established connections
    std::uint64_t auth_failures = 0;  ///< corrupt/unauthenticated streams
    std::uint64_t retransmitted = 0;  ///< link-level resent frames
    // Coalescing proof counters: a flush of k payloads costs
    // ceil(bytes / kMaxBatchBytes) BATCH frames and HMACs, not k, and
    // the whole outbuf drains through scatter-gather sendmsg calls.
    std::uint64_t batches_sent = 0;       ///< BATCH super-frames emitted
    std::uint64_t frames_coalesced = 0;   ///< payloads riding BATCH frames
    std::uint64_t hmacs_computed = 0;     ///< send-side HMACs (all frame types)
    std::uint64_t writev_calls = 0;       ///< sendmsg() syscalls issued
    /// Sweeps where a peer outlived the base heartbeat timeout only
    /// because its accrual health score extended the deadline.
    std::uint64_t health_extensions = 0;
    // Epoch fencing (membership reconfiguration).
    std::uint64_t epoch_rejects = 0;   ///< HELLOs from an incompatible epoch
    std::uint64_t epoch_filtered = 0;  ///< payloads dropped for a wrong epoch
  };

  /// `receive(from, group, payload)` runs on the reactor thread.  `group`
  /// is the wire-v4 shard stamp on the record (0 for single-tenant
  /// traffic).  The view is a slice of the connection's decode buffer,
  /// valid only during the call — receivers that keep the payload copy it
  /// (for NetworkedNode, the one copy into the owning Message).
  using ReceiveFn = std::function<void(int from, std::uint32_t group, BytesView payload)>;
  /// Pre-v4 receiver shape, still accepted for single-tenant callers; the
  /// group stamp is dropped on this path.
  using LegacyReceiveFn = std::function<void(int from, BytesView payload)>;

  TcpTransport(Config config, ReceiveFn receive);
  TcpTransport(Config config, LegacyReceiveFn receive);
  ~TcpTransport();
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Bind + listen, then start the reactor thread and dial lower-id peers.
  void start();
  /// Tear down every connection and join the reactor thread (idempotent).
  void stop();

  /// Queue `payload` for reliable delivery to `peer` (any thread),
  /// stamped with shard `group` (0 = single-tenant).  Multiple send()s
  /// posted before the reactor turns over coalesce into one BATCH frame
  /// (the enqueue tasks run first, a single deferred flush task runs
  /// after them).
  void send(int peer, Bytes payload, std::uint32_t group = 0);

  /// Queue a whole pump-cycle batch (any thread): every payload is
  /// enqueued and flushed as one unit — one BATCH super-frame, one HMAC,
  /// per kMaxBatchBytes of traffic.  Payloads for different groups
  /// coalesce into the same super-frame.
  void send_many(int peer, std::vector<GroupPayload> payloads);
  void send_many(int peer, std::vector<Bytes> payloads);

  /// Advance the membership epoch (any thread).  Subsequent frames carry
  /// the new epoch; established connections stay up — the one-epoch
  /// transition window in the frame filter covers peers that advance at
  /// slightly different times.
  void set_epoch(std::uint32_t epoch);

  /// The actually bound listen port (after start(); useful with port 0).
  [[nodiscard]] std::uint16_t listen_port() const { return listen_port_; }

  [[nodiscard]] Stats stats() const;

 private:
  struct Conn;
  struct Peer;

  // All private methods run on the reactor thread.
  void setup_listener();
  void on_accept_ready();
  void on_pending_readable(int fd);
  void dial(int peer);
  void schedule_redial(int peer);
  void on_dial_writable(int peer);
  void adopt_connection(int peer, std::shared_ptr<Conn> conn, const HelloBody& hello);
  void send_hello(Conn& conn, int peer);
  void drop_connection(int peer, bool redial);
  void close_conn(Conn& conn);
  void on_conn_event(int peer, std::uint32_t events);
  void handle_frame(int peer, FrameType type, BytesView body);
  void schedule_flush(int peer);
  void flush_link(int peer);
  void send_frame(int peer, FrameType type, BytesView body);
  /// False when the outbuf quota is exceeded — the caller must drop the
  /// connection (a peer that stopped reading is dead, not deferrable).
  [[nodiscard]] bool queue_bytes(Conn& conn, Bytes bytes);
  void try_write(int peer);
  void heartbeat_sweep();
  void send_ack(int peer);
  [[nodiscard]] bool i_dial(int peer) const { return config_.node_id > peer; }
  [[nodiscard]] const Bytes& link_key(int peer) const;
  /// Within one epoch of ours (the reconfiguration transition window).
  [[nodiscard]] bool epoch_compatible(std::uint32_t theirs) const {
    return theirs + 1 >= epoch_ && theirs <= epoch_ + 1;
  }

  Config config_;
  ReceiveFn receive_;
  EventLoop loop_;
  std::thread thread_;
  bool started_ = false;
  Rng rng_;

  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  std::uint32_t epoch_ = 0;  ///< reactor thread (set_epoch posts updates)

  std::vector<std::unique_ptr<Peer>> peers_;  ///< [peer id]; self slot empty
  /// Accepted connections whose HELLO has not arrived yet (fd -> conn).
  std::map<int, std::shared_ptr<Conn>> pending_accepts_;

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace sintra::net::transport
