// Deterministic in-process transport: the same frames, MACs and
// ReliableLink state machines as the TCP transport, but with every
// delivery decision made by a seeded Rng instead of kernel scheduling.
//
// The hub keeps one "wire" (a FIFO of encoded frames) per directed pair
// and one ReliableLink per (node, peer) — exactly the state TcpTransport
// keeps, minus sockets and threads.  step() pops one frame from a
// randomly picked wire and delivers it through the authenticating
// FrameDecoder; a FaultProfile (the FaultPolicy knob style from
// net/fault.hpp, x-in-1024 chances with hard budgets) can drop,
// duplicate or replay frames and tear whole pairs down, after which the
// cursor-exchange reconnect handshake drives retransmission.
//
// Because every fault is budget-bounded and links retain unacked frames,
// run_until_quiescent() terminates and the soak test can assert the
// end-to-end contract: every payload sent while the pair was not
// permanently severed arrives exactly once, in order, at the protocol
// layer — the property the real transport provides over a hostile
// network, checked here under a seed sweep.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "net/fault.hpp"
#include "net/transport/framing.hpp"
#include "net/transport/link.hpp"

namespace sintra::net::transport {

class LoopbackHub {
 public:
  /// Fault knobs, FaultPolicy-style: chances are "x in 1024" per
  /// opportunity, and every fault has a hard budget so runs quiesce.
  struct FaultProfile {
    std::uint32_t drop_chance = 0;       ///< per frame pop: frame lost in flight
    std::uint32_t duplicate_chance = 0;  ///< per frame pop: an extra copy re-queued
    std::uint32_t replay_chance = 0;     ///< per delivery: replay a captured frame
    std::size_t replay_budget = 64;      ///< total replayed frames per run
    std::uint32_t disconnect_chance = 0; ///< per delivery: tear the pair down
    std::uint64_t reconnect_after = 16;  ///< idle steps down before auto-reconnect
    int max_disconnects = 8;             ///< total injected disconnects per run

    static FaultProfile none() { return {}; }
    /// Lossy, duplicating, replaying, flapping network.
    static FaultProfile chaos() {
      FaultProfile p;
      p.drop_chance = 96;
      p.duplicate_chance = 96;
      p.replay_chance = 64;
      p.disconnect_chance = 24;
      p.reconnect_after = 12;
      p.max_disconnects = 6;
      return p;
    }
  };

  struct Stats {
    std::uint64_t delivered_frames = 0;
    std::uint64_t dropped_frames = 0;
    std::uint64_t duplicated_frames = 0;
    std::uint64_t replayed_frames = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t auth_failures = 0;  ///< corrupt streams (tears the pair down)
    // Partition-profile counters (set_partition_profile).
    std::uint64_t partition_splits = 0;  ///< pairs severed by the schedule
    std::uint64_t partition_heals = 0;   ///< pairs healed by the schedule
    std::uint64_t oneway_dropped = 0;    ///< frames lost to one-way link loss
    std::uint64_t gray_deferred = 0;     ///< scheduling picks that skipped gray peers
    // Coalescing proof counters: every flush of k payloads produces
    // ceil(k-payload-bytes / kMaxBatchBytes) BATCH super-frames — for
    // ordinary traffic, one frame and one HMAC however many payloads.
    std::uint64_t batches_sent = 0;        ///< BATCH super-frames emitted
    std::uint64_t coalesced_payloads = 0;  ///< payloads riding those frames
    std::uint64_t hmacs_computed = 0;      ///< send-side HMACs (all frame types)
  };

  /// `receive(from, group, payload)` runs synchronously inside step().
  /// `group` is the wire-v4 shard stamp the sender put on the record (0
  /// for single-tenant traffic).  The view is a slice of the decoded
  /// frame, valid only during the call — the zero-copy receive path
  /// (receivers that keep the payload copy it, which for a NetworkedNode
  /// is the one copy into the owning Message).
  using ReceiveFn = std::function<void(int from, std::uint32_t group, BytesView payload)>;
  /// Pre-v4 receiver shape, still accepted for single-tenant callers; the
  /// group stamp is dropped on this path.
  using LegacyReceiveFn = std::function<void(int from, BytesView payload)>;

  // (No default argument for `profile`: a nested class's member
  // initializers are not usable in default arguments of the enclosing
  // class, so the fault-free form is a delegating overload.)
  LoopbackHub(int n, std::uint64_t seed);
  LoopbackHub(int n, std::uint64_t seed, FaultProfile profile, LinkConfig link = {});

  void set_receiver(int node, ReceiveFn receive);
  void set_receiver(int node, LegacyReceiveFn receive);

  /// Drive a seeded partition / gray-failure schedule (net/fault.hpp):
  /// each step() advances the schedule one tick, severing and healing
  /// pairs, dropping frames on the one-way-lossy links and deprioritizing
  /// gray peers' outbound wires.  While the schedule has ticks left the
  /// hub reports progress, so run_until_quiescent() outlives the
  /// partition and drains the retransmit backlog after the final heal.
  void set_partition_profile(PartitionProfile profile);
  [[nodiscard]] std::uint64_t partition_step() const { return partition_step_; }

  /// Reliable-send a payload from `from` to `to` (like TcpTransport::send),
  /// stamped with shard `group` (0 = single-tenant).
  void send(int from, int to, Bytes payload, std::uint32_t group = 0);

  /// Enqueue a whole pump-cycle batch and flush once: all payloads ride
  /// one BATCH super-frame (one HMAC) per kMaxBatchBytes of traffic.
  /// Payloads for different groups coalesce into the same super-frame —
  /// sharding does not multiply the per-link HMAC or frame count.
  void send_many(int from, int to, std::vector<GroupPayload> payloads);
  void send_many(int from, int to, std::vector<Bytes> payloads);

  /// Deliver one frame picked at random (or progress a pending
  /// reconnect).  Returns false when nothing can make progress.
  bool step();

  /// Retransmit/ack pass: flush every connected link's sendable frames
  /// and any pending explicit acks onto the wires.
  void tick();

  /// step()/tick() until nothing moves.  Returns steps taken; gives up
  /// after `max_steps` (the caller asserts it stayed below the cap).
  std::size_t run_until_quiescent(std::size_t max_steps = 2'000'000);

  /// Tear down the pair {a,b}: in-flight frames are lost, links rewind.
  /// Reconnects only via connect() (manual) — injected disconnects use
  /// the profile's auto-reconnect countdown instead.
  void disconnect(int a, int b);
  /// Re-establish {a,b} with the cursor-exchange handshake, triggering
  /// retransmission of everything the other side has not delivered.
  void connect(int a, int b);
  [[nodiscard]] bool pair_connected(int a, int b) const;

  /// Push raw bytes onto the a→b wire, bypassing framing — an
  /// adversarial injection; the authenticating decoder must reject it.
  void inject_raw(int from, int to, Bytes bytes);

  [[nodiscard]] const ReliableLink& link(int node, int peer) const;
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] int n() const { return n_; }

 private:
  struct PairState {
    bool connected = true;
    std::uint64_t reconnect_in = 0;  ///< >0: auto-reconnect countdown (steps)
  };

  [[nodiscard]] std::size_t wire_index(int from, int to) const;
  [[nodiscard]] std::size_t pair_index(int a, int b) const;
  ReliableLink& link_mut(int node, int peer);
  void flush(int from, int to);
  void send_explicit_ack(int from, int to);
  void deliver_wire_front(int from, int to);
  void tear_down(int a, int b, std::uint64_t reconnect_in);

  int n_;
  Rng rng_;
  FaultProfile profile_;
  Stats stats_;
  std::vector<ReceiveFn> receivers_;
  std::vector<ReliableLink> links_;          ///< [node * n + peer]
  std::vector<std::deque<Bytes>> wires_;     ///< [from * n + to], encoded frames
  std::vector<FrameDecoder> decoders_;       ///< [from * n + to], reset on reconnect
  std::vector<Bytes> pair_keys_;             ///< [pair_index], symmetric MAC keys
  std::vector<PairState> pairs_;             ///< [pair_index]
  std::deque<Bytes> history_;                ///< captured frames for replay faults
  std::deque<std::size_t> history_wire_;     ///< wire each captured frame rode on
  std::uint64_t replays_injected_ = 0;
  int disconnects_injected_ = 0;
  std::optional<PartitionProfile> partition_;
  std::uint64_t partition_step_ = 0;         ///< schedule clock (ticks per step())
  std::vector<bool> partition_severed_;      ///< [pair_index] held down by schedule
};

}  // namespace sintra::net::transport
