#include "net/transport/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <array>

#include "common/assert.hpp"

namespace sintra::net::transport {

EventLoop::EventLoop() : start_(std::chrono::steady_clock::now()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  SINTRA_INVARIANT(epoll_fd_ >= 0, "event_loop: epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  SINTRA_INVARIANT(wake_fd_ >= 0, "event_loop: eventfd failed");
  add_fd(wake_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t count = 0;
    // Drain the wakeup counter; posted work runs in the main loop body.
    while (::read(wake_fd_, &count, sizeof(count)) > 0) {
    }
  });
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  SINTRA_INVARIANT(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                   "event_loop: EPOLL_CTL_ADD failed");
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  SINTRA_INVARIANT(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
                   "event_loop: EPOLL_CTL_MOD failed");
}

void EventLoop::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

EventLoop::TimerId EventLoop::schedule_after(std::uint64_t delay_ms, std::function<void()> fn) {
  return wheel_.schedule_at(std::max(now_ms() + delay_ms, wheel_.now() + 1), std::move(fn));
}

void EventLoop::cancel_timer(TimerId id) { wheel_.cancel(id); }

std::uint64_t EventLoop::now_ms() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now() - start_)
                                        .count());
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::run() {
  std::array<epoll_event, 64> events{};
  while (!stop_.load(std::memory_order_acquire)) {
    drain_posted();
    wheel_.advance_to(now_ms());
    int timeout_ms = 100;
    if (const auto next = wheel_.next_deadline()) {
      const std::uint64_t now = now_ms();
      timeout_ms = *next <= now ? 0
                                : static_cast<int>(std::min<std::uint64_t>(*next - now, 100));
    }
    const int ready = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                                   timeout_ms);
    for (int i = 0; i < ready; ++i) {
      auto it = handlers_.find(events[static_cast<std::size_t>(i)].data.fd);
      if (it == handlers_.end()) continue;  // removed by an earlier handler
      auto handler = it->second;            // keep alive across the call
      (*handler)(events[static_cast<std::size_t>(i)].events);
    }
    wheel_.advance_to(now_ms());
    drain_posted();
  }
}

}  // namespace sintra::net::transport
