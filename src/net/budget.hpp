// Resource governance for a party's buffered protocol state (issue 4).
//
// The trust assumption only protects safety: a Byzantine minority can
// still try to exhaust a correct party's memory by spraying messages for
// far-future rounds/views/epochs and never-completed instances, all of
// which honest parties must buffer *somewhere* to stay live.  Every such
// buffer in the stack now meters its bytes through the host Party's
// ResourceBudget, keyed by (charging peer, owning instance tag):
//
//   * per-peer cap     — one corrupted peer cannot consume another peer's
//                        headroom; flooding self-limits to the attacker's
//                        own allowance while honest traffic flows;
//   * per-instance cap — one runaway instance cannot starve the rest of
//                        the stack;
//   * total cap        — the party's overall buffered-bytes bound, the
//                        number the memory-budget tests assert against.
//
// Charges are grouped by instance tag so an instance being garbage-
// collected (or a whole retired tag subtree) releases everything it held
// with one release_instance() call.  The budget never evicts anything
// itself — eviction policy lives with the owning buffer, which knows which
// entries are first-per-(party, role, slot) and which are farthest-future;
// the budget only answers "may these bytes be retained" and keeps the
// counters (peak, rejections, evictions) the overload tests snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace sintra::net {

/// Caps for a party's buffered bytes.  Defaults are deliberately generous
/// (honest traffic in the simulations is orders of magnitude below them);
/// overload tests configure tight caps explicitly via Party::set_budget.
struct BudgetConfig {
  std::size_t per_peer_cap = 1 << 20;      ///< bytes one peer may occupy
  std::size_t per_instance_cap = 2 << 20;  ///< bytes one instance tag may hold
  std::size_t total_cap = 8 << 20;         ///< bytes across the whole party

  static BudgetConfig unlimited() {
    BudgetConfig c;
    c.per_peer_cap = c.per_instance_cap = c.total_cap = static_cast<std::size_t>(-1);
    return c;
  }
};

class ResourceBudget {
 public:
  ResourceBudget() = default;
  explicit ResourceBudget(BudgetConfig config) : config_(config) {}

  void configure(BudgetConfig config) { config_ = config; }
  [[nodiscard]] const BudgetConfig& config() const { return config_; }

  // All accounting below is internally synchronized: under an executor
  // pool, handlers on different executor threads charge and release
  // concurrently (the charge maps are the one piece of state every
  // instance tree shares).

  /// Attempt to account `bytes` buffered on behalf of `peer` under
  /// `instance` (a protocol tag).  False — with no state change — when any
  /// cap would be exceeded; the caller then evicts or drops.
  bool try_charge(int peer, const std::string& instance, std::size_t bytes);

  /// Return previously charged bytes (buffer entry consumed or evicted).
  void release(int peer, const std::string& instance, std::size_t bytes);

  /// Drop every charge under `prefix`: charges whose instance tag equals
  /// `prefix` or lives in its tag subtree ("abc/3" covers "abc/3/vba/...").
  /// Used by instance GC and tag retirement.
  void release_instance(const std::string& prefix);

  /// Record an eviction decision made by an owning buffer (for the tests'
  /// "the attack actually hit the governance" assertions).
  void note_eviction() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++evictions_;
  }

  [[nodiscard]] std::size_t total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }
  [[nodiscard]] std::size_t peak_total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_;
  }
  [[nodiscard]] std::size_t peer_total(int peer) const;
  /// Bytes charged under `prefix` (same subtree semantics as
  /// release_instance).
  [[nodiscard]] std::size_t instance_total(const std::string& prefix) const;
  [[nodiscard]] std::uint64_t rejected() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
  }
  [[nodiscard]] std::uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
  }

 private:
  [[nodiscard]] static bool in_subtree(const std::string& key, const std::string& prefix);
  [[nodiscard]] std::size_t peer_total_unlocked(int peer) const;

  mutable std::mutex mutex_;

  BudgetConfig config_;
  /// instance tag -> (peer -> bytes); exact tags, subtree queries walk.
  std::map<std::string, std::map<int, std::size_t>> charges_;
  std::map<std::string, std::size_t> instance_totals_;
  std::map<int, std::size_t> peer_totals_;
  std::size_t total_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace sintra::net
