#include "net/party.hpp"

#include "common/assert.hpp"

namespace sintra::net {
namespace {

/// Caps on the handler-less buffer's *shape* (its bytes are governed by
/// the ResourceBudget): a flood of minimum-size messages for many distinct
/// bogus tags stays bounded in map entries, not only in bytes.
constexpr std::size_t kMaxBufferedPerTag = 256;
constexpr std::size_t kMaxBufferedTags = 4096;
/// Retired-tag tombstones kept (FIFO).  Old tombstones expiring is safe:
/// traffic for a long-retired tag is then buffered again, budget-bounded,
/// and never re-dispatched (the instance's handler is gone for good).
constexpr std::size_t kMaxRetired = 4096;

}  // namespace

Party::Party(Network& network, int id, adversary::Deployment deployment, std::uint64_t seed)
    : network_(network), id_(id), deployment_(std::move(deployment)),
      seed_(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(id + 1))),
      rng_(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(id + 1))) {}

Party::DispatchCtx& Party::ctx() {
  if (!concurrent()) return main_ctx_;
  // One context per (thread, party).  Entries are value-semantic and tiny;
  // they persist until thread exit, which caps the map at parties-this-
  // thread-ever-dispatched-for.  A recycled map slot (new Party at an old
  // address) is detected through rng_owner_seed and reseeded.
  static thread_local std::map<const Party*, DispatchCtx> per_thread;
  return per_thread[this];
}

Rng& Party::rng() {
  if (!concurrent()) return rng_;
  DispatchCtx& c = ctx();
  if (!c.rng.has_value() || c.rng_owner_seed != seed_) {
    // Unique slot per (thread, party) stream: two executor threads drawing
    // nonces concurrently must never share a stream (nonce reuse would
    // break every sigma protocol in the stack), and distinct slots give
    // distinct seeds by construction.
    const std::uint64_t slot = rng_slots_.fetch_add(1, std::memory_order_relaxed) + 1;
    c.rng.emplace(seed_ + 0x9e3779b97f4a7c15ULL * slot);
    c.rng_owner_seed = seed_;
  }
  return *c.rng;
}

Network::TimerId Party::schedule_timer(std::uint64_t delay, Network::TimerFn fn) {
  if (concurrent()) {
    // The wheel fires on the pump thread; re-post the callback to the
    // executor of the instance tree that armed it so it serializes with
    // that tree's message handlers.  The scheduling tree is the one being
    // dispatched right now (or the with_instance scope during stack
    // construction).
    std::string root(ctx().current_root);
    common::ExecutorPool* pool = executors_;
    const std::uint64_t group = lane_group_;
    auto wrapped = [pool, group, root = std::move(root), fn = std::move(fn)]() {
      pool->post(pool->executor_for(group, root), fn);
    };
    return network_.schedule_timer(id_, delay, std::move(wrapped));
  }
  return network_.schedule_timer(id_, delay, std::move(fn));
}

void Party::with_instance(std::string_view root, const std::function<void()>& fn) {
  DispatchCtx& c = ctx();
  std::string previous = std::move(c.current_root);
  c.current_root.assign(root);
  fn();
  c.current_root = std::move(previous);
}

void Party::send(int to, const std::string& tag, Bytes payload) {
  Message message;
  message.from = id_;
  message.to = to;
  message.tag = tag;
  message.payload = std::move(payload);
  if (to == id_) {
    DispatchCtx& c = ctx();
    if (c.dispatching) {
      // In-handler self-message: runs on this thread, in order, before
      // control returns — same-instance-tree by construction.
      c.local.push_back(std::move(message));
      return;
    }
    if (concurrent()) {
      // External self-input under executors: loop it through the network
      // inbox so the pump thread WAL-logs it in arrival order and routes
      // it to the owning executor like any other message.
      network_.submit(std::move(message));
      return;
    }
    // A self-message from outside any handler is an external input (an
    // application-level submit).  Replay cannot regenerate it, so it goes
    // into the write-ahead log; self-messages produced *inside* handlers
    // are deterministically re-created when the triggering message is
    // replayed and must stay out of the log or they would run twice.
    if (wal_enabled_) wal_.push_back(message);
    c.local.push_back(std::move(message));
    drain_local();
    return;
  }
  network_.submit(std::move(message));
}

void Party::broadcast(const std::string& tag, const Bytes& payload) {
  for (int to = 0; to < n(); ++to) send(to, tag, Bytes(payload));
}

void Party::offload(const std::string& tag, common::WorkPool::Job job) {
  if (work_pool_ == nullptr || work_pool_->sequential()) {
    send(id_, tag, common::WorkPool::run_guarded(job));
    return;
  }
  work_pool_->submit(std::move(job),
                     [this, tag](Bytes result) { send(id_, tag, std::move(result)); });
}

void Party::register_handler(const std::string& tag, Handler handler) {
  DispatchCtx& c = ctx();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    SINTRA_INVARIANT(!handlers_.contains(tag), "Party: duplicate handler tag " + tag);
    handlers_.emplace(tag, std::move(handler));
    auto buffered = buffered_.find(tag);
    if (buffered != buffered_.end()) {
      for (Message& message : buffered->second) {
        // Leaving the handler-less buffer: the owning protocol re-charges
        // if it parks the message again.
        budget_.release(message.from, message.tag, buffered_cost(message));
        c.local.push_back(std::move(message));
      }
      buffered_.erase(buffered);
    }
  }
  // Re-dispatch happens on the registering thread — for a sub-instance
  // created inside a handler that is the owning tree's executor, so
  // ordering within the tree is preserved.
  if (!c.dispatching) drain_local();
}

void Party::unregister_handler(const std::string& tag) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  handlers_.erase(tag);
}

void Party::retire_tag(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (retired_.insert(prefix).second) {
    retired_order_.push_back(prefix);
    if (retired_order_.size() > kMaxRetired) {
      retired_.erase(retired_order_.front());
      retired_order_.pop_front();
    }
  }
  const auto in_subtree = [&prefix](const std::string& tag) {
    return tag.size() >= prefix.size() && tag.compare(0, prefix.size(), prefix) == 0 &&
           (tag.size() == prefix.size() || tag[prefix.size()] == '/');
  };
  for (auto it = buffered_.lower_bound(prefix);
       it != buffered_.end() && it->first.compare(0, prefix.size(), prefix) == 0;) {
    if (in_subtree(it->first)) {
      it = buffered_.erase(it);
    } else {
      ++it;
    }
  }
  // Any leftover charges under the subtree (buffered traffic, stragglers
  // an instance missed) go with it.
  budget_.release_instance(prefix);
  // WAL compaction: replaying traffic for a retired tag would only be
  // dropped again, so the entries are dead weight in every snapshot.
  std::erase_if(wal_, [&](const Message& message) { return in_subtree(message.tag); });
}

bool Party::is_retired_unlocked(std::string_view tag) const {
  if (retired_.empty()) return false;
  for (std::size_t pos = 0; pos <= tag.size(); ++pos) {
    if (pos == tag.size() || tag[pos] == '/') {
      if (retired_.contains(tag.substr(0, pos))) return true;
    }
  }
  return false;
}

bool Party::is_retired(std::string_view tag) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return is_retired_unlocked(tag);
}

void Party::register_checkpoint(const std::string& prefix, CheckpointSave save,
                                CheckpointLoad load) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  SINTRA_INVARIANT(!checkpoints_.contains(prefix),
                   "Party: duplicate checkpoint prefix " + prefix);
  checkpoints_.emplace(prefix, Checkpoint{std::move(save), std::move(load)});
}

void Party::unregister_checkpoint(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  checkpoints_.erase(prefix);
}

void Party::prune_wal(const std::string& tag,
                      const std::function<bool(const Message&)>& prunable) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  std::erase_if(wal_,
                [&](const Message& message) { return message.tag == tag && prunable(message); });
}

void Party::on_message(const Message& message) {
  // Persist before processing — a crash after dispatch must not lose the
  // message (at-least-once: a redelivery after restore is harmless, a
  // loss is not).  Under executors this still runs on the single pump
  // thread, so the WAL records the one true arrival order and replay —
  // always inline and single-threaded — is bit-exact however many
  // executors the original run used.
  if (wal_enabled_) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    wal_.push_back(message);
  }
  if (concurrent()) {
    executors_->post(executors_->executor_for(lane_group_, message.tag),
                     [this, message]() {
                       dispatch(message);
                       drain_local();
                     });
    return;
  }
  dispatch(message);
  drain_local();
}

void Party::begin_epoch(std::uint32_t epoch, std::vector<std::int32_t> members) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (epoch <= epoch_) return;  // replay / at-least-once re-entry
  epoch_ = epoch;
  epoch_log_.push_back({epoch, std::move(members)});
}

Bytes Party::snapshot() const {
  // Snapshots are taken from a quiesced stack; the lock is released around
  // the save() callbacks because they run protocol code that may call back
  // into locking Party methods.
  std::vector<std::pair<std::string, CheckpointSave>> savers;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    savers.reserve(checkpoints_.size());
    for (const auto& [prefix, checkpoint] : checkpoints_) {
      savers.emplace_back(prefix, checkpoint.save);
    }
  }
  Writer w;
  w.u8(3);  // snapshot version (v3: membership epoch history)
  w.u32(static_cast<std::uint32_t>(savers.size()));
  for (const auto& [prefix, save] : savers) {
    w.str(prefix);
    w.bytes(save());
  }
  std::lock_guard<std::mutex> lock(state_mutex_);
  w.u32(epoch_);
  w.vec(epoch_log_, [](Writer& out, const EpochRecord& record) {
    out.u32(record.epoch);
    out.vec(record.members,
            [](Writer& inner, std::int32_t m) { inner.u32(static_cast<std::uint32_t>(m)); });
  });
  w.u32(static_cast<std::uint32_t>(retired_order_.size()));
  for (const std::string& tag : retired_order_) w.str(tag);
  w.vec(wal_, [](Writer& out, const Message& message) {
    out.u32(static_cast<std::uint32_t>(message.from));
    out.str(message.tag);
    out.bytes(message.payload);
  });
  return w.take();
}

void Party::restore(BytesView persisted) {
  Reader r(persisted);
  const auto version = r.u8();
  // v2 snapshots predate membership epochs: restored as epoch 0 with an
  // empty history, which is exactly what they were.
  SINTRA_INVARIANT(version == 2 || version == 3, "Party: unknown snapshot version");
  std::vector<std::pair<std::string, Bytes>> blobs;
  const auto checkpoint_count = r.u32();
  blobs.reserve(checkpoint_count);
  for (std::uint32_t i = 0; i < checkpoint_count; ++i) {
    std::string prefix = r.str();
    blobs.emplace_back(std::move(prefix), r.bytes());
  }
  if (version >= 3) {
    const std::uint32_t epoch = r.u32();
    std::vector<EpochRecord> log = r.vec<EpochRecord>([](Reader& in) {
      EpochRecord record;
      record.epoch = in.u32();
      record.members = in.vec<std::int32_t>(
          [](Reader& inner) { return static_cast<std::int32_t>(inner.u32()); });
      return record;
    });
    std::lock_guard<std::mutex> lock(state_mutex_);
    epoch_ = epoch;
    epoch_log_ = std::move(log);
  }
  const auto retired_count = r.u32();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (std::uint32_t i = 0; i < retired_count; ++i) {
      std::string tag = r.str();
      if (retired_.insert(tag).second) retired_order_.push_back(std::move(tag));
    }
  }
  std::vector<Message> replay = r.vec<Message>([this](Reader& in) {
    Message message;
    message.from = static_cast<int>(in.u32());
    message.to = id_;
    message.tag = in.str();
    message.payload = in.bytes();
    return message;
  });
  r.expect_done();
  // Load checkpoints, then replay the (compacted) log suffix through the
  // rebuilt handlers with logging off: the replayed messages are already
  // in the log we are about to reinstate.  A blob with no registered
  // loader belongs to an instance the rebuilt stack has not created yet
  // (e.g. a lazily built sub-instance) — such instances never compact
  // their WAL entries, so skipping the blob loses nothing.
  // Restore always runs inline on the calling thread, never through the
  // executor pool: replay is single-threaded and bit-exact by contract,
  // whatever executor count produced the WAL being replayed.
  const bool was_enabled = wal_enabled_;
  wal_enabled_ = false;
  // Reinstate the log BEFORE replaying it (dispatch appends nothing while
  // wal_enabled_ is off, so nothing doubles up).  Replayed handlers call
  // retire_tag/prune_wal exactly like their live incarnations did; with
  // the log installed first those compactions land on the real log instead
  // of being thrown away when the log was installed afterwards — which
  // used to resurrect retired instances' entries on the next snapshot.
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    wal_ = replay;
  }
  for (const auto& [prefix, blob] : blobs) {
    CheckpointLoad load;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      auto checkpoint = checkpoints_.find(prefix);
      if (checkpoint == checkpoints_.end()) continue;
      load = checkpoint->second.load;
    }
    Reader in(blob);
    load(in);
    in.expect_done();
    drain_local();
  }
  for (const Message& message : replay) {
    dispatch(message);
    drain_local();
  }
  wal_enabled_ = was_enabled;
}

void Party::dispatch(const Message& message) {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto it = handlers_.find(message.tag);
    if (it == handlers_.end()) {
      // Late traffic for a retired instance is dropped outright;
      // everything else is buffered under the resource budget until (if
      // ever) an instance registers for the tag.
      if (!is_retired_unlocked(message.tag)) buffer_unhandled(message);
      return;
    }
    // Copy the closure out so no lock is held while protocol code runs; a
    // concurrent unregister (always from another instance tree) cannot
    // invalidate it.
    handler = it->second;
  }
  DispatchCtx& c = ctx();
  const bool was_dispatching = c.dispatching;
  std::string previous_root = std::move(c.current_root);
  c.dispatching = true;
  c.current_root.assign(common::ExecutorPool::tag_root(message.tag));
  try {
    Reader reader(message.payload);
    handler(message.from, reader);
  } catch (const ProtocolError& error) {
    // Malformed or adversarial input: drop and continue.
    trace("party", "dropped message on " + message.tag + " from " +
                       std::to_string(message.from) + ": " + error.what());
  }
  c.dispatching = was_dispatching;
  c.current_root = std::move(previous_root);
}

void Party::buffer_unhandled(const Message& message) {
  auto it = buffered_.find(message.tag);
  if (it == buffered_.end() && buffered_.size() >= kMaxBufferedTags) {
    trace("party", "buffer tag-cap drop on " + message.tag);
    return;
  }
  if (it != buffered_.end() && it->second.size() >= kMaxBufferedPerTag) {
    trace("party", "buffer count-cap drop on " + message.tag);
    return;
  }
  if (!budget_.try_charge(message.from, message.tag, buffered_cost(message))) {
    trace("party", "buffer budget drop on " + message.tag + " from " +
                       std::to_string(message.from));
    return;
  }
  buffered_[message.tag].push_back(message);
}

void Party::drain_local() {
  DispatchCtx& c = ctx();
  while (!c.local.empty()) {
    Message message = std::move(c.local.front());
    c.local.pop_front();
    dispatch(message);
  }
}

void Party::trace(const std::string& component, std::string text) {
  if (TraceLog* log = network_.log()) {
    log->emit(TraceLevel::kInfo, id_, component, std::move(text));
  }
}

}  // namespace sintra::net
