#include "net/party.hpp"

#include "common/assert.hpp"

namespace sintra::net {

Party::Party(Network& network, int id, adversary::Deployment deployment, std::uint64_t seed)
    : network_(network), id_(id), deployment_(std::move(deployment)),
      rng_(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(id + 1))) {}

void Party::send(int to, const std::string& tag, Bytes payload) {
  Message message;
  message.from = id_;
  message.to = to;
  message.tag = tag;
  message.payload = std::move(payload);
  if (to == id_) {
    // A self-message from outside any handler is an external input (an
    // application-level submit).  Replay cannot regenerate it, so it goes
    // into the write-ahead log; self-messages produced *inside* handlers
    // are deterministically re-created when the triggering message is
    // replayed and must stay out of the log or they would run twice.
    if (wal_enabled_ && !dispatching_) wal_.push_back(message);
    local_.push_back(std::move(message));
    if (!dispatching_) drain_local();
    return;
  }
  network_.submit(std::move(message));
}

void Party::broadcast(const std::string& tag, const Bytes& payload) {
  for (int to = 0; to < n(); ++to) send(to, tag, Bytes(payload));
}

void Party::register_handler(const std::string& tag, Handler handler) {
  SINTRA_INVARIANT(!handlers_.contains(tag), "Party: duplicate handler tag " + tag);
  handlers_.emplace(tag, std::move(handler));
  auto buffered = buffered_.find(tag);
  if (buffered != buffered_.end()) {
    for (Message& message : buffered->second) local_.push_back(std::move(message));
    buffered_.erase(buffered);
    if (!dispatching_) drain_local();
  }
}

void Party::on_message(const Message& message) {
  // Persist before processing — a crash after dispatch must not lose the
  // message (at-least-once: a redelivery after restore is harmless, a
  // loss is not).
  if (wal_enabled_) wal_.push_back(message);
  dispatch(message);
  drain_local();
}

Bytes Party::snapshot() const {
  Writer w;
  w.vec(wal_, [](Writer& out, const Message& message) {
    out.u32(static_cast<std::uint32_t>(message.from));
    out.str(message.tag);
    out.bytes(message.payload);
  });
  return w.take();
}

void Party::restore(BytesView persisted) {
  Reader r(persisted);
  std::vector<Message> replay = r.vec<Message>([this](Reader& in) {
    Message message;
    message.from = static_cast<int>(in.u32());
    message.to = id_;
    message.tag = in.str();
    message.payload = in.bytes();
    return message;
  });
  r.expect_done();
  // Replay through the (rebuilt) handlers with logging off: the replayed
  // messages are already in the log we are about to reinstate.
  const bool was_enabled = wal_enabled_;
  wal_enabled_ = false;
  for (const Message& message : replay) {
    dispatch(message);
    drain_local();
  }
  wal_enabled_ = was_enabled;
  wal_ = std::move(replay);
}

void Party::dispatch(const Message& message) {
  auto handler = handlers_.find(message.tag);
  if (handler == handlers_.end()) {
    buffered_[message.tag].push_back(message);
    return;
  }
  dispatching_ = true;
  try {
    Reader reader(message.payload);
    handler->second(message.from, reader);
  } catch (const ProtocolError& error) {
    // Malformed or adversarial input: drop and continue.
    trace("party", "dropped message on " + message.tag + " from " +
                       std::to_string(message.from) + ": " + error.what());
  }
  dispatching_ = false;
}

void Party::drain_local() {
  while (!local_.empty()) {
    Message message = std::move(local_.front());
    local_.pop_front();
    dispatch(message);
  }
}

void Party::trace(const std::string& component, std::string text) {
  if (TraceLog* log = network_.log()) {
    log->emit(TraceLevel::kInfo, id_, component, std::move(text));
  }
}

}  // namespace sintra::net
