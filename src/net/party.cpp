#include "net/party.hpp"

#include "common/assert.hpp"

namespace sintra::net {

Party::Party(Simulator& simulator, int id, adversary::Deployment deployment, std::uint64_t seed)
    : simulator_(simulator), id_(id), deployment_(std::move(deployment)),
      rng_(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(id + 1))) {}

void Party::send(int to, const std::string& tag, Bytes payload) {
  Message message;
  message.from = id_;
  message.to = to;
  message.tag = tag;
  message.payload = std::move(payload);
  if (to == id_) {
    local_.push_back(std::move(message));
    if (!dispatching_) drain_local();
    return;
  }
  simulator_.submit(std::move(message));
}

void Party::broadcast(const std::string& tag, const Bytes& payload) {
  for (int to = 0; to < n(); ++to) send(to, tag, Bytes(payload));
}

void Party::register_handler(const std::string& tag, Handler handler) {
  SINTRA_INVARIANT(!handlers_.contains(tag), "Party: duplicate handler tag " + tag);
  handlers_.emplace(tag, std::move(handler));
  auto buffered = buffered_.find(tag);
  if (buffered != buffered_.end()) {
    for (Message& message : buffered->second) local_.push_back(std::move(message));
    buffered_.erase(buffered);
    if (!dispatching_) drain_local();
  }
}

void Party::on_message(const Message& message) {
  dispatch(message);
  drain_local();
}

void Party::dispatch(const Message& message) {
  auto handler = handlers_.find(message.tag);
  if (handler == handlers_.end()) {
    buffered_[message.tag].push_back(message);
    return;
  }
  dispatching_ = true;
  try {
    Reader reader(message.payload);
    handler->second(message.from, reader);
  } catch (const ProtocolError& error) {
    // Malformed or adversarial input: drop and continue.
    trace("party", "dropped message on " + message.tag + " from " +
                       std::to_string(message.from) + ": " + error.what());
  }
  dispatching_ = false;
}

void Party::drain_local() {
  while (!local_.empty()) {
    Message message = std::move(local_.front());
    local_.pop_front();
    dispatch(message);
  }
}

void Party::trace(const std::string& component, std::string text) {
  if (TraceLog* log = simulator_.log()) {
    log->emit(TraceLevel::kInfo, id_, component, std::move(text));
  }
}

}  // namespace sintra::net
