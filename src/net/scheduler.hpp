// Message schedulers — the network adversary of the paper's model
// ("the network is the adversary", §2).
//
// The simulator keeps the multiset of in-flight messages; at every step the
// scheduler picks which one to deliver next.  Any delivery order the real
// Internet could produce corresponds to some scheduler, so protocol
// properties demonstrated under *adversarial* schedulers here are exactly
// the asynchronous-model guarantees the paper claims.
//
// Schedulers must be "fair-in-the-limit" for liveness experiments (every
// message is eventually picked); the adversarial ones below are fair but
// maximally unhelpful within that constraint: they may delay any message
// arbitrarily long as long as other messages remain.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "net/message.hpp"

namespace sintra::net {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Choose the index (into `pending`, non-empty) of the next message to
  /// deliver — or nullopt to *withhold* everything that is pending, which
  /// models delaying those messages beyond the end of the observation
  /// window (the simulation then reports no further progress).  Schedulers
  /// that sometimes stall are not fair-in-the-limit; liveness claims are
  /// only meaningful under fair schedulers, and the blocking ones exist to
  /// demonstrate the *failures* of timing-dependent baselines.
  virtual std::optional<std::size_t> pick(const std::vector<Message>& pending,
                                          std::uint64_t now) = 0;
};

/// Uniformly random delivery order — the baseline asynchronous network.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  std::optional<std::size_t> pick(const std::vector<Message>& pending,
                                  std::uint64_t now) override;

 private:
  Rng rng_;
};

/// First-submitted, first-delivered (a "nice" synchronous-looking network).
class FifoScheduler final : public Scheduler {
 public:
  std::optional<std::size_t> pick(const std::vector<Message>& pending,
                                  std::uint64_t now) override;
};

/// Starves a target party: messages from/to `victim` are delivered only
/// when nothing else is pending.  Models the paper's observation that "it
/// is usually much easier for an intruder to block communication with a
/// server than to subvert it" — a failure-detector-based protocol whose
/// leader is the victim makes no progress, while the randomized protocols
/// keep terminating.
class StarvePartyScheduler final : public Scheduler {
 public:
  StarvePartyScheduler(std::uint64_t seed, std::function<int(std::uint64_t)> victim_at)
      : rng_(seed), victim_at_(std::move(victim_at)) {}
  /// Fixed victim for the whole run.
  StarvePartyScheduler(std::uint64_t seed, int victim)
      : StarvePartyScheduler(seed, [victim](std::uint64_t) { return victim; }) {}

  std::optional<std::size_t> pick(const std::vector<Message>& pending,
                                  std::uint64_t now) override;

 private:
  Rng rng_;
  std::function<int(std::uint64_t)> victim_at_;
};

/// Rejects victim masks naming parties outside 0..n-1 (such bits would
/// silently never match any traffic, making the adversary weaker than the
/// experiment believes).
inline void check_victim_mask(std::uint64_t victim_mask, int n) {
  SINTRA_REQUIRE(n >= 1 && n <= 64, "scheduler: party count out of range");
  // n == 64 accepts any mask; guard the shift — `x >> 64` is UB.
  SINTRA_REQUIRE(n == 64 || (victim_mask >> n) == 0,
                 "scheduler: victim mask names party >= n");
}

/// Starves a whole set of parties (e.g. one site/class of a generalized
/// structure): their traffic moves only when nothing else can.
class StarveSetScheduler final : public Scheduler {
 public:
  /// `n` is the simulation's party count; every set bit of `victim_mask`
  /// must name a real party — a bit >= n would silently never match.
  StarveSetScheduler(std::uint64_t seed, std::uint64_t victim_mask, int n)
      : rng_(seed), victims_(victim_mask) {
    check_victim_mask(victim_mask, n);
  }

  std::optional<std::size_t> pick(const std::vector<Message>& pending,
                                  std::uint64_t now) override;

 private:
  Rng rng_;
  std::uint64_t victims_;
};

/// NOT fair: withholds all traffic from/to a victim (chosen adaptively via
/// `victim_at`) for the rest of the run — the "block communication with a
/// server" adversary of §2.2, used to demonstrate the liveness failure of
/// failure-detector-based baselines.  Messages not touching the victim flow
/// randomly.
class BlockPartyScheduler final : public Scheduler {
 public:
  BlockPartyScheduler(std::uint64_t seed, std::function<int(std::uint64_t)> victim_at)
      : rng_(seed), victim_at_(std::move(victim_at)) {}
  BlockPartyScheduler(std::uint64_t seed, int victim)
      : BlockPartyScheduler(seed, [victim](std::uint64_t) { return victim; }) {}

  std::optional<std::size_t> pick(const std::vector<Message>& pending,
                                  std::uint64_t now) override;

 private:
  Rng rng_;
  std::function<int(std::uint64_t)> victim_at_;
};

/// NOT fair: withholds all traffic touching a set of parties (e.g. a whole
/// site or class of a generalized structure) for the rest of the run.
class BlockSetScheduler final : public Scheduler {
 public:
  /// `n` as in StarveSetScheduler: every mask bit must name a real party.
  BlockSetScheduler(std::uint64_t seed, std::uint64_t victim_mask, int n)
      : rng_(seed), victims_(victim_mask) {
    check_victim_mask(victim_mask, n);
  }

  std::optional<std::size_t> pick(const std::vector<Message>& pending,
                                  std::uint64_t now) override;

 private:
  Rng rng_;
  std::uint64_t victims_;
};

/// Maximizes reordering: always delivers the most recently submitted
/// message first (LIFO), with occasional random picks to stay fair.
class LifoScheduler final : public Scheduler {
 public:
  explicit LifoScheduler(std::uint64_t seed) : rng_(seed) {}
  std::optional<std::size_t> pick(const std::vector<Message>& pending,
                                  std::uint64_t now) override;

 private:
  Rng rng_;
};

}  // namespace sintra::net
