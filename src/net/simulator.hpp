// Discrete-event simulation of a fully asynchronous point-to-point network.
//
// This is the substitute for the paper's deployment substrate (the
// Internet): a static set of processes exchanging authenticated messages
// whose delivery order is chosen by an adversarial Scheduler.  There is no
// notion of real time — the only clock is the delivery-step counter, which
// is what makes the protocols' time-freeness (§2.2) directly testable.
//
// Channel authenticity is a model assumption of the paper (bootstrapped
// from the dealer); the simulator enforces it structurally: a process can
// only submit messages with its own `from`.
#pragma once

#include <map>
#include <memory>

#include "common/logging.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "net/scheduler.hpp"
#include "net/transport/timer_wheel.hpp"

namespace sintra::net {

/// Anything attached to the network: honest party, corrupted party, client.
class Process {
 public:
  virtual ~Process() = default;
  virtual void on_start() {}
  virtual void on_message(const Message& message) = 0;

  /// Crash-recovery hooks (see net/fault.hpp).  snapshot() returns the
  /// state this process persists across a crash (default: nothing);
  /// restore() reinstates it into a freshly built instance.
  [[nodiscard]] virtual Bytes snapshot() const { return {}; }
  virtual void restore(BytesView persisted) { (void)persisted; }
};

class FaultInjector;  // net/fault.hpp

/// Per-protocol traffic counters (key = tag prefix).
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Simulator final : public Network {
 public:
  Simulator(int n, Scheduler& scheduler, TraceLog* log = nullptr);

  /// Attach the process for party `id` (0..n-1).  Must happen before start().
  void attach(int id, std::unique_ptr<Process> process);
  [[nodiscard]] Process& process(int id) { return *processes_.at(static_cast<std::size_t>(id)); }

  /// Calls on_start() on every process.
  void start();

  /// Submit a message for asynchronous delivery.  Called by processes via
  /// their host; `from` must be the submitting party (enforced by Party).
  void submit(Message message) override;

  /// Deterministic timers (Network interface): delays are in delivery
  /// steps.  A timer fires either when the step counter crosses its
  /// deadline, or — crucially — when the network goes quiescent (or the
  /// scheduler withholds everything) with the timer still pending: the
  /// clock then jumps to the next deadline.  "Time passes when no progress
  /// happens" is exactly the failure-detector abstraction the baselines
  /// need, without giving the protocols any synchrony to lean on.
  TimerId schedule_timer(int owner, std::uint64_t delay, TimerFn fn) override;
  void cancel_timer(TimerId id) override;

  /// Attach an unreliable-delivery fault source (nullptr to detach).  The
  /// injector is consulted at every step and may duplicate, replay, or
  /// drop-and-retransmit traffic; it must outlive the simulation.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Deliver one pending message (chosen by the scheduler).
  /// Returns false when nothing is pending.
  bool step();

  /// Run until quiescent or `max_steps` deliveries; returns steps taken.
  std::uint64_t run(std::uint64_t max_steps);

  /// Run until `done()` or quiescent/max_steps.  True iff done() held.
  bool run_until(const std::function<bool()>& done, std::uint64_t max_steps);

  [[nodiscard]] int n() const override { return n_; }
  [[nodiscard]] std::uint64_t now() const override { return steps_; }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] std::size_t pending_timers() const { return wheel_.pending(); }
  [[nodiscard]] TraceLog* log() override { return log_; }

  /// Keyed by tag prefix; transparent comparator so submit() can look up
  /// by string_view without materializing a std::string per message.
  using TrafficMap = std::map<std::string, TrafficStats, std::less<>>;
  [[nodiscard]] const TrafficMap& traffic() const { return traffic_; }
  [[nodiscard]] std::uint64_t total_messages() const { return next_id_; }

 private:
  /// Jump the clock to the next timer deadline and fire it (used when the
  /// network makes no delivery progress).  False when no timer is pending.
  bool fire_next_timer();

  int n_;
  Scheduler& scheduler_;
  TraceLog* log_;
  FaultInjector* injector_ = nullptr;
  // The wheel must be declared before processes_: protocol destructors
  // cancel their timers through the Network interface, so the wheel has to
  // outlive the processes during ~Simulator.
  transport::TimerWheel wheel_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Message> pending_;
  std::uint64_t next_id_ = 0;
  std::uint64_t steps_ = 0;
  int active_process_ = -1;  ///< process currently executing (-1 = harness)
  TrafficMap traffic_;
};

}  // namespace sintra::net
