#include "net/state_transfer.hpp"

#include "crypto/sha256.hpp"

namespace sintra::net {

StateTransfer::StateTransfer(Party& host, std::string tag, std::string source_tag,
                             CertFn latest_certificate, StateFn state_bytes, InstallFn install,
                             Options options)
    : host_(host),
      tag_(std::move(tag)),
      source_tag_(std::move(source_tag)),
      latest_certificate_(std::move(latest_certificate)),
      state_bytes_(std::move(state_bytes)),
      install_(std::move(install)),
      options_(options) {
  host_.register_handler(tag_, [this](int from, Reader& reader) { handle(from, reader); });
}

StateTransfer::~StateTransfer() {
  if (timer_) host_.cancel_timer(*timer_);
  release_fetch_charges();
  host_.unregister_handler(tag_);
}

Bytes StateTransfer::chunk_digest(std::uint32_t round, std::uint32_t index, BytesView data) {
  Writer w;
  w.u32(round);
  w.u32(index);
  w.bytes(data);
  auto digest = crypto::hash_domain("sintra/statexfer/chunk", w.data());
  return Bytes(digest.begin(), digest.end());
}

void StateTransfer::handle(int from, Reader& reader) {
  const std::uint8_t type = reader.u8();
  switch (type) {
    case kQueryCert:
      reader.expect_done();
      serve_query(from);
      return;
    case kCertReply:
      on_cert_reply(from, reader);
      return;
    case kFetchChunk:
      serve_chunk(from, reader);
      return;
    case kChunkReply:
      on_chunk_reply(from, reader);
      return;
    default:
      SINTRA_REQUIRE(false, "statexfer: unknown message type");
  }
}

const Bytes* StateTransfer::serving_state(std::uint32_t round) {
  auto cert = latest_certificate_ ? latest_certificate_() : std::nullopt;
  if (!cert || cert->round != round) return nullptr;
  if (serve_cache_ && serve_cache_->first == round) return &serve_cache_->second;
  Bytes state = state_bytes_ ? state_bytes_(*cert) : Bytes{};
  if (state.empty()) return nullptr;
  serve_cache_.emplace(round, std::move(state));
  return &serve_cache_->second;
}

void StateTransfer::serve_query(int from) {
  ++stats_.queries_served;
  Writer w;
  w.u8(kCertReply);
  auto cert = latest_certificate_ ? latest_certificate_() : std::nullopt;
  const Bytes* state = cert ? serving_state(cert->round) : nullptr;
  if (!cert || state == nullptr) {
    w.boolean(false);
    host_.send(from, tag_, w.take());
    return;
  }
  crypto::CheckpointCert offer = *cert;
  if (options_.forge_certificate) offer.chain_digest[0] ^= 0x5a;  // Byzantine test knob
  const std::size_t cb = options_.chunk_bytes;
  const std::uint32_t count =
      static_cast<std::uint32_t>(state->empty() ? 1 : (state->size() + cb - 1) / cb);
  w.boolean(true);
  offer.encode(w);
  w.u64(state->size());
  w.u32(count);
  // The manifest is the per-chunk digest list, computed over the honest
  // snapshot (the tamper knob applies at chunk-serve time, like a real
  // attacker corrupting data in flight — the fetcher's manifest check
  // catches exactly that).
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t begin = static_cast<std::size_t>(i) * cb;
    const std::size_t len = std::min(cb, state->size() - begin);
    w.bytes(chunk_digest(offer.round, i, BytesView(state->data() + begin, len)));
  }
  host_.send(from, tag_, w.take());
}

void StateTransfer::serve_chunk(int from, Reader& reader) {
  const std::uint32_t round = reader.u32();
  const std::uint32_t index = reader.u32();
  reader.expect_done();
  Writer w;
  w.u8(kChunkReply);
  w.u32(round);
  w.u32(index);
  const Bytes* state = serving_state(round);
  const std::size_t cb = options_.chunk_bytes;
  const std::size_t begin = static_cast<std::size_t>(index) * cb;
  if (state == nullptr || begin >= state->size()) {
    w.boolean(false);
    host_.send(from, tag_, w.take());
    return;
  }
  const std::size_t len = std::min(cb, state->size() - begin);
  Bytes data(state->data() + begin, state->data() + begin + len);
  if (options_.tamper_chunks && !data.empty()) data[0] ^= 0xff;  // Byzantine test knob
  w.boolean(true);
  w.bytes(data);
  ++stats_.chunks_served;
  host_.send(from, tag_, w.take());
}

void StateTransfer::begin_recovery(DoneFn done) {
  if (phase_ != Phase::kIdle) return;
  done_ = std::move(done);
  rounds_attempted_ = 0;
  bad_peers_ = 0;
  start_query_round();
}

void StateTransfer::start_query_round() {
  if (rounds_attempted_ >= options_.max_rounds) {
    finish(false);
    return;
  }
  ++rounds_attempted_;
  phase_ = Phase::kQuery;
  replied_ = 0;
  best_.reset();
  Writer w;
  w.u8(kQueryCert);
  const Bytes query = w.take();
  for (int p = 0; p < host_.n(); ++p) {
    if (p == host_.id() || crypto::contains(bad_peers_, p)) continue;
    host_.send(p, tag_, query);
  }
  if (timer_) host_.cancel_timer(*timer_);
  timer_ = host_.schedule_timer(options_.query_window, [this] {
    timer_.reset();
    close_query_window();
  });
}

void StateTransfer::on_cert_reply(int from, Reader& reader) {
  if (phase_ != Phase::kQuery) return;  // unsolicited or stale (WAL replay)
  if (crypto::contains(replied_, from) || crypto::contains(bad_peers_, from)) return;
  replied_ |= crypto::party_bit(from);
  ++stats_.offers_received;
  if (reader.boolean()) {
    auto cert = crypto::CheckpointCert::decode(reader);
    const std::uint64_t total = reader.u64();
    const std::uint32_t count = reader.u32();
    SINTRA_REQUIRE(count >= 1 && count <= (1u << 20), "statexfer: implausible chunk count");
    std::vector<Bytes> manifest;
    manifest.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) manifest.push_back(reader.bytes());
    reader.expect_done();
    bool shape_ok = manifest.size() == count && total <= (std::uint64_t{1} << 32);
    for (const Bytes& d : manifest) shape_ok = shape_ok && d.size() == crypto::kChainDigestBytes;
    if (!shape_ok || !cert.verify(host_.public_keys().cert_sig, source_tag_)) {
      // A forged certificate (or garbage manifest) is provable misbehavior:
      // blacklist and never ask this peer again.
      ++stats_.bad_certificates;
      bad_peers_ |= crypto::party_bit(from);
      host_.trace("statexfer", tag_ + " rejected offer from " + std::to_string(from));
    } else if (!best_ || cert.round > best_->cert.round) {
      best_.emplace();
      best_->peer = from;
      best_->cert = std::move(cert);
      best_->manifest = std::move(manifest);
      best_->total_size = total;
    }
  }
  // Close the window early once every reachable peer answered.
  int eligible = 0;
  for (int p = 0; p < host_.n(); ++p) {
    if (p != host_.id() && !crypto::contains(bad_peers_, p)) ++eligible;
  }
  if (crypto::popcount(replied_) >= eligible) {
    if (timer_) host_.cancel_timer(*timer_);
    timer_.reset();
    close_query_window();
  }
}

void StateTransfer::close_query_window() {
  if (phase_ != Phase::kQuery) return;
  if (!best_) {
    // Nobody had a certified checkpoint (yet): peers may still be
    // combining shares, or a partition hid them — re-query after a window.
    start_query_round();
    return;
  }
  phase_ = Phase::kFetch;
  next_chunk_ = 0;
  chunks_.clear();
  chunk_retries_left_ = options_.max_chunk_retries;
  request_chunk();
}

void StateTransfer::request_chunk() {
  if (next_chunk_ >= best_->manifest.size()) {
    // All chunks verified against the manifest: assemble and hand over to
    // the installer, which re-verifies the certificate and re-hashes the
    // whole snapshot against the certified chain digest.
    Bytes state;
    state.reserve(best_->total_size);
    for (const Bytes& chunk : chunks_) state.insert(state.end(), chunk.begin(), chunk.end());
    if (state.size() != best_->total_size || !install_(best_->cert, state)) {
      abandon_peer("snapshot rejected at install");
      return;
    }
    ++stats_.installs;
    finish(true);
    return;
  }
  Writer w;
  w.u8(kFetchChunk);
  w.u32(best_->cert.round);
  w.u32(next_chunk_);
  host_.send(best_->peer, tag_, w.take());
  if (timer_) host_.cancel_timer(*timer_);
  timer_ = host_.schedule_timer(options_.retry_timeout, [this] {
    timer_.reset();
    if (phase_ != Phase::kFetch) return;
    ++stats_.chunk_retries;
    if (--chunk_retries_left_ < 0) {
      abandon_peer("chunk timeout");
      return;
    }
    request_chunk();  // resumable: re-request the same index
  });
}

void StateTransfer::on_chunk_reply(int from, Reader& reader) {
  if (phase_ != Phase::kFetch || !best_ || from != best_->peer) return;
  const std::uint32_t round = reader.u32();
  const std::uint32_t index = reader.u32();
  if (round != best_->cert.round || index != next_chunk_) return;  // stale retransmit
  if (!reader.boolean()) {
    reader.expect_done();
    abandon_peer("peer cannot serve round");
    return;
  }
  Bytes data = reader.bytes();
  reader.expect_done();
  if (chunk_digest(round, index, data) != best_->manifest[index]) {
    ++stats_.bad_chunks;
    abandon_peer("tampered chunk");
    return;
  }
  // Budget-meter the buffered snapshot: a recovery cannot be used to blow
  // the memory cap.  If the cap is momentarily full, drop the chunk and
  // let the retry timer re-request it.
  const std::size_t cost = data.size() + 32;
  if (!host_.budget().try_charge(from, tag_, cost)) {
    host_.trace("statexfer", tag_ + " chunk deferred by budget");
    return;
  }
  charges_.emplace_back(from, cost);
  if (timer_) host_.cancel_timer(*timer_);
  timer_.reset();
  chunks_.push_back(std::move(data));
  ++next_chunk_;
  ++stats_.chunks_fetched;
  chunk_retries_left_ = options_.max_chunk_retries;
  request_chunk();
}

void StateTransfer::abandon_peer(const char* why) {
  ++stats_.failovers;
  if (best_) {
    bad_peers_ |= crypto::party_bit(best_->peer);
    host_.trace("statexfer", tag_ + " abandoning peer " + std::to_string(best_->peer) + ": " +
                                 why);
  }
  release_fetch_charges();
  chunks_.clear();
  best_.reset();
  if (timer_) host_.cancel_timer(*timer_);
  timer_.reset();
  phase_ = Phase::kQuery;  // re-enter discovery against the remaining peers
  start_query_round();
}

void StateTransfer::release_fetch_charges() {
  for (const auto& [peer, bytes] : charges_) host_.budget().release(peer, tag_, bytes);
  charges_.clear();
}

void StateTransfer::finish(bool ok) {
  if (timer_) host_.cancel_timer(*timer_);
  timer_.reset();
  release_fetch_charges();
  chunks_.clear();
  best_.reset();
  phase_ = Phase::kIdle;
  // Compact the recovery traffic out of our WAL: the recovered protocol's
  // own checkpoint captures the install's effects, and a replayed install
  // is rejected as stale — these entries would only bloat the log.
  if (ok && host_.wal_enabled()) {
    host_.prune_wal(tag_, [](const Message&) { return true; });
  }
  auto done = std::move(done_);
  done_ = nullptr;
  if (done) done(ok);
}

}  // namespace sintra::net
