#include "net/corruption.hpp"

namespace sintra::net {

void SpamProcess::burst() {
  // Bounded spam: keeps robustness paths busy without making simulations
  // non-terminating.
  constexpr std::uint64_t kMaxSpam = 2000;
  if (tags_.empty()) return;
  for (int i = 0; i < 3 && sent_ < kMaxSpam; ++i, ++sent_) {
    Message message;
    message.from = id_;
    message.to = static_cast<int>(rng_.below(static_cast<std::uint64_t>(simulator_.n())));
    message.tag = tags_[static_cast<std::size_t>(rng_.below(tags_.size()))];
    message.payload = rng_.bytes(1 + rng_.below(64));
    simulator_.submit(std::move(message));
  }
}

}  // namespace sintra::net
