#include "net/corruption.hpp"

#include "common/serialize.hpp"
#include "crypto/sha256.hpp"
#include "crypto/threshold_sig.hpp"

namespace sintra::net {

void SpamProcess::burst() {
  // Bounded spam: keeps robustness paths busy without making simulations
  // non-terminating.
  constexpr std::uint64_t kMaxSpam = 2000;
  if (tags_.empty()) return;
  for (int i = 0; i < 3 && sent_ < kMaxSpam; ++i, ++sent_) {
    Message message;
    message.from = id_;
    message.to = static_cast<int>(rng_.below(static_cast<std::uint64_t>(simulator_.n())));
    message.tag = tags_[static_cast<std::size_t>(rng_.below(tags_.size()))];
    message.payload = rng_.bytes(1 + rng_.below(64));
    simulator_.submit(std::move(message));
  }
}

FlooderProcess::FlooderProcess(Simulator& simulator, int id, adversary::Deployment deployment,
                               std::uint64_t seed, Profile profile, std::string target_tag)
    : simulator_(simulator), id_(id), deployment_(std::move(deployment)), rng_(seed),
      profile_(profile), target_tag_(std::move(target_tag)) {}

void FlooderProcess::spray(int to, std::string tag, Bytes payload) {
  Message message;
  message.from = id_;
  message.to = to;
  message.tag = std::move(tag);
  message.payload = std::move(payload);
  simulator_.submit(std::move(message));
  ++sent_;
}

void FlooderProcess::burst() {
  // Volume bound: enough pressure to exceed any reasonable test budget
  // many times over, small enough that flooded runs still quiesce.
  constexpr std::uint64_t kMaxFlood = 4000;
  constexpr int kPerBurst = 6;
  const int n = deployment_.n();
  for (int i = 0; i < kPerBurst && sent_ < kMaxFlood; ++i) {
    switch (profile_) {
      case Profile::kAbbaRounds: {
        // Future-round votes park in the deferred buffer; bodies are junk
        // (an honest party only validates them on replay).  Rounds sweep a
        // window ahead of any round the instance will actually reach.
        const std::uint32_t round = static_cast<std::uint32_t>(3 + cursor_++ % 48);
        Writer w;
        w.u8(static_cast<std::uint8_t>(rng_.below(2)));  // kPreVote / kMainVote
        w.u32(round);
        const Bytes junk = rng_.bytes(200 + rng_.below(200));
        w.raw(BytesView(junk.data(), junk.size()));
        const Bytes payload = w.take();
        for (int to = 0; to < n; ++to) {
          if (to != id_) spray(to, target_tag_, payload);
        }
        break;
      }
      case Profile::kAbcRounds: {
        // A properly signed batch for a round within the lookahead window:
        // it passes verification and is buffered until its round arrives —
        // only the budget stands between this and unbounded growth.
        const int round = static_cast<int>(2 + cursor_++ % 31);
        Writer block;
        std::vector<Bytes> payloads;
        payloads.push_back(rng_.bytes(300 + rng_.below(200)));
        block.vec(payloads, [](Writer& wr, const Bytes& p) { wr.bytes(p); });
        const Bytes payload_block = block.take();
        Writer sw;
        sw.str("sintra/abc/batch");
        sw.str(target_tag_);
        sw.u32(static_cast<std::uint32_t>(round));
        sw.u32(static_cast<std::uint32_t>(id_));
        auto digest = crypto::hash_domain("sintra/abc/block", payload_block);
        sw.raw(BytesView(digest.data(), digest.size()));
        auto shares = deployment_.keys->share(id_).cert_sig.sign(
            deployment_.keys->public_keys().cert_sig, sw.take(), rng_);
        Writer w;
        w.u8(1);  // AtomicBroadcast::kBatch
        w.u32(static_cast<std::uint32_t>(round));
        w.bytes(payload_block);
        w.vec(shares, [](Writer& wr, const crypto::SigShare& s) { s.encode(wr); });
        const Bytes payload = w.take();
        for (int to = 0; to < n; ++to) {
          if (to != id_) spray(to, target_tag_, payload);
        }
        break;
      }
      case Profile::kPbftViews: {
        // Future-view PREPAREs with fat payloads land in the view stash.
        const std::uint32_t view = static_cast<std::uint32_t>(1 + cursor_++ % 8);
        Writer w;
        w.u8(2);  // PbftLikeBroadcast::kPrepare
        w.u32(view);
        w.u64(rng_.below(256));
        w.bytes(rng_.bytes(200 + rng_.below(200)));
        const Bytes payload = w.take();
        for (int to = 0; to < n; ++to) {
          if (to != id_) spray(to, target_tag_, payload);
        }
        break;
      }
      case Profile::kBogusTags: {
        // Instance tags nobody will ever register: the traffic sits in the
        // Party's unhandled buffer, charged to this peer until the caps
        // start dropping it.
        const std::string tag =
            target_tag_ + "/bogus/" + std::to_string(cursor_++ % 1024);
        for (int to = 0; to < n; ++to) {
          if (to != id_) spray(to, tag, rng_.bytes(100 + rng_.below(150)));
        }
        break;
      }
      case Profile::kRequests: {
        // Runaway client: a fresh request id every time, to every replica.
        Writer w;
        w.u32(static_cast<std::uint32_t>(id_));
        w.u64(++cursor_);
        w.bytes(rng_.bytes(32));
        const Bytes payload = w.take();
        for (int to = 0; to < n; ++to) {
          if (to != id_) spray(to, target_tag_, payload);
        }
        break;
      }
    }
  }
}

}  // namespace sintra::net
