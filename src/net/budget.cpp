#include "net/budget.hpp"

#include "common/assert.hpp"

namespace sintra::net {

bool ResourceBudget::in_subtree(const std::string& key, const std::string& prefix) {
  if (key.size() < prefix.size()) return false;
  if (key.compare(0, prefix.size(), prefix) != 0) return false;
  return key.size() == prefix.size() || key[prefix.size()] == '/';
}

bool ResourceBudget::try_charge(int peer, const std::string& instance, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t peer_now = peer_total_unlocked(peer);
  auto inst_it = instance_totals_.find(instance);
  const std::size_t inst_now = inst_it == instance_totals_.end() ? 0 : inst_it->second;
  if (peer_now + bytes > config_.per_peer_cap || inst_now + bytes > config_.per_instance_cap ||
      total_ + bytes > config_.total_cap) {
    ++rejected_;
    return false;
  }
  charges_[instance][peer] += bytes;
  instance_totals_[instance] = inst_now + bytes;
  peer_totals_[peer] = peer_now + bytes;
  total_ += bytes;
  if (total_ > peak_) peak_ = total_;
  return true;
}

void ResourceBudget::release(int peer, const std::string& instance, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto inst = charges_.find(instance);
  SINTRA_INVARIANT(inst != charges_.end(), "budget: release for unknown instance");
  auto entry = inst->second.find(peer);
  SINTRA_INVARIANT(entry != inst->second.end() && entry->second >= bytes,
                   "budget: release exceeds charge");
  entry->second -= bytes;
  if (entry->second == 0) inst->second.erase(entry);
  if (inst->second.empty()) charges_.erase(inst);
  auto inst_total = instance_totals_.find(instance);
  inst_total->second -= bytes;
  if (inst_total->second == 0) instance_totals_.erase(inst_total);
  auto peer_total_it = peer_totals_.find(peer);
  peer_total_it->second -= bytes;
  if (peer_total_it->second == 0) peer_totals_.erase(peer_total_it);
  total_ -= bytes;
}

void ResourceBudget::release_instance(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = charges_.lower_bound(prefix);
  while (it != charges_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    if (!in_subtree(it->first, prefix)) {
      ++it;
      continue;
    }
    for (const auto& [peer, bytes] : it->second) {
      auto peer_it = peer_totals_.find(peer);
      peer_it->second -= bytes;
      if (peer_it->second == 0) peer_totals_.erase(peer_it);
      total_ -= bytes;
    }
    instance_totals_.erase(it->first);
    it = charges_.erase(it);
  }
}

std::size_t ResourceBudget::peer_total_unlocked(int peer) const {
  auto it = peer_totals_.find(peer);
  return it == peer_totals_.end() ? 0 : it->second;
}

std::size_t ResourceBudget::peer_total(int peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peer_total_unlocked(peer);
}

std::size_t ResourceBudget::instance_total(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t sum = 0;
  for (auto it = instance_totals_.lower_bound(prefix);
       it != instance_totals_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
    if (in_subtree(it->first, prefix)) sum += it->second;
  }
  return sum;
}

}  // namespace sintra::net
