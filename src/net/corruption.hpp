// Corrupted-party harnesses.
//
// The paper's adversary fully controls corrupted parties (and holds their
// dealt keys).  Generic behaviours live here; protocol-specific Byzantine
// attacks (equivocation, bogus shares, front-running) are built in the
// tests and benchmarks as custom Processes with access to the corrupted
// party's PartyKeyShare.
#pragma once

#include <functional>

#include "adversary/quorum.hpp"
#include "net/simulator.hpp"

namespace sintra::net {

/// Crashed / muted party: receives everything, says nothing.  Also models
/// the paper's "unavailable site".
class CrashProcess final : public Process {
 public:
  void on_message(const Message&) override {}
};

/// Sends garbage to everyone on every delivery (stress for the robustness
/// paths: signature/proof verification, ProtocolError handling).
class SpamProcess final : public Process {
 public:
  SpamProcess(Simulator& simulator, int id, std::uint64_t seed, std::vector<std::string> tags)
      : simulator_(simulator), id_(id), rng_(seed), tags_(std::move(tags)) {}

  void on_start() override { burst(); }
  void on_message(const Message&) override { burst(); }

 private:
  void burst();

  Simulator& simulator_;
  int id_;
  Rng rng_;
  std::vector<std::string> tags_;
  std::uint64_t sent_ = 0;
};

/// Byzantine resource-exhaustion attacker (the flooder attack suite): a
/// corrupted party spraying protocol-shaped traffic at the honest
/// parties' buffering paths.  Each profile targets one buffer:
///  - kAbbaRounds: far-future ABBA pre-/main-votes, which honest parties
///    park in their deferred-round buffer until the round arrives;
///  - kAbcRounds: VALIDLY SIGNED future-round atomic-broadcast batches —
///    the flooder holds its dealt key share, so these pass signature
///    verification and occupy round buffers legitimately;
///  - kPbftViews: future-view PBFT phase traffic (the view stash);
///  - kBogusTags: messages for instance tags that will never register
///    (the Party's unhandled-traffic buffer);
///  - kRequests: a runaway client spraying distinct requests at every
///    replica (the admission-control queue).
/// Every profile is volume-bounded so flooded runs still quiesce; the
/// point is not to break termination but to show ResourceBudget holding
/// every honest party's buffered bytes under its cap while the protocols
/// keep delivering.
class FlooderProcess final : public Process {
 public:
  enum class Profile {
    kAbbaRounds,
    kAbcRounds,
    kPbftViews,
    kBogusTags,
    kRequests,
  };

  /// `target_tag` is the attacked instance's tag (the ABBA/ABC/PBFT tag,
  /// or the service tag for kRequests, or a prefix for kBogusTags).
  FlooderProcess(Simulator& simulator, int id, adversary::Deployment deployment,
                 std::uint64_t seed, Profile profile, std::string target_tag);

  void on_start() override { burst(); }
  void on_message(const Message&) override { burst(); }

  [[nodiscard]] std::uint64_t sent() const { return sent_; }

 private:
  void burst();
  void spray(int to, std::string tag, Bytes payload);

  Simulator& simulator_;
  int id_;
  adversary::Deployment deployment_;
  Rng rng_;
  Profile profile_;
  std::string target_tag_;
  std::uint64_t sent_ = 0;
  std::uint64_t cursor_ = 0;  ///< round/view/request-id cursor
};

/// Fully scripted Byzantine process: delegates to a function.
class HookProcess final : public Process {
 public:
  using Hook = std::function<void(const Message&)>;

  HookProcess(Hook on_start, Hook on_message)
      : on_start_(std::move(on_start)), on_message_(std::move(on_message)) {}

  void on_start() override {
    if (on_start_) on_start_(Message{});
  }
  void on_message(const Message& message) override {
    if (on_message_) on_message_(message);
  }

 private:
  Hook on_start_;
  Hook on_message_;
};

}  // namespace sintra::net
