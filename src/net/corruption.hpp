// Corrupted-party harnesses.
//
// The paper's adversary fully controls corrupted parties (and holds their
// dealt keys).  Generic behaviours live here; protocol-specific Byzantine
// attacks (equivocation, bogus shares, front-running) are built in the
// tests and benchmarks as custom Processes with access to the corrupted
// party's PartyKeyShare.
#pragma once

#include <functional>

#include "net/simulator.hpp"

namespace sintra::net {

/// Crashed / muted party: receives everything, says nothing.  Also models
/// the paper's "unavailable site".
class CrashProcess final : public Process {
 public:
  void on_message(const Message&) override {}
};

/// Sends garbage to everyone on every delivery (stress for the robustness
/// paths: signature/proof verification, ProtocolError handling).
class SpamProcess final : public Process {
 public:
  SpamProcess(Simulator& simulator, int id, std::uint64_t seed, std::vector<std::string> tags)
      : simulator_(simulator), id_(id), rng_(seed), tags_(std::move(tags)) {}

  void on_start() override { burst(); }
  void on_message(const Message&) override { burst(); }

 private:
  void burst();

  Simulator& simulator_;
  int id_;
  Rng rng_;
  std::vector<std::string> tags_;
  std::uint64_t sent_ = 0;
};

/// Fully scripted Byzantine process: delegates to a function.
class HookProcess final : public Process {
 public:
  using Hook = std::function<void(const Message&)>;

  HookProcess(Hook on_start, Hook on_message)
      : on_start_(std::move(on_start)), on_message_(std::move(on_message)) {}

  void on_start() override {
    if (on_start_) on_start_(Message{});
  }
  void on_message(const Message& message) override {
    if (on_message_) on_message_(message);
  }

 private:
  Hook on_start_;
  Hook on_message_;
};

}  // namespace sintra::net
