// Peer-to-peer certified state transfer (issue 8).
//
// A blank or lagging replica cannot rely on its own WAL — the disk may be
// gone, or peers may have compacted past the suffix it needs.  Instead it
// asks every peer for the highest *certified checkpoint* (a threshold
// signature over the delivered-prefix chain, crypto/checkpoint.hpp), picks
// the best verifiable offer, fetches the state snapshot in budget-metered
// resumable chunks, checks each chunk against the offer's digest manifest,
// and installs the assembled snapshot through the host protocol's install
// hook — which independently re-verifies the certificate and re-hashes the
// whole snapshot, so a Byzantine peer can waste a fetch but never poison
// state.  Detected misbehavior (forged certificate, tampered chunk,
// snapshot that fails installation) blacklists the peer and the protocol
// fails over to the next honest offer.
//
// This lives in net/ (below protocols/): the protocol being recovered is
// reached only through std::function hooks, so atomic broadcast, the
// causal layer, or any future subsystem can plug in without a dependency
// cycle.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "crypto/checkpoint.hpp"
#include "net/party.hpp"

namespace sintra::net {

/// Tuning + Byzantine-test knobs for StateTransfer.  (Namespace-scope so it
/// can be a defaulted constructor argument: GCC parses a nested class's
/// default member initializers too late for that.)
struct StateTransferOptions {
  /// Snapshot chunk size served to fetching peers.
  std::size_t chunk_bytes = 16 * 1024;
  /// How long to collect certificate offers before picking one (network
  /// time units: simulator steps or milliseconds).
  std::uint64_t query_window = 60;
  /// Per-chunk reply timeout before the request is re-sent.
  std::uint64_t retry_timeout = 120;
  /// Re-sends of one chunk before the serving peer is declared dead.
  int max_chunk_retries = 4;
  /// Full query→fetch→install attempts before giving up.
  int max_rounds = 8;
  /// Byzantine test knobs: serve flipped chunk bytes / a certificate
  /// whose chain digest was altered after signing.
  bool tamper_chunks = false;
  bool forge_certificate = false;
};

class StateTransfer {
 public:
  using Options = StateTransferOptions;

  struct Stats {
    std::uint64_t queries_served = 0;
    std::uint64_t chunks_served = 0;
    std::uint64_t offers_received = 0;
    std::uint64_t bad_certificates = 0;  ///< offers whose certificate failed
    std::uint64_t chunks_fetched = 0;
    std::uint64_t chunk_retries = 0;
    std::uint64_t bad_chunks = 0;        ///< chunks failing the manifest digest
    std::uint64_t failovers = 0;         ///< peers abandoned for misbehavior
    std::uint64_t installs = 0;
  };

  /// Highest combined certificate this party can vouch for (server side).
  using CertFn = std::function<std::optional<crypto::CheckpointCert>()>;
  /// Serialized snapshot matching a certificate; empty = cannot serve.
  using StateFn = std::function<Bytes(const crypto::CheckpointCert&)>;
  /// Verify + install a fetched snapshot; false = reject (Byzantine data).
  using InstallFn = std::function<bool(const crypto::CheckpointCert&, BytesView state)>;
  using DoneFn = std::function<void(bool ok)>;

  /// `tag` routes this instance's own messages; `source_tag` is the tag of
  /// the protocol instance whose checkpoints are being transferred (the
  /// certificate statement is domain-separated by it).
  StateTransfer(Party& host, std::string tag, std::string source_tag, CertFn latest_certificate,
                StateFn state_bytes, InstallFn install, Options options = {});
  ~StateTransfer();

  StateTransfer(const StateTransfer&) = delete;
  StateTransfer& operator=(const StateTransfer&) = delete;

  /// Start a recovery: discover the best certified checkpoint among peers,
  /// fetch + verify + install it, then invoke `done`.  No-op if a recovery
  /// is already running.
  void begin_recovery(DoneFn done);

  [[nodiscard]] bool in_progress() const { return phase_ != Phase::kIdle; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  enum MsgType : std::uint8_t {
    kQueryCert = 0,   ///< give me your best certified checkpoint
    kCertReply = 1,   ///< offer: certificate + chunk manifest
    kFetchChunk = 2,  ///< send chunk `index` of round `round`
    kChunkReply = 3,  ///< one snapshot chunk (or a cannot-serve notice)
  };

  enum class Phase { kIdle, kQuery, kFetch };

  struct Offer {
    int peer = -1;
    crypto::CheckpointCert cert;
    std::vector<Bytes> manifest;  ///< per-chunk digests
    std::uint64_t total_size = 0;
  };

  void handle(int from, Reader& reader);
  void serve_query(int from);
  void serve_chunk(int from, Reader& reader);
  void on_cert_reply(int from, Reader& reader);
  void on_chunk_reply(int from, Reader& reader);
  void start_query_round();
  void close_query_window();
  void request_chunk();
  void abandon_peer(const char* why);
  void finish(bool ok);
  void release_fetch_charges();
  [[nodiscard]] const Bytes* serving_state(std::uint32_t round);
  [[nodiscard]] static Bytes chunk_digest(std::uint32_t round, std::uint32_t index,
                                          BytesView data);

  Party& host_;
  const std::string tag_;
  const std::string source_tag_;
  CertFn latest_certificate_;
  StateFn state_bytes_;
  InstallFn install_;
  Options options_;
  Stats stats_;

  // Server side: the snapshot matching our current certificate, rebuilt
  // lazily and cached per certified round so a peer's chunk loop does not
  // re-serialize the log for every chunk.
  std::optional<std::pair<std::uint32_t, Bytes>> serve_cache_;

  // Client side.
  Phase phase_ = Phase::kIdle;
  DoneFn done_;
  int rounds_attempted_ = 0;
  crypto::PartySet replied_ = 0;    ///< peers heard from this query round
  crypto::PartySet bad_peers_ = 0;  ///< blacklisted for provable misbehavior
  std::optional<Offer> best_;
  std::uint32_t next_chunk_ = 0;
  int chunk_retries_left_ = 0;
  std::vector<Bytes> chunks_;
  std::vector<std::pair<int, std::size_t>> charges_;  ///< budget held for chunks
  std::optional<Network::TimerId> timer_;
};

}  // namespace sintra::net
