// The wire unit of the simulated asynchronous network.
//
// `tag` routes a message to a protocol instance within the receiving party.
// Tags are hierarchical ("abc/5/vba/cb/2"); the component before the first
// '/' names the top-level protocol and is the key under which the simulator
// aggregates message/byte statistics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace sintra::net {

struct Message {
  int from = -1;
  int to = -1;
  std::string tag;
  Bytes payload;
  std::uint64_t id = 0;        ///< unique per simulation, assigned on submit
  std::uint64_t sent_at = 0;   ///< simulator step at submission

  [[nodiscard]] std::size_t wire_size() const { return tag.size() + payload.size() + 16; }
};

/// Top-level component of a tag ("abc/5/vba" -> "abc").  Returns a view
/// into `tag` — no allocation; the caller must keep the tag alive.
inline std::string_view tag_prefix(std::string_view tag) {
  const std::size_t slash = tag.find('/');
  return slash == std::string_view::npos ? tag : tag.substr(0, slash);
}

}  // namespace sintra::net
