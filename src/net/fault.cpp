#include "net/fault.hpp"

namespace sintra::net {

namespace {
bool chance(Rng& rng, std::uint32_t per_1024) {
  return per_1024 > 0 && rng.below(1024) < per_1024;
}
}  // namespace

std::optional<Message> FaultInjector::maybe_replay(std::uint64_t now) {
  (void)now;
  if (history_.empty() || !chance(rng_, policy_.replay_chance)) return std::nullopt;
  const std::size_t index = static_cast<std::size_t>(rng_.below(history_.size()));
  Message replayed = history_[index];
  int& count = replays_[replayed.id];
  if (++count >= policy_.max_replays) {
    // Replay budget exhausted: forget the message so the bounded history
    // keeps room for fresher traffic.
    history_.erase(history_.begin() + static_cast<std::ptrdiff_t>(index));
  }
  ++stats_.replayed;
  return replayed;
}

bool FaultInjector::should_drop(const Message& message) {
  if (!chance(rng_, policy_.drop_chance)) return false;
  int& count = drops_[message.id];
  if (count >= policy_.max_drops) return false;  // retrying link must deliver
  ++count;
  ++stats_.dropped;
  return true;
}

bool FaultInjector::should_duplicate(const Message& message) {
  if (!chance(rng_, policy_.duplicate_chance)) return false;
  int& count = copies_[message.id];
  if (count >= policy_.max_copies) return false;
  ++count;
  ++stats_.duplicated;
  return true;
}

void FaultInjector::record_delivered(const Message& message) {
  if (policy_.replay_chance == 0 || policy_.history_window == 0) return;
  if (replays_[message.id] >= policy_.max_replays) return;
  history_.push_back(message);
  while (history_.size() > policy_.history_window) history_.pop_front();
}

}  // namespace sintra::net
