#include "net/fault.hpp"

namespace sintra::net {

namespace {
bool chance(Rng& rng, std::uint32_t per_1024) {
  return per_1024 > 0 && rng.below(1024) < per_1024;
}
}  // namespace

PartitionProfile PartitionProfile::split_heal(int n, std::uint64_t seed, std::uint64_t period,
                                             int splits) {
  PartitionProfile profile;
  Rng rng(seed);
  for (int s = 0; s < splits; ++s) {
    Phase split;
    split.steps = period;
    split.group_of.resize(static_cast<std::size_t>(n));
    // Random two-group split, re-drawn until both sides are non-empty so
    // every split phase actually severs something.
    bool mixed = false;
    while (!mixed) {
      bool saw[2] = {false, false};
      for (int node = 0; node < n; ++node) {
        const int group = static_cast<int>(rng.below(2));
        split.group_of[static_cast<std::size_t>(node)] = group;
        saw[group] = true;
      }
      mixed = saw[0] && saw[1];
    }
    profile.phases.push_back(std::move(split));
    Phase heal;
    heal.steps = period;  // group_of empty = fully healed
    profile.phases.push_back(std::move(heal));
  }
  return profile;
}

std::uint64_t PartitionProfile::schedule_steps() const {
  std::uint64_t total = 0;
  for (const Phase& phase : phases) total += phase.steps;
  return total;
}

bool PartitionProfile::severed(int a, int b, std::uint64_t step) const {
  std::uint64_t begin = 0;
  for (const Phase& phase : phases) {
    if (step < begin + phase.steps) {
      if (phase.group_of.empty()) return false;
      if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= phase.group_of.size() ||
          static_cast<std::size_t>(b) >= phase.group_of.size()) {
        return false;
      }
      return phase.group_of[static_cast<std::size_t>(a)] !=
             phase.group_of[static_cast<std::size_t>(b)];
    }
    begin += phase.steps;
  }
  return false;  // past the schedule: healed
}

bool PartitionProfile::one_way(int from, int to) const {
  for (const auto& [f, t] : oneway_pairs) {
    if (f == from && t == to) return true;
  }
  return false;
}

bool PartitionProfile::gray(int node) const {
  for (int g : gray_peers) {
    if (g == node) return true;
  }
  return false;
}

std::optional<Message> FaultInjector::maybe_replay(std::uint64_t now) {
  (void)now;
  if (history_.empty() || !chance(rng_, policy_.replay_chance)) return std::nullopt;
  const std::size_t index = static_cast<std::size_t>(rng_.below(history_.size()));
  Message replayed = history_[index];
  int& count = replays_[replayed.id];
  if (++count >= policy_.max_replays) {
    // Replay budget exhausted: forget the message so the bounded history
    // keeps room for fresher traffic.
    history_.erase(history_.begin() + static_cast<std::ptrdiff_t>(index));
  }
  ++stats_.replayed;
  return replayed;
}

bool FaultInjector::should_drop(const Message& message) {
  if (!chance(rng_, policy_.drop_chance)) return false;
  int& count = drops_[message.id];
  if (count >= policy_.max_drops) return false;  // retrying link must deliver
  ++count;
  ++stats_.dropped;
  return true;
}

bool FaultInjector::should_duplicate(const Message& message) {
  if (!chance(rng_, policy_.duplicate_chance)) return false;
  int& count = copies_[message.id];
  if (count >= policy_.max_copies) return false;
  ++count;
  ++stats_.duplicated;
  return true;
}

void FaultInjector::record_delivered(const Message& message) {
  if (policy_.replay_chance == 0 || policy_.history_window == 0) return;
  if (replays_[message.id] >= policy_.max_replays) return;
  history_.push_back(message);
  while (history_.size() > policy_.history_window) history_.pop_front();
}

}  // namespace sintra::net
