// The honest protocol host: routes messages to protocol instances by tag,
// buffers out-of-order traffic, and exposes the party's identity, dealt
// keys, failure model, and randomness to the protocol objects it hosts.
//
// Self-addressed messages bypass the network adversary: a party's messages
// to itself model internal state transitions, which no network scheduler
// can delay (they are delivered from a local queue before control returns
// to the simulator).
//
// Resource governance (issue 4): traffic buffered here for not-yet-
// registered tags is metered through a ResourceBudget (per-peer, per-
// instance and total byte caps), so a Byzantine peer spraying bogus
// instance tags cannot grow the buffer without bound.  Completed protocol
// instances retire their tag subtrees — late traffic for a retired tag is
// dropped instead of buffered, and the tag's write-ahead-log entries are
// pruned once a registered checkpoint captures their effects (WAL
// compaction: restarts stop resurrecting dead state).
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string_view>

#include "adversary/quorum.hpp"
#include "common/executor.hpp"
#include "common/serialize.hpp"
#include "common/work_pool.hpp"
#include "net/budget.hpp"
#include "net/simulator.hpp"

namespace sintra::net {

class Party : public Process {
 public:
  /// Handler for one protocol instance; `from` is authenticated by the
  /// network substrate.  Handlers may throw ProtocolError to reject
  /// malformed (Byzantine) input — the party drops the message and keeps
  /// running.
  using Handler = std::function<void(int from, Reader& reader)>;
  /// WAL-compaction checkpoint for one instance: save() serializes the
  /// instance's durable state at snapshot time; load() reinstates it into
  /// a freshly rebuilt instance before the remaining WAL suffix replays.
  using CheckpointSave = std::function<Bytes()>;
  using CheckpointLoad = std::function<void(Reader&)>;

  /// `network` is either the deterministic Simulator or a NetworkedNode
  /// over a real transport; the protocol stack cannot tell the difference.
  Party(Network& network, int id, adversary::Deployment deployment, std::uint64_t seed);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int n() const { return deployment_.n(); }
  [[nodiscard]] const adversary::Deployment& deployment() const { return deployment_; }
  [[nodiscard]] const adversary::QuorumSystem& quorum() const { return *deployment_.quorum; }
  [[nodiscard]] const crypto::PublicKeys& public_keys() const {
    return deployment_.keys->public_keys();
  }
  [[nodiscard]] const crypto::PartyKeyShare& keys() const {
    return deployment_.keys->share(id_);
  }
  [[nodiscard]] Rng& rng();
  [[nodiscard]] Network& network() { return network_; }

  /// Buffered-bytes governance.  Configure caps before traffic flows;
  /// protocol buffers charge through this object (see net/budget.hpp).
  [[nodiscard]] ResourceBudget& budget() { return budget_; }
  [[nodiscard]] const ResourceBudget& budget() const { return budget_; }
  void set_budget(BudgetConfig config) { budget_.configure(config); }

  // --- membership epochs (protocols/reconfig.hpp) ----------------------
  /// One applied reconfiguration: the epoch entered and the new committee
  /// as old-slot ids (-1 for joined-blank slots).  Recorded durably so a
  /// snapshot+WAL replay reproduces the membership history bit-exactly.
  struct EpochRecord {
    std::uint32_t epoch = 0;
    std::vector<std::int32_t> members;
  };
  [[nodiscard]] std::uint32_t epoch() const {
    std::lock_guard<std::mutex> lock(state_mutex_);
    return epoch_;
  }
  /// Enter `epoch` with the given membership (monotonic; replay-safe:
  /// re-entering an already-recorded epoch is a no-op).  The record rides
  /// every snapshot, so a restore re-enters the same epoch before the WAL
  /// suffix replays.
  void begin_epoch(std::uint32_t epoch, std::vector<std::int32_t> members);
  [[nodiscard]] std::vector<EpochRecord> epoch_log() const {
    std::lock_guard<std::mutex> lock(state_mutex_);
    return epoch_log_;
  }

  void send(int to, const std::string& tag, Bytes payload);
  /// Send to every party, self included (self copy delivered locally).
  void broadcast(const std::string& tag, const Bytes& payload);

  /// Timer in this party's execution context, in network time units
  /// (delivery steps under the simulator, milliseconds over a real
  /// transport).  See Network::schedule_timer for the semantics.  In
  /// concurrent mode the callback is re-posted to the executor of the
  /// instance tree that scheduled it, so timers never race with message
  /// handlers of the same tree.
  Network::TimerId schedule_timer(std::uint64_t delay, Network::TimerFn fn);
  void cancel_timer(Network::TimerId id) { network_.cancel_timer(id); }

  /// Register the handler for `tag`; any buffered messages for it are
  /// re-dispatched in arrival order.
  void register_handler(const std::string& tag, Handler handler);
  /// Remove the handler for `tag` (instance destruction).  No-op if the
  /// tag is not registered.
  void unregister_handler(const std::string& tag);
  [[nodiscard]] bool has_handler(const std::string& tag) const {
    std::lock_guard<std::mutex> lock(state_mutex_);
    return handlers_.contains(tag);
  }

  /// Instance GC: tombstone `prefix` — late traffic for the tag or its
  /// subtree is dropped (not buffered), buffered messages under it are
  /// freed, its WAL entries are pruned and its budget charges released.
  /// The tombstone set is bounded (oldest retired first) and persists
  /// across crash-restore so replay does not resurrect retired state.
  void retire_tag(const std::string& prefix);
  [[nodiscard]] bool is_retired(std::string_view tag) const;

  /// Register a WAL-compaction checkpoint for the instance owning
  /// `prefix`.  Only sound for instances that exist at stack-build time
  /// (the loader must be registered before restore() runs) and whose
  /// checkpoint captures the effects of every WAL entry they prune.
  void register_checkpoint(const std::string& prefix, CheckpointSave save, CheckpointLoad load);
  void unregister_checkpoint(const std::string& prefix);

  /// Drop WAL entries with exactly tag `tag` that `prunable` approves.
  /// Only sound when a registered checkpoint captures their effects.
  void prune_wal(const std::string& tag, const std::function<bool(const Message&)>& prunable);

  void on_message(const Message& message) override;

  /// Crash recovery (net/fault.hpp).  With the WAL enabled, every network
  /// message is appended to a write-ahead log before dispatch, and so is
  /// every *external* self-message (an application submit outside any
  /// handler — replay cannot regenerate those); snapshot() serializes
  /// registered instance checkpoints, the retired-tag set and the
  /// (compacted) log; restore() loads the checkpoints and replays the log
  /// suffix through the (freshly rebuilt) protocol stack.  Replay is
  /// deterministic up to signature randomness: a compacted party re-derives
  /// fresh (still valid) signature shares where the original incarnation
  /// had drawn different randomness, which receivers verify rather than
  /// compare — the rebuilt party rejoins exactly where it crashed.
  void enable_wal() { wal_enabled_ = true; }
  [[nodiscard]] bool wal_enabled() const { return wal_enabled_; }
  [[nodiscard]] const std::vector<Message>& wal() const { return wal_; }
  [[nodiscard]] Bytes snapshot() const override;
  void restore(BytesView persisted) override;

  /// Attach a crypto work pool (not owned; must be drained/destroyed
  /// before the party dies).  Without one — or with a zero-thread pool —
  /// offload() degrades to deterministic inline execution.
  void set_work_pool(common::WorkPool* pool) { work_pool_ = pool; }
  [[nodiscard]] common::WorkPool* work_pool() const { return work_pool_; }

  /// Attach an executor pool (not owned; stop() it before the party dies).
  /// With a pool of one or more executors, on_message routes each message
  /// to the executor owning its instance tree (stable hash of the tag's
  /// root segment), so independent top-level instances run concurrently
  /// while each tree keeps strict arrival order.  WAL appends stay on the
  /// pump thread in arrival order and restore() always replays inline and
  /// single-threaded, so replay is bit-exact regardless of executor count.
  /// A null pool — or a zero-executor pool — is the old inline behavior.
  /// Concurrent mode requires the network to be a NetworkedNode (the
  /// Simulator is single-threaded by contract) and protocol stacks to be
  /// constructed inside with_instance() so construction-time timers know
  /// their tree.
  void set_executors(common::ExecutorPool* pool) { executors_ = pool; }
  [[nodiscard]] common::ExecutorPool* executors() const { return executors_; }
  /// Shard salt for executor-lane assignment when several parties
  /// (tenants of one multi-group host) share one machine-wide pool: lanes
  /// become a stable hash of (lane group, tag root), so identical tag
  /// roots in distinct shards verify on distinct cores while each
  /// instance tree stays serial-FIFO.  Default 0 reproduces the legacy
  /// single-tenant assignment.  Set during wiring, before traffic flows.
  void set_lane_group(std::uint64_t group) { lane_group_ = group; }
  [[nodiscard]] std::uint64_t lane_group() const { return lane_group_; }
  /// True when messages are dispatched on executor threads.
  [[nodiscard]] bool concurrent() const {
    return executors_ != nullptr && !executors_->sequential();
  }

  /// Scope construction (or any out-of-band touch) of the instance tree
  /// rooted at `root`: handlers registered and timers scheduled inside
  /// `fn` are attributed to `root`'s executor.  No-op wrapper outside
  /// concurrent mode.
  void with_instance(std::string_view root, const std::function<void()>& fn);

  /// Run `job` off the event loop and deliver its result to this party as
  /// an ordinary self-message on `tag`, so protocol logic stays
  /// single-threaded.  Inline mode (no pool / sequential pool) runs the
  /// job immediately: called inside a handler, the verdict self-message
  /// rides the local queue exactly like any other in-handler send, which
  /// keeps seeded runs and WAL replay bit-exact.  Threaded mode delivers
  /// the verdict when the owner thread drains the pool; verdicts count as
  /// external inputs there (WAL-logged), so verdict handlers must be
  /// idempotent and must require from == me().
  void offload(const std::string& tag, common::WorkPool::Job job);

  /// Trace helper (no-op without an attached log).
  void trace(const std::string& component, std::string text);

 private:
  /// Per-dispatching-thread context.  Sequential mode uses the single
  /// main_ctx_ member (zero-cost, bit-exact old behavior); concurrent mode
  /// gives every executor thread its own: the in-handler local queue and
  /// the dispatching flag are properties of one call stack, and the
  /// per-thread Rng (seeded from the party seed and a unique slot counter,
  /// so no two threads ever share a randomness stream — distinct streams
  /// are what keeps signature/nonce randomness from repeating) removes the
  /// one piece of shared mutable state handlers touch on every message.
  struct DispatchCtx {
    std::deque<Message> local;
    bool dispatching = false;
    std::string current_root;  ///< instance-tree root being executed
    std::optional<Rng> rng;
    std::uint64_t rng_owner_seed = 0;  ///< guards against recycled thread slots
  };
  [[nodiscard]] DispatchCtx& ctx();

  void dispatch(const Message& message);
  void drain_local();
  /// Callers hold state_mutex_ (concurrent mode) or are single-threaded.
  void buffer_unhandled(const Message& message);
  [[nodiscard]] bool is_retired_unlocked(std::string_view tag) const;
  [[nodiscard]] static std::size_t buffered_cost(const Message& message) {
    return message.tag.size() + message.payload.size() + 16;
  }

  Network& network_;
  int id_;
  adversary::Deployment deployment_;
  std::uint64_t seed_;
  Rng rng_;
  ResourceBudget budget_;
  /// Guards handlers_/buffered_/retired_/retired_order_/checkpoints_/wal_
  /// against concurrent executor threads.  Never held while a protocol
  /// handler runs (the handler closure is copied out first), so handlers
  /// are free to call back into register/retire/prune.
  mutable std::mutex state_mutex_;
  std::map<std::string, Handler> handlers_;
  std::map<std::string, std::deque<Message>> buffered_;
  std::set<std::string, std::less<>> retired_;
  std::deque<std::string> retired_order_;  ///< FIFO for the tombstone cap
  struct Checkpoint {
    CheckpointSave save;
    CheckpointLoad load;
  };
  std::map<std::string, Checkpoint> checkpoints_;
  DispatchCtx main_ctx_;
  bool wal_enabled_ = false;
  common::WorkPool* work_pool_ = nullptr;
  common::ExecutorPool* executors_ = nullptr;
  std::uint64_t lane_group_ = 0;  ///< shard salt for executor-lane hashing
  std::atomic<std::uint64_t> rng_slots_{0};
  std::vector<Message> wal_;  ///< received messages + external inputs, arrival order
  std::uint32_t epoch_ = 0;  ///< current membership epoch (state_mutex_)
  std::vector<EpochRecord> epoch_log_;  ///< applied reconfigurations (state_mutex_)
};

}  // namespace sintra::net
