// The honest protocol host: routes messages to protocol instances by tag,
// buffers out-of-order traffic, and exposes the party's identity, dealt
// keys, failure model, and randomness to the protocol objects it hosts.
//
// Self-addressed messages bypass the network adversary: a party's messages
// to itself model internal state transitions, which no network scheduler
// can delay (they are delivered from a local queue before control returns
// to the simulator).
#pragma once

#include <deque>
#include <functional>
#include <map>

#include "adversary/quorum.hpp"
#include "common/serialize.hpp"
#include "net/simulator.hpp"

namespace sintra::net {

class Party : public Process {
 public:
  /// Handler for one protocol instance; `from` is authenticated by the
  /// network substrate.  Handlers may throw ProtocolError to reject
  /// malformed (Byzantine) input — the party drops the message and keeps
  /// running.
  using Handler = std::function<void(int from, Reader& reader)>;

  /// `network` is either the deterministic Simulator or a NetworkedNode
  /// over a real transport; the protocol stack cannot tell the difference.
  Party(Network& network, int id, adversary::Deployment deployment, std::uint64_t seed);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int n() const { return deployment_.n(); }
  [[nodiscard]] const adversary::Deployment& deployment() const { return deployment_; }
  [[nodiscard]] const adversary::QuorumSystem& quorum() const { return *deployment_.quorum; }
  [[nodiscard]] const crypto::PublicKeys& public_keys() const {
    return deployment_.keys->public_keys();
  }
  [[nodiscard]] const crypto::PartyKeyShare& keys() const {
    return deployment_.keys->share(id_);
  }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] Network& network() { return network_; }

  void send(int to, const std::string& tag, Bytes payload);
  /// Send to every party, self included (self copy delivered locally).
  void broadcast(const std::string& tag, const Bytes& payload);

  /// Timer in this party's execution context, in network time units
  /// (delivery steps under the simulator, milliseconds over a real
  /// transport).  See Network::schedule_timer for the semantics.
  Network::TimerId schedule_timer(std::uint64_t delay, Network::TimerFn fn) {
    return network_.schedule_timer(id_, delay, std::move(fn));
  }
  void cancel_timer(Network::TimerId id) { network_.cancel_timer(id); }

  /// Register the handler for `tag`; any buffered messages for it are
  /// re-dispatched in arrival order.
  void register_handler(const std::string& tag, Handler handler);
  [[nodiscard]] bool has_handler(const std::string& tag) const {
    return handlers_.contains(tag);
  }

  void on_message(const Message& message) override;

  /// Crash recovery (net/fault.hpp).  With the WAL enabled, every network
  /// message is appended to a write-ahead log before dispatch, and so is
  /// every *external* self-message (an application submit outside any
  /// handler — replay cannot regenerate those); snapshot() serializes the
  /// log, and restore() replays it through the (freshly rebuilt) protocol
  /// stack.  Because protocol state is a deterministic function of the
  /// party's seed, its received-message sequence and its logged inputs,
  /// the replayed party rejoins exactly where it crashed.
  void enable_wal() { wal_enabled_ = true; }
  [[nodiscard]] const std::vector<Message>& wal() const { return wal_; }
  [[nodiscard]] Bytes snapshot() const override;
  void restore(BytesView persisted) override;

  /// Trace helper (no-op without an attached log).
  void trace(const std::string& component, std::string text);

 private:
  void dispatch(const Message& message);
  void drain_local();

  Network& network_;
  int id_;
  adversary::Deployment deployment_;
  Rng rng_;
  std::map<std::string, Handler> handlers_;
  std::map<std::string, std::deque<Message>> buffered_;
  std::deque<Message> local_;
  bool dispatching_ = false;
  bool wal_enabled_ = false;
  std::vector<Message> wal_;  ///< received messages + external inputs, arrival order
};

}  // namespace sintra::net
