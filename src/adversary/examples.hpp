// The two concrete generalized adversary structures of §4.3.
//
// Example 1 — nine servers, one attribute `class = {a, b, c, d}`:
//     class(1..4) = a, class(5..6) = b, class(7..8) = c, class(9) = d
// (0-indexed here: parties 0..3 are a, 4..5 are b, 6..7 are c, 8 is d).
// Tolerates at most two arbitrary servers OR all servers of one class.
// Access structure: Θ³₉(S) ∧ Θ²₄(χ_a, χ_b, χ_c, χ_d) — coalitions of size
// at least three covering at least two classes.
//
// Example 2 — sixteen servers classified by two independent attributes with
// four values each: location (New York, Tokyo, Zurich, Haifa) × operating
// system (AIX, NT, Linux, Solaris); party index = 4*location + os.
// Tolerates the simultaneous corruption of all servers at one location AND
// all servers with one operating system (up to 7 servers), where any pure
// threshold scheme tolerates at most 5 of 16.
#pragma once

#include "adversary/quorum.hpp"

namespace sintra::adversary {

/// Example 1 party classes, exposed for tests/benches.
inline constexpr int kExample1Classes[9] = {0, 0, 0, 0, 1, 1, 2, 2, 3};

/// Access formula for Example 1 (9 parties).
Formula example1_access();

/// Example 2 helpers: party index for (location, os), both in 0..3.
inline constexpr int example2_party(int location, int os) { return 4 * location + os; }

/// Access formula for Example 2 (16 parties).
Formula example2_access();

/// The *tolerated* adversary structure of Example 2: the monotone closure
/// of the sixteen sets (all servers at one location) ∪ (all servers with
/// one OS).  Note this is deliberately NOT derived from the formula: the
/// formula's maximal unqualified sets form a strictly larger family that
/// violates Q³ (e.g. one full location plus one scattered server per other
/// location).  The paper's Q³ claim is about this structure; the formula
/// is only the sharing construction, whose access structure safely
/// under-approximates the complement of A.
AdversaryStructure example2_structure();

/// Ready-made deployments (Q³ verified at construction).
Deployment example1_deployment(Rng& rng, const CryptoConfig& config = CryptoConfig::fast());
Deployment example2_deployment(Rng& rng, const CryptoConfig& config = CryptoConfig::fast());

}  // namespace sintra::adversary
