#include "adversary/quorum.hpp"

#include "common/assert.hpp"
#include "crypto/shamir.hpp"

namespace sintra::adversary {

using crypto::full_set;
using crypto::popcount;

ThresholdQuorum::ThresholdQuorum(int n, int t) : n_(n), t_(t) {
  SINTRA_REQUIRE(n > 3 * t, "ThresholdQuorum: requires n > 3t");
  SINTRA_REQUIRE(n <= 64, "ThresholdQuorum: n out of range");
}

bool ThresholdQuorum::corruptible(PartySet set) const {
  return popcount(set & full_set(n_)) <= t_;
}

bool ThresholdQuorum::is_quorum(PartySet heard) const {
  return popcount(heard & full_set(n_)) >= n_ - t_;
}

bool ThresholdQuorum::exceeds_fault_set(PartySet heard) const {
  return popcount(heard & full_set(n_)) >= t_ + 1;
}

bool ThresholdQuorum::is_vote_quorum(PartySet heard) const {
  return popcount(heard & full_set(n_)) >= 2 * t_ + 1;
}

std::string ThresholdQuorum::describe() const {
  return "threshold(n=" + std::to_string(n_) + ",t=" + std::to_string(t_) + ")";
}

GeneralQuorum::GeneralQuorum(AdversaryStructure structure) : structure_(std::move(structure)) {
  SINTRA_REQUIRE(structure_.satisfies_q3(), "GeneralQuorum: structure violates Q3");
}

bool GeneralQuorum::corruptible(PartySet set) const {
  return structure_.corruptible(set);
}

bool GeneralQuorum::is_quorum(PartySet heard) const {
  return structure_.corruptible(full_set(n()) & ~heard);
}

bool GeneralQuorum::exceeds_fault_set(PartySet heard) const {
  return !structure_.corruptible(heard);
}

bool GeneralQuorum::is_vote_quorum(PartySet heard) const {
  for (PartySet bad : structure_.maximal_sets()) {
    if (structure_.corruptible(heard & ~bad)) return false;
  }
  return true;
}

std::string GeneralQuorum::describe() const {
  return "general " + structure_.describe();
}

CryptoConfig CryptoConfig::production() {
  return CryptoConfig{crypto::Group::default_group(), 256};
}

CryptoConfig CryptoConfig::curve() {
  return CryptoConfig{crypto::Group::curve_group(), 256};
}

Deployment Deployment::threshold(int n, int t, Rng& rng, const CryptoConfig& config) {
  auto quorum = std::make_shared<const ThresholdQuorum>(n, t);
  auto low = std::make_shared<const crypto::ThresholdScheme>(n, t);
  auto high = std::make_shared<const crypto::ThresholdScheme>(n, n - t - 1);
  auto keys = std::make_shared<const crypto::KeyBundle>(crypto::KeyBundle::deal(
      config.group, std::move(low), std::move(high),
      crypto::RsaParams::precomputed(config.rsa_prime_bits), rng));
  return Deployment{std::move(quorum), std::move(keys)};
}

Deployment Deployment::general(const Formula& access, int n, Rng& rng,
                               const CryptoConfig& config) {
  return general_with_structure(access, access.to_adversary_structure(n), rng, config);
}

Deployment Deployment::general_with_structure(const Formula& access,
                                              AdversaryStructure structure, Rng& rng,
                                              const CryptoConfig& config) {
  const int n = structure.n();
  SINTRA_REQUIRE(n >= access.max_party(), "Deployment: formula mentions unknown parties");
  SINTRA_REQUIRE(structure.satisfies_q3(), "Deployment: adversary structure violates Q3");
  // Compatibility of sharing and failure model: the adversary must never be
  // qualified, and every full quorum must be.
  for (PartySet bad : structure.maximal_sets()) {
    SINTRA_REQUIRE(!access.eval(bad), "Deployment: a corruptible set is qualified");
    SINTRA_REQUIRE(access.eval(full_set(n) & ~bad),
                   "Deployment: a quorum complement is unqualified");
  }
  auto quorum = std::make_shared<const GeneralQuorum>(std::move(structure));

  auto low = std::make_shared<const LsssScheme>(access, n);
  auto high = std::make_shared<const LsssScheme>(
      Formula::quorum_formula(quorum->structure()), n);
  auto keys = std::make_shared<const crypto::KeyBundle>(crypto::KeyBundle::deal(
      config.group, std::move(low), std::move(high),
      crypto::RsaParams::precomputed(config.rsa_prime_bits), rng));
  return Deployment{std::move(quorum), std::move(keys)};
}

}  // namespace sintra::adversary
