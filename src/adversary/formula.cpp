#include "adversary/formula.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sintra::adversary {

using crypto::contains;
using crypto::full_set;
using crypto::party_bit;

Formula Formula::leaf(int party) {
  SINTRA_REQUIRE(party >= 0 && party < 64, "Formula: party out of range");
  Formula f;
  f.party_ = party;
  return f;
}

Formula Formula::threshold(int k, std::vector<Formula> children) {
  SINTRA_REQUIRE(!children.empty(), "Formula: gate with no children");
  SINTRA_REQUIRE(k >= 1 && k <= static_cast<int>(children.size()),
                 "Formula: threshold out of range");
  Formula f;
  f.k_ = k;
  f.children_ = std::move(children);
  return f;
}

Formula Formula::land(std::vector<Formula> children) {
  const int k = static_cast<int>(children.size());
  return threshold(k, std::move(children));
}

Formula Formula::lor(std::vector<Formula> children) {
  return threshold(1, std::move(children));
}

bool Formula::eval(PartySet present) const {
  if (is_leaf()) return contains(present, party_);
  int satisfied = 0;
  for (const Formula& child : children_) {
    if (child.eval(present)) {
      ++satisfied;
      if (satisfied >= k_) return true;
    }
  }
  return false;
}

int Formula::num_leaves() const {
  if (is_leaf()) return 1;
  int total = 0;
  for (const Formula& child : children_) total += child.num_leaves();
  return total;
}

int Formula::max_party() const {
  if (is_leaf()) return party_ + 1;
  int max = 0;
  for (const Formula& child : children_) max = std::max(max, child.max_party());
  return max;
}

AdversaryStructure Formula::to_adversary_structure(int n) const {
  SINTRA_REQUIRE(n >= max_party(), "Formula: n smaller than mentioned parties");
  SINTRA_REQUIRE(n <= 24, "Formula: enumeration limited to n <= 24");
  const PartySet limit = PartySet{1} << n;
  std::vector<PartySet> maximal;
  for (PartySet set = 0; set < limit; ++set) {
    if (eval(set)) continue;  // qualified, not an adversary set
    bool is_maximal = true;
    for (int i = 0; i < n && is_maximal; ++i) {
      if (!contains(set, i) && !eval(set | party_bit(i))) is_maximal = false;
    }
    if (is_maximal) maximal.push_back(set);
  }
  return AdversaryStructure(n, std::move(maximal));
}

Formula Formula::weighted_threshold(const std::vector<int>& weights, int threshold) {
  std::vector<Formula> leaves;
  int total = 0;
  for (std::size_t party = 0; party < weights.size(); ++party) {
    SINTRA_REQUIRE(weights[party] >= 0, "Formula: negative weight");
    for (int k = 0; k < weights[party]; ++k) {
      leaves.push_back(Formula::leaf(static_cast<int>(party)));
    }
    total += weights[party];
  }
  SINTRA_REQUIRE(threshold >= 1 && threshold <= total, "Formula: weight threshold out of range");
  return Formula::threshold(threshold, std::move(leaves));
}

Formula Formula::quorum_formula(const AdversaryStructure& structure) {
  const PartySet universe = full_set(structure.n());
  std::vector<Formula> alternatives;
  alternatives.reserve(structure.maximal_sets().size());
  for (PartySet bad : structure.maximal_sets()) {
    std::vector<Formula> quorum_members;
    for (int p : crypto::set_members(universe & ~bad)) {
      quorum_members.push_back(Formula::leaf(p));
    }
    SINTRA_INVARIANT(!quorum_members.empty(), "Formula: adversary set covers everything");
    alternatives.push_back(Formula::land(std::move(quorum_members)));
  }
  return Formula::lor(std::move(alternatives));
}

}  // namespace sintra::adversary
