// Quorum systems: the three protocol-adaptation rules of §4.2, behind one
// interface so every broadcast/agreement protocol is written once and runs
// under either failure model.
//
//   threshold model            generalized Q³ structure A
//   ------------------------   ----------------------------------------
//   wait for n−t parties       wait for P ∖ S, some S ∈ A*   (is_quorum)
//   2t+1 values                S ∪ T ∪ {i}, disjoint S,T ∈ A* (is_vote_quorum)
//   t+1 values                 S ∪ {i}, S ∈ A*               (exceeds_fault_set)
//
// The checks are phrased as monotone predicates on the set of parties heard
// from, which is how the asynchronous protocols consume them ("have I
// received enough yet?"):
//   is_quorum(R)          ⟺  P ∖ R ∈ A
//   exceeds_fault_set(R)  ⟺  R ∉ A
//   is_vote_quorum(R)     ⟺  for all S ∈ A*: R ∖ S ∉ A
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "adversary/lsss.hpp"
#include "adversary/structure.hpp"
#include "crypto/dealer.hpp"

namespace sintra::adversary {

class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  [[nodiscard]] virtual int n() const = 0;
  /// True iff the adversary may corrupt exactly/at most this set.
  [[nodiscard]] virtual bool corruptible(PartySet set) const = 0;
  /// "n−t" rule: `heard` contains all parties outside some corruptible set.
  [[nodiscard]] virtual bool is_quorum(PartySet heard) const = 0;
  /// "t+1" rule: `heard` is guaranteed to contain an honest party.
  [[nodiscard]] virtual bool exceeds_fault_set(PartySet heard) const = 0;
  /// "2t+1" rule: even after removing any corruptible subset, `heard`
  /// still exceeds a fault set (majority voting on replies).
  [[nodiscard]] virtual bool is_vote_quorum(PartySet heard) const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Classical t-of-n quorums (popcount checks).
class ThresholdQuorum final : public QuorumSystem {
 public:
  ThresholdQuorum(int n, int t);

  [[nodiscard]] int t() const { return t_; }

  [[nodiscard]] int n() const override { return n_; }
  [[nodiscard]] bool corruptible(PartySet set) const override;
  [[nodiscard]] bool is_quorum(PartySet heard) const override;
  [[nodiscard]] bool exceeds_fault_set(PartySet heard) const override;
  [[nodiscard]] bool is_vote_quorum(PartySet heard) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  int n_;
  int t_;
};

/// Quorums from an explicit adversary structure.
class GeneralQuorum final : public QuorumSystem {
 public:
  explicit GeneralQuorum(AdversaryStructure structure);

  [[nodiscard]] const AdversaryStructure& structure() const { return structure_; }

  [[nodiscard]] int n() const override { return structure_.n(); }
  [[nodiscard]] bool corruptible(PartySet set) const override;
  [[nodiscard]] bool is_quorum(PartySet heard) const override;
  [[nodiscard]] bool exceeds_fault_set(PartySet heard) const override;
  [[nodiscard]] bool is_vote_quorum(PartySet heard) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  AdversaryStructure structure_;
};

/// Crypto parameter choice for a deployment.
struct CryptoConfig {
  crypto::GroupPtr group = crypto::Group::test_group();
  int rsa_prime_bits = 128;

  static CryptoConfig fast() { return {}; }
  static CryptoConfig production();
  /// Elliptic-curve deployment: secp256k1 for all discrete-log subsystems,
  /// production-sized RSA.  Fastest verify paths at the highest margin.
  static CryptoConfig curve();
};

/// A complete system instance: the failure model plus all dealt keys.
/// This is what servers, clients and the simulator harness are built from.
struct Deployment {
  std::shared_ptr<const QuorumSystem> quorum;
  std::shared_ptr<const crypto::KeyBundle> keys;

  [[nodiscard]] int n() const { return quorum->n(); }

  /// Classical threshold deployment, n > 3t.
  static Deployment threshold(int n, int t, Rng& rng,
                              const CryptoConfig& config = CryptoConfig::fast());

  /// Generalized deployment from an access formula (the negation of the
  /// paper's g; true on qualified sets).  Derives the adversary structure
  /// as the family of maximal unqualified sets, checks Q³, and deals keys
  /// over the Benaloh–Leichter LSSS.
  static Deployment general(const Formula& access, int n, Rng& rng,
                            const CryptoConfig& config = CryptoConfig::fast());

  /// Generalized deployment where the tolerated adversary structure is
  /// given explicitly and the access formula only drives the secret
  /// sharing.  This is needed when the sharing's access structure is a
  /// *proper subset* of the complement of A — e.g. the paper's Example 2,
  /// where the (row, column)-grid formula leaves some incorruptible sets
  /// unqualified, and deriving A from the formula would violate Q³ even
  /// though the intended structure (closure of the 16 location ∪ OS sets)
  /// satisfies it.  Validates: A is Q³, every corruptible set is
  /// unqualified, and every quorum complement P ∖ S is qualified.
  static Deployment general_with_structure(const Formula& access, AdversaryStructure structure,
                                           Rng& rng,
                                           const CryptoConfig& config = CryptoConfig::fast());
};

}  // namespace sintra::adversary
