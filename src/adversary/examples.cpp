#include "adversary/examples.hpp"

namespace sintra::adversary {

namespace {
/// χ_c as a formula: OR over the parties of class c.
Formula class_indicator(const std::vector<int>& members) {
  std::vector<Formula> leaves;
  leaves.reserve(members.size());
  for (int p : members) leaves.push_back(Formula::leaf(p));
  return Formula::lor(std::move(leaves));
}
}  // namespace

Formula example1_access() {
  // Θ³₉ over all nine parties.
  std::vector<Formula> all;
  for (int p = 0; p < 9; ++p) all.push_back(Formula::leaf(p));
  Formula three_of_nine = Formula::threshold(3, std::move(all));

  // Θ²₄ over the four class indicators.
  std::vector<Formula> classes;
  classes.push_back(class_indicator({0, 1, 2, 3}));  // class a
  classes.push_back(class_indicator({4, 5}));        // class b
  classes.push_back(class_indicator({6, 7}));        // class c
  classes.push_back(class_indicator({8}));           // class d
  Formula two_classes = Formula::threshold(2, std::move(classes));

  std::vector<Formula> both;
  both.push_back(std::move(three_of_nine));
  both.push_back(std::move(two_classes));
  return Formula::land(std::move(both));
}

Formula example2_access() {
  // x_v for location v: Θ²₄ over the four servers at that location
  // (one per OS).  y_nu analogously per operating system.
  std::vector<Formula> location_points;
  for (int location = 0; location < 4; ++location) {
    std::vector<Formula> servers;
    for (int os = 0; os < 4; ++os) servers.push_back(Formula::leaf(example2_party(location, os)));
    location_points.push_back(Formula::threshold(2, std::move(servers)));
  }
  std::vector<Formula> os_points;
  for (int os = 0; os < 4; ++os) {
    std::vector<Formula> servers;
    for (int location = 0; location < 4; ++location) {
      servers.push_back(Formula::leaf(example2_party(location, os)));
    }
    os_points.push_back(Formula::threshold(2, std::move(servers)));
  }

  std::vector<Formula> both;
  both.push_back(Formula::threshold(2, std::move(location_points)));
  both.push_back(Formula::threshold(2, std::move(os_points)));
  return Formula::land(std::move(both));
}

AdversaryStructure example2_structure() {
  std::vector<crypto::PartySet> maximal;
  for (int location = 0; location < 4; ++location) {
    for (int os = 0; os < 4; ++os) {
      crypto::PartySet set = 0;
      for (int k = 0; k < 4; ++k) {
        set |= crypto::party_bit(example2_party(location, k));
        set |= crypto::party_bit(example2_party(k, os));
      }
      maximal.push_back(set);
    }
  }
  return AdversaryStructure(16, std::move(maximal));
}

Deployment example1_deployment(Rng& rng, const CryptoConfig& config) {
  return Deployment::general(example1_access(), 9, rng, config);
}

Deployment example2_deployment(Rng& rng, const CryptoConfig& config) {
  return Deployment::general_with_structure(example2_access(), example2_structure(), rng,
                                            config);
}

}  // namespace sintra::adversary
