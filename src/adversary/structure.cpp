#include "adversary/structure.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sintra::adversary {

using crypto::full_set;
using crypto::popcount;

AdversaryStructure::AdversaryStructure(int n, std::vector<PartySet> maximal_sets) : n_(n) {
  SINTRA_REQUIRE(n >= 1 && n <= 64, "AdversaryStructure: n out of range");
  const PartySet universe = full_set(n);
  for (PartySet set : maximal_sets) {
    SINTRA_REQUIRE((set & ~universe) == 0, "AdversaryStructure: set exceeds party universe");
  }
  // Keep only maximal sets.
  std::sort(maximal_sets.begin(), maximal_sets.end(),
            [](PartySet a, PartySet b) { return popcount(a) > popcount(b); });
  for (PartySet set : maximal_sets) {
    bool subsumed = false;
    for (PartySet kept : maximal_) {
      if ((set & ~kept) == 0) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) maximal_.push_back(set);
  }
  SINTRA_REQUIRE(!maximal_.empty(), "AdversaryStructure: empty structure (use {∅})");
}

AdversaryStructure AdversaryStructure::threshold(int n, int t) {
  SINTRA_REQUIRE(t >= 0 && t < n, "AdversaryStructure: bad threshold");
  std::vector<PartySet> maximal;
  if (t == 0) {
    maximal.push_back(0);
    return AdversaryStructure(n, std::move(maximal));
  }
  // All t-subsets, enumerated by Gosper's hack.
  PartySet set = full_set(t);
  const PartySet limit = PartySet{1} << n;
  while (set < limit) {
    maximal.push_back(set);
    PartySet c = set & (~set + 1);
    PartySet r = set + c;
    set = (((r ^ set) >> 2) / c) | r;
  }
  AdversaryStructure structure(n, std::move(maximal));
  structure.uniform_threshold_ = t;
  return structure;
}

bool AdversaryStructure::corruptible(PartySet set) const {
  for (PartySet maximal : maximal_) {
    if ((set & ~maximal) == 0) return true;
  }
  return false;
}

bool AdversaryStructure::satisfies_q3() const {
  if (uniform_threshold_.has_value()) return n_ > 3 * *uniform_threshold_;
  const PartySet universe = full_set(n_);
  for (PartySet a : maximal_) {
    for (PartySet b : maximal_) {
      for (PartySet c : maximal_) {
        if ((a | b | c) == universe) return false;
      }
    }
  }
  return true;
}

bool AdversaryStructure::satisfies_q2() const {
  if (uniform_threshold_.has_value()) return n_ > 2 * *uniform_threshold_;
  const PartySet universe = full_set(n_);
  for (PartySet a : maximal_) {
    for (PartySet b : maximal_) {
      if ((a | b) == universe) return false;
    }
  }
  return true;
}

int AdversaryStructure::max_corruptions() const {
  int best = 0;
  for (PartySet set : maximal_) best = std::max(best, popcount(set));
  return best;
}

int AdversaryStructure::best_q3_threshold() const {
  // A threshold-t structure is contained in A iff every t-subset is
  // corruptible.  The largest such t is also capped by Q³: t < n/3.
  int best = 0;
  for (int t = 1; 3 * t < n_; ++t) {
    AdversaryStructure thr = threshold(n_, t);
    bool contained = true;
    for (PartySet set : thr.maximal_sets()) {
      if (!corruptible(set)) {
        contained = false;
        break;
      }
    }
    if (!contained) break;
    best = t;
  }
  return best;
}

std::string AdversaryStructure::describe() const {
  std::string out = "A*(n=" + std::to_string(n_) + "): {";
  for (std::size_t i = 0; i < maximal_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{";
    bool first = true;
    for (int p : crypto::set_members(maximal_[i])) {
      if (!first) out += ",";
      out += std::to_string(p);
      first = false;
    }
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace sintra::adversary
