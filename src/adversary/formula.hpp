// Monotone Boolean formulas over n-ary threshold gates (Section 4.2).
//
// The paper describes adversary/access structures by formulas built from
// threshold gates Theta_k^n (AND = Theta_n^n, OR = Theta_1^n) over party
// variables.  A Formula here is the *access* side: it evaluates to true on
// exactly the qualified sets.  The same tree drives the Benaloh–Leichter
// linear secret sharing construction (lsss.hpp), so a structure is
// specified once and used for both protocol quorums and cryptography.
#pragma once

#include <memory>
#include <vector>

#include "adversary/structure.hpp"

namespace sintra::adversary {

/// Node of a monotone threshold-gate formula.  A leaf names a party (and a
/// party may appear in several leaves).  A gate is satisfied when at least
/// `k` of its children are.
class Formula {
 public:
  /// Leaf: the variable of party `party`.
  static Formula leaf(int party);
  /// Threshold gate Theta_k over `children`.
  static Formula threshold(int k, std::vector<Formula> children);
  static Formula land(std::vector<Formula> children);  ///< AND
  static Formula lor(std::vector<Formula> children);   ///< OR

  [[nodiscard]] bool is_leaf() const { return party_ >= 0; }
  [[nodiscard]] int party() const { return party_; }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] const std::vector<Formula>& children() const { return children_; }

  /// Evaluate on a set of present parties.
  [[nodiscard]] bool eval(PartySet present) const;

  /// Number of leaves (= LSSS share units).
  [[nodiscard]] int num_leaves() const;
  /// Max party index + 1 mentioned.
  [[nodiscard]] int max_party() const;

  /// Derive the adversary structure whose access structure this formula
  /// describes: enumerate maximal unqualified sets.  Exponential in n;
  /// intended for the paper-scale structures (n <= ~20).
  [[nodiscard]] AdversaryStructure to_adversary_structure(int n) const;

  /// The "quorum" formula of §4.2 rule 1 for an adversary structure:
  /// OR over S in A* of AND over P \ S — satisfied exactly by the sets
  /// containing a full quorum.
  static Formula quorum_formula(const AdversaryStructure& structure);

  /// Weighted threshold access structure (§4.3: "traditional weighted
  /// thresholds ... can be obtained by allocating several logical parties
  /// to one physical party"): party i contributes weights[i] leaves, and a
  /// set is qualified iff its total weight reaches `threshold`.
  static Formula weighted_threshold(const std::vector<int>& weights, int threshold);

 private:
  Formula() = default;

  int party_ = -1;
  int k_ = 0;
  std::vector<Formula> children_;
};

}  // namespace sintra::adversary
