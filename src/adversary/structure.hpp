// Generalized adversary structures (Section 4 of the paper).
//
// An adversary structure A is a monotone family of subsets of the parties
// P = {0..n-1}: the sets the adversary may corrupt simultaneously.  It is
// represented by its maximal sets A* (no member contains another).  The
// classical threshold model "corrupt any t" is the special case where A*
// is all t-subsets.
//
// The resilience condition for asynchronous Byzantine protocols is Q³
// (Hirt–Maurer): no three sets of A cover P — the generalization of
// n > 3t.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "crypto/sharing.hpp"

namespace sintra::adversary {

using crypto::PartySet;

class AdversaryStructure {
 public:
  /// From explicit maximal sets; subsumed sets are removed automatically.
  AdversaryStructure(int n, std::vector<PartySet> maximal_sets);

  /// The threshold structure: all t-subsets of n parties.
  static AdversaryStructure threshold(int n, int t);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] const std::vector<PartySet>& maximal_sets() const { return maximal_; }

  /// True iff `set` is corruptible (member of the monotone family A).
  [[nodiscard]] bool corruptible(PartySet set) const;

  /// The Q³ condition: no three sets in A cover P.
  [[nodiscard]] bool satisfies_q3() const;
  /// Q² (no two sets cover P) — required e.g. for safety-only guarantees.
  [[nodiscard]] bool satisfies_q2() const;

  /// Size of the largest maximal set (the generalized "t" for reporting).
  [[nodiscard]] int max_corruptions() const;

  /// The largest t such that the threshold structure with this t is
  /// contained in A — what a pure threshold scheme could tolerate on the
  /// same party set while keeping Q³ (used by experiment E6).
  [[nodiscard]] int best_q3_threshold() const;

  [[nodiscard]] std::string describe() const;

 private:
  int n_;
  std::vector<PartySet> maximal_;
  /// Set when constructed via threshold(): enables O(1) Q²/Q³ answers
  /// (the generic checks are cubic in |A*|, which explodes for C(n,t)).
  std::optional<int> uniform_threshold_;
};

}  // namespace sintra::adversary
