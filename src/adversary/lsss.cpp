#include "adversary/lsss.hpp"

#include "common/assert.hpp"
#include "crypto/shamir.hpp"

namespace sintra::adversary {

using crypto::BigInt;
using crypto::PartySet;
using crypto::ShamirPolynomial;

namespace {

/// Exact rational (num/den), den > 0, not necessarily reduced.
struct Rational {
  BigInt num;
  BigInt den;

  static Rational one() { return Rational{BigInt(1), BigInt(1)}; }
  [[nodiscard]] Rational times(const Rational& other) const {
    return Rational{num * other.num, den * other.den};
  }
};

void collect_leaves(const Formula& node, std::vector<int>& owners) {
  if (node.is_leaf()) {
    owners.push_back(node.party());
    return;
  }
  for (const Formula& child : node.children()) collect_leaves(child, owners);
}

/// Δ contribution: (fanin)! for true threshold gates (1 < k < fanin);
/// OR and AND gates reconstruct with unit coefficients.
BigInt gate_delta(const Formula& node) {
  if (node.is_leaf()) return BigInt(1);
  BigInt product(1);
  const int fanin = static_cast<int>(node.children().size());
  if (node.k() > 1 && node.k() < fanin) {
    product = BigInt::factorial(static_cast<unsigned>(fanin));
  }
  for (const Formula& child : node.children()) product *= gate_delta(child);
  return product;
}

/// Recursive dealing; `next_unit` walks leaves in DFS order.
void deal_node(const Formula& node, const BigInt& secret, const BigInt& modulus, Rng& rng,
               std::vector<BigInt>& units, std::size_t& next_unit) {
  if (node.is_leaf()) {
    units[next_unit++] = secret;
    return;
  }
  const int fanin = static_cast<int>(node.children().size());
  const int k = node.k();
  if (k == 1) {
    // OR: replicate.
    for (const Formula& child : node.children()) {
      deal_node(child, secret, modulus, rng, units, next_unit);
    }
  } else if (k == fanin) {
    // AND: additive sharing.
    BigInt running;
    for (int i = 0; i < fanin; ++i) {
      BigInt piece;
      if (i + 1 < fanin) {
        piece = BigInt::random_below(rng, modulus);
        running = BigInt::add_mod(running, piece, modulus);
      } else {
        piece = BigInt::sub_mod(secret, running, modulus);
      }
      deal_node(node.children()[static_cast<std::size_t>(i)], piece, modulus, rng, units,
                next_unit);
    }
  } else {
    // Theta_k^fanin: Shamir, child i evaluated at point i+1.
    ShamirPolynomial poly = ShamirPolynomial::random(secret, k - 1, modulus, rng);
    for (int i = 0; i < fanin; ++i) {
      deal_node(node.children()[static_cast<std::size_t>(i)], poly.eval_at(i + 1), modulus, rng,
                units, next_unit);
    }
  }
}

/// If the subtree is satisfied by `present`, append (unit, path-coefficient)
/// pairs reconstructing this node's secret and return true; `next_unit`
/// advances over the subtree's leaves either way.
bool node_coefficients(const Formula& node, PartySet present, const Rational& path,
                       std::map<int, Rational>& out, std::size_t& next_unit) {
  if (node.is_leaf()) {
    const std::size_t unit = next_unit++;
    if (crypto::contains(present, node.party())) {
      out.emplace(static_cast<int>(unit), path);
      return true;
    }
    return false;
  }
  const int fanin = static_cast<int>(node.children().size());
  const int k = node.k();

  if (k == 1) {
    // OR: take the first satisfied child; still walk the rest for unit
    // numbering.
    bool taken = false;
    for (const Formula& child : node.children()) {
      std::map<int, Rational> child_coeffs;
      std::size_t probe = next_unit;
      bool ok = node_coefficients(child, present, path, child_coeffs, probe);
      if (ok && !taken) {
        out.insert(child_coeffs.begin(), child_coeffs.end());
        taken = true;
      }
      next_unit = probe;
    }
    return taken;
  }

  // For AND and Theta gates: determine which children are satisfiable,
  // collecting their coefficient maps with a placeholder path of 1.
  std::vector<std::map<int, Rational>> child_maps(static_cast<std::size_t>(fanin));
  std::vector<bool> satisfied(static_cast<std::size_t>(fanin), false);
  for (int i = 0; i < fanin; ++i) {
    satisfied[static_cast<std::size_t>(i)] =
        node_coefficients(node.children()[static_cast<std::size_t>(i)], present, Rational::one(),
                          child_maps[static_cast<std::size_t>(i)], next_unit);
  }
  std::vector<int> chosen;
  for (int i = 0; i < fanin && static_cast<int>(chosen.size()) < k; ++i) {
    if (satisfied[static_cast<std::size_t>(i)]) chosen.push_back(i);
  }
  if (static_cast<int>(chosen.size()) < k) return false;

  for (int i : chosen) {
    Rational factor = path;
    if (k < fanin) {
      // Lagrange coefficient lambda_{0,i+1} over points {c+1 : c in chosen}.
      BigInt num(1);
      BigInt den(1);
      for (int j : chosen) {
        if (j == i) continue;
        num *= BigInt(-(j + 1));
        den *= BigInt(i - j);
      }
      factor = factor.times(Rational{num, den});
    }
    // AND (k == fanin): coefficient 1 — factor stays `path`.
    for (const auto& [unit, coeff] : child_maps[static_cast<std::size_t>(i)]) {
      out.emplace(unit, factor.times(coeff));
    }
  }
  return true;
}

}  // namespace

LsssScheme::LsssScheme(Formula access, int n) : access_(std::move(access)), n_(n) {
  SINTRA_REQUIRE(n >= access_.max_party() && n <= 64, "LsssScheme: bad party count");
  SINTRA_REQUIRE(access_.eval(crypto::full_set(n)), "LsssScheme: unsatisfiable access formula");
  collect_leaves(access_, unit_owner_);
  delta_ = gate_delta(access_);
}

std::vector<BigInt> LsssScheme::deal(const BigInt& secret, const BigInt& modulus,
                                     Rng& rng) const {
  std::vector<BigInt> units(unit_owner_.size());
  std::size_t next_unit = 0;
  deal_node(access_, secret.mod(modulus), modulus, rng, units, next_unit);
  SINTRA_INVARIANT(next_unit == units.size(), "LsssScheme: leaf walk mismatch");
  return units;
}

bool LsssScheme::qualified(PartySet parties) const {
  return access_.eval(parties);
}

std::map<int, BigInt> LsssScheme::coefficients(PartySet parties) const {
  SINTRA_REQUIRE(qualified(parties), "LsssScheme: unqualified set");
  std::map<int, Rational> rationals;
  std::size_t next_unit = 0;
  bool ok = node_coefficients(access_, parties, Rational::one(), rationals, next_unit);
  SINTRA_INVARIANT(ok, "LsssScheme: qualified set failed reconstruction");

  std::map<int, BigInt> out;
  for (const auto& [unit, coeff] : rationals) {
    // c = Δ * num / den, exact by construction.
    BigInt quotient;
    BigInt remainder;
    BigInt::divmod(delta_ * coeff.num, coeff.den, quotient, remainder);
    SINTRA_INVARIANT(remainder.is_zero(), "LsssScheme: Δ did not clear a denominator");
    out.emplace(unit, std::move(quotient));
  }
  return out;
}

}  // namespace sintra::adversary
