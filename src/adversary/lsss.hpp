// Linear secret sharing for monotone threshold-gate formulas — the
// Benaloh–Leichter construction (CRYPTO '88) the paper invokes in §4.3.
//
// Given the *access* formula (true on qualified sets), the dealer shares a
// secret down the tree:
//   * OR  gate (k=1):       every child receives the gate's secret;
//   * AND gate (k=m):       additive sharing — random summands, last child
//                           gets secret minus the rest;
//   * Theta_k^m (1<k<m):    Shamir with a degree-(k-1) polynomial.
// Each leaf is a share *unit* assigned to its party; a party holding
// several leaves holds several units (this is also how weighted thresholds
// are realized, §4.3: "allocating several logical parties to one physical
// party").
//
// Reconstruction coefficients are exact rationals multiplied along each
// root-to-leaf path and cleared by Δ = prod over true-threshold gates of
// (fanin)!, which makes them integers — exactly the form threshold RSA
// needs (crypto/sharing.hpp).  This class therefore plugs the paper's
// generalized adversary structures into *all three* threshold primitives
// unchanged.
#pragma once

#include "adversary/formula.hpp"
#include "crypto/sharing.hpp"

namespace sintra::adversary {

class LsssScheme final : public crypto::LinearScheme {
 public:
  /// `access` must be monotone (it is by construction) and satisfiable;
  /// `n` is the total party count (>= parties mentioned in the formula).
  LsssScheme(Formula access, int n);

  [[nodiscard]] const Formula& access() const { return access_; }

  [[nodiscard]] int num_parties() const override { return n_; }
  [[nodiscard]] int num_units() const override { return static_cast<int>(unit_owner_.size()); }
  [[nodiscard]] int unit_owner(int unit) const override {
    return unit_owner_.at(static_cast<std::size_t>(unit));
  }
  [[nodiscard]] std::vector<crypto::BigInt> deal(const crypto::BigInt& secret,
                                                 const crypto::BigInt& modulus,
                                                 Rng& rng) const override;
  [[nodiscard]] bool qualified(crypto::PartySet parties) const override;
  [[nodiscard]] std::map<int, crypto::BigInt> coefficients(
      crypto::PartySet parties) const override;
  [[nodiscard]] crypto::BigInt delta() const override { return delta_; }

 private:
  Formula access_;
  int n_;
  std::vector<int> unit_owner_;  ///< leaf index (DFS order) -> party
  crypto::BigInt delta_;
};

}  // namespace sintra::adversary
