// Hybrid failure structures (paper §6, "Hybrid Failure Structures"):
// treat crash failures separately from Byzantine corruptions.
//
// The model: at most t_b servers are Byzantine-corrupted (adversary holds
// their keys and controls them fully) and, additionally, at most t_c
// servers may merely crash.  The resilience condition generalizes
// n > 3t to
//
//     n > 3*t_b + 2*t_c
//
// — crashes are cheaper than corruptions because they can lose liveness
// but never lie.  The quorum rules become:
//
//     "n−t"  -> wait for n − t_b − t_c parties   (all that are guaranteed
//                                                 to answer)
//     "t+1"  -> t_b + 1 values                   (only Byzantine parties
//                                                 can produce wrong values)
//     "2t+1" -> 2*t_b + t_c + 1 values           (majority voting among
//                                                 replies)
//
// Why this matters (the paper: "crashes are more likely to occur than
// intrusions and they are much easier to handle"): a SIX-server system can
// tolerate one Byzantine corruption plus one crash (6 > 3+2), whereas the
// pure Byzantine model would need t = 2 and therefore seven servers.
//
// Secret sharing: the secrecy adversary is only the Byzantine one, so the
// "low" scheme stays a t_b-threshold scheme; the certificate ("high")
// scheme must be combinable from any live quorum, i.e. threshold
// n − t_b − t_c.  Both remain ordinary Shamir schemes — the hybrid model
// changes the quorum predicates, not the algebra.
#pragma once

#include "adversary/quorum.hpp"

namespace sintra::adversary {

class HybridQuorum final : public QuorumSystem {
 public:
  /// Requires n > 3*byzantine + 2*crash.
  HybridQuorum(int n, int byzantine, int crash);

  [[nodiscard]] int byzantine() const { return byzantine_; }
  [[nodiscard]] int crash() const { return crash_; }

  [[nodiscard]] int n() const override { return n_; }
  [[nodiscard]] bool corruptible(PartySet set) const override;
  [[nodiscard]] bool is_quorum(PartySet heard) const override;
  [[nodiscard]] bool exceeds_fault_set(PartySet heard) const override;
  [[nodiscard]] bool is_vote_quorum(PartySet heard) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  int n_;
  int byzantine_;
  int crash_;
};

/// Deal a hybrid deployment: quorum rules for (t_b, t_c), low scheme
/// threshold t_b (secrecy vs. the Byzantine adversary only), high scheme
/// threshold n − t_b − t_c − 1 (certificates from any live quorum).
Deployment hybrid_deployment(int n, int byzantine, int crash, Rng& rng,
                             const CryptoConfig& config = CryptoConfig::fast());

}  // namespace sintra::adversary
