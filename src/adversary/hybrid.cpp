#include "adversary/hybrid.hpp"

#include "common/assert.hpp"
#include "crypto/shamir.hpp"

namespace sintra::adversary {

using crypto::full_set;
using crypto::popcount;

HybridQuorum::HybridQuorum(int n, int byzantine, int crash)
    : n_(n), byzantine_(byzantine), crash_(crash) {
  SINTRA_REQUIRE(n >= 1 && n <= 64, "HybridQuorum: n out of range");
  SINTRA_REQUIRE(byzantine >= 0 && crash >= 0, "HybridQuorum: negative bound");
  SINTRA_REQUIRE(n > 3 * byzantine + 2 * crash, "HybridQuorum: requires n > 3t_b + 2t_c");
}

bool HybridQuorum::corruptible(PartySet set) const {
  // Corruption (key compromise, lying) is Byzantine-only.
  return popcount(set & full_set(n_)) <= byzantine_;
}

bool HybridQuorum::is_quorum(PartySet heard) const {
  return popcount(heard & full_set(n_)) >= n_ - byzantine_ - crash_;
}

bool HybridQuorum::exceeds_fault_set(PartySet heard) const {
  return popcount(heard & full_set(n_)) >= byzantine_ + 1;
}

bool HybridQuorum::is_vote_quorum(PartySet heard) const {
  return popcount(heard & full_set(n_)) >= 2 * byzantine_ + crash_ + 1;
}

std::string HybridQuorum::describe() const {
  return "hybrid(n=" + std::to_string(n_) + ",t_b=" + std::to_string(byzantine_) +
         ",t_c=" + std::to_string(crash_) + ")";
}

Deployment hybrid_deployment(int n, int byzantine, int crash, Rng& rng,
                             const CryptoConfig& config) {
  auto quorum = std::make_shared<const HybridQuorum>(n, byzantine, crash);
  auto low = std::make_shared<const crypto::ThresholdScheme>(n, byzantine);
  auto high =
      std::make_shared<const crypto::ThresholdScheme>(n, n - byzantine - crash - 1);
  auto keys = std::make_shared<const crypto::KeyBundle>(crypto::KeyBundle::deal(
      config.group, std::move(low), std::move(high),
      crypto::RsaParams::precomputed(config.rsa_prime_bits), rng));
  return Deployment{std::move(quorum), std::move(keys)};
}

}  // namespace sintra::adversary
