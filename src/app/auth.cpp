#include "app/auth.hpp"

#include "crypto/sha256.hpp"

namespace sintra::app {

Bytes AuthRequest::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(op));
  w.str(principal);
  w.bytes(secret);
  return w.take();
}

AuthRequest AuthRequest::decode(BytesView data) {
  Reader r(data);
  AuthRequest request;
  const std::uint8_t op = r.u8();
  SINTRA_REQUIRE(op <= 3, "auth: bad op");
  request.op = static_cast<Op>(op);
  request.principal = r.str();
  request.secret = r.bytes();
  r.expect_done();
  return request;
}

Bytes AuthResponse::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(status));
  w.str(principal);
  w.u64(session_id);
  w.u64(issued_at);
  w.u64(expires_at);
  return w.take();
}

AuthResponse AuthResponse::decode(BytesView data) {
  Reader r(data);
  AuthResponse response;
  const std::uint8_t status = r.u8();
  SINTRA_REQUIRE(status <= 4, "auth: bad status");
  response.status = static_cast<Status>(status);
  response.principal = r.str();
  response.session_id = r.u64();
  response.issued_at = r.u64();
  response.expires_at = r.u64();
  r.expect_done();
  return response;
}

Bytes AuthenticationService::verifier_of(const std::string& principal, BytesView secret) {
  Writer w;
  w.str(principal);
  w.bytes(secret);
  auto digest = crypto::hash_domain("sintra/auth/verifier", w.data());
  return Bytes(digest.begin(), digest.end());
}

Bytes AuthenticationService::execute(BytesView request_bytes) {
  ++clock_;  // every ordered request advances the logical clock
  AuthResponse response;
  AuthRequest request;
  try {
    request = AuthRequest::decode(request_bytes);
  } catch (const ProtocolError&) {
    response.status = AuthResponse::Status::kDenied;
    return response.encode();
  }
  response.principal = request.principal;

  switch (request.op) {
    case AuthRequest::Op::kEnroll: {
      // First enrolment wins; re-enrolment requires presenting the
      // existing secret (handled as revoke + enroll by the operator).
      auto [it, inserted] =
          verifiers_.try_emplace(request.principal, verifier_of(request.principal,
                                                                request.secret));
      response.status =
          inserted ? AuthResponse::Status::kEnrolled : AuthResponse::Status::kDenied;
      break;
    }
    case AuthRequest::Op::kAuthenticate: {
      auto it = verifiers_.find(request.principal);
      if (it == verifiers_.end()) {
        response.status = AuthResponse::Status::kUnknownPrincipal;
        break;
      }
      if (!constant_time_equal(it->second, verifier_of(request.principal, request.secret))) {
        response.status = AuthResponse::Status::kDenied;
        break;
      }
      response.status = AuthResponse::Status::kGranted;
      response.session_id = next_session_++;
      response.issued_at = clock_;
      response.expires_at = clock_ + session_lifetime_;
      break;
    }
    case AuthRequest::Op::kRevoke: {
      auto it = verifiers_.find(request.principal);
      if (it == verifiers_.end()) {
        response.status = AuthResponse::Status::kUnknownPrincipal;
        break;
      }
      if (!constant_time_equal(it->second, verifier_of(request.principal, request.secret))) {
        response.status = AuthResponse::Status::kDenied;
        break;
      }
      verifiers_.erase(it);
      response.status = AuthResponse::Status::kRevoked;
      break;
    }
    case AuthRequest::Op::kTick: {
      // Administrative no-op that advances the logical clock (already
      // incremented); lets deployments expire sessions without traffic.
      response.status = AuthResponse::Status::kGranted;
      response.issued_at = clock_;
      break;
    }
  }
  return response.encode();
}

}  // namespace sintra::app
