#include "app/ca.hpp"

namespace sintra::app {

Bytes CaRequest::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(op));
  w.str(subject);
  w.bytes(public_key);
  w.str(credentials);
  w.str(policy);
  return w.take();
}

CaRequest CaRequest::decode(BytesView data) {
  Reader r(data);
  CaRequest request;
  const std::uint8_t op = r.u8();
  SINTRA_REQUIRE(op <= 2, "ca: bad op");
  request.op = static_cast<Op>(op);
  request.subject = r.str();
  request.public_key = r.bytes();
  request.credentials = r.str();
  request.policy = r.str();
  r.expect_done();
  return request;
}

Bytes CaResponse::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(serial);
  w.str(subject);
  w.bytes(public_key);
  w.str(policy_at_issue);
  return w.take();
}

CaResponse CaResponse::decode(BytesView data) {
  Reader r(data);
  CaResponse response;
  const std::uint8_t status = r.u8();
  SINTRA_REQUIRE(status <= 2, "ca: bad status");
  response.status = static_cast<Status>(status);
  response.serial = r.u64();
  response.subject = r.str();
  response.public_key = r.bytes();
  response.policy_at_issue = r.str();
  r.expect_done();
  return response;
}

Bytes CertificationAuthority::execute(BytesView request_bytes) {
  CaResponse response;
  CaRequest request;
  try {
    request = CaRequest::decode(request_bytes);
  } catch (const ProtocolError&) {
    response.status = CaResponse::Status::kDenied;
    return response.encode();
  }

  switch (request.op) {
    case CaRequest::Op::kIssue: {
      if (request.credentials != "credential:" + request.subject) {
        response.status = CaResponse::Status::kDenied;
        break;
      }
      auto [it, inserted] = issued_.try_emplace(
          request.subject, CertRecord{next_serial_, request.public_key, policy_});
      if (inserted) ++next_serial_;
      // Re-issue returns the original record (idempotent issuance).
      response.status = CaResponse::Status::kOk;
      response.serial = it->second.serial;
      response.subject = request.subject;
      response.public_key = it->second.public_key;
      response.policy_at_issue = it->second.policy_at_issue;
      break;
    }
    case CaRequest::Op::kQuery: {
      auto it = issued_.find(request.subject);
      if (it == issued_.end()) {
        response.status = CaResponse::Status::kNotFound;
        response.subject = request.subject;
        break;
      }
      response.status = CaResponse::Status::kOk;
      response.serial = it->second.serial;
      response.subject = request.subject;
      response.public_key = it->second.public_key;
      response.policy_at_issue = it->second.policy_at_issue;
      break;
    }
    case CaRequest::Op::kSetPolicy: {
      policy_ = request.policy;
      response.status = CaResponse::Status::kOk;
      response.policy_at_issue = policy_;
      break;
    }
  }
  return response.encode();
}

}  // namespace sintra::app
