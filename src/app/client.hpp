// Client of a replicated trusted service (§5).
//
// The client knows only the service's single public keys (reply signature
// verification key, encryption key) — not those of individual servers;
// this is the client-transparency property the paper inherits from
// Reiter–Birman.  It sends its request to all servers (the paper requires
// "more than t", i.e. enough that corrupted servers cannot ignore it),
// collects replies, and accepts a reply content once servers beyond one
// corruptible set vouch for it — at that point at least one voucher is
// honest, and honest replicas all return the same answer.  The matching
// replies' signature shares recombine into one standard RSA signature
// under the service key: the client's transferable receipt.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "app/replica.hpp"
#include "protocols/reconfig.hpp"

namespace sintra::app {

class ServiceClient final : public net::Process {
 public:
  struct Receipt {
    Bytes reply;
    crypto::BigInt signature;  ///< service threshold signature over the reply
  };
  using ReplyFn = std::function<void(std::uint64_t request_id, Receipt receipt)>;

  /// `net_id` is this client's network endpoint (>= number of servers).
  /// Runs on any Network substrate (simulator or real transport).
  ServiceClient(net::Network& network, int net_id, adversary::Deployment deployment,
                std::string service_tag, Replica::Mode mode, std::uint64_t seed,
                ReplyFn on_reply);
  ~ServiceClient() override;

  /// Issue a request; returns its id.  In causal mode the envelope is
  /// TDH2-encrypted before it leaves the client.
  std::uint64_t request(Bytes body);

  /// Gateway mode (§5): route requests through a single relay server
  /// instead of all of them.  If the gateway is corrupted and swallows the
  /// request, the client falls back by calling resend() "if it receives no
  /// answer within the expected time" — the timeout lives in the
  /// application, not the protocol.  Pass -1 to return to broadcast mode.
  void set_gateway(int server);

  /// Re-send an outstanding request to ALL servers (the gateway-failure
  /// fallback).  No-op if the request already completed.
  void resend(std::uint64_t request_id);

  /// Automatic retry on Network timers: a request with no accepted reply
  /// after `timeout` network time units is re-driven.  While a gateway is
  /// configured, each retry first rotates to the next replica (a
  /// non-responding relay is abandoned in favour of the remaining ones);
  /// the final attempt — and every retry in broadcast mode — goes to all
  /// servers.  The timeout doubles per attempt (capped at 16x), at most
  /// `max_retries` retries per request.
  void enable_retry(std::uint64_t timeout, int max_retries = 4);

  void on_message(const net::Message& message) override;

  // --- membership reconfiguration (protocols/reconfig.hpp) -------------
  /// Replace the replica set outright (trusted path: a harness that
  /// already verified the new committee).  Outstanding requests are
  /// re-broadcast to the new committee — replicas dedup by request id, so
  /// double delivery is harmless.  The gateway resets to broadcast mode:
  /// its old index may not exist (or mean someone else) after the swap.
  void set_replicas(adversary::Deployment deployment);

  /// Verify a signed NEW-CONFIG announcement against the CURRENT reply
  /// key and, if authentic and newer than what we follow, rebuild the
  /// replica set and all service public keys from it.  `reconfig_tag` is
  /// the reconfiguration instance tag the announcement's signature is
  /// bound to.  Returns false (no state change) for invalid signatures,
  /// stale epochs, or malformed plans.  A replica relays the announcement
  /// on tag "<service>/newconfig" with payload [str reconfig_tag]
  /// [NewConfig] — on_message feeds it here, so any single honest (or
  /// even corrupted-but-forwarding) replica suffices: authenticity comes
  /// from the threshold signature, not the messenger.
  bool apply_new_config(const protocols::NewConfig& config, std::string_view reconfig_tag);

  /// Epoch of the committee this client currently follows.
  [[nodiscard]] std::uint32_t config_epoch() const { return config_epoch_; }

  /// Verify a receipt independently (what a third party would do).
  [[nodiscard]] bool verify_receipt(std::uint64_t request_id, BytesView request_body,
                                    const Receipt& receipt) const;

  [[nodiscard]] std::size_t outstanding() const { return pending_.size(); }
  /// Busy replies received (load-shedding servers observed).
  [[nodiscard]] std::uint64_t busy_replies() const { return busy_replies_; }
  /// Gateway rotations triggered by Busy replies (not by retry timeouts).
  [[nodiscard]] std::uint64_t busy_rotations() const { return busy_rotations_; }
  /// Current relay replica (-1 = broadcast mode).
  [[nodiscard]] int gateway() const { return gateway_; }

 private:
  struct Pending {
    RequestEnvelope envelope;
    Bytes wire_payload;  ///< what was sent (for resend)
    /// reply digest -> (supporters, shares, content)
    std::map<Bytes, std::tuple<crypto::PartySet, std::vector<crypto::SigShare>, Bytes>> votes;
    net::Network::TimerId retry_timer = 0;  ///< 0 = not armed
    int attempts = 0;                       ///< retries fired so far
    std::uint64_t next_delay = 0;           ///< backoff for the next retry
    int busy_hops = 0;  ///< Busy-triggered rotations this lap (reset on retry)
  };

  void send_to_servers(const Bytes& payload, bool broadcast_all);
  void arm_retry(std::uint64_t request_id, Pending& pending);

  net::Network& network_;
  int net_id_;
  adversary::Deployment deployment_;
  std::string service_tag_;
  Replica::Mode mode_;
  Rng rng_;
  ReplyFn on_reply_;
  int gateway_ = -1;  ///< -1 = broadcast to all servers
  std::uint64_t retry_timeout_ = 0;  ///< 0 = automatic retry disabled
  int max_retries_ = 0;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t busy_replies_ = 0;
  std::uint64_t busy_rotations_ = 0;
  std::uint32_t config_epoch_ = 0;  ///< epoch of the committee we follow
  std::map<std::uint64_t, Pending> pending_;
};

/// Rendezvous (highest-random-weight) mapping from request keys to shard
/// ids.  Every key scores every shard with an independent pseudo-random
/// weight and goes to the highest scorer, so removing a shard remaps ONLY
/// the keys that lived on it — the other shards' keys keep their winner.
/// That is the property a sharded service needs: resizing the fleet must
/// not reshuffle traffic that never touched the departed group.
class ShardPartitioner {
 public:
  explicit ShardPartitioner(std::uint64_t seed = 0) : seed_(seed) {}

  /// Add a shard id to the candidate set (idempotent).
  void add_shard(std::uint32_t shard);
  /// Remove a shard id; keys it owned remap among the survivors.
  void remove_shard(std::uint32_t shard);

  /// Deterministic owner of `key`.  Requires at least one shard.
  [[nodiscard]] std::uint32_t shard_for(BytesView key) const;
  [[nodiscard]] std::uint32_t shard_for(std::string_view key) const;

  [[nodiscard]] const std::vector<std::uint32_t>& shards() const { return shards_; }

 private:
  static std::uint64_t mix(std::uint64_t x);

  std::uint64_t seed_;
  std::vector<std::uint32_t> shards_;  ///< sorted, unique
};

/// Client-side fan-out across S independent SINTRA groups (shards).  Each
/// shard is a full replicated service with its own keys and committee; the
/// partitioner consistent-hashes request keys onto shards, and every reply
/// funnels through one aggregate callback so the application sees a single
/// logical service.  One ServiceClient per shard keeps per-shard protocol
/// state (retries, gateways, reconfiguration) fully independent — a slow
/// or reconfiguring shard never stalls requests routed elsewhere.
class PartitionedClient {
 public:
  /// Aggregate reply callback: which shard answered, the per-shard request
  /// id, and the combined-signature receipt.
  using ReplyFn =
      std::function<void(std::uint32_t shard, std::uint64_t request_id, ServiceClient::Receipt)>;

  struct RequestHandle {
    std::uint32_t shard = 0;        ///< group the key hashed to
    std::uint64_t request_id = 0;   ///< id within that shard's client
  };

  explicit PartitionedClient(std::uint64_t seed, ReplyFn on_reply);

  /// Register a shard: group id, the Network endpoint carrying that
  /// group's traffic (e.g. a NetworkedNode GroupEndpoint or a simulator),
  /// and the shard's own committee/keys.  Shard ids must be unique.
  ServiceClient& add_shard(std::uint32_t shard, net::Network& network, int net_id,
                           adversary::Deployment deployment, std::string service_tag,
                           Replica::Mode mode);

  /// Route `body` by `key`: consistent-hash to a shard, submit through
  /// that shard's client.
  RequestHandle request(BytesView key, Bytes body);
  RequestHandle request(std::string_view key, Bytes body);

  /// Per-shard client access (retry/gateway tuning, receipt verification).
  [[nodiscard]] ServiceClient& shard_client(std::uint32_t shard);
  [[nodiscard]] const ShardPartitioner& partitioner() const { return partitioner_; }

  /// Requests routed to each shard so far.
  [[nodiscard]] const std::map<std::uint32_t, std::uint64_t>& routed() const { return routed_; }
  /// Receipts delivered across all shards.
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  /// Requests still awaiting a qualified reply, summed over shards.
  [[nodiscard]] std::size_t outstanding() const;

 private:
  std::uint64_t seed_;
  ReplyFn on_reply_;
  ShardPartitioner partitioner_;
  std::map<std::uint32_t, std::unique_ptr<ServiceClient>> clients_;
  std::map<std::uint32_t, std::uint64_t> routed_;
  std::uint64_t completed_ = 0;
};

}  // namespace sintra::app
