// Client of a replicated trusted service (§5).
//
// The client knows only the service's single public keys (reply signature
// verification key, encryption key) — not those of individual servers;
// this is the client-transparency property the paper inherits from
// Reiter–Birman.  It sends its request to all servers (the paper requires
// "more than t", i.e. enough that corrupted servers cannot ignore it),
// collects replies, and accepts a reply content once servers beyond one
// corruptible set vouch for it — at that point at least one voucher is
// honest, and honest replicas all return the same answer.  The matching
// replies' signature shares recombine into one standard RSA signature
// under the service key: the client's transferable receipt.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "app/replica.hpp"

namespace sintra::app {

class ServiceClient final : public net::Process {
 public:
  struct Receipt {
    Bytes reply;
    crypto::BigInt signature;  ///< service threshold signature over the reply
  };
  using ReplyFn = std::function<void(std::uint64_t request_id, Receipt receipt)>;

  /// `net_id` is this client's simulator endpoint (>= number of servers).
  ServiceClient(net::Simulator& simulator, int net_id, adversary::Deployment deployment,
                std::string service_tag, Replica::Mode mode, std::uint64_t seed,
                ReplyFn on_reply);

  /// Issue a request; returns its id.  In causal mode the envelope is
  /// TDH2-encrypted before it leaves the client.
  std::uint64_t request(Bytes body);

  /// Gateway mode (§5): route requests through a single relay server
  /// instead of all of them.  If the gateway is corrupted and swallows the
  /// request, the client falls back by calling resend() "if it receives no
  /// answer within the expected time" — the timeout lives in the
  /// application, not the protocol.  Pass -1 to return to broadcast mode.
  void set_gateway(int server);

  /// Re-send an outstanding request to ALL servers (the gateway-failure
  /// fallback).  No-op if the request already completed.
  void resend(std::uint64_t request_id);

  void on_message(const net::Message& message) override;

  /// Verify a receipt independently (what a third party would do).
  [[nodiscard]] bool verify_receipt(std::uint64_t request_id, BytesView request_body,
                                    const Receipt& receipt) const;

  [[nodiscard]] std::size_t outstanding() const { return pending_.size(); }

 private:
  struct Pending {
    RequestEnvelope envelope;
    Bytes wire_payload;  ///< what was sent (for resend)
    /// reply digest -> (supporters, shares, content)
    std::map<Bytes, std::tuple<crypto::PartySet, std::vector<crypto::SigShare>, Bytes>> votes;
  };

  void send_to_servers(const Bytes& payload, bool broadcast_all);

  net::Simulator& simulator_;
  int net_id_;
  adversary::Deployment deployment_;
  std::string service_tag_;
  Replica::Mode mode_;
  Rng rng_;
  ReplyFn on_reply_;
  int gateway_ = -1;  ///< -1 = broadcast to all servers
  std::uint64_t next_request_id_ = 1;
  std::map<std::uint64_t, Pending> pending_;
};

}  // namespace sintra::app
