#include "app/directory.hpp"

namespace sintra::app {

Bytes DirRequest::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(op));
  w.str(key);
  w.bytes(value);
  return w.take();
}

DirRequest DirRequest::decode(BytesView data) {
  Reader r(data);
  DirRequest request;
  const std::uint8_t op = r.u8();
  SINTRA_REQUIRE(op <= 2, "directory: bad op");
  request.op = static_cast<Op>(op);
  request.key = r.str();
  request.value = r.bytes();
  r.expect_done();
  return request;
}

Bytes DirResponse::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(status));
  w.str(key);
  w.bytes(value);
  w.u64(version);
  return w.take();
}

DirResponse DirResponse::decode(BytesView data) {
  Reader r(data);
  DirResponse response;
  const std::uint8_t status = r.u8();
  SINTRA_REQUIRE(status <= 1, "directory: bad status");
  response.status = static_cast<Status>(status);
  response.key = r.str();
  response.value = r.bytes();
  response.version = r.u64();
  r.expect_done();
  return response;
}

Bytes SecureDirectory::execute(BytesView request_bytes) {
  DirResponse response;
  DirRequest request;
  try {
    request = DirRequest::decode(request_bytes);
  } catch (const ProtocolError&) {
    response.status = DirResponse::Status::kNotFound;
    return response.encode();
  }
  response.key = request.key;

  switch (request.op) {
    case DirRequest::Op::kBind: {
      Entry& entry = entries_[request.key];
      entry.value = request.value;
      entry.version += 1;
      response.status = DirResponse::Status::kOk;
      response.value = entry.value;
      response.version = entry.version;
      break;
    }
    case DirRequest::Op::kLookup: {
      auto it = entries_.find(request.key);
      if (it == entries_.end()) {
        response.status = DirResponse::Status::kNotFound;
      } else {
        response.status = DirResponse::Status::kOk;
        response.value = it->second.value;
        response.version = it->second.version;
      }
      break;
    }
    case DirRequest::Op::kUnbind: {
      auto it = entries_.find(request.key);
      if (it == entries_.end()) {
        response.status = DirResponse::Status::kNotFound;
      } else {
        response.version = it->second.version;
        entries_.erase(it);
        response.status = DirResponse::Status::kOk;
      }
      break;
    }
  }
  return response.encode();
}

}  // namespace sintra::app
