// Digital notary / time-stamping service (§5.2): assigns strictly
// increasing sequence numbers to submitted documents and certifies the
// assignment by the service signature — a secure document registry with a
// logical clock (domain-name assignment, patent filing).
//
// A notary must process requests sequentially and atomically AND keep
// their content confidential until processed: a corrupted server that saw
// a pending patent application in the clear could file a related claim
// and have it scheduled first.  This service therefore runs over *secure
// causal* atomic broadcast (Replica::Mode::kCausal); experiment E4 mounts
// the front-running attack against both configurations and shows that
// only the encrypted pipeline defeats it.
#pragma once

#include <cstdint>
#include <map>

#include "app/replica.hpp"

namespace sintra::app {

struct NotaryRequest {
  enum class Op : std::uint8_t { kRegister = 0, kVerify = 1 };
  Op op = Op::kRegister;
  Bytes document;  ///< the document (or its digest)

  [[nodiscard]] Bytes encode() const;
  static NotaryRequest decode(BytesView data);
};

struct NotaryResponse {
  enum class Status : std::uint8_t { kRegistered = 0, kAlreadyRegistered = 1, kUnknown = 2 };
  Status status = Status::kRegistered;
  std::uint64_t sequence = 0;  ///< logical timestamp of (first) registration

  [[nodiscard]] Bytes encode() const;
  static NotaryResponse decode(BytesView data);
};

class Notary final : public StateMachine {
 public:
  Bytes execute(BytesView request) override;
  [[nodiscard]] std::string name() const override { return "notary"; }

  [[nodiscard]] std::uint64_t registered_count() const { return next_sequence_ - 1; }

 private:
  std::uint64_t next_sequence_ = 1;
  std::map<Bytes, std::uint64_t> registry_;  ///< document digest -> sequence
};

}  // namespace sintra::app
