// Certification authority (§5.1): the distributed CA issues certificates
// binding identities to public keys.  Internally a deterministic state
// machine replicated via atomic broadcast — issuance changes global state
// (serial numbers, policy), which is exactly why the paper insists on
// atomic (not merely reliable) broadcast for it.
//
// The actual *certificate* is the threshold signature the client collects
// over the reply (app/client.hpp): a single RSA signature under the CA's
// public key, verifiable by anyone, produced without any server ever
// holding the CA signing key.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "app/replica.hpp"

namespace sintra::app {

/// CA request/response encodings.
struct CaRequest {
  enum class Op : std::uint8_t { kIssue = 0, kQuery = 1, kSetPolicy = 2 };
  Op op = Op::kIssue;
  std::string subject;   ///< identity (kIssue/kQuery)
  Bytes public_key;      ///< subject public key (kIssue)
  std::string credentials;  ///< what the CA's policy validates (kIssue)
  std::string policy;    ///< new policy text (kSetPolicy)

  [[nodiscard]] Bytes encode() const;
  static CaRequest decode(BytesView data);
};

struct CaResponse {
  enum class Status : std::uint8_t { kOk = 0, kDenied = 1, kNotFound = 2 };
  Status status = Status::kOk;
  std::uint64_t serial = 0;
  std::string subject;
  Bytes public_key;
  std::string policy_at_issue;

  [[nodiscard]] Bytes encode() const;
  static CaResponse decode(BytesView data);
};

/// The CA state machine.  Policy model (deliberately simple but real): a
/// request is granted iff its credentials string equals "credential:" +
/// subject — standing in for out-of-band identity validation.
class CertificationAuthority final : public StateMachine {
 public:
  struct CertRecord {
    std::uint64_t serial;
    Bytes public_key;
    std::string policy_at_issue;
  };

  Bytes execute(BytesView request) override;
  [[nodiscard]] std::string name() const override { return "ca"; }

  [[nodiscard]] const std::map<std::string, CertRecord>& issued() const { return issued_; }
  [[nodiscard]] const std::string& policy() const { return policy_; }

 private:
  std::uint64_t next_serial_ = 1;
  std::string policy_ = "v1";
  std::map<std::string, CertRecord> issued_;
};

}  // namespace sintra::app
