#include "app/replica.hpp"

#include "crypto/sha256.hpp"

namespace sintra::app {

void RequestEnvelope::encode(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(client));
  w.u64(request_id);
  w.bytes(body);
}

RequestEnvelope RequestEnvelope::decode(Reader& r) {
  RequestEnvelope envelope;
  envelope.client = static_cast<int>(r.u32());
  envelope.request_id = r.u64();
  envelope.body = r.bytes();
  return envelope;
}

Bytes reply_statement(const std::string& service_tag, const RequestEnvelope& request,
                      BytesView reply) {
  Writer w;
  w.str("sintra/svc/reply");
  w.str(service_tag);
  w.u32(static_cast<std::uint32_t>(request.client));
  w.u64(request.request_id);
  auto req_digest = crypto::hash_domain("sintra/svc/req", request.body);
  w.raw(BytesView(req_digest.data(), req_digest.size()));
  auto reply_digest = crypto::hash_domain("sintra/svc/rep", reply);
  w.raw(BytesView(reply_digest.data(), reply_digest.size()));
  return w.take();
}

Replica::Replica(net::Party& host, std::string tag, Mode mode,
                 std::unique_ptr<StateMachine> state_machine)
    : ProtocolInstance(host, std::move(tag)), mode_(mode),
      state_machine_(std::move(state_machine)) {
  if (mode_ == Mode::kAtomic) {
    atomic_ = std::make_unique<protocols::AtomicBroadcast>(
        host_, tag_ + "/abc",
        [this](int, Bytes payload) { on_ordered_envelope(std::move(payload)); });
  } else {
    causal_ = std::make_unique<protocols::SecureCausalBroadcast>(
        host_, tag_ + "/sc",
        [this](std::uint64_t, Bytes plaintext, Bytes) {
          on_ordered_envelope(std::move(plaintext));
        });
  }
}

void Replica::handle(int from, Reader& reader) {
  // A client request.  In atomic mode the payload is a plain envelope; in
  // causal mode it is a TDH2 ciphertext of one (so the envelope — client
  // identity included — stays confidential until ordering).
  if (mode_ == Mode::kAtomic) {
    Bytes envelope_bytes = reader.raw(reader.remaining());
    // Parse defensively so garbage is rejected before it is ordered.
    Reader probe(envelope_bytes);
    const RequestEnvelope envelope = RequestEnvelope::decode(probe);
    probe.expect_done();
    const RequestKey key{envelope.client, envelope.request_id};
    // Admission control, in order: (1) a cached reply answers duplicates
    // without re-execution or re-ordering (exactly-once); (2) an inflight
    // duplicate is already on its way through ordering — drop silently;
    // (3) a full queue sheds the request with an explicit Busy so the
    // client backs off instead of hammering the retry path.
    if (auto cached = reply_cache_.find(key); cached != reply_cache_.end()) {
      execute_and_reply(envelope);
      return;
    }
    if (inflight_.contains(key)) return;
    const auto per_client = inflight_per_client_.find(envelope.client);
    if (inflight_.size() >= admission_.max_inflight ||
        (per_client != inflight_per_client_.end() &&
         per_client->second >= admission_.max_per_client)) {
      send_busy(envelope.client, envelope.request_id);
      return;
    }
    inflight_.insert(key);
    ++inflight_per_client_[envelope.client];
    atomic_->submit(std::move(envelope_bytes));
  } else {
    // Causal mode: the ciphertext hides the request key, so admission is
    // count-based and the Busy goes to the sending endpoint (request id 0:
    // the client treats it as a general backoff hint).
    if (causal_inflight_ >= admission_.max_inflight) {
      send_busy(from, 0);
      return;
    }
    const auto& pk = host_.public_keys().encryption;
    crypto::Tdh2Ciphertext ciphertext = crypto::Tdh2Ciphertext::decode(reader, pk.group());
    reader.expect_done();
    ++causal_inflight_;
    causal_->submit(ciphertext);
  }
}

void Replica::on_ordered_envelope(Bytes envelope_bytes) {
  if (mode_ == Mode::kCausal && causal_inflight_ > 0) --causal_inflight_;
  RequestEnvelope envelope;
  try {
    Reader reader(envelope_bytes);
    envelope = RequestEnvelope::decode(reader);
    reader.expect_done();
  } catch (const ProtocolError&) {
    return;  // ordered garbage (corrupted submitter): skip deterministically
  }
  // Ordering completed (whether we or a peer submitted it): the request is
  // no longer inflight here.
  const RequestKey key{envelope.client, envelope.request_id};
  if (inflight_.erase(key) > 0) {
    auto per_client = inflight_per_client_.find(envelope.client);
    if (per_client != inflight_per_client_.end() && --per_client->second == 0) {
      inflight_per_client_.erase(per_client);
    }
  }
  execute_and_reply(envelope);
}

void Replica::cache_reply(const RequestKey& key, Bytes reply) {
  reply_cache_.emplace(key, std::move(reply));
  reply_cache_fifo_.push_back(key);
  if (reply_cache_fifo_.size() > admission_.reply_cache_cap) {
    reply_cache_.erase(reply_cache_fifo_.front());
    reply_cache_fifo_.pop_front();
  }
}

void Replica::execute_and_reply(const RequestEnvelope& envelope) {
  const RequestKey key{envelope.client, envelope.request_id};
  Bytes reply;
  if (auto it = reply_cache_.find(key); it != reply_cache_.end()) {
    reply = it->second;  // duplicate: at-most-once execution, re-reply
  } else {
    reply = state_machine_->execute(envelope.body);
    cache_reply(key, reply);
    ++executed_count_;
  }

  // Threshold-signed reply to the client.
  const Bytes statement = reply_statement(tag_, envelope, reply);
  auto shares = host_.keys().reply_sig.sign(host_.public_keys().reply_sig, statement,
                                            host_.rng());
  Writer w;
  w.u8(kReplyOk);
  w.u64(envelope.request_id);
  w.bytes(reply);
  w.vec(shares, [](Writer& wr, const crypto::SigShare& s) { s.encode(wr); });
  send_reply(envelope.client, w.take());
}

void Replica::send_busy(int client, std::uint64_t request_id) {
  // Unsigned on purpose: Busy is an advisory liveness hint, and the
  // client's backoff reaction is capped, so a corrupted server gains
  // nothing beyond what dropping the request already achieves.
  ++busy_sent_;
  Writer w;
  w.u8(kReplyBusy);
  w.u64(request_id);
  w.u64(admission_.retry_after);
  send_reply(client, w.take());
}

void Replica::send_reply(int client, Bytes payload) {
  if (client < 0 || client >= host_.network().n() || client == me()) return;
  net::Message message;
  message.from = me();
  message.to = client;
  message.tag = tag_ + "/reply";
  message.payload = std::move(payload);
  host_.network().submit(std::move(message));
}

}  // namespace sintra::app
