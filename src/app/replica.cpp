#include "app/replica.hpp"

#include "crypto/sha256.hpp"

namespace sintra::app {

void RequestEnvelope::encode(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(client));
  w.u64(request_id);
  w.bytes(body);
}

RequestEnvelope RequestEnvelope::decode(Reader& r) {
  RequestEnvelope envelope;
  envelope.client = static_cast<int>(r.u32());
  envelope.request_id = r.u64();
  envelope.body = r.bytes();
  return envelope;
}

Bytes reply_statement(const std::string& service_tag, const RequestEnvelope& request,
                      BytesView reply) {
  Writer w;
  w.str("sintra/svc/reply");
  w.str(service_tag);
  w.u32(static_cast<std::uint32_t>(request.client));
  w.u64(request.request_id);
  auto req_digest = crypto::hash_domain("sintra/svc/req", request.body);
  w.raw(BytesView(req_digest.data(), req_digest.size()));
  auto reply_digest = crypto::hash_domain("sintra/svc/rep", reply);
  w.raw(BytesView(reply_digest.data(), reply_digest.size()));
  return w.take();
}

Replica::Replica(net::Party& host, std::string tag, Mode mode,
                 std::unique_ptr<StateMachine> state_machine)
    : ProtocolInstance(host, std::move(tag)), mode_(mode),
      state_machine_(std::move(state_machine)) {
  if (mode_ == Mode::kAtomic) {
    atomic_ = std::make_unique<protocols::AtomicBroadcast>(
        host_, tag_ + "/abc",
        [this](int, Bytes payload) { on_ordered_envelope(std::move(payload)); });
  } else {
    causal_ = std::make_unique<protocols::SecureCausalBroadcast>(
        host_, tag_ + "/sc",
        [this](std::uint64_t, Bytes plaintext, Bytes) {
          on_ordered_envelope(std::move(plaintext));
        });
  }
}

void Replica::handle(int from, Reader& reader) {
  // A client request.  In atomic mode the payload is a plain envelope; in
  // causal mode it is a TDH2 ciphertext of one (so the envelope — client
  // identity included — stays confidential until ordering).
  (void)from;
  if (mode_ == Mode::kAtomic) {
    Bytes envelope_bytes = reader.raw(reader.remaining());
    // Parse defensively so garbage is rejected before it is ordered.
    Reader probe(envelope_bytes);
    RequestEnvelope::decode(probe);
    probe.expect_done();
    atomic_->submit(std::move(envelope_bytes));
  } else {
    const auto& pk = host_.public_keys().encryption;
    crypto::Tdh2Ciphertext ciphertext = crypto::Tdh2Ciphertext::decode(reader, pk.group());
    reader.expect_done();
    causal_->submit(ciphertext);
  }
}

void Replica::on_ordered_envelope(Bytes envelope_bytes) {
  RequestEnvelope envelope;
  try {
    Reader reader(envelope_bytes);
    envelope = RequestEnvelope::decode(reader);
    reader.expect_done();
  } catch (const ProtocolError&) {
    return;  // ordered garbage (corrupted submitter): skip deterministically
  }
  execute_and_reply(envelope);
}

void Replica::execute_and_reply(const RequestEnvelope& envelope) {
  const auto key = std::make_pair(envelope.client, envelope.request_id);
  Bytes reply;
  if (auto it = reply_cache_.find(key); it != reply_cache_.end()) {
    reply = it->second;  // duplicate: at-most-once execution, re-reply
  } else {
    reply = state_machine_->execute(envelope.body);
    executed_.insert(key);
    reply_cache_.emplace(key, reply);
    ++executed_count_;
  }

  // Threshold-signed reply to the client.
  const Bytes statement = reply_statement(tag_, envelope, reply);
  auto shares = host_.keys().reply_sig.sign(host_.public_keys().reply_sig, statement,
                                            host_.rng());
  Writer w;
  w.u64(envelope.request_id);
  w.bytes(reply);
  w.vec(shares, [](Writer& wr, const crypto::SigShare& s) { s.encode(wr); });
  if (envelope.client >= 0 && envelope.client < host_.network().n() &&
      envelope.client != me()) {
    net::Message message;
    message.from = me();
    message.to = envelope.client;
    message.tag = tag_ + "/reply";
    message.payload = w.take();
    host_.network().submit(std::move(message));
  }
}

}  // namespace sintra::app
