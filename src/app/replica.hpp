// Secure state machine replication (§5, after Schneider and
// Reiter–Birman): a deterministic service replicated over all servers,
// fed by atomic broadcast (or secure causal atomic broadcast for services
// that need request confidentiality until scheduling, like the notary),
// answering clients with threshold-signed replies.
//
// Request path: the client sends its request envelope (or its TDH2
// encryption, in causal mode) to the servers; each server submits it for
// total-order delivery; on delivery every server executes it on its local
// state machine copy — all copies stay identical because execution is
// deterministic and the order is agreed — and sends the client a reply
// carrying signature shares of the *service* reply key.  The client
// recombines them into one ordinary RSA signature under the single service
// public key (app/client.hpp).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "protocols/causal.hpp"

namespace sintra::app {

/// A deterministic service.  `execute` must depend only on the current
/// state and the request bytes.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  virtual Bytes execute(BytesView request) = 0;
  /// Service name used in reply statements (domain separation).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Request envelope exchanged between clients and the service.
struct RequestEnvelope {
  int client = 0;               ///< client's network id
  std::uint64_t request_id = 0;
  Bytes body;

  void encode(Writer& w) const;
  static RequestEnvelope decode(Reader& r);
};

/// Statement that reply signature shares sign.
Bytes reply_statement(const std::string& service_tag, const RequestEnvelope& request,
                      BytesView reply);

class Replica final : public protocols::ProtocolInstance {
 public:
  enum class Mode {
    kAtomic,  ///< requests ordered in the clear (CA, directory)
    kCausal,  ///< requests stay encrypted until ordered (notary)
  };

  Replica(net::Party& host, std::string tag, Mode mode,
          std::unique_ptr<StateMachine> state_machine);

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] std::uint64_t executed_count() const { return executed_count_; }

 private:
  void handle(int from, Reader& reader) override;  ///< client requests
  void on_ordered_envelope(Bytes envelope_bytes);
  void execute_and_reply(const RequestEnvelope& envelope);

  Mode mode_;
  std::unique_ptr<StateMachine> state_machine_;
  std::unique_ptr<protocols::AtomicBroadcast> atomic_;       ///< kAtomic
  std::unique_ptr<protocols::SecureCausalBroadcast> causal_; ///< kCausal
  std::set<std::pair<int, std::uint64_t>> executed_;         ///< at-most-once
  std::map<std::pair<int, std::uint64_t>, Bytes> reply_cache_;
  std::uint64_t executed_count_ = 0;
};

}  // namespace sintra::app
