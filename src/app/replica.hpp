// Secure state machine replication (§5, after Schneider and
// Reiter–Birman): a deterministic service replicated over all servers,
// fed by atomic broadcast (or secure causal atomic broadcast for services
// that need request confidentiality until scheduling, like the notary),
// answering clients with threshold-signed replies.
//
// Request path: the client sends its request envelope (or its TDH2
// encryption, in causal mode) to the servers; each server submits it for
// total-order delivery; on delivery every server executes it on its local
// state machine copy — all copies stay identical because execution is
// deterministic and the order is agreed — and sends the client a reply
// carrying signature shares of the *service* reply key.  The client
// recombines them into one ordinary RSA signature under the single service
// public key (app/client.hpp).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "protocols/causal.hpp"

namespace sintra::app {

/// A deterministic service.  `execute` must depend only on the current
/// state and the request bytes.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  virtual Bytes execute(BytesView request) = 0;
  /// Service name used in reply statements (domain separation).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Request envelope exchanged between clients and the service.
struct RequestEnvelope {
  int client = 0;               ///< client's network id
  std::uint64_t request_id = 0;
  Bytes body;

  void encode(Writer& w) const;
  static RequestEnvelope decode(Reader& r);
};

/// Statement that reply signature shares sign.
Bytes reply_statement(const std::string& service_tag, const RequestEnvelope& request,
                      BytesView reply);

/// Reply status byte (first byte of every server->client reply).
enum ReplyStatus : std::uint8_t {
  kReplyOk = 0,    ///< u64 request_id, bytes reply, vec signature shares
  kReplyBusy = 1,  ///< u64 request_id (0 = unattributable), u64 retry_after
};

/// Admission-control knobs (per replica).  A replica keeps at most
/// `max_inflight` submitted-but-unordered requests (and `max_per_client`
/// per client); beyond that it sheds load with an explicit Busy reply
/// carrying `retry_after`, which ServiceClient honors as a backoff floor.
/// The duplicate-reply cache is FIFO-bounded at `reply_cache_cap` entries:
/// a duplicate of a still-cached request is re-answered without
/// re-execution (exactly-once); one older than the cache window would
/// re-execute, which deterministic state machines tolerate.
struct Admission {
  std::size_t max_inflight = 256;
  std::size_t max_per_client = 64;
  std::uint64_t retry_after = 50;  ///< network time units, advisory
  std::size_t reply_cache_cap = 1024;
};

class Replica final : public protocols::ProtocolInstance {
 public:
  enum class Mode {
    kAtomic,  ///< requests ordered in the clear (CA, directory)
    kCausal,  ///< requests stay encrypted until ordered (notary)
  };

  Replica(net::Party& host, std::string tag, Mode mode,
          std::unique_ptr<StateMachine> state_machine);

  /// Override the admission-control knobs (tests shrink them to force
  /// shedding).  Call before traffic flows.
  void set_admission(Admission admission) { admission_ = admission; }

  [[nodiscard]] Mode mode() const { return mode_; }
  /// The underlying total-order broadcast (atomic mode only, else null) —
  /// exposed so deployments can enable checkpoint certificates and wire a
  /// net::StateTransfer instance to its certified_state/install hooks.
  [[nodiscard]] protocols::AtomicBroadcast* atomic() { return atomic_.get(); }
  /// Emit a checkpoint certificate every `interval` rounds (atomic mode).
  void enable_checkpoints(int interval) {
    if (atomic_) atomic_->enable_checkpoints(interval);
  }
  [[nodiscard]] std::uint64_t executed_count() const { return executed_count_; }
  [[nodiscard]] std::uint64_t busy_sent() const { return busy_sent_; }
  [[nodiscard]] std::size_t inflight() const {
    return mode_ == Mode::kAtomic ? inflight_.size() : causal_inflight_;
  }

 private:
  using RequestKey = std::pair<int, std::uint64_t>;  ///< (client, request_id)

  void handle(int from, Reader& reader) override;  ///< client requests
  void on_ordered_envelope(Bytes envelope_bytes);
  void execute_and_reply(const RequestEnvelope& envelope);
  void send_reply(int client, Bytes payload);
  void send_busy(int client, std::uint64_t request_id);
  void cache_reply(const RequestKey& key, Bytes reply);

  Mode mode_;
  Admission admission_;
  std::unique_ptr<StateMachine> state_machine_;
  std::unique_ptr<protocols::AtomicBroadcast> atomic_;       ///< kAtomic
  std::unique_ptr<protocols::SecureCausalBroadcast> causal_; ///< kCausal
  /// Admitted but not yet ordered (atomic mode: keyed, exact dedupe;
  /// causal mode: ciphertexts hide the key, so only a counter).
  std::set<RequestKey> inflight_;
  std::map<int, std::size_t> inflight_per_client_;
  std::size_t causal_inflight_ = 0;
  std::map<RequestKey, Bytes> reply_cache_;  ///< duplicate-request re-replies
  std::deque<RequestKey> reply_cache_fifo_;  ///< cache eviction order
  std::uint64_t executed_count_ = 0;
  std::uint64_t busy_sent_ = 0;
};

}  // namespace sintra::app
