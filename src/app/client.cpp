#include "app/client.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"

namespace sintra::app {

ServiceClient::ServiceClient(net::Network& network, int net_id,
                             adversary::Deployment deployment, std::string service_tag,
                             Replica::Mode mode, std::uint64_t seed, ReplyFn on_reply)
    : network_(network), net_id_(net_id), deployment_(std::move(deployment)),
      service_tag_(std::move(service_tag)), mode_(mode), rng_(seed),
      on_reply_(std::move(on_reply)) {
  SINTRA_REQUIRE(net_id >= deployment_.n(), "client: endpoint collides with a server");
}

ServiceClient::~ServiceClient() {
  for (auto& [id, pending] : pending_) {
    if (pending.retry_timer != 0) network_.cancel_timer(pending.retry_timer);
  }
}

void ServiceClient::enable_retry(std::uint64_t timeout, int max_retries) {
  SINTRA_REQUIRE(timeout > 0 && max_retries >= 1, "client: bad retry parameters");
  retry_timeout_ = timeout;
  max_retries_ = max_retries;
}

void ServiceClient::arm_retry(std::uint64_t request_id, Pending& pending) {
  if (retry_timeout_ == 0 || pending.attempts >= max_retries_) return;
  pending.retry_timer = network_.schedule_timer(net_id_, pending.next_delay, [this, request_id] {
    auto it = pending_.find(request_id);
    if (it == pending_.end()) return;  // answered in the meantime
    Pending& p = it->second;
    p.retry_timer = 0;
    ++p.attempts;
    p.busy_hops = 0;  // new lap: Busy replies may rotate the gateway again
    p.next_delay = std::min(p.next_delay * 2, retry_timeout_ * 16);
    const bool last = p.attempts >= max_retries_;
    if (gateway_ >= 0 && !last) {
      // The relay did not respond in time: abandon it for the next
      // replica and try again through that one.
      gateway_ = (gateway_ + 1) % deployment_.n();
      send_to_servers(p.wire_payload, /*broadcast_all=*/false);
    } else {
      send_to_servers(p.wire_payload, /*broadcast_all=*/true);
    }
    arm_retry(request_id, p);
  });
}

void ServiceClient::send_to_servers(const Bytes& payload, bool broadcast_all) {
  if (!broadcast_all && gateway_ >= 0) {
    net::Message message;
    message.from = net_id_;
    message.to = gateway_;
    message.tag = service_tag_;
    message.payload = payload;
    network_.submit(std::move(message));
    return;
  }
  for (int server = 0; server < deployment_.n(); ++server) {
    net::Message message;
    message.from = net_id_;
    message.to = server;
    message.tag = service_tag_;
    message.payload = payload;
    network_.submit(std::move(message));
  }
}

void ServiceClient::set_gateway(int server) {
  SINTRA_REQUIRE(server < deployment_.n(), "client: gateway out of range");
  gateway_ = server;
}

void ServiceClient::resend(std::uint64_t request_id) {
  auto pending = pending_.find(request_id);
  if (pending == pending_.end()) return;  // already answered
  send_to_servers(pending->second.wire_payload, /*broadcast_all=*/true);
}

std::uint64_t ServiceClient::request(Bytes body) {
  RequestEnvelope envelope;
  envelope.client = net_id_;
  envelope.request_id = next_request_id_++;
  envelope.body = std::move(body);

  Writer w;
  envelope.encode(w);
  Bytes envelope_bytes = w.take();

  Bytes payload;
  if (mode_ == Replica::Mode::kAtomic) {
    payload = std::move(envelope_bytes);
  } else {
    // Causal mode: the request leaves the client only in encrypted form.
    const auto& pk = deployment_.keys->public_keys().encryption;
    auto ciphertext = pk.encrypt(envelope_bytes, bytes_of(service_tag_), rng_);
    Writer cw;
    ciphertext.encode(cw, pk.group());
    payload = cw.take();
  }

  auto [it, inserted] = pending_.emplace(envelope.request_id, Pending{envelope, payload, {}});
  it->second.next_delay = retry_timeout_;
  arm_retry(envelope.request_id, it->second);
  send_to_servers(payload, /*broadcast_all=*/false);
  return envelope.request_id;
}

void ServiceClient::set_replicas(adversary::Deployment deployment) {
  SINTRA_REQUIRE(net_id_ >= deployment.n(), "client: endpoint collides with a server");
  deployment_ = std::move(deployment);
  gateway_ = -1;  // old relay index is meaningless in the new committee
  for (auto& [id, pending] : pending_) {
    send_to_servers(pending.wire_payload, /*broadcast_all=*/true);
  }
}

bool ServiceClient::apply_new_config(const protocols::NewConfig& config,
                                     std::string_view reconfig_tag) {
  try {
    if (config.plan.new_epoch <= config_epoch_) return false;  // stale or replayed
    const auto& old_public = deployment_.keys->public_keys();
    if (!config.verify(old_public.reply_sig, reconfig_tag, old_public.coin.group())) {
      return false;
    }
    adversary::Deployment next = protocols::reconfig_public_deployment(
        config, old_public.coin.group_ptr(), old_public);
    config_epoch_ = config.plan.new_epoch;
    set_replicas(std::move(next));
    return true;
  } catch (const ProtocolError&) {
    return false;  // malformed plan / geometry
  }
}

void ServiceClient::on_message(const net::Message& message) {
  if (message.tag == service_tag_ + "/newconfig") {
    // Signed NEW-CONFIG relay: authenticity comes from the threshold
    // signature inside, so the relaying replica needs no trust.
    try {
      Reader reader(message.payload);
      const std::string reconfig_tag = reader.str();
      const auto& group = deployment_.keys->public_keys().coin.group();
      const protocols::NewConfig config = protocols::NewConfig::decode(reader, group);
      reader.expect_done();
      apply_new_config(config, reconfig_tag);
    } catch (const ProtocolError&) {
      // Malformed announcement from a corrupted relay: ignore.
    }
    return;
  }
  if (message.tag != service_tag_ + "/reply") return;
  if (message.from < 0 || message.from >= deployment_.n()) return;
  try {
    Reader reader(message.payload);
    const std::uint8_t status = reader.u8();
    if (status == kReplyBusy) {
      // An overloaded (honest) server shed our request.  Honor its
      // retry-after as a backoff floor — capped, so a corrupted server
      // cannot stall us beyond the normal retry ceiling.  Request id 0
      // (causal mode: the server cannot attribute the ciphertext) backs
      // off every outstanding request.
      const std::uint64_t request_id = reader.u64();
      std::uint64_t retry_after = reader.u64();
      reader.expect_done();
      ++busy_replies_;
      if (retry_timeout_ != 0) {
        retry_after = std::min(retry_after, retry_timeout_ * 16);
        for (auto& [id, p] : pending_) {
          if (request_id == 0 || id == request_id) {
            p.next_delay = std::max(p.next_delay, retry_after);
          }
        }
      }
      // Busy from the relay we're pinned to: some *other* replica may be
      // idle right now, so rotate and resend immediately instead of
      // backing off against the overloaded one.  At most one full lap of
      // rotations per request between retry-timer fires — if every
      // replica is shedding, the timed backoff above takes over.
      if (gateway_ >= 0 && message.from == gateway_) {
        const int lap = deployment_.n() - 1;
        gateway_ = (gateway_ + 1) % deployment_.n();
        ++busy_rotations_;
        for (auto& [id, p] : pending_) {
          if ((request_id == 0 || id == request_id) && p.busy_hops < lap) {
            ++p.busy_hops;
            send_to_servers(p.wire_payload, /*broadcast_all=*/false);
          }
        }
      }
      return;
    }
    if (status != kReplyOk) return;  // unknown status from a corrupted server
    const std::uint64_t request_id = reader.u64();
    Bytes reply = reader.bytes();
    auto shares =
        reader.vec<crypto::SigShare>([](Reader& r) { return crypto::SigShare::decode(r); });
    reader.expect_done();

    auto pending = pending_.find(request_id);
    if (pending == pending_.end()) return;

    const Bytes statement = reply_statement(service_tag_, pending->second.envelope, reply);
    const auto& pk = deployment_.keys->public_keys().reply_sig;
    for (const auto& share : shares) {
      if (pk.scheme().unit_owner(share.unit) != message.from) return;
      if (!pk.verify_share(statement, share)) return;
    }

    auto digest = crypto::hash_domain("sintra/client/vote", reply);
    auto& [supporters, vote_shares, content] =
        pending->second.votes[Bytes(digest.begin(), digest.end())];
    if (crypto::contains(supporters, message.from)) return;
    supporters |= crypto::party_bit(message.from);
    for (const auto& share : shares) vote_shares.push_back(share);
    content = reply;

    // Accept once the supporters are QUALIFIED under the reply-key sharing
    // scheme.  Qualified implies beyond one corruptible set (the access
    // structure under-approximates the complement of A — see DESIGN.md),
    // so at least one honest server stands behind this exact reply; and it
    // is precisely the condition for the signature shares to combine.
    // Note exceeds_fault_set alone would NOT suffice for generalized
    // deployments like Example 2, where some incorruptible sets are still
    // unqualified for reconstruction.
    if (!pk.scheme().qualified(supporters)) return;
    auto signature = pk.combine(statement, vote_shares);
    SINTRA_INVARIANT(signature.has_value(), "client: combine failed on verified shares");

    Receipt receipt{std::move(content), std::move(*signature)};
    RequestEnvelope envelope = pending->second.envelope;
    if (pending->second.retry_timer != 0) network_.cancel_timer(pending->second.retry_timer);
    pending_.erase(pending);
    if (on_reply_) on_reply_(envelope.request_id, std::move(receipt));
  } catch (const ProtocolError&) {
    // Malformed reply from a corrupted server: ignore.
  }
}

bool ServiceClient::verify_receipt(std::uint64_t request_id, BytesView request_body,
                                   const Receipt& receipt) const {
  RequestEnvelope envelope;
  envelope.client = net_id_;
  envelope.request_id = request_id;
  envelope.body = Bytes(request_body.begin(), request_body.end());
  const Bytes statement = reply_statement(service_tag_, envelope, receipt.reply);
  return deployment_.keys->public_keys().reply_sig.verify(statement, receipt.signature);
}

// --- ShardPartitioner ------------------------------------------------------

std::uint64_t ShardPartitioner::mix(std::uint64_t x) {
  // splitmix64 finalizer: full-avalanche, so per-shard scores for the same
  // key are statistically independent — the rendezvous requirement.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

void ShardPartitioner::add_shard(std::uint32_t shard) {
  auto it = std::lower_bound(shards_.begin(), shards_.end(), shard);
  if (it != shards_.end() && *it == shard) return;
  shards_.insert(it, shard);
}

void ShardPartitioner::remove_shard(std::uint32_t shard) {
  auto it = std::lower_bound(shards_.begin(), shards_.end(), shard);
  if (it != shards_.end() && *it == shard) shards_.erase(it);
}

std::uint32_t ShardPartitioner::shard_for(BytesView key) const {
  SINTRA_REQUIRE(!shards_.empty(), "partitioner: no shards registered");
  // FNV-1a over the key, then one rendezvous score per shard.
  std::uint64_t h = 0xcbf29ce484222325ull ^ seed_;
  for (const auto byte : key) {
    h ^= byte;
    h *= 0x100000001b3ull;
  }
  std::uint32_t winner = shards_.front();
  std::uint64_t best = 0;
  bool first = true;
  for (const auto shard : shards_) {
    const std::uint64_t score = mix(h ^ (static_cast<std::uint64_t>(shard) + 1) * 0x9e3779b97f4a7c15ull);
    if (first || score > best) {
      first = false;
      best = score;
      winner = shard;
    }
  }
  return winner;
}

std::uint32_t ShardPartitioner::shard_for(std::string_view key) const {
  return shard_for(BytesView(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()));
}

// --- PartitionedClient -----------------------------------------------------

PartitionedClient::PartitionedClient(std::uint64_t seed, ReplyFn on_reply)
    : seed_(seed), on_reply_(std::move(on_reply)), partitioner_(seed) {}

ServiceClient& PartitionedClient::add_shard(std::uint32_t shard, net::Network& network,
                                            int net_id, adversary::Deployment deployment,
                                            std::string service_tag, Replica::Mode mode) {
  SINTRA_REQUIRE(!clients_.contains(shard), "partitioned client: duplicate shard");
  auto client = std::make_unique<ServiceClient>(
      network, net_id, std::move(deployment), std::move(service_tag), mode,
      seed_ ^ ((static_cast<std::uint64_t>(shard) + 1) * 0x9e3779b97f4a7c15ull),
      [this, shard](std::uint64_t request_id, ServiceClient::Receipt receipt) {
        ++completed_;
        if (on_reply_) on_reply_(shard, request_id, std::move(receipt));
      });
  auto& ref = *client;
  clients_.emplace(shard, std::move(client));
  partitioner_.add_shard(shard);
  return ref;
}

PartitionedClient::RequestHandle PartitionedClient::request(BytesView key, Bytes body) {
  const std::uint32_t shard = partitioner_.shard_for(key);
  auto it = clients_.find(shard);
  SINTRA_INVARIANT(it != clients_.end(), "partitioned client: partitioner chose unknown shard");
  ++routed_[shard];
  return RequestHandle{shard, it->second->request(std::move(body))};
}

PartitionedClient::RequestHandle PartitionedClient::request(std::string_view key, Bytes body) {
  return request(BytesView(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
                 std::move(body));
}

ServiceClient& PartitionedClient::shard_client(std::uint32_t shard) {
  auto it = clients_.find(shard);
  SINTRA_REQUIRE(it != clients_.end(), "partitioned client: unknown shard");
  return *it->second;
}

std::size_t PartitionedClient::outstanding() const {
  std::size_t total = 0;
  for (const auto& [shard, client] : clients_) total += client->outstanding();
  return total;
}

}  // namespace sintra::app
