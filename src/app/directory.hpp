// Secure directory service (§5.1): an authenticated key-value store whose
// lookup answers are signed under the single service key — the paper's
// model for DNS authentication / LDAP-style secure directories.  Updates
// change global state and therefore go through atomic broadcast; lookups
// are served from the replicated state and come back threshold-signed.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "app/replica.hpp"

namespace sintra::app {

struct DirRequest {
  enum class Op : std::uint8_t { kBind = 0, kLookup = 1, kUnbind = 2 };
  Op op = Op::kLookup;
  std::string key;
  Bytes value;  ///< kBind

  [[nodiscard]] Bytes encode() const;
  static DirRequest decode(BytesView data);
};

struct DirResponse {
  enum class Status : std::uint8_t { kOk = 0, kNotFound = 1 };
  Status status = Status::kOk;
  std::string key;
  Bytes value;
  std::uint64_t version = 0;  ///< bind count for the key (fencing token)

  [[nodiscard]] Bytes encode() const;
  static DirResponse decode(BytesView data);
};

class SecureDirectory final : public StateMachine {
 public:
  Bytes execute(BytesView request) override;
  [[nodiscard]] std::string name() const override { return "directory"; }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Bytes value;
    std::uint64_t version;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace sintra::app
