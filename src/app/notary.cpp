#include "app/notary.hpp"

#include "crypto/sha256.hpp"

namespace sintra::app {

Bytes NotaryRequest::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(op));
  w.bytes(document);
  return w.take();
}

NotaryRequest NotaryRequest::decode(BytesView data) {
  Reader r(data);
  NotaryRequest request;
  const std::uint8_t op = r.u8();
  SINTRA_REQUIRE(op <= 1, "notary: bad op");
  request.op = static_cast<Op>(op);
  request.document = r.bytes();
  r.expect_done();
  return request;
}

Bytes NotaryResponse::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(sequence);
  return w.take();
}

NotaryResponse NotaryResponse::decode(BytesView data) {
  Reader r(data);
  NotaryResponse response;
  const std::uint8_t status = r.u8();
  SINTRA_REQUIRE(status <= 2, "notary: bad status");
  response.status = static_cast<Status>(status);
  response.sequence = r.u64();
  r.expect_done();
  return response;
}

Bytes Notary::execute(BytesView request_bytes) {
  NotaryResponse response;
  NotaryRequest request;
  try {
    request = NotaryRequest::decode(request_bytes);
  } catch (const ProtocolError&) {
    response.status = NotaryResponse::Status::kUnknown;
    return response.encode();
  }

  auto digest = crypto::hash_domain("sintra/notary/doc", request.document);
  const Bytes key(digest.begin(), digest.end());

  switch (request.op) {
    case NotaryRequest::Op::kRegister: {
      auto [it, inserted] = registry_.try_emplace(key, next_sequence_);
      if (inserted) {
        ++next_sequence_;
        response.status = NotaryResponse::Status::kRegistered;
      } else {
        response.status = NotaryResponse::Status::kAlreadyRegistered;
      }
      response.sequence = it->second;
      break;
    }
    case NotaryRequest::Op::kVerify: {
      auto it = registry_.find(key);
      if (it == registry_.end()) {
        response.status = NotaryResponse::Status::kUnknown;
      } else {
        response.status = NotaryResponse::Status::kAlreadyRegistered;
        response.sequence = it->second;
      }
      break;
    }
  }
  return response.encode();
}

}  // namespace sintra::app
