// Authentication service (§5: "an authentication service ... [is] also
// described there" — MAFTIA deliverable D26): a distributed verifier of
// client credentials that issues threshold-signed session grants, in the
// spirit of a Byzantine-fault-tolerant Kerberos KDC.
//
// State: per-principal credential verifiers (salted digests — the service
// never stores the secret itself) and a monotonic logical clock.  An
// AUTHENTICATE request presenting the correct secret yields a grant
// record (principal, session id, issued-at, expires-at in logical ticks);
// the client-side threshold signature over the reply is the *ticket*:
// any relying party verifies it against the single service key.  Every
// request goes through atomic broadcast, so session ids are unique and
// the logical clock is consistent across replicas.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "app/replica.hpp"

namespace sintra::app {

struct AuthRequest {
  enum class Op : std::uint8_t { kEnroll = 0, kAuthenticate = 1, kRevoke = 2, kTick = 3 };
  Op op = Op::kAuthenticate;
  std::string principal;
  Bytes secret;  ///< kEnroll: credential to register; kAuthenticate: proof

  [[nodiscard]] Bytes encode() const;
  static AuthRequest decode(BytesView data);
};

struct AuthResponse {
  enum class Status : std::uint8_t {
    kGranted = 0,
    kDenied = 1,
    kEnrolled = 2,
    kRevoked = 3,
    kUnknownPrincipal = 4,
  };
  Status status = Status::kDenied;
  std::string principal;
  std::uint64_t session_id = 0;
  std::uint64_t issued_at = 0;   ///< logical clock at grant
  std::uint64_t expires_at = 0;  ///< issued_at + lifetime

  [[nodiscard]] Bytes encode() const;
  static AuthResponse decode(BytesView data);
};

class AuthenticationService final : public StateMachine {
 public:
  explicit AuthenticationService(std::uint64_t session_lifetime = 100)
      : session_lifetime_(session_lifetime) {}

  Bytes execute(BytesView request) override;
  [[nodiscard]] std::string name() const override { return "auth"; }

  [[nodiscard]] std::uint64_t clock() const { return clock_; }
  [[nodiscard]] std::size_t enrolled_count() const { return verifiers_.size(); }

 private:
  [[nodiscard]] static Bytes verifier_of(const std::string& principal, BytesView secret);

  std::uint64_t session_lifetime_;
  std::uint64_t clock_ = 0;
  std::uint64_t next_session_ = 1;
  std::map<std::string, Bytes> verifiers_;  ///< principal -> salted digest
};

}  // namespace sintra::app
