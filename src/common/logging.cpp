#include "common/logging.hpp"

#include <cstdio>

namespace sintra {

void TraceLog::emit(TraceLevel level, int party, std::string component, std::string message) {
  if (!enabled_) return;
  TraceEvent event;
  event.level = level;
  event.time = now_ ? now_() : 0;
  event.party = party;
  event.component = std::move(component);
  event.message = std::move(message);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceLog::by_component(const std::string& component) const {
  std::vector<TraceEvent> out;
  for (const auto& event : events_) {
    if (event.component == component) out.push_back(event);
  }
  return out;
}

void TraceLog::dump() const {
  for (const auto& event : events_) {
    std::fprintf(stderr, "[t=%llu p=%d %s] %s\n",
                 static_cast<unsigned long long>(event.time), event.party,
                 event.component.c_str(), event.message.c_str());
  }
}

}  // namespace sintra
