#include "common/serialize.hpp"

namespace sintra {

void Writer::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::bytes(BytesView v) {
  u32(static_cast<std::uint32_t>(v.size()));
  raw(v);
}

void Writer::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  out_.insert(out_.end(), v.begin(), v.end());
}

void Writer::raw(BytesView v) {
  out_.insert(out_.end(), v.begin(), v.end());
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | data_[pos_ + 1] << 8);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

bool Reader::boolean() {
  std::uint8_t v = u8();
  SINTRA_REQUIRE(v <= 1, "serialize: invalid boolean");
  return v == 1;
}

Bytes Reader::bytes() {
  std::uint32_t len = u32();
  return raw(len);
}

BytesView Reader::bytes_view() {
  std::uint32_t len = u32();
  need(len);
  BytesView view = data_.subspan(pos_, len);
  pos_ += len;
  return view;
}

std::string Reader::str() {
  std::uint32_t len = u32();
  need(len);
  std::string s(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return s;
}

Bytes Reader::raw(std::size_t count) {
  need(count);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
  pos_ += count;
  return out;
}

}  // namespace sintra
