#include "common/rng.hpp"

#include <random>

namespace sintra {

namespace {
// splitmix64, the recommended seeder for xoshiro.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& s : s_) s = splitmix64(state);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % bound;
}

Bytes Rng::bytes(std::size_t count) {
  Bytes out(count);
  std::size_t i = 0;
  while (i < count) {
    std::uint64_t word = next();
    for (int b = 0; b < 8 && i < count; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  return out;
}

Rng Rng::fork() {
  return Rng(next());
}

std::uint64_t SystemRng::next() {
  static thread_local std::random_device device;
  std::uint64_t hi = device();
  std::uint64_t lo = device();
  return hi << 32 | (lo & 0xffffffffULL);
}

Bytes SystemRng::bytes(std::size_t count) {
  Bytes out(count);
  std::size_t i = 0;
  while (i < count) {
    std::uint64_t word = next();
    for (int b = 0; b < 8 && i < count; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  return out;
}

}  // namespace sintra
