// Structured event trace.
//
// The simulator and the protocol stack emit trace events through a TraceLog.
// Tests attach a log to a simulation and assert on the sequence of events
// (e.g. "every honest party delivered m before deciding"), which is far more
// robust than scraping text output.  The default sink is disabled, so
// production-path code pays one branch per event.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sintra {

enum class TraceLevel : std::uint8_t { kDebug, kInfo, kWarn };

struct TraceEvent {
  TraceLevel level;
  std::uint64_t time;      ///< simulator timestamp (0 outside simulation)
  int party;               ///< emitting party index, -1 for the environment
  std::string component;   ///< e.g. "abba", "atomic", "dealer"
  std::string message;
};

class TraceLog {
 public:
  /// Record an event if logging is enabled.
  void emit(TraceLevel level, int party, std::string component, std::string message);

  void set_time_source(std::function<std::uint64_t()> now) { now_ = std::move(now); }
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Events whose component matches exactly.
  [[nodiscard]] std::vector<TraceEvent> by_component(const std::string& component) const;

  /// Print all events to stderr (debugging aid).
  void dump() const;

 private:
  bool enabled_ = false;
  std::function<std::uint64_t()> now_;
  std::vector<TraceEvent> events_;
};

}  // namespace sintra
