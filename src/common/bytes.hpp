// Byte-string utilities shared by every layer of the stack.
//
// `Bytes` is the wire format of all protocol payloads and the input/output
// type of the cryptographic substrate.  Keeping it a plain std::vector keeps
// serialization trivial; the helpers here add the conversions protocols need
// (hex for logging and test vectors, constant-time comparison for MAC/tag
// checks).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sintra {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Encode `data` as lowercase hex.
std::string to_hex(BytesView data);

/// Decode a hex string (upper- or lowercase). Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Build a byte string from an ASCII string literal (no terminator).
Bytes bytes_of(std::string_view text);

/// Render bytes as ASCII where printable (for logs); lossy.
std::string printable(BytesView data);

/// Timing-independent equality, for comparing authenticators.
bool constant_time_equal(BytesView a, BytesView b);

/// Append `src` to `dst`.
void append(Bytes& dst, BytesView src);

}  // namespace sintra
