// Invariant checking for protocol code.
//
// Protocol state machines must never abort the whole simulation on a
// malformed message from a Byzantine peer; they throw ProtocolError and the
// dispatcher drops the message.  Internal invariants (bugs, never
// attacker-triggerable) use SINTRA_INVARIANT and throw LogicError so tests
// fail loudly.
#pragma once

#include <stdexcept>
#include <string>

namespace sintra {

/// Raised when input violates a protocol precondition (possibly adversarial).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised when an internal invariant breaks (a bug, not an attack).
class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

}  // namespace sintra

#define SINTRA_REQUIRE(cond, msg)                      \
  do {                                                 \
    if (!(cond)) throw ::sintra::ProtocolError(msg);   \
  } while (0)

#define SINTRA_INVARIANT(cond, msg)                    \
  do {                                                 \
    if (!(cond)) throw ::sintra::LogicError(msg);      \
  } while (0)
