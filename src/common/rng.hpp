// Randomness sources.
//
// Two distinct needs, two distinct types:
//  * Rng       — deterministic, seedable xoshiro256** used everywhere in the
//                simulation (schedulers, workloads, key generation in tests)
//                so every run is exactly reproducible from a seed.
//  * SystemRng — OS entropy, used only by examples that generate real keys.
//
// Protocol code takes an Rng& so tests inject seeds; nothing in src/ ever
// calls std::random_device directly.
#pragma once

#include <cstdint>
#include <limits>

#include "common/bytes.hpp"

namespace sintra {

/// Deterministic PRNG (xoshiro256**).  Not cryptographic; used for
/// simulation reproducibility.  The dealer uses it in tests so that whole
/// protocol runs, keys included, replay from one 64-bit seed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  std::uint64_t next();
  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return std::numeric_limits<std::uint64_t>::max(); }

  /// Uniform in [0, bound) with rejection sampling; bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform random byte string.
  Bytes bytes(std::size_t count);

  /// Derive an independent child generator (for per-party streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

/// OS-entropy generator with the same interface surface; for example
/// binaries that want non-reproducible keys.
class SystemRng {
 public:
  std::uint64_t next();
  Bytes bytes(std::size_t count);
};

}  // namespace sintra
