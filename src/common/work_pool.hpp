// Bounded worker pool for off-loop crypto (the "verification pipeline").
//
// Protocol logic must stay single-threaded and deterministic, so the pool
// never touches protocol state: a job is a pure closure producing Bytes,
// and its completion runs on the *owner* thread when that thread calls
// drain().  Under the deterministic Simulator the pool is constructed with
// zero threads and degrades to sequential mode — submit() runs the job and
// its completion inline, so seeded runs and WAL replay stay bit-exact.
//
// Overload policy: a full queue never blocks and never drops — submit()
// falls back to running the job inline on the caller.  Verification work
// is mandatory either way; the queue bound only caps memory and hand-off
// latency, and an attacker who floods shares degrades the pipeline to
// exactly the pre-pipeline synchronous behavior, nothing worse.
//
// Exception safety: a throwing job (malformed batch input) must not wedge
// the pool or kill a worker; the completion receives empty Bytes instead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/serialize.hpp"

namespace sintra::common {

class WorkPool {
 public:
  using Job = std::function<Bytes()>;
  using Completion = std::function<void(Bytes)>;
  /// Called (possibly from a worker thread) whenever a result becomes
  /// ready to drain; used to wake an event loop sleeping on a condvar.
  using Notify = std::function<void()>;

  /// `threads == 0` selects sequential deterministic mode.  `max_queue`
  /// bounds jobs admitted but not yet started; beyond it submit() runs
  /// the job inline.
  explicit WorkPool(std::size_t threads, std::size_t max_queue = 256);
  ~WorkPool();

  /// Shut the pool down without losing work: workers finish every queued
  /// job, then the calling thread runs any job the workers never took
  /// inline and drains every undrained completion.  After stop() every
  /// completion ever submitted has fired exactly once.  Idempotent; the
  /// destructor calls it.  Owner thread only (completions run here).
  void stop();

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  [[nodiscard]] std::size_t threads() const { return workers_.size(); }
  [[nodiscard]] bool sequential() const { return workers_.empty(); }

  /// Register a wake-up hook.  Hooks are multicast: every registered hook
  /// fires when a result becomes ready, so several hosts sharing one
  /// machine-wide pool each wake their own event loop — a second
  /// registration adds a listener instead of silently stealing the hook.
  void set_notify(Notify notify);

  /// Hand a job to the pool.  Sequential mode (and the full-queue overload
  /// path) runs job + completion inline before returning.
  void submit(Job job, Completion completion);

  /// Run the completions of every finished job on the calling thread.
  /// Returns the number of completions run.  Must always be called from
  /// the same (owner) thread.
  std::size_t drain();

  /// True when finished jobs await drain() — lets an event loop's sleep
  /// predicate wake for verdicts, not only for network traffic.
  [[nodiscard]] bool has_completions() const;

  /// Block until no submitted work remains (idle pool), draining
  /// completions as they arrive.  Owner thread only.
  void wait_idle();

  /// Run a job with the pool's exception guard (empty Bytes on throw);
  /// exposed so inline/sequential callers fail the same way workers do.
  static Bytes run_guarded(const Job& job);

 private:
  struct Pending {
    Job job;
    Completion completion;
  };
  struct Done {
    Bytes result;
    Completion completion;
  };

  void worker_loop();

  const std::size_t max_queue_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers wait for jobs
  std::condition_variable idle_cv_;   ///< wait_idle waits for quiescence
  std::deque<Pending> queue_;
  std::deque<Done> done_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing jobs
  bool stop_ = false;
  std::vector<Notify> notifies_;  ///< multicast: every registered hook fires
};

}  // namespace sintra::common
