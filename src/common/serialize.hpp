// Deterministic binary serialization for protocol messages.
//
// Every protocol message and cryptographic object in this codebase is
// serialized with Writer/Reader.  The encoding is deterministic (no map
// iteration order, no padding) so that hashing a serialized message is a
// canonical commitment to its content — required for Fiat–Shamir transcripts
// and threshold-signature message digests.
//
// Encoding: integers little-endian fixed width; varlen byte strings as
// u32 length prefix + raw bytes; vectors as u32 count + elements.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "common/bytes.hpp"

namespace sintra {

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed byte string.
  void bytes(BytesView v);
  /// Length-prefixed UTF-8/ASCII string.
  void str(std::string_view v);
  /// Raw bytes with no length prefix (caller knows the width).
  void raw(BytesView v);

  template <typename T, typename Fn>
  void vec(const std::vector<T>& items, Fn&& encode_one) {
    u32(static_cast<std::uint32_t>(items.size()));
    for (const T& item : items) encode_one(*this, item);
  }

  [[nodiscard]] const Bytes& data() const { return out_; }
  [[nodiscard]] Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Reader over a byte buffer.  All extraction methods throw ProtocolError on
/// truncated input — malformed messages from Byzantine peers must not crash.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  bool boolean();

  Bytes bytes();
  /// Length-prefixed slice of the underlying buffer — no copy.  The view
  /// is only valid while the buffer passed to the Reader lives.
  BytesView bytes_view();
  std::string str();
  Bytes raw(std::size_t count);

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& decode_one) {
    std::uint32_t count = u32();
    SINTRA_REQUIRE(count <= remaining(), "serialize: implausible element count");
    std::vector<T> items;
    items.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) items.push_back(decode_one(*this));
    return items;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  /// Throw unless the whole buffer has been consumed.
  void expect_done() const { SINTRA_REQUIRE(done(), "serialize: trailing bytes"); }

 private:
  void need(std::size_t n) const {
    SINTRA_REQUIRE(pos_ + n <= data_.size(), "serialize: truncated input");
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

/// Serialize a single object that provides `void encode(Writer&) const`.
template <typename T>
Bytes encode_to_bytes(const T& value) {
  Writer w;
  value.encode(w);
  return w.take();
}

}  // namespace sintra
