#include "common/executor.hpp"

namespace sintra::common {

ExecutorPool::ExecutorPool(std::size_t executors) {
  lanes_.reserve(executors);
  for (std::size_t i = 0; i < executors; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  for (auto& lane : lanes_) {
    lane->thread = std::thread([this, raw = lane.get()] { lane_loop(*raw); });
  }
}

ExecutorPool::~ExecutorPool() { stop(); }

void ExecutorPool::set_notify(Notify notify) {
  if (!notify) return;
  std::lock_guard<std::mutex> lock(notify_mutex_);
  notifies_.push_back(std::move(notify));
}

std::string_view ExecutorPool::tag_root(std::string_view tag) {
  const std::size_t slash = tag.find('/');
  return slash == std::string_view::npos ? tag : tag.substr(0, slash);
}

std::uint64_t ExecutorPool::tag_hash(std::string_view tag) {
  // FNV-1a, 64-bit: stable across runs/processes so executor assignment —
  // and therefore per-instance serialization — never depends on pointer
  // values or hash-table salt.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::size_t ExecutorPool::executor_for(std::string_view tag) const {
  if (lanes_.empty()) return 0;
  return static_cast<std::size_t>(tag_hash(tag_root(tag)) % lanes_.size());
}

std::size_t ExecutorPool::executor_for(std::uint64_t group, std::string_view tag) const {
  if (lanes_.empty()) return 0;
  // Salt the tag-root hash with the group id (golden-ratio multiplier
  // spreads consecutive small ids across the hash space).  group == 0
  // reduces to the unsalted legacy assignment.
  const std::uint64_t salted = tag_hash(tag_root(tag)) ^ (group * 0x9e3779b97f4a7c15ull);
  return static_cast<std::size_t>(salted % lanes_.size());
}

void ExecutorPool::post(std::size_t index, Task task) {
  posted_.fetch_add(1, std::memory_order_relaxed);
  if (lanes_.empty() || stop_.load(std::memory_order_acquire)) {
    // Sequential mode (or post-stop teardown, when the caller is the only
    // thread left): the old single-threaded behavior, inline.
    task();
    return;
  }
  Lane& lane = *lanes_[index % lanes_.size()];
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(lane.mutex);
    lane.queue.push_back(std::move(task));
  }
  lane.cv.notify_one();
}

void ExecutorPool::lane_loop(Lane& lane) {
  std::vector<Task> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(lane.mutex);
      lane.cv.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) || !lane.queue.empty();
      });
      if (lane.queue.empty()) return;  // stop requested and inbox drained
      // The whole backlog leaves the inbox under one lock acquisition; the
      // batch then runs without any lock held (mutex-light MPSC consume).
      batch.swap(lane.queue);
      ++lane.batches;
      lane.executed += batch.size();
    }
    for (Task& task : batch) task();
    const std::uint64_t ran = batch.size();
    batch.clear();
    if (pending_.fetch_sub(ran, std::memory_order_acq_rel) == ran) {
      std::lock_guard<std::mutex> lock(idle_mutex_);
      idle_cv_.notify_all();
    }
    std::vector<Notify> notifies;
    {
      std::lock_guard<std::mutex> lock(notify_mutex_);
      notifies = notifies_;
    }
    for (const Notify& notify : notifies) notify();
  }
}

void ExecutorPool::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

void ExecutorPool::stop() {
  stop_.store(true, std::memory_order_release);
  for (auto& lane : lanes_) lane->cv.notify_all();
  for (auto& lane : lanes_) {
    if (lane->thread.joinable()) lane->thread.join();
  }
}

ExecutorPool::Stats ExecutorPool::stats() const {
  Stats stats;
  stats.posted = posted_.load(std::memory_order_relaxed);
  stats.executed.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane->mutex);
    stats.batches += lane->batches;
    stats.executed.push_back(lane->executed);
  }
  return stats;
}

}  // namespace sintra::common
