#include "common/work_pool.hpp"

namespace sintra::common {

WorkPool::WorkPool(std::size_t threads, std::size_t max_queue) : max_queue_(max_queue) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkPool::~WorkPool() { stop(); }

void WorkPool::stop() {
  std::deque<Pending> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    // Steal the queue so no completion can be lost even if a worker exits
    // without taking its job (all workers see an empty queue below and
    // fall through to join).
    orphaned.swap(queue_);
    in_flight_ -= orphaned.size();
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Verification verdicts are mandatory: run every job the workers never
  // took inline on the stopping thread, then fire every undrained
  // completion.  After this, each submitted completion has run exactly
  // once — nothing dies with the pool.
  for (Pending& pending : orphaned) {
    pending.completion(run_guarded(pending.job));
  }
  drain();
  idle_cv_.notify_all();
}

void WorkPool::set_notify(Notify notify) {
  if (!notify) return;
  std::lock_guard<std::mutex> lock(mutex_);
  notifies_.push_back(std::move(notify));
}

Bytes WorkPool::run_guarded(const Job& job) {
  try {
    return job();
  } catch (...) {
    // A malformed batch must not kill a worker or wedge the pipeline; the
    // completion sees empty Bytes and treats the batch as failed.
    return {};
  }
}

void WorkPool::submit(Job job, Completion completion) {
  if (sequential()) {
    completion(run_guarded(job));
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!stop_ && queue_.size() < max_queue_) {
      queue_.push_back(Pending{std::move(job), std::move(completion)});
      ++in_flight_;
      lock.unlock();
      work_cv_.notify_one();
      return;
    }
  }
  // Queue full (or pool shutting down): degrade to the synchronous
  // pre-pipeline behavior on the caller instead of blocking or dropping.
  completion(run_guarded(job));
}

void WorkPool::worker_loop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to do
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    Bytes result = run_guarded(pending.job);
    std::vector<Notify> notifies;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_.push_back(Done{std::move(result), std::move(pending.completion)});
      --in_flight_;
      notifies = notifies_;
    }
    idle_cv_.notify_all();
    for (const Notify& notify : notifies) notify();
  }
}

bool WorkPool::has_completions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !done_.empty();
}

std::size_t WorkPool::drain() {
  std::deque<Done> ready;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ready.swap(done_);
  }
  for (Done& done : ready) done.completion(std::move(done.result));
  return ready.size();
}

void WorkPool::wait_idle() {
  for (;;) {
    drain();
    std::unique_lock<std::mutex> lock(mutex_);
    if (in_flight_ == 0 && done_.empty()) return;
    idle_cv_.wait(lock, [this] { return in_flight_ == 0 || !done_.empty(); });
  }
}

}  // namespace sintra::common
